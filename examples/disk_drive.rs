//! A realistic four-mode disk drive (active / idle / standby / sleep)
//! managed by a CTMDP policy — the kind of device the paper's introduction
//! motivates ("display servers, communication interfaces ... often
//! interleaved with long periods of quiescence").
//!
//! Sweeps the power/performance frontier, compares against time-out
//! heuristics at several idle thresholds, and verifies each point by
//! simulation. Run with `cargo run --release --example disk_drive`.

use dpm::model::{optimize, PmSystem, SpModel, SrModel};
use dpm::sim::controller::TimeoutController;
use dpm::sim::workload::PoissonWorkload;
use dpm::sim::{controller::TableController, SimConfig, Simulator};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // A bursty interactive workload: a request every 2 s on average,
    // each taking ~8 ms of disk time.
    let lambda = 0.5;
    let sp = SpModel::disk_drive()?;
    println!("{sp}");
    let system = PmSystem::builder()
        .provider(sp.clone())
        .requestor(SrModel::poisson(lambda)?)
        .capacity(8)
        .build()?;

    println!("optimal frontier (weight sweep):");
    println!(
        "{:>10} {:>10} {:>12} {:>12}",
        "weight", "power(W)", "queue", "wait(s)"
    );
    for weight in [0.001, 0.01, 0.05, 0.2, 1.0, 5.0] {
        let solution = optimize::optimal_policy(&system, weight)?;
        let m = solution.metrics();
        println!(
            "{weight:>10} {:>10.4} {:>12.4} {:>12.4}",
            m.power(),
            m.queue_length(),
            m.waiting_time()
        );
    }

    // Pick a frontier point and verify it end-to-end by simulation.
    let weight = 0.2;
    let solution = optimize::optimal_policy(&system, weight)?;
    let report = Simulator::new(
        sp.clone(),
        system.capacity(),
        PoissonWorkload::new(lambda)?,
        TableController::new(&system, solution.policy())?.named("ctmdp-optimal"),
        SimConfig::new(2024).max_requests(50_000),
    )
    .run()?;
    println!("\nsimulated optimal (w = {weight}): {report}");
    println!(
        "functional values:              power {:.3} W, queue {:.3}",
        solution.metrics().power(),
        solution.metrics().queue_length()
    );

    // Time-out heuristics for comparison, sleeping into standby.
    println!("\ntime-out heuristics (simulated):");
    for timeout in [0.1, 1.0, 5.0] {
        let report = Simulator::new(
            sp.clone(),
            system.capacity(),
            PoissonWorkload::new(lambda)?,
            TimeoutController::new(&sp, timeout, 2)?,
            SimConfig::new(2024).max_requests(50_000),
        )
        .run()?;
        println!("  {report}");
    }
    Ok(())
}
