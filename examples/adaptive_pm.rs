//! Adaptive power management under a drifting workload.
//!
//! The paper (Section III) notes that the inter-arrival rate of a Poisson
//! stream can be estimated within ~5% after about 50 events, so "the power
//! manager can observe and estimate the input rate dynamically, and
//! adaptively change its policy". This example runs exactly that loop: the
//! arrival rate steps 1/8 → 1/3 → 1/6 and an adaptive controller
//! re-estimates λ and re-solves the CTMDP on drift, versus a static
//! optimal policy solved for the initial rate only.
//!
//! Run with `cargo run --release --example adaptive_pm`.

use dpm::model::{optimize, PmSystem, SpModel, SrModel};
use dpm::sim::controller::{AdaptiveController, TableController};
use dpm::sim::workload::PiecewiseWorkload;
use dpm::sim::{SimConfig, Simulator};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let sp = SpModel::dac99_server()?;
    let capacity = 5;
    let weight = 1.0;
    let initial_lambda = 1.0 / 8.0;

    // Three phases of 40,000 s each: light, heavy, medium load.
    let workload = || {
        PiecewiseWorkload::new(vec![
            (40_000.0, 1.0 / 8.0),
            (40_000.0, 1.0 / 3.0),
            (40_000.0, 1.0 / 6.0),
        ])
    };

    // Static controller: optimal for the initial rate, never updated.
    let static_system = PmSystem::builder()
        .provider(sp.clone())
        .requestor(SrModel::poisson(initial_lambda)?)
        .capacity(capacity)
        .build()?;
    let static_solution = optimize::optimal_policy(&static_system, weight)?;
    let static_report = Simulator::new(
        sp.clone(),
        capacity,
        workload()?,
        TableController::new(&static_system, static_solution.policy())?.named("static"),
        SimConfig::new(7).max_requests(25_000),
    )
    .run()?;

    // Adaptive controller: 50-gap window, re-solve every 50 arrivals.
    let adaptive = AdaptiveController::new(sp.clone(), capacity, weight, initial_lambda, 50, 50)?;
    let adaptive_report = Simulator::new(
        sp,
        capacity,
        workload()?,
        adaptive,
        SimConfig::new(7).max_requests(25_000),
    )
    .run()?;

    println!("drifting workload, weight = {weight}:");
    println!("  {static_report}");
    println!("  {adaptive_report}");
    let static_cost = static_report.average_power() + weight * static_report.average_queue_length();
    let adaptive_cost =
        adaptive_report.average_power() + weight * adaptive_report.average_queue_length();
    println!("  weighted cost: static {static_cost:.3} vs adaptive {adaptive_cost:.3}");
    if adaptive_cost < static_cost {
        println!("  -> adaptation pays off under drift");
    } else {
        println!("  -> the static policy happened to suffice for this drift pattern");
    }
    Ok(())
}
