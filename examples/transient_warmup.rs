//! Transient (warm-up) analysis of power-managed policies: how fast the
//! system reaches steady state, and how responsive each policy is when a
//! request wakes it — first-passage analysis on the policy-induced chain.
//!
//! Exercises `dpm::ctmc::transient` (uniformization) and
//! `dpm::model::PmSystem::wakeup_latency` (hitting times).
//!
//! Run with `cargo run --release --example transient_warmup`.

use dpm::ctmc::{stationary, transient};
use dpm::linalg::DVector;
use dpm::model::{optimize, PmPolicy, PmSystem, SpModel, SrModel};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let system = PmSystem::builder()
        .provider(SpModel::dac99_server()?)
        .requestor(SrModel::poisson(1.0 / 6.0)?)
        .capacity(5)
        .build()?;
    let solution = optimize::optimal_policy(&system, 1.0)?;
    let generator = system.generator_for(solution.policy())?;

    // Start cold: active mode, empty queue.
    let mut pi0 = DVector::zeros(system.n_states());
    pi0[system.initial_state_index()] = 1.0;

    // Expected instantaneous power as the system warms up, versus the
    // long-run value.
    let power_costs = DVector::from_fn(system.n_states(), |i| {
        let action = solution
            .policy()
            .to_mdp_policy(&system)
            .expect("valid")
            .action(i);
        system.power_cost(i, action)
    });
    let steady = solution.metrics().power();
    println!("warm-up of the optimal policy (expected power, W):");
    println!("{:>10} {:>12} {:>14}", "t (s)", "E[power]", "vs steady (%)");
    for t in [0.0, 1.0, 5.0, 15.0, 40.0, 100.0, 300.0] {
        let pi_t = transient::distribution_at(&generator, &pi0, t)?;
        let p = pi_t.dot(&power_costs);
        println!("{t:>10} {p:>12.4} {:>14.2}", 100.0 * (p - steady) / steady);
    }
    let pi_inf = stationary::gain_vector(&generator, &power_costs)?;
    println!(
        "long-run (gain) value: {:.4} W; metrics value: {steady:.4} W",
        pi_inf[system.initial_state_index()]
    );

    // Responsiveness: expected time from "request arrives to a sleeping
    // system" until the provider is active, per policy.
    println!("\nwake-up latency from the sleeping mode (s):");
    for (name, policy) in [
        ("optimal (w = 1)", solution.policy().clone()),
        ("greedy", PmPolicy::greedy(&system)?),
        ("n-policy(3)", PmPolicy::n_policy(&system, 3, 2)?),
        ("n-policy(5)", PmPolicy::n_policy(&system, 5, 2)?),
    ] {
        let latency = system.wakeup_latency(&policy, 2)?;
        println!("  {name:<16} {latency:>8.3}");
    }
    println!(
        "\n(greedy's latency equals the raw sleeping->active switching time, 1.1 s;\n\
         deeper N-policies add one mean inter-arrival time per extra threshold step)"
    );
    Ok(())
}
