//! Quickstart: build the paper's three-mode server, solve for the optimal
//! power-management policy, compare it against heuristics, and emit
//! Graphviz renderings of the models (the paper's Figures 1 and 2).
//!
//! Run with `cargo run --example quickstart`.

use dpm::model::{dot, optimize, PmPolicy, PmSystem, SpModel, SrModel};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // The paper's Section V setup: lambda = 1/6, mu = 1/1.5, Q = 5,
    // switching times/energies from Eqn. (4.1).
    let system = PmSystem::builder()
        .provider(SpModel::dac99_server()?)
        .requestor(SrModel::poisson(1.0 / 6.0)?)
        .capacity(5)
        .build()?;
    println!("{system}");

    // Optimize for a mid-range power/delay weight.
    let weight = 1.0;
    let solution = optimize::optimal_policy(&system, weight)?;
    println!(
        "optimal policy (w = {weight}): {} in {} policy-iteration rounds",
        solution.metrics(),
        solution.iterations()
    );

    // Print the policy as a decision table.
    println!("\nstate -> command:");
    print!("{}", solution.policy().describe(&system)?);

    // Compare with the heuristics of Section V.
    println!("\nheuristic comparison (analytic):");
    for (name, policy) in [
        ("always-on", PmPolicy::always_on(&system, 0)?),
        ("greedy   ", PmPolicy::greedy(&system)?),
        ("N = 3    ", PmPolicy::n_policy(&system, 3, 2)?),
    ] {
        let m = system.evaluate(&policy)?;
        println!(
            "  {name}: {m}  (weighted cost {:.3})",
            m.power() + weight * m.queue_length()
        );
    }
    println!(
        "  optimal  : {}  (weighted cost {:.3})",
        solution.metrics(),
        solution.metrics().power() + weight * solution.metrics().queue_length()
    );

    // Figure 1: the SP Markov process under the illustrated policy
    // {<active, wait>, <waiting, sleep>, <sleeping, wakeup>}.
    let figure1 = dot::sp_to_dot(system.provider(), &[1, 2, 0])?;
    println!("\n--- Figure 1 (render with `dot -Tpng`) ---\n{figure1}");

    // Figure 2 generalized: the composed SYS process under the optimal
    // policy.
    let figure2 = dot::system_to_dot(&system, solution.policy())?;
    println!(
        "--- Figure 2 / SYS process: {} nodes of DOT omitted; first lines ---",
        system.n_states()
    );
    for line in figure2.lines().take(8) {
        println!("{line}");
    }
    println!("...");
    Ok(())
}
