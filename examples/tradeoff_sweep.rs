//! End-to-end reproduction of the Figure 4 frontier as CSV on stdout:
//! the optimal power/delay trade-off curve (weight sweep) and the five
//! N-policy points, each with both functional (analytic) and simulated
//! values.
//!
//! Run with `cargo run --release --example tradeoff_sweep > frontier.csv`.

use dpm::model::{optimize, PmPolicy, PmSystem, SpModel, SrModel};
use dpm::sim::controller::TableController;
use dpm::sim::workload::PoissonWorkload;
use dpm::sim::{SimConfig, Simulator};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let system = PmSystem::builder()
        .provider(SpModel::dac99_server()?)
        .requestor(SrModel::poisson(1.0 / 6.0)?)
        .capacity(5)
        .build()?;

    println!("kind,parameter,power_analytic,queue_analytic,power_simulated,queue_simulated");

    let simulate =
        |policy: &PmPolicy, seed: u64| -> Result<(f64, f64), Box<dyn std::error::Error>> {
            let report = Simulator::new(
                system.provider().clone(),
                system.capacity(),
                PoissonWorkload::new(1.0 / 6.0)?,
                TableController::new(&system, policy)?,
                SimConfig::new(seed).max_requests(50_000),
            )
            .run()?;
            Ok((report.average_power(), report.average_queue_length()))
        };

    // The optimal frontier: geometric weight sweep.
    let mut weight = 0.05;
    let mut seen: Vec<(f64, f64)> = Vec::new();
    while weight < 200.0 {
        let solution = optimize::optimal_policy(&system, weight)?;
        let a = (
            solution.metrics().power(),
            solution.metrics().queue_length(),
        );
        let duplicate = seen
            .iter()
            .any(|&(p, q)| (p - a.0).abs() < 1e-9 && (q - a.1).abs() < 1e-9);
        if !duplicate {
            seen.push(a);
            let (sp, sq) = simulate(solution.policy(), 100 + seen.len() as u64)?;
            println!("optimal,{weight:.4},{:.4},{:.4},{sp:.4},{sq:.4}", a.0, a.1);
        }
        weight *= 1.25;
    }

    // The N-policy points.
    for n in 1..=5 {
        let policy = PmPolicy::n_policy(&system, n, 2)?;
        let m = system.evaluate(&policy)?;
        let (sp, sq) = simulate(&policy, 200 + n as u64)?;
        println!(
            "n-policy,{n},{:.4},{:.4},{sp:.4},{sq:.4}",
            m.power(),
            m.queue_length()
        );
    }
    Ok(())
}
