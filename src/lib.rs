//! # dpm — Dynamic Power Management via Continuous-Time Markov Decision Processes
//!
//! A from-scratch Rust implementation of **Qiu & Pedram, "Dynamic Power
//! Management Based on Continuous-Time Markov Decision Processes"
//! (DAC 1999)**: the system model (service provider / queue / requestor
//! with transfer states), the policy-iteration optimizer, the LP and
//! heuristic baselines, and the event-driven simulator used to validate
//! everything.
//!
//! This crate is a facade re-exporting the workspace layers:
//!
//! | Module | Crate | Contents |
//! |---|---|---|
//! | [`linalg`] | `dpm-linalg` | dense matrices, CSR sparse matrices, LU, Kronecker algebra, iterative and preconditioned Krylov solvers (BiCGSTAB, GMRES(m), ILU(0)) |
//! | [`ctmc`] | `dpm-ctmc` | Markov chains: dense and sparse generators, the unified `stationary::Solver` builder over `Method::{Lu, Gth, Power, Iterative, BiCgStab, Gmres}`, transient analysis, rewards |
//! | [`lp`] | `dpm-lp` | two-phase primal simplex |
//! | [`mdp`] | `dpm-mdp` | CTMDP/DTMDP solvers: policy iteration (unichain & multichain, dense or sparse-iterative evaluation backend), value iteration, occupation-measure LPs |
//! | [`model`] | `dpm-core` | the paper's power-management model and policy optimization; SYS generators assemble densely or directly into CSR |
//! | [`sim`] | `dpm-sim` | the event-driven simulator, workloads and controllers |
//! | [`serve`] | `dpm-serve` | compiled-policy serving: `CompiledPolicy` artifacts and the sharded multi-core event runtime |
//! | [`cluster`] | `dpm-cluster` | K-server fleets: matrix-free Kronecker joint solves, exchangeability lumping, two-level cluster CTMDP control |
//!
//! Large state spaces (queue capacities in the hundreds and beyond)
//! should use the sparse pipeline — [`model`]'s
//! `PmSystem::sparse_generator_for` feeding [`ctmc`]'s
//! `stationary::Solver` with `Method::Iterative` or, from ~10⁴ states,
//! the ILU(0)-preconditioned `Method::BiCgStab`/`Method::Gmres` tier —
//! which the `scaling` bench measures at 30–40× faster than dense LU by
//! Q = 200 while agreeing to ~1e-12.
//!
//! # Quickstart
//!
//! Optimize a power-management policy for the paper's three-mode server
//! and check it beats the greedy heuristic on weighted cost:
//!
//! ```
//! use dpm::model::{optimize, PmPolicy, PmSystem, SpModel, SrModel};
//!
//! # fn main() -> Result<(), dpm::model::DpmError> {
//! let system = PmSystem::builder()
//!     .provider(SpModel::dac99_server()?)
//!     .requestor(SrModel::poisson(1.0 / 6.0)?)
//!     .capacity(5)
//!     .build()?;
//! let weight = 1.0;
//! let optimal = optimize::optimal_policy(&system, weight)?;
//! let greedy = system.evaluate(&PmPolicy::greedy(&system)?)?;
//! let optimal_cost =
//!     optimal.metrics().power() + weight * optimal.metrics().queue_length();
//! let greedy_cost = greedy.power() + weight * greedy.queue_length();
//! assert!(optimal_cost <= greedy_cost);
//! # Ok(())
//! # }
//! ```
//!
//! # Serving a compiled policy
//!
//! Once optimized, a policy can be lowered into a [`serve`]
//! `CompiledPolicy` — a dense O(1) action table — and driven over a
//! fleet of simulated systems by the sharded runtime. The outcome is
//! bit-identical at every shard count:
//!
//! ```
//! use dpm::model::{PmPolicy, PmSystem, SpModel, SrModel};
//! use dpm::serve::{serve, CompiledPolicy, ServeConfig};
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let system = PmSystem::builder()
//!     .provider(SpModel::dac99_server()?)
//!     .requestor(SrModel::poisson(1.0 / 6.0)?)
//!     .capacity(5)
//!     .build()?;
//! let compiled = CompiledPolicy::compile(&system, &PmPolicy::greedy(&system)?)?;
//! let config = ServeConfig::new(7).systems(8).requests_per_system(200);
//! let serial = serve(&system, &compiled, &config)?;
//! let sharded = serve(&system, &compiled, &config.clone().shards(4))?;
//! assert_eq!(serial.fingerprint(), sharded.fingerprint());
//! # Ok(())
//! # }
//! ```
//!
//! See the `examples/` directory for end-to-end scenarios and the
//! `dpm-bench` crate for the binaries that regenerate every table and
//! figure of the paper.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub use dpm_cluster as cluster;
pub use dpm_core as model;
pub use dpm_ctmc as ctmc;
pub use dpm_harness as harness;
pub use dpm_linalg as linalg;
pub use dpm_lp as lp;
pub use dpm_mdp as mdp;
pub use dpm_serve as serve;
pub use dpm_sim as sim;
