//! Offline vendored subset of the `proptest` API.
//!
//! The build environment for this workspace cannot reach crates.io, so this
//! crate reimplements the slice of `proptest` the workspace's property tests
//! use and is patched in via `[patch.crates-io]`:
//!
//! * the [`Strategy`] trait with `prop_map` / `prop_flat_map` combinators;
//! * strategies for numeric ranges, tuples (arity 2–6), [`Just`], and
//!   [`collection::vec`](prop::collection::vec);
//! * the [`proptest!`], [`prop_assert!`] and [`prop_assert_eq!`] macros;
//! * [`ProptestConfig`] with `with_cases`.
//!
//! Semantics: each test runs `cases` random inputs drawn from a
//! deterministic per-test RNG (seeded from the test name, overridable with
//! the `PROPTEST_SEED` environment variable). There is **no shrinking** —
//! on failure the offending input is printed in full instead. That trades
//! minimal counterexamples for zero dependencies, which is the right trade
//! for a hermetic build.

use std::fmt::Debug;
use std::ops::{Range, RangeInclusive};

pub use rand::rngs::StdRng as TestRng;
use rand::{Rng, SeedableRng};

/// Runtime configuration for a `proptest!` block.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ProptestConfig {
    /// Number of random cases to run per test.
    pub cases: u32,
}

impl ProptestConfig {
    /// A configuration running `cases` random cases.
    #[must_use]
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        // Upstream proptest's default.
        ProptestConfig { cases: 256 }
    }
}

/// A recipe for generating random values of an associated type.
pub trait Strategy {
    /// The type of value this strategy generates.
    type Value: Debug;

    /// Draws one value.
    fn new_value(&self, rng: &mut TestRng) -> Self::Value;

    /// Transforms generated values with `f`.
    fn prop_map<O: Debug, F: Fn(Self::Value) -> O>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
    {
        Map { inner: self, f }
    }

    /// Feeds generated values into `f` to pick a dependent strategy.
    fn prop_flat_map<S: Strategy, F: Fn(Self::Value) -> S>(self, f: F) -> FlatMap<Self, F>
    where
        Self: Sized,
    {
        FlatMap { inner: self, f }
    }
}

/// Strategy returned by [`Strategy::prop_map`].
#[derive(Debug, Clone)]
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, O: Debug, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
    type Value = O;

    fn new_value(&self, rng: &mut TestRng) -> O {
        (self.f)(self.inner.new_value(rng))
    }
}

/// Strategy returned by [`Strategy::prop_flat_map`].
#[derive(Debug, Clone)]
pub struct FlatMap<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, T: Strategy, F: Fn(S::Value) -> T> Strategy for FlatMap<S, F> {
    type Value = T::Value;

    fn new_value(&self, rng: &mut TestRng) -> T::Value {
        (self.f)(self.inner.new_value(rng)).new_value(rng)
    }
}

/// A strategy that always yields a clone of one value.
#[derive(Debug, Clone)]
pub struct Just<T: Clone + Debug>(pub T);

impl<T: Clone + Debug> Strategy for Just<T> {
    type Value = T;

    fn new_value(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

macro_rules! range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;

            fn new_value(&self, rng: &mut TestRng) -> $t {
                rng.gen_range(self.clone())
            }
        }
    )*};
}
range_strategy!(f64, usize, u64);

impl Strategy for RangeInclusive<usize> {
    type Value = usize;

    fn new_value(&self, rng: &mut TestRng) -> usize {
        rng.gen_range(self.clone())
    }
}

macro_rules! tuple_strategy {
    ($($name:ident),+) => {
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);

            #[allow(non_snake_case)]
            fn new_value(&self, rng: &mut TestRng) -> Self::Value {
                let ($($name,)+) = self;
                ($($name.new_value(rng),)+)
            }
        }
    };
}
tuple_strategy!(A, B);
tuple_strategy!(A, B, C);
tuple_strategy!(A, B, C, D);
tuple_strategy!(A, B, C, D, E);
tuple_strategy!(A, B, C, D, E, F);

pub mod prop {
    //! Namespaced strategy constructors (`prop::collection::vec` etc.).

    pub mod collection {
        //! Strategies for collections.

        use super::super::{Strategy, TestRng};
        use rand::Rng;
        use std::fmt::Debug;
        use std::ops::{Range, RangeInclusive};

        /// Anything `vec` accepts as a length specification.
        pub trait IntoSizeRange {
            /// Draws a concrete length.
            fn pick_len(&self, rng: &mut TestRng) -> usize;
        }

        impl IntoSizeRange for usize {
            fn pick_len(&self, _rng: &mut TestRng) -> usize {
                *self
            }
        }

        impl IntoSizeRange for Range<usize> {
            fn pick_len(&self, rng: &mut TestRng) -> usize {
                rng.gen_range(self.clone())
            }
        }

        impl IntoSizeRange for RangeInclusive<usize> {
            fn pick_len(&self, rng: &mut TestRng) -> usize {
                rng.gen_range(self.clone())
            }
        }

        /// Strategy for `Vec`s whose elements come from `element` and whose
        /// length is drawn from `size`.
        pub fn vec<S: Strategy, L: IntoSizeRange>(element: S, size: L) -> VecStrategy<S, L> {
            VecStrategy { element, size }
        }

        /// Strategy returned by [`vec()`].
        #[derive(Debug, Clone)]
        pub struct VecStrategy<S, L> {
            element: S,
            size: L,
        }

        impl<S: Strategy, L: IntoSizeRange> Strategy for VecStrategy<S, L>
        where
            S::Value: Debug,
        {
            type Value = Vec<S::Value>;

            fn new_value(&self, rng: &mut TestRng) -> Vec<S::Value> {
                let len = self.size.pick_len(rng);
                (0..len).map(|_| self.element.new_value(rng)).collect()
            }
        }
    }
}

/// Builds the deterministic per-test RNG: seeded from the test's name so
/// every test gets an independent, reproducible stream, overridable with
/// `PROPTEST_SEED` for replaying a CI failure locally.
#[must_use]
pub fn test_rng(test_name: &str) -> TestRng {
    let base = std::env::var("PROPTEST_SEED")
        .ok()
        .and_then(|s| s.parse::<u64>().ok())
        .unwrap_or(0x5DEE_CE66_D1CE_5EED);
    // FNV-1a over the test name.
    let mut hash: u64 = 0xcbf2_9ce4_8422_2325;
    for byte in test_name.bytes() {
        hash ^= u64::from(byte);
        hash = hash.wrapping_mul(0x0000_0100_0000_01B3);
    }
    TestRng::seed_from_u64(base ^ hash)
}

pub mod prelude {
    //! Everything a property-test file needs in scope.

    pub use crate::prop;
    pub use crate::{prop_assert, prop_assert_eq, proptest};
    pub use crate::{Just, ProptestConfig, Strategy};
}

/// Defines property tests: each `fn name(bindings) { body }` becomes a
/// `#[test]` that runs the body over random inputs drawn from the binding
/// strategies.
#[macro_export]
macro_rules! proptest {
    // Internal munching arms must precede the public catch-all arm, or the
    // catch-all would re-wrap `@cfg ...` input and recurse forever.
    (@cfg ($config:expr)) => {};
    (@cfg ($config:expr)
        $(#[$meta:meta])*
        fn $name:ident($($pat:pat in $strategy:expr),+ $(,)?) $body:block
        $($rest:tt)*
    ) => {
        $(#[$meta])*
        fn $name() {
            let config: $crate::ProptestConfig = $config;
            let mut rng = $crate::test_rng(concat!(module_path!(), "::", stringify!($name)));
            for case in 0..config.cases {
                let mut inputs: ::std::vec::Vec<::std::string::String> =
                    ::std::vec::Vec::new();
                $(
                    let value = {
                        let strategy = $strategy;
                        $crate::Strategy::new_value(&strategy, &mut rng)
                    };
                    inputs.push(format!("  {} = {:?}", stringify!($pat), value));
                    let $pat = value;
                )+
                let outcome = ::std::panic::catch_unwind(::std::panic::AssertUnwindSafe(
                    || { $body }
                ));
                if let Err(panic) = outcome {
                    eprintln!(
                        "proptest case {}/{} of {} failed with input(s):",
                        case + 1,
                        config.cases,
                        stringify!($name),
                    );
                    for line in &inputs {
                        eprintln!("{line}");
                    }
                    ::std::panic::resume_unwind(panic);
                }
            }
        }
        $crate::proptest!(@cfg ($config) $($rest)*);
    };
    // With an explicit config.
    (
        #![proptest_config($config:expr)]
        $($rest:tt)*
    ) => {
        $crate::proptest!(@cfg ($config) $($rest)*);
    };
    // Without a config line.
    (
        $($rest:tt)*
    ) => {
        $crate::proptest!(@cfg ($crate::ProptestConfig::default()) $($rest)*);
    };
}

/// Asserts a condition inside a `proptest!` body.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        assert!($cond);
    };
    ($cond:expr, $($fmt:tt)*) => {
        assert!($cond, $($fmt)*);
    };
}

/// Asserts equality inside a `proptest!` body.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr) => {
        assert_eq!($left, $right);
    };
    ($left:expr, $right:expr, $($fmt:tt)*) => {
        assert_eq!($left, $right, $($fmt)*);
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    fn square(n: usize) -> impl Strategy<Value = usize> {
        Just(n).prop_map(|x| x * x)
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        #[test]
        fn ranges_respect_bounds(x in 1.5f64..2.5, n in 3usize..9) {
            prop_assert!((1.5..2.5).contains(&x));
            prop_assert!((3..9).contains(&n));
        }

        #[test]
        fn tuples_and_flat_map_compose(
            (n, values) in (1usize..5).prop_flat_map(|n| {
                (Just(n), prop::collection::vec(0.0f64..1.0, n))
            })
        ) {
            prop_assert_eq!(values.len(), n);
            prop_assert!(values.iter().all(|v| (0.0..1.0).contains(v)));
        }

        #[test]
        fn map_applies(sq in (2usize..4).prop_flat_map(square)) {
            prop_assert!(sq == 4 || sq == 9);
        }
    }

    #[test]
    fn rng_is_deterministic_per_test() {
        use crate::Strategy as _;
        let strat = 0.0f64..1.0;
        let mut a = crate::test_rng("x");
        let mut b = crate::test_rng("x");
        assert_eq!(strat.new_value(&mut a), strat.new_value(&mut b));
        let mut c = crate::test_rng("y");
        assert_ne!(strat.new_value(&mut a), strat.new_value(&mut c));
    }
}
