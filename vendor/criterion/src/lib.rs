//! Offline vendored subset of the `criterion` benchmarking API.
//!
//! The build environment for this workspace cannot reach crates.io, so this
//! crate provides an API-compatible stand-in for the slice of `criterion`
//! the workspace's benches use ([`Criterion`], benchmark groups,
//! [`BenchmarkId`], [`Bencher::iter`], the [`criterion_group!`] /
//! [`criterion_main!`] macros and [`black_box`]).
//!
//! Measurement model: each benchmark is warmed up briefly, then timed over
//! `sample_size` samples of adaptively-chosen iteration counts; the median
//! per-iteration time is reported on stdout. No plots, no statistics files
//! — just honest wall-clock medians, which is what the workspace's
//! comparative benches need.

use std::fmt;
use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// Target total measurement time per benchmark.
const TARGET_SAMPLE_TIME: Duration = Duration::from_millis(100);
/// Warm-up budget per benchmark.
const WARMUP_TIME: Duration = Duration::from_millis(50);

/// Top-level benchmark driver.
#[derive(Debug, Clone)]
pub struct Criterion {
    sample_size: usize,
    filter: Option<String>,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion {
            sample_size: 20,
            filter: std::env::args().skip(1).find(|a| !a.starts_with('-')),
        }
    }
}

impl Criterion {
    /// Sets the number of timed samples per benchmark.
    #[must_use]
    pub fn sample_size(mut self, n: usize) -> Self {
        assert!(n >= 2, "sample size {n} must be at least 2");
        self.sample_size = n;
        self
    }

    /// Starts a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            criterion: self,
            name: name.into(),
        }
    }

    /// Runs a single stand-alone benchmark.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, id: &str, f: F) -> &mut Self {
        let id = id.to_owned();
        run_benchmark(&id, self.sample_size, self.filter.as_deref(), f);
        self
    }
}

/// A named group of benchmarks sharing the parent driver's configuration.
pub struct BenchmarkGroup<'a> {
    criterion: &'a mut Criterion,
    name: String,
}

impl BenchmarkGroup<'_> {
    /// Runs a benchmark inside this group.
    pub fn bench_function<F: FnMut(&mut Bencher)>(
        &mut self,
        id: impl IntoBenchmarkId,
        f: F,
    ) -> &mut Self {
        let full = format!("{}/{}", self.name, id.into_benchmark_id());
        run_benchmark(
            &full,
            self.criterion.sample_size,
            self.criterion.filter.as_deref(),
            f,
        );
        self
    }

    /// Runs a benchmark parameterized by `input`.
    pub fn bench_with_input<I: ?Sized, F: FnMut(&mut Bencher, &I)>(
        &mut self,
        id: impl IntoBenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self {
        self.bench_function(id, |b| f(b, input))
    }

    /// Ends the group (kept for API compatibility; nothing to flush).
    pub fn finish(self) {}
}

/// Identifier of one benchmark within a group.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BenchmarkId {
    text: String,
}

impl BenchmarkId {
    /// An id combining a function name and a parameter value.
    pub fn new(function_name: impl Into<String>, parameter: impl fmt::Display) -> Self {
        BenchmarkId {
            text: format!("{}/{}", function_name.into(), parameter),
        }
    }

    /// An id carrying only a parameter value.
    pub fn from_parameter(parameter: impl fmt::Display) -> Self {
        BenchmarkId {
            text: parameter.to_string(),
        }
    }
}

impl fmt::Display for BenchmarkId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.text)
    }
}

/// Anything accepted as a benchmark identifier.
pub trait IntoBenchmarkId {
    /// Renders the identifier.
    fn into_benchmark_id(self) -> String;
}

impl IntoBenchmarkId for BenchmarkId {
    fn into_benchmark_id(self) -> String {
        self.text
    }
}

impl IntoBenchmarkId for &str {
    fn into_benchmark_id(self) -> String {
        self.to_owned()
    }
}

impl IntoBenchmarkId for String {
    fn into_benchmark_id(self) -> String {
        self
    }
}

/// Passed to benchmark closures; [`Bencher::iter`] times a routine.
pub struct Bencher {
    iters_per_sample: u64,
    samples: Vec<Duration>,
    sample_size: usize,
}

impl Bencher {
    /// Times `routine`, collecting the configured number of samples.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        // Warm up and size the per-sample iteration count so one sample
        // costs roughly TARGET_SAMPLE_TIME / sample_size.
        let warmup_start = Instant::now();
        let mut warmup_iters: u64 = 0;
        while warmup_start.elapsed() < WARMUP_TIME {
            black_box(routine());
            warmup_iters += 1;
        }
        let per_iter = warmup_start.elapsed().div_f64(warmup_iters as f64);
        let budget = TARGET_SAMPLE_TIME.div_f64(self.sample_size as f64);
        self.iters_per_sample = (budget.as_secs_f64() / per_iter.as_secs_f64().max(1e-9))
            .ceil()
            .max(1.0) as u64;

        for _ in 0..self.sample_size {
            let start = Instant::now();
            for _ in 0..self.iters_per_sample {
                black_box(routine());
            }
            self.samples
                .push(start.elapsed().div_f64(self.iters_per_sample as f64));
        }
    }
}

fn run_benchmark<F: FnMut(&mut Bencher)>(
    id: &str,
    sample_size: usize,
    filter: Option<&str>,
    mut f: F,
) {
    if let Some(filter) = filter {
        if !id.contains(filter) {
            return;
        }
    }
    let mut bencher = Bencher {
        iters_per_sample: 1,
        samples: Vec::with_capacity(sample_size),
        sample_size,
    };
    f(&mut bencher);
    if bencher.samples.is_empty() {
        println!("{id:<50} (no samples collected)");
        return;
    }
    bencher.samples.sort_unstable();
    let median = bencher.samples[bencher.samples.len() / 2];
    let best = bencher.samples[0];
    println!(
        "{id:<50} median {:>12} best {:>12} ({} samples x {} iters)",
        format_duration(median),
        format_duration(best),
        bencher.samples.len(),
        bencher.iters_per_sample,
    );
}

fn format_duration(d: Duration) -> String {
    let nanos = d.as_nanos();
    if nanos < 1_000 {
        format!("{nanos} ns")
    } else if nanos < 1_000_000 {
        format!("{:.2} us", nanos as f64 / 1e3)
    } else if nanos < 1_000_000_000 {
        format!("{:.2} ms", nanos as f64 / 1e6)
    } else {
        format!("{:.2} s", nanos as f64 / 1e9)
    }
}

/// Declares a group of benchmark functions.
#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $config:expr; targets = $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion: $crate::Criterion = $config;
            $($target(&mut criterion);)+
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        $crate::criterion_group!(
            name = $name;
            config = $crate::Criterion::default();
            targets = $($target),+
        );
    };
}

/// Declares the benchmark binary's `main`, running the given groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn benchmark_id_formats() {
        assert_eq!(BenchmarkId::new("gth", 50).to_string(), "gth/50");
        assert_eq!(BenchmarkId::from_parameter(7).to_string(), "7");
    }

    #[test]
    fn duration_formatting_scales() {
        assert!(format_duration(Duration::from_nanos(500)).ends_with("ns"));
        assert!(format_duration(Duration::from_micros(50)).ends_with("us"));
        assert!(format_duration(Duration::from_millis(5)).ends_with("ms"));
        assert!(format_duration(Duration::from_secs(2)).ends_with('s'));
    }

    #[test]
    fn bencher_collects_samples() {
        let mut c = Criterion {
            sample_size: 3,
            filter: None,
        };
        // Smoke: a trivial benchmark runs to completion quickly.
        c.bench_function("noop", |b| b.iter(|| 1 + 1));
    }
}
