//! Offline vendored ChaCha8-based generator.
//!
//! Implements the real ChaCha8 stream cipher core (D. J. Bernstein) behind
//! the `rand_chacha::ChaCha8Rng` name, satisfying the `rand` traits vendored
//! in this workspace. Streams are deterministic in the seed and portable
//! across platforms (little-endian serialization throughout), which is what
//! reproducible experiment replay requires; they are not bit-identical to
//! upstream `rand_chacha`'s.

use rand::{RngCore, SeedableRng};

const ROUNDS: usize = 8;

/// A deterministic, seedable random-number generator backed by the ChaCha8
/// stream cipher.
#[derive(Debug, Clone)]
pub struct ChaCha8Rng {
    /// Cipher key (seed), 8 words.
    key: [u32; 8],
    /// 64-bit block counter.
    counter: u64,
    /// Current 16-word output block.
    block: [u32; 16],
    /// Next unread word within `block` (16 = exhausted).
    index: usize,
}

#[inline]
fn quarter_round(state: &mut [u32; 16], a: usize, b: usize, c: usize, d: usize) {
    state[a] = state[a].wrapping_add(state[b]);
    state[d] = (state[d] ^ state[a]).rotate_left(16);
    state[c] = state[c].wrapping_add(state[d]);
    state[b] = (state[b] ^ state[c]).rotate_left(12);
    state[a] = state[a].wrapping_add(state[b]);
    state[d] = (state[d] ^ state[a]).rotate_left(8);
    state[c] = state[c].wrapping_add(state[d]);
    state[b] = (state[b] ^ state[c]).rotate_left(7);
}

impl ChaCha8Rng {
    fn refill(&mut self) {
        // "expand 32-byte k" constants.
        let mut state: [u32; 16] = [
            0x6170_7865,
            0x3320_646e,
            0x7962_2d32,
            0x6b20_6574,
            self.key[0],
            self.key[1],
            self.key[2],
            self.key[3],
            self.key[4],
            self.key[5],
            self.key[6],
            self.key[7],
            self.counter as u32,
            (self.counter >> 32) as u32,
            0,
            0,
        ];
        let input = state;
        for _ in 0..ROUNDS / 2 {
            // Column round.
            quarter_round(&mut state, 0, 4, 8, 12);
            quarter_round(&mut state, 1, 5, 9, 13);
            quarter_round(&mut state, 2, 6, 10, 14);
            quarter_round(&mut state, 3, 7, 11, 15);
            // Diagonal round.
            quarter_round(&mut state, 0, 5, 10, 15);
            quarter_round(&mut state, 1, 6, 11, 12);
            quarter_round(&mut state, 2, 7, 8, 13);
            quarter_round(&mut state, 3, 4, 9, 14);
        }
        for (word, &init) in state.iter_mut().zip(input.iter()) {
            *word = word.wrapping_add(init);
        }
        self.block = state;
        self.counter = self.counter.wrapping_add(1);
        self.index = 0;
    }
}

impl RngCore for ChaCha8Rng {
    fn next_u32(&mut self) -> u32 {
        if self.index >= 16 {
            self.refill();
        }
        let word = self.block[self.index];
        self.index += 1;
        word
    }

    fn next_u64(&mut self) -> u64 {
        let lo = self.next_u32() as u64;
        let hi = self.next_u32() as u64;
        lo | (hi << 32)
    }
}

impl SeedableRng for ChaCha8Rng {
    type Seed = [u8; 32];

    fn from_seed(seed: Self::Seed) -> Self {
        let mut key = [0u32; 8];
        for (i, chunk) in seed.chunks_exact(4).enumerate() {
            key[i] = u32::from_le_bytes(chunk.try_into().expect("4-byte chunk"));
        }
        ChaCha8Rng {
            key,
            counter: 0,
            block: [0; 16],
            index: 16,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::Rng;

    #[test]
    fn deterministic_in_seed() {
        let mut a = ChaCha8Rng::seed_from_u64(7);
        let mut b = ChaCha8Rng::seed_from_u64(7);
        for _ in 0..100 {
            assert_eq!(a.next_u32(), b.next_u32());
        }
    }

    #[test]
    fn different_seeds_diverge() {
        let mut a = ChaCha8Rng::seed_from_u64(1);
        let mut b = ChaCha8Rng::seed_from_u64(2);
        let same = (0..32).filter(|_| a.next_u32() == b.next_u32()).count();
        assert!(same < 4);
    }

    #[test]
    fn clone_replays_stream() {
        let mut a = ChaCha8Rng::seed_from_u64(3);
        for _ in 0..5 {
            a.next_u32();
        }
        let mut b = a.clone();
        for _ in 0..50 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn uniform_f64_mean_is_half() {
        let mut rng = ChaCha8Rng::seed_from_u64(11);
        let n = 100_000;
        let mean: f64 = (0..n).map(|_| rng.gen::<f64>()).sum::<f64>() / n as f64;
        assert!((mean - 0.5).abs() < 0.01, "mean {mean}");
    }

    #[test]
    fn counter_advances_across_blocks() {
        let mut rng = ChaCha8Rng::seed_from_u64(5);
        let first_block: Vec<u32> = (0..16).map(|_| rng.next_u32()).collect();
        let second_block: Vec<u32> = (0..16).map(|_| rng.next_u32()).collect();
        assert_ne!(first_block, second_block);
    }
}
