//! Offline vendored subset of the `rand` 0.8 API.
//!
//! The build environment for this workspace has no access to crates.io, so
//! the handful of `rand` items the workspace actually uses are reimplemented
//! here and patched in via `[patch.crates-io]` in the workspace manifest.
//! The subset is API-compatible with `rand` 0.8 for the covered items:
//!
//! * [`RngCore`] — the raw 32/64-bit generator interface;
//! * [`Rng`] — `gen`, `gen_range`, `gen_bool` convenience methods;
//! * [`SeedableRng`] — `from_seed` / `seed_from_u64` construction (the
//!   `seed_from_u64` key-stretching matches rand's SplitMix64 scheme so
//!   seeded streams stay stable);
//! * [`rngs::StdRng`] — a small xoshiro256++ generator.
//!
//! Value streams are deterministic and stable across releases of this
//! workspace, which is all the experiment harness requires, but they are
//! not bit-identical to upstream `rand`'s.

/// The raw interface implemented by every random-number generator.
pub trait RngCore {
    /// Returns the next 32 random bits.
    fn next_u32(&mut self) -> u32;
    /// Returns the next 64 random bits.
    fn next_u64(&mut self) -> u64;
    /// Fills `dest` with random bytes.
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        let mut chunks = dest.chunks_exact_mut(8);
        for chunk in &mut chunks {
            chunk.copy_from_slice(&self.next_u64().to_le_bytes());
        }
        let rem = chunks.into_remainder();
        if !rem.is_empty() {
            let bytes = self.next_u64().to_le_bytes();
            rem.copy_from_slice(&bytes[..rem.len()]);
        }
    }
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u32(&mut self) -> u32 {
        (**self).next_u32()
    }
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
}

/// Types that can be sampled uniformly by [`Rng::gen`].
pub trait Standard: Sized {
    /// Draws one value from `rng`.
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl Standard for f64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        // 53 random mantissa bits mapped to [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for f32 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u32() >> 8) as f32 * (1.0 / (1u32 << 24) as f32)
    }
}

impl Standard for u32 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u32()
    }
}

impl Standard for u64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64()
    }
}

impl Standard for bool {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u32() & 1 == 1
    }
}

/// Ranges that [`Rng::gen_range`] can sample from.
pub trait SampleRange<T> {
    /// Draws one value uniformly from the range.
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

impl SampleRange<f64> for core::ops::Range<f64> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "cannot sample empty range");
        self.start + f64::sample(rng) * (self.end - self.start)
    }
}

impl SampleRange<usize> for core::ops::Range<usize> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> usize {
        assert!(self.start < self.end, "cannot sample empty range");
        let span = (self.end - self.start) as u64;
        // Rejection sampling to stay unbiased.
        let zone = u64::MAX - u64::MAX % span;
        loop {
            let v = rng.next_u64();
            if v < zone {
                return self.start + (v % span) as usize;
            }
        }
    }
}

impl SampleRange<u64> for core::ops::Range<u64> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> u64 {
        assert!(self.start < self.end, "cannot sample empty range");
        let span = self.end - self.start;
        let zone = u64::MAX - u64::MAX % span;
        loop {
            let v = rng.next_u64();
            if v < zone {
                return self.start + v % span;
            }
        }
    }
}

impl SampleRange<usize> for core::ops::RangeInclusive<usize> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> usize {
        let (start, end) = (*self.start(), *self.end());
        assert!(start <= end, "cannot sample empty range");
        if start == 0 && end == usize::MAX {
            return rng.next_u64() as usize;
        }
        (start..end + 1).sample_single(rng)
    }
}

/// Convenience sampling methods, available on every [`RngCore`].
pub trait Rng: RngCore {
    /// Draws a value of type `T` from the standard distribution
    /// (`f64`/`f32` uniform in `[0, 1)`, integers uniform over the type).
    fn gen<T: Standard>(&mut self) -> T {
        T::sample(self)
    }

    /// Draws a value uniformly from `range`.
    fn gen_range<T, S: SampleRange<T>>(&mut self, range: S) -> T {
        range.sample_single(self)
    }

    /// Returns `true` with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool {
        assert!((0.0..=1.0).contains(&p), "probability {p} out of range");
        f64::sample(self) < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Generators that can be constructed from a seed.
pub trait SeedableRng: Sized {
    /// The fixed-size seed type.
    type Seed: AsMut<[u8]> + Default;

    /// Builds the generator from a full seed.
    fn from_seed(seed: Self::Seed) -> Self;

    /// Builds the generator from a `u64`, stretching it over the full seed
    /// with SplitMix64 (the same scheme upstream `rand` uses).
    fn seed_from_u64(mut state: u64) -> Self {
        let mut seed = Self::Seed::default();
        for chunk in seed.as_mut().chunks_mut(8) {
            // SplitMix64.
            state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^= z >> 31;
            let bytes = z.to_le_bytes();
            chunk.copy_from_slice(&bytes[..chunk.len()]);
        }
        Self::from_seed(seed)
    }
}

pub mod rngs {
    //! Bundled generators.

    use super::{RngCore, SeedableRng};

    /// A small, fast xoshiro256++ generator standing in for `rand`'s
    /// `StdRng`. Not cryptographically secure.
    #[derive(Debug, Clone)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl RngCore for StdRng {
        fn next_u32(&mut self) -> u32 {
            (self.next_u64() >> 32) as u32
        }

        fn next_u64(&mut self) -> u64 {
            let result = self.s[0]
                .wrapping_add(self.s[3])
                .rotate_left(23)
                .wrapping_add(self.s[0]);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }
    }

    impl SeedableRng for StdRng {
        type Seed = [u8; 32];

        fn from_seed(seed: Self::Seed) -> Self {
            let mut s = [0u64; 4];
            for (i, chunk) in seed.chunks_exact(8).enumerate() {
                s[i] = u64::from_le_bytes(chunk.try_into().expect("8-byte chunk"));
            }
            // Avoid the all-zero state, where xoshiro is a fixed point.
            if s == [0, 0, 0, 0] {
                s = [
                    0x9E37_79B9_7F4A_7C15,
                    0xBF58_476D_1CE4_E5B9,
                    0x94D0_49BB_1331_11EB,
                    0x2545_F491_4F6C_DD1D,
                ];
            }
            StdRng { s }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rngs::StdRng;

    #[test]
    fn gen_f64_is_in_unit_interval() {
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..1000 {
            let x: f64 = rng.gen();
            assert!((0.0..1.0).contains(&x));
        }
    }

    #[test]
    fn gen_range_respects_bounds() {
        let mut rng = StdRng::seed_from_u64(2);
        for _ in 0..1000 {
            let x = rng.gen_range(3usize..7);
            assert!((3..7).contains(&x));
            let y = rng.gen_range(-2.0f64..2.0);
            assert!((-2.0..2.0).contains(&y));
        }
    }

    #[test]
    fn seeding_is_deterministic() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..16 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn distinct_seeds_differ() {
        let mut a = StdRng::seed_from_u64(1);
        let mut b = StdRng::seed_from_u64(2);
        assert_ne!(a.next_u64(), b.next_u64());
    }

    #[test]
    fn gen_bool_tracks_probability() {
        let mut rng = StdRng::seed_from_u64(7);
        let hits = (0..10_000).filter(|_| rng.gen_bool(0.25)).count();
        assert!((2000..3000).contains(&hits), "hits {hits}");
    }

    #[test]
    fn fill_bytes_covers_partial_chunks() {
        let mut rng = StdRng::seed_from_u64(9);
        let mut buf = [0u8; 11];
        rng.fill_bytes(&mut buf);
        assert!(buf.iter().any(|&b| b != 0));
    }
}
