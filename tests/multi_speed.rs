//! Multi-speed (DVS-style) provider: the paper's general model with more
//! than one active mode, exercising action constraint (3) and
//! load-dependent speed selection.

use dpm::model::{optimize, PmSystem, SpModel, SrModel, SysState};

fn dvs_system(lambda: f64) -> PmSystem {
    PmSystem::builder()
        .provider(SpModel::dvs_server().expect("valid preset"))
        .requestor(SrModel::poisson(lambda).expect("positive rate"))
        .capacity(4)
        .build()
        .expect("valid composition")
}

#[test]
fn constraint_3_forbids_slowing_down_at_full_transfer() {
    let sys = dvs_system(0.3);
    // Fast mode (0) at the full-queue transfer: may stay or go... but not
    // switch to the slower active mode (1).
    let full_transfer = sys
        .index_of(SysState::Transfer {
            mode: 0,
            departing: 4,
        })
        .expect("exists");
    let dests = sys.action_destinations(full_transfer);
    assert!(dests.contains(&0), "staying fast is legal");
    assert!(!dests.contains(&1), "slowing down at a full queue is not");
    // The slow mode may speed up there.
    let slow_transfer = sys
        .index_of(SysState::Transfer {
            mode: 1,
            departing: 4,
        })
        .expect("exists");
    assert!(sys.action_destinations(slow_transfer).contains(&0));
}

#[test]
fn below_capacity_transfers_may_downshift() {
    let sys = dvs_system(0.3);
    let transfer = sys
        .index_of(SysState::Transfer {
            mode: 0,
            departing: 2,
        })
        .expect("exists");
    assert!(sys.action_destinations(transfer).contains(&1));
}

#[test]
fn both_active_modes_get_transfer_states() {
    let sys = dvs_system(0.3);
    // 3 modes x 5 stable + 2 active modes x 4 transfer.
    assert_eq!(sys.n_states(), 15 + 8);
}

#[test]
fn optimizer_prefers_slow_service_under_light_load() {
    // Light load with moderate delay weight: the slow mode's 18 W beat the
    // fast mode's 50 W; the policy should serve at least partly slow.
    let sys = dvs_system(0.05);
    let solution = optimize::optimal_policy(&sys, 1.0).expect("solvable");
    let uses_slow = (0..sys.n_states())
        .any(|i| sys.state(i).requests_present() > 0 && solution.policy().destination(i) == 1);
    assert!(
        uses_slow,
        "light-load optimum should route some service through the slow mode"
    );
    // And it must be cheaper than the fast-only always-on bound.
    assert!(solution.metrics().power() < 50.0 * 0.2);
}

#[test]
fn optimizer_uses_fast_service_under_heavy_load_pressure() {
    // Heavy load with a strong delay weight: serving slowly queues too
    // much; the optimum leans on the fast mode.
    let sys = dvs_system(0.35);
    let solution = optimize::optimal_policy(&sys, 50.0).expect("solvable");
    let metrics_fast_needed = solution.metrics();
    // Queue stays short only if the fast mode dominates service.
    assert!(
        metrics_fast_needed.queue_length() < 1.5,
        "queue {} too long for a delay-averse optimum",
        metrics_fast_needed.queue_length()
    );
    let busy_fast = (0..sys.n_states())
        .filter(|&i| matches!(sys.state(i), SysState::Stable { mode: 0, jobs } if jobs >= 2));
    for i in busy_fast {
        assert_eq!(
            solution.policy().destination(i),
            0,
            "delay-averse optimum should keep serving fast when busy"
        );
    }
}

#[test]
fn frontier_is_monotone_for_dvs_server_too() {
    let sys = dvs_system(0.2);
    let frontier = optimize::sweep(&sys, &[0.2, 1.0, 5.0, 25.0]).expect("solvable");
    for pair in frontier.windows(2) {
        assert!(pair[1].metrics().queue_length() <= pair[0].metrics().queue_length() + 1e-9);
        assert!(pair[1].metrics().power() >= pair[0].metrics().power() - 1e-9);
    }
}

#[test]
fn analytic_and_simulated_agree_for_dvs() {
    use dpm::sim::controller::TableController;
    use dpm::sim::workload::PoissonWorkload;
    use dpm::sim::{SimConfig, Simulator};

    let sys = dvs_system(0.25);
    let solution = optimize::optimal_policy(&sys, 2.0).expect("solvable");
    let report = Simulator::new(
        sys.provider().clone(),
        sys.capacity(),
        PoissonWorkload::new(0.25).expect("positive rate"),
        TableController::new(&sys, solution.policy()).expect("valid"),
        SimConfig::new(777).max_requests(40_000),
    )
    .run()
    .expect("simulation completes");
    assert!(
        (report.average_power() - solution.metrics().power()).abs()
            < 0.03 * solution.metrics().power(),
        "power: sim {} vs fn {}",
        report.average_power(),
        solution.metrics().power()
    );
    assert!(
        (report.average_queue_length() - solution.metrics().queue_length()).abs()
            < 0.06 * solution.metrics().queue_length().max(0.05),
        "queue: sim {} vs fn {}",
        report.average_queue_length(),
        solution.metrics().queue_length()
    );
}
