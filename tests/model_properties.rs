//! Property-based tests of the composed power-management model over
//! randomly generated providers and workloads.

use dpm::model::{optimize, tensor, PmPolicy, PmSystem, SpModel, SrModel};
use proptest::prelude::*;

/// Random provider: one active mode plus 1–2 inactive modes, fully
/// connected switches with random times and energies.
fn random_provider() -> impl Strategy<Value = SpModel> {
    (
        0.2f64..3.0,                                                // service rate
        1.0f64..50.0,                                               // active power
        prop::collection::vec((0.01f64..2.0, 0.0f64..20.0), 2..=6), // switch (time, energy) pool
        1usize..=2,                                                 // number of inactive modes
        0.01f64..5.0,                                               // inactive power scale
    )
        .prop_map(|(mu, pow_active, switches, n_inactive, pow_scale)| {
            let mut b = SpModel::builder();
            b.mode("active", mu, pow_active);
            for k in 0..n_inactive {
                b.mode(format!("inactive{k}"), 0.0, pow_scale * (k as f64 + 0.1));
            }
            let n = 1 + n_inactive;
            let mut pool = switches.into_iter().cycle();
            for from in 0..n {
                for to in 0..n {
                    if from != to {
                        let (time, energy) = pool.next().expect("cycled pool");
                        b.switch_time(from, to, time)
                            .expect("positive time")
                            .energy(from, to, energy)
                            .expect("non-negative energy");
                    }
                }
            }
            b.build().expect("valid random provider")
        })
}

fn random_system() -> impl Strategy<Value = PmSystem> {
    (random_provider(), 0.05f64..1.5, 2usize..=5).prop_map(|(sp, lambda, capacity)| {
        PmSystem::builder()
            .provider(sp)
            .requestor(SrModel::poisson(lambda).expect("positive rate"))
            .capacity(capacity)
            .build()
            .expect("valid random system")
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn state_indexing_is_a_bijection(system in random_system()) {
        for i in 0..system.n_states() {
            prop_assert_eq!(system.index_of(system.state(i)), Some(i));
        }
    }

    #[test]
    fn action_sets_are_nonempty_and_valid(system in random_system()) {
        let sp = system.provider();
        for i in 0..system.n_states() {
            let dests = system.action_destinations(i);
            prop_assert!(!dests.is_empty());
            let mode = system.state(i).mode();
            for &d in dests {
                prop_assert!(sp.can_switch(mode, d));
            }
        }
    }

    #[test]
    fn policy_chains_are_valid_generators(system in random_system()) {
        // Every named policy induces a validated generator with the right
        // dimension.
        for policy in [
            PmPolicy::greedy(&system).expect("valid"),
            PmPolicy::always_on(&system, 0).expect("mode 0 is active"),
        ] {
            let g = system.generator_for(&policy).expect("valid chain");
            prop_assert_eq!(g.n_states(), system.n_states());
        }
    }

    #[test]
    fn sparse_assembly_matches_dense_assembly(system in random_system()) {
        // The CSR-backed SYS assembly must agree with the dense path
        // entry-for-entry, for every named policy, on arbitrary systems.
        for policy in [
            PmPolicy::greedy(&system).expect("valid"),
            PmPolicy::always_on(&system, 0).expect("mode 0 is active"),
        ] {
            let dense = system.generator_for(&policy).expect("valid chain");
            let sparse = system.sparse_generator_for(&policy).expect("valid chain");
            prop_assert_eq!(sparse.n_states(), dense.n_states());
            for i in 0..dense.n_states() {
                for j in 0..dense.n_states() {
                    prop_assert_eq!(
                        sparse.rate(i, j),
                        dense.rate(i, j),
                        "entry ({}, {})", i, j
                    );
                }
                prop_assert_eq!(sparse.exit_rate(i), dense.exit_rate(i));
            }
        }
    }

    #[test]
    fn greedy_metrics_are_physical(system in random_system()) {
        let m = system
            .evaluate(&PmPolicy::greedy(&system).expect("valid"))
            .expect("evaluable");
        let sp = system.provider();
        let max_power = (0..sp.n_modes()).fold(0.0f64, |acc, s| acc.max(sp.power(s)));
        // Power bounded by occupancy max plus switching overhead; queue
        // within [0, Q]; loss below lambda.
        prop_assert!(m.power() >= 0.0);
        prop_assert!(m.queue_length() >= -1e-9);
        prop_assert!(m.queue_length() <= system.capacity() as f64 + 1e-9);
        prop_assert!(m.loss_rate() >= -1e-9);
        prop_assert!(m.loss_rate() <= system.requestor().rate() + 1e-9);
        prop_assert!(m.power() < max_power * 3.0 + 100.0, "power {} absurd", m.power());
    }

    #[test]
    fn optimal_weighted_cost_beats_heuristics(system in random_system()) {
        let weight = 1.0;
        let optimal = optimize::optimal_policy(&system, weight).expect("solvable");
        let optimal_cost =
            optimal.metrics().power() + weight * optimal.metrics().queue_length();
        for heuristic in [
            PmPolicy::greedy(&system).expect("valid"),
            PmPolicy::always_on(&system, 0).expect("valid"),
        ] {
            let m = system.evaluate(&heuristic).expect("evaluable");
            let cost = m.power() + weight * m.queue_length();
            prop_assert!(
                optimal_cost <= cost + 1e-6 * (1.0 + cost),
                "optimal {optimal_cost} vs heuristic {cost}"
            );
        }
    }

    #[test]
    fn frontier_is_monotone_on_random_systems(system in random_system()) {
        let frontier =
            optimize::sweep(&system, &[0.1, 1.0, 10.0]).expect("solvable");
        for pair in frontier.windows(2) {
            prop_assert!(
                pair[1].metrics().queue_length()
                    <= pair[0].metrics().queue_length() + 1e-7
            );
            prop_assert!(
                pair[1].metrics().power() >= pair[0].metrics().power() - 1e-7
            );
        }
    }

    #[test]
    fn tensor_composition_matches_direct_assembly(system in random_system()) {
        // The wake-up command (mode 0, active by construction) is valid in
        // every state of every random system, so the pure tensor form
        // applies.
        let composed = tensor::compose_uniform(&system, 0).expect("wake composes");
        let direct = system
            .generator_for(&tensor::uniform_policy(&system, 0).expect("valid"))
            .expect("valid chain");
        let diff = &composed - direct.matrix();
        prop_assert!(diff.max_abs() < 1e-6 * (1.0 + system.instant_rate()));
    }

    #[test]
    fn evaluation_matches_ctmdp_gain(system in random_system()) {
        // The analysis module's weighted metrics equal the CTMDP gain of
        // the same policy under the same weight.
        let weight = 0.7;
        let policy = PmPolicy::greedy(&system).expect("valid");
        let metrics = system.evaluate(&policy).expect("evaluable");
        let mdp = system.ctmdp(weight).expect("valid weight");
        let eval = dpm::mdp::average::evaluate_multichain(
            &mdp,
            &policy.to_mdp_policy(&system).expect("valid"),
        )
        .expect("evaluable");
        let expected = metrics.power() + weight * metrics.queue_length();
        let gain = eval.gains()[system.initial_state_index()];
        prop_assert!(
            (gain - expected).abs() < 1e-6 * (1.0 + expected.abs()),
            "gain {gain} vs metrics {expected}"
        );
    }
}
