//! The paper's headline experimental claims, asserted as integration tests
//! (fast variants of the `dpm-bench` binaries; see EXPERIMENTS.md for the
//! full-scale runs).

use dpm::model::{optimize, PmPolicy, PmSystem, SpModel, SrModel};
use dpm::sim::controller::{GreedyController, TableController, TimeoutController};
use dpm::sim::workload::PoissonWorkload;
use dpm::sim::{SimConfig, SimReport, Simulator};

fn system_at(lambda: f64) -> PmSystem {
    PmSystem::builder()
        .provider(SpModel::dac99_server().expect("paper parameters"))
        .requestor(SrModel::poisson(lambda).expect("positive rate"))
        .capacity(5)
        .build()
        .expect("valid composition")
}

fn simulate(system: &PmSystem, policy: &PmPolicy, seed: u64) -> SimReport {
    Simulator::new(
        system.provider().clone(),
        system.capacity(),
        PoissonWorkload::new(system.requestor().rate()).expect("positive rate"),
        TableController::new(system, policy).expect("valid policy"),
        SimConfig::new(seed).max_requests(30_000),
    )
    .run()
    .expect("simulation completes")
}

/// Figure 4's claim: the optimal trade-off curve lies on or below every
/// N-policy point (weighted-cost dominance at every weight).
#[test]
fn figure4_optimal_curve_dominates_n_policies() {
    let system = system_at(1.0 / 6.0);
    let weights = [0.1, 0.5, 1.0, 1.5, 2.0, 5.0, 60.0];
    let frontier: Vec<_> = weights
        .iter()
        .map(|&w| optimize::optimal_policy(&system, w).expect("solvable"))
        .collect();
    for n in 1..=5 {
        let np = system
            .evaluate(&PmPolicy::n_policy(&system, n, 2).expect("valid"))
            .expect("unichain");
        for solution in &frontier {
            let w = solution.weight();
            let optimal_cost = solution.metrics().power() + w * solution.metrics().queue_length();
            let np_cost = np.power() + w * np.queue_length();
            assert!(
                optimal_cost <= np_cost + 1e-6,
                "N = {n} beats the optimum at w = {w}"
            );
        }
    }
}

/// Table 1's claim: the Little's-law approximation error stays within ~5%.
#[test]
fn table1_littles_law_error_within_bounds() {
    for denominator in [8.0, 6.0, 4.0] {
        let lambda = 1.0 / denominator;
        let system = system_at(lambda);
        let solution = optimize::constrained_policy(&system, 1.0).expect("attainable");
        let report = simulate(&system, solution.policy(), 42);
        let approx = lambda * report.average_waiting_time();
        let actual = report.average_queue_length();
        let error = (approx - actual).abs() / actual;
        assert!(
            error < 0.05,
            "lambda = 1/{denominator}: approximation error {error}"
        );
    }
}

/// Figure 5's claim: among policies meeting the waiting-time constraint,
/// the CTMDP-optimal one dissipates the least power.
#[test]
fn figure5_optimal_wins_among_constraint_satisfying_policies() {
    let denominator = 6.0;
    let lambda = 1.0 / denominator;
    let system = system_at(lambda);
    let solution = optimize::constrained_policy(&system, 1.0).expect("attainable");
    let optimal = simulate(&system, solution.policy(), 43);
    // The queue-length proxy for the waiting-time constraint carries the
    // Little's-law approximation error Table 1 quantifies (~5%).
    let limit = denominator * 1.05;
    assert!(
        optimal.average_waiting_time() <= limit,
        "optimal violates its own constraint: {} > {limit}",
        optimal.average_waiting_time()
    );

    // Heuristics: any that meets the constraint must burn at least as much
    // power.
    let heuristics: Vec<SimReport> = vec![
        Simulator::new(
            system.provider().clone(),
            system.capacity(),
            PoissonWorkload::new(lambda).expect("rate"),
            GreedyController::new(system.provider()).expect("valid"),
            SimConfig::new(44).max_requests(30_000),
        )
        .run()
        .expect("completes"),
        Simulator::new(
            system.provider().clone(),
            system.capacity(),
            PoissonWorkload::new(lambda).expect("rate"),
            TimeoutController::new(system.provider(), 1.0, 2).expect("valid"),
            SimConfig::new(45).max_requests(30_000),
        )
        .run()
        .expect("completes"),
        Simulator::new(
            system.provider().clone(),
            system.capacity(),
            PoissonWorkload::new(lambda).expect("rate"),
            TimeoutController::new(system.provider(), denominator, 2).expect("valid"),
            SimConfig::new(46).max_requests(30_000),
        )
        .run()
        .expect("completes"),
    ];
    for report in &heuristics {
        if report.average_waiting_time() <= limit {
            assert!(
                optimal.average_power() <= report.average_power() + 0.25,
                "{} satisfies the constraint with less power ({} vs {})",
                report.policy(),
                report.average_power(),
                optimal.average_power()
            );
        }
    }
}

/// The switching-traffic argument: the asynchronous optimal policy issues
/// far fewer mode switches than an eager heuristic at comparable service.
#[test]
fn optimal_policy_switches_less_than_short_timeout() {
    let system = system_at(1.0 / 6.0);
    let solution = optimize::optimal_policy(&system, 1.0).expect("solvable");
    let optimal = simulate(&system, solution.policy(), 47);
    let eager = Simulator::new(
        system.provider().clone(),
        system.capacity(),
        PoissonWorkload::new(1.0 / 6.0).expect("rate"),
        TimeoutController::new(system.provider(), 0.0, 2).expect("valid"),
        SimConfig::new(47).max_requests(30_000),
    )
    .run()
    .expect("completes");
    assert!(optimal.switches() < eager.switches());
}
