//! Section V's theoretical remark, verified exhaustively:
//!
//! > "When the server has only two states: *active* and *sleeping*, it can
//! > easily be shown that the N-policy gives the minimum power compared to
//! > other stationary policies with the same performance constraint. Our
//! > experiments show that, however, for a system with more than two
//! > server states, the N-policy does not give the optimal power-delay
//! > tradeoff."
//!
//! Both halves are checked: for a 2-mode server every Pareto-optimal
//! deterministic stationary policy is (metrically) an N-policy; for the
//! paper's 3-mode server the weighted optimum strictly beats the best
//! N-policy at some weight.

use dpm::model::{optimize, PmPolicy, PmSystem, SpModel, SrModel};

fn two_mode_system() -> PmSystem {
    let mut b = SpModel::builder();
    b.mode("active", 1.0 / 1.5, 40.0);
    b.mode("sleeping", 0.0, 0.1);
    b.switch_time(0, 1, 0.2)
        .expect("valid")
        .energy(0, 1, 0.5)
        .expect("valid");
    b.switch_time(1, 0, 1.1)
        .expect("valid")
        .energy(1, 0, 11.0)
        .expect("valid");
    PmSystem::builder()
        .provider(b.build().expect("valid model"))
        .requestor(SrModel::poisson(1.0 / 6.0).expect("positive rate"))
        .capacity(4)
        .build()
        .expect("valid composition")
}

/// Enumerates every deterministic stationary policy of the composed system.
fn all_policies(system: &PmSystem) -> Vec<PmPolicy> {
    let counts: Vec<usize> = (0..system.n_states())
        .map(|i| system.action_destinations(i).len())
        .collect();
    let total: usize = counts.iter().product();
    assert!(total <= 100_000, "state space too large to enumerate");
    let mut out = Vec::with_capacity(total);
    let mut current = vec![0usize; counts.len()];
    'outer: loop {
        let destinations: Vec<usize> = current
            .iter()
            .enumerate()
            .map(|(i, &a)| system.action_destinations(i)[a])
            .collect();
        out.push(PmPolicy::new(system, destinations).expect("valid by construction"));
        let mut pos = 0;
        loop {
            if pos == counts.len() {
                break 'outer;
            }
            current[pos] += 1;
            if current[pos] < counts[pos] {
                break;
            }
            current[pos] = 0;
            pos += 1;
        }
    }
    out
}

#[test]
fn two_mode_weighted_optimum_is_always_an_n_policy() {
    // The operative form of the claim (optimal power under a performance
    // constraint, solved Lagrangian-style): at every power/delay weight,
    // the best deterministic stationary policy costs no less than the best
    // N-policy — the N-policies span the lower convex hull of the
    // achievable (power, queue) set.
    let system = two_mode_system();
    let policies = all_policies(&system);
    assert!(policies.len() > 10, "enumeration should be non-trivial");

    // The classical result (Heyman, the paper's [12]) is for a lossless
    // queue. With a finite lossy buffer, policies lazier than any N-policy
    // can "save" power by shedding load, so the claim applies in the
    // low-loss regime — the paper's own operating range. Enumerated
    // policies that drop more than 1% of requests are excluded.
    let lambda = system.requestor().rate();
    let metrics: Vec<(f64, f64)> = policies
        .iter()
        .filter_map(|p| {
            let m = system.evaluate(p).expect("evaluable");
            if m.loss_rate() <= 0.01 * lambda {
                Some((m.power(), m.queue_length()))
            } else {
                None
            }
        })
        .collect();
    assert!(
        metrics.len() > 5,
        "low-loss policy set should be non-trivial"
    );
    let mut n_points: Vec<(f64, f64)> = (1..=system.capacity())
        .map(|n| {
            let p = PmPolicy::n_policy(&system, n, 1).expect("valid");
            let m = system.evaluate(&p).expect("evaluable");
            (m.power(), m.queue_length())
        })
        .collect();
    // The family's degenerate endpoint: never deactivate (the optimal
    // choice once shutdown overhead outweighs any idle saving).
    let always_on = system
        .evaluate(&PmPolicy::always_on(&system, 0).expect("valid"))
        .expect("evaluable");
    n_points.push((always_on.power(), always_on.queue_length()));

    let mut weight = 0.01;
    let mut asserted = 0;
    while weight < 1_000.0 {
        let best_any = metrics
            .iter()
            .map(|&(p, q)| p + weight * q)
            .fold(f64::INFINITY, f64::min);
        let best_n = n_points
            .iter()
            .map(|&(p, q)| p + weight * q)
            .fold(f64::INFINITY, f64::min);
        assert!(
            best_n <= best_any + 1e-6 * (1.0 + best_any),
            "w = {weight}: best low-loss policy {best_any:.6} beats best N-policy {best_n:.6}"
        );
        asserted += 1;
        weight *= 1.8;
    }
    assert!(asserted > 10);
}

#[test]
fn three_mode_n_policy_is_strictly_suboptimal_somewhere() {
    // The second half of the claim: with the waiting mode available the
    // optimum beats every N-policy at some weight.
    let system = PmSystem::builder()
        .provider(SpModel::dac99_server().expect("paper parameters"))
        .requestor(SrModel::poisson(1.0 / 6.0).expect("positive rate"))
        .capacity(5)
        .build()
        .expect("valid composition");
    let mut strictly_better_somewhere = false;
    for weight in [0.5, 1.0, 2.0, 5.0, 60.0] {
        let optimal = optimize::optimal_policy(&system, weight).expect("solvable");
        let optimal_cost = optimal.metrics().power() + weight * optimal.metrics().queue_length();
        let best_n_cost = (1..=5)
            .map(|n| {
                let m = system
                    .evaluate(&PmPolicy::n_policy(&system, n, 2).expect("valid"))
                    .expect("evaluable");
                m.power() + weight * m.queue_length()
            })
            .fold(f64::INFINITY, f64::min);
        if optimal_cost < best_n_cost - 1e-3 {
            strictly_better_somewhere = true;
        }
        assert!(optimal_cost <= best_n_cost + 1e-9, "optimum cannot lose");
    }
    assert!(
        strictly_better_somewhere,
        "with three modes the optimum should strictly beat N-policies at some weight"
    );
}
