//! Cross-crate integration: the full paper pipeline from model building
//! through policy optimization to simulation, exercised through the `dpm`
//! facade.

use dpm::ctmc::stationary;
use dpm::model::{optimize, tensor, PmPolicy, PmSystem, SpModel, SrModel};
use dpm::sim::controller::TableController;
use dpm::sim::workload::PoissonWorkload;
use dpm::sim::{SimConfig, Simulator};

fn paper_system() -> PmSystem {
    PmSystem::builder()
        .provider(SpModel::dac99_server().expect("paper parameters"))
        .requestor(SrModel::poisson(1.0 / 6.0).expect("positive rate"))
        .capacity(5)
        .build()
        .expect("valid composition")
}

#[test]
fn full_pipeline_model_to_simulation() {
    let system = paper_system();
    // 1. Optimize.
    let solution = optimize::optimal_policy(&system, 1.0).expect("solvable");
    // 2. Validate the induced chain is well-formed and its stationary
    //    analysis matches the solver's metrics.
    let generator = system
        .generator_for(solution.policy())
        .expect("valid policy");
    let pi = stationary::gain_vector(
        &generator,
        &dpm::linalg::DVector::from_fn(system.n_states(), |i| system.delay_cost(i)),
    )
    .expect("solvable chain");
    let start = system.initial_state_index();
    assert!((pi[start] - solution.metrics().queue_length()).abs() < 1e-9);
    // 3. Simulate and compare.
    let report = Simulator::new(
        system.provider().clone(),
        system.capacity(),
        PoissonWorkload::new(1.0 / 6.0).expect("positive rate"),
        TableController::new(&system, solution.policy()).expect("valid"),
        SimConfig::new(2026).max_requests(40_000),
    )
    .run()
    .expect("simulation completes");
    assert!(
        (report.average_power() - solution.metrics().power()).abs()
            < 0.03 * solution.metrics().power()
    );
}

#[test]
fn tensor_composition_agrees_with_direct_assembly() {
    let system = paper_system();
    let composed = tensor::compose_uniform(&system, 0).expect("wake command composes");
    let direct = system
        .generator_for(&tensor::uniform_policy(&system, 0).expect("valid"))
        .expect("valid policy");
    let diff = &composed - direct.matrix();
    assert!(diff.max_abs() < 1e-9);
}

#[test]
fn solvers_cross_validate_on_the_paper_model() {
    let system = paper_system();
    let mdp = system.ctmdp(1.0).expect("valid weight");
    let initial = PmPolicy::always_on(&system, 0)
        .expect("valid")
        .to_mdp_policy(&system)
        .expect("valid");
    let pi = dpm::mdp::average::policy_iteration_multichain(
        &mdp,
        initial,
        &dpm::mdp::average::Options::default(),
    )
    .expect("solvable");
    let lp = dpm::mdp::lp::solve_average(&mdp).expect("feasible");
    let start = system.initial_state_index();
    assert!(
        (pi.gain_from(start) - lp.average_cost()).abs() < 1e-6,
        "PI {} vs LP {}",
        pi.gain_from(start),
        lp.average_cost()
    );
}

#[test]
fn optimal_policy_is_stable_across_reconstruction() {
    // Building the system twice and solving twice gives identical policies
    // (determinism end to end).
    let a = optimize::optimal_policy(&paper_system(), 1.0).expect("solvable");
    let b = optimize::optimal_policy(&paper_system(), 1.0).expect("solvable");
    assert_eq!(a.policy(), b.policy());
    assert_eq!(a.metrics(), b.metrics());
}

#[test]
fn facade_reexports_compose() {
    // Each layer is reachable through the facade and interoperates.
    let v = dpm::linalg::DVector::from_vec(vec![0.5, 0.5]);
    assert!((v.sum() - 1.0).abs() < 1e-12);
    let g = dpm::ctmc::Generator::builder(2)
        .rate(0, 1, 1.0)
        .rate(1, 0, 1.0)
        .build()
        .expect("valid");
    let (pi, _) = dpm::ctmc::stationary::Solver::new(dpm::ctmc::stationary::Method::Gth)
        .solve(&g)
        .expect("irreducible");
    assert!((pi[0] - 0.5).abs() < 1e-12);
    let mut p = dpm::lp::Problem::minimize(vec![1.0]).expect("non-empty");
    p.add_constraint(vec![1.0], dpm::lp::Relation::Ge, 2.0)
        .expect("arity");
    let s = dpm::lp::solve(&p)
        .expect("within budget")
        .optimal()
        .expect("feasible");
    assert!((s.objective() - 2.0).abs() < 1e-9);
}
