//! Model-vs-simulation validation: the paper's Section V claim that "the
//! functional value and the simulated value are almost the same".
//!
//! Every test builds a policy, computes its long-run metrics analytically
//! from the CTMC (the *functional values*), simulates it, and checks
//! agreement within statistical tolerance.

use dpm_core::{optimize, PmPolicy, PmSystem, SpModel, SrModel};
use dpm_sim::controller::{NPolicyController, RandomizedController, TableController};
use dpm_sim::workload::PoissonWorkload;
use dpm_sim::{SimConfig, Simulator};

fn paper_system(lambda: f64) -> PmSystem {
    PmSystem::builder()
        .provider(SpModel::dac99_server().expect("paper parameters are valid"))
        .requestor(SrModel::poisson(lambda).expect("positive rate"))
        .capacity(5)
        .build()
        .expect("paper system composes")
}

fn simulate(system: &PmSystem, policy: &PmPolicy, seed: u64, requests: u64) -> dpm_sim::SimReport {
    Simulator::new(
        system.provider().clone(),
        system.capacity(),
        PoissonWorkload::new(system.requestor().rate()).expect("positive rate"),
        TableController::new(system, policy).expect("policy matches system"),
        SimConfig::new(seed).max_requests(requests),
    )
    .run()
    .expect("simulation completes")
}

#[test]
fn optimal_policy_functional_values_match_simulation() {
    let system = paper_system(1.0 / 6.0);
    let solution = optimize::optimal_policy(&system, 1.0).expect("solvable");
    let analytic = solution.metrics();
    let simulated = simulate(&system, solution.policy(), 11, 50_000);
    assert!(
        (simulated.average_power() - analytic.power()).abs() < 0.03 * analytic.power(),
        "power: simulated {} vs functional {}",
        simulated.average_power(),
        analytic.power()
    );
    assert!(
        (simulated.average_queue_length() - analytic.queue_length()).abs()
            < 0.05 * analytic.queue_length().max(0.1),
        "queue: simulated {} vs functional {}",
        simulated.average_queue_length(),
        analytic.queue_length()
    );
}

#[test]
fn n_policy_functional_values_match_simulation() {
    let system = paper_system(1.0 / 6.0);
    for n in [1, 3, 5] {
        let policy = PmPolicy::n_policy(&system, n, 2).expect("valid N-policy");
        let analytic = system.evaluate(&policy).expect("unichain");
        let simulated = simulate(&system, &policy, 13 + n as u64, 50_000);
        assert!(
            (simulated.average_power() - analytic.power()).abs() < 0.03 * analytic.power(),
            "N = {n} power: simulated {} vs functional {}",
            simulated.average_power(),
            analytic.power()
        );
        assert!(
            (simulated.average_queue_length() - analytic.queue_length()).abs()
                < 0.05 * analytic.queue_length().max(0.1),
            "N = {n} queue: simulated {} vs functional {}",
            simulated.average_queue_length(),
            analytic.queue_length()
        );
    }
}

#[test]
fn n_policy_controller_agrees_with_table_form() {
    // The behavioral N-policy controller and the table-driven PmPolicy
    // encoding must produce statistically identical systems.
    let system = paper_system(1.0 / 6.0);
    let policy = PmPolicy::n_policy(&system, 2, 2).expect("valid N-policy");
    let table = simulate(&system, &policy, 21, 30_000);
    let behavioral = Simulator::new(
        system.provider().clone(),
        system.capacity(),
        PoissonWorkload::new(1.0 / 6.0).expect("positive rate"),
        NPolicyController::new(system.provider(), 2, 2).expect("valid"),
        SimConfig::new(21).max_requests(30_000),
    )
    .run()
    .expect("simulation completes");
    // Same seed, same decisions -> identical sample paths.
    assert_eq!(table.completed(), behavioral.completed());
    assert!((table.average_power() - behavioral.average_power()).abs() < 1e-12);
}

#[test]
fn little_law_holds_in_simulation() {
    // Table 1's approximation: #waiting ~ lambda_eff * waiting time.
    let system = paper_system(1.0 / 6.0);
    let policy = PmPolicy::n_policy(&system, 2, 2).expect("valid N-policy");
    let report = simulate(&system, &policy, 31, 50_000);
    let lambda_eff = (report.arrivals() - report.lost()) as f64 / report.duration();
    let approx = lambda_eff * report.average_waiting_time();
    let actual = report.average_queue_length();
    let error = (approx - actual).abs() / actual;
    assert!(
        error < 0.05,
        "Little approximation error {error} (approx {approx}, actual {actual})"
    );
}

#[test]
fn randomized_lp_policy_meets_constraint_in_simulation() {
    let system = paper_system(1.0 / 6.0);
    let bound = 1.0;
    let exact = optimize::constrained_lp(&system, bound).expect("feasible bound");
    // The LP was solved on a less stiff surrogate; its policy is indexed
    // identically, so it drives the simulator directly.
    let report = Simulator::new(
        system.provider().clone(),
        system.capacity(),
        PoissonWorkload::new(1.0 / 6.0).expect("positive rate"),
        RandomizedController::new(&system, exact.policy()).expect("shapes match"),
        SimConfig::new(41).max_requests(50_000),
    )
    .run()
    .expect("simulation completes");
    assert!(
        report.average_queue_length() < bound * 1.06,
        "simulated queue {} far above bound {bound}",
        report.average_queue_length()
    );
    assert!(
        (report.average_power() - exact.power()).abs() < 0.05 * exact.power(),
        "power: simulated {} vs LP {}",
        report.average_power(),
        exact.power()
    );
}

#[test]
fn switch_frequency_matches_analytic() {
    let system = paper_system(1.0 / 6.0);
    let policy = PmPolicy::greedy(&system).expect("valid greedy");
    let analytic = system.evaluate(&policy).expect("unichain");
    let report = simulate(&system, &policy, 51, 50_000);
    let simulated_rate = report.switches() as f64 / report.duration();
    assert!(
        (simulated_rate - analytic.switch_frequency()).abs() < 0.05 * analytic.switch_frequency(),
        "switch rate: simulated {simulated_rate} vs functional {}",
        analytic.switch_frequency()
    );
}

#[test]
fn higher_arrival_rates_need_more_power_under_optimal_policies() {
    // Shape check across the Figure 5 sweep range: more load means the
    // optimal policy must spend more power to hold the same queue bound.
    let mut powers = Vec::new();
    for denominator in [8.0, 5.0, 3.0] {
        let lambda = 1.0 / denominator;
        let system = paper_system(lambda);
        let solution = optimize::constrained_policy(&system, 1.0).expect("attainable");
        let report = simulate(&system, solution.policy(), 61, 30_000);
        assert!(
            report.average_power() > 0.0 && report.average_power() < 40.0,
            "power out of range"
        );
        powers.push(report.average_power());
    }
    assert!(
        powers[0] < powers[2],
        "lambda=1/8 power {} should be below lambda=1/3 power {}",
        powers[0],
        powers[2]
    );
}

#[test]
fn polling_controller_consultation_rate_scales_with_slice() {
    // The synchronous wrapper's consultation rate approaches
    // (1/slice + event rate); halving the slice roughly doubles the
    // timer-driven share.
    use dpm_sim::controller::{LumpedTableController, PollingController};
    let system = paper_system(1.0 / 6.0);
    let lumped = dpm_core::lumped::LumpedSystem::from_system(&system);
    let table = lumped
        .optimal_destinations_constrained(1.0)
        .expect("feasible bound");
    let run = |delta: f64| {
        Simulator::new(
            system.provider().clone(),
            system.capacity(),
            PoissonWorkload::new(1.0 / 6.0).expect("positive rate"),
            PollingController::new(
                LumpedTableController::new(system.provider(), system.capacity(), table.clone())
                    .expect("valid table"),
                delta,
            )
            .expect("valid period"),
            SimConfig::new(71).max_requests(20_000),
        )
        .run()
        .expect("simulation completes")
    };
    let fine = run(0.5);
    let coarse = run(4.0);
    assert!(
        fine.consultation_rate() > coarse.consultation_rate() * 1.8,
        "fine {} vs coarse {}",
        fine.consultation_rate(),
        coarse.consultation_rate()
    );
    // Both at least the polling frequency itself.
    assert!(fine.consultation_rate() > 2.0);
    assert!(coarse.consultation_rate() > 0.25);
}

#[test]
fn asynchronous_optimal_consults_only_on_state_changes() {
    let system = paper_system(1.0 / 6.0);
    let solution = dpm_core::optimize::optimal_policy(&system, 1.0).expect("solvable");
    let report = simulate(&system, solution.policy(), 73, 20_000);
    // Events per request: arrival + service + a switch or two, plus the
    // zero-time transfer continuations — each consults once; an
    // asynchronous PM stays within a small constant per request.
    let per_request = report.consultations() as f64 / report.arrivals() as f64;
    assert!(
        per_request < 6.0,
        "async PM consulted {per_request} times per request"
    );
}
