//! Property-based tests of the event-driven simulator.

use dpm_core::SpModel;
use dpm_sim::controller::{AlwaysOnController, GreedyController, NPolicyController};
use dpm_sim::workload::{PoissonWorkload, TraceWorkload};
use dpm_sim::{SimConfig, Simulator};
use proptest::prelude::*;

fn sp() -> SpModel {
    SpModel::dac99_server().expect("paper parameters")
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Conservation: every generated request is either completed or lost
    /// (the run drains its queue before ending).
    #[test]
    fn requests_are_conserved(
        (seed, lambda, capacity) in (0u64..1_000, 0.05f64..0.6, 1usize..6)
    ) {
        let report = Simulator::new(
            sp(),
            capacity,
            PoissonWorkload::new(lambda).expect("positive"),
            GreedyController::new(&sp()).expect("valid"),
            SimConfig::new(seed).max_requests(2_000),
        )
        .run()
        .expect("completes");
        prop_assert_eq!(report.arrivals(), 2_000);
        prop_assert_eq!(report.completed() + report.lost(), report.arrivals());
    }

    /// Determinism: identical configuration ⇒ identical report.
    #[test]
    fn runs_are_deterministic((seed, n) in (0u64..500, 2usize..5)) {
        let run = || {
            Simulator::new(
                sp(),
                5,
                PoissonWorkload::new(0.2).expect("positive"),
                NPolicyController::new(&sp(), n, 2).expect("valid"),
                SimConfig::new(seed).max_requests(1_500),
            )
            .run()
            .expect("completes")
        };
        prop_assert_eq!(run(), run());
    }

    /// Physicality: time-averaged power lies between the lightest and the
    /// heaviest mode (plus switching energy), and the queue within [0, Q].
    #[test]
    fn metrics_are_physical(
        (seed, lambda, n) in (0u64..500, 0.05f64..0.5, 1usize..5)
    ) {
        let report = Simulator::new(
            sp(),
            5,
            PoissonWorkload::new(lambda).expect("positive"),
            NPolicyController::new(&sp(), n, 2).expect("valid"),
            SimConfig::new(seed).max_requests(2_000),
        )
        .run()
        .expect("completes");
        prop_assert!(report.average_power() >= 0.1 - 1e-9, "below sleep power");
        prop_assert!(report.average_power() <= 45.0, "above active power + switching");
        prop_assert!(report.average_queue_length() >= 0.0);
        prop_assert!(report.average_queue_length() <= 5.0);
        prop_assert!(report.average_waiting_time() >= 0.0);
        prop_assert!(report.duration() > 0.0);
    }

    /// Trace replay: total duration at least the sum of the gaps, and the
    /// arrival count matches the trace length.
    #[test]
    fn trace_replay_is_faithful(
        gaps in prop::collection::vec(0.1f64..20.0, 5..60)
    ) {
        let total: f64 = gaps.iter().sum();
        let count = gaps.len() as u64;
        let report = Simulator::new(
            sp(),
            5,
            TraceWorkload::new(gaps).expect("valid gaps"),
            AlwaysOnController::new(&sp()),
            SimConfig::new(9),
        )
        .run()
        .expect("completes");
        prop_assert_eq!(report.arrivals(), count);
        prop_assert!(report.duration() >= total - 1e-9);
    }

    /// Monotonicity in N (statistical): deeper thresholds sleep longer, so
    /// power decreases and queueing increases from N = 1 to N = 4 over a
    /// long run.
    #[test]
    fn n_policy_monotonicity(seed in 0u64..200) {
        let run = |n: usize| {
            Simulator::new(
                sp(),
                5,
                PoissonWorkload::new(1.0 / 6.0).expect("positive"),
                NPolicyController::new(&sp(), n, 2).expect("valid"),
                SimConfig::new(seed).max_requests(12_000),
            )
            .run()
            .expect("completes")
        };
        let shallow = run(1);
        let deep = run(4);
        prop_assert!(
            deep.average_power() < shallow.average_power(),
            "N=4 power {} !< N=1 power {}",
            deep.average_power(),
            shallow.average_power()
        );
        prop_assert!(
            deep.average_queue_length() > shallow.average_queue_length(),
            "N=4 queue {} !> N=1 queue {}",
            deep.average_queue_length(),
            shallow.average_queue_length()
        );
    }
}
