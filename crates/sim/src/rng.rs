//! Random-variate generation.

use rand::Rng;

/// Draws an exponentially distributed value with the given `rate`
/// (mean `1/rate`) by inversion.
///
/// # Panics
///
/// Panics if `rate` is not positive and finite.
///
/// # Examples
///
/// ```
/// use rand::SeedableRng;
///
/// let mut rng = rand_chacha::ChaCha8Rng::seed_from_u64(7);
/// let x = dpm_sim::exponential(&mut rng, 2.0);
/// assert!(x > 0.0);
/// ```
pub fn exponential<R: Rng + ?Sized>(rng: &mut R, rate: f64) -> f64 {
    assert!(
        rate > 0.0 && rate.is_finite(),
        "exponential rate {rate} must be positive and finite"
    );
    // gen::<f64>() is in [0, 1); flip to (0, 1] so ln() never sees zero.
    let u: f64 = 1.0 - rng.gen::<f64>();
    -u.ln() / rate
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;

    #[test]
    fn mean_matches_rate() {
        let mut rng = ChaCha8Rng::seed_from_u64(1);
        let rate = 0.5;
        let n = 200_000;
        let total: f64 = (0..n).map(|_| exponential(&mut rng, rate)).sum();
        let mean = total / n as f64;
        assert!((mean - 2.0).abs() < 0.02, "sample mean {mean} far from 2.0");
    }

    #[test]
    fn values_are_positive() {
        let mut rng = ChaCha8Rng::seed_from_u64(2);
        for _ in 0..10_000 {
            assert!(exponential(&mut rng, 10.0) > 0.0);
        }
    }

    #[test]
    fn memoryless_shape() {
        // P(X > 1) should be about e^-1 for rate 1.
        let mut rng = ChaCha8Rng::seed_from_u64(3);
        let n = 100_000;
        let over: usize = (0..n).filter(|_| exponential(&mut rng, 1.0) > 1.0).count();
        let p = over as f64 / n as f64;
        assert!((p - (-1.0f64).exp()).abs() < 0.01);
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn rejects_zero_rate() {
        let mut rng = ChaCha8Rng::seed_from_u64(4);
        let _ = exponential(&mut rng, 0.0);
    }
}
