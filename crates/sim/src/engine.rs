//! The event-driven simulation engine.
//!
//! The engine mirrors the continuous-time model exactly: service times,
//! switching times and (by default) inter-arrival times are exponential;
//! the power manager is consulted on every state change and its command is
//! applied asynchronously. One deliberate difference from the numeric
//! model: a *self* command in a transfer state completes in truly zero
//! time here, whereas the Markov model approximates `χ(s, s) = ∞` with a
//! large finite surrogate rate — comparing the two quantifies that
//! approximation (it is far below simulation noise).
//!
//! Because every stochastic delay except arrivals is exponential, the
//! engine may *resample* pending service/switch delays at each event
//! (memorylessness makes this distributionally exact), which keeps the
//! main loop a simple race between at most four candidate events.

use std::collections::VecDeque;

use dpm_core::{SpModel, SysState};
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;

use crate::controller::{Controller, Observation, SimEvent};
use crate::rng::exponential;
use crate::workload::Workload;
use crate::{SimError, SimReport};

/// Number of batches used for batch-means confidence intervals.
const BATCHES: usize = 20;

/// Configuration of one simulation run.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SimConfig {
    seed: u64,
    max_requests: u64,
    max_time: Option<f64>,
    initial_mode: Option<usize>,
    event_budget: u64,
}

impl SimConfig {
    /// Creates a configuration with the paper's default workload size of
    /// 50,000 requests.
    #[must_use]
    pub fn new(seed: u64) -> Self {
        SimConfig {
            seed,
            max_requests: 50_000,
            max_time: None,
            initial_mode: None,
            event_budget: 0,
        }
    }

    /// Limits the number of requests generated.
    #[must_use]
    pub fn max_requests(mut self, n: u64) -> Self {
        self.max_requests = n;
        self
    }

    /// Additionally stops the run at this simulated time.
    #[must_use]
    pub fn max_time(mut self, t: f64) -> Self {
        self.max_time = Some(t);
        self
    }

    /// Starts the provider in this mode (default: its fastest active
    /// mode).
    #[must_use]
    pub fn initial_mode(mut self, mode: usize) -> Self {
        self.initial_mode = Some(mode);
        self
    }
}

/// The event-driven simulator.
///
/// See the [crate-level documentation](crate) for an end-to-end example.
#[derive(Debug)]
pub struct Simulator<W, C> {
    sp: SpModel,
    capacity: usize,
    workload: W,
    controller: C,
    config: SimConfig,
}

#[derive(Debug, Clone, Copy, PartialEq)]
enum NextEvent {
    Arrival,
    Service,
    Switch,
    Timer,
}

#[derive(Debug, Clone, Copy, Default)]
struct Snapshot {
    time: f64,
    energy: f64,
    completed: u64,
    sojourn_sum: f64,
}

impl<W: Workload, C: Controller> Simulator<W, C> {
    /// Creates a simulator over the provider `sp` with the given queue
    /// capacity, workload and power-management controller.
    #[must_use]
    pub fn new(
        sp: SpModel,
        capacity: usize,
        workload: W,
        controller: C,
        config: SimConfig,
    ) -> Self {
        Simulator {
            sp,
            capacity,
            workload,
            controller,
            config,
        }
    }

    /// Runs the simulation to completion.
    ///
    /// The run ends when the workload is exhausted (or `max_requests`
    /// arrivals were generated) *and* the queue has drained, or at
    /// `max_time` if set.
    ///
    /// # Errors
    ///
    /// Returns [`SimError::InvalidConfig`] for inconsistent setup,
    /// [`SimError::InvalidCommand`] if the controller commands an
    /// impossible switch, and [`SimError::EventBudgetExhausted`] if a
    /// controller stalls the clock.
    pub fn run(self) -> Result<SimReport, SimError> {
        let mut run = self.start()?;
        while run.step()? {}
        Ok(run.into_report())
    }

    /// Validates the configuration and returns a [`SimRun`] that can be
    /// advanced one event at a time.
    ///
    /// Stepped execution processes exactly the same event sequence as
    /// [`Simulator::run`] — each system owns its RNG, so interleaving
    /// steps of *different* runs (as the `dpm-serve` sharded runtime does
    /// for batched event processing) cannot perturb any individual run.
    ///
    /// # Errors
    ///
    /// Returns [`SimError::InvalidConfig`] for inconsistent setup.
    pub fn start(mut self) -> Result<SimRun<W, C>, SimError> {
        if self.capacity == 0 {
            return Err(SimError::InvalidConfig {
                reason: "queue capacity must be at least 1".to_owned(),
            });
        }
        let initial_mode = match self.config.initial_mode {
            Some(m) if m < self.sp.n_modes() => m,
            Some(m) => {
                return Err(SimError::InvalidConfig {
                    reason: format!("initial mode {m} out of range"),
                })
            }
            None => self
                .sp
                .active_modes()
                .into_iter()
                .max_by(|&a, &b| {
                    // Rates are validated finite at model construction, so
                    // total_cmp agrees with the partial order here while
                    // staying total (and panic-free) by construction.
                    self.sp.service_rate(a).total_cmp(&self.sp.service_rate(b))
                })
                .ok_or_else(|| SimError::InvalidConfig {
                    reason: "provider has no active mode".to_owned(),
                })?,
        };

        let mut rng = ChaCha8Rng::seed_from_u64(self.config.seed);
        let event_budget = if self.config.event_budget > 0 {
            self.config.event_budget
        } else {
            // Generous: tens of events per request, plus slack for
            // timer-heavy policies.
            1_000_000 + 200 * self.config.max_requests
        };
        let snapshot_every = (self.config.max_requests / BATCHES as u64).max(1);
        // First arrival.
        let next_arrival: Option<f64> = self.workload.next_interarrival(&mut rng);

        Ok(SimRun {
            sp: self.sp,
            capacity: self.capacity,
            workload: self.workload,
            controller: self.controller,
            config: self.config,
            rng,
            time: 0.0,
            mode: initial_mode,
            in_transfer: false,
            queue: VecDeque::new(),
            occupancy_energy: 0.0,
            switch_energy: 0.0,
            queue_integral: 0.0,
            arrivals: 0,
            completed: 0,
            lost: 0,
            switches: 0,
            sojourn_sum: 0.0,
            snapshots: Vec::with_capacity(BATCHES + 1),
            snapshot_every,
            next_arrival,
            last_event: SimEvent::Start,
            event_budget,
            events: 0,
            consultations: 0,
            drain_timer_streak: 0,
            finished: false,
        })
    }
}

/// An in-flight simulation: the state machine behind [`Simulator::run`],
/// advanced one event at a time with [`SimRun::step`].
///
/// Obtained from [`Simulator::start`]. A run is *finished* once `step`
/// returns `Ok(false)`; [`SimRun::into_report`] then yields exactly the
/// report `Simulator::run` would have produced. Multiple independent runs
/// may be stepped in any interleaving — each owns its seeded RNG, so the
/// per-run event sequence is invariant under scheduling.
#[derive(Debug)]
pub struct SimRun<W, C> {
    sp: SpModel,
    capacity: usize,
    workload: W,
    controller: C,
    config: SimConfig,
    rng: ChaCha8Rng,
    time: f64,
    mode: usize,
    in_transfer: bool,
    queue: VecDeque<f64>,
    occupancy_energy: f64,
    switch_energy: f64,
    queue_integral: f64,
    arrivals: u64,
    completed: u64,
    lost: u64,
    switches: u64,
    sojourn_sum: f64,
    snapshots: Vec<Snapshot>,
    snapshot_every: u64,
    next_arrival: Option<f64>,
    last_event: SimEvent,
    event_budget: u64,
    events: u64,
    consultations: u64,
    drain_timer_streak: u32,
    finished: bool,
}

impl<W: Workload, C: Controller> SimRun<W, C> {
    /// Processes one engine event (a controller consultation plus the
    /// event race it decides). Returns `Ok(true)` while the run has more
    /// events, `Ok(false)` once it has finished; stepping a finished run
    /// is a no-op returning `Ok(false)`.
    ///
    /// # Errors
    ///
    /// Returns [`SimError::InvalidCommand`] if the controller commands an
    /// impossible switch, and [`SimError::EventBudgetExhausted`] if a
    /// controller stalls the clock.
    pub fn step(&mut self) -> Result<bool, SimError> {
        if self.finished {
            return Ok(false);
        }
        self.events += 1;
        if self.events > self.event_budget {
            return Err(SimError::EventBudgetExhausted {
                events: self.events,
            });
        }

        // Observe and consult the power manager (asynchronously: only
        // here, at state changes).
        let state = if self.in_transfer {
            SysState::Transfer {
                mode: self.mode,
                departing: self.queue.len() + 1,
            }
        } else {
            SysState::Stable {
                mode: self.mode,
                jobs: self.queue.len(),
            }
        };
        let observation = Observation {
            time: self.time,
            state,
        };
        self.consultations += 1;
        let command = self
            .controller
            .command(&observation, self.last_event, &mut self.rng);
        if command.target >= self.sp.n_modes()
            || (command.target != self.mode && !self.sp.can_switch(self.mode, command.target))
        {
            return Err(SimError::InvalidCommand {
                from: self.mode,
                to: command.target,
            });
        }
        // Instantaneous self-switch completes the transfer in zero time.
        if self.in_transfer && command.target == self.mode {
            self.in_transfer = false;
            self.last_event = SimEvent::SwitchComplete;
            return Ok(true);
        }

        // Each command defines the timer until the next consultation
        // (controllers that want a standing timer re-request it — the
        // next consultation happens no later than the timer anyway).
        let timer_deadline: Option<f64> = command.timer.map(|d| self.time + d.max(0.0));

        // Race the candidate events.
        let mut winner: Option<(f64, NextEvent)> = None;
        let mut consider = |t: f64, kind: NextEvent| {
            if winner.is_none_or(|(wt, _)| t < wt) {
                winner = Some((t, kind));
            }
        };
        if let Some(t) = self.next_arrival {
            consider(t, NextEvent::Arrival);
        }
        if !self.in_transfer && self.sp.service_rate(self.mode) > 0.0 && !self.queue.is_empty() {
            consider(
                self.time + exponential(&mut self.rng, self.sp.service_rate(self.mode)),
                NextEvent::Service,
            );
        }
        if command.target != self.mode {
            consider(
                self.time
                    + exponential(
                        &mut self.rng,
                        self.sp.switch_rate(self.mode, command.target),
                    ),
                NextEvent::Switch,
            );
        }
        if let Some(t) = timer_deadline {
            consider(t, NextEvent::Timer);
        }

        let Some((event_time, kind)) = winner else {
            // Nothing can ever happen again: drain and stop.
            self.finished = true;
            return Ok(false);
        };
        let mut event_time = event_time;
        let mut stop_after = false;
        if let Some(limit) = self.config.max_time {
            if event_time >= limit {
                event_time = limit;
                stop_after = true;
            }
        }

        // Integrate time-weighted statistics over the elapsed interval.
        let dt = event_time - self.time;
        self.occupancy_energy += self.sp.power(self.mode) * dt;
        self.queue_integral += self.queue.len() as f64 * dt;
        self.time = event_time;
        if stop_after {
            self.finished = true;
            return Ok(false);
        }

        match kind {
            NextEvent::Arrival => {
                self.arrivals += 1;
                // Transfer states reserve the departing slot (model
                // boundary: q_{Q->Q-1} loses arrivals).
                let room = if self.in_transfer {
                    self.capacity - 1
                } else {
                    self.capacity
                };
                if self.queue.len() < room {
                    self.queue.push_back(self.time);
                } else {
                    self.lost += 1;
                }
                self.next_arrival = if self.arrivals < self.config.max_requests {
                    let time = self.time;
                    self.workload
                        .next_interarrival(&mut self.rng)
                        .map(|gap| time + gap)
                } else {
                    None
                };
                if self.arrivals.is_multiple_of(self.snapshot_every) {
                    self.snapshots.push(Snapshot {
                        time: self.time,
                        energy: self.occupancy_energy + self.switch_energy,
                        completed: self.completed,
                        sojourn_sum: self.sojourn_sum,
                    });
                }
                self.last_event = SimEvent::Arrival;
            }
            NextEvent::Service => {
                // A service completion is only ever scheduled while the
                // queue is non-empty (checked in the race above), so the
                // `if let` always takes the populated branch.
                if let Some(arrived) = self.queue.pop_front() {
                    self.sojourn_sum += self.time - arrived;
                    self.completed += 1;
                    self.in_transfer = true;
                    self.last_event = SimEvent::ServiceCompletion;
                }
            }
            NextEvent::Switch => {
                self.switch_energy += self.sp.switch_energy(self.mode, command.target);
                self.switches += 1;
                self.mode = command.target;
                self.in_transfer = false;
                self.last_event = SimEvent::SwitchComplete;
            }
            NextEvent::Timer => {
                self.last_event = SimEvent::TimerFired;
            }
        }

        if self.next_arrival.is_none() {
            if kind == NextEvent::Timer {
                self.drain_timer_streak += 1;
                if self.drain_timer_streak > 1_000 {
                    // The controller is idling on timers with work left
                    // (e.g. a policy that never wakes): stop the run.
                    self.finished = true;
                    return Ok(false);
                }
            } else {
                self.drain_timer_streak = 0;
            }
            if self.queue.is_empty() && !self.in_transfer {
                self.finished = true;
                return Ok(false);
            }
        }
        Ok(true)
    }

    /// Returns `true` once the run has ended (step returned `Ok(false)`).
    #[must_use]
    pub fn is_finished(&self) -> bool {
        self.finished
    }

    /// Engine events processed so far.
    #[must_use]
    pub fn events(&self) -> u64 {
        self.events
    }

    /// Borrows the controller driving this run (e.g. to read adaptive
    /// estimates or lookup counters mid-flight).
    #[must_use]
    pub fn controller(&self) -> &C {
        &self.controller
    }

    /// Mutably borrows the controller driving this run.
    ///
    /// This is the hook for epoch-coordinated hot policy swap: the
    /// `dpm-serve` supervisor replaces a [`crate::controller::Controller`]'s
    /// shared policy `Arc` between steps, at a deterministic event-count
    /// barrier. Swapping controller internals mid-run is safe for
    /// determinism as long as the mutation itself is a deterministic
    /// function of the run's own progress (never of wall clock or shard
    /// scheduling).
    #[must_use]
    pub fn controller_mut(&mut self) -> &mut C {
        &mut self.controller
    }

    /// Finalizes the run into a [`SimReport`].
    ///
    /// Normally called once [`SimRun::step`] has returned `Ok(false)`;
    /// calling earlier reports the statistics accumulated so far.
    #[must_use]
    pub fn into_report(self) -> SimReport {
        let duration = self.time.max(f64::MIN_POSITIVE);
        let (power_ci, sojourn_ci) = batch_half_widths(
            &self.snapshots,
            Snapshot {
                time: self.time,
                energy: self.occupancy_energy + self.switch_energy,
                completed: self.completed,
                sojourn_sum: self.sojourn_sum,
            },
        );

        SimReport {
            policy: self.controller.name(),
            seed: self.config.seed,
            duration,
            occupancy_energy: self.occupancy_energy,
            switch_energy: self.switch_energy,
            queue_integral: self.queue_integral,
            arrivals: self.arrivals,
            completed: self.completed,
            lost: self.lost,
            switches: self.switches,
            sojourn_sum: self.sojourn_sum,
            consultations: self.consultations,
            events: self.events,
            power_ci,
            sojourn_ci,
        }
    }
}

/// ~95% batch-means half-widths for average power and average sojourn.
fn batch_half_widths(snapshots: &[Snapshot], end: Snapshot) -> (Option<f64>, Option<f64>) {
    let mut points: Vec<Snapshot> = snapshots.to_vec();
    if points.last().is_none_or(|s| s.time < end.time) {
        points.push(end);
    }
    if points.len() < 4 {
        return (None, None);
    }
    let mut power_means = Vec::new();
    let mut sojourn_means = Vec::new();
    let mut previous = Snapshot::default();
    for s in &points {
        let dt = s.time - previous.time;
        if dt > 0.0 {
            power_means.push((s.energy - previous.energy) / dt);
        }
        let dc = s.completed - previous.completed;
        if dc > 0 {
            sojourn_means.push((s.sojourn_sum - previous.sojourn_sum) / dc as f64);
        }
        previous = *s;
    }
    (half_width(&power_means), half_width(&sojourn_means))
}

fn half_width(batch_means: &[f64]) -> Option<f64> {
    let k = batch_means.len();
    if k < 4 {
        return None;
    }
    let mean = batch_means.iter().sum::<f64>() / k as f64;
    let var = batch_means
        .iter()
        .map(|x| (x - mean) * (x - mean))
        .sum::<f64>()
        / (k - 1) as f64;
    // t-quantile ~2 for ~20 batches.
    Some(2.0 * (var / k as f64).sqrt())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::controller::{AlwaysOnController, GreedyController, TimeoutController};
    use crate::workload::{PoissonWorkload, TraceWorkload};
    use dpm_core::SpModel;

    fn sp() -> SpModel {
        SpModel::dac99_server().unwrap()
    }

    #[test]
    fn always_on_matches_mm1k_theory() {
        let lambda = 1.0 / 6.0;
        let report = Simulator::new(
            sp(),
            5,
            PoissonWorkload::new(lambda).unwrap(),
            AlwaysOnController::new(&sp()),
            SimConfig::new(1).max_requests(50_000),
        )
        .run()
        .unwrap();
        let theory = dpm_ctmc::birth_death::Mm1k::new(lambda, 1.0 / 1.5, 5).unwrap();
        assert!(
            (report.average_queue_length() - theory.mean_customers()).abs()
                < 0.05 * theory.mean_customers().max(0.1),
            "queue {} vs theory {}",
            report.average_queue_length(),
            theory.mean_customers()
        );
        assert!((report.average_power() - 40.0).abs() < 0.01);
        assert!(
            (report.average_waiting_time() - theory.mean_waiting_time()).abs()
                < 0.05 * theory.mean_waiting_time()
        );
        assert_eq!(report.arrivals(), 50_000);
        assert_eq!(report.arrivals(), report.completed() + report.lost());
    }

    #[test]
    fn same_seed_reproduces_exactly() {
        let run = || {
            Simulator::new(
                sp(),
                5,
                PoissonWorkload::new(0.2).unwrap(),
                GreedyController::new(&sp()).unwrap(),
                SimConfig::new(77).max_requests(5_000),
            )
            .run()
            .unwrap()
        };
        assert_eq!(run(), run());
    }

    #[test]
    fn stepped_run_matches_run_exactly() {
        let sim = |seed| {
            Simulator::new(
                sp(),
                5,
                PoissonWorkload::new(0.2).unwrap(),
                GreedyController::new(&sp()).unwrap(),
                SimConfig::new(seed).max_requests(2_000),
            )
        };
        let serial = sim(31).run().unwrap();
        let mut run = sim(31).start().unwrap();
        while run.step().unwrap() {}
        assert!(run.is_finished());
        assert_eq!(run.into_report(), serial);
    }

    #[test]
    fn interleaved_stepping_is_invariant_per_run() {
        // Step several independent runs round-robin in small batches (the
        // serve shard schedule) and check each report is bit-identical to
        // its serial run.
        let sim = |seed| {
            Simulator::new(
                sp(),
                5,
                PoissonWorkload::new(0.2).unwrap(),
                GreedyController::new(&sp()).unwrap(),
                SimConfig::new(seed).max_requests(1_000),
            )
        };
        let serial: Vec<_> = (10..14).map(|s| sim(s).run().unwrap()).collect();
        let mut runs: Vec<_> = (10..14).map(|s| sim(s).start().unwrap()).collect();
        let mut live = runs.len();
        while live > 0 {
            live = 0;
            for run in &mut runs {
                for _ in 0..64 {
                    if !run.step().unwrap() {
                        break;
                    }
                }
                if !run.is_finished() {
                    live += 1;
                }
            }
        }
        for (run, expected) in runs.into_iter().zip(&serial) {
            assert_eq!(&run.into_report(), expected);
        }
    }

    #[test]
    fn different_seeds_differ() {
        let run = |seed| {
            Simulator::new(
                sp(),
                5,
                PoissonWorkload::new(0.2).unwrap(),
                GreedyController::new(&sp()).unwrap(),
                SimConfig::new(seed).max_requests(5_000),
            )
            .run()
            .unwrap()
        };
        assert_ne!(run(1).average_power(), run(2).average_power());
    }

    #[test]
    fn greedy_saves_power_versus_always_on() {
        let config = SimConfig::new(3).max_requests(20_000);
        let on = Simulator::new(
            sp(),
            5,
            PoissonWorkload::new(1.0 / 6.0).unwrap(),
            AlwaysOnController::new(&sp()),
            config,
        )
        .run()
        .unwrap();
        let greedy = Simulator::new(
            sp(),
            5,
            PoissonWorkload::new(1.0 / 6.0).unwrap(),
            GreedyController::new(&sp()).unwrap(),
            config,
        )
        .run()
        .unwrap();
        assert!(greedy.average_power() < on.average_power());
        assert!(greedy.average_waiting_time() > on.average_waiting_time());
        assert!(greedy.switches() > 0);
    }

    #[test]
    fn timeout_interpolates_between_greedy_and_always_on() {
        let config = SimConfig::new(4).max_requests(20_000);
        let power_of = |timeout| {
            Simulator::new(
                sp(),
                5,
                PoissonWorkload::new(1.0 / 6.0).unwrap(),
                TimeoutController::new(&sp(), timeout, 2).unwrap(),
                config,
            )
            .run()
            .unwrap()
            .average_power()
        };
        let immediate = power_of(0.0);
        let medium = power_of(6.0);
        let lazy = power_of(60.0);
        assert!(immediate < medium, "{immediate} !< {medium}");
        assert!(medium < lazy, "{medium} !< {lazy}");
    }

    #[test]
    fn trace_workload_drains_and_ends() {
        let report = Simulator::new(
            sp(),
            5,
            TraceWorkload::new(vec![1.0, 1.0, 1.0]).unwrap(),
            AlwaysOnController::new(&sp()),
            SimConfig::new(5),
        )
        .run()
        .unwrap();
        assert_eq!(report.arrivals(), 3);
        assert_eq!(report.completed(), 3);
        assert_eq!(report.lost(), 0);
        assert!(report.duration() >= 3.0);
    }

    #[test]
    fn max_time_cuts_the_run() {
        let report = Simulator::new(
            sp(),
            5,
            PoissonWorkload::new(0.5).unwrap(),
            AlwaysOnController::new(&sp()),
            SimConfig::new(6).max_requests(1_000_000).max_time(100.0),
        )
        .run()
        .unwrap();
        assert!((report.duration() - 100.0).abs() < 1e-9);
    }

    #[test]
    fn losses_happen_under_overload() {
        // Arrivals far faster than service: the finite queue must drop.
        let report = Simulator::new(
            sp(),
            2,
            PoissonWorkload::new(10.0).unwrap(),
            AlwaysOnController::new(&sp()),
            SimConfig::new(7).max_requests(5_000),
        )
        .run()
        .unwrap();
        assert!(report.lost() > 0);
        assert!(report.loss_fraction() > 0.5);
    }

    #[test]
    fn invalid_initial_mode_is_rejected() {
        let result = Simulator::new(
            sp(),
            5,
            PoissonWorkload::new(0.2).unwrap(),
            AlwaysOnController::new(&sp()),
            SimConfig::new(8).initial_mode(9),
        )
        .run();
        assert!(matches!(result, Err(SimError::InvalidConfig { .. })));
    }

    #[test]
    fn zero_capacity_is_rejected() {
        let result = Simulator::new(
            sp(),
            0,
            PoissonWorkload::new(0.2).unwrap(),
            AlwaysOnController::new(&sp()),
            SimConfig::new(9),
        )
        .run();
        assert!(matches!(result, Err(SimError::InvalidConfig { .. })));
    }

    #[test]
    fn confidence_intervals_appear_on_long_runs() {
        let report = Simulator::new(
            sp(),
            5,
            PoissonWorkload::new(1.0 / 6.0).unwrap(),
            AlwaysOnController::new(&sp()),
            SimConfig::new(10).max_requests(20_000),
        )
        .run()
        .unwrap();
        let hw = report.power_half_width().expect("20 batches collected");
        assert!(hw > 0.0 && hw < 1.0);
        assert!(report.waiting_half_width().is_some());
    }
}
