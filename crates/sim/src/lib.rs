//! Event-driven simulation of power-managed systems.
//!
//! Section V of the paper: *"We have written an event-driven simulator for
//! simulating the real-time operation of a portable system together with
//! the power management policy. The simulator simulates the operations of
//! the server, the queue and the power manager under real-time input
//! requests."* This crate is that simulator:
//!
//! * [`Simulator`] — the engine: exponential service and mode-switch times,
//!   a FIFO queue with loss at capacity, a power manager consulted on every
//!   state change (the *asynchronous* trigger discipline the paper
//!   advocates), energy accounting for mode switches;
//! * [`workload`] — request streams: Poisson, piecewise-Poisson (drifting
//!   rate, for the adaptive experiment), and trace replay;
//! * [`controller`] — power-management policies: table-driven optimal
//!   policies from `dpm-core`, randomized policies from the constrained
//!   LP, N-policies, time-out policies, greedy, always-on, and an adaptive
//!   controller that estimates `λ` online and re-solves (the paper's
//!   Section III suggestion);
//! * [`SimReport`] — time-averaged power, queue length, waiting (sojourn)
//!   time, loss and switching statistics with batch-means confidence
//!   intervals.
//!
//! # Examples
//!
//! Simulate the paper's server under the greedy policy:
//!
//! ```
//! use dpm_core::{PmPolicy, PmSystem, SpModel, SrModel};
//! use dpm_sim::{controller::TableController, workload::PoissonWorkload, SimConfig, Simulator};
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let system = PmSystem::builder()
//!     .provider(SpModel::dac99_server()?)
//!     .requestor(SrModel::poisson(1.0 / 6.0)?)
//!     .capacity(5)
//!     .build()?;
//! let policy = PmPolicy::greedy(&system)?;
//! let report = Simulator::new(
//!     system.provider().clone(),
//!     system.capacity(),
//!     PoissonWorkload::new(1.0 / 6.0)?,
//!     TableController::new(&system, &policy)?,
//!     SimConfig::new(42).max_requests(20_000),
//! )
//! .run()?;
//! assert!(report.average_power() < 40.0);
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod controller;
mod engine;
mod error;
mod merge;
mod report;
mod rng;
pub mod workload;

pub use engine::{SimConfig, SimRun, Simulator};
pub use error::SimError;
pub use merge::{ExactSum, MergedReport};
pub use report::{ReportParts, SimReport};
pub use rng::exponential;
