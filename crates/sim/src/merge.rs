//! Deterministic, associative merging of [`SimReport`]s.
//!
//! Sharded runtimes (the `dpm-serve` engine) fold per-system reports into
//! per-shard partials and combine the partials at a barrier. Plain `f64`
//! addition is not associative, so that grouping would leak into the
//! merged totals and break the "N shards bit-identical to 1 shard"
//! guarantee. [`ExactSum`] fixes this at the root: a fixed-point long
//! accumulator (a Kulisch accumulator) wide enough to hold any sum of
//! `f64` values *exactly*, making accumulation associative and
//! commutative by construction. [`MergedReport`] builds on it: merge the
//! same set of reports in any grouping and every readout is bit-identical.

use crate::report::SimReport;

/// Number of 64-bit limbs in the accumulator: 2560 bits.
const LIMBS: usize = 40;
/// Limb whose bit 0 carries weight `2^0`; lower limbs hold the fractional
/// bits (`64 * 20 = 1280 ≥ 1074`, covering the smallest subnormal), upper
/// limbs hold the integer bits (`64 * 19 - 1 ≥ 1023` plus ~190 bits of
/// carry headroom — on the order of `2^190` additions before overflow).
const BIAS_LIMB: usize = 20;
/// Total bit width of the accumulator.
const TOTAL_BITS: i64 = (LIMBS as i64) * 64;

/// Exact sum of `f64` values.
///
/// Internally a two's-complement fixed-point integer of 40 × 64 = 2560
/// bits. Adding a finite `f64` adds its (sign, mantissa, exponent)
/// decomposition into the integer — an exact operation — so the order of
/// additions and merges cannot change the state. [`ExactSum::value`]
/// rounds the exact total to the nearest `f64` (ties to even).
///
/// Non-finite inputs are counted instead of accumulated; a sum that saw
/// one reads back as NaN.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ExactSum {
    limbs: [u64; LIMBS],
    non_finite: u64,
}

impl Default for ExactSum {
    fn default() -> Self {
        Self::new()
    }
}

impl ExactSum {
    /// An empty sum (reads back as `0.0`).
    #[must_use]
    pub fn new() -> Self {
        Self {
            limbs: [0; LIMBS],
            non_finite: 0,
        }
    }

    /// Adds one value. Exact for every finite `f64`; non-finite values
    /// increment a counter that poisons [`ExactSum::value`] to NaN.
    pub fn add(&mut self, x: f64) {
        if !x.is_finite() {
            self.non_finite += 1;
            return;
        }
        let bits = x.to_bits();
        if bits << 1 == 0 {
            return; // ±0.0 contributes nothing
        }
        let negative = bits >> 63 == 1;
        let exp_field = ((bits >> 52) & 0x7ff) as i64;
        let frac = bits & ((1u64 << 52) - 1);
        // x = ±mantissa * 2^exp with an integer mantissa.
        let (mantissa, exp) = if exp_field == 0 {
            (frac, -1074i64) // subnormal
        } else {
            (frac | (1u64 << 52), exp_field - 1075)
        };
        // Bit offset of the mantissa's LSB inside the accumulator.
        let pos = exp + (BIAS_LIMB as i64) * 64;
        debug_assert!(pos >= 0 && pos + 53 < TOTAL_BITS);
        let limb = (pos / 64) as usize;
        let off = (pos % 64) as u32;
        let wide = u128::from(mantissa) << off;
        let lo = wide as u64;
        let hi = (wide >> 64) as u64;
        if negative {
            self.sub_at(limb, lo, hi);
        } else {
            self.add_at(limb, lo, hi);
        }
    }

    /// Folds another sum into this one. Exactly associative and
    /// commutative: limb-wise integer addition.
    pub fn merge(&mut self, other: &Self) {
        let mut carry = 0u64;
        for i in 0..LIMBS {
            let (a, c1) = self.limbs[i].overflowing_add(other.limbs[i]);
            let (b, c2) = a.overflowing_add(carry);
            self.limbs[i] = b;
            carry = u64::from(c1) + u64::from(c2);
        }
        self.non_finite += other.non_finite;
    }

    fn add_at(&mut self, limb: usize, lo: u64, hi: u64) {
        let mut carry;
        let (v, c) = self.limbs[limb].overflowing_add(lo);
        self.limbs[limb] = v;
        carry = u64::from(c);
        if limb + 1 < LIMBS {
            let (a, c1) = self.limbs[limb + 1].overflowing_add(hi);
            let (b, c2) = a.overflowing_add(carry);
            self.limbs[limb + 1] = b;
            carry = u64::from(c1) + u64::from(c2);
            let mut i = limb + 2;
            while carry > 0 && i < LIMBS {
                let (v, c) = self.limbs[i].overflowing_add(carry);
                self.limbs[i] = v;
                carry = u64::from(c);
                i += 1;
            }
        }
    }

    fn sub_at(&mut self, limb: usize, lo: u64, hi: u64) {
        let mut borrow;
        let (v, b) = self.limbs[limb].overflowing_sub(lo);
        self.limbs[limb] = v;
        borrow = u64::from(b);
        if limb + 1 < LIMBS {
            let (a, b1) = self.limbs[limb + 1].overflowing_sub(hi);
            let (c, b2) = a.overflowing_sub(borrow);
            self.limbs[limb + 1] = c;
            borrow = u64::from(b1) + u64::from(b2);
            let mut i = limb + 2;
            while borrow > 0 && i < LIMBS {
                let (v, b) = self.limbs[i].overflowing_sub(borrow);
                self.limbs[i] = v;
                borrow = u64::from(b);
                i += 1;
            }
        }
    }

    /// Rounds the exact total to the nearest `f64`, ties to even. NaN if
    /// any non-finite value was added.
    #[must_use]
    pub fn value(&self) -> f64 {
        if self.non_finite > 0 {
            return f64::NAN;
        }
        let negative = self.limbs[LIMBS - 1] >> 63 == 1;
        let mut mag = self.limbs;
        if negative {
            // Two's-complement negation to get the magnitude.
            let mut carry = 1u64;
            for limb in &mut mag {
                let (v, c) = (!*limb).overflowing_add(carry);
                *limb = v;
                carry = u64::from(c);
            }
        }
        let Some(top) = (0..LIMBS).rev().find(|&i| mag[i] != 0) else {
            return 0.0;
        };
        // Global bit position of the most significant set bit.
        let msb = (top as i64) * 64 + (63 - i64::from(mag[top].leading_zeros()));
        // Unbiased binary exponent of the represented value.
        let exp = msb - (BIAS_LIMB as i64) * 64;
        // How many mantissa bits the result may keep: 53 for normal
        // results, fewer as the value descends into the subnormals.
        let prec = if exp >= -1022 { 53 } else { exp + 1075 };
        if prec <= 0 {
            // Below half the smallest subnormal (or exactly half of it,
            // which ties to even, i.e. zero) — unless lower bits push it
            // over the tie.
            let rounds_up = prec == 0 && sticky_below(&mag, msb);
            let tiny = if rounds_up { f64::from_bits(1) } else { 0.0 };
            return if negative { -tiny } else { tiny };
        }
        let lsb_pos = msb - prec + 1;
        let mut mantissa = extract_bits(&mag, lsb_pos, prec as u32);
        let round = bit_at(&mag, lsb_pos - 1) == 1;
        let sticky = sticky_below(&mag, lsb_pos - 1);
        let mut scale_exp = lsb_pos - (BIAS_LIMB as i64) * 64;
        if round && (sticky || mantissa & 1 == 1) {
            mantissa += 1;
            if mantissa == 1u64 << prec {
                mantissa >>= 1;
                scale_exp += 1;
            }
        }
        let magnitude = compose(mantissa, scale_exp);
        if negative {
            -magnitude
        } else {
            magnitude
        }
    }
}

/// Bit of `mag` at global position `pos` (0 outside the accumulator).
fn bit_at(mag: &[u64; LIMBS], pos: i64) -> u64 {
    if !(0..TOTAL_BITS).contains(&pos) {
        0
    } else {
        (mag[(pos / 64) as usize] >> (pos % 64)) & 1
    }
}

/// Bits `lo .. lo + width` of `mag` as an integer (LSB first).
fn extract_bits(mag: &[u64; LIMBS], lo: i64, width: u32) -> u64 {
    let mut v = 0u64;
    for k in 0..width {
        v |= bit_at(mag, lo + i64::from(k)) << k;
    }
    v
}

/// Whether any bit strictly below global position `pos` is set.
fn sticky_below(mag: &[u64; LIMBS], pos: i64) -> bool {
    if pos <= 0 {
        return false;
    }
    let pos = pos.min(TOTAL_BITS);
    let full = (pos / 64) as usize;
    let rem = (pos % 64) as u32;
    if mag.iter().take(full).any(|&l| l != 0) {
        return true;
    }
    rem > 0 && full < LIMBS && mag[full] & ((1u64 << rem) - 1) != 0
}

/// `m * 2^e` with `m < 2^53`, exact whenever the result is representable
/// (rounding already happened at the accumulator's precision).
fn compose(m: u64, e: i64) -> f64 {
    let mut x = m as f64;
    let mut e = e;
    while e > 0 {
        let s = e.min(1000);
        x *= 2f64.powi(s as i32);
        if x.is_infinite() {
            return x;
        }
        e -= s;
    }
    while e < 0 {
        let s = (-e).min(1000);
        x *= 2f64.powi(-(s as i32));
        e += s;
    }
    x
}

/// Deterministic aggregate of many [`SimReport`]s.
///
/// Counters sum exactly in `u64`; time/energy totals sum through
/// [`ExactSum`], so merging the same reports in any grouping — per shard,
/// pairwise, serial — produces bit-identical state and readouts. Combine
/// per-shard partials with [`MergedReport::combine`].
#[derive(Debug, Clone, PartialEq, Default)]
pub struct MergedReport {
    runs: u64,
    duration: ExactSum,
    occupancy_energy: ExactSum,
    switch_energy: ExactSum,
    queue_integral: ExactSum,
    sojourn_sum: ExactSum,
    arrivals: u64,
    completed: u64,
    lost: u64,
    switches: u64,
    consultations: u64,
    events: u64,
}

impl MergedReport {
    /// An empty aggregate.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Folds one run's report into the aggregate.
    pub fn absorb(&mut self, report: &SimReport) {
        self.runs += 1;
        self.duration.add(report.duration);
        self.occupancy_energy.add(report.occupancy_energy);
        self.switch_energy.add(report.switch_energy);
        self.queue_integral.add(report.queue_integral);
        self.sojourn_sum.add(report.sojourn_sum);
        self.arrivals += report.arrivals;
        self.completed += report.completed;
        self.lost += report.lost;
        self.switches += report.switches;
        self.consultations += report.consultations;
        self.events += report.events;
    }

    /// Folds another aggregate (e.g. a shard's partial) into this one.
    /// Exactly associative: `combine` over any grouping of the same
    /// reports yields identical state.
    pub fn combine(&mut self, other: &Self) {
        self.runs += other.runs;
        self.duration.merge(&other.duration);
        self.occupancy_energy.merge(&other.occupancy_energy);
        self.switch_energy.merge(&other.switch_energy);
        self.queue_integral.merge(&other.queue_integral);
        self.sojourn_sum.merge(&other.sojourn_sum);
        self.arrivals += other.arrivals;
        self.completed += other.completed;
        self.lost += other.lost;
        self.switches += other.switches;
        self.consultations += other.consultations;
        self.events += other.events;
    }

    /// Number of reports absorbed.
    #[must_use]
    pub fn runs(&self) -> u64 {
        self.runs
    }

    /// Total simulated time across all runs.
    #[must_use]
    pub fn duration(&self) -> f64 {
        self.duration.value()
    }

    /// Total mode-occupancy energy in joules.
    #[must_use]
    pub fn occupancy_energy(&self) -> f64 {
        self.occupancy_energy.value()
    }

    /// Total mode-switch energy in joules.
    #[must_use]
    pub fn switch_energy(&self) -> f64 {
        self.switch_energy.value()
    }

    /// Total energy in joules (occupancy plus switching).
    #[must_use]
    pub fn total_energy(&self) -> f64 {
        let mut total = self.occupancy_energy.clone();
        total.merge(&self.switch_energy);
        total.value()
    }

    /// Total time-weighted queue-length integral.
    #[must_use]
    pub fn queue_integral(&self) -> f64 {
        self.queue_integral.value()
    }

    /// Total sojourn time over completed requests.
    #[must_use]
    pub fn sojourn_sum(&self) -> f64 {
        self.sojourn_sum.value()
    }

    /// Requests generated across all runs.
    #[must_use]
    pub fn arrivals(&self) -> u64 {
        self.arrivals
    }

    /// Requests serviced to completion across all runs.
    #[must_use]
    pub fn completed(&self) -> u64 {
        self.completed
    }

    /// Requests lost to full queues across all runs.
    #[must_use]
    pub fn lost(&self) -> u64 {
        self.lost
    }

    /// Mode switches performed across all runs.
    #[must_use]
    pub fn switches(&self) -> u64 {
        self.switches
    }

    /// Power-manager consultations (policy lookups for table/compiled
    /// controllers) across all runs.
    #[must_use]
    pub fn consultations(&self) -> u64 {
        self.consultations
    }

    /// Engine events processed across all runs.
    #[must_use]
    pub fn events(&self) -> u64 {
        self.events
    }

    /// Duration-weighted average power in watts across all runs.
    #[must_use]
    pub fn average_power(&self) -> f64 {
        let d = self.duration();
        if d > 0.0 {
            self.total_energy() / d
        } else {
            0.0
        }
    }

    /// Duration-weighted average queue length across all runs.
    #[must_use]
    pub fn average_queue_length(&self) -> f64 {
        let d = self.duration();
        if d > 0.0 {
            self.queue_integral() / d
        } else {
            0.0
        }
    }

    /// Average sojourn time per completed request across all runs.
    #[must_use]
    pub fn average_waiting_time(&self) -> f64 {
        if self.completed == 0 {
            0.0
        } else {
            self.sojourn_sum() / self.completed as f64
        }
    }

    /// Fraction of arrivals lost across all runs.
    #[must_use]
    pub fn loss_fraction(&self) -> f64 {
        if self.arrivals == 0 {
            0.0
        } else {
            self.lost as f64 / self.arrivals as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn assert_bits(a: f64, b: f64) {
        assert_eq!(a.to_bits(), b.to_bits(), "{a:e} != {b:e}");
    }

    #[test]
    fn single_values_round_trip_exactly() {
        let cases = [
            0.0,
            -0.0,
            1.0,
            -3.5,
            1.5e-3,
            6.02e23,
            -1e300,
            f64::MAX,
            f64::MIN_POSITIVE,                     // smallest normal
            f64::from_bits(1),                     // smallest subnormal
            f64::from_bits(0x000f_ffff_ffff_ffff), // largest subnormal
            1e-310,
            -4.9e-324,
            std::f64::consts::PI,
        ];
        for x in cases {
            let mut s = ExactSum::new();
            s.add(x);
            // -0.0 reads back as +0.0: the accumulator stores the value,
            // not the representation.
            let expected = if x.to_bits() << 1 == 0 { 0.0 } else { x };
            assert_bits(s.value(), expected);
        }
    }

    #[test]
    fn catastrophic_cancellation_is_exact() {
        let mut s = ExactSum::new();
        s.add(1e16);
        s.add(1.0);
        s.add(-1e16);
        assert_bits(s.value(), 1.0);
        // The same sequence in plain f64 loses the 1.0 entirely? No —
        // 1e16 + 1.0 is representable; use a harder case.
        let mut s = ExactSum::new();
        s.add(1e17);
        s.add(1.0);
        s.add(-1e17);
        assert_bits(s.value(), 1.0);
        let naive = (1e17f64 + 1.0) - 1e17;
        assert_eq!(naive.to_bits(), 0.0f64.to_bits()); // f64 loses it
    }

    #[test]
    fn rounding_is_ties_to_even() {
        // 1 + 2^-53 is exactly halfway between 1 and the next double;
        // ties-to-even keeps 1.0.
        let mut s = ExactSum::new();
        s.add(1.0);
        s.add(2f64.powi(-53));
        assert_bits(s.value(), 1.0);
        // Adding any speck below the tie pushes it up.
        s.add(2f64.powi(-120));
        assert_bits(s.value(), 1.0 + 2f64.powi(-52));
        // 1 + 3·2^-53 = 1 + 2^-52 + 2^-53 sits halfway between 1+2^-52
        // and 1+2^-51; the tie resolves to the even mantissa, 1+2^-51.
        let mut s = ExactSum::new();
        s.add(1.0);
        s.add(3.0 * 2f64.powi(-53));
        assert_bits(s.value(), 1.0 + 2f64.powi(-51));
    }

    #[test]
    fn grouping_does_not_change_the_sum() {
        // Deterministic pseudo-random-ish values spanning magnitudes.
        let values: Vec<f64> = (0..200)
            .map(|i| {
                let sign = if i % 3 == 0 { -1.0 } else { 1.0 };
                let mag = 2f64.powi(i % 61 - 30);
                sign * mag * (1.0 + (i as f64) / 7.0)
            })
            .collect();
        let mut serial = ExactSum::new();
        for &v in &values {
            serial.add(v);
        }
        for chunk_size in [1usize, 3, 7, 50, 200] {
            let mut merged = ExactSum::new();
            for chunk in values.chunks(chunk_size) {
                let mut part = ExactSum::new();
                for &v in chunk {
                    part.add(v);
                }
                merged.merge(&part);
            }
            assert_eq!(merged, serial);
            assert_bits(merged.value(), serial.value());
        }
        // Reversed order too (commutativity).
        let mut rev = ExactSum::new();
        for &v in values.iter().rev() {
            rev.add(v);
        }
        assert_eq!(rev, serial);
    }

    #[test]
    fn non_finite_poisons_to_nan() {
        let mut s = ExactSum::new();
        s.add(1.0);
        s.add(f64::INFINITY);
        assert!(s.value().is_nan());
        let mut t = ExactSum::new();
        t.add(f64::NAN);
        let mut u = ExactSum::new();
        u.add(2.0);
        u.merge(&t);
        assert!(u.value().is_nan());
    }

    fn report(k: u64) -> SimReport {
        // Field values chosen so f64 addition order would actually matter.
        let scale = 2f64.powi((k % 40) as i32 - 20);
        SimReport {
            policy: "merge-test".to_owned(),
            seed: k,
            duration: 100.0 * scale + 0.1 * k as f64,
            occupancy_energy: 900.0 * scale + 1.0 / (k + 1) as f64,
            switch_energy: 10.0 * scale,
            queue_integral: 50.0 * scale + 1e-9 * k as f64,
            arrivals: 40 + k,
            completed: 36 + k,
            lost: 4,
            switches: 12,
            sojourn_sum: 72.0 * scale,
            consultations: 90 + 2 * k,
            events: 250 + 3 * k,
            power_ci: None,
            sojourn_ci: None,
        }
    }

    #[test]
    fn shard_merge_equals_serial_field_for_field() {
        let reports: Vec<SimReport> = (0..64).map(report).collect();
        let mut serial = MergedReport::new();
        for r in &reports {
            serial.absorb(r);
        }
        for shards in [1usize, 2, 3, 5, 8, 64] {
            let chunk = reports.len().div_ceil(shards);
            let mut total = MergedReport::new();
            for block in reports.chunks(chunk) {
                let mut partial = MergedReport::new();
                for r in block {
                    partial.absorb(r);
                }
                total.combine(&partial);
            }
            // Field-for-field: the aggregates' internal state is equal…
            assert_eq!(total, serial, "sharded {shards} ways");
            // …and every readout is bit-identical.
            assert_bits(total.duration(), serial.duration());
            assert_bits(total.total_energy(), serial.total_energy());
            assert_bits(total.switch_energy(), serial.switch_energy());
            assert_bits(total.queue_integral(), serial.queue_integral());
            assert_bits(total.sojourn_sum(), serial.sojourn_sum());
            assert_bits(total.average_power(), serial.average_power());
            assert_bits(total.average_queue_length(), serial.average_queue_length());
            assert_bits(total.average_waiting_time(), serial.average_waiting_time());
            assert_eq!(total.runs(), serial.runs());
            assert_eq!(total.arrivals(), serial.arrivals());
            assert_eq!(total.completed(), serial.completed());
            assert_eq!(total.lost(), serial.lost());
            assert_eq!(total.switches(), serial.switches());
            assert_eq!(total.consultations(), serial.consultations());
            assert_eq!(total.events(), serial.events());
        }
    }

    #[test]
    fn empty_aggregate_reads_zero() {
        let m = MergedReport::new();
        assert_eq!(m.runs(), 0);
        assert_bits(m.duration(), 0.0);
        assert_bits(m.average_power(), 0.0);
        assert_bits(m.average_queue_length(), 0.0);
        assert_bits(m.average_waiting_time(), 0.0);
        assert_bits(m.loss_fraction(), 0.0);
    }
}
