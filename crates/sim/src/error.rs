use std::error::Error;
use std::fmt;

use dpm_core::DpmError;

/// Error type for simulator construction and runs.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum SimError {
    /// A configuration or model parameter was rejected.
    InvalidConfig {
        /// What was wrong.
        reason: String,
    },
    /// A controller issued a command the provider cannot execute (no such
    /// mode, or no switching path).
    InvalidCommand {
        /// The current mode.
        from: usize,
        /// The commanded mode.
        to: usize,
    },
    /// The event budget was exhausted — a controller is looping without
    /// letting simulated time advance.
    EventBudgetExhausted {
        /// Events processed.
        events: u64,
    },
    /// A model-layer operation failed (adaptive controllers re-solve
    /// policies mid-run).
    Model(DpmError),
}

impl fmt::Display for SimError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SimError::InvalidConfig { reason } => write!(f, "invalid configuration: {reason}"),
            SimError::InvalidCommand { from, to } => {
                write!(f, "controller commanded impossible switch {from} -> {to}")
            }
            SimError::EventBudgetExhausted { events } => {
                write!(
                    f,
                    "event budget exhausted after {events} events (controller loop?)"
                )
            }
            SimError::Model(e) => write!(f, "model failure: {e}"),
        }
    }
}

impl Error for SimError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            SimError::Model(e) => Some(e),
            _ => None,
        }
    }
}

impl From<DpmError> for SimError {
    fn from(e: DpmError) -> Self {
        SimError::Model(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn displays() {
        let e = SimError::InvalidCommand { from: 1, to: 9 };
        assert!(e.to_string().contains("1 -> 9"));
    }

    #[test]
    fn error_is_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<SimError>();
    }
}
