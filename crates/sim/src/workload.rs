//! Request workloads: the service-requestor side of the simulation.

use rand_chacha::ChaCha8Rng;

use crate::rng::exponential;
use crate::SimError;

/// A stream of request inter-arrival times.
///
/// Implementors are consulted once per arrival; returning `None` ends the
/// stream (the simulator then drains the queue and stops).
pub trait Workload {
    /// The next inter-arrival time, or `None` when the stream is finished.
    fn next_interarrival(&mut self, rng: &mut ChaCha8Rng) -> Option<f64>;

    /// The long-run arrival rate, if the workload has one (used by adaptive
    /// controllers as ground truth in tests).
    fn nominal_rate(&self) -> Option<f64> {
        None
    }
}

/// A Poisson process: i.i.d. exponential inter-arrival times with rate `λ`
/// (the paper's SR model).
///
/// # Examples
///
/// ```
/// use dpm_sim::workload::{PoissonWorkload, Workload};
///
/// # fn main() -> Result<(), dpm_sim::SimError> {
/// let w = PoissonWorkload::new(1.0 / 6.0)?;
/// assert_eq!(w.nominal_rate(), Some(1.0 / 6.0));
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PoissonWorkload {
    lambda: f64,
}

impl PoissonWorkload {
    /// Creates a Poisson workload with rate `lambda`.
    ///
    /// # Errors
    ///
    /// Returns [`SimError::InvalidConfig`] unless `lambda` is positive and
    /// finite.
    pub fn new(lambda: f64) -> Result<Self, SimError> {
        if !(lambda > 0.0 && lambda.is_finite()) {
            return Err(SimError::InvalidConfig {
                reason: format!("arrival rate {lambda} must be positive and finite"),
            });
        }
        Ok(PoissonWorkload { lambda })
    }

    /// Arrival rate `λ`.
    #[must_use]
    pub fn lambda(&self) -> f64 {
        self.lambda
    }
}

impl Workload for PoissonWorkload {
    fn next_interarrival(&mut self, rng: &mut ChaCha8Rng) -> Option<f64> {
        Some(exponential(rng, self.lambda))
    }

    fn nominal_rate(&self) -> Option<f64> {
        Some(self.lambda)
    }
}

/// A piecewise-Poisson workload: the rate steps through `(duration, λ)`
/// segments — the drifting input of the adaptive-power-management
/// experiment. After the last segment the final rate persists.
#[derive(Debug, Clone, PartialEq)]
pub struct PiecewiseWorkload {
    segments: Vec<(f64, f64)>,
    elapsed: f64,
}

impl PiecewiseWorkload {
    /// Creates a workload from `(duration, lambda)` segments.
    ///
    /// # Errors
    ///
    /// Returns [`SimError::InvalidConfig`] for an empty segment list or
    /// non-positive durations/rates.
    pub fn new(segments: Vec<(f64, f64)>) -> Result<Self, SimError> {
        if segments.is_empty() {
            return Err(SimError::InvalidConfig {
                reason: "piecewise workload needs at least one segment".to_owned(),
            });
        }
        for &(d, l) in &segments {
            if !(d > 0.0 && d.is_finite() && l > 0.0 && l.is_finite()) {
                return Err(SimError::InvalidConfig {
                    reason: format!("invalid segment (duration {d}, rate {l})"),
                });
            }
        }
        Ok(PiecewiseWorkload {
            segments,
            elapsed: 0.0,
        })
    }

    /// The rate in force after `elapsed` time.
    #[must_use]
    pub fn rate_at(&self, elapsed: f64) -> f64 {
        let mut boundary = 0.0;
        for &(d, l) in &self.segments {
            boundary += d;
            if elapsed < boundary {
                return l;
            }
        }
        // dpm-lint: allow(no_panic, reason = "segments are validated non-empty at construction")
        self.segments.last().expect("validated non-empty").1
    }
}

impl Workload for PiecewiseWorkload {
    fn next_interarrival(&mut self, rng: &mut ChaCha8Rng) -> Option<f64> {
        // Piecewise-constant-rate Poisson process via per-segment sampling:
        // draw an exponential at the current rate; if it crosses a segment
        // boundary, restart the draw from the boundary (valid thinning by
        // memorylessness).
        let mut now = self.elapsed;
        loop {
            let rate = self.rate_at(now);
            let draw = exponential(rng, rate);
            // Find the boundary of the segment containing `now`.
            let mut boundary = 0.0;
            let mut next_boundary = None;
            for &(d, _) in &self.segments {
                boundary += d;
                if now < boundary {
                    next_boundary = Some(boundary);
                    break;
                }
            }
            match next_boundary {
                Some(b) if now + draw > b => {
                    now = b;
                }
                _ => {
                    now += draw;
                    let gap = now - self.elapsed;
                    self.elapsed = now;
                    return Some(gap);
                }
            }
        }
    }
}

/// Replays a fixed trace of inter-arrival times, then ends the stream.
#[derive(Debug, Clone, PartialEq)]
pub struct TraceWorkload {
    gaps: Vec<f64>,
    position: usize,
}

impl TraceWorkload {
    /// Creates a workload replaying `gaps` in order.
    ///
    /// # Errors
    ///
    /// Returns [`SimError::InvalidConfig`] if any gap is negative or
    /// non-finite.
    pub fn new(gaps: Vec<f64>) -> Result<Self, SimError> {
        if gaps.iter().any(|g| !(*g >= 0.0 && g.is_finite())) {
            return Err(SimError::InvalidConfig {
                reason: "trace gaps must be finite and non-negative".to_owned(),
            });
        }
        Ok(TraceWorkload { gaps, position: 0 })
    }

    /// Number of arrivals remaining.
    #[must_use]
    pub fn remaining(&self) -> usize {
        self.gaps.len() - self.position
    }
}

impl Workload for TraceWorkload {
    fn next_interarrival(&mut self, _rng: &mut ChaCha8Rng) -> Option<f64> {
        let gap = self.gaps.get(self.position).copied();
        if gap.is_some() {
            self.position += 1;
        }
        gap
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    #[test]
    fn poisson_validates_rate() {
        assert!(PoissonWorkload::new(0.0).is_err());
        assert!(PoissonWorkload::new(f64::NAN).is_err());
        assert!(PoissonWorkload::new(0.5).is_ok());
    }

    #[test]
    fn poisson_mean_gap_is_inverse_rate() {
        let mut w = PoissonWorkload::new(0.25).unwrap();
        let mut rng = ChaCha8Rng::seed_from_u64(9);
        let n = 100_000;
        let total: f64 = (0..n)
            .map(|_| w.next_interarrival(&mut rng).expect("infinite stream"))
            .sum();
        assert!((total / n as f64 - 4.0).abs() < 0.05);
    }

    #[test]
    fn piecewise_rate_lookup() {
        let w = PiecewiseWorkload::new(vec![(10.0, 1.0), (5.0, 2.0)]).unwrap();
        assert_eq!(w.rate_at(0.0), 1.0);
        assert_eq!(w.rate_at(9.99), 1.0);
        assert_eq!(w.rate_at(10.01), 2.0);
        assert_eq!(w.rate_at(100.0), 2.0);
    }

    #[test]
    fn piecewise_rates_shift_mean_gaps() {
        let mut w = PiecewiseWorkload::new(vec![(1_000.0, 0.1), (1_000.0, 10.0)]).unwrap();
        let mut rng = ChaCha8Rng::seed_from_u64(11);
        let mut t = 0.0;
        let mut early = Vec::new();
        let mut late = Vec::new();
        while t < 1_900.0 {
            let gap = w.next_interarrival(&mut rng).expect("infinite stream");
            t += gap;
            if t < 1_000.0 {
                early.push(gap);
            } else if t > 1_050.0 {
                late.push(gap);
            }
        }
        let mean = |v: &[f64]| v.iter().sum::<f64>() / v.len() as f64;
        assert!(mean(&early) > 5.0, "slow phase mean {}", mean(&early));
        assert!(mean(&late) < 0.5, "fast phase mean {}", mean(&late));
    }

    #[test]
    fn piecewise_validates() {
        assert!(PiecewiseWorkload::new(vec![]).is_err());
        assert!(PiecewiseWorkload::new(vec![(0.0, 1.0)]).is_err());
        assert!(PiecewiseWorkload::new(vec![(1.0, -1.0)]).is_err());
    }

    #[test]
    fn trace_replays_and_ends() {
        let mut w = TraceWorkload::new(vec![1.0, 2.5]).unwrap();
        let mut rng = ChaCha8Rng::seed_from_u64(0);
        assert_eq!(w.remaining(), 2);
        assert_eq!(w.next_interarrival(&mut rng), Some(1.0));
        assert_eq!(w.next_interarrival(&mut rng), Some(2.5));
        assert_eq!(w.next_interarrival(&mut rng), None);
        assert_eq!(w.remaining(), 0);
    }

    #[test]
    fn trace_validates() {
        assert!(TraceWorkload::new(vec![-1.0]).is_err());
        assert!(TraceWorkload::new(vec![f64::INFINITY]).is_err());
    }
}

/// A jittered periodic workload: one request every `period` seconds plus
/// uniform jitter in `[-jitter, +jitter]` — the strongly correlated,
/// almost-deterministic request pattern (frame rendering, sensor polling)
/// for which the paper notes predictive schemes were designed.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PeriodicWorkload {
    period: f64,
    jitter: f64,
}

impl PeriodicWorkload {
    /// Creates the workload.
    ///
    /// # Errors
    ///
    /// Returns [`SimError::InvalidConfig`] unless `0 ≤ jitter < period` and
    /// the period is positive and finite.
    pub fn new(period: f64, jitter: f64) -> Result<Self, SimError> {
        if !(period > 0.0 && period.is_finite()) {
            return Err(SimError::InvalidConfig {
                reason: format!("period {period} must be positive and finite"),
            });
        }
        if !(jitter >= 0.0 && jitter < period) {
            return Err(SimError::InvalidConfig {
                reason: format!("jitter {jitter} must be in [0, period)"),
            });
        }
        Ok(PeriodicWorkload { period, jitter })
    }

    /// The nominal period.
    #[must_use]
    pub fn period(&self) -> f64 {
        self.period
    }
}

impl Workload for PeriodicWorkload {
    fn next_interarrival(&mut self, rng: &mut ChaCha8Rng) -> Option<f64> {
        use rand::Rng as _;
        let offset = if self.jitter > 0.0 {
            rng.gen_range(-self.jitter..self.jitter)
        } else {
            0.0
        };
        Some(self.period + offset)
    }

    fn nominal_rate(&self) -> Option<f64> {
        Some(1.0 / self.period)
    }
}

#[cfg(test)]
mod periodic_tests {
    use super::*;
    use rand::SeedableRng;

    #[test]
    fn validates_parameters() {
        assert!(PeriodicWorkload::new(0.0, 0.0).is_err());
        assert!(PeriodicWorkload::new(2.0, 2.0).is_err());
        assert!(PeriodicWorkload::new(2.0, -0.1).is_err());
        assert!(PeriodicWorkload::new(2.0, 0.5).is_ok());
    }

    #[test]
    fn gaps_stay_within_jitter_band() {
        let mut w = PeriodicWorkload::new(4.0, 1.0).unwrap();
        let mut rng = ChaCha8Rng::seed_from_u64(17);
        for _ in 0..10_000 {
            let gap = w.next_interarrival(&mut rng).unwrap();
            assert!((3.0..5.0).contains(&gap), "gap {gap} outside band");
        }
    }

    #[test]
    fn zero_jitter_is_exactly_periodic() {
        let mut w = PeriodicWorkload::new(2.5, 0.0).unwrap();
        let mut rng = ChaCha8Rng::seed_from_u64(18);
        for _ in 0..100 {
            assert_eq!(w.next_interarrival(&mut rng), Some(2.5));
        }
        assert_eq!(w.nominal_rate(), Some(0.4));
    }

    #[test]
    fn mean_gap_matches_period() {
        let mut w = PeriodicWorkload::new(3.0, 1.5).unwrap();
        let mut rng = ChaCha8Rng::seed_from_u64(19);
        let n = 50_000;
        let total: f64 = (0..n).map(|_| w.next_interarrival(&mut rng).unwrap()).sum();
        assert!((total / n as f64 - 3.0).abs() < 0.02);
    }
}
