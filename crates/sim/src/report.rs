//! Simulation outcome statistics.

use std::fmt;

/// Aggregated results of one simulation run.
///
/// Time-weighted metrics (power, queue length) integrate over the whole
/// run; per-request metrics (sojourn) average over completed requests.
/// Confidence half-widths come from batch means (when enough batches were
/// collected to be meaningful).
#[derive(Debug, Clone, PartialEq)]
pub struct SimReport {
    pub(crate) policy: String,
    pub(crate) seed: u64,
    pub(crate) duration: f64,
    pub(crate) occupancy_energy: f64,
    pub(crate) switch_energy: f64,
    pub(crate) queue_integral: f64,
    pub(crate) arrivals: u64,
    pub(crate) completed: u64,
    pub(crate) lost: u64,
    pub(crate) switches: u64,
    pub(crate) sojourn_sum: f64,
    pub(crate) consultations: u64,
    pub(crate) events: u64,
    pub(crate) power_ci: Option<f64>,
    pub(crate) sojourn_ci: Option<f64>,
}

/// The raw accumulators behind a [`SimReport`] — a lossless, bit-exact
/// decomposition with public fields.
///
/// Derived metrics ([`SimReport::average_power`] and friends) are
/// quotients computed on demand, so round-tripping a report through its
/// parts ([`SimReport::parts`] → [`SimReport::from_parts`]) reproduces
/// every statistic to the bit. Checkpoint journals (the `dpm-serve` fleet
/// journal) persist reports this way.
#[derive(Debug, Clone, PartialEq)]
pub struct ReportParts {
    /// Name of the policy that ran.
    pub policy: String,
    /// RNG seed of the run.
    pub seed: u64,
    /// Simulated duration in seconds.
    pub duration: f64,
    /// Energy integrated over mode occupancy.
    pub occupancy_energy: f64,
    /// Energy spent on mode switches.
    pub switch_energy: f64,
    /// Time integral of the queue length.
    pub queue_integral: f64,
    /// Requests generated.
    pub arrivals: u64,
    /// Requests serviced to completion.
    pub completed: u64,
    /// Requests lost to a full queue.
    pub lost: u64,
    /// Mode switches performed.
    pub switches: u64,
    /// Total sojourn time over completed requests.
    pub sojourn_sum: f64,
    /// Power-manager consultations.
    pub consultations: u64,
    /// Engine events processed.
    pub events: u64,
    /// Batch-means half-width for average power, when collected.
    pub power_ci: Option<f64>,
    /// Batch-means half-width for average waiting time, when collected.
    pub sojourn_ci: Option<f64>,
}

impl SimReport {
    /// Decomposes the report into its raw accumulators.
    #[must_use]
    pub fn parts(&self) -> ReportParts {
        ReportParts {
            policy: self.policy.clone(),
            seed: self.seed,
            duration: self.duration,
            occupancy_energy: self.occupancy_energy,
            switch_energy: self.switch_energy,
            queue_integral: self.queue_integral,
            arrivals: self.arrivals,
            completed: self.completed,
            lost: self.lost,
            switches: self.switches,
            sojourn_sum: self.sojourn_sum,
            consultations: self.consultations,
            events: self.events,
            power_ci: self.power_ci,
            sojourn_ci: self.sojourn_ci,
        }
    }

    /// Reassembles a report from raw accumulators, inverting
    /// [`SimReport::parts`] exactly.
    #[must_use]
    pub fn from_parts(parts: ReportParts) -> SimReport {
        SimReport {
            policy: parts.policy,
            seed: parts.seed,
            duration: parts.duration,
            occupancy_energy: parts.occupancy_energy,
            switch_energy: parts.switch_energy,
            queue_integral: parts.queue_integral,
            arrivals: parts.arrivals,
            completed: parts.completed,
            lost: parts.lost,
            switches: parts.switches,
            sojourn_sum: parts.sojourn_sum,
            consultations: parts.consultations,
            events: parts.events,
            power_ci: parts.power_ci,
            sojourn_ci: parts.sojourn_ci,
        }
    }

    /// Name of the policy that ran.
    #[must_use]
    pub fn policy(&self) -> &str {
        &self.policy
    }

    /// RNG seed of the run (replay with the same seed reproduces it).
    #[must_use]
    pub fn seed(&self) -> u64 {
        self.seed
    }

    /// Simulated duration in seconds.
    #[must_use]
    pub fn duration(&self) -> f64 {
        self.duration
    }

    /// Total energy in joules (mode occupancy plus switching).
    #[must_use]
    pub fn total_energy(&self) -> f64 {
        self.occupancy_energy + self.switch_energy
    }

    /// Energy spent on mode switches alone.
    #[must_use]
    pub fn switch_energy(&self) -> f64 {
        self.switch_energy
    }

    /// Average power dissipation in watts (the paper's power metric).
    #[must_use]
    pub fn average_power(&self) -> f64 {
        self.total_energy() / self.duration
    }

    /// Time-averaged number of requests present (the paper's performance
    /// metric, `C_sq` averaged).
    #[must_use]
    pub fn average_queue_length(&self) -> f64 {
        self.queue_integral / self.duration
    }

    /// Requests generated by the workload.
    #[must_use]
    pub fn arrivals(&self) -> u64 {
        self.arrivals
    }

    /// Requests serviced to completion.
    #[must_use]
    pub fn completed(&self) -> u64 {
        self.completed
    }

    /// Requests lost to a full queue.
    #[must_use]
    pub fn lost(&self) -> u64 {
        self.lost
    }

    /// Mode switches performed.
    #[must_use]
    pub fn switches(&self) -> u64 {
        self.switches
    }

    /// Number of times the power manager was consulted — state changes for
    /// asynchronous controllers, plus timer fires for time-driven ones. The
    /// per-second rate is the "signal traffic" the paper argues the
    /// asynchronous policy minimizes.
    #[must_use]
    pub fn consultations(&self) -> u64 {
        self.consultations
    }

    /// Power-manager consultations per simulated second.
    #[must_use]
    pub fn consultation_rate(&self) -> f64 {
        self.consultations as f64 / self.duration
    }

    /// Discrete events processed by the engine's main loop (arrivals,
    /// service completions, mode-switch completions, timer fires).
    #[must_use]
    pub fn events(&self) -> u64 {
        self.events
    }

    /// Average time a completed request spent in the system ("waiting
    /// time" in the paper's Table 1).
    #[must_use]
    pub fn average_waiting_time(&self) -> f64 {
        if self.completed == 0 {
            0.0
        } else {
            self.sojourn_sum / self.completed as f64
        }
    }

    /// Fraction of arrivals lost.
    #[must_use]
    pub fn loss_fraction(&self) -> f64 {
        if self.arrivals == 0 {
            0.0
        } else {
            self.lost as f64 / self.arrivals as f64
        }
    }

    /// Accepted-request throughput (completions per second).
    #[must_use]
    pub fn throughput(&self) -> f64 {
        self.completed as f64 / self.duration
    }

    /// Batch-means ~95% half-width for [`SimReport::average_power`], when
    /// enough batches were collected.
    #[must_use]
    pub fn power_half_width(&self) -> Option<f64> {
        self.power_ci
    }

    /// Batch-means ~95% half-width for
    /// [`SimReport::average_waiting_time`], when enough batches were
    /// collected.
    #[must_use]
    pub fn waiting_half_width(&self) -> Option<f64> {
        self.sojourn_ci
    }
}

impl fmt::Display for SimReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}: power {:.3} W, queue {:.3}, wait {:.3} s ({} served, {} lost, {} switches over {:.0} s)",
            self.policy,
            self.average_power(),
            self.average_queue_length(),
            self.average_waiting_time(),
            self.completed,
            self.lost,
            self.switches,
            self.duration
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn report() -> SimReport {
        SimReport {
            policy: "test".to_owned(),
            seed: 7,
            duration: 100.0,
            occupancy_energy: 900.0,
            switch_energy: 100.0,
            queue_integral: 50.0,
            arrivals: 40,
            completed: 36,
            lost: 4,
            switches: 12,
            sojourn_sum: 72.0,
            consultations: 90,
            events: 250,
            power_ci: Some(0.5),
            sojourn_ci: None,
        }
    }

    #[test]
    fn derived_metrics() {
        let r = report();
        assert_eq!(r.total_energy(), 1000.0);
        assert_eq!(r.average_power(), 10.0);
        assert_eq!(r.average_queue_length(), 0.5);
        assert_eq!(r.average_waiting_time(), 2.0);
        assert_eq!(r.loss_fraction(), 0.1);
        assert_eq!(r.throughput(), 0.36);
        assert_eq!(r.power_half_width(), Some(0.5));
        assert_eq!(r.consultations(), 90);
        assert_eq!(r.events(), 250);
        assert!((r.consultation_rate() - 0.9).abs() < 1e-12);
        assert_eq!(r.waiting_half_width(), None);
        assert_eq!(r.seed(), 7);
        assert_eq!(r.policy(), "test");
    }

    #[test]
    fn parts_round_trip_bit_exactly() {
        let r = report();
        assert_eq!(SimReport::from_parts(r.parts()), r);
        let mut parts = r.parts();
        parts.seed = 8;
        assert_ne!(SimReport::from_parts(parts), r);
    }

    #[test]
    fn zero_completions_yield_zero_waiting() {
        let mut r = report();
        r.completed = 0;
        assert_eq!(r.average_waiting_time(), 0.0);
    }

    #[test]
    fn display_mentions_policy() {
        assert!(report().to_string().starts_with("test:"));
    }
}
