//! Power-management controllers (the PM component of the simulation).
//!
//! A controller is consulted on every system state change — the paper's
//! *asynchronous* power manager, as opposed to the per-time-slice polling
//! of the discrete-time formulation — and answers with a target power mode
//! plus, optionally, a timer request (used by time-out heuristics, which
//! are time-dependent and therefore not expressible as stationary Markov
//! policies).

use dpm_core::{PmPolicy, PmSystem, SpModel, SrModel, SysState};
use rand::Rng;
use rand_chacha::ChaCha8Rng;

use crate::SimError;

/// Why the controller is being consulted.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum SimEvent {
    /// Simulation start.
    Start,
    /// A request arrived (or was lost at a full queue).
    Arrival,
    /// A service completed (the system is now in a transfer state).
    ServiceCompletion,
    /// A commanded mode switch finished.
    SwitchComplete,
    /// A previously requested timer fired.
    TimerFired,
}

/// What the controller observes: the full joint state, exactly as in the
/// model.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Observation {
    /// Current simulated time.
    pub time: f64,
    /// Joint provider/queue state.
    pub state: SysState,
}

/// The controller's answer: a target mode and an optional timer that will
/// fire after `timer` seconds unless superseded by a newer command.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Command {
    /// The mode the provider should head to (its current mode = stay).
    pub target: usize,
    /// Optional timer request, in seconds from now.
    pub timer: Option<f64>,
}

impl Command {
    /// A plain "switch to `target`" (or stay) command.
    #[must_use]
    pub fn go(target: usize) -> Self {
        Command {
            target,
            timer: None,
        }
    }

    /// A "stay, and wake me in `delay` seconds" command.
    #[must_use]
    pub fn stay_with_timer(current: usize, delay: f64) -> Self {
        Command {
            target: current,
            timer: Some(delay),
        }
    }
}

/// A power-management policy driving the simulator.
pub trait Controller {
    /// Issues a command for the observed state.
    fn command(
        &mut self,
        observation: &Observation,
        event: SimEvent,
        rng: &mut ChaCha8Rng,
    ) -> Command;

    /// Human-readable policy name for reports.
    fn name(&self) -> String {
        "controller".to_owned()
    }
}

/// Table-driven stationary policy: the optimal policies produced by
/// `dpm-core`'s policy iteration, and any other [`PmPolicy`].
#[derive(Debug, Clone)]
pub struct TableController {
    system: PmSystem,
    policy: PmPolicy,
    label: String,
}

impl TableController {
    /// Wraps a policy over `system`.
    ///
    /// # Errors
    ///
    /// Returns [`SimError::Model`] if the policy does not match the system.
    pub fn new(system: &PmSystem, policy: &PmPolicy) -> Result<Self, SimError> {
        // Validate eagerly so runs cannot fail mid-flight.
        policy.to_mdp_policy(system).map_err(SimError::Model)?;
        Ok(TableController {
            system: system.clone(),
            policy: policy.clone(),
            label: "table".to_owned(),
        })
    }

    /// Sets the display name.
    #[must_use]
    pub fn named(mut self, label: impl Into<String>) -> Self {
        self.label = label.into();
        self
    }
}

impl Controller for TableController {
    fn command(
        &mut self,
        observation: &Observation,
        _event: SimEvent,
        _rng: &mut ChaCha8Rng,
    ) -> Command {
        let target = self
            .policy
            .command(&self.system, observation.state)
            .unwrap_or_else(|_| observation.state.mode());
        Command::go(target)
    }

    fn name(&self) -> String {
        self.label.clone()
    }
}

/// Randomized stationary policy (from the constrained occupation-measure
/// LP): in each state, the target mode is drawn from a per-state
/// distribution at every state change.
#[derive(Debug, Clone)]
pub struct RandomizedController {
    system: PmSystem,
    /// Per state: cumulative weights over the state's action destinations.
    weights: Vec<Vec<f64>>,
}

impl RandomizedController {
    /// Wraps a randomized policy (per-state weights over each state's
    /// action-destination list, as produced by
    /// [`dpm_core::optimize::constrained_lp`]).
    ///
    /// # Errors
    ///
    /// Returns [`SimError::InvalidConfig`] if the weight table shape does
    /// not match the system's action sets.
    pub fn new(system: &PmSystem, policy: &dpm_mdp::RandomizedPolicy) -> Result<Self, SimError> {
        if policy.len() != system.n_states() {
            return Err(SimError::InvalidConfig {
                reason: format!(
                    "randomized policy covers {} states, system has {}",
                    policy.len(),
                    system.n_states()
                ),
            });
        }
        let mut weights = Vec::with_capacity(system.n_states());
        for i in 0..system.n_states() {
            let w = policy.weights(i);
            if w.len() != system.action_destinations(i).len() {
                return Err(SimError::InvalidConfig {
                    reason: format!(
                        "state {i}: {} weights for {} actions",
                        w.len(),
                        system.action_destinations(i).len()
                    ),
                });
            }
            weights.push(w.to_vec());
        }
        Ok(RandomizedController {
            system: system.clone(),
            weights,
        })
    }
}

impl Controller for RandomizedController {
    fn command(
        &mut self,
        observation: &Observation,
        _event: SimEvent,
        rng: &mut ChaCha8Rng,
    ) -> Command {
        let Some(index) = self.system.index_of(observation.state) else {
            return Command::go(observation.state.mode());
        };
        let weights = &self.weights[index];
        let dests = self.system.action_destinations(index);
        let draw: f64 = rng.gen();
        let mut acc = 0.0;
        for (w, &d) in weights.iter().zip(dests) {
            acc += w;
            if draw < acc {
                return Command::go(d);
            }
        }
        // dpm-lint: allow(no_panic, reason = "policy validation guarantees a non-empty destination set")
        Command::go(*dests.last().expect("non-empty action set"))
    }

    fn name(&self) -> String {
        "randomized-lp".to_owned()
    }
}

/// The N-policy heuristic (Section V): sleep when the system empties, wake
/// when `n` requests have accumulated.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct NPolicyController {
    n: usize,
    sleep_mode: usize,
    wake_mode: usize,
    active: [bool; 64],
    n_modes: usize,
}

impl NPolicyController {
    /// Creates the controller for `sp` with threshold `n`.
    ///
    /// # Errors
    ///
    /// Returns [`SimError::InvalidConfig`] for `n == 0`, an active sleep
    /// mode, or more than 64 modes.
    pub fn new(sp: &SpModel, n: usize, sleep_mode: usize) -> Result<Self, SimError> {
        if n == 0 {
            return Err(SimError::InvalidConfig {
                reason: "N must be at least 1".to_owned(),
            });
        }
        if sp.n_modes() > 64 {
            return Err(SimError::InvalidConfig {
                reason: "more than 64 provider modes".to_owned(),
            });
        }
        if sleep_mode >= sp.n_modes() || sp.is_active(sleep_mode) {
            return Err(SimError::InvalidConfig {
                reason: format!("sleep mode {sleep_mode} must be an inactive mode"),
            });
        }
        let wake_mode = sp
            .active_modes()
            .into_iter()
            .max_by(|&a, &b| {
                sp.service_rate(a)
                    .partial_cmp(&sp.service_rate(b))
                    // dpm-lint: allow(no_panic, reason = "rates are validated finite when the model is constructed")
                    .expect("finite rates")
            })
            // dpm-lint: allow(no_panic, reason = "SpModel validation guarantees an active mode")
            .expect("provider has an active mode");
        let mut active = [false; 64];
        for (m, slot) in active.iter_mut().enumerate().take(sp.n_modes()) {
            *slot = sp.is_active(m);
        }
        Ok(NPolicyController {
            n,
            sleep_mode,
            wake_mode,
            active,
            n_modes: sp.n_modes(),
        })
    }
}

impl Controller for NPolicyController {
    fn command(
        &mut self,
        observation: &Observation,
        _event: SimEvent,
        _rng: &mut ChaCha8Rng,
    ) -> Command {
        match observation.state {
            SysState::Stable { mode, jobs } => {
                if self.active[mode] {
                    Command::go(mode)
                } else if jobs >= self.n {
                    Command::go(self.wake_mode)
                } else if mode == self.sleep_mode {
                    Command::go(mode)
                } else {
                    Command::go(self.sleep_mode)
                }
            }
            SysState::Transfer { mode, departing } => {
                if departing - 1 == 0 {
                    Command::go(self.sleep_mode)
                } else {
                    Command::go(mode)
                }
            }
        }
    }

    fn name(&self) -> String {
        format!("n-policy({})", self.n)
    }
}

/// The greedy heuristic of Section V: deactivate the instant the queue is
/// empty, reactivate the instant it is not (the N-policy with `N = 1`).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct GreedyController {
    inner: NPolicyController,
}

impl GreedyController {
    /// Creates the greedy controller sleeping in the deepest inactive mode.
    ///
    /// # Errors
    ///
    /// Returns [`SimError::InvalidConfig`] if the provider has no inactive
    /// mode.
    pub fn new(sp: &SpModel) -> Result<Self, SimError> {
        let sleep_mode = sp
            .inactive_modes()
            .into_iter()
            .min_by(|&a, &b| {
                sp.power(a)
                    .partial_cmp(&sp.power(b))
                    // dpm-lint: allow(no_panic, reason = "power draws are validated finite when the model is constructed")
                    .expect("finite powers")
            })
            .ok_or_else(|| SimError::InvalidConfig {
                reason: "greedy controller needs an inactive mode".to_owned(),
            })?;
        Ok(GreedyController {
            inner: NPolicyController::new(sp, 1, sleep_mode)?,
        })
    }
}

impl Controller for GreedyController {
    fn command(
        &mut self,
        observation: &Observation,
        event: SimEvent,
        rng: &mut ChaCha8Rng,
    ) -> Command {
        self.inner.command(observation, event, rng)
    }

    fn name(&self) -> String {
        "greedy".to_owned()
    }
}

/// The time-out heuristic: deactivate after the server has been idle for a
/// fixed time; reactivate on arrival.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TimeoutController {
    timeout: f64,
    sleep_mode: usize,
    wake_mode: usize,
    active: [bool; 64],
}

impl TimeoutController {
    /// Creates the controller with the given idle `timeout` (seconds).
    ///
    /// # Errors
    ///
    /// Returns [`SimError::InvalidConfig`] for a negative or non-finite
    /// timeout, an active sleep mode, or more than 64 modes.
    pub fn new(sp: &SpModel, timeout: f64, sleep_mode: usize) -> Result<Self, SimError> {
        if !(timeout >= 0.0 && timeout.is_finite()) {
            return Err(SimError::InvalidConfig {
                reason: format!("timeout {timeout} must be finite and >= 0"),
            });
        }
        if sp.n_modes() > 64 {
            return Err(SimError::InvalidConfig {
                reason: "more than 64 provider modes".to_owned(),
            });
        }
        if sleep_mode >= sp.n_modes() || sp.is_active(sleep_mode) {
            return Err(SimError::InvalidConfig {
                reason: format!("sleep mode {sleep_mode} must be an inactive mode"),
            });
        }
        let wake_mode = sp
            .active_modes()
            .into_iter()
            .max_by(|&a, &b| {
                sp.service_rate(a)
                    .partial_cmp(&sp.service_rate(b))
                    // dpm-lint: allow(no_panic, reason = "rates are validated finite when the model is constructed")
                    .expect("finite rates")
            })
            // dpm-lint: allow(no_panic, reason = "SpModel validation guarantees an active mode")
            .expect("provider has an active mode");
        let mut active = [false; 64];
        for (m, slot) in active.iter_mut().enumerate().take(sp.n_modes()) {
            *slot = sp.is_active(m);
        }
        Ok(TimeoutController {
            timeout,
            sleep_mode,
            wake_mode,
            active,
        })
    }
}

impl Controller for TimeoutController {
    fn command(
        &mut self,
        observation: &Observation,
        event: SimEvent,
        _rng: &mut ChaCha8Rng,
    ) -> Command {
        let present = observation.state.requests_present();
        let mode = observation.state.mode();
        if present > 0 {
            // Work pending: (stay) awake.
            return if self.active[mode] {
                Command::go(mode)
            } else {
                Command::go(self.wake_mode)
            };
        }
        // Idle.
        if self.active[mode] {
            if event == SimEvent::TimerFired {
                Command::go(self.sleep_mode)
            } else {
                Command::stay_with_timer(mode, self.timeout)
            }
        } else {
            Command::go(mode)
        }
    }

    fn name(&self) -> String {
        format!("timeout({}s)", self.timeout)
    }
}

/// Never power down: stay in (or head for) the wake mode everywhere.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct AlwaysOnController {
    wake_mode: usize,
}

impl AlwaysOnController {
    /// Creates the controller targeting the fastest active mode of `sp`.
    #[must_use]
    pub fn new(sp: &SpModel) -> Self {
        let wake_mode = sp
            .active_modes()
            .into_iter()
            .max_by(|&a, &b| {
                sp.service_rate(a)
                    .partial_cmp(&sp.service_rate(b))
                    // dpm-lint: allow(no_panic, reason = "rates are validated finite when the model is constructed")
                    .expect("finite rates")
            })
            // dpm-lint: allow(no_panic, reason = "SpModel validation guarantees an active mode")
            .expect("provider has an active mode");
        AlwaysOnController { wake_mode }
    }
}

impl Controller for AlwaysOnController {
    fn command(
        &mut self,
        _observation: &Observation,
        _event: SimEvent,
        _rng: &mut ChaCha8Rng,
    ) -> Command {
        Command::go(self.wake_mode)
    }

    fn name(&self) -> String {
        "always-on".to_owned()
    }
}

/// Adaptive controller (paper Section III): estimates the arrival rate
/// online from a sliding window of inter-arrival times and re-solves the
/// CTMDP for a fresh optimal policy every `resolve_every` arrivals.
#[derive(Debug, Clone)]
pub struct AdaptiveController {
    sp: SpModel,
    capacity: usize,
    weight: f64,
    window: usize,
    resolve_every: usize,
    gaps: Vec<f64>,
    last_arrival: Option<f64>,
    arrivals_since_resolve: usize,
    table: TableController,
    estimate: f64,
}

impl AdaptiveController {
    /// Creates the controller with an initial rate guess `lambda0`.
    ///
    /// `window` is the number of recent inter-arrival gaps used for the
    /// estimate (the paper observes ~5% accuracy after 50 events);
    /// `resolve_every` is how many arrivals pass between re-optimizations.
    ///
    /// # Errors
    ///
    /// Returns [`SimError::InvalidConfig`] for zero window/interval and
    /// propagates model failures from the initial solve.
    pub fn new(
        sp: SpModel,
        capacity: usize,
        weight: f64,
        lambda0: f64,
        window: usize,
        resolve_every: usize,
    ) -> Result<Self, SimError> {
        if window == 0 || resolve_every == 0 {
            return Err(SimError::InvalidConfig {
                reason: "window and resolve interval must be at least 1".to_owned(),
            });
        }
        let table = Self::solve(&sp, capacity, weight, lambda0)?;
        Ok(AdaptiveController {
            sp,
            capacity,
            weight,
            window,
            resolve_every,
            gaps: Vec::new(),
            last_arrival: None,
            arrivals_since_resolve: 0,
            table,
            estimate: lambda0,
        })
    }

    fn solve(
        sp: &SpModel,
        capacity: usize,
        weight: f64,
        lambda: f64,
    ) -> Result<TableController, SimError> {
        let system = PmSystem::builder()
            .provider(sp.clone())
            .requestor(SrModel::poisson(lambda).map_err(SimError::Model)?)
            .capacity(capacity)
            .build()
            .map_err(SimError::Model)?;
        let solution =
            dpm_core::optimize::optimal_policy(&system, weight).map_err(SimError::Model)?;
        TableController::new(&system, solution.policy())
    }

    /// The current arrival-rate estimate.
    #[must_use]
    pub fn estimate(&self) -> f64 {
        self.estimate
    }
}

impl Controller for AdaptiveController {
    fn command(
        &mut self,
        observation: &Observation,
        event: SimEvent,
        rng: &mut ChaCha8Rng,
    ) -> Command {
        if event == SimEvent::Arrival {
            if let Some(last) = self.last_arrival {
                let gap = observation.time - last;
                if gap > 0.0 {
                    self.gaps.push(gap);
                    if self.gaps.len() > self.window {
                        let excess = self.gaps.len() - self.window;
                        self.gaps.drain(0..excess);
                    }
                }
            }
            self.last_arrival = Some(observation.time);
            self.arrivals_since_resolve += 1;
            if self.arrivals_since_resolve >= self.resolve_every
                && self.gaps.len() >= self.window.min(10)
            {
                let mean = self.gaps.iter().sum::<f64>() / self.gaps.len() as f64;
                if mean > 0.0 {
                    let lambda = 1.0 / mean;
                    // Re-solve only on meaningful drift (>10%).
                    if (lambda - self.estimate).abs() > 0.1 * self.estimate {
                        if let Ok(table) = Self::solve(&self.sp, self.capacity, self.weight, lambda)
                        {
                            self.table = table;
                            self.estimate = lambda;
                        }
                    }
                }
                self.arrivals_since_resolve = 0;
            }
        }
        self.table.command(observation, event, rng)
    }

    fn name(&self) -> String {
        "adaptive".to_owned()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    fn sp() -> SpModel {
        SpModel::dac99_server().unwrap()
    }

    fn rng() -> ChaCha8Rng {
        ChaCha8Rng::seed_from_u64(5)
    }

    fn stable(mode: usize, jobs: usize) -> Observation {
        Observation {
            time: 0.0,
            state: SysState::Stable { mode, jobs },
        }
    }

    fn transfer(mode: usize, departing: usize) -> Observation {
        Observation {
            time: 0.0,
            state: SysState::Transfer { mode, departing },
        }
    }

    #[test]
    fn n_policy_thresholds() {
        let mut c = NPolicyController::new(&sp(), 3, 2).unwrap();
        let mut r = rng();
        assert_eq!(
            c.command(&stable(2, 2), SimEvent::Arrival, &mut r).target,
            2
        );
        assert_eq!(
            c.command(&stable(2, 3), SimEvent::Arrival, &mut r).target,
            0
        );
        assert_eq!(
            c.command(&transfer(0, 1), SimEvent::ServiceCompletion, &mut r)
                .target,
            2
        );
        assert_eq!(
            c.command(&transfer(0, 4), SimEvent::ServiceCompletion, &mut r)
                .target,
            0
        );
        assert_eq!(c.name(), "n-policy(3)");
    }

    #[test]
    fn n_policy_validation() {
        assert!(NPolicyController::new(&sp(), 0, 2).is_err());
        assert!(NPolicyController::new(&sp(), 1, 0).is_err());
        assert!(NPolicyController::new(&sp(), 1, 7).is_err());
    }

    #[test]
    fn greedy_is_n1() {
        let mut g = GreedyController::new(&sp()).unwrap();
        let mut r = rng();
        assert_eq!(
            g.command(&transfer(0, 1), SimEvent::ServiceCompletion, &mut r)
                .target,
            2
        );
        assert_eq!(
            g.command(&stable(2, 1), SimEvent::Arrival, &mut r).target,
            0
        );
    }

    #[test]
    fn timeout_requests_timer_then_sleeps() {
        let mut c = TimeoutController::new(&sp(), 1.0, 2).unwrap();
        let mut r = rng();
        // Idle and active: asks for a timer, stays put.
        let cmd = c.command(&stable(0, 0), SimEvent::SwitchComplete, &mut r);
        assert_eq!(cmd.target, 0);
        assert_eq!(cmd.timer, Some(1.0));
        // Timer fires while still idle: sleep.
        let cmd = c.command(&stable(0, 0), SimEvent::TimerFired, &mut r);
        assert_eq!(cmd.target, 2);
        // Work arrives while sleeping: wake.
        let cmd = c.command(&stable(2, 1), SimEvent::Arrival, &mut r);
        assert_eq!(cmd.target, 0);
        assert_eq!(cmd.timer, None);
    }

    #[test]
    fn timeout_validation() {
        assert!(TimeoutController::new(&sp(), -1.0, 2).is_err());
        assert!(TimeoutController::new(&sp(), f64::NAN, 2).is_err());
        assert!(TimeoutController::new(&sp(), 1.0, 0).is_err());
    }

    #[test]
    fn always_on_targets_active() {
        let mut c = AlwaysOnController::new(&sp());
        let mut r = rng();
        assert_eq!(c.command(&stable(2, 0), SimEvent::Start, &mut r).target, 0);
    }

    #[test]
    fn table_controller_follows_policy() {
        let system = PmSystem::builder()
            .provider(sp())
            .requestor(SrModel::poisson(1.0 / 6.0).unwrap())
            .capacity(5)
            .build()
            .unwrap();
        let policy = PmPolicy::n_policy(&system, 2, 2).unwrap();
        let mut c = TableController::new(&system, &policy).unwrap().named("np2");
        let mut r = rng();
        assert_eq!(
            c.command(&stable(2, 2), SimEvent::Arrival, &mut r).target,
            0
        );
        assert_eq!(
            c.command(&stable(2, 1), SimEvent::Arrival, &mut r).target,
            2
        );
        assert_eq!(c.name(), "np2");
    }

    #[test]
    fn randomized_controller_mixes() {
        let system = PmSystem::builder()
            .provider(sp())
            .requestor(SrModel::poisson(1.0 / 6.0).unwrap())
            .capacity(5)
            .build()
            .unwrap();
        // 50/50 over the first two destinations everywhere.
        let weights: Vec<Vec<f64>> = (0..system.n_states())
            .map(|i| {
                let k = system.action_destinations(i).len();
                let mut w = vec![0.0; k];
                if k >= 2 {
                    w[0] = 0.5;
                    w[1] = 0.5;
                } else {
                    w[0] = 1.0;
                }
                w
            })
            .collect();
        let policy = dpm_mdp::RandomizedPolicy::new(weights);
        let mut c = RandomizedController::new(&system, &policy).unwrap();
        let mut r = rng();
        let obs = stable(2, 1);
        let dests = system.action_destinations(system.index_of(obs.state).unwrap());
        let mut seen = std::collections::HashSet::new();
        for _ in 0..200 {
            let cmd = c.command(&obs, SimEvent::Arrival, &mut r);
            assert!(dests.contains(&cmd.target));
            seen.insert(cmd.target);
        }
        assert!(seen.len() >= 2, "mixture never sampled the second action");
    }

    #[test]
    fn adaptive_reestimates_rate() {
        let mut c = AdaptiveController::new(sp(), 5, 1.0, 0.5, 50, 50).unwrap();
        let mut r = rng();
        // Feed arrivals spaced 4 s apart: the estimate should approach 0.25.
        let mut t = 0.0;
        for _ in 0..200 {
            t += 4.0;
            let obs = Observation {
                time: t,
                state: SysState::Stable { mode: 0, jobs: 1 },
            };
            let _ = c.command(&obs, SimEvent::Arrival, &mut r);
        }
        assert!(
            (c.estimate() - 0.25).abs() < 0.01,
            "estimate {} far from 0.25",
            c.estimate()
        );
    }

    #[test]
    fn adaptive_validation() {
        assert!(AdaptiveController::new(sp(), 5, 1.0, 0.2, 0, 10).is_err());
        assert!(AdaptiveController::new(sp(), 5, 1.0, 0.2, 10, 0).is_err());
    }

    #[test]
    fn command_constructors() {
        assert_eq!(Command::go(3).target, 3);
        assert_eq!(Command::go(3).timer, None);
        let c = Command::stay_with_timer(1, 2.5);
        assert_eq!(c.target, 1);
        assert_eq!(c.timer, Some(2.5));
    }
}

/// A *synchronous* power manager in the style of the discrete-time
/// formulation (Paleologo et al., DAC 1998): it evaluates its policy only
/// at fixed time slices of period `delta`, re-issuing its previous command
/// between slices. The engine's consultation counter then shows the signal
/// traffic a time-sliced PM generates compared to the paper's asynchronous
/// (state-change-driven) PM.
#[derive(Debug, Clone)]
pub struct PollingController<C> {
    inner: C,
    delta: f64,
    next_poll: f64,
    last_target: Option<usize>,
}

impl<C: Controller> PollingController<C> {
    /// Wraps `inner`, evaluating it only every `delta` seconds.
    ///
    /// # Errors
    ///
    /// Returns [`SimError::InvalidConfig`] unless `delta` is positive and
    /// finite.
    pub fn new(inner: C, delta: f64) -> Result<Self, SimError> {
        if !(delta > 0.0 && delta.is_finite()) {
            return Err(SimError::InvalidConfig {
                reason: format!("polling period {delta} must be positive and finite"),
            });
        }
        Ok(PollingController {
            inner,
            delta,
            next_poll: 0.0,
            last_target: None,
        })
    }
}

impl<C: Controller> Controller for PollingController<C> {
    fn command(
        &mut self,
        observation: &Observation,
        event: SimEvent,
        rng: &mut ChaCha8Rng,
    ) -> Command {
        let now = observation.time;
        let target = if now + 1e-12 >= self.next_poll || self.last_target.is_none() {
            // Slice boundary: evaluate the wrapped policy.
            while self.next_poll <= now + 1e-12 {
                self.next_poll += self.delta;
            }
            let t = self.inner.command(observation, event, rng).target;
            self.last_target = Some(t);
            t
        } else if let Some(held) = self.last_target {
            // Between slices: hold the previous command (a no-op stay once
            // it has been executed).
            held
        } else {
            // dpm-lint: allow(no_panic, reason = "the first poll always takes the compute branch, which sets last_target")
            unreachable!("branch above populates last_target")
        };
        // Ask to be woken at the next slice boundary.
        Command {
            target,
            timer: Some(self.next_poll - now),
        }
    }

    fn name(&self) -> String {
        format!("polling({}s, {})", self.delta, self.inner.name())
    }
}

#[cfg(test)]
mod polling_tests {
    use super::*;
    use rand::SeedableRng;

    #[test]
    fn polls_only_at_slice_boundaries() {
        let sp = SpModel::dac99_server().unwrap();
        let system = PmSystem::builder()
            .provider(sp)
            .requestor(SrModel::poisson(0.2).unwrap())
            .capacity(5)
            .build()
            .unwrap();
        let inner = TableController::new(&system, &PmPolicy::greedy(&system).unwrap()).unwrap();
        let mut c = PollingController::new(inner, 1.0).unwrap();
        let mut rng = ChaCha8Rng::seed_from_u64(1);
        // At t = 0 (first slice) the greedy policy says wake from sleep+1.
        let obs = Observation {
            time: 0.0,
            state: SysState::Stable { mode: 2, jobs: 1 },
        };
        let cmd = c.command(&obs, SimEvent::Start, &mut rng);
        assert_eq!(cmd.target, 0);
        assert!((cmd.timer.unwrap() - 1.0).abs() < 1e-9);
        // Mid-slice (t = 0.4) after the switch completed: the held command
        // (wake) is a no-op stay from the active mode.
        let obs = Observation {
            time: 0.4,
            state: SysState::Stable { mode: 0, jobs: 1 },
        };
        let cmd = c.command(&obs, SimEvent::SwitchComplete, &mut rng);
        assert_eq!(cmd.target, 0);
        assert!((cmd.timer.unwrap() - 0.6).abs() < 1e-9);
        // Next slice boundary re-evaluates.
        let obs = Observation {
            time: 1.0,
            state: SysState::Stable { mode: 0, jobs: 0 },
        };
        let cmd = c.command(&obs, SimEvent::TimerFired, &mut rng);
        // Greedy at (active, 0): stay (cannot sleep from stable under the
        // table policy; transfer states do the sleeping).
        assert_eq!(cmd.target, 0);
    }

    #[test]
    fn rejects_bad_period() {
        let sp = SpModel::dac99_server().unwrap();
        let c = AlwaysOnController::new(&sp);
        assert!(PollingController::new(c, 0.0).is_err());
        assert!(PollingController::new(c, f64::NAN).is_err());
    }
}

/// A controller driven by a *lumped* `(mode, jobs)` destination table (the
/// DAC'98-style policy shape, which ignores transfer states and may command
/// sleep from any state). Transfer states look up the post-departure row.
#[derive(Debug, Clone)]
pub struct LumpedTableController {
    destinations: Vec<usize>,
    capacity: usize,
    n_modes: usize,
}

impl LumpedTableController {
    /// Wraps a per-`(mode, jobs)` destination table (row-major,
    /// `mode * (capacity + 1) + jobs`, as produced by
    /// [`dpm_core::lumped::LumpedSystem::optimal_destinations`]).
    ///
    /// # Errors
    ///
    /// Returns [`SimError::InvalidConfig`] if the table shape is wrong or a
    /// destination is out of range.
    pub fn new(sp: &SpModel, capacity: usize, destinations: Vec<usize>) -> Result<Self, SimError> {
        let n_modes = sp.n_modes();
        if destinations.len() != n_modes * (capacity + 1) {
            return Err(SimError::InvalidConfig {
                reason: format!(
                    "lumped table has {} entries, expected {}",
                    destinations.len(),
                    n_modes * (capacity + 1)
                ),
            });
        }
        if destinations.iter().any(|&d| d >= n_modes) {
            return Err(SimError::InvalidConfig {
                reason: "lumped table contains an out-of-range mode".to_owned(),
            });
        }
        Ok(LumpedTableController {
            destinations,
            capacity,
            n_modes,
        })
    }
}

impl Controller for LumpedTableController {
    fn command(
        &mut self,
        observation: &Observation,
        _event: SimEvent,
        _rng: &mut ChaCha8Rng,
    ) -> Command {
        let (mode, jobs) = match observation.state {
            SysState::Stable { mode, jobs } => (mode, jobs.min(self.capacity)),
            SysState::Transfer { mode, departing } => (mode, (departing - 1).min(self.capacity)),
        };
        debug_assert!(mode < self.n_modes);
        Command::go(self.destinations[mode * (self.capacity + 1) + jobs])
    }

    fn name(&self) -> String {
        "lumped-table".to_owned()
    }
}

#[cfg(test)]
mod lumped_table_tests {
    use super::*;
    use rand::SeedableRng;

    #[test]
    fn looks_up_by_mode_and_jobs() {
        let sp = SpModel::dac99_server().unwrap();
        // 3 modes x 3 rows (capacity 2): sleep everywhere except wake at
        // (sleeping, 2).
        let mut table = vec![2usize; 9];
        table[2 * 3 + 2] = 0;
        let mut c = LumpedTableController::new(&sp, 2, table).unwrap();
        let mut rng = ChaCha8Rng::seed_from_u64(3);
        let cmd = c.command(
            &Observation {
                time: 0.0,
                state: SysState::Stable { mode: 2, jobs: 2 },
            },
            SimEvent::Arrival,
            &mut rng,
        );
        assert_eq!(cmd.target, 0);
        // Transfer (mode 0, departing 2) uses row (0, 1).
        let cmd = c.command(
            &Observation {
                time: 0.0,
                state: SysState::Transfer {
                    mode: 0,
                    departing: 2,
                },
            },
            SimEvent::ServiceCompletion,
            &mut rng,
        );
        assert_eq!(cmd.target, 2);
    }

    #[test]
    fn validates_shape_and_range() {
        let sp = SpModel::dac99_server().unwrap();
        assert!(LumpedTableController::new(&sp, 2, vec![0; 5]).is_err());
        assert!(LumpedTableController::new(&sp, 2, vec![9; 9]).is_err());
    }
}

/// A predictive-shutdown controller in the spirit of the paper's related
/// work (Srivastava et al. \[16\]; Hwang & Wu \[17\]): on becoming idle it
/// predicts the coming idle period from an exponentially weighted average
/// of past idle periods and sleeps immediately if the prediction exceeds
/// the break-even time of the sleep transition — no timer spent observing.
#[derive(Debug, Clone, PartialEq)]
pub struct PredictiveController {
    sleep_mode: usize,
    wake_mode: usize,
    breakeven: f64,
    /// EWMA smoothing factor in (0, 1]; higher weights recent periods more.
    alpha: f64,
    predicted_idle: f64,
    idle_since: Option<f64>,
    active: [bool; 64],
}

impl PredictiveController {
    /// Creates the controller for `sp`, sleeping into `sleep_mode`.
    ///
    /// The break-even time is derived from the model: the idle duration at
    /// which sleeping (switch energies plus sleep power) costs the same as
    /// idling in the current active mode.
    ///
    /// # Errors
    ///
    /// Returns [`SimError::InvalidConfig`] for an active sleep mode, a bad
    /// smoothing factor, or a provider without the needed switches.
    pub fn new(sp: &SpModel, sleep_mode: usize, alpha: f64) -> Result<Self, SimError> {
        if sp.n_modes() > 64 {
            return Err(SimError::InvalidConfig {
                reason: "more than 64 provider modes".to_owned(),
            });
        }
        if sleep_mode >= sp.n_modes() || sp.is_active(sleep_mode) {
            return Err(SimError::InvalidConfig {
                reason: format!("sleep mode {sleep_mode} must be an inactive mode"),
            });
        }
        if !(alpha > 0.0 && alpha <= 1.0) {
            return Err(SimError::InvalidConfig {
                reason: format!("smoothing factor {alpha} must be in (0, 1]"),
            });
        }
        let wake_mode = sp
            .active_modes()
            .into_iter()
            .max_by(|&a, &b| {
                sp.service_rate(a)
                    .partial_cmp(&sp.service_rate(b))
                    // dpm-lint: allow(no_panic, reason = "rates are validated finite when the model is constructed")
                    .expect("finite rates")
            })
            // dpm-lint: allow(no_panic, reason = "SpModel validation guarantees an active mode")
            .expect("provider has an active mode");
        if !(sp.can_switch(wake_mode, sleep_mode) && sp.can_switch(sleep_mode, wake_mode)) {
            return Err(SimError::InvalidConfig {
                reason: format!(
                    "provider cannot round-trip between modes {wake_mode} and {sleep_mode}"
                ),
            });
        }
        // Break-even idle length T*: idling costs pow_active * T*; sleeping
        // costs ene(down) + ene(up) + pow_sleep * T* (ignoring the wake
        // latency penalty, as the classic predictive schemes do).
        let power_gap = sp.power(wake_mode) - sp.power(sleep_mode);
        let round_trip_energy =
            sp.switch_energy(wake_mode, sleep_mode) + sp.switch_energy(sleep_mode, wake_mode);
        let breakeven = if power_gap > 0.0 {
            round_trip_energy / power_gap
        } else {
            f64::INFINITY
        };
        let mut active = [false; 64];
        for (m, slot) in active.iter_mut().enumerate().take(sp.n_modes()) {
            *slot = sp.is_active(m);
        }
        Ok(PredictiveController {
            sleep_mode,
            wake_mode,
            breakeven,
            alpha,
            // Optimistic prior: predict a long idle period so the first
            // idle period sleeps (matching the published schemes' behavior
            // of defaulting to shutdown).
            predicted_idle: f64::INFINITY,
            idle_since: None,
            active,
        })
    }

    /// The break-even idle time computed from the provider's parameters.
    #[must_use]
    pub fn breakeven(&self) -> f64 {
        self.breakeven
    }

    /// The current idle-period prediction (EWMA of observed idle periods).
    #[must_use]
    pub fn predicted_idle(&self) -> f64 {
        self.predicted_idle
    }
}

impl Controller for PredictiveController {
    fn command(
        &mut self,
        observation: &Observation,
        event: SimEvent,
        _rng: &mut ChaCha8Rng,
    ) -> Command {
        let present = observation.state.requests_present();
        let mode = observation.state.mode();
        if present > 0 {
            // Busy (or work arrived): close any idle period and wake.
            if event == SimEvent::Arrival {
                if let Some(started) = self.idle_since.take() {
                    let observed = observation.time - started;
                    self.predicted_idle = if self.predicted_idle.is_finite() {
                        self.alpha * observed + (1.0 - self.alpha) * self.predicted_idle
                    } else {
                        observed
                    };
                }
            }
            return if self.active[mode] {
                Command::go(mode)
            } else {
                Command::go(self.wake_mode)
            };
        }
        // Idle.
        if self.idle_since.is_none() {
            self.idle_since = Some(observation.time);
        }
        if self.active[mode] {
            if self.predicted_idle > self.breakeven {
                return Command::go(self.sleep_mode);
            }
            // Predicted-short idle: stay awake, but with the watchdog of
            // the improved predictive schemes \[17\] — if the idle period
            // outlives the prediction (so the prediction was wrong), sleep
            // anyway once the break-even point is past.
            // dpm-lint: allow(no_panic, reason = "idle_since is assigned in the branch that precedes this one")
            let idle_start = self.idle_since.expect("set above");
            let elapsed = observation.time - idle_start;
            let watchdog = self.breakeven.max(self.predicted_idle);
            if event == SimEvent::TimerFired && elapsed + 1e-12 >= watchdog {
                return Command::go(self.sleep_mode);
            }
            return Command::stay_with_timer(mode, (watchdog - elapsed).max(0.0));
        }
        Command::go(mode)
    }

    fn name(&self) -> String {
        "predictive".to_owned()
    }
}

#[cfg(test)]
mod predictive_tests {
    use super::*;
    use rand::SeedableRng;

    fn sp() -> SpModel {
        SpModel::dac99_server().unwrap()
    }

    #[test]
    fn breakeven_follows_model_parameters() {
        let c = PredictiveController::new(&sp(), 2, 0.5).unwrap();
        // (0.5 + 11) / (40 - 0.1)
        assert!((c.breakeven() - 11.5 / 39.9).abs() < 1e-12);
    }

    #[test]
    fn sleeps_when_prediction_exceeds_breakeven() {
        let mut c = PredictiveController::new(&sp(), 2, 0.5).unwrap();
        let mut rng = ChaCha8Rng::seed_from_u64(1);
        // Idle with an optimistic prior: sleep immediately.
        let obs = Observation {
            time: 10.0,
            state: SysState::Stable { mode: 0, jobs: 0 },
        };
        let cmd = c.command(&obs, SimEvent::ServiceCompletion, &mut rng);
        assert_eq!(cmd.target, 2);
    }

    #[test]
    fn learns_short_idle_periods_and_stays_awake() {
        let mut c = PredictiveController::new(&sp(), 2, 1.0).unwrap();
        let mut rng = ChaCha8Rng::seed_from_u64(2);
        // Observe a very short idle period: idle at t=0, arrival at t=0.05.
        let idle = Observation {
            time: 0.0,
            state: SysState::Stable { mode: 0, jobs: 0 },
        };
        let _ = c.command(&idle, SimEvent::ServiceCompletion, &mut rng);
        let busy = Observation {
            time: 0.05,
            state: SysState::Stable { mode: 0, jobs: 1 },
        };
        let _ = c.command(&busy, SimEvent::Arrival, &mut rng);
        assert!((c.predicted_idle() - 0.05).abs() < 1e-12);
        // Next idle period: prediction (0.05) < breakeven (~0.29) -> stay.
        let idle_again = Observation {
            time: 0.1,
            state: SysState::Stable { mode: 0, jobs: 0 },
        };
        let cmd = c.command(&idle_again, SimEvent::ServiceCompletion, &mut rng);
        assert_eq!(cmd.target, 0);
    }

    #[test]
    fn wakes_on_arrival_while_asleep() {
        let mut c = PredictiveController::new(&sp(), 2, 0.5).unwrap();
        let mut rng = ChaCha8Rng::seed_from_u64(3);
        let obs = Observation {
            time: 5.0,
            state: SysState::Stable { mode: 2, jobs: 1 },
        };
        assert_eq!(c.command(&obs, SimEvent::Arrival, &mut rng).target, 0);
    }

    #[test]
    fn validation() {
        assert!(PredictiveController::new(&sp(), 0, 0.5).is_err());
        assert!(PredictiveController::new(&sp(), 2, 0.0).is_err());
        assert!(PredictiveController::new(&sp(), 2, 1.5).is_err());
    }
}
