//! Property-based tests pinning the sparse Kronecker tools to the dense
//! reference, and the implicit [`KroneckerOp`] to its materialization.
//!
//! The operator tests draw integer-valued factors so every product and
//! partial sum is exactly representable: the shuffle-algorithm matvec and
//! the assembled matvec must then agree at tolerance **zero**, which pins
//! the evaluation order freedoms (per-axis application vs. row-major
//! accumulation) as exactly equivalent, not merely close.

use dpm_linalg::{
    kron, kron_sparse, kron_sum, kron_sum_sparse, CsrMatrix, DMatrix, DVector, KroneckerOp,
};
use proptest::prelude::*;

/// Random dense matrix with float entries.
fn dense(rows: usize, cols: usize) -> impl Strategy<Value = DMatrix> {
    prop::collection::vec(-5.0f64..5.0, rows * cols)
        .prop_map(move |data| DMatrix::from_row_major(rows, cols, data).expect("sized data"))
}

/// Random square matrix with small *integer* entries (as f64), so all
/// downstream arithmetic is exact.
fn int_square(n: usize) -> impl Strategy<Value = CsrMatrix> {
    prop::collection::vec(0usize..9, n * n).prop_map(move |data| {
        let triplets: Vec<(usize, usize, f64)> = data
            .iter()
            .enumerate()
            .map(|(k, &v)| (k / n, k % n, v as f64 - 4.0))
            .collect();
        CsrMatrix::from_triplets(n, n, &triplets).expect("valid triplets")
    })
}

/// Random integer-valued vector.
fn int_vector(n: usize) -> impl Strategy<Value = DVector> {
    prop::collection::vec(0usize..17, n)
        .prop_map(|data| DVector::from_vec(data.into_iter().map(|v| v as f64 - 8.0).collect()))
}

proptest! {
    #[test]
    fn sparse_kron_matches_dense(
        (a, b) in (1usize..5, 1usize..5, 1usize..5, 1usize..5)
            .prop_flat_map(|(ar, ac, br, bc)| (dense(ar, ac), dense(br, bc)))
    ) {
        let sa = CsrMatrix::from_dense(&a);
        let sb = CsrMatrix::from_dense(&b);
        let sparse = kron_sparse(&sa, &sb).expect("sparse kron");
        let reference = kron(&a, &b);
        prop_assert_eq!(sparse.shape(), reference.shape());
        for r in 0..reference.nrows() {
            for c in 0..reference.ncols() {
                // Each entry is one product in both assemblies: exact.
                prop_assert_eq!(sparse.get(r, c), reference[(r, c)]);
            }
        }
    }

    #[test]
    fn sparse_kron_sum_matches_dense(
        (a, b) in (1usize..5, 1usize..5)
            .prop_flat_map(|(na, nb)| (dense(na, na), dense(nb, nb)))
    ) {
        let sa = CsrMatrix::from_dense(&a);
        let sb = CsrMatrix::from_dense(&b);
        let sparse = kron_sum_sparse(&sa, &sb).expect("sparse kron_sum");
        let reference = kron_sum(&a, &b);
        for r in 0..reference.nrows() {
            for c in 0..reference.ncols() {
                // Diagonal collisions are the same two-operand sum in
                // both assemblies: exact.
                prop_assert_eq!(sparse.get(r, c), reference[(r, c)]);
            }
        }
    }

    #[test]
    fn kron_op_two_factor_matvec_is_exact(
        (a, b, x, c0, c1) in (1usize..5, 1usize..5)
            .prop_flat_map(|(na, nb)| (
                int_square(na),
                int_square(nb),
                int_vector(na * nb),
                0usize..7,
                0usize..7,
            ))
    ) {
        let mut op = KroneckerOp::kron_sum_of(&[a.clone(), b.clone()]).expect("kron sum");
        // A coupling-shaped product term rides along with the sum terms.
        op.add_product(c0 as f64 - 3.0, vec![Some(a), Some(b)]).expect("product term");
        op.add_product(c1 as f64 - 3.0, vec![None, None]).expect("identity term");
        let materialized = op.materialize().expect("materialize");
        prop_assert_eq!(
            op.mul_vec(&x).as_slice(),
            materialized.mul_vec(&x).as_slice()
        );
    }

    #[test]
    fn kron_op_three_factor_matvec_is_exact(
        (a, b, c, x) in (1usize..4, 1usize..4, 1usize..4)
            .prop_flat_map(|(na, nb, nc)| (
                int_square(na),
                int_square(nb),
                int_square(nc),
                int_vector(na * nb * nc),
            ))
    ) {
        let mut op = KroneckerOp::kron_sum_of(&[a.clone(), b.clone(), c.clone()])
            .expect("kron sum");
        op.add_product(2.0, vec![Some(a), None, Some(c)]).expect("product term");
        let materialized = op.materialize().expect("materialize");
        prop_assert_eq!(
            op.mul_vec(&x).as_slice(),
            materialized.mul_vec(&x).as_slice()
        );
        // The factored diagonal matches the assembled one exactly too.
        let diag = op.diagonal();
        for i in 0..op.dim() {
            prop_assert_eq!(diag[i], materialized.get(i, i));
        }
    }

    #[test]
    fn kron_op_transpose_matches_materialized_transpose(
        (a, b) in (1usize..5, 1usize..5)
            .prop_flat_map(|(na, nb)| (int_square(na), int_square(nb)))
    ) {
        let op = KroneckerOp::kron_sum_of(&[a, b]).expect("kron sum");
        let lhs = op.transpose().materialize().expect("materialize transpose");
        let rhs = op.materialize().expect("materialize").transpose();
        prop_assert_eq!(lhs.max_abs_diff(&rhs), 0.0);
    }
}
