//! Property-based tests for the linear-algebra substrate.

use dpm_linalg::{gauss_seidel, kron, kron_sum, DMatrix, DVector, IterativeOptions};
use proptest::prelude::*;

/// Strategy for a well-conditioned square matrix: random entries plus a
/// strong diagonal so LU and the iterative methods are all applicable.
fn dominant_matrix(n: usize) -> impl Strategy<Value = DMatrix> {
    prop::collection::vec(-1.0f64..1.0, n * n).prop_map(move |data| {
        let mut m = DMatrix::from_row_major(n, n, data).expect("sized storage");
        for i in 0..n {
            let row_sum: f64 = m.row(i).iter().map(|x| x.abs()).sum();
            m[(i, i)] = row_sum + 1.0;
        }
        m
    })
}

fn vector(n: usize) -> impl Strategy<Value = DVector> {
    prop::collection::vec(-10.0f64..10.0, n).prop_map(DVector::from_vec)
}

fn small_matrix(rows: usize, cols: usize) -> impl Strategy<Value = DMatrix> {
    prop::collection::vec(-5.0f64..5.0, rows * cols)
        .prop_map(move |data| DMatrix::from_row_major(rows, cols, data).expect("sized storage"))
}

proptest! {
    #[test]
    fn lu_solution_satisfies_system(
        (a, b) in (2usize..8).prop_flat_map(|n| (dominant_matrix(n), vector(n)))
    ) {
        let x = a.lu().expect("dominant matrix is nonsingular").solve(&b).expect("solve");
        let residual = &a.mul_vec(&x) - &b;
        prop_assert!(residual.norm_inf() < 1e-8 * (1.0 + b.norm_inf()));
    }

    #[test]
    fn lu_and_gauss_seidel_agree(
        (a, b) in (2usize..7).prop_flat_map(|n| (dominant_matrix(n), vector(n)))
    ) {
        let direct = a.lu().expect("nonsingular").solve(&b).expect("solve");
        let iterative = gauss_seidel(&a, &b, IterativeOptions::default()).expect("converges");
        let diff = &direct - &iterative.solution;
        prop_assert!(diff.norm_inf() < 1e-7);
    }

    #[test]
    fn inverse_times_matrix_is_identity(a in (2usize..6).prop_flat_map(dominant_matrix)) {
        let inv = a.lu().expect("nonsingular").inverse().expect("invertible");
        let prod = a.matmul(&inv).expect("shapes match");
        let diff = &prod - &DMatrix::identity(a.nrows());
        prop_assert!(diff.max_abs() < 1e-8);
    }

    #[test]
    fn determinant_is_multiplicative(
        (a, b) in (2usize..5).prop_flat_map(|n| (dominant_matrix(n), dominant_matrix(n)))
    ) {
        let det_a = a.lu().expect("nonsingular").det();
        let det_b = b.lu().expect("nonsingular").det();
        let det_ab = a.matmul(&b).expect("shapes").lu().expect("nonsingular").det();
        let scale = det_a.abs().max(det_b.abs()).max(1.0);
        prop_assert!((det_ab - det_a * det_b).abs() < 1e-6 * scale * scale);
    }

    #[test]
    fn transpose_is_involution(m in small_matrix(3, 5)) {
        prop_assert_eq!(m.transpose().transpose(), m);
    }

    #[test]
    fn transpose_reverses_products(
        (a, b) in (small_matrix(3, 4), small_matrix(4, 2))
    ) {
        let lhs = a.matmul(&b).expect("shapes").transpose();
        let rhs = b.transpose().matmul(&a.transpose()).expect("shapes");
        let diff = &lhs - &rhs;
        prop_assert!(diff.max_abs() < 1e-10);
    }

    #[test]
    fn kron_dimensions_multiply((a, b) in (small_matrix(2, 3), small_matrix(3, 2))) {
        let c = kron(&a, &b);
        prop_assert_eq!(c.shape(), (6, 6));
    }

    #[test]
    fn kron_mixed_product(
        (a, b, c, d) in (
            small_matrix(2, 2),
            small_matrix(2, 2),
            small_matrix(2, 2),
            small_matrix(2, 2),
        )
    ) {
        let lhs = kron(&a, &b).matmul(&kron(&c, &d)).expect("shapes");
        let rhs = kron(&a.matmul(&c).expect("shapes"), &b.matmul(&d).expect("shapes"));
        let diff = &lhs - &rhs;
        prop_assert!(diff.max_abs() < 1e-8);
    }

    #[test]
    fn kron_sum_preserves_zero_row_sums(
        (a, b) in (small_matrix(2, 2), small_matrix(3, 3))
    ) {
        // Turn both operands into generator-like matrices (rows sum to 0).
        let as_generator = |m: &DMatrix| {
            let mut g = m.map(f64::abs);
            for i in 0..g.nrows() {
                let off: f64 = g.row(i).iter().enumerate()
                    .filter(|(j, _)| *j != i)
                    .map(|(_, x)| x)
                    .sum();
                g[(i, i)] = -off;
            }
            g
        };
        let ga = as_generator(&a);
        let gb = as_generator(&b);
        let s = kron_sum(&ga, &gb);
        for r in 0..s.nrows() {
            let sum: f64 = s.row(r).iter().sum();
            prop_assert!(sum.abs() < 1e-10);
        }
    }

    #[test]
    fn vec_mul_matches_transpose_mul_vec((m, v) in (small_matrix(3, 4), vector(3))) {
        let lhs = m.vec_mul(&v);
        let rhs = m.transpose().mul_vec(&v);
        let diff = &lhs - &rhs;
        prop_assert!(diff.norm_inf() < 1e-10);
    }

    #[test]
    fn dot_is_symmetric((u, v) in (vector(5), vector(5))) {
        prop_assert!((u.dot(&v) - v.dot(&u)).abs() < 1e-10);
    }

    #[test]
    fn normalized_vector_sums_to_one(
        v in prop::collection::vec(0.01f64..10.0, 1..10).prop_map(DVector::from_vec)
    ) {
        let mut w = v;
        w.normalize_l1().expect("positive sum");
        prop_assert!((w.sum() - 1.0).abs() < 1e-10);
    }
}
