//! Property-based tests pinning the CSR backend to the dense reference.

use dpm_linalg::{CsrMatrix, DMatrix, DVector};
use proptest::prelude::*;

/// Strategy for random triplet lists over an `rows x cols` matrix, with
/// duplicate coordinates allowed so accumulation is exercised.
fn triplets(rows: usize, cols: usize) -> impl Strategy<Value = Vec<(usize, usize, f64)>> {
    prop::collection::vec((0..rows, 0..cols, -5.0f64..5.0), 0..3 * rows * cols / 2)
}

/// Dense reference assembly of the same triplets.
fn dense_of(rows: usize, cols: usize, triplets: &[(usize, usize, f64)]) -> DMatrix {
    let mut m = DMatrix::zeros(rows, cols);
    for &(r, c, v) in triplets {
        m[(r, c)] += v;
    }
    m
}

fn vector(n: usize) -> impl Strategy<Value = DVector> {
    prop::collection::vec(-10.0f64..10.0, n).prop_map(DVector::from_vec)
}

proptest! {
    #[test]
    fn csr_entries_match_dense(
        (rows, cols, ts) in (1usize..8, 1usize..8)
            .prop_flat_map(|(r, c)| (Just(r), Just(c), triplets(r, c)))
    ) {
        let sparse = CsrMatrix::from_triplets(rows, cols, &ts).expect("valid triplets");
        let dense = dense_of(rows, cols, &ts);
        for r in 0..rows {
            for c in 0..cols {
                prop_assert!((sparse.get(r, c) - dense[(r, c)]).abs() < 1e-12);
            }
        }
    }

    #[test]
    fn csr_mul_vec_matches_dense(
        (rows, cols, ts, v) in (1usize..8, 1usize..8)
            .prop_flat_map(|(r, c)| (Just(r), Just(c), triplets(r, c), vector(c)))
    ) {
        let sparse = CsrMatrix::from_triplets(rows, cols, &ts).expect("valid triplets");
        let dense = dense_of(rows, cols, &ts);
        let ys = sparse.mul_vec(&v);
        let yd = dense.mul_vec(&v);
        let diff = &ys - &yd;
        prop_assert!(diff.norm_inf() < 1e-9);
    }

    #[test]
    fn csr_vec_mul_matches_dense(
        (rows, cols, ts, v) in (1usize..8, 1usize..8)
            .prop_flat_map(|(r, c)| (Just(r), Just(c), triplets(r, c), vector(r)))
    ) {
        let sparse = CsrMatrix::from_triplets(rows, cols, &ts).expect("valid triplets");
        let dense = dense_of(rows, cols, &ts);
        let ys = sparse.vec_mul(&v);
        let yd = dense.vec_mul(&v);
        let diff = &ys - &yd;
        prop_assert!(diff.norm_inf() < 1e-9);
    }

    #[test]
    fn csr_transpose_matches_dense_transpose(
        (rows, cols, ts) in (1usize..8, 1usize..8)
            .prop_flat_map(|(r, c)| (Just(r), Just(c), triplets(r, c)))
    ) {
        let sparse = CsrMatrix::from_triplets(rows, cols, &ts).expect("valid triplets");
        let dense_t = dense_of(rows, cols, &ts).transpose();
        let sparse_t = sparse.transpose();
        prop_assert_eq!(sparse_t.shape(), (cols, rows));
        for r in 0..cols {
            for c in 0..rows {
                prop_assert!((sparse_t.get(r, c) - dense_t[(r, c)]).abs() < 1e-12);
            }
        }
        // Round trip recovers the original exactly (same pattern, same values).
        prop_assert_eq!(sparse_t.transpose(), sparse);
    }

    #[test]
    fn csr_dense_round_trip_preserves_pattern(
        (rows, cols, ts) in (1usize..8, 1usize..8)
            .prop_flat_map(|(r, c)| (Just(r), Just(c), triplets(r, c)))
    ) {
        let sparse = CsrMatrix::from_triplets(rows, cols, &ts).expect("valid triplets");
        let back = CsrMatrix::from_dense(&sparse.to_dense());
        // from_dense drops entries that accumulated to exactly zero, so
        // compare entry-wise rather than structurally.
        prop_assert!(sparse.max_abs_diff(&back) < 1e-15);
    }
}
