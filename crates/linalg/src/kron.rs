//! Kronecker (tensor) product and sum.
//!
//! The paper composes the power-managed system's generator matrix from the
//! service-provider and service-queue generators using the tensor product
//! `⊗` and tensor sum `⊕` (Definition 4.4). These are the standard tools of
//! stochastic automata networks: if two Markov processes evolve
//! independently, the generator of their joint process is the tensor sum of
//! their generators.

use crate::error::LinalgError;
use crate::sparse::CsrMatrix;
use crate::DMatrix;

/// Kronecker (tensor) product `A ⊗ B`.
///
/// The result has shape `(a.nrows() * b.nrows(), a.ncols() * b.ncols())` and
/// entries `(A ⊗ B)[(i1*m + i2, j1*n + j2)] = A[(i1, j1)] * B[(i2, j2)]`
/// where `B` is `m x n`.
///
/// # Examples
///
/// ```
/// use dpm_linalg::{kron, DMatrix};
///
/// # fn main() -> Result<(), dpm_linalg::LinalgError> {
/// let a = DMatrix::from_rows(&[&[1.0, 2.0]])?;
/// let b = DMatrix::from_rows(&[&[0.0, 3.0]])?;
/// let c = kron(&a, &b);
/// assert_eq!(c.as_slice(), &[0.0, 3.0, 0.0, 6.0]);
/// # Ok(())
/// # }
/// ```
#[must_use]
pub fn kron(a: &DMatrix, b: &DMatrix) -> DMatrix {
    let (ar, ac) = a.shape();
    let (br, bc) = b.shape();
    let mut out = DMatrix::zeros(ar * br, ac * bc);
    for i1 in 0..ar {
        for j1 in 0..ac {
            let aij = a[(i1, j1)];
            // dpm-lint: allow(float_eq, reason = "exact structural-zero skip: dropping true zeros preserves the product exactly")
            if aij == 0.0 {
                continue;
            }
            for i2 in 0..br {
                for j2 in 0..bc {
                    out[(i1 * br + i2, j1 * bc + j2)] = aij * b[(i2, j2)];
                }
            }
        }
    }
    out
}

/// Kronecker (tensor) sum `A ⊕ B = A ⊗ I + I ⊗ B` for square `A` and `B`.
///
/// For independent Markov processes with generators `A` and `B`, `A ⊕ B` is
/// the generator of the joint process on the product state space, with the
/// `A`-component index varying slowest.
///
/// # Panics
///
/// Panics if either matrix is not square.
///
/// # Examples
///
/// ```
/// use dpm_linalg::{kron_sum, DMatrix};
///
/// # fn main() -> Result<(), dpm_linalg::LinalgError> {
/// let a = DMatrix::from_rows(&[&[-1.0, 1.0], &[0.0, 0.0]])?;
/// let b = DMatrix::from_rows(&[&[-2.0, 2.0], &[0.0, 0.0]])?;
/// let s = kron_sum(&a, &b);
/// // Row sums of a generator tensor sum are still zero.
/// for r in 0..4 {
///     let sum: f64 = s.row(r).iter().sum();
///     assert!(sum.abs() < 1e-12);
/// }
/// # Ok(())
/// # }
/// ```
#[must_use]
pub fn kron_sum(a: &DMatrix, b: &DMatrix) -> DMatrix {
    assert!(a.is_square(), "kron_sum requires square left operand");
    assert!(b.is_square(), "kron_sum requires square right operand");
    let left = kron(a, &DMatrix::identity(b.nrows()));
    let right = kron(&DMatrix::identity(a.nrows()), b);
    &left + &right
}

/// Sparse Kronecker (tensor) product `A ⊗ B` over CSR operands.
///
/// Entry-for-entry the same product as [`kron`] — `(A ⊗ B)[(i1*m + i2,
/// j1*n + j2)] = A[(i1, j1)] * B[(i2, j2)]` — but assembled directly from
/// the operands' stored entries in `O(nnz(A) · nnz(B))`, never touching
/// the `(na·nb)²` dense space. Products that cancel to exactly zero are
/// dropped, matching [`CsrMatrix::from_triplets`] semantics.
///
/// # Errors
///
/// Propagates [`CsrMatrix::from_triplets`] validation failures (only
/// possible for non-finite products of extreme operand entries).
pub fn kron_sparse(a: &CsrMatrix, b: &CsrMatrix) -> Result<CsrMatrix, LinalgError> {
    let (ar, ac) = a.shape();
    let (br, bc) = b.shape();
    let mut triplets = Vec::with_capacity(a.nnz() * b.nnz());
    for (i1, j1, va) in a.iter() {
        for (i2, j2, vb) in b.iter() {
            triplets.push((i1 * br + i2, j1 * bc + j2, va * vb));
        }
    }
    CsrMatrix::from_triplets(ar * br, ac * bc, &triplets)
}

/// Sparse Kronecker (tensor) sum `A ⊕ B = A ⊗ I + I ⊗ B` over square CSR
/// operands, with the `A`-component index varying slowest (same layout as
/// [`kron_sum`]).
///
/// The two lifted terms are assembled as one triplet list, so diagonal
/// collisions `A[(i,i)] + B[(j,j)]` accumulate exactly once inside
/// [`CsrMatrix::from_triplets`].
///
/// # Errors
///
/// [`LinalgError::NotSquare`] if either operand is rectangular, plus
/// propagated triplet validation failures.
pub fn kron_sum_sparse(a: &CsrMatrix, b: &CsrMatrix) -> Result<CsrMatrix, LinalgError> {
    if !a.is_square() {
        return Err(LinalgError::NotSquare { shape: a.shape() });
    }
    if !b.is_square() {
        return Err(LinalgError::NotSquare { shape: b.shape() });
    }
    let na = a.nrows();
    let nb = b.nrows();
    let mut triplets = Vec::with_capacity(a.nnz() * nb + b.nnz() * na);
    for (i, j, v) in a.iter() {
        for k in 0..nb {
            triplets.push((i * nb + k, j * nb + k, v));
        }
    }
    for k in 0..na {
        for (i, j, v) in b.iter() {
            triplets.push((k * nb + i, k * nb + j, v));
        }
    }
    CsrMatrix::from_triplets(na * nb, na * nb, &triplets)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn kron_known_product() {
        let a = DMatrix::from_rows(&[&[1.0, 2.0], &[3.0, 4.0]]).unwrap();
        let b = DMatrix::from_rows(&[&[0.0, 5.0], &[6.0, 7.0]]).unwrap();
        let c = kron(&a, &b);
        assert_eq!(c.shape(), (4, 4));
        // Top-left block is 1*B.
        assert_eq!(c.block(0, 0, 2, 2), b);
        // Top-right block is 2*B.
        assert_eq!(c.block(0, 2, 2, 2), b.scaled(2.0));
        // Bottom-left block is 3*B.
        assert_eq!(c.block(2, 0, 2, 2), b.scaled(3.0));
    }

    #[test]
    fn kron_with_identity_left() {
        let b = DMatrix::from_rows(&[&[1.0, 2.0], &[3.0, 4.0]]).unwrap();
        let c = kron(&DMatrix::identity(2), &b);
        assert_eq!(c.block(0, 0, 2, 2), b);
        assert_eq!(c.block(2, 2, 2, 2), b);
        assert_eq!(c.block(0, 2, 2, 2), DMatrix::zeros(2, 2));
    }

    #[test]
    fn kron_mixed_product_property() {
        // (A ⊗ B)(C ⊗ D) = (AC) ⊗ (BD)
        let a = DMatrix::from_rows(&[&[1.0, 2.0], &[0.0, 1.0]]).unwrap();
        let b = DMatrix::from_rows(&[&[2.0, 0.0], &[1.0, 1.0]]).unwrap();
        let c = DMatrix::from_rows(&[&[1.0, 1.0], &[1.0, 0.0]]).unwrap();
        let d = DMatrix::from_rows(&[&[0.0, 1.0], &[2.0, 3.0]]).unwrap();
        let lhs = kron(&a, &b).matmul(&kron(&c, &d)).unwrap();
        let rhs = kron(&a.matmul(&c).unwrap(), &b.matmul(&d).unwrap());
        let diff = &lhs - &rhs;
        assert!(diff.max_abs() < 1e-12);
    }

    #[test]
    fn kron_sum_of_generators_is_generator() {
        let a = DMatrix::from_rows(&[&[-1.0, 1.0], &[2.0, -2.0]]).unwrap();
        let b = DMatrix::from_rows(&[&[-3.0, 3.0], &[4.0, -4.0]]).unwrap();
        let s = kron_sum(&a, &b);
        for r in 0..4 {
            let sum: f64 = s.row(r).iter().sum();
            assert!(sum.abs() < 1e-12, "row {r} sums to {sum}");
        }
        // Off-diagonal entries stay non-negative.
        for r in 0..4 {
            for c in 0..4 {
                if r != c {
                    assert!(s[(r, c)] >= 0.0);
                }
            }
        }
    }

    #[test]
    fn kron_sum_ordering_matches_definition() {
        // A ⊕ B with A 2x2 and B 2x2: entry for joint state (a=0, b=1) is
        // row index 0*2 + 1 = 1.
        let a = DMatrix::from_rows(&[&[-5.0, 5.0], &[0.0, 0.0]]).unwrap();
        let b = DMatrix::from_rows(&[&[-7.0, 7.0], &[0.0, 0.0]]).unwrap();
        let s = kron_sum(&a, &b);
        // Joint (0,0): leaves at rate 5 (A moves) + 7 (B moves).
        assert_eq!(s[(0, 0)], -12.0);
        // (0,0) -> (1,0) via A at rate 5: row 0 col 2.
        assert_eq!(s[(0, 2)], 5.0);
        // (0,0) -> (0,1) via B at rate 7: row 0 col 1.
        assert_eq!(s[(0, 1)], 7.0);
    }

    #[test]
    #[should_panic(expected = "square")]
    fn kron_sum_rejects_non_square() {
        let a = DMatrix::zeros(2, 3);
        let b = DMatrix::identity(2);
        let _ = kron_sum(&a, &b);
    }

    #[test]
    fn kron_with_empty_is_empty() {
        let a = DMatrix::zeros(0, 0);
        let b = DMatrix::identity(3);
        assert_eq!(kron(&a, &b).shape(), (0, 0));
    }
}
