//! Iterative linear solvers for diagonally dominant systems.
//!
//! Generator-matrix systems arising from uniformized Markov chains are
//! (weakly) diagonally dominant, where Jacobi and Gauss–Seidel iterations
//! converge. They are exposed both as alternatives to the direct [`crate::Lu`]
//! solver for large state spaces and as cross-checks in tests and benches.

use crate::{CsrMatrix, DMatrix, DVector, LinalgError};

/// Options controlling an iterative solve.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct IterativeOptions {
    /// Maximum number of sweeps before giving up.
    pub max_iterations: usize,
    /// Convergence threshold on the infinity norm of the update.
    pub tolerance: f64,
}

impl Default for IterativeOptions {
    fn default() -> Self {
        IterativeOptions {
            max_iterations: 10_000,
            tolerance: 1e-12,
        }
    }
}

/// Outcome of a converged iterative solve.
#[derive(Debug, Clone, PartialEq)]
pub struct IterativeResult {
    /// The computed solution.
    pub solution: DVector,
    /// Number of sweeps performed.
    pub iterations: usize,
    /// Infinity norm of the final update step.
    pub final_update: f64,
}

/// True residual `‖A·x − b‖∞` of an iterate.
///
/// Reported by `NotConverged` errors so callers can tell an almost-converged
/// run (small residual) from a divergent one (huge residual) — the update
/// norm alone cannot make that distinction.
fn residual_inf(a: &DMatrix, x: &DVector, b: &DVector) -> f64 {
    let ax = a.mul_vec(x);
    (&ax - b).norm_inf()
}

fn residual_inf_csr(a: &CsrMatrix, x: &DVector, b: &DVector) -> f64 {
    let ax = a.mul_vec(x);
    (&ax - b).norm_inf()
}

fn check_system(a: &DMatrix, b: &DVector) -> Result<(), LinalgError> {
    if !a.is_square() {
        return Err(LinalgError::NotSquare { shape: a.shape() });
    }
    if a.nrows() != b.len() {
        return Err(LinalgError::DimensionMismatch {
            operation: "iterative solve",
            left: a.shape(),
            right: (b.len(), 1),
        });
    }
    for i in 0..a.nrows() {
        // dpm-lint: allow(float_eq, reason = "exact singularity guard: a 0.0 diagonal cannot be divided by at any tolerance")
        if a[(i, i)] == 0.0 {
            return Err(LinalgError::InvalidInput {
                reason: format!("zero diagonal entry at row {i}"),
            });
        }
    }
    Ok(())
}

/// Solves `A x = b` by Jacobi iteration.
///
/// # Errors
///
/// Returns an error if `A` is not square, shapes mismatch, a diagonal entry
/// is zero, or the iteration fails to converge within the budget.
///
/// # Examples
///
/// ```
/// use dpm_linalg::{jacobi, DMatrix, DVector, IterativeOptions};
///
/// # fn main() -> Result<(), dpm_linalg::LinalgError> {
/// let a = DMatrix::from_rows(&[&[4.0, 1.0], &[2.0, 5.0]])?;
/// let b = DVector::from_vec(vec![6.0, 9.0]);
/// let result = jacobi(&a, &b, IterativeOptions::default())?;
/// let residual = &a.mul_vec(&result.solution) - &b;
/// assert!(residual.norm_inf() < 1e-9);
/// # Ok(())
/// # }
/// ```
pub fn jacobi(
    a: &DMatrix,
    b: &DVector,
    options: IterativeOptions,
) -> Result<IterativeResult, LinalgError> {
    check_system(a, b)?;
    let n = a.nrows();
    let mut x = DVector::zeros(n);
    let mut next = DVector::zeros(n);
    for iteration in 1..=options.max_iterations {
        let mut update = 0.0f64;
        for i in 0..n {
            let row = a.row(i);
            let mut sum = b[i];
            for (j, &aij) in row.iter().enumerate() {
                if j != i {
                    sum -= aij * x[j];
                }
            }
            let xi = sum / row[i];
            update = update.max((xi - x[i]).abs());
            next[i] = xi;
        }
        std::mem::swap(&mut x, &mut next);
        if update <= options.tolerance {
            return Ok(IterativeResult {
                solution: x,
                iterations: iteration,
                final_update: update,
            });
        }
    }
    Err(LinalgError::NotConverged {
        iterations: options.max_iterations,
        residual: residual_inf(a, &x, b),
    })
}

/// Solves `A x = b` by Gauss–Seidel iteration.
///
/// Typically converges roughly twice as fast as [`jacobi`] on diagonally
/// dominant systems because each sweep uses the freshest values.
///
/// # Errors
///
/// Same conditions as [`jacobi`].
pub fn gauss_seidel(
    a: &DMatrix,
    b: &DVector,
    options: IterativeOptions,
) -> Result<IterativeResult, LinalgError> {
    check_system(a, b)?;
    let n = a.nrows();
    let mut x = DVector::zeros(n);
    for iteration in 1..=options.max_iterations {
        let mut update = 0.0f64;
        for i in 0..n {
            let row = a.row(i);
            let mut sum = b[i];
            for (j, &aij) in row.iter().enumerate() {
                if j != i {
                    sum -= aij * x[j];
                }
            }
            let xi = sum / row[i];
            update = update.max((xi - x[i]).abs());
            x[i] = xi;
        }
        if update <= options.tolerance {
            return Ok(IterativeResult {
                solution: x,
                iterations: iteration,
                final_update: update,
            });
        }
    }
    Err(LinalgError::NotConverged {
        iterations: options.max_iterations,
        residual: residual_inf(a, &x, b),
    })
}

fn check_sparse_system(a: &CsrMatrix, b: &DVector) -> Result<DVector, LinalgError> {
    if !a.is_square() {
        return Err(LinalgError::NotSquare { shape: a.shape() });
    }
    if a.nrows() != b.len() {
        return Err(LinalgError::DimensionMismatch {
            operation: "sparse iterative solve",
            left: a.shape(),
            right: (b.len(), 1),
        });
    }
    let diag = a.diagonal();
    for i in 0..a.nrows() {
        // dpm-lint: allow(float_eq, reason = "exact singularity guard: a 0.0 diagonal cannot be divided by at any tolerance")
        if diag[i] == 0.0 {
            return Err(LinalgError::InvalidInput {
                reason: format!("zero diagonal entry at row {i}"),
            });
        }
    }
    Ok(diag)
}

/// Solves `A x = b` by Jacobi iteration on a CSR matrix.
///
/// Each sweep costs `O(nnz)` instead of the dense `O(n²)`, which is what
/// makes iterative solves viable on sparse-assembled SYS generators.
///
/// # Errors
///
/// Same conditions as [`jacobi`].
pub fn jacobi_csr(
    a: &CsrMatrix,
    b: &DVector,
    options: IterativeOptions,
) -> Result<IterativeResult, LinalgError> {
    let diag = check_sparse_system(a, b)?;
    let n = a.nrows();
    let mut x = DVector::zeros(n);
    let mut next = DVector::zeros(n);
    for iteration in 1..=options.max_iterations {
        let mut update = 0.0f64;
        for i in 0..n {
            let mut sum = b[i];
            for (j, aij) in a.row(i) {
                if j != i {
                    sum -= aij * x[j];
                }
            }
            let xi = sum / diag[i];
            update = update.max((xi - x[i]).abs());
            next[i] = xi;
        }
        std::mem::swap(&mut x, &mut next);
        if update <= options.tolerance {
            return Ok(IterativeResult {
                solution: x,
                iterations: iteration,
                final_update: update,
            });
        }
    }
    Err(LinalgError::NotConverged {
        iterations: options.max_iterations,
        residual: residual_inf_csr(a, &x, b),
    })
}

/// Solves `A x = b` by Gauss–Seidel iteration on a CSR matrix.
///
/// # Errors
///
/// Same conditions as [`jacobi`].
pub fn gauss_seidel_csr(
    a: &CsrMatrix,
    b: &DVector,
    options: IterativeOptions,
) -> Result<IterativeResult, LinalgError> {
    let diag = check_sparse_system(a, b)?;
    let n = a.nrows();
    let mut x = DVector::zeros(n);
    for iteration in 1..=options.max_iterations {
        let mut update = 0.0f64;
        for i in 0..n {
            let mut sum = b[i];
            for (j, aij) in a.row(i) {
                if j != i {
                    sum -= aij * x[j];
                }
            }
            let xi = sum / diag[i];
            update = update.max((xi - x[i]).abs());
            x[i] = xi;
        }
        if update <= options.tolerance {
            return Ok(IterativeResult {
                solution: x,
                iterations: iteration,
                final_update: update,
            });
        }
    }
    Err(LinalgError::NotConverged {
        iterations: options.max_iterations,
        residual: residual_inf_csr(a, &x, b),
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn dominant_system() -> (DMatrix, DVector) {
        let a = DMatrix::from_rows(&[&[10.0, -1.0, 2.0], &[-1.0, 11.0, -1.0], &[2.0, -1.0, 10.0]])
            .unwrap();
        let b = DVector::from_vec(vec![6.0, 25.0, -11.0]);
        (a, b)
    }

    #[test]
    fn jacobi_matches_direct_solve() {
        let (a, b) = dominant_system();
        let direct = a.lu().unwrap().solve(&b).unwrap();
        let iterative = jacobi(&a, &b, IterativeOptions::default()).unwrap();
        let diff = &direct - &iterative.solution;
        assert!(diff.norm_inf() < 1e-9);
    }

    #[test]
    fn gauss_seidel_matches_direct_solve() {
        let (a, b) = dominant_system();
        let direct = a.lu().unwrap().solve(&b).unwrap();
        let iterative = gauss_seidel(&a, &b, IterativeOptions::default()).unwrap();
        let diff = &direct - &iterative.solution;
        assert!(diff.norm_inf() < 1e-9);
    }

    #[test]
    fn gauss_seidel_converges_faster_than_jacobi() {
        let (a, b) = dominant_system();
        let j = jacobi(&a, &b, IterativeOptions::default()).unwrap();
        let gs = gauss_seidel(&a, &b, IterativeOptions::default()).unwrap();
        assert!(gs.iterations <= j.iterations);
    }

    #[test]
    fn reports_non_convergence() {
        // Not diagonally dominant; Jacobi diverges.
        let a = DMatrix::from_rows(&[&[1.0, 5.0], &[7.0, 1.0]]).unwrap();
        let b = DVector::from_vec(vec![1.0, 1.0]);
        let options = IterativeOptions {
            max_iterations: 50,
            ..IterativeOptions::default()
        };
        assert!(matches!(
            jacobi(&a, &b, options),
            Err(LinalgError::NotConverged { .. })
        ));
    }

    #[test]
    fn not_converged_residual_distinguishes_divergence_from_near_convergence() {
        // Divergent iteration: the reported residual is the true ‖Ax−b‖∞,
        // which grows without bound.
        let a = DMatrix::from_rows(&[&[1.0, 5.0], &[7.0, 1.0]]).unwrap();
        let b = DVector::from_vec(vec![1.0, 1.0]);
        let options = IterativeOptions {
            max_iterations: 50,
            ..IterativeOptions::default()
        };
        let Err(LinalgError::NotConverged {
            residual: diverged, ..
        }) = jacobi(&a, &b, options)
        else {
            panic!("expected NotConverged");
        };
        assert!(
            diverged > 1e6,
            "divergent residual should be huge: {diverged}"
        );

        // Almost-converged iteration: a dominant system starved of budget
        // reports a small but nonzero residual.
        let (a, b) = dominant_system();
        let starved = IterativeOptions {
            max_iterations: 4,
            ..IterativeOptions::default()
        };
        let Err(LinalgError::NotConverged { residual: near, .. }) = jacobi(&a, &b, starved) else {
            panic!("expected NotConverged");
        };
        assert!(
            near < 1.0,
            "near-converged residual should be small: {near}"
        );
        assert!(near > 0.0);
    }

    #[test]
    fn sparse_not_converged_reports_true_residual() {
        let (a, b) = dominant_system();
        let sparse = CsrMatrix::from_dense(&a);
        let starved = IterativeOptions {
            max_iterations: 3,
            ..IterativeOptions::default()
        };
        let dense_err = jacobi(&a, &b, starved).unwrap_err();
        let sparse_err = jacobi_csr(&sparse, &b, starved).unwrap_err();
        let (
            LinalgError::NotConverged { residual: rd, .. },
            LinalgError::NotConverged { residual: rs, .. },
        ) = (dense_err, sparse_err)
        else {
            panic!("expected NotConverged");
        };
        assert!((rd - rs).abs() < 1e-12);
        assert!(rd.is_finite() && rd > 0.0);
    }

    #[test]
    fn rejects_zero_diagonal() {
        let a = DMatrix::from_rows(&[&[0.0, 1.0], &[1.0, 1.0]]).unwrap();
        let b = DVector::zeros(2);
        assert!(matches!(
            gauss_seidel(&a, &b, IterativeOptions::default()),
            Err(LinalgError::InvalidInput { .. })
        ));
    }

    #[test]
    fn rejects_shape_mismatch() {
        let a = DMatrix::identity(3);
        let b = DVector::zeros(2);
        assert!(jacobi(&a, &b, IterativeOptions::default()).is_err());
    }

    #[test]
    fn sparse_jacobi_matches_dense_jacobi() {
        let (a, b) = dominant_system();
        let sparse = CsrMatrix::from_dense(&a);
        let dense = jacobi(&a, &b, IterativeOptions::default()).unwrap();
        let csr = jacobi_csr(&sparse, &b, IterativeOptions::default()).unwrap();
        let diff = &dense.solution - &csr.solution;
        assert!(diff.norm_inf() < 1e-12);
        assert_eq!(dense.iterations, csr.iterations);
    }

    #[test]
    fn sparse_gauss_seidel_matches_direct_solve() {
        let (a, b) = dominant_system();
        let sparse = CsrMatrix::from_dense(&a);
        let direct = a.lu().unwrap().solve(&b).unwrap();
        let csr = gauss_seidel_csr(&sparse, &b, IterativeOptions::default()).unwrap();
        let diff = &direct - &csr.solution;
        assert!(diff.norm_inf() < 1e-9);
    }

    #[test]
    fn sparse_solvers_reject_missing_diagonal() {
        // Structurally missing diagonal entry at row 1.
        let a = CsrMatrix::from_triplets(2, 2, &[(0, 0, 1.0), (1, 0, 1.0)]).unwrap();
        let b = DVector::zeros(2);
        assert!(matches!(
            gauss_seidel_csr(&a, &b, IterativeOptions::default()),
            Err(LinalgError::InvalidInput { .. })
        ));
        assert!(matches!(
            jacobi_csr(&a, &b, IterativeOptions::default()),
            Err(LinalgError::InvalidInput { .. })
        ));
    }

    #[test]
    fn default_options_are_sane() {
        let options = IterativeOptions::default();
        assert!(options.max_iterations >= 1000);
        assert!(options.tolerance > 0.0);
    }
}
