use std::fmt;
use std::iter::FromIterator;
use std::ops::{Add, AddAssign, Index, IndexMut, Mul, Neg, Sub, SubAssign};

use crate::LinalgError;

/// A dense, heap-allocated vector of `f64` values.
///
/// `DVector` is the common currency between the Markov-chain layers: state
/// probability distributions, cost-rate vectors and relative-value vectors
/// are all `DVector`s.
///
/// # Examples
///
/// ```
/// use dpm_linalg::DVector;
///
/// let v = DVector::from_vec(vec![0.25, 0.75]);
/// assert_eq!(v.len(), 2);
/// assert!((v.sum() - 1.0).abs() < 1e-12);
/// ```
#[derive(Debug, Clone, PartialEq, Default)]
pub struct DVector {
    data: Vec<f64>,
}

impl DVector {
    /// Creates a zero vector of length `len`.
    ///
    /// # Examples
    ///
    /// ```
    /// let v = dpm_linalg::DVector::zeros(3);
    /// assert_eq!(v.as_slice(), &[0.0, 0.0, 0.0]);
    /// ```
    #[must_use]
    pub fn zeros(len: usize) -> Self {
        DVector {
            data: vec![0.0; len],
        }
    }

    /// Creates a vector of length `len` with every entry equal to `value`.
    #[must_use]
    pub fn constant(len: usize, value: f64) -> Self {
        DVector {
            data: vec![value; len],
        }
    }

    /// Wraps an existing `Vec<f64>` without copying.
    #[must_use]
    pub fn from_vec(data: Vec<f64>) -> Self {
        DVector { data }
    }

    /// Creates a vector by evaluating `f` at each index `0..len`.
    ///
    /// # Examples
    ///
    /// ```
    /// let v = dpm_linalg::DVector::from_fn(3, |i| i as f64);
    /// assert_eq!(v.as_slice(), &[0.0, 1.0, 2.0]);
    /// ```
    #[must_use]
    pub fn from_fn(len: usize, f: impl FnMut(usize) -> f64) -> Self {
        DVector {
            data: (0..len).map(f).collect(),
        }
    }

    /// Number of entries.
    #[must_use]
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// Returns `true` if the vector has no entries.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// Borrows the entries as a slice.
    #[must_use]
    pub fn as_slice(&self) -> &[f64] {
        &self.data
    }

    /// Borrows the entries as a mutable slice.
    pub fn as_mut_slice(&mut self) -> &mut [f64] {
        &mut self.data
    }

    /// Consumes the vector, returning the underlying storage.
    #[must_use]
    pub fn into_vec(self) -> Vec<f64> {
        self.data
    }

    /// Returns the entry at `i`, or `None` if out of bounds.
    #[must_use]
    pub fn get(&self, i: usize) -> Option<f64> {
        self.data.get(i).copied()
    }

    /// Iterates over the entries by value.
    pub fn iter(&self) -> impl Iterator<Item = f64> + '_ {
        self.data.iter().copied()
    }

    /// Dot product with another vector.
    ///
    /// # Panics
    ///
    /// Panics if the lengths differ.
    #[must_use]
    pub fn dot(&self, other: &DVector) -> f64 {
        assert_eq!(
            self.len(),
            other.len(),
            "dot product requires equal lengths"
        );
        self.data.iter().zip(&other.data).map(|(a, b)| a * b).sum()
    }

    /// Sum of all entries.
    #[must_use]
    pub fn sum(&self) -> f64 {
        self.data.iter().sum()
    }

    /// Euclidean (L2) norm.
    #[must_use]
    pub fn norm(&self) -> f64 {
        self.dot(self).sqrt()
    }

    /// L1 norm (sum of absolute values).
    #[must_use]
    pub fn norm_l1(&self) -> f64 {
        self.data.iter().map(|x| x.abs()).sum()
    }

    /// Infinity norm (maximum absolute value), `0.0` for the empty vector.
    #[must_use]
    pub fn norm_inf(&self) -> f64 {
        self.data.iter().fold(0.0, |m, x| m.max(x.abs()))
    }

    /// Largest entry and its index, or `None` for the empty vector.
    #[must_use]
    pub fn argmax(&self) -> Option<(usize, f64)> {
        self.data
            .iter()
            .copied()
            .enumerate()
            .fold(None, |best, (i, x)| match best {
                Some((_, bx)) if bx >= x => best,
                _ => Some((i, x)),
            })
    }

    /// Smallest entry and its index, or `None` for the empty vector.
    #[must_use]
    pub fn argmin(&self) -> Option<(usize, f64)> {
        self.data
            .iter()
            .copied()
            .enumerate()
            .fold(None, |best, (i, x)| match best {
                Some((_, bx)) if bx <= x => best,
                _ => Some((i, x)),
            })
    }

    /// Multiplies every entry by `factor` in place.
    pub fn scale_mut(&mut self, factor: f64) {
        for x in &mut self.data {
            *x *= factor;
        }
    }

    /// Returns a copy scaled by `factor`.
    #[must_use]
    pub fn scaled(&self, factor: f64) -> DVector {
        let mut out = self.clone();
        out.scale_mut(factor);
        out
    }

    /// `self += alpha * other` (the BLAS `axpy` operation).
    ///
    /// # Panics
    ///
    /// Panics if the lengths differ.
    pub fn axpy(&mut self, alpha: f64, other: &DVector) {
        assert_eq!(self.len(), other.len(), "axpy requires equal lengths");
        for (x, y) in self.data.iter_mut().zip(&other.data) {
            *x += alpha * y;
        }
    }

    /// Normalizes entries so they sum to one, turning a non-negative weight
    /// vector into a probability distribution.
    ///
    /// # Errors
    ///
    /// Returns [`LinalgError::InvalidInput`] if the entry sum is zero,
    /// negative, or not finite.
    pub fn normalize_l1(&mut self) -> Result<(), LinalgError> {
        let total = self.sum();
        if !total.is_finite() || total <= 0.0 {
            return Err(LinalgError::InvalidInput {
                reason: format!("cannot L1-normalize vector with sum {total}"),
            });
        }
        self.scale_mut(1.0 / total);
        Ok(())
    }

    /// Maps every entry through `f`, returning a new vector.
    #[must_use]
    pub fn map(&self, f: impl Fn(f64) -> f64) -> DVector {
        DVector {
            data: self.data.iter().map(|&x| f(x)).collect(),
        }
    }

    /// Returns `true` if every entry is finite.
    #[must_use]
    pub fn is_finite(&self) -> bool {
        self.data.iter().all(|x| x.is_finite())
    }
}

impl Index<usize> for DVector {
    type Output = f64;

    fn index(&self, i: usize) -> &f64 {
        &self.data[i]
    }
}

impl IndexMut<usize> for DVector {
    fn index_mut(&mut self, i: usize) -> &mut f64 {
        &mut self.data[i]
    }
}

impl Add<&DVector> for &DVector {
    type Output = DVector;

    fn add(self, rhs: &DVector) -> DVector {
        assert_eq!(self.len(), rhs.len(), "vector add requires equal lengths");
        DVector {
            data: self
                .data
                .iter()
                .zip(&rhs.data)
                .map(|(a, b)| a + b)
                .collect(),
        }
    }
}

impl Sub<&DVector> for &DVector {
    type Output = DVector;

    fn sub(self, rhs: &DVector) -> DVector {
        assert_eq!(self.len(), rhs.len(), "vector sub requires equal lengths");
        DVector {
            data: self
                .data
                .iter()
                .zip(&rhs.data)
                .map(|(a, b)| a - b)
                .collect(),
        }
    }
}

impl AddAssign<&DVector> for DVector {
    fn add_assign(&mut self, rhs: &DVector) {
        self.axpy(1.0, rhs);
    }
}

impl SubAssign<&DVector> for DVector {
    fn sub_assign(&mut self, rhs: &DVector) {
        self.axpy(-1.0, rhs);
    }
}

impl Neg for &DVector {
    type Output = DVector;

    fn neg(self) -> DVector {
        self.scaled(-1.0)
    }
}

impl Mul<f64> for &DVector {
    type Output = DVector;

    fn mul(self, rhs: f64) -> DVector {
        self.scaled(rhs)
    }
}

impl FromIterator<f64> for DVector {
    fn from_iter<I: IntoIterator<Item = f64>>(iter: I) -> Self {
        DVector {
            data: iter.into_iter().collect(),
        }
    }
}

impl Extend<f64> for DVector {
    fn extend<I: IntoIterator<Item = f64>>(&mut self, iter: I) {
        self.data.extend(iter);
    }
}

impl From<Vec<f64>> for DVector {
    fn from(data: Vec<f64>) -> Self {
        DVector { data }
    }
}

impl fmt::Display for DVector {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "[")?;
        for (i, x) in self.data.iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "{x:.6}")?;
        }
        write!(f, "]")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn constructors() {
        assert_eq!(DVector::zeros(2).as_slice(), &[0.0, 0.0]);
        assert_eq!(DVector::constant(2, 3.0).as_slice(), &[3.0, 3.0]);
        assert_eq!(
            DVector::from_fn(3, |i| 2.0 * i as f64).as_slice(),
            &[0.0, 2.0, 4.0]
        );
        assert!(DVector::zeros(0).is_empty());
    }

    #[test]
    fn dot_and_norms() {
        let v = DVector::from_vec(vec![3.0, -4.0]);
        assert_eq!(v.dot(&v), 25.0);
        assert_eq!(v.norm(), 5.0);
        assert_eq!(v.norm_l1(), 7.0);
        assert_eq!(v.norm_inf(), 4.0);
        assert_eq!(v.sum(), -1.0);
    }

    #[test]
    fn argmax_argmin() {
        let v = DVector::from_vec(vec![1.0, 5.0, -2.0]);
        assert_eq!(v.argmax(), Some((1, 5.0)));
        assert_eq!(v.argmin(), Some((2, -2.0)));
        assert_eq!(DVector::zeros(0).argmax(), None);
    }

    #[test]
    fn argmax_ties_prefer_first() {
        let v = DVector::from_vec(vec![2.0, 2.0]);
        assert_eq!(v.argmax(), Some((0, 2.0)));
        assert_eq!(v.argmin(), Some((0, 2.0)));
    }

    #[test]
    fn axpy_and_ops() {
        let mut a = DVector::from_vec(vec![1.0, 2.0]);
        let b = DVector::from_vec(vec![10.0, 20.0]);
        a.axpy(0.5, &b);
        assert_eq!(a.as_slice(), &[6.0, 12.0]);
        let c = &a + &b;
        assert_eq!(c.as_slice(), &[16.0, 32.0]);
        let d = &c - &b;
        assert_eq!(d.as_slice(), &[6.0, 12.0]);
        assert_eq!((-&d).as_slice(), &[-6.0, -12.0]);
        assert_eq!((&d * 2.0).as_slice(), &[12.0, 24.0]);
    }

    #[test]
    fn normalize_l1_makes_distribution() {
        let mut v = DVector::from_vec(vec![1.0, 3.0]);
        v.normalize_l1().unwrap();
        assert_eq!(v.as_slice(), &[0.25, 0.75]);
    }

    #[test]
    fn normalize_l1_rejects_zero_sum() {
        let mut v = DVector::zeros(3);
        assert!(v.normalize_l1().is_err());
        let mut w = DVector::from_vec(vec![1.0, -1.0]);
        assert!(w.normalize_l1().is_err());
    }

    #[test]
    fn collect_and_extend() {
        let v: DVector = (0..3).map(|i| i as f64).collect();
        assert_eq!(v.as_slice(), &[0.0, 1.0, 2.0]);
        let mut w = v.clone();
        w.extend([5.0]);
        assert_eq!(w.len(), 4);
    }

    #[test]
    fn display_format() {
        let v = DVector::from_vec(vec![1.0, 0.5]);
        assert_eq!(v.to_string(), "[1.000000, 0.500000]");
    }

    #[test]
    fn is_finite_detects_nan() {
        assert!(DVector::from_vec(vec![1.0]).is_finite());
        assert!(!DVector::from_vec(vec![f64::NAN]).is_finite());
        assert!(!DVector::from_vec(vec![f64::INFINITY]).is_finite());
    }
}
