//! Sparse direct LU factorization with partial pivoting.
//!
//! [`SparseLu`] factorizes a square [`CsrMatrix`] by rowwise Gaussian
//! elimination over sorted sparse rows, keeping only the fill-in that
//! actually occurs. For the generator-shaped systems this workspace solves
//! (`O(1)` nonzeros per row plus at most one dense column), elimination cost
//! is near-linear in the state count, which removes the
//! `O(instant_rate / slowest_rate)` sweep-count caveat of the iterative
//! sparse policy-evaluation backend: a direct solve does not care how stiff
//! the rate spectrum is.
//!
//! Callers assembling policy-evaluation systems should order any dense
//! column (the gain column of the bias equations) *last*: fill-in produced
//! by eliminating a column never spreads to columns left of it, so a
//! trailing dense column costs `O(n)` extra entries rather than densifying
//! the whole factor.

use crate::{CsrMatrix, DVector, LinalgError};

/// Relative pivot threshold below which the matrix is treated as singular,
/// matching the dense [`crate::Lu`] criterion.
const PIVOT_EPS: f64 = 1e-13;

/// A sparse LU factorization `P · A = L · U` with partial (row) pivoting.
///
/// # Examples
///
/// ```
/// use dpm_linalg::{CsrMatrix, DVector, SparseLu};
///
/// # fn main() -> Result<(), dpm_linalg::LinalgError> {
/// // [ 2 1 ]        [ 4 ]
/// // [ 1 3 ] x  =   [ 7 ]
/// let a = CsrMatrix::from_triplets(2, 2, &[(0, 0, 2.0), (0, 1, 1.0), (1, 0, 1.0), (1, 1, 3.0)])?;
/// let x = SparseLu::new(&a)?.solve(&DVector::from_vec(vec![4.0, 7.0]))?;
/// assert!((x[0] - 1.0).abs() < 1e-12);
/// assert!((x[1] - 2.0).abs() < 1e-12);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone)]
pub struct SparseLu {
    n: usize,
    /// Row permutation: `perm[pos]` is the original row now at `pos`.
    perm: Vec<usize>,
    /// Elimination multipliers per final row position: `lower[pos]` holds
    /// `(k, f)` pairs, ascending in `k < pos`, meaning
    /// `y[pos] -= f · y[k]` during forward substitution. Keyed by final
    /// position — multipliers travel with their row through pivot swaps.
    lower: Vec<Vec<(usize, f64)>>,
    /// Upper-triangular rows: `upper[k]` holds sorted `(col, value)` pairs
    /// with `col ≥ k`; the first entry is the pivot `(k, u_kk)`.
    upper: Vec<Vec<(usize, f64)>>,
}

impl SparseLu {
    /// Factorizes `a`.
    ///
    /// Pivots are chosen by largest magnitude in the active column, ties
    /// broken by lowest row position, so the factorization — like every
    /// solver in this workspace — is a pure function of its input.
    ///
    /// # Errors
    ///
    /// Returns [`LinalgError::NotSquare`] if `a` is not square, or
    /// [`LinalgError::Singular`] if no acceptable pivot exists in some
    /// column.
    pub fn new(a: &CsrMatrix) -> Result<Self, LinalgError> {
        if !a.is_square() {
            return Err(LinalgError::NotSquare { shape: a.shape() });
        }
        let n = a.nrows();
        let scale = a.iter().map(|(_, _, v)| v.abs()).fold(1.0f64, f64::max);

        // Working rows in position space, each carrying its own multiplier
        // history `(k, factor)` so pivot swaps move the two together;
        // entries sorted by column, with every column `< k` already
        // eliminated once column `k` is active.
        type WorkRow = (Vec<(usize, f64)>, Vec<(usize, f64)>);
        let mut rows: Vec<WorkRow> = (0..n).map(|r| (Vec::new(), a.row(r).collect())).collect();
        let mut perm: Vec<usize> = (0..n).collect();
        let mut lower: Vec<Vec<(usize, f64)>> = Vec::with_capacity(n);
        let mut upper: Vec<Vec<(usize, f64)>> = Vec::with_capacity(n);

        for k in 0..n {
            // A row's leading entry has column ≥ k here; it participates in
            // this elimination step exactly when that column is k.
            let mut pivot_pos = None;
            let mut pivot_val = 0.0f64;
            for (pos, (_, row)) in rows.iter().enumerate().skip(k) {
                if let Some(&(col, val)) = row.first() {
                    if col == k && val.abs() > pivot_val {
                        pivot_val = val.abs();
                        pivot_pos = Some(pos);
                    }
                }
            }
            let Some(pivot_pos) = pivot_pos else {
                return Err(LinalgError::Singular { pivot: k });
            };
            if pivot_val <= PIVOT_EPS * scale {
                return Err(LinalgError::Singular { pivot: k });
            }
            rows.swap(k, pivot_pos);
            perm.swap(k, pivot_pos);

            let (head, below) = rows.split_at_mut(k + 1);
            let pivot_row = &head[k].1;
            let pivot = pivot_row[0].1;
            for (hist, row) in below.iter_mut() {
                let Some(&(col, val)) = row.first() else {
                    continue;
                };
                if col != k {
                    continue;
                }
                let factor = val / pivot;
                hist.push((k, factor));
                *row = subtract_scaled(&row[1..], &pivot_row[1..], factor);
            }
            let (hist, row) = std::mem::take(&mut rows[k]);
            lower.push(hist);
            upper.push(row);
        }

        Ok(SparseLu {
            n,
            perm,
            lower,
            upper,
        })
    }

    /// Dimension of the factorized matrix.
    #[must_use]
    pub fn dim(&self) -> usize {
        self.n
    }

    /// Number of stored factor entries (fill-in diagnostic).
    #[must_use]
    pub fn factor_nnz(&self) -> usize {
        self.lower.iter().map(Vec::len).sum::<usize>()
            + self.upper.iter().map(Vec::len).sum::<usize>()
    }

    /// Solves `A x = b`.
    ///
    /// # Errors
    ///
    /// Returns [`LinalgError::DimensionMismatch`] if `b.len() != self.dim()`.
    pub fn solve(&self, b: &DVector) -> Result<DVector, LinalgError> {
        let n = self.n;
        if b.len() != n {
            return Err(LinalgError::DimensionMismatch {
                operation: "sparse lu solve",
                left: (n, n),
                right: (b.len(), 1),
            });
        }
        // y = P b, then forward substitution: each position's multipliers
        // reference strictly earlier positions, so an ascending pass
        // finalizes y[pos] before anything reads it.
        let mut y = DVector::from_fn(n, |pos| b[self.perm[pos]]);
        for (pos, hist) in self.lower.iter().enumerate() {
            for &(k, factor) in hist {
                let delta = factor * y[k];
                y[pos] -= delta;
            }
        }
        // Back substitution over the sparse upper rows.
        let mut x = DVector::zeros(n);
        for k in (0..n).rev() {
            let row = &self.upper[k];
            let mut sum = y[k];
            for &(col, val) in &row[1..] {
                sum -= val * x[col];
            }
            x[k] = sum / row[0].1;
        }
        Ok(x)
    }
}

/// Computes `target − factor · pivot` over sorted sparse tails, dropping
/// entries that cancel to exactly zero (they can never pivot and contribute
/// nothing downstream).
fn subtract_scaled(
    target: &[(usize, f64)],
    pivot: &[(usize, f64)],
    factor: f64,
) -> Vec<(usize, f64)> {
    let mut out = Vec::with_capacity(target.len() + pivot.len());
    let (mut i, mut j) = (0, 0);
    while i < target.len() && j < pivot.len() {
        let (tc, tv) = target[i];
        let (pc, pv) = pivot[j];
        let entry = if tc == pc {
            i += 1;
            j += 1;
            (tc, tv - factor * pv)
        } else if tc < pc {
            i += 1;
            (tc, tv)
        } else {
            j += 1;
            (pc, -factor * pv)
        };
        // dpm-lint: allow(float_eq, reason = "exact cancellation check: only entries that are literally 0.0 are dropped, which changes the stored pattern but never a solve result")
        if entry.1 != 0.0 {
            out.push(entry);
        }
    }
    out.extend_from_slice(&target[i..]);
    for &(c, v) in &pivot[j..] {
        let v = -factor * v;
        // dpm-lint: allow(float_eq, reason = "exact cancellation check: a scaled entry that underflows to literally 0.0 is structurally absent")
        if v != 0.0 {
            out.push((c, v));
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::DMatrix;

    fn csr_of(dense: &DMatrix) -> CsrMatrix {
        CsrMatrix::from_dense(dense)
    }

    #[test]
    fn matches_dense_lu_on_small_system() {
        let a =
            DMatrix::from_rows(&[&[2.0, 1.0, 1.0], &[4.0, -6.0, 0.0], &[-2.0, 7.0, 2.0]]).unwrap();
        let b = DVector::from_vec(vec![5.0, -2.0, 9.0]);
        let sparse = SparseLu::new(&csr_of(&a)).unwrap().solve(&b).unwrap();
        let dense = a.clone().lu().unwrap().solve(&b).unwrap();
        for i in 0..3 {
            assert!((sparse[i] - dense[i]).abs() < 1e-12, "component {i}");
        }
    }

    #[test]
    fn pivots_past_leading_zero() {
        let a = DMatrix::from_rows(&[&[0.0, 1.0], &[1.0, 0.0]]).unwrap();
        let x = SparseLu::new(&csr_of(&a))
            .unwrap()
            .solve(&DVector::from_vec(vec![3.0, 7.0]))
            .unwrap();
        assert_eq!(x.as_slice(), &[7.0, 3.0]);
    }

    #[test]
    fn pivot_swap_after_recorded_multipliers_is_correct() {
        // Step 0 records multipliers 0.25 and 0.5 for the rows at
        // positions 1 and 2; step 1 then pivots from position 2, swapping
        // the two rows. The multipliers must travel with their rows —
        // a factorization that keys them by position solves this wrong.
        let a =
            DMatrix::from_rows(&[&[1.0, 1.0, 0.0], &[0.25, 0.1, 1.0], &[0.5, 2.0, 3.0]]).unwrap();
        let b = DVector::from_vec(vec![1.0, 2.0, 3.0]);
        let x = SparseLu::new(&csr_of(&a)).unwrap().solve(&b).unwrap();
        let dense = a.clone().lu().unwrap().solve(&b).unwrap();
        for i in 0..3 {
            assert!((x[i] - dense[i]).abs() < 1e-12, "component {i}");
        }
    }

    #[test]
    fn repeated_pivot_swaps_match_dense_lu() {
        // A cyclic generator-style matrix whose sub-diagonal mass grows
        // down each column, so partial pivoting swaps at nearly every
        // step, long after earlier multipliers were recorded.
        let n = 50;
        let mut triplets = Vec::new();
        for i in 0..n {
            triplets.push((i, i, -1.2 - (i as f64 * 1.7).sin() * 0.3));
            triplets.push((i, (i + 1) % n, 0.3 + i as f64 * 0.02));
            triplets.push((i, (i + 2) % n, 0.9));
        }
        let a = CsrMatrix::from_triplets(n, n, &triplets).unwrap();
        let b = DVector::from_fn(n, |i| (i as f64 * 0.7).cos());
        let x = SparseLu::new(&a).unwrap().solve(&b).unwrap();
        let dense = a.to_dense().lu().unwrap().solve(&b).unwrap();
        for i in 0..n {
            assert!((x[i] - dense[i]).abs() < 1e-9, "component {i}");
        }
    }

    #[test]
    fn detects_singular() {
        let a = DMatrix::from_rows(&[&[1.0, 2.0], &[2.0, 4.0]]).unwrap();
        assert!(matches!(
            SparseLu::new(&csr_of(&a)),
            Err(LinalgError::Singular { .. })
        ));
    }

    #[test]
    fn detects_structurally_empty_column() {
        let a = CsrMatrix::from_triplets(2, 2, &[(0, 0, 1.0), (1, 0, 2.0)]).unwrap();
        assert!(matches!(
            SparseLu::new(&a),
            Err(LinalgError::Singular { pivot: 0 | 1 })
        ));
    }

    #[test]
    fn rejects_non_square() {
        let a = CsrMatrix::from_triplets(2, 3, &[(0, 0, 1.0)]).unwrap();
        assert!(matches!(
            SparseLu::new(&a),
            Err(LinalgError::NotSquare { .. })
        ));
    }

    #[test]
    fn solve_rejects_wrong_length() {
        let lu = SparseLu::new(&csr_of(&DMatrix::identity(3))).unwrap();
        assert!(lu.solve(&DVector::zeros(2)).is_err());
    }

    #[test]
    fn generator_shaped_system_with_trailing_dense_column_stays_sparse() {
        // Tridiagonal core plus a dense last column: the shape of a
        // policy-evaluation system with the gain column ordered last.
        let n = 60;
        let mut triplets = Vec::new();
        for i in 0..n - 1 {
            triplets.push((i, i, -2.0 - i as f64 * 0.01));
            if i > 0 {
                triplets.push((i, i - 1, 0.7));
            }
            if i + 1 < n - 1 {
                triplets.push((i, i + 1, 1.1));
            }
            triplets.push((i, n - 1, -1.0));
        }
        triplets.push((n - 1, 0, 1.0));
        triplets.push((n - 1, n - 1, 0.5));
        let a = CsrMatrix::from_triplets(n, n, &triplets).unwrap();
        let b = DVector::from_fn(n, |i| (i as f64).sin());

        let sparse_lu = SparseLu::new(&a).unwrap();
        let x = sparse_lu.solve(&b).unwrap();
        let dense = a.to_dense().lu().unwrap().solve(&b).unwrap();
        for i in 0..n {
            assert!((x[i] - dense[i]).abs() < 1e-9, "component {i}");
        }
        // Fill-in stays linear: nowhere near the n² dense entry count.
        assert!(
            sparse_lu.factor_nnz() < 8 * n,
            "factor nnz {} for n {n}",
            sparse_lu.factor_nnz()
        );
    }

    #[test]
    fn stiff_rate_spread_is_solved_directly() {
        // Rates spanning six orders of magnitude: the regime where the
        // iterative evaluation backend needs O(rate ratio) sweeps but a
        // direct factorization is unaffected.
        let a = DMatrix::from_rows(&[
            &[-1e6, 1e6, 0.0],
            &[1.0, -1.0 - 1e-3, 1e-3],
            &[0.0, 2.0, -2.0],
        ])
        .unwrap();
        // Shift to make it nonsingular (resolvent-style system).
        let shifted = DMatrix::from_fn(3, 3, |r, c| a[(r, c)] - f64::from(u8::from(r == c)));
        let b = DVector::from_vec(vec![1.0, 2.0, 3.0]);
        let x = SparseLu::new(&csr_of(&shifted)).unwrap().solve(&b).unwrap();
        let residual = &shifted.mul_vec(&x) - &b;
        assert!(
            residual.norm_inf() < 1e-6,
            "residual {}",
            residual.norm_inf()
        );
    }
}
