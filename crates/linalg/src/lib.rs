//! Dense linear algebra for continuous-time Markov analysis.
//!
//! This crate is the numerical substrate of the `dpm` workspace. It provides
//! exactly the operations the Markov-chain and Markov-decision-process layers
//! need, with no external dependencies:
//!
//! * [`DVector`] and [`DMatrix`] — growable dense vectors and row-major
//!   matrices over `f64`;
//! * [`Lu`] — LU decomposition with partial pivoting, giving linear solves,
//!   determinants, inverses, and Sherman–Morrison–Woodbury row-update
//!   solves ([`Lu::solve_updated`]) for factorization reuse;
//! * [`SparseLu`] — sparse direct LU over CSR rows, for stiff
//!   generator-shaped systems where iterative sweeps are impractical;
//! * [`kron`] / [`kron_sum`] — the Kronecker (tensor) product and sum used by
//!   the paper's compositional generator construction (Definition 4.4), with
//!   sparse CSR twins [`kron_sparse`] / [`kron_sum_sparse`];
//! * [`KroneckerOp`] — an *implicit* sum of Kronecker-product terms with a
//!   shuffle-algorithm matvec, the matrix-free representation of
//!   cluster-joint generators (`⊕ᵢ Qᵢ + Σⱼ cⱼ ⊗ᵢ Cⱼᵢ`);
//! * [`LinearOperator`] / [`Precondition`] — the operator and
//!   preconditioner abstractions the Krylov tier is generic over, with
//!   [`Jacobi`] and [`BlockJacobi`] as structure-exploiting
//!   preconditioners for implicit operators;
//! * [`CsrMatrix`] — compressed sparse row storage with `y = Ax` / `y = Aᵀx`
//!   products, transposition and row iteration, for generator matrices whose
//!   nonzero count grows linearly in the state count;
//! * [`iterative`] — Jacobi and Gauss–Seidel iterations for diagonally
//!   dominant systems, in dense and CSR (`O(nnz)` per sweep) variants;
//! * [`krylov`] — preconditioned Krylov solvers (BiCGSTAB, restarted
//!   GMRES(m)) with an ILU(0) preconditioner, the tier for generator
//!   systems of 10⁴–10⁶ states where direct fill-in and stationary sweeps
//!   both give out.
//!
//! # Examples
//!
//! Solve a small linear system:
//!
//! ```
//! use dpm_linalg::{DMatrix, DVector};
//!
//! # fn main() -> Result<(), dpm_linalg::LinalgError> {
//! let a = DMatrix::from_rows(&[&[2.0, 1.0], &[1.0, 3.0]])?;
//! let b = DVector::from_vec(vec![3.0, 5.0]);
//! let x = a.lu()?.solve(&b)?;
//! assert!((x[0] - 0.8).abs() < 1e-12);
//! assert!((x[1] - 1.4).abs() < 1e-12);
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod error;
pub mod iterative;
mod kron;
mod kron_op;
pub mod krylov;
mod lu;
mod matrix;
pub mod op;
pub mod sparse;
mod sparse_lu;
mod vector;

pub use error::LinalgError;
pub use iterative::{
    gauss_seidel, gauss_seidel_csr, jacobi, jacobi_csr, IterativeOptions, IterativeResult,
};
pub use kron::{kron, kron_sparse, kron_sum, kron_sum_sparse};
pub use kron_op::KroneckerOp;
pub use lu::Lu;
pub use matrix::DMatrix;
pub use op::{BlockJacobi, Jacobi, LinearOperator, Precondition};
pub use sparse::CsrMatrix;
pub use sparse_lu::SparseLu;
pub use vector::DVector;

/// Default absolute tolerance used by comparisons throughout the workspace.
pub const DEFAULT_TOL: f64 = 1e-10;

/// Returns `true` if `a` and `b` are within `tol` of each other.
///
/// This is an absolute comparison; the workspace deals in probabilities,
/// rates and costs whose magnitudes are moderate, so absolute tolerances are
/// appropriate.
///
/// # Examples
///
/// ```
/// assert!(dpm_linalg::approx_eq(1.0, 1.0 + 1e-12, 1e-10));
/// assert!(!dpm_linalg::approx_eq(1.0, 1.1, 1e-10));
/// ```
#[must_use]
pub fn approx_eq(a: f64, b: f64, tol: f64) -> bool {
    (a - b).abs() <= tol
}
