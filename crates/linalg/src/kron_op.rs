//! Implicit Kronecker-structured operators.
//!
//! A cluster of `K` interacting Markov components has a joint generator
//! of the shape
//!
//! ```text
//! G  =  ⊕ᵢ Qᵢ  +  Σⱼ cⱼ · ⊗ᵢ Cⱼᵢ
//! ```
//!
//! — a Kronecker *sum* of local dynamics plus a list of Kronecker
//! *product* coupling terms. Materializing `G` costs `Πᵢ nᵢ` rows and
//! dies combinatorially in `K`; every Krylov solver, however, only needs
//! `y = G·x`. [`KroneckerOp`] stores the factors (a few `nᵢ × nᵢ` CSR
//! matrices) and evaluates the matvec with the *shuffle algorithm*: each
//! non-identity factor of a product term is applied along its own tensor
//! axis, so one term costs `O(Σᵢ nnz(Aᵢ) · N / nᵢ)` with `N = Πᵢ nᵢ` —
//! the joint matrix is never formed, and storage stays `O(Σᵢ nnz(Aᵢ))`.
//!
//! The operator plugs into [`crate::krylov::bicgstab_op`] /
//! [`crate::krylov::gmres_op`] through [`LinearOperator`], and feeds the
//! structure-exploiting preconditioners in [`crate::op`]:
//! [`KroneckerOp::diagonal`] drives point Jacobi, and
//! [`KroneckerOp::trailing_blocks`] extracts the exact diagonal blocks
//! along the last tensor axis for [`crate::BlockJacobi`].

use crate::error::LinalgError;
use crate::kron::kron_sparse;
use crate::matrix::DMatrix;
use crate::op::LinearOperator;
use crate::sparse::CsrMatrix;
use crate::vector::DVector;

/// One Kronecker-product term `coeff · ⊗ᵢ Aᵢ`, with `None` factors
/// standing for the identity on their axis.
#[derive(Debug, Clone, PartialEq)]
struct KronTerm {
    coeff: f64,
    factors: Vec<Option<CsrMatrix>>,
}

/// An implicit sum of Kronecker-product terms over a fixed axis layout.
///
/// Axis `0` varies slowest in the joint index (the same layout as
/// [`crate::kron`] and [`crate::kron_sum`]): joint state
/// `(s₀, …, s_{K−1})` has index `((s₀·n₁ + s₁)·n₂ + …)`.
///
/// # Examples
///
/// ```
/// use dpm_linalg::{KroneckerOp, CsrMatrix, DVector};
///
/// # fn main() -> Result<(), dpm_linalg::LinalgError> {
/// // Two independent 2-state chains: G = Q ⊕ Q.
/// let q = CsrMatrix::from_triplets(2, 2, &[(0, 0, -1.0), (0, 1, 1.0), (1, 0, 2.0), (1, 1, -2.0)])?;
/// let op = KroneckerOp::kron_sum_of(&[q.clone(), q])?;
/// assert_eq!(op.dim(), 4);
/// // Row sums of a generator stay zero through the implicit matvec.
/// let ones = DVector::constant(4, 1.0);
/// assert!(op.mul_vec(&ones).norm_inf() < 1e-12);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct KroneckerOp {
    dims: Vec<usize>,
    dim: usize,
    terms: Vec<KronTerm>,
}

impl KroneckerOp {
    /// Creates an empty operator (the zero matrix) over the given axis
    /// dimensions.
    ///
    /// # Errors
    ///
    /// [`LinalgError::InvalidInput`] if `dims` is empty, any axis has
    /// dimension zero, or the joint dimension overflows `usize`.
    pub fn new(dims: Vec<usize>) -> Result<KroneckerOp, LinalgError> {
        if dims.is_empty() {
            return Err(LinalgError::InvalidInput {
                reason: "kronecker operator needs at least one axis".to_owned(),
            });
        }
        let mut dim = 1usize;
        for &n in &dims {
            if n == 0 {
                return Err(LinalgError::InvalidInput {
                    reason: "kronecker axes must have nonzero dimension".to_owned(),
                });
            }
            dim = dim
                .checked_mul(n)
                .ok_or_else(|| LinalgError::InvalidInput {
                    reason: "kronecker joint dimension overflows usize".to_owned(),
                })?;
        }
        Ok(KroneckerOp {
            dims,
            dim,
            terms: Vec::new(),
        })
    }

    /// Convenience constructor for the Kronecker sum `⊕ᵢ Qᵢ` of square
    /// factors: one product term per factor, identity on every other
    /// axis.
    ///
    /// # Errors
    ///
    /// [`LinalgError::NotSquare`] for a rectangular factor, plus the
    /// [`KroneckerOp::new`] and [`KroneckerOp::add_product`] validations.
    pub fn kron_sum_of(factors: &[CsrMatrix]) -> Result<KroneckerOp, LinalgError> {
        let dims: Vec<usize> = factors.iter().map(CsrMatrix::nrows).collect();
        let mut op = KroneckerOp::new(dims)?;
        for (axis, q) in factors.iter().enumerate() {
            let mut slots: Vec<Option<CsrMatrix>> = vec![None; factors.len()];
            slots[axis] = Some(q.clone());
            op.add_product(1.0, slots)?;
        }
        Ok(op)
    }

    /// Appends a product term `coeff · ⊗ᵢ Aᵢ`; `None` entries are the
    /// identity on their axis.
    ///
    /// # Errors
    ///
    /// [`LinalgError::InvalidInput`] for a non-finite coefficient, a
    /// factor list whose length differs from the axis count, a
    /// rectangular factor, a factor whose size disagrees with its axis,
    /// or a factor with non-finite entries.
    pub fn add_product(
        &mut self,
        coeff: f64,
        factors: Vec<Option<CsrMatrix>>,
    ) -> Result<&mut KroneckerOp, LinalgError> {
        if !coeff.is_finite() {
            return Err(LinalgError::InvalidInput {
                reason: format!("kronecker term coefficient {coeff} is not finite"),
            });
        }
        if factors.len() != self.dims.len() {
            return Err(LinalgError::InvalidInput {
                reason: format!(
                    "kronecker term has {} factors for {} axes",
                    factors.len(),
                    self.dims.len()
                ),
            });
        }
        for (axis, factor) in factors.iter().enumerate() {
            if let Some(f) = factor {
                if !f.is_square() || f.nrows() != self.dims[axis] {
                    return Err(LinalgError::InvalidInput {
                        reason: format!(
                            "axis {axis} factor is {}x{}, axis dimension is {}",
                            f.nrows(),
                            f.ncols(),
                            self.dims[axis]
                        ),
                    });
                }
                if !f.is_finite() {
                    return Err(LinalgError::InvalidInput {
                        reason: format!("axis {axis} factor has non-finite entries"),
                    });
                }
            }
        }
        self.terms.push(KronTerm { coeff, factors });
        Ok(self)
    }

    /// Per-axis dimensions.
    #[must_use]
    pub fn dims(&self) -> &[usize] {
        &self.dims
    }

    /// Joint dimension `N = Πᵢ nᵢ`.
    #[must_use]
    pub fn dim(&self) -> usize {
        self.dim
    }

    /// Number of product terms.
    #[must_use]
    pub fn n_terms(&self) -> usize {
        self.terms.len()
    }

    /// Bytes of factor storage held by the operator (CSR values, column
    /// indices and row pointers of every stored factor) — the number the
    /// scaling benches compare against the materialized joint matrix.
    #[must_use]
    pub fn storage_bytes(&self) -> usize {
        let word = std::mem::size_of::<f64>();
        self.terms
            .iter()
            .flat_map(|t| t.factors.iter().flatten())
            .map(|f| f.nnz() * 2 * word + (f.nrows() + 1) * word)
            .sum()
    }

    /// Applies one product term to `x` with the shuffle algorithm.
    fn apply_term(&self, term: &KronTerm, x: &[f64]) -> Vec<f64> {
        let mut cur = x.to_vec();
        let mut scratch = vec![0.0f64; self.dim];
        let mut right = self.dim;
        for (axis, factor) in term.factors.iter().enumerate() {
            let n = self.dims[axis];
            right /= n;
            let Some(f) = factor else {
                continue;
            };
            let left = self.dim / (n * right);
            scratch.iter_mut().for_each(|v| *v = 0.0);
            for l in 0..left {
                let base = l * n * right;
                for s in 0..n {
                    let out_base = base + s * right;
                    for (t, v) in f.row(s) {
                        let in_base = base + t * right;
                        for r in 0..right {
                            scratch[out_base + r] += v * cur[in_base + r];
                        }
                    }
                }
            }
            std::mem::swap(&mut cur, &mut scratch);
        }
        for v in &mut cur {
            *v *= term.coeff;
        }
        cur
    }

    /// Matrix–vector product `y = G·x` without materializing `G`.
    ///
    /// # Panics
    ///
    /// Panics if `x.len() != self.dim()`.
    #[must_use]
    pub fn mul_vec(&self, x: &DVector) -> DVector {
        assert_eq!(
            x.len(),
            self.dim,
            "kronecker matvec dimension mismatch: vector has {} entries, operator dimension is {}",
            x.len(),
            self.dim
        );
        let mut acc = vec![0.0f64; self.dim];
        for term in &self.terms {
            let y = self.apply_term(term, x.as_slice());
            for (a, v) in acc.iter_mut().zip(y) {
                *a += v;
            }
        }
        DVector::from_vec(acc)
    }

    /// The transposed operator: `(Σ c ⊗ᵢ Aᵢ)ᵀ = Σ c ⊗ᵢ Aᵢᵀ` (transposing
    /// each factor in place preserves the axis layout).
    #[must_use]
    pub fn transpose(&self) -> KroneckerOp {
        KroneckerOp {
            dims: self.dims.clone(),
            dim: self.dim,
            terms: self
                .terms
                .iter()
                .map(|t| KronTerm {
                    coeff: t.coeff,
                    factors: t
                        .factors
                        .iter()
                        .map(|f| f.as_ref().map(CsrMatrix::transpose))
                        .collect(),
                })
                .collect(),
        }
    }

    /// The joint diagonal, assembled from factor diagonals:
    /// `diag(⊗ᵢ Aᵢ) = ⊗ᵢ diag(Aᵢ)` and diagonals add across terms.
    #[must_use]
    pub fn diagonal(&self) -> DVector {
        let mut acc = vec![0.0f64; self.dim];
        for term in &self.terms {
            let mut cur = vec![term.coeff];
            for (axis, factor) in term.factors.iter().enumerate() {
                let n = self.dims[axis];
                let mut next = Vec::with_capacity(cur.len() * n);
                match factor {
                    Some(f) => {
                        let d = f.diagonal();
                        for &c in &cur {
                            for s in 0..n {
                                next.push(c * d[s]);
                            }
                        }
                    }
                    None => {
                        for &c in &cur {
                            for _ in 0..n {
                                next.push(c);
                            }
                        }
                    }
                }
                cur = next;
            }
            for (a, v) in acc.iter_mut().zip(cur) {
                *a += v;
            }
        }
        DVector::from_vec(acc)
    }

    /// The exact diagonal blocks of the operator along the *last* tensor
    /// axis: block `p` (one per joint prefix `(s₀, …, s_{K−2})`) is the
    /// `n_{K−1} × n_{K−1}` submatrix coupling states that share that
    /// prefix. Within a block every leading factor contributes only its
    /// diagonal entry, so block `p` is
    /// `Σⱼ cⱼ · (Π_{i<K−1} Aⱼᵢ[pᵢ, pᵢ]) · Aⱼ,K−1` — cheap to assemble
    /// and the input to [`crate::BlockJacobi`].
    #[must_use]
    pub fn trailing_blocks(&self) -> Vec<DMatrix> {
        // dims is non-empty by construction.
        let n_last = self.dims[self.dims.len() - 1];
        let n_prefix = self.dim / n_last;
        let mut blocks = vec![DMatrix::zeros(n_last, n_last); n_prefix];
        for term in &self.terms {
            // Prefix-diagonal products: outer product of the leading
            // factor diagonals (1.0 on identity axes), scaled by coeff.
            let mut prefix = vec![term.coeff];
            for (axis, factor) in term.factors.iter().take(self.dims.len() - 1).enumerate() {
                let n = self.dims[axis];
                let mut next = Vec::with_capacity(prefix.len() * n);
                match factor {
                    Some(f) => {
                        let d = f.diagonal();
                        for &c in &prefix {
                            for s in 0..n {
                                next.push(c * d[s]);
                            }
                        }
                    }
                    None => {
                        for &c in &prefix {
                            for _ in 0..n {
                                next.push(c);
                            }
                        }
                    }
                }
                prefix = next;
            }
            let last = term.factors.last().and_then(Option::as_ref);
            for (p, block) in blocks.iter_mut().enumerate() {
                let scale = prefix[p];
                match last {
                    Some(f) => {
                        for (r, c, v) in f.iter() {
                            block[(r, c)] += scale * v;
                        }
                    }
                    None => {
                        for s in 0..n_last {
                            block[(s, s)] += scale;
                        }
                    }
                }
            }
        }
        blocks
    }

    /// Materializes the operator as one assembled CSR matrix — intended
    /// for verification gates and small-`K` baselines, not for solving:
    /// the result has `Πᵢ nᵢ` rows.
    ///
    /// # Errors
    ///
    /// Propagates CSR assembly failures (non-finite accumulated entries).
    pub fn materialize(&self) -> Result<CsrMatrix, LinalgError> {
        let mut triplets: Vec<(usize, usize, f64)> = Vec::new();
        for term in &self.terms {
            let mut acc = CsrMatrix::from_triplets(1, 1, &[(0, 0, 1.0)])?;
            for (axis, factor) in term.factors.iter().enumerate() {
                let next = match factor {
                    Some(f) => kron_sparse(&acc, f)?,
                    None => {
                        let n = self.dims[axis];
                        let eye: Vec<(usize, usize, f64)> = (0..n).map(|i| (i, i, 1.0)).collect();
                        kron_sparse(&acc, &CsrMatrix::from_triplets(n, n, &eye)?)?
                    }
                };
                acc = next;
            }
            triplets.extend(acc.iter().map(|(r, c, v)| (r, c, term.coeff * v)));
        }
        CsrMatrix::from_triplets(self.dim, self.dim, &triplets)
    }
}

impl LinearOperator for KroneckerOp {
    fn nrows(&self) -> usize {
        self.dim
    }

    fn ncols(&self) -> usize {
        self.dim
    }

    fn apply(&self, x: &DVector) -> DVector {
        self.mul_vec(x)
    }

    // Factors are validated finite at construction; products and sums of
    // finite factor entries stay finite for the generator-scale inputs
    // this operator carries, and the Krylov drivers re-check iterates.
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::kron::{kron_sparse, kron_sum_sparse};

    fn chain(n: usize, up: f64, down: f64) -> CsrMatrix {
        let mut t = Vec::new();
        for i in 0..n {
            let mut exit = 0.0;
            if i + 1 < n {
                t.push((i, i + 1, up));
                exit += up;
            }
            if i > 0 {
                t.push((i, i - 1, down));
                exit += down;
            }
            t.push((i, i, -exit));
        }
        CsrMatrix::from_triplets(n, n, &t).unwrap()
    }

    #[test]
    fn kron_sum_matvec_matches_materialized_exactly() {
        let a = chain(3, 2.0, 1.0);
        let b = chain(4, 3.0, 5.0);
        let op = KroneckerOp::kron_sum_of(&[a.clone(), b.clone()]).unwrap();
        let dense = kron_sum_sparse(&a, &b).unwrap();
        let x = DVector::from_fn(12, |i| (i as f64) - 4.0);
        let via_op = op.mul_vec(&x);
        let via_mat = dense.mul_vec(&x);
        // Integer-valued rates: every partial sum is exact, so the two
        // evaluation orders agree bit-for-bit.
        assert_eq!(via_op.as_slice(), via_mat.as_slice());
        assert_eq!(op.materialize().unwrap().max_abs_diff(&dense), 0.0);
    }

    #[test]
    fn product_term_matches_kron_sparse() {
        let a = chain(2, 1.0, 4.0);
        let b = chain(3, 2.0, 8.0);
        let mut op = KroneckerOp::new(vec![2, 3]).unwrap();
        op.add_product(2.0, vec![Some(a.clone()), Some(b.clone())])
            .unwrap();
        let mat = op.materialize().unwrap();
        let x = DVector::from_fn(6, |i| 1.0 + i as f64);
        let direct = kron_sparse(&a, &b).unwrap();
        for i in 0..6 {
            assert_eq!(mat.get(0, i), 2.0 * direct.get(0, i));
        }
        assert_eq!(op.mul_vec(&x).as_slice(), mat.mul_vec(&x).as_slice());
    }

    #[test]
    fn transpose_agrees_with_materialized_transpose() {
        let a = chain(3, 2.0, 1.0);
        let b = chain(2, 3.0, 5.0);
        let op = KroneckerOp::kron_sum_of(&[a, b]).unwrap();
        let t = op.transpose().materialize().unwrap();
        let reference = op.materialize().unwrap().transpose();
        assert_eq!(t.max_abs_diff(&reference), 0.0);
    }

    #[test]
    fn diagonal_matches_materialized_diagonal() {
        let a = chain(3, 2.0, 1.0);
        let b = chain(4, 3.0, 5.0);
        let mut op = KroneckerOp::kron_sum_of(&[a.clone(), b.clone()]).unwrap();
        op.add_product(0.5, vec![Some(a), Some(b)]).unwrap();
        let d = op.diagonal();
        let reference = op.materialize().unwrap();
        for i in 0..op.dim() {
            assert!((d[i] - reference.get(i, i)).abs() < 1e-14);
        }
    }

    #[test]
    fn trailing_blocks_match_materialized_blocks() {
        let a = chain(3, 2.0, 1.0);
        let b = chain(4, 3.0, 5.0);
        let mut op = KroneckerOp::kron_sum_of(&[a.clone(), b.clone()]).unwrap();
        op.add_product(1.5, vec![Some(a), Some(b)]).unwrap();
        let blocks = op.trailing_blocks();
        let mat = op.materialize().unwrap();
        assert_eq!(blocks.len(), 3);
        for (p, block) in blocks.iter().enumerate() {
            for r in 0..4 {
                for c in 0..4 {
                    let joint = mat.get(4 * p + r, 4 * p + c);
                    assert!(
                        (block[(r, c)] - joint).abs() < 1e-14,
                        "block {p} entry ({r},{c})"
                    );
                }
            }
        }
    }

    #[test]
    fn validation_rejects_malformed_terms() {
        assert!(KroneckerOp::new(Vec::new()).is_err());
        assert!(KroneckerOp::new(vec![2, 0]).is_err());
        let mut op = KroneckerOp::new(vec![2, 3]).unwrap();
        let a = chain(2, 1.0, 1.0);
        // Wrong factor count.
        assert!(op.add_product(1.0, vec![Some(a.clone())]).is_err());
        // Wrong axis size.
        assert!(op.add_product(1.0, vec![None, Some(a.clone())]).is_err());
        // Non-finite coefficient.
        assert!(op.add_product(f64::NAN, vec![Some(a), None]).is_err());
    }

    #[test]
    #[should_panic(expected = "dimension mismatch")]
    fn matvec_rejects_wrong_length() {
        let op = KroneckerOp::kron_sum_of(&[chain(2, 1.0, 1.0)]).unwrap();
        let _ = op.mul_vec(&DVector::zeros(3));
    }

    #[test]
    fn storage_is_factor_sized() {
        let a = chain(30, 2.0, 1.0);
        let op = KroneckerOp::kron_sum_of(&[a.clone(), a.clone(), a]).unwrap();
        // Joint dimension is 27 000 but storage stays at three factors.
        assert_eq!(op.dim(), 27_000);
        assert!(op.storage_bytes() < 3 * (30 * 3 * 16 + 31 * 8 + 64));
    }
}
