use std::error::Error;
use std::fmt;

/// Error type for all fallible operations in this crate.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum LinalgError {
    /// Operand shapes are incompatible for the requested operation.
    DimensionMismatch {
        /// Human-readable description of the operation that failed.
        operation: &'static str,
        /// Shape of the left (or only) operand, `(rows, cols)`.
        left: (usize, usize),
        /// Shape of the right operand, `(rows, cols)`.
        right: (usize, usize),
    },
    /// A matrix that must be square is not.
    NotSquare {
        /// Actual shape, `(rows, cols)`.
        shape: (usize, usize),
    },
    /// The matrix is singular (or numerically singular) to working precision.
    Singular {
        /// Index of the pivot column where factorization broke down.
        pivot: usize,
    },
    /// An iterative method failed to converge within its iteration budget.
    NotConverged {
        /// Number of iterations performed.
        iterations: usize,
        /// True residual norm of the final iterate (`‖Ax−b‖∞` for linear
        /// solvers). A value near the tolerance means "almost converged";
        /// a huge or non-finite value means the iteration diverged.
        residual: f64,
    },
    /// Input data was rejected (empty, ragged, or containing non-finite values).
    InvalidInput {
        /// Explanation of what was wrong.
        reason: String,
    },
}

impl fmt::Display for LinalgError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            LinalgError::DimensionMismatch {
                operation,
                left,
                right,
            } => write!(
                f,
                "dimension mismatch in {operation}: {}x{} vs {}x{}",
                left.0, left.1, right.0, right.1
            ),
            LinalgError::NotSquare { shape } => {
                write!(f, "matrix must be square, got {}x{}", shape.0, shape.1)
            }
            LinalgError::Singular { pivot } => {
                write!(f, "matrix is singular at pivot column {pivot}")
            }
            LinalgError::NotConverged {
                iterations,
                residual,
            } => write!(
                f,
                "iteration did not converge after {iterations} steps (residual {residual:e})"
            ),
            LinalgError::InvalidInput { reason } => write!(f, "invalid input: {reason}"),
        }
    }
}

impl Error for LinalgError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_informative() {
        let err = LinalgError::DimensionMismatch {
            operation: "matmul",
            left: (2, 3),
            right: (4, 5),
        };
        let text = err.to_string();
        assert!(text.contains("matmul"));
        assert!(text.contains("2x3"));
        assert!(text.contains("4x5"));
    }

    #[test]
    fn error_is_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<LinalgError>();
    }

    #[test]
    fn singular_display_names_pivot() {
        assert!(LinalgError::Singular { pivot: 3 }.to_string().contains('3'));
    }
}
