//! Compressed sparse row (CSR) matrices.
//!
//! SYS-level generator matrices in this workspace have `O(n)` nonzeros
//! (each joint state couples to an arrival, a departure, and a handful of
//! mode switches) but `O(n²)` dense entries, so dense assembly dominates
//! both memory and solve time once the queue capacity grows. [`CsrMatrix`]
//! stores only the nonzero pattern and supports the operations the
//! stationary and policy-evaluation solvers need: `y = Ax`, `y = Aᵀx`,
//! transposition, and per-row iteration.

// dpm-lint: allow-file(float_eq, reason = "CSR construction and iteration test entries against exact 0.0: only structural zeros are dropped, so the stored matrix is unchanged; any tolerance would alter the sparsity pattern")
use crate::{DMatrix, DVector, LinalgError};

/// A sparse matrix in compressed sparse row format.
///
/// Within each row, column indices are strictly increasing and values are
/// finite; explicit zeros are dropped during construction. These invariants
/// are established by the constructors and preserved by every method.
///
/// # Examples
///
/// ```
/// use dpm_linalg::{CsrMatrix, DVector};
///
/// # fn main() -> Result<(), dpm_linalg::LinalgError> {
/// // [ 2 0 1 ]
/// // [ 0 3 0 ]
/// let a = CsrMatrix::from_triplets(2, 3, &[(0, 0, 2.0), (0, 2, 1.0), (1, 1, 3.0)])?;
/// assert_eq!(a.nnz(), 3);
/// let y = a.mul_vec(&DVector::from_vec(vec![1.0, 1.0, 1.0]));
/// assert_eq!(y.as_slice(), &[3.0, 3.0]);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct CsrMatrix {
    rows: usize,
    cols: usize,
    /// `row_ptr[i]..row_ptr[i + 1]` indexes row `i`'s slice of `col_idx` /
    /// `values`; length `rows + 1`.
    row_ptr: Vec<usize>,
    col_idx: Vec<usize>,
    values: Vec<f64>,
}

impl CsrMatrix {
    /// Builds a matrix from `(row, col, value)` triplets.
    ///
    /// Triplets may arrive in any order; duplicates targeting the same entry
    /// are summed (matching the accumulation semantics of generator
    /// assembly, where parallel transitions between the same pair of states
    /// add their rates). Entries that sum to exactly zero are kept — callers
    /// assembling generators rely on the structural pattern — but triplets
    /// with value exactly `0.0` are dropped up front.
    ///
    /// # Errors
    ///
    /// Returns [`LinalgError::InvalidInput`] if an index is out of bounds or
    /// a value is non-finite.
    pub fn from_triplets(
        rows: usize,
        cols: usize,
        triplets: &[(usize, usize, f64)],
    ) -> Result<CsrMatrix, LinalgError> {
        for &(r, c, v) in triplets {
            if r >= rows || c >= cols {
                return Err(LinalgError::InvalidInput {
                    reason: format!("triplet ({r}, {c}) out of bounds for {rows}x{cols} matrix"),
                });
            }
            if !v.is_finite() {
                return Err(LinalgError::InvalidInput {
                    reason: format!("non-finite value {v} at ({r}, {c})"),
                });
            }
        }

        // Counting sort by row, then sort each row segment by column and
        // merge duplicates in place.
        let mut counts = vec![0usize; rows + 1];
        for &(r, _, v) in triplets {
            if v != 0.0 {
                counts[r + 1] += 1;
            }
        }
        for i in 0..rows {
            counts[i + 1] += counts[i];
        }
        let nnz_upper = counts[rows];
        let mut entries: Vec<(usize, f64)> = vec![(0, 0.0); nnz_upper];
        let mut cursor = counts.clone();
        for &(r, c, v) in triplets {
            if v != 0.0 {
                entries[cursor[r]] = (c, v);
                cursor[r] += 1;
            }
        }

        let mut row_ptr = Vec::with_capacity(rows + 1);
        let mut col_idx = Vec::with_capacity(nnz_upper);
        let mut values = Vec::with_capacity(nnz_upper);
        row_ptr.push(0);
        for r in 0..rows {
            let segment = &mut entries[counts[r]..counts[r + 1]];
            segment.sort_unstable_by_key(|&(c, _)| c);
            let mut iter = segment.iter().copied().peekable();
            while let Some((c, mut v)) = iter.next() {
                while iter.peek().is_some_and(|&(c2, _)| c2 == c) {
                    // dpm-lint: allow(no_panic, reason = "the peek on the previous line proved this entry exists")
                    v += iter.next().expect("peeked entry").1;
                }
                col_idx.push(c);
                values.push(v);
            }
            row_ptr.push(col_idx.len());
        }

        Ok(CsrMatrix {
            rows,
            cols,
            row_ptr,
            col_idx,
            values,
        })
    }

    /// Converts a dense matrix, dropping exact zeros.
    #[must_use]
    pub fn from_dense(dense: &DMatrix) -> CsrMatrix {
        let (rows, cols) = dense.shape();
        let mut row_ptr = Vec::with_capacity(rows + 1);
        let mut col_idx = Vec::new();
        let mut values = Vec::new();
        row_ptr.push(0);
        for r in 0..rows {
            for (c, &v) in dense.row(r).iter().enumerate() {
                if v != 0.0 {
                    col_idx.push(c);
                    values.push(v);
                }
            }
            row_ptr.push(col_idx.len());
        }
        CsrMatrix {
            rows,
            cols,
            row_ptr,
            col_idx,
            values,
        }
    }

    /// Materializes the dense equivalent. Intended for tests and small
    /// instances; defeats the purpose at scale.
    #[must_use]
    pub fn to_dense(&self) -> DMatrix {
        let mut dense = DMatrix::zeros(self.rows, self.cols);
        for r in 0..self.rows {
            for (c, v) in self.row(r) {
                dense[(r, c)] = v;
            }
        }
        dense
    }

    /// Number of rows.
    #[must_use]
    pub fn nrows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    #[must_use]
    pub fn ncols(&self) -> usize {
        self.cols
    }

    /// Shape as `(rows, cols)`.
    #[must_use]
    pub fn shape(&self) -> (usize, usize) {
        (self.rows, self.cols)
    }

    /// Returns `true` if the matrix is square.
    #[must_use]
    pub fn is_square(&self) -> bool {
        self.rows == self.cols
    }

    /// Number of stored entries.
    #[must_use]
    pub fn nnz(&self) -> usize {
        self.values.len()
    }

    /// Fraction of entries stored, `nnz / (rows · cols)`; 0 for an empty
    /// matrix.
    #[must_use]
    pub fn density(&self) -> f64 {
        let total = self.rows * self.cols;
        if total == 0 {
            0.0
        } else {
            self.nnz() as f64 / total as f64
        }
    }

    /// The entry at `(r, c)`, zero if not stored.
    ///
    /// # Panics
    ///
    /// Panics if `r` or `c` is out of bounds.
    #[must_use]
    pub fn get(&self, r: usize, c: usize) -> f64 {
        assert!(r < self.rows, "row index {r} out of bounds");
        assert!(c < self.cols, "column index {c} out of bounds");
        let range = self.row_ptr[r]..self.row_ptr[r + 1];
        match self.col_idx[range.clone()].binary_search(&c) {
            Ok(offset) => self.values[range.start + offset],
            Err(_) => 0.0,
        }
    }

    /// Iterates over the stored `(col, value)` pairs of row `r`, in
    /// increasing column order.
    ///
    /// # Panics
    ///
    /// Panics if `r` is out of bounds.
    pub fn row(&self, r: usize) -> impl Iterator<Item = (usize, f64)> + '_ {
        assert!(r < self.rows, "row index {r} out of bounds");
        let range = self.row_ptr[r]..self.row_ptr[r + 1];
        self.col_idx[range.clone()]
            .iter()
            .zip(&self.values[range])
            .map(|(&c, &v)| (c, v))
    }

    /// Iterates over all stored `(row, col, value)` entries in row-major
    /// order.
    pub fn iter(&self) -> impl Iterator<Item = (usize, usize, f64)> + '_ {
        (0..self.rows).flat_map(move |r| self.row(r).map(move |(c, v)| (r, c, v)))
    }

    /// Matrix–vector product `self * v`.
    ///
    /// # Panics
    ///
    /// Panics if `v.len() != self.ncols()`, mirroring [`DMatrix::mul_vec`].
    #[must_use]
    pub fn mul_vec(&self, v: &DVector) -> DVector {
        assert_eq!(
            v.len(),
            self.cols,
            "mul_vec requires vector length {} to match column count {}",
            v.len(),
            self.cols
        );
        let x = v.as_slice();
        DVector::from_fn(self.rows, |r| self.row(r).map(|(c, a)| a * x[c]).sum())
    }

    /// Vector–matrix product `v * self` (equivalently `selfᵀ v`).
    ///
    /// Computed in one pass over the stored entries without materializing
    /// the transpose.
    ///
    /// # Panics
    ///
    /// Panics if `v.len() != self.nrows()`, mirroring [`DMatrix::vec_mul`].
    #[must_use]
    pub fn vec_mul(&self, v: &DVector) -> DVector {
        assert_eq!(
            v.len(),
            self.rows,
            "vec_mul requires vector length {} to match row count {}",
            v.len(),
            self.rows
        );
        let x = v.as_slice();
        let mut y = vec![0.0; self.cols];
        for (r, &xr) in x.iter().enumerate() {
            if xr != 0.0 {
                for (c, a) in self.row(r) {
                    y[c] += a * xr;
                }
            }
        }
        DVector::from_vec(y)
    }

    /// The transpose as a new CSR matrix.
    #[must_use]
    pub fn transpose(&self) -> CsrMatrix {
        // Counting sort on columns; the row-major input order guarantees
        // each transposed row comes out sorted by column.
        let mut counts = vec![0usize; self.cols + 1];
        for &c in &self.col_idx {
            counts[c + 1] += 1;
        }
        for i in 0..self.cols {
            counts[i + 1] += counts[i];
        }
        let row_ptr = counts.clone();
        let mut col_idx = vec![0usize; self.nnz()];
        let mut values = vec![0.0; self.nnz()];
        let mut cursor = counts;
        for (r, c, v) in self.iter() {
            let slot = cursor[c];
            col_idx[slot] = r;
            values[slot] = v;
            cursor[c] += 1;
        }
        CsrMatrix {
            rows: self.cols,
            cols: self.rows,
            row_ptr,
            col_idx,
            values,
        }
    }

    /// The main diagonal as a dense vector.
    ///
    /// # Panics
    ///
    /// Panics if the matrix is not square.
    #[must_use]
    pub fn diagonal(&self) -> DVector {
        assert!(self.is_square(), "diagonal requires a square matrix");
        DVector::from_fn(self.rows, |i| self.get(i, i))
    }

    /// Returns `true` if every stored value is finite.
    #[must_use]
    pub fn is_finite(&self) -> bool {
        self.values.iter().all(|v| v.is_finite())
    }

    /// Infinity norm of the entry-wise difference with `other`.
    ///
    /// # Panics
    ///
    /// Panics if shapes differ.
    #[must_use]
    pub fn max_abs_diff(&self, other: &CsrMatrix) -> f64 {
        assert_eq!(self.shape(), other.shape(), "shape mismatch");
        let mut max = 0.0f64;
        for r in 0..self.rows {
            let mut a = self.row(r).peekable();
            let mut b = other.row(r).peekable();
            loop {
                match (a.peek().copied(), b.peek().copied()) {
                    (Some((ca, va)), Some((cb, vb))) => {
                        if ca == cb {
                            max = max.max((va - vb).abs());
                            a.next();
                            b.next();
                        } else if ca < cb {
                            max = max.max(va.abs());
                            a.next();
                        } else {
                            max = max.max(vb.abs());
                            b.next();
                        }
                    }
                    (Some((_, va)), None) => {
                        max = max.max(va.abs());
                        a.next();
                    }
                    (None, Some((_, vb))) => {
                        max = max.max(vb.abs());
                        b.next();
                    }
                    (None, None) => break,
                }
            }
        }
        max
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn example() -> CsrMatrix {
        // [ 1 0 2 ]
        // [ 0 0 0 ]
        // [ 3 4 0 ]
        CsrMatrix::from_triplets(3, 3, &[(2, 1, 4.0), (0, 0, 1.0), (0, 2, 2.0), (2, 0, 3.0)])
            .unwrap()
    }

    #[test]
    fn triplets_sorted_and_indexed() {
        let a = example();
        assert_eq!(a.nnz(), 4);
        assert_eq!(a.get(0, 0), 1.0);
        assert_eq!(a.get(0, 2), 2.0);
        assert_eq!(a.get(1, 1), 0.0);
        assert_eq!(a.get(2, 0), 3.0);
        assert_eq!(a.get(2, 1), 4.0);
        let row2: Vec<_> = a.row(2).collect();
        assert_eq!(row2, vec![(0, 3.0), (1, 4.0)]);
    }

    #[test]
    fn duplicate_triplets_accumulate() {
        let a = CsrMatrix::from_triplets(2, 2, &[(0, 1, 1.5), (0, 1, 2.5)]).unwrap();
        assert_eq!(a.get(0, 1), 4.0);
        assert_eq!(a.nnz(), 1);
    }

    #[test]
    fn zero_triplets_dropped() {
        let a = CsrMatrix::from_triplets(2, 2, &[(0, 0, 0.0), (1, 1, 5.0)]).unwrap();
        assert_eq!(a.nnz(), 1);
    }

    #[test]
    fn rejects_out_of_bounds_and_non_finite() {
        assert!(CsrMatrix::from_triplets(2, 2, &[(2, 0, 1.0)]).is_err());
        assert!(CsrMatrix::from_triplets(2, 2, &[(0, 2, 1.0)]).is_err());
        assert!(CsrMatrix::from_triplets(2, 2, &[(0, 0, f64::NAN)]).is_err());
    }

    #[test]
    fn dense_round_trip() {
        let a = example();
        let dense = a.to_dense();
        let back = CsrMatrix::from_dense(&dense);
        assert_eq!(a, back);
    }

    #[test]
    fn mul_vec_matches_dense() {
        let a = example();
        let v = DVector::from_vec(vec![1.0, -1.0, 0.5]);
        let sparse = a.mul_vec(&v);
        let dense = a.to_dense().mul_vec(&v);
        for i in 0..3 {
            assert!((sparse[i] - dense[i]).abs() < 1e-15);
        }
    }

    #[test]
    fn vec_mul_matches_dense() {
        let a = example();
        let v = DVector::from_vec(vec![0.25, 2.0, -1.0]);
        let sparse = a.vec_mul(&v);
        let dense = a.to_dense().vec_mul(&v);
        for i in 0..3 {
            assert!((sparse[i] - dense[i]).abs() < 1e-15);
        }
    }

    #[test]
    fn transpose_round_trip() {
        let a = example();
        let t = a.transpose();
        assert_eq!(t.shape(), (3, 3));
        assert_eq!(t.get(1, 2), 4.0);
        assert_eq!(t.transpose(), a);
    }

    #[test]
    fn transpose_agrees_with_vec_mul() {
        let a = example();
        let v = DVector::from_vec(vec![1.0, 2.0, 3.0]);
        let via_transpose = a.transpose().mul_vec(&v);
        let direct = a.vec_mul(&v);
        for i in 0..3 {
            assert!((via_transpose[i] - direct[i]).abs() < 1e-15);
        }
    }

    #[test]
    fn diagonal_and_density() {
        let a = example();
        assert_eq!(a.diagonal().as_slice(), &[1.0, 0.0, 0.0]);
        assert!((a.density() - 4.0 / 9.0).abs() < 1e-15);
    }

    #[test]
    fn max_abs_diff_detects_pattern_mismatch() {
        let a = example();
        let mut dense = a.to_dense();
        dense[(1, 1)] = 0.5;
        let b = CsrMatrix::from_dense(&dense);
        assert!((a.max_abs_diff(&b) - 0.5).abs() < 1e-15);
        assert_eq!(a.max_abs_diff(&a), 0.0);
    }

    #[test]
    fn empty_matrix_is_sane() {
        let a = CsrMatrix::from_triplets(0, 0, &[]).unwrap();
        assert_eq!(a.nnz(), 0);
        assert_eq!(a.density(), 0.0);
        assert!(a.is_finite());
    }
}
