//! LU decomposition with partial pivoting.

use crate::{DMatrix, DVector, LinalgError};

/// Relative pivot threshold below which a matrix is treated as singular.
const PIVOT_EPS: f64 = 1e-13;

/// An LU decomposition `P * A = L * U` with partial (row) pivoting.
///
/// The decomposition is computed once and can then be reused for multiple
/// solves against different right-hand sides — the access pattern of policy
/// iteration, which re-solves the evaluation equations every improvement
/// step.
///
/// # Examples
///
/// ```
/// use dpm_linalg::{DMatrix, DVector};
///
/// # fn main() -> Result<(), dpm_linalg::LinalgError> {
/// let a = DMatrix::from_rows(&[&[4.0, 3.0], &[6.0, 3.0]])?;
/// let lu = a.lu()?;
/// let x = lu.solve(&DVector::from_vec(vec![10.0, 12.0]))?;
/// assert!((x[0] - 1.0).abs() < 1e-12);
/// assert!((x[1] - 2.0).abs() < 1e-12);
/// assert!((lu.det() - -6.0).abs() < 1e-12);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone)]
pub struct Lu {
    /// Packed L (unit lower, below diagonal) and U (upper, on/above diagonal).
    factors: DMatrix,
    /// Row permutation: `perm[i]` is the original row now in position `i`.
    perm: Vec<usize>,
    /// +1.0 or -1.0 depending on the parity of the permutation.
    sign: f64,
}

impl Lu {
    /// Factorizes `a`, consuming it as workspace.
    ///
    /// # Errors
    ///
    /// Returns [`LinalgError::NotSquare`] if `a` is not square, or
    /// [`LinalgError::Singular`] if a pivot is (numerically) zero.
    pub fn new(mut a: DMatrix) -> Result<Self, LinalgError> {
        if !a.is_square() {
            return Err(LinalgError::NotSquare { shape: a.shape() });
        }
        let n = a.nrows();
        let mut perm: Vec<usize> = (0..n).collect();
        let mut sign = 1.0;
        let scale = a.max_abs().max(1.0);

        for k in 0..n {
            // Find the largest pivot in column k at or below the diagonal.
            let mut pivot_row = k;
            let mut pivot_val = a[(k, k)].abs();
            for r in (k + 1)..n {
                let v = a[(r, k)].abs();
                if v > pivot_val {
                    pivot_val = v;
                    pivot_row = r;
                }
            }
            if pivot_val <= PIVOT_EPS * scale {
                return Err(LinalgError::Singular { pivot: k });
            }
            if pivot_row != k {
                for c in 0..n {
                    let tmp = a[(k, c)];
                    a[(k, c)] = a[(pivot_row, c)];
                    a[(pivot_row, c)] = tmp;
                }
                perm.swap(k, pivot_row);
                sign = -sign;
            }
            let pivot = a[(k, k)];
            for r in (k + 1)..n {
                let factor = a[(r, k)] / pivot;
                a[(r, k)] = factor;
                // dpm-lint: allow(float_eq, reason = "exact structural-zero skip: a 0.0 factor contributes nothing to the update")
                if factor != 0.0 {
                    for c in (k + 1)..n {
                        let delta = factor * a[(k, c)];
                        a[(r, c)] -= delta;
                    }
                }
            }
        }

        Ok(Lu {
            factors: a,
            perm,
            sign,
        })
    }

    /// Dimension of the factorized matrix.
    #[must_use]
    pub fn dim(&self) -> usize {
        self.factors.nrows()
    }

    /// Solves `A x = b`.
    ///
    /// # Errors
    ///
    /// Returns [`LinalgError::DimensionMismatch`] if `b.len() != self.dim()`.
    pub fn solve(&self, b: &DVector) -> Result<DVector, LinalgError> {
        let n = self.dim();
        if b.len() != n {
            return Err(LinalgError::DimensionMismatch {
                operation: "lu solve",
                left: (n, n),
                right: (b.len(), 1),
            });
        }
        // Apply permutation: y = P b.
        let mut x = DVector::from_fn(n, |i| b[self.perm[i]]);
        // Forward substitution with unit lower triangle.
        for i in 1..n {
            let mut sum = x[i];
            for k in 0..i {
                sum -= self.factors[(i, k)] * x[k];
            }
            x[i] = sum;
        }
        // Back substitution with upper triangle.
        for i in (0..n).rev() {
            let mut sum = x[i];
            for k in (i + 1)..n {
                sum -= self.factors[(i, k)] * x[k];
            }
            x[i] = sum / self.factors[(i, i)];
        }
        Ok(x)
    }

    /// Solves `A X = B` column by column.
    ///
    /// # Errors
    ///
    /// Returns [`LinalgError::DimensionMismatch`] if `B` has the wrong number
    /// of rows.
    pub fn solve_matrix(&self, b: &DMatrix) -> Result<DMatrix, LinalgError> {
        let n = self.dim();
        if b.nrows() != n {
            return Err(LinalgError::DimensionMismatch {
                operation: "lu solve_matrix",
                left: (n, n),
                right: b.shape(),
            });
        }
        let mut out = DMatrix::zeros(n, b.ncols());
        for c in 0..b.ncols() {
            let col = self.solve(&b.column(c))?;
            for r in 0..n {
                out[(r, c)] = col[r];
            }
        }
        Ok(out)
    }

    /// Determinant of the original matrix.
    #[must_use]
    pub fn det(&self) -> f64 {
        let mut d = self.sign;
        for i in 0..self.dim() {
            d *= self.factors[(i, i)];
        }
        d
    }

    /// Inverse of the original matrix.
    ///
    /// Prefer [`Lu::solve`] when only the action of the inverse is needed.
    ///
    /// # Errors
    ///
    /// Propagates solve errors (which cannot occur for a successfully
    /// factorized matrix, but the signature is kept fallible for uniformity).
    pub fn inverse(&self) -> Result<DMatrix, LinalgError> {
        self.solve_matrix(&DMatrix::identity(self.dim()))
    }

    /// Solves `(A + Σ_k e_{rₖ} δₖᵀ) x = b` against the cached factorization
    /// of `A`, where each update `(rₖ, δₖ)` adds `δₖᵀ` to row `rₖ` — i.e.
    /// replaces the row by `old_row + δ`.
    ///
    /// This is the Sherman–Morrison–Woodbury identity specialized to row
    /// replacement: one base solve, one solve per updated row, and a dense
    /// `m×m` capacitance system — `O((m+1)·n² + m³)` work against the cached
    /// factors instead of an `O(n³)` refactorization. This is the
    /// policy-evaluation access pattern: an improvement step changes the
    /// chosen action (hence the evaluation-system row) of only a few states,
    /// so the previous iteration's factorization can be reused.
    ///
    /// # Errors
    ///
    /// Returns [`LinalgError::DimensionMismatch`] if `b` or any `δ` does not
    /// have length `n`, [`LinalgError::InvalidInput`] if an updated row index
    /// is out of bounds or repeated, and [`LinalgError::Singular`] if the
    /// *updated* matrix is singular (the capacitance system breaks down).
    pub fn solve_updated(
        &self,
        updates: &[(usize, DVector)],
        b: &DVector,
    ) -> Result<DVector, LinalgError> {
        let n = self.dim();
        if b.len() != n {
            return Err(LinalgError::DimensionMismatch {
                operation: "lu solve_updated",
                left: (n, n),
                right: (b.len(), 1),
            });
        }
        let mut seen = vec![false; n];
        for (row, delta) in updates {
            if *row >= n {
                return Err(LinalgError::InvalidInput {
                    reason: format!("updated row {row} out of bounds for dimension {n}"),
                });
            }
            if seen[*row] {
                return Err(LinalgError::InvalidInput {
                    reason: format!("row {row} updated twice"),
                });
            }
            seen[*row] = true;
            if delta.len() != n {
                return Err(LinalgError::DimensionMismatch {
                    operation: "lu solve_updated delta",
                    left: (n, n),
                    right: (delta.len(), 1),
                });
            }
        }

        let z = self.solve(b)?;
        if updates.is_empty() {
            return Ok(z);
        }
        let m = updates.len();

        // W = A⁻¹ [e_{r₁} … e_{rₘ}], one triangular solve pair per column.
        let mut w_cols = Vec::with_capacity(m);
        for &(row, _) in updates {
            let mut unit = DVector::zeros(n);
            unit[row] = 1.0;
            w_cols.push(self.solve(&unit)?);
        }

        // Capacitance C = Iₘ + D·W with D's rows the deltas; solving
        // C y = D z yields the correction x = z − W y.
        let mut capacitance = DMatrix::zeros(m, m);
        for i in 0..m {
            for j in 0..m {
                let dot = updates[i].1.dot(&w_cols[j]);
                capacitance[(i, j)] = dot + f64::from(u8::from(i == j));
            }
        }
        let rhs = DVector::from_fn(m, |i| updates[i].1.dot(&z));
        let y = Lu::new(capacitance)?.solve(&rhs)?;

        Ok(DVector::from_fn(n, |i| {
            let mut x = z[i];
            for k in 0..m {
                x -= w_cols[k][i] * y[k];
            }
            x
        }))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn solves_known_system() {
        let a =
            DMatrix::from_rows(&[&[2.0, 1.0, 1.0], &[4.0, -6.0, 0.0], &[-2.0, 7.0, 2.0]]).unwrap();
        let b = DVector::from_vec(vec![5.0, -2.0, 9.0]);
        let x = a.lu().unwrap().solve(&b).unwrap();
        let residual = &a.mul_vec(&x) - &b;
        assert!(residual.norm_inf() < 1e-12);
    }

    #[test]
    fn requires_pivoting() {
        // Zero in the (0,0) position: fails without partial pivoting.
        let a = DMatrix::from_rows(&[&[0.0, 1.0], &[1.0, 0.0]]).unwrap();
        let x = a
            .lu()
            .unwrap()
            .solve(&DVector::from_vec(vec![3.0, 7.0]))
            .unwrap();
        assert_eq!(x.as_slice(), &[7.0, 3.0]);
    }

    #[test]
    fn detects_singular() {
        let a = DMatrix::from_rows(&[&[1.0, 2.0], &[2.0, 4.0]]).unwrap();
        assert!(matches!(a.lu(), Err(LinalgError::Singular { .. })));
    }

    #[test]
    fn rejects_non_square() {
        let a = DMatrix::zeros(2, 3);
        assert!(matches!(a.lu(), Err(LinalgError::NotSquare { .. })));
    }

    #[test]
    fn determinant_matches_cofactor_expansion() {
        let a = DMatrix::from_rows(&[&[3.0, 8.0], &[4.0, 6.0]]).unwrap();
        assert!((a.lu().unwrap().det() - -14.0).abs() < 1e-12);
    }

    #[test]
    fn determinant_of_identity_is_one() {
        assert!((DMatrix::identity(5).lu().unwrap().det() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn inverse_multiplies_to_identity() {
        let a = DMatrix::from_rows(&[&[4.0, 7.0], &[2.0, 6.0]]).unwrap();
        let inv = a.lu().unwrap().inverse().unwrap();
        let prod = a.matmul(&inv).unwrap();
        let diff = &prod - &DMatrix::identity(2);
        assert!(diff.max_abs() < 1e-12);
    }

    #[test]
    fn solve_matrix_matches_columnwise_solves() {
        let a = DMatrix::from_rows(&[&[2.0, 0.0], &[0.0, 4.0]]).unwrap();
        let b = DMatrix::from_rows(&[&[2.0, 4.0], &[8.0, 12.0]]).unwrap();
        let x = a.lu().unwrap().solve_matrix(&b).unwrap();
        assert_eq!(x, DMatrix::from_rows(&[&[1.0, 2.0], &[2.0, 3.0]]).unwrap());
    }

    #[test]
    fn solve_rejects_wrong_length() {
        let a = DMatrix::identity(3);
        let lu = a.lu().unwrap();
        assert!(lu.solve(&DVector::zeros(2)).is_err());
    }

    fn row_delta(a: &DMatrix, updated: &DMatrix, row: usize) -> DVector {
        DVector::from_fn(a.ncols(), |c| updated[(row, c)] - a[(row, c)])
    }

    #[test]
    fn solve_updated_matches_refactorized_solve() {
        let a = DMatrix::from_rows(&[
            &[4.0, 1.0, 0.0, 2.0],
            &[1.0, 5.0, 1.0, 0.0],
            &[0.0, 1.0, 6.0, 1.0],
            &[2.0, 0.0, 1.0, 7.0],
        ])
        .unwrap();
        let mut updated = a.clone();
        updated[(1, 0)] = 3.0;
        updated[(1, 2)] = -2.0;
        updated[(3, 3)] = 9.5;
        let b = DVector::from_vec(vec![1.0, -2.0, 3.0, 0.5]);

        let lu = a.clone().lu().unwrap();
        let updates = vec![
            (1, row_delta(&a, &updated, 1)),
            (3, row_delta(&a, &updated, 3)),
        ];
        let fast = lu.solve_updated(&updates, &b).unwrap();
        let reference = updated.clone().lu().unwrap().solve(&b).unwrap();
        for i in 0..4 {
            assert!((fast[i] - reference[i]).abs() < 1e-11, "component {i}");
        }
        let residual = &updated.mul_vec(&fast) - &b;
        assert!(residual.norm_inf() < 1e-11);
    }

    #[test]
    fn solve_updated_with_no_updates_is_plain_solve() {
        let a = DMatrix::from_rows(&[&[2.0, 1.0], &[1.0, 3.0]]).unwrap();
        let b = DVector::from_vec(vec![3.0, 5.0]);
        let lu = a.lu().unwrap();
        assert_eq!(
            lu.solve_updated(&[], &b).unwrap().as_slice(),
            lu.solve(&b).unwrap().as_slice()
        );
    }

    #[test]
    fn solve_updated_detects_singular_update() {
        // Replace row 1 with a copy of row 0: the updated matrix is singular.
        let a = DMatrix::from_rows(&[&[1.0, 2.0], &[3.0, 4.0]]).unwrap();
        let lu = a.clone().lu().unwrap();
        let delta = DVector::from_fn(2, |c| a[(0, c)] - a[(1, c)]);
        let b = DVector::from_vec(vec![1.0, 1.0]);
        assert!(matches!(
            lu.solve_updated(&[(1, delta)], &b),
            Err(LinalgError::Singular { .. })
        ));
    }

    #[test]
    fn solve_updated_rejects_bad_rows_and_shapes() {
        let lu = DMatrix::identity(3).lu().unwrap();
        let b = DVector::zeros(3);
        assert!(lu.solve_updated(&[(5, DVector::zeros(3))], &b).is_err());
        assert!(lu.solve_updated(&[(0, DVector::zeros(2))], &b).is_err());
        assert!(lu
            .solve_updated(&[(0, DVector::zeros(3)), (0, DVector::zeros(3))], &b)
            .is_err());
        assert!(lu.solve_updated(&[], &DVector::zeros(2)).is_err());
    }

    #[test]
    fn solve_handles_permuted_diagonal() {
        // Permutation matrix times diagonal: heavy pivoting path.
        let a =
            DMatrix::from_rows(&[&[0.0, 0.0, 3.0], &[5.0, 0.0, 0.0], &[0.0, 2.0, 0.0]]).unwrap();
        let b = DVector::from_vec(vec![6.0, 10.0, 4.0]);
        let x = a.lu().unwrap().solve(&b).unwrap();
        assert!((x[0] - 2.0).abs() < 1e-12);
        assert!((x[1] - 2.0).abs() < 1e-12);
        assert!((x[2] - 2.0).abs() < 1e-12);
    }
}
