use std::fmt;
use std::ops::{Add, Index, IndexMut, Mul, Sub};

use crate::{DVector, LinalgError, Lu};

/// A dense, row-major matrix of `f64` values.
///
/// Generator matrices, transition-probability matrices and LP tableaus in the
/// workspace are all built on `DMatrix`.
///
/// # Examples
///
/// ```
/// use dpm_linalg::DMatrix;
///
/// # fn main() -> Result<(), dpm_linalg::LinalgError> {
/// let a = DMatrix::from_rows(&[&[1.0, 2.0], &[3.0, 4.0]])?;
/// assert_eq!(a[(1, 0)], 3.0);
/// assert_eq!(a.transpose()[(0, 1)], 3.0);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, PartialEq, Default)]
pub struct DMatrix {
    rows: usize,
    cols: usize,
    data: Vec<f64>,
}

impl DMatrix {
    /// Creates a `rows x cols` matrix of zeros.
    #[must_use]
    pub fn zeros(rows: usize, cols: usize) -> Self {
        DMatrix {
            rows,
            cols,
            data: vec![0.0; rows * cols],
        }
    }

    /// Creates the `n x n` identity matrix.
    ///
    /// # Examples
    ///
    /// ```
    /// let i = dpm_linalg::DMatrix::identity(2);
    /// assert_eq!(i[(0, 0)], 1.0);
    /// assert_eq!(i[(0, 1)], 0.0);
    /// ```
    #[must_use]
    pub fn identity(n: usize) -> Self {
        let mut m = DMatrix::zeros(n, n);
        for i in 0..n {
            m[(i, i)] = 1.0;
        }
        m
    }

    /// Creates a matrix by evaluating `f` at each `(row, col)` position.
    #[must_use]
    pub fn from_fn(rows: usize, cols: usize, mut f: impl FnMut(usize, usize) -> f64) -> Self {
        let mut data = Vec::with_capacity(rows * cols);
        for r in 0..rows {
            for c in 0..cols {
                data.push(f(r, c));
            }
        }
        DMatrix { rows, cols, data }
    }

    /// Builds a matrix from row slices.
    ///
    /// # Errors
    ///
    /// Returns [`LinalgError::InvalidInput`] if the rows have differing
    /// lengths or if there are zero rows with a nonzero implied width.
    pub fn from_rows(rows: &[&[f64]]) -> Result<Self, LinalgError> {
        let nrows = rows.len();
        let ncols = rows.first().map_or(0, |r| r.len());
        let mut data = Vec::with_capacity(nrows * ncols);
        for (i, row) in rows.iter().enumerate() {
            if row.len() != ncols {
                return Err(LinalgError::InvalidInput {
                    reason: format!("row {i} has length {} but expected {ncols}", row.len()),
                });
            }
            data.extend_from_slice(row);
        }
        Ok(DMatrix {
            rows: nrows,
            cols: ncols,
            data,
        })
    }

    /// Builds a square diagonal matrix from the given diagonal entries.
    #[must_use]
    pub fn from_diagonal(diag: &DVector) -> Self {
        let n = diag.len();
        let mut m = DMatrix::zeros(n, n);
        for i in 0..n {
            m[(i, i)] = diag[i];
        }
        m
    }

    /// Wraps raw row-major storage.
    ///
    /// # Errors
    ///
    /// Returns [`LinalgError::InvalidInput`] if `data.len() != rows * cols`.
    pub fn from_row_major(rows: usize, cols: usize, data: Vec<f64>) -> Result<Self, LinalgError> {
        if data.len() != rows * cols {
            return Err(LinalgError::InvalidInput {
                reason: format!("storage length {} does not match {rows}x{cols}", data.len()),
            });
        }
        Ok(DMatrix { rows, cols, data })
    }

    /// Number of rows.
    #[must_use]
    pub fn nrows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    #[must_use]
    pub fn ncols(&self) -> usize {
        self.cols
    }

    /// Shape as `(rows, cols)`.
    #[must_use]
    pub fn shape(&self) -> (usize, usize) {
        (self.rows, self.cols)
    }

    /// Returns `true` if the matrix is square.
    #[must_use]
    pub fn is_square(&self) -> bool {
        self.rows == self.cols
    }

    /// Returns the entry at `(r, c)`, or `None` if out of bounds.
    #[must_use]
    pub fn get(&self, r: usize, c: usize) -> Option<f64> {
        if r < self.rows && c < self.cols {
            Some(self.data[r * self.cols + c])
        } else {
            None
        }
    }

    /// Borrows row `r` as a slice.
    ///
    /// # Panics
    ///
    /// Panics if `r` is out of bounds.
    #[must_use]
    pub fn row(&self, r: usize) -> &[f64] {
        assert!(r < self.rows, "row index {r} out of bounds");
        &self.data[r * self.cols..(r + 1) * self.cols]
    }

    /// Borrows row `r` as a mutable slice.
    ///
    /// # Panics
    ///
    /// Panics if `r` is out of bounds.
    pub fn row_mut(&mut self, r: usize) -> &mut [f64] {
        assert!(r < self.rows, "row index {r} out of bounds");
        &mut self.data[r * self.cols..(r + 1) * self.cols]
    }

    /// Copies column `c` into a new vector.
    ///
    /// # Panics
    ///
    /// Panics if `c` is out of bounds.
    #[must_use]
    pub fn column(&self, c: usize) -> DVector {
        assert!(c < self.cols, "column index {c} out of bounds");
        DVector::from_fn(self.rows, |r| self[(r, c)])
    }

    /// Borrows the row-major storage.
    #[must_use]
    pub fn as_slice(&self) -> &[f64] {
        &self.data
    }

    /// Returns the transpose.
    #[must_use]
    pub fn transpose(&self) -> DMatrix {
        DMatrix::from_fn(self.cols, self.rows, |r, c| self[(c, r)])
    }

    /// Matrix–vector product `self * v`.
    ///
    /// # Panics
    ///
    /// Panics if `v.len() != self.ncols()`.
    #[must_use]
    pub fn mul_vec(&self, v: &DVector) -> DVector {
        assert_eq!(
            v.len(),
            self.cols,
            "mul_vec requires vector length {} to match column count {}",
            v.len(),
            self.cols
        );
        DVector::from_fn(self.rows, |r| {
            self.row(r)
                .iter()
                .zip(v.as_slice())
                .map(|(a, b)| a * b)
                .sum()
        })
    }

    /// Vector–matrix product `v^T * self`, the row-vector form used to push a
    /// probability distribution through a transition matrix.
    ///
    /// # Panics
    ///
    /// Panics if `v.len() != self.nrows()`.
    ///
    /// # Examples
    ///
    /// ```
    /// use dpm_linalg::{DMatrix, DVector};
    ///
    /// # fn main() -> Result<(), dpm_linalg::LinalgError> {
    /// let p = DMatrix::from_rows(&[&[0.0, 1.0], &[1.0, 0.0]])?;
    /// let pi = DVector::from_vec(vec![0.3, 0.7]);
    /// assert_eq!(p.vec_mul(&pi).as_slice(), &[0.7, 0.3]);
    /// # Ok(())
    /// # }
    /// ```
    #[must_use]
    pub fn vec_mul(&self, v: &DVector) -> DVector {
        assert_eq!(
            v.len(),
            self.rows,
            "vec_mul requires vector length {} to match row count {}",
            v.len(),
            self.rows
        );
        let mut out = DVector::zeros(self.cols);
        for r in 0..self.rows {
            let vr = v[r];
            // dpm-lint: allow(float_eq, reason = "exact structural-zero skip: dropping true zeros preserves the product exactly")
            if vr == 0.0 {
                continue;
            }
            let row = self.row(r);
            let slice = out.as_mut_slice();
            for (c, &x) in row.iter().enumerate() {
                slice[c] += vr * x;
            }
        }
        out
    }

    /// Matrix product.
    ///
    /// # Errors
    ///
    /// Returns [`LinalgError::DimensionMismatch`] if the inner dimensions
    /// differ.
    pub fn matmul(&self, rhs: &DMatrix) -> Result<DMatrix, LinalgError> {
        if self.cols != rhs.rows {
            return Err(LinalgError::DimensionMismatch {
                operation: "matmul",
                left: self.shape(),
                right: rhs.shape(),
            });
        }
        let mut out = DMatrix::zeros(self.rows, rhs.cols);
        for r in 0..self.rows {
            for k in 0..self.cols {
                let aik = self[(r, k)];
                // dpm-lint: allow(float_eq, reason = "exact structural-zero skip: dropping true zeros preserves the product exactly")
                if aik == 0.0 {
                    continue;
                }
                let rhs_row = rhs.row(k);
                let out_row = out.row_mut(r);
                for (c, &b) in rhs_row.iter().enumerate() {
                    out_row[c] += aik * b;
                }
            }
        }
        Ok(out)
    }

    /// Returns a copy with every entry scaled by `factor`.
    #[must_use]
    pub fn scaled(&self, factor: f64) -> DMatrix {
        self.map(|x| x * factor)
    }

    /// Maps every entry through `f`, returning a new matrix.
    #[must_use]
    pub fn map(&self, f: impl Fn(f64) -> f64) -> DMatrix {
        DMatrix {
            rows: self.rows,
            cols: self.cols,
            data: self.data.iter().map(|&x| f(x)).collect(),
        }
    }

    /// Infinity norm: the maximum absolute row sum.
    #[must_use]
    pub fn norm_inf(&self) -> f64 {
        (0..self.rows)
            .map(|r| self.row(r).iter().map(|x| x.abs()).sum::<f64>())
            .fold(0.0, f64::max)
    }

    /// Frobenius norm.
    #[must_use]
    pub fn norm_frobenius(&self) -> f64 {
        self.data.iter().map(|x| x * x).sum::<f64>().sqrt()
    }

    /// Maximum absolute entry, `0.0` for an empty matrix.
    #[must_use]
    pub fn max_abs(&self) -> f64 {
        self.data.iter().fold(0.0, |m, x| m.max(x.abs()))
    }

    /// Returns `true` if every entry is finite.
    #[must_use]
    pub fn is_finite(&self) -> bool {
        self.data.iter().all(|x| x.is_finite())
    }

    /// Copies the diagonal into a vector.
    ///
    /// For a non-square matrix the diagonal has `min(rows, cols)` entries.
    #[must_use]
    pub fn diagonal(&self) -> DVector {
        let n = self.rows.min(self.cols);
        DVector::from_fn(n, |i| self[(i, i)])
    }

    /// Extracts the rectangular block with rows `r0..r0+nrows` and columns
    /// `c0..c0+ncols`.
    ///
    /// # Panics
    ///
    /// Panics if the block extends past the matrix bounds.
    #[must_use]
    pub fn block(&self, r0: usize, c0: usize, nrows: usize, ncols: usize) -> DMatrix {
        assert!(
            r0 + nrows <= self.rows && c0 + ncols <= self.cols,
            "block [{r0}+{nrows}, {c0}+{ncols}] exceeds {}x{}",
            self.rows,
            self.cols
        );
        DMatrix::from_fn(nrows, ncols, |r, c| self[(r0 + r, c0 + c)])
    }

    /// Writes `block` into this matrix with its top-left corner at `(r0, c0)`.
    ///
    /// # Panics
    ///
    /// Panics if the block extends past the matrix bounds.
    pub fn set_block(&mut self, r0: usize, c0: usize, block: &DMatrix) {
        assert!(
            r0 + block.rows <= self.rows && c0 + block.cols <= self.cols,
            "block write at ({r0}, {c0}) of {}x{} exceeds {}x{}",
            block.rows,
            block.cols,
            self.rows,
            self.cols
        );
        for r in 0..block.rows {
            for c in 0..block.cols {
                self[(r0 + r, c0 + c)] = block[(r, c)];
            }
        }
    }

    /// Computes the LU decomposition with partial pivoting.
    ///
    /// # Errors
    ///
    /// Returns [`LinalgError::NotSquare`] for non-square matrices and
    /// [`LinalgError::Singular`] if a zero pivot is encountered.
    pub fn lu(&self) -> Result<Lu, LinalgError> {
        Lu::new(self.clone())
    }
}

impl Index<(usize, usize)> for DMatrix {
    type Output = f64;

    fn index(&self, (r, c): (usize, usize)) -> &f64 {
        assert!(
            r < self.rows && c < self.cols,
            "index ({r}, {c}) out of bounds for {}x{}",
            self.rows,
            self.cols
        );
        &self.data[r * self.cols + c]
    }
}

impl IndexMut<(usize, usize)> for DMatrix {
    fn index_mut(&mut self, (r, c): (usize, usize)) -> &mut f64 {
        assert!(
            r < self.rows && c < self.cols,
            "index ({r}, {c}) out of bounds for {}x{}",
            self.rows,
            self.cols
        );
        &mut self.data[r * self.cols + c]
    }
}

impl Add<&DMatrix> for &DMatrix {
    type Output = DMatrix;

    fn add(self, rhs: &DMatrix) -> DMatrix {
        assert_eq!(self.shape(), rhs.shape(), "matrix add requires same shape");
        DMatrix {
            rows: self.rows,
            cols: self.cols,
            data: self
                .data
                .iter()
                .zip(&rhs.data)
                .map(|(a, b)| a + b)
                .collect(),
        }
    }
}

impl Sub<&DMatrix> for &DMatrix {
    type Output = DMatrix;

    fn sub(self, rhs: &DMatrix) -> DMatrix {
        assert_eq!(self.shape(), rhs.shape(), "matrix sub requires same shape");
        DMatrix {
            rows: self.rows,
            cols: self.cols,
            data: self
                .data
                .iter()
                .zip(&rhs.data)
                .map(|(a, b)| a - b)
                .collect(),
        }
    }
}

impl Mul<f64> for &DMatrix {
    type Output = DMatrix;

    fn mul(self, rhs: f64) -> DMatrix {
        self.scaled(rhs)
    }
}

impl fmt::Display for DMatrix {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for r in 0..self.rows {
            write!(f, "[")?;
            for c in 0..self.cols {
                if c > 0 {
                    write!(f, ", ")?;
                }
                write!(f, "{:10.6}", self[(r, c)])?;
            }
            writeln!(f, "]")?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> DMatrix {
        DMatrix::from_rows(&[&[1.0, 2.0, 3.0], &[4.0, 5.0, 6.0]]).unwrap()
    }

    #[test]
    fn shape_and_indexing() {
        let m = sample();
        assert_eq!(m.shape(), (2, 3));
        assert!(!m.is_square());
        assert_eq!(m[(1, 2)], 6.0);
        assert_eq!(m.get(1, 2), Some(6.0));
        assert_eq!(m.get(2, 0), None);
        assert_eq!(m.row(1), &[4.0, 5.0, 6.0]);
        assert_eq!(m.column(1).as_slice(), &[2.0, 5.0]);
    }

    #[test]
    fn from_rows_rejects_ragged() {
        let err = DMatrix::from_rows(&[&[1.0], &[1.0, 2.0]]).unwrap_err();
        assert!(matches!(err, LinalgError::InvalidInput { .. }));
    }

    #[test]
    fn from_row_major_validates_length() {
        assert!(DMatrix::from_row_major(2, 2, vec![0.0; 3]).is_err());
        let m = DMatrix::from_row_major(2, 2, vec![1.0, 2.0, 3.0, 4.0]).unwrap();
        assert_eq!(m[(1, 0)], 3.0);
    }

    #[test]
    fn transpose_round_trip() {
        let m = sample();
        assert_eq!(m.transpose().transpose(), m);
        assert_eq!(m.transpose()[(2, 1)], 6.0);
    }

    #[test]
    fn identity_is_matmul_unit() {
        let m = DMatrix::from_rows(&[&[1.0, 2.0], &[3.0, 4.0]]).unwrap();
        let i = DMatrix::identity(2);
        assert_eq!(m.matmul(&i).unwrap(), m);
        assert_eq!(i.matmul(&m).unwrap(), m);
    }

    #[test]
    fn matmul_known_product() {
        let a = DMatrix::from_rows(&[&[1.0, 2.0], &[3.0, 4.0]]).unwrap();
        let b = DMatrix::from_rows(&[&[5.0, 6.0], &[7.0, 8.0]]).unwrap();
        let c = a.matmul(&b).unwrap();
        let expected = DMatrix::from_rows(&[&[19.0, 22.0], &[43.0, 50.0]]).unwrap();
        assert_eq!(c, expected);
    }

    #[test]
    fn matmul_rejects_mismatched() {
        let a = sample();
        assert!(matches!(
            a.matmul(&a),
            Err(LinalgError::DimensionMismatch { .. })
        ));
    }

    #[test]
    fn mul_vec_and_vec_mul() {
        let m = DMatrix::from_rows(&[&[1.0, 2.0], &[3.0, 4.0]]).unwrap();
        let v = DVector::from_vec(vec![1.0, 1.0]);
        assert_eq!(m.mul_vec(&v).as_slice(), &[3.0, 7.0]);
        assert_eq!(m.vec_mul(&v).as_slice(), &[4.0, 6.0]);
    }

    #[test]
    fn norms() {
        let m = DMatrix::from_rows(&[&[1.0, -2.0], &[3.0, 4.0]]).unwrap();
        assert_eq!(m.norm_inf(), 7.0);
        assert!((m.norm_frobenius() - 30.0_f64.sqrt()).abs() < 1e-12);
        assert_eq!(m.max_abs(), 4.0);
    }

    #[test]
    fn diagonal_and_from_diagonal() {
        let d = DVector::from_vec(vec![2.0, 5.0]);
        let m = DMatrix::from_diagonal(&d);
        assert_eq!(m[(0, 0)], 2.0);
        assert_eq!(m[(0, 1)], 0.0);
        assert_eq!(m.diagonal(), d);
    }

    #[test]
    fn blocks() {
        let m =
            DMatrix::from_rows(&[&[1.0, 2.0, 3.0], &[4.0, 5.0, 6.0], &[7.0, 8.0, 9.0]]).unwrap();
        let b = m.block(1, 1, 2, 2);
        assert_eq!(b, DMatrix::from_rows(&[&[5.0, 6.0], &[8.0, 9.0]]).unwrap());
        let mut z = DMatrix::zeros(3, 3);
        z.set_block(0, 1, &b);
        assert_eq!(z[(0, 1)], 5.0);
        assert_eq!(z[(1, 2)], 9.0);
        assert_eq!(z[(2, 2)], 0.0);
    }

    #[test]
    fn arithmetic_ops() {
        let a = DMatrix::from_rows(&[&[1.0, 2.0], &[3.0, 4.0]]).unwrap();
        let b = DMatrix::identity(2);
        assert_eq!((&a + &b)[(0, 0)], 2.0);
        assert_eq!((&a - &b)[(1, 1)], 3.0);
        assert_eq!((&a * 2.0)[(1, 0)], 6.0);
    }

    #[test]
    #[should_panic(expected = "out of bounds")]
    fn index_out_of_bounds_panics() {
        let m = sample();
        let _ = m[(5, 0)];
    }

    #[test]
    fn display_contains_entries() {
        let m = DMatrix::identity(2);
        let text = m.to_string();
        assert!(text.contains("1.000000"));
    }
}
