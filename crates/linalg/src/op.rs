//! Abstract linear operators and preconditioners for matrix-free solves.
//!
//! The Krylov tier only ever touches a matrix through `y = A·x`: nothing
//! in BiCGSTAB or GMRES needs entries, rows, or a factorization of `A`
//! itself. [`LinearOperator`] captures exactly that contract, so implicit
//! operators — Kronecker-factored generators ([`crate::KroneckerOp`]),
//! scaled/augmented wrappers — feed the same solvers as an assembled
//! [`CsrMatrix`], bit-for-bit: the explicit-matrix entry points are thin
//! wrappers over the operator-generic code paths.
//!
//! [`Precondition`] is the matching abstraction on the `M⁻¹r` side.
//! [`crate::krylov::Ilu0`] implements it, as do the structure-exploiting
//! preconditioners here:
//!
//! * [`Jacobi`] — diagonal scaling, the cheapest thing that helps on
//!   diagonally dominant generator systems, and the only O(n)-memory
//!   choice at joint-space scale;
//! * [`BlockJacobi`] — independent dense LU solves on the diagonal
//!   blocks, the natural preconditioner for Kronecker-sum operators
//!   whose trailing factor gives the block structure.

use crate::error::LinalgError;
use crate::lu::Lu;
use crate::matrix::DMatrix;
use crate::sparse::CsrMatrix;
use crate::vector::DVector;

/// Relative floor below which a [`Jacobi`] diagonal entry is treated as
/// zero (the preconditioner falls back to the identity on that row).
const JACOBI_PIVOT_FLOOR: f64 = 1e-300;

/// Something that can act as `y = A·x` on dense vectors.
///
/// The operator is conceptually an `nrows × ncols` matrix; implementors
/// must make [`LinearOperator::apply`] a pure function of `x` so repeated
/// solves stay bit-identical.
pub trait LinearOperator {
    /// Number of rows of the operator.
    fn nrows(&self) -> usize;

    /// Number of columns of the operator.
    fn ncols(&self) -> usize;

    /// Computes `A·x`.
    ///
    /// Implementations may assume `x.len() == self.ncols()`; callers are
    /// expected to validate dimensions up front (the Krylov drivers do).
    fn apply(&self, x: &DVector) -> DVector;

    /// Whether every entry the operator can produce is finite. Backed by
    /// an entry scan for assembled matrices; implicit operators that
    /// validate their inputs at construction can keep the default.
    fn is_finite(&self) -> bool {
        true
    }

    /// `(nrows, ncols)`.
    fn shape(&self) -> (usize, usize) {
        (self.nrows(), self.ncols())
    }

    /// Whether the operator is square.
    fn is_square(&self) -> bool {
        self.nrows() == self.ncols()
    }
}

impl LinearOperator for CsrMatrix {
    fn nrows(&self) -> usize {
        CsrMatrix::nrows(self)
    }

    fn ncols(&self) -> usize {
        CsrMatrix::ncols(self)
    }

    fn apply(&self, x: &DVector) -> DVector {
        self.mul_vec(x)
    }

    fn is_finite(&self) -> bool {
        CsrMatrix::is_finite(self)
    }
}

/// Something that can apply `M⁻¹` to a residual.
///
/// Used for *right* preconditioning in the Krylov tier, so an exact
/// application is never required — any deterministic approximation of
/// `A⁻¹` accelerates convergence without changing the reported (true)
/// residual.
pub trait Precondition {
    /// Applies the preconditioner: returns `x ≈ A⁻¹ r`.
    ///
    /// # Errors
    ///
    /// [`LinalgError::DimensionMismatch`] if `r` has the wrong length;
    /// implementations must not fail otherwise once constructed.
    fn precondition(&self, r: &DVector) -> Result<DVector, LinalgError>;
}

/// Diagonal (Jacobi) preconditioner: `M⁻¹ = diag(d)⁻¹`.
///
/// Rows whose diagonal magnitude is below an absolute floor pass through
/// unscaled, so a structurally zero diagonal entry degrades gracefully to
/// the identity instead of producing infinities.
#[derive(Debug, Clone, PartialEq)]
pub struct Jacobi {
    inv_diag: Vec<f64>,
}

impl Jacobi {
    /// Builds the preconditioner from the operator's diagonal.
    ///
    /// # Errors
    ///
    /// [`LinalgError::InvalidInput`] if `diag` is empty or contains a
    /// non-finite entry.
    pub fn new(diag: &DVector) -> Result<Jacobi, LinalgError> {
        if diag.is_empty() {
            return Err(LinalgError::InvalidInput {
                reason: "jacobi preconditioner needs a non-empty diagonal".to_owned(),
            });
        }
        if !diag.iter().all(f64::is_finite) {
            return Err(LinalgError::InvalidInput {
                reason: "jacobi preconditioner needs a finite diagonal".to_owned(),
            });
        }
        let inv_diag = diag
            .iter()
            .map(|d| {
                if d.abs() <= JACOBI_PIVOT_FLOOR {
                    1.0
                } else {
                    1.0 / d
                }
            })
            .collect();
        Ok(Jacobi { inv_diag })
    }

    /// Dimension of the preconditioner.
    #[must_use]
    pub fn dim(&self) -> usize {
        self.inv_diag.len()
    }
}

impl Precondition for Jacobi {
    fn precondition(&self, r: &DVector) -> Result<DVector, LinalgError> {
        if r.len() != self.inv_diag.len() {
            return Err(LinalgError::DimensionMismatch {
                operation: "jacobi precondition",
                left: (self.inv_diag.len(), self.inv_diag.len()),
                right: (r.len(), 1),
            });
        }
        Ok(DVector::from_fn(r.len(), |i| r[i] * self.inv_diag[i]))
    }
}

/// Block-Jacobi preconditioner: independent dense LU solves on a list of
/// diagonal blocks.
///
/// The preconditioned residual is computed block by block:
/// `x[kᵢ..kᵢ₊₁] = Bᵢ⁻¹ r[kᵢ..kᵢ₊₁]` where `Bᵢ` is the `i`-th diagonal
/// block. For a Kronecker-structured operator the trailing-axis diagonal
/// blocks ([`crate::KroneckerOp::trailing_blocks`]) capture the full
/// coupling of the last factor plus a per-block diagonal shift from the
/// leading factors — a far stronger approximation than point Jacobi at a
/// memory cost of `n_blocks · block_dim²`.
#[derive(Debug, Clone)]
pub struct BlockJacobi {
    factors: Vec<Lu>,
    dim: usize,
}

impl BlockJacobi {
    /// Factors each diagonal block with dense partial-pivoting LU.
    ///
    /// # Errors
    ///
    /// [`LinalgError::InvalidInput`] for an empty block list or a
    /// non-square block, and [`LinalgError::Singular`] if any block fails
    /// to factor — the deterministic signal for callers to retry with a
    /// weaker preconditioner.
    pub fn new(blocks: Vec<DMatrix>) -> Result<BlockJacobi, LinalgError> {
        if blocks.is_empty() {
            return Err(LinalgError::InvalidInput {
                reason: "block-jacobi preconditioner needs at least one block".to_owned(),
            });
        }
        let mut factors = Vec::with_capacity(blocks.len());
        let mut dim = 0usize;
        for block in blocks {
            if block.nrows() != block.ncols() {
                return Err(LinalgError::InvalidInput {
                    reason: format!(
                        "block-jacobi blocks must be square, got {}x{}",
                        block.nrows(),
                        block.ncols()
                    ),
                });
            }
            dim += block.nrows();
            factors.push(Lu::new(block)?);
        }
        Ok(BlockJacobi { factors, dim })
    }

    /// Total dimension (sum of block dimensions).
    #[must_use]
    pub fn dim(&self) -> usize {
        self.dim
    }

    /// Number of diagonal blocks.
    #[must_use]
    pub fn n_blocks(&self) -> usize {
        self.factors.len()
    }
}

impl Precondition for BlockJacobi {
    fn precondition(&self, r: &DVector) -> Result<DVector, LinalgError> {
        if r.len() != self.dim {
            return Err(LinalgError::DimensionMismatch {
                operation: "block-jacobi precondition",
                left: (self.dim, self.dim),
                right: (r.len(), 1),
            });
        }
        let mut out = Vec::with_capacity(self.dim);
        let mut offset = 0usize;
        for lu in &self.factors {
            let k = lu.dim();
            let rhs = DVector::from_fn(k, |i| r[offset + i]);
            let x = lu.solve(&rhs)?;
            out.extend(x.iter());
            offset += k;
        }
        Ok(DVector::from_vec(out))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn csr_operator_matches_mul_vec() {
        let a = CsrMatrix::from_triplets(2, 3, &[(0, 0, 1.0), (0, 2, 2.0), (1, 1, -3.0)]).unwrap();
        let x = DVector::from_vec(vec![1.0, 2.0, 3.0]);
        let op: &dyn LinearOperator = &a;
        assert_eq!(op.shape(), (2, 3));
        assert!(!op.is_square());
        assert!(op.is_finite());
        assert_eq!(op.apply(&x).as_slice(), a.mul_vec(&x).as_slice());
    }

    #[test]
    fn jacobi_scales_by_the_diagonal() {
        let m = Jacobi::new(&DVector::from_vec(vec![2.0, -4.0, 0.0])).unwrap();
        let x = m
            .precondition(&DVector::from_vec(vec![2.0, 2.0, 5.0]))
            .unwrap();
        // The zero diagonal entry passes through unscaled.
        assert_eq!(x.as_slice(), &[1.0, -0.5, 5.0]);
        assert_eq!(m.dim(), 3);
    }

    #[test]
    fn jacobi_rejects_bad_diagonals() {
        assert!(Jacobi::new(&DVector::zeros(0)).is_err());
        assert!(Jacobi::new(&DVector::from_vec(vec![1.0, f64::NAN])).is_err());
        let m = Jacobi::new(&DVector::from_vec(vec![1.0])).unwrap();
        assert!(m.precondition(&DVector::zeros(2)).is_err());
    }

    #[test]
    fn block_jacobi_is_exact_for_block_diagonal_systems() {
        let b0 = DMatrix::from_row_major(2, 2, vec![2.0, 1.0, 1.0, 3.0]).unwrap();
        let b1 = DMatrix::from_row_major(1, 1, vec![4.0]).unwrap();
        let m = BlockJacobi::new(vec![b0.clone(), b1.clone()]).unwrap();
        assert_eq!(m.dim(), 3);
        assert_eq!(m.n_blocks(), 2);
        let r = DVector::from_vec(vec![5.0, 10.0, 8.0]);
        let x = m.precondition(&r).unwrap();
        // Block solves reproduce the exact block-diagonal inverse.
        assert!((b0.mul_vec(&DVector::from_vec(vec![x[0], x[1]]))[0] - 5.0).abs() < 1e-12);
        assert!((b0.mul_vec(&DVector::from_vec(vec![x[0], x[1]]))[1] - 10.0).abs() < 1e-12);
        assert!((x[2] - 2.0).abs() < 1e-12);
    }

    #[test]
    fn block_jacobi_rejections() {
        assert!(BlockJacobi::new(Vec::new()).is_err());
        let singular = DMatrix::zeros(2, 2);
        assert!(BlockJacobi::new(vec![singular]).is_err());
        let m = BlockJacobi::new(vec![DMatrix::from_row_major(1, 1, vec![1.0]).unwrap()]).unwrap();
        assert!(m.precondition(&DVector::zeros(2)).is_err());
    }
}
