//! Preconditioned Krylov-subspace solvers over [`CsrMatrix`].
//!
//! For generator-shaped systems beyond ~10⁴ states, sparse direct
//! factorization fill-in and plain Gauss–Seidel sweeps both become the
//! bottleneck. This module provides the workspace's Krylov tier:
//!
//! * [`Ilu0`] — incomplete LU factorization with zero fill: the factors
//!   live on exactly the sparsity pattern of the input matrix;
//! * [`bicgstab`] — the stabilized bi-conjugate gradient method of
//!   van der Vorst, for general nonsymmetric systems;
//! * [`gmres`] — restarted GMRES(m) (Saad & Schultz) with Givens-rotation
//!   least squares and happy-breakdown detection.
//!
//! Both solvers are right-preconditioned (they iterate on `A·M⁻¹u = b`,
//! `x = M⁻¹u`) so the reported residual is the *true* residual `b − Ax`,
//! not a preconditioned surrogate.
//!
//! # Matrix-free operation
//!
//! The solvers only touch `A` through matrix–vector products, so each has
//! an operator-generic twin — [`bicgstab_op`] / [`gmres_op`] — taking any
//! [`LinearOperator`] and any [`Precondition`] implementation. The
//! [`CsrMatrix`] entry points are thin wrappers over those twins and
//! produce bit-identical iterates; implicit operators (e.g.
//! [`crate::KroneckerOp`] over a Kronecker-factored joint generator) use
//! the `_op` forms directly and never materialize a matrix.
//!
//! # Determinism
//!
//! Every breakdown is handled deterministically: BiCGSTAB restarts from
//! the current iterate with the recomputed residual as the new shadow
//! vector (no random shadow), GMRES's happy breakdown solves exactly in
//! the invariant subspace it found, and a structurally or numerically
//! singular ILU(0) pivot is reported as [`LinalgError::Singular`] so the
//! caller can deterministically retry unpreconditioned. Two runs over the
//! same system produce bit-identical iterates.
//!
//! # Examples
//!
//! ```
//! use dpm_linalg::{krylov, CsrMatrix, DVector};
//!
//! # fn main() -> Result<(), dpm_linalg::LinalgError> {
//! // A small diagonally dominant system.
//! let a = CsrMatrix::from_triplets(
//!     3,
//!     3,
//!     &[(0, 0, 4.0), (0, 1, 1.0), (1, 0, 1.0), (1, 1, 4.0), (1, 2, 1.0), (2, 1, 1.0), (2, 2, 4.0)],
//! )?;
//! let b = DVector::from_vec(vec![1.0, 2.0, 3.0]);
//! let m = krylov::Ilu0::new(&a)?;
//! let result = krylov::bicgstab(&a, &b, Some(&m), &krylov::KrylovOptions::default())?;
//! let residual = &b - &a.mul_vec(&result.solution);
//! assert!(residual.norm() <= 1e-10);
//! # Ok(())
//! # }
//! ```

use crate::error::LinalgError;
use crate::op::{LinearOperator, Precondition};
use crate::sparse::CsrMatrix;
use crate::vector::DVector;

/// Relative pivot floor for [`Ilu0`]: a pivot smaller than this times the
/// largest absolute entry of the input is treated as singular.
const ILU_PIVOT_FLOOR: f64 = 1e-14;

/// Absolute threshold below which a BiCGSTAB inner product (`ρ`, `r̂·v`,
/// `t·t`) counts as a breakdown and triggers a deterministic restart.
const BREAKDOWN_TOL: f64 = 1e-30;

/// Maximum number of deterministic BiCGSTAB restarts before giving up.
const MAX_BICGSTAB_RESTARTS: usize = 8;

/// Relative size of the Arnoldi subdiagonal entry below which GMRES
/// declares a happy breakdown (the Krylov subspace became `A`-invariant).
const HAPPY_BREAKDOWN_TOL: f64 = 1e-14;

/// Options shared by the Krylov solvers.
///
/// `tolerance` is relative to `‖b‖₂`: a solve converges when
/// `‖b − Ax‖₂ ≤ tolerance · ‖b‖₂` (with `max(‖b‖₂, ε)` guarding the
/// zero-right-hand-side case). `restart` only affects [`gmres`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct KrylovOptions {
    /// Relative residual tolerance. Default `1e-12`.
    pub tolerance: f64,
    /// Total matrix–vector product budget across restarts. Default `10_000`.
    pub max_iterations: usize,
    /// GMRES restart length `m`. Default `30`.
    pub restart: usize,
}

impl Default for KrylovOptions {
    fn default() -> KrylovOptions {
        KrylovOptions {
            tolerance: 1e-12,
            max_iterations: 10_000,
            restart: 30,
        }
    }
}

/// A converged Krylov solve.
#[derive(Debug, Clone, PartialEq)]
pub struct KrylovResult {
    /// The computed solution `x`.
    pub solution: DVector,
    /// Matrix–vector products consumed.
    pub iterations: usize,
    /// True residual norm `‖b − Ax‖₂` of the returned iterate.
    pub residual: f64,
}

/// Incomplete LU factorization with zero fill (ILU(0)).
///
/// The factors `L` (unit lower) and `U` (upper) are stored in place on a
/// copy of the input's CSR pattern: no entry is created outside the
/// original sparsity structure, so memory is exactly `nnz(A)` values and
/// setup is `O(Σᵢ rowᵢ²)` in the worst case but `O(nnz)` for the short
/// rows of generator matrices.
///
/// # Examples
///
/// ```
/// use dpm_linalg::{krylov::Ilu0, CsrMatrix, DVector};
///
/// # fn main() -> Result<(), dpm_linalg::LinalgError> {
/// let a = CsrMatrix::from_triplets(2, 2, &[(0, 0, 2.0), (0, 1, 1.0), (1, 1, 3.0)])?;
/// let m = Ilu0::new(&a)?;
/// // For a triangular matrix ILU(0) is exact: M⁻¹b solves Ax = b.
/// let x = m.apply(&DVector::from_vec(vec![5.0, 3.0]))?;
/// assert!((x[0] - 2.0).abs() < 1e-12 && (x[1] - 1.0).abs() < 1e-12);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone)]
pub struct Ilu0 {
    n: usize,
    row_ptr: Vec<usize>,
    col_idx: Vec<usize>,
    values: Vec<f64>,
    /// `diag[i]` indexes the diagonal entry of row `i` inside
    /// `col_idx`/`values`.
    diag: Vec<usize>,
}

impl Ilu0 {
    /// Factors `a` in ILU(0) form.
    ///
    /// # Errors
    ///
    /// [`LinalgError::NotSquare`] for a rectangular input and
    /// [`LinalgError::Singular`] when a row has no diagonal entry in the
    /// pattern or elimination drives a pivot below the relative floor —
    /// the deterministic signal for callers to retry unpreconditioned.
    pub fn new(a: &CsrMatrix) -> Result<Ilu0, LinalgError> {
        if !a.is_square() {
            return Err(LinalgError::NotSquare { shape: a.shape() });
        }
        let n = a.nrows();
        let mut row_ptr = Vec::with_capacity(n + 1);
        let mut col_idx = Vec::with_capacity(a.nnz());
        let mut values = Vec::with_capacity(a.nnz());
        let mut scale = 0.0f64;
        row_ptr.push(0);
        for i in 0..n {
            for (j, v) in a.row(i) {
                col_idx.push(j);
                values.push(v);
                scale = scale.max(v.abs());
            }
            row_ptr.push(col_idx.len());
        }
        let floor = ILU_PIVOT_FLOOR * scale;
        let mut diag = vec![usize::MAX; n];
        for i in 0..n {
            let row = &col_idx[row_ptr[i]..row_ptr[i + 1]];
            match row.binary_search(&i) {
                Ok(pos) => diag[i] = row_ptr[i] + pos,
                Err(_) => return Err(LinalgError::Singular { pivot: i }),
            }
        }
        // IKJ elimination restricted to the existing pattern.
        for i in 0..n {
            let (row_start, row_end) = (row_ptr[i], row_ptr[i + 1]);
            for idx in row_start..row_end {
                let k = col_idx[idx];
                if k >= i {
                    break;
                }
                let pivot = values[diag[k]];
                if !pivot.is_finite() || pivot.abs() <= floor {
                    return Err(LinalgError::Singular { pivot: k });
                }
                let factor = values[idx] / pivot;
                values[idx] = factor;
                for kidx in diag[k] + 1..row_ptr[k + 1] {
                    let j = col_idx[kidx];
                    let row = &col_idx[row_start..row_end];
                    if let Ok(pos) = row.binary_search(&j) {
                        values[row_start + pos] -= factor * values[kidx];
                    }
                }
            }
            let pivot = values[diag[i]];
            if !pivot.is_finite() || pivot.abs() <= floor {
                return Err(LinalgError::Singular { pivot: i });
            }
            // Element growth can overflow an off-diagonal entry even while
            // every pivot stays finite; a non-finite factor would poison
            // every application, so surface it as the downgrade signal.
            if values[row_start..row_end].iter().any(|v| !v.is_finite()) {
                return Err(LinalgError::Singular { pivot: i });
            }
        }
        Ok(Ilu0 {
            n,
            row_ptr,
            col_idx,
            values,
            diag,
        })
    }

    /// Applies the preconditioner: returns `x` with `L U x = r`.
    ///
    /// # Errors
    ///
    /// [`LinalgError::DimensionMismatch`] if `r` has the wrong length.
    pub fn apply(&self, r: &DVector) -> Result<DVector, LinalgError> {
        if r.len() != self.n {
            return Err(LinalgError::DimensionMismatch {
                operation: "ilu0 apply",
                left: (self.n, self.n),
                right: (r.len(), 1),
            });
        }
        let mut x = r.clone();
        let xs = x.as_mut_slice();
        // Forward: L y = r with unit diagonal.
        for i in 0..self.n {
            let mut yi = xs[i];
            for idx in self.row_ptr[i]..self.diag[i] {
                yi -= self.values[idx] * xs[self.col_idx[idx]];
            }
            xs[i] = yi;
        }
        // Backward: U x = y.
        for i in (0..self.n).rev() {
            let mut xi = xs[i];
            for idx in self.diag[i] + 1..self.row_ptr[i + 1] {
                xi -= self.values[idx] * xs[self.col_idx[idx]];
            }
            xs[i] = xi / self.values[self.diag[i]];
        }
        Ok(x)
    }

    /// Number of stored factor entries (equals `nnz` of the input).
    #[must_use]
    pub fn nnz(&self) -> usize {
        self.values.len()
    }
}

impl Precondition for Ilu0 {
    fn precondition(&self, r: &DVector) -> Result<DVector, LinalgError> {
        self.apply(r)
    }
}

/// Applies `m` if present, else copies `r` (identity preconditioner).
fn precondition(m: Option<&dyn Precondition>, r: &DVector) -> Result<DVector, LinalgError> {
    match m {
        Some(m) => m.precondition(r),
        None => Ok(r.clone()),
    }
}

fn check_system(a: &dyn LinearOperator, b: &DVector) -> Result<(), LinalgError> {
    if !a.is_square() {
        return Err(LinalgError::NotSquare { shape: a.shape() });
    }
    if a.nrows() != b.len() {
        return Err(LinalgError::DimensionMismatch {
            operation: "krylov solve",
            left: a.shape(),
            right: (b.len(), 1),
        });
    }
    if !a.is_finite() || !b.is_finite() {
        return Err(LinalgError::InvalidInput {
            reason: "krylov solve requires finite matrix and right-hand side".to_owned(),
        });
    }
    Ok(())
}

/// `‖b − Ax‖₂` computed fresh (not from solver recursions).
fn true_residual(a: &dyn LinearOperator, x: &DVector, b: &DVector) -> f64 {
    (b - &a.apply(x)).norm()
}

/// Solves `Ax = b` with right-preconditioned BiCGSTAB.
///
/// Breakdowns (`ρ ≈ 0`, `r̂·v ≈ 0`, `t·t ≈ 0`) trigger a deterministic
/// restart: the residual is recomputed from the current iterate and
/// becomes the new shadow vector. After `MAX_BICGSTAB_RESTARTS`
/// consecutive breakdown restarts, or once the iteration budget is
/// exhausted, the method reports [`LinalgError::NotConverged`] carrying
/// the true residual norm.
///
/// # Errors
///
/// [`LinalgError::NotSquare`] / [`LinalgError::DimensionMismatch`] /
/// [`LinalgError::InvalidInput`] for malformed systems and
/// [`LinalgError::NotConverged`] as described above.
pub fn bicgstab(
    a: &CsrMatrix,
    b: &DVector,
    m: Option<&Ilu0>,
    options: &KrylovOptions,
) -> Result<KrylovResult, LinalgError> {
    bicgstab_op(a, b, m.map(|p| p as &dyn Precondition), options)
}

/// Operator-generic BiCGSTAB: identical algorithm to [`bicgstab`], but
/// `A` is any [`LinearOperator`] and `M` any [`Precondition`] — this is
/// the matrix-free entry point for implicit (e.g. Kronecker-factored)
/// systems. [`bicgstab`] delegates here, so both paths are bit-identical
/// on assembled matrices.
///
/// # Errors
///
/// Same contract as [`bicgstab`].
pub fn bicgstab_op(
    a: &dyn LinearOperator,
    b: &DVector,
    m: Option<&dyn Precondition>,
    options: &KrylovOptions,
) -> Result<KrylovResult, LinalgError> {
    check_system(a, b)?;
    let n = b.len();
    let b_norm = b.norm();
    let target = options.tolerance * b_norm.max(f64::MIN_POSITIVE);
    let mut x = DVector::zeros(n);
    if b_norm <= 0.0 {
        return Ok(KrylovResult {
            solution: x,
            iterations: 0,
            residual: 0.0,
        });
    }
    let mut r = b.clone();
    let mut r_hat = r.clone();
    let mut rho = 1.0f64;
    let mut alpha = 1.0f64;
    let mut omega = 1.0f64;
    let mut v = DVector::zeros(n);
    let mut p = DVector::zeros(n);
    let mut iterations = 0usize;
    let mut restarts = 0usize;
    let mut fresh = true; // just (re)started: ρ/α/ω history is invalid

    // Deterministic restart: recompute the residual from x and rebuild the
    // Krylov process around it. Returns false once the restart budget is
    // exhausted.
    let restart = |x: &DVector,
                   r: &mut DVector,
                   r_hat: &mut DVector,
                   v: &mut DVector,
                   p: &mut DVector,
                   fresh: &mut bool,
                   restarts: &mut usize| {
        *restarts += 1;
        if *restarts > MAX_BICGSTAB_RESTARTS {
            return false;
        }
        *r = b - &a.apply(x);
        *r_hat = r.clone();
        *v = DVector::zeros(n);
        *p = DVector::zeros(n);
        *fresh = true;
        true
    };

    while iterations < options.max_iterations {
        // Overflow in α/ω or the updates can poison the recursion with
        // non-finite values; NaN compares false against every tolerance,
        // so without this guard the loop would burn the whole iteration
        // budget. Discard the poisoned iterate and restart — dropping a
        // non-finite x is safe because it carries no usable progress.
        if !r.norm().is_finite() {
            if !x.iter().all(f64::is_finite) {
                x = DVector::zeros(n);
            }
            if !restart(
                &x,
                &mut r,
                &mut r_hat,
                &mut v,
                &mut p,
                &mut fresh,
                &mut restarts,
            ) {
                return Err(LinalgError::NotConverged {
                    iterations,
                    residual: true_residual(a, &x, b),
                });
            }
            rho = 1.0;
            alpha = 1.0;
            omega = 1.0;
            continue;
        }
        let rho_new = r_hat.dot(&r);
        let rho_scale = r_hat.norm() * r.norm();
        if rho_new.abs() <= BREAKDOWN_TOL.max(f64::EPSILON * rho_scale) {
            if r.norm() <= target {
                break;
            }
            if !restart(
                &x,
                &mut r,
                &mut r_hat,
                &mut v,
                &mut p,
                &mut fresh,
                &mut restarts,
            ) {
                return Err(LinalgError::NotConverged {
                    iterations,
                    residual: true_residual(a, &x, b),
                });
            }
            rho = 1.0;
            alpha = 1.0;
            omega = 1.0;
            continue;
        }
        if fresh {
            p = r.clone();
            fresh = false;
        } else {
            let beta = (rho_new / rho) * (alpha / omega);
            // p = r + beta (p − ω v)
            p.axpy(-omega, &v);
            p.scale_mut(beta);
            p.axpy(1.0, &r);
        }
        rho = rho_new;
        let p_hat = precondition(m, &p)?;
        v = a.apply(&p_hat);
        iterations += 1;
        let denom = r_hat.dot(&v);
        if denom.abs() <= BREAKDOWN_TOL.max(f64::EPSILON * rho_scale) {
            if !restart(
                &x,
                &mut r,
                &mut r_hat,
                &mut v,
                &mut p,
                &mut fresh,
                &mut restarts,
            ) {
                return Err(LinalgError::NotConverged {
                    iterations,
                    residual: true_residual(a, &x, b),
                });
            }
            rho = 1.0;
            alpha = 1.0;
            omega = 1.0;
            continue;
        }
        alpha = rho / denom;
        // s = r − α v
        let mut s = r.clone();
        s.axpy(-alpha, &v);
        if s.norm() <= target {
            x.axpy(alpha, &p_hat);
            break;
        }
        let s_hat = precondition(m, &s)?;
        let t = a.apply(&s_hat);
        iterations += 1;
        let tt = t.dot(&t);
        if tt <= BREAKDOWN_TOL {
            x.axpy(alpha, &p_hat);
            if !restart(
                &x,
                &mut r,
                &mut r_hat,
                &mut v,
                &mut p,
                &mut fresh,
                &mut restarts,
            ) {
                return Err(LinalgError::NotConverged {
                    iterations,
                    residual: true_residual(a, &x, b),
                });
            }
            rho = 1.0;
            alpha = 1.0;
            omega = 1.0;
            continue;
        }
        omega = t.dot(&s) / tt;
        x.axpy(alpha, &p_hat);
        x.axpy(omega, &s_hat);
        r = s;
        r.axpy(-omega, &t);
        if r.norm() <= target {
            break;
        }
        if omega.abs() <= BREAKDOWN_TOL
            && !restart(
                &x,
                &mut r,
                &mut r_hat,
                &mut v,
                &mut p,
                &mut fresh,
                &mut restarts,
            )
        {
            return Err(LinalgError::NotConverged {
                iterations,
                residual: true_residual(a, &x, b),
            });
        }
        if fresh {
            rho = 1.0;
            alpha = 1.0;
            omega = 1.0;
        }
    }
    // Recursion residuals drift; judge (and report) the true residual.
    let residual = true_residual(a, &x, b);
    if residual <= 10.0 * target && residual.is_finite() {
        Ok(KrylovResult {
            solution: x,
            iterations,
            residual,
        })
    } else {
        Err(LinalgError::NotConverged {
            iterations,
            residual,
        })
    }
}

/// Solves `Ax = b` with restarted, right-preconditioned GMRES(m).
///
/// The Arnoldi least-squares problem is solved with Givens rotations; a
/// subdiagonal `h_{j+1,j}` below `HAPPY_BREAKDOWN_TOL` (relative to the
/// cycle's starting residual) is a *happy breakdown*: the Krylov subspace
/// is `A`-invariant and the projected solve is exact, so the method
/// returns immediately.
///
/// # Errors
///
/// [`LinalgError::NotSquare`] / [`LinalgError::DimensionMismatch`] /
/// [`LinalgError::InvalidInput`] for malformed systems and
/// [`LinalgError::NotConverged`] when the iteration budget runs out.
pub fn gmres(
    a: &CsrMatrix,
    b: &DVector,
    m: Option<&Ilu0>,
    options: &KrylovOptions,
) -> Result<KrylovResult, LinalgError> {
    gmres_op(a, b, m.map(|p| p as &dyn Precondition), options)
}

/// Operator-generic GMRES(m): identical algorithm to [`gmres`] over any
/// [`LinearOperator`] / [`Precondition`] pair — the matrix-free entry
/// point. [`gmres`] delegates here.
///
/// # Errors
///
/// Same contract as [`gmres`].
pub fn gmres_op(
    a: &dyn LinearOperator,
    b: &DVector,
    m: Option<&dyn Precondition>,
    options: &KrylovOptions,
) -> Result<KrylovResult, LinalgError> {
    check_system(a, b)?;
    let n = b.len();
    let b_norm = b.norm();
    let target = options.tolerance * b_norm.max(f64::MIN_POSITIVE);
    let mut x = DVector::zeros(n);
    if b_norm <= 0.0 {
        return Ok(KrylovResult {
            solution: x,
            iterations: 0,
            residual: 0.0,
        });
    }
    let restart = options.restart.clamp(1, n.max(1));
    let mut iterations = 0usize;
    while iterations < options.max_iterations {
        let mut r = b - &a.apply(&x);
        let beta = r.norm();
        if !beta.is_finite() {
            // A non-finite update poisoned the iterate; no further cycle
            // starting from it can recover, so fail fast.
            return Err(LinalgError::NotConverged {
                iterations,
                residual: beta,
            });
        }
        if beta <= target {
            break;
        }
        r.scale_mut(1.0 / beta);
        let mut basis: Vec<DVector> = vec![r];
        // Column-major Hessenberg: h[j] holds column j (length j + 2).
        let mut h: Vec<Vec<f64>> = Vec::with_capacity(restart);
        let mut cs: Vec<f64> = Vec::with_capacity(restart);
        let mut sn: Vec<f64> = Vec::with_capacity(restart);
        let mut g = vec![0.0f64; restart + 1];
        g[0] = beta;
        let mut dim = 0usize;
        let mut happy = false;
        for j in 0..restart {
            if iterations >= options.max_iterations {
                break;
            }
            let z = precondition(m, &basis[j])?;
            let mut w = a.apply(&z);
            iterations += 1;
            let mut col = vec![0.0f64; j + 2];
            for (i, v_i) in basis.iter().enumerate() {
                let hij = w.dot(v_i);
                col[i] = hij;
                w.axpy(-hij, v_i);
            }
            let h_next = w.norm();
            if !h_next.is_finite() {
                // Overflow in the preconditioner apply or the operator;
                // the cycle's basis is unusable. x is still the finite
                // cycle-start iterate, so report its true residual.
                return Err(LinalgError::NotConverged {
                    iterations,
                    residual: true_residual(a, &x, b),
                });
            }
            col[j + 1] = h_next;
            // Apply the accumulated rotations to the new column.
            for i in 0..j {
                let t = cs[i] * col[i] + sn[i] * col[i + 1];
                col[i + 1] = -sn[i] * col[i] + cs[i] * col[i + 1];
                col[i] = t;
            }
            let denom = col[j].hypot(col[j + 1]);
            let (c, s) = if denom <= f64::MIN_POSITIVE {
                (1.0, 0.0)
            } else {
                (col[j] / denom, col[j + 1] / denom)
            };
            cs.push(c);
            sn.push(s);
            col[j] = c * col[j] + s * col[j + 1];
            col[j + 1] = 0.0;
            g[j + 1] = -s * g[j];
            g[j] *= c;
            h.push(col);
            dim = j + 1;
            if h_next <= HAPPY_BREAKDOWN_TOL * beta {
                happy = true;
                break;
            }
            if g[j + 1].abs() <= target {
                break;
            }
            w.scale_mut(1.0 / h_next);
            basis.push(w);
        }
        if dim == 0 {
            break;
        }
        // Back-substitute the triangularized Hessenberg system.
        let mut y = vec![0.0f64; dim];
        for i in (0..dim).rev() {
            let mut sum = g[i];
            for (k, yk) in y.iter().enumerate().take(dim).skip(i + 1) {
                sum -= h[k][i] * yk;
            }
            y[i] = sum / h[i][i];
        }
        let mut update = DVector::zeros(n);
        for (k, yk) in y.iter().enumerate() {
            update.axpy(*yk, &basis[k]);
        }
        let update = precondition(m, &update)?;
        x.axpy(1.0, &update);
        if happy {
            break;
        }
    }
    let residual = true_residual(a, &x, b);
    if residual <= 10.0 * target && residual.is_finite() {
        Ok(KrylovResult {
            solution: x,
            iterations,
            residual,
        })
    } else {
        Err(LinalgError::NotConverged {
            iterations,
            residual,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn laplacian_1d(n: usize) -> CsrMatrix {
        let mut t = Vec::new();
        for i in 0..n {
            t.push((i, i, 2.5));
            if i > 0 {
                t.push((i, i - 1, -1.0));
            }
            if i + 1 < n {
                t.push((i, i + 1, -1.0));
            }
        }
        CsrMatrix::from_triplets(n, n, &t).unwrap()
    }

    fn nonsymmetric(n: usize) -> CsrMatrix {
        let mut t = Vec::new();
        for i in 0..n {
            t.push((i, i, 4.0 + (i % 3) as f64));
            if i > 0 {
                t.push((i, i - 1, -1.5));
            }
            if i + 1 < n {
                t.push((i, i + 1, -0.5));
            }
            if i + 7 < n {
                t.push((i, i + 7, 0.25));
            }
        }
        CsrMatrix::from_triplets(n, n, &t).unwrap()
    }

    fn residual_of(a: &CsrMatrix, x: &DVector, b: &DVector) -> f64 {
        (b - &a.mul_vec(x)).norm()
    }

    #[test]
    fn ilu0_is_exact_for_triangular_matrices() {
        let a =
            CsrMatrix::from_triplets(3, 3, &[(0, 0, 2.0), (0, 1, 1.0), (1, 1, 4.0), (2, 2, 8.0)])
                .unwrap();
        let m = Ilu0::new(&a).unwrap();
        let b = DVector::from_vec(vec![3.0, 4.0, 8.0]);
        let x = m.apply(&b).unwrap();
        assert!(residual_of(&a, &x, &b) < 1e-12);
    }

    #[test]
    fn ilu0_keeps_the_input_pattern() {
        let a = nonsymmetric(40);
        let m = Ilu0::new(&a).unwrap();
        assert_eq!(m.nnz(), a.nnz());
    }

    #[test]
    fn ilu0_rejects_missing_diagonal() {
        let a = CsrMatrix::from_triplets(2, 2, &[(0, 0, 1.0), (1, 0, 1.0)]).unwrap();
        match Ilu0::new(&a) {
            Err(LinalgError::Singular { pivot }) => assert_eq!(pivot, 1),
            other => panic!("expected Singular, got {other:?}"),
        }
    }

    #[test]
    fn ilu0_rejects_numerically_singular_pivot() {
        // Row 1 becomes exactly zero after eliminating with row 0.
        let a =
            CsrMatrix::from_triplets(2, 2, &[(0, 0, 1.0), (0, 1, 2.0), (1, 0, 2.0), (1, 1, 4.0)])
                .unwrap();
        assert!(matches!(Ilu0::new(&a), Err(LinalgError::Singular { .. })));
    }

    #[test]
    fn bicgstab_solves_a_spd_system() {
        let a = laplacian_1d(64);
        let b = DVector::from_fn(64, |i| 1.0 + (i % 5) as f64);
        let m = Ilu0::new(&a).unwrap();
        let out = bicgstab(&a, &b, Some(&m), &KrylovOptions::default()).unwrap();
        assert!(out.residual <= 1e-10 * b.norm());
        assert!(residual_of(&a, &out.solution, &b) <= 1e-10 * b.norm());
    }

    #[test]
    fn bicgstab_solves_a_nonsymmetric_system_unpreconditioned() {
        let a = nonsymmetric(80);
        let b = DVector::from_fn(80, |i| (i as f64).sin());
        let out = bicgstab(&a, &b, None, &KrylovOptions::default()).unwrap();
        assert!(residual_of(&a, &out.solution, &b) <= 1e-9 * b.norm());
    }

    #[test]
    fn gmres_solves_a_nonsymmetric_system() {
        let a = nonsymmetric(80);
        let b = DVector::from_fn(80, |i| 1.0 / (1.0 + i as f64));
        let m = Ilu0::new(&a).unwrap();
        let out = gmres(&a, &b, Some(&m), &KrylovOptions::default()).unwrap();
        assert!(residual_of(&a, &out.solution, &b) <= 1e-10 * b.norm());
    }

    #[test]
    fn gmres_happy_breakdown_on_identity() {
        let n = 10;
        let t: Vec<(usize, usize, f64)> = (0..n).map(|i| (i, i, 1.0)).collect();
        let a = CsrMatrix::from_triplets(n, n, &t).unwrap();
        let b = DVector::from_fn(n, |i| i as f64 + 1.0);
        let out = gmres(&a, &b, None, &KrylovOptions::default()).unwrap();
        // One matvec: the first Arnoldi step is already invariant.
        assert_eq!(out.iterations, 1);
        assert!(residual_of(&a, &out.solution, &b) <= 1e-12 * b.norm());
    }

    #[test]
    fn gmres_respects_restart_lengths() {
        let a = nonsymmetric(60);
        let b = DVector::from_fn(60, |i| ((i * 7) % 11) as f64 - 5.0);
        let opts = KrylovOptions {
            restart: 5,
            ..KrylovOptions::default()
        };
        let out = gmres(&a, &b, None, &opts).unwrap();
        assert!(residual_of(&a, &out.solution, &b) <= 1e-9 * b.norm());
    }

    #[test]
    fn zero_rhs_returns_zero_immediately() {
        let a = laplacian_1d(8);
        let b = DVector::zeros(8);
        let out = bicgstab(&a, &b, None, &KrylovOptions::default()).unwrap();
        assert_eq!(out.iterations, 0);
        assert!(out.solution.iter().all(|v| v == 0.0));
        let out = gmres(&a, &b, None, &KrylovOptions::default()).unwrap();
        assert_eq!(out.iterations, 0);
    }

    #[test]
    fn singular_system_reports_not_converged_not_panic() {
        // Rank-deficient: second row is a multiple of the first, and the
        // right-hand side is inconsistent.
        let a =
            CsrMatrix::from_triplets(2, 2, &[(0, 0, 1.0), (0, 1, 1.0), (1, 0, 2.0), (1, 1, 2.0)])
                .unwrap();
        let b = DVector::from_vec(vec![1.0, 0.0]);
        let opts = KrylovOptions {
            max_iterations: 50,
            ..KrylovOptions::default()
        };
        assert!(matches!(
            bicgstab(&a, &b, None, &opts),
            Err(LinalgError::NotConverged { .. })
        ));
        assert!(matches!(
            gmres(&a, &b, None, &opts),
            Err(LinalgError::NotConverged { .. })
        ));
    }

    #[test]
    fn bicgstab_rho_breakdown_restarts_deterministically() {
        // A skew-symmetric-dominant system drives ρ toward zero quickly;
        // the solve must either converge or fail cleanly — and twice in a
        // row it must produce bit-identical output.
        let a = CsrMatrix::from_triplets(
            4,
            4,
            &[
                (0, 1, 1.0),
                (1, 0, -1.0),
                (2, 3, 1.0),
                (3, 2, -1.0),
                (0, 0, 1e-8),
                (1, 1, 1e-8),
                (2, 2, 1e-8),
                (3, 3, 1e-8),
            ],
        )
        .unwrap();
        let b = DVector::from_vec(vec![1.0, 2.0, 3.0, 4.0]);
        let opts = KrylovOptions {
            max_iterations: 200,
            ..KrylovOptions::default()
        };
        let first = bicgstab(&a, &b, None, &opts);
        let second = bicgstab(&a, &b, None, &opts);
        assert_eq!(first, second);
        if let Ok(out) = first {
            assert!(residual_of(&a, &out.solution, &b) <= 1e-8 * b.norm());
        }
    }

    #[test]
    fn results_are_bit_identical_across_runs() {
        let a = nonsymmetric(50);
        let b = DVector::from_fn(50, |i| (i as f64 * 0.37).cos());
        let m = Ilu0::new(&a).unwrap();
        let r1 = bicgstab(&a, &b, Some(&m), &KrylovOptions::default()).unwrap();
        let r2 = bicgstab(&a, &b, Some(&m), &KrylovOptions::default()).unwrap();
        assert_eq!(r1, r2);
        let g1 = gmres(&a, &b, Some(&m), &KrylovOptions::default()).unwrap();
        let g2 = gmres(&a, &b, Some(&m), &KrylovOptions::default()).unwrap();
        assert_eq!(g1, g2);
    }

    #[test]
    fn dimension_mismatches_are_rejected() {
        let a = laplacian_1d(4);
        let b = DVector::zeros(5);
        assert!(matches!(
            bicgstab(&a, &b, None, &KrylovOptions::default()),
            Err(LinalgError::DimensionMismatch { .. })
        ));
        let m = Ilu0::new(&a).unwrap();
        assert!(matches!(
            m.apply(&b),
            Err(LinalgError::DimensionMismatch { .. })
        ));
    }
}
