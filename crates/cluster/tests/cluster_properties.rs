//! Property pins for the cluster layer.
//!
//! Two invariants carry the whole construction:
//!
//! 1. the multiset index is a bijection (`rank ∘ unrank = id` and the
//!    multiplicities tile the joint space), and
//! 2. the exchangeability lumping is *exact*: refining the lumped
//!    stationary distribution uniformly over each occupancy class
//!    reproduces the joint distribution computed matrix-free on the full
//!    `n^K` space.

use dpm_cluster::{
    solve_joint_matrix_free, solve_lumped, ClusterModel, CouplingTerm, JointOptions, MultisetIndex,
};
use dpm_ctmc::SparseGenerator;
use dpm_linalg::CsrMatrix;
use proptest::prelude::*;

/// Random irreducible local generator on `n` states: a full cycle plus
/// random extra transitions, all with rates in (0, 5].
fn local_chain(n: usize) -> impl Strategy<Value = SparseGenerator> {
    (
        prop::collection::vec(1usize..=50, n),
        prop::collection::vec(1usize..=50, n * n),
    )
        .prop_map(move |(cycle, extra)| {
            let mut transitions = Vec::new();
            for (i, &r) in cycle.iter().enumerate() {
                transitions.push((i, (i + 1) % n, r as f64 / 10.0));
            }
            for (k, &r) in extra.iter().enumerate() {
                let (i, j) = (k / n, k % n);
                // Keep the extra rates sparse-ish and skip self-loops.
                if i != j && r <= 12 {
                    transitions.push((i, j, r as f64 / 10.0));
                }
            }
            SparseGenerator::from_transitions(n, &transitions).expect("valid transitions")
        })
}

/// Random work-stealing-shaped coupling on `n` states: the donor moves
/// down one state while the receiver moves up one.
fn coupling(n: usize) -> impl Strategy<Value = Option<CouplingTerm>> {
    (0usize..3, 1usize..=20).prop_map(move |(kind, rate)| {
        if kind == 0 || n < 2 {
            return None;
        }
        let donor = CsrMatrix::from_triplets(n, n, &[(n - 1, n - 2, 1.0)]).expect("donor");
        let receiver = CsrMatrix::from_triplets(n, n, &[(0, 1, 1.0)]).expect("receiver");
        Some(CouplingTerm::new(rate as f64 / 10.0, donor, receiver).expect("coupling"))
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn multiset_rank_unrank_round_trips(
        (n, k) in (1usize..6, 1usize..7)
    ) {
        let idx = MultisetIndex::new(n, k).expect("index");
        let mut total = 0.0;
        for r in 0..idx.len() {
            let counts = idx.unrank(r).expect("unrank");
            prop_assert_eq!(counts.iter().sum::<usize>(), k);
            prop_assert_eq!(idx.rank(&counts).expect("rank"), r);
            total += idx.multiplicity(&counts).expect("multiplicity");
        }
        // The occupancy classes tile the joint tuple space exactly.
        prop_assert!((total - (n as f64).powi(k as i32)).abs() < 1e-6);
    }

    #[test]
    fn joint_tuples_decode_onto_their_class(
        (n, k, tuple_bits) in (2usize..4, 2usize..4, prop::collection::vec(0usize..64, 4))
    ) {
        let idx = MultisetIndex::new(n, k).expect("index");
        let dim = n.pow(k as u32);
        for &bits in &tuple_bits {
            let joint = bits % dim;
            let counts = idx.counts_of_joint(joint).expect("decode");
            prop_assert_eq!(counts.iter().sum::<usize>(), k);
            // Rank must be in range — the decoded class is a real class.
            prop_assert!(idx.rank(&counts).expect("rank") < idx.len());
        }
    }
}

proptest! {
    // The refinement pin solves two stationary systems per case; keep the
    // case count moderate.
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn lumped_refinement_reproduces_joint_distribution(
        (model_parts, k) in (2usize..4)
            .prop_flat_map(|n| ((local_chain(n), coupling(n)), 2usize..4))
    ) {
        let (local, maybe_coupling) = model_parts;
        let mut model = ClusterModel::new(local, k).expect("model");
        if let Some(term) = maybe_coupling {
            model = model.with_coupling(term).expect("coupling fits");
        }
        let lumped = solve_lumped(&model).expect("lumped solve");
        let joint = solve_joint_matrix_free(&model, &JointOptions::default())
            .expect("joint solve");
        let refined = lumped.refine_joint().expect("refine");
        prop_assert_eq!(refined.len(), joint.pi().len());
        for x in 0..refined.len() {
            prop_assert!(
                (refined[x] - joint.pi()[x]).abs() < 1e-8,
                "tuple {} disagrees: lumped-refined {} vs joint {}",
                x,
                refined[x],
                joint.pi()[x]
            );
        }
    }
}
