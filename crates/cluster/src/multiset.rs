//! Multiset (occupancy) indexing for exchangeable server fleets.
//!
//! K statistically identical servers, each with `n` local states, have a
//! joint state space of `n^K` tuples, but exchangeability means only the
//! *occupancy vector* — how many servers sit in each local state — affects
//! the dynamics. This module gives the occupancy space a dense stable
//! index, the cluster-layer analogue of the mixed-radix state index the
//! serving runtime uses for compiled policies: ranks are assigned by
//! lexicographic order of the count vector, so the mapping is reproducible
//! across processes and releases.
//!
//! The space has `C(n + K - 1, K)` points (stars and bars) — for 8 servers
//! with 6 local states that is 1 287 occupancies standing in for 1 679 616
//! joint tuples.

use crate::error::ClusterError;

/// Number of ways to distribute `r` indistinguishable balls over `m`
/// distinguishable boxes: `C(m + r - 1, r)`. Computed in `u128` and
/// range-checked on the way out so callers never see a silent wrap.
fn compositions(m: usize, r: usize) -> Result<usize, ClusterError> {
    if m == 0 {
        // Zero boxes hold zero balls exactly one way, anything else zero
        // ways.
        return Ok(usize::from(r == 0));
    }
    let mut acc: u128 = 1;
    for i in 1..=r {
        let numer = (m - 1 + i) as u128;
        acc = acc
            .checked_mul(numer)
            .ok_or_else(|| ClusterError::StateSpace {
                reason: format!("C({}, {r}) overflows u128", m + r - 1),
            })?;
        // The running product of i consecutive binomial steps is always
        // divisible by i, so this division is exact.
        acc /= i as u128;
    }
    usize::try_from(acc).map_err(|_| ClusterError::StateSpace {
        reason: format!("C({}, {r}) exceeds usize", m + r - 1),
    })
}

/// Dense stable index over occupancy vectors of `k` servers across
/// `n_local` local states.
///
/// Ranks follow lexicographic order of the count vector `(c_0, …,
/// c_{n-1})`: rank 0 is `(0, …, 0, k)` (all servers in the last local
/// state) and the final rank is `(k, 0, …, 0)`.
///
/// # Examples
///
/// ```
/// use dpm_cluster::MultisetIndex;
///
/// # fn main() -> Result<(), dpm_cluster::ClusterError> {
/// let idx = MultisetIndex::new(3, 2)?;
/// assert_eq!(idx.len(), 6); // C(4, 2)
/// let counts = idx.unrank(idx.rank(&[1, 0, 1])?)?;
/// assert_eq!(counts, vec![1, 0, 1]);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone)]
pub struct MultisetIndex {
    n_local: usize,
    k: usize,
    len: usize,
}

impl MultisetIndex {
    /// Builds the index for `k` servers over `n_local` local states.
    ///
    /// # Errors
    ///
    /// [`ClusterError::InvalidModel`] for an empty local space or zero
    /// servers; [`ClusterError::StateSpace`] if the occupancy count
    /// overflows `usize`.
    pub fn new(n_local: usize, k: usize) -> Result<MultisetIndex, ClusterError> {
        if n_local == 0 {
            return Err(ClusterError::InvalidModel {
                reason: "local state space is empty".to_owned(),
            });
        }
        if k == 0 {
            return Err(ClusterError::InvalidModel {
                reason: "cluster has zero servers".to_owned(),
            });
        }
        let len = compositions(n_local, k)?;
        Ok(MultisetIndex { n_local, k, len })
    }

    /// Number of local states per server.
    #[must_use]
    pub fn n_local(&self) -> usize {
        self.n_local
    }

    /// Number of servers.
    #[must_use]
    pub fn k(&self) -> usize {
        self.k
    }

    /// Number of occupancy vectors (`C(n_local + k - 1, k)`).
    #[must_use]
    pub fn len(&self) -> usize {
        self.len
    }

    /// Always `false`: the constructor rejects empty spaces.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Rank of an occupancy vector.
    ///
    /// # Errors
    ///
    /// [`ClusterError::StateSpace`] if `counts` has the wrong length or
    /// does not sum to `k`.
    pub fn rank(&self, counts: &[usize]) -> Result<usize, ClusterError> {
        if counts.len() != self.n_local {
            return Err(ClusterError::StateSpace {
                reason: format!(
                    "occupancy vector has {} entries, index covers {}",
                    counts.len(),
                    self.n_local
                ),
            });
        }
        let total: usize = counts.iter().sum();
        if total != self.k {
            return Err(ClusterError::StateSpace {
                reason: format!("occupancy sums to {total}, cluster has {} servers", self.k),
            });
        }
        let mut rank = 0usize;
        let mut rem = self.k;
        for (i, &c) in counts.iter().enumerate().take(self.n_local - 1) {
            // Vectors that agree on the prefix but hold fewer servers in
            // state `i` precede this one; each choice of `v < c` leaves
            // `rem - v` servers for the remaining states.
            for v in 0..c {
                rank += compositions(self.n_local - 1 - i, rem - v)?;
            }
            rem -= c;
        }
        Ok(rank)
    }

    /// Occupancy vector of a rank.
    ///
    /// # Errors
    ///
    /// [`ClusterError::StateSpace`] if `rank >= len()`.
    pub fn unrank(&self, rank: usize) -> Result<Vec<usize>, ClusterError> {
        if rank >= self.len {
            return Err(ClusterError::StateSpace {
                reason: format!("rank {rank} out of range for {} occupancies", self.len),
            });
        }
        let mut counts = vec![0usize; self.n_local];
        let mut rest = rank;
        let mut rem = self.k;
        let last = self.n_local - 1;
        for (i, slot) in counts.iter_mut().enumerate().take(last) {
            let mut v = 0usize;
            loop {
                let block = compositions(last - i, rem - v)?;
                if rest < block {
                    break;
                }
                rest -= block;
                v += 1;
            }
            *slot = v;
            rem -= v;
        }
        counts[last] = rem;
        Ok(counts)
    }

    /// Number of joint tuples collapsing onto an occupancy vector: the
    /// multinomial `k! / Π c_s!`, as `f64` (exact for every fleet size
    /// whose joint space fits in memory).
    ///
    /// # Errors
    ///
    /// [`ClusterError::StateSpace`] if `counts` is malformed or the
    /// multinomial overflows `u128`.
    pub fn multiplicity(&self, counts: &[usize]) -> Result<f64, ClusterError> {
        if counts.len() != self.n_local || counts.iter().sum::<usize>() != self.k {
            return Err(ClusterError::StateSpace {
                reason: "occupancy vector malformed for multiplicity".to_owned(),
            });
        }
        // Multinomial as a product of binomials: k! / Π c_i! =
        // Π C(c_0 + … + c_i, c_i), each factor exact in u128.
        let mut acc: u128 = 1;
        let mut placed = 0usize;
        for &c in counts {
            placed += c;
            let mut binom: u128 = 1;
            for j in 1..=c {
                binom = binom.checked_mul((placed - c + j) as u128).ok_or_else(|| {
                    ClusterError::StateSpace {
                        reason: "multiplicity overflows u128".to_owned(),
                    }
                })?;
                binom /= j as u128;
            }
            acc = acc
                .checked_mul(binom)
                .ok_or_else(|| ClusterError::StateSpace {
                    reason: "multiplicity overflows u128".to_owned(),
                })?;
        }
        Ok(acc as f64)
    }

    /// Occupancy vector of a joint mixed-radix tuple index (axis 0 varies
    /// slowest, matching the Kronecker layout).
    ///
    /// # Errors
    ///
    /// [`ClusterError::StateSpace`] if the tuple index is out of range.
    pub fn counts_of_joint(&self, joint: usize) -> Result<Vec<usize>, ClusterError> {
        let dim = self.n_local.checked_pow(u32::try_from(self.k).map_err(|_| {
            ClusterError::StateSpace {
                reason: format!("fleet size {} exceeds u32", self.k),
            }
        })?);
        let dim = dim.ok_or_else(|| ClusterError::StateSpace {
            reason: format!("joint space {}^{} overflows usize", self.n_local, self.k),
        })?;
        if joint >= dim {
            return Err(ClusterError::StateSpace {
                reason: format!("joint index {joint} out of range for {dim} tuples"),
            });
        }
        let mut counts = vec![0usize; self.n_local];
        let mut rest = joint;
        for _ in 0..self.k {
            counts[rest % self.n_local] += 1;
            rest /= self.n_local;
        }
        Ok(counts)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn stars_and_bars_sizes() {
        assert_eq!(MultisetIndex::new(3, 2).unwrap().len(), 6);
        assert_eq!(MultisetIndex::new(6, 8).unwrap().len(), 1287);
        assert_eq!(MultisetIndex::new(1, 5).unwrap().len(), 1);
    }

    #[test]
    fn rank_is_lexicographic() {
        let idx = MultisetIndex::new(3, 2).unwrap();
        // Lexicographic ascending on (c0, c1, c2).
        let expected = [
            vec![0, 0, 2],
            vec![0, 1, 1],
            vec![0, 2, 0],
            vec![1, 0, 1],
            vec![1, 1, 0],
            vec![2, 0, 0],
        ];
        for (r, counts) in expected.iter().enumerate() {
            assert_eq!(idx.rank(counts).unwrap(), r);
            assert_eq!(&idx.unrank(r).unwrap(), counts);
        }
    }

    #[test]
    fn round_trip_all_ranks() {
        let idx = MultisetIndex::new(4, 5).unwrap();
        for r in 0..idx.len() {
            let counts = idx.unrank(r).unwrap();
            assert_eq!(counts.iter().sum::<usize>(), 5);
            assert_eq!(idx.rank(&counts).unwrap(), r);
        }
    }

    #[test]
    fn multiplicities_sum_to_joint_space() {
        let idx = MultisetIndex::new(3, 4).unwrap();
        let mut total = 0.0;
        for r in 0..idx.len() {
            total += idx.multiplicity(&idx.unrank(r).unwrap()).unwrap();
        }
        let joint = 3f64.powi(4);
        assert!((total - joint).abs() < 1e-9);
    }

    #[test]
    fn joint_decode_counts_digits() {
        let idx = MultisetIndex::new(3, 2).unwrap();
        // Joint tuple (s0, s1) = (2, 1) has index 2*3 + 1 = 7.
        assert_eq!(idx.counts_of_joint(7).unwrap(), vec![0, 1, 1]);
        assert_eq!(idx.counts_of_joint(0).unwrap(), vec![2, 0, 0]);
    }

    #[test]
    fn malformed_inputs_are_rejected() {
        let idx = MultisetIndex::new(3, 2).unwrap();
        assert!(idx.rank(&[1, 1]).is_err());
        assert!(idx.rank(&[3, 0, 0]).is_err());
        assert!(idx.unrank(6).is_err());
        assert!(idx.counts_of_joint(9).is_err());
        assert!(MultisetIndex::new(0, 2).is_err());
        assert!(MultisetIndex::new(2, 0).is_err());
    }
}
