//! Exchangeability lumping: the occupancy-space chain and its exact
//! refinement back to the joint distribution.
//!
//! Because every server shares the local generator and every ordered pair
//! shares the coupling terms, permuting server identities leaves the joint
//! chain's law unchanged. The occupancy map `m(x) = (how many servers of
//! x sit in each local state)` is therefore a strong lumping: the induced
//! process on occupancy vectors is itself a CTMC, with
//!
//! * local moves `s → t` at rate `c_s · q(s, t)` (any of the `c_s`
//!   servers in state `s` fires), and
//! * coupled moves `(a, b) → (a', b')` at rate
//!   `γ · D[a, a'] · R[b, b'] · pairs(a, b)` where `pairs` counts ordered
//!   server pairs: `c_a · c_b` for `a ≠ b` and `c_a · (c_a − 1)` for
//!   `a = b`.
//!
//! The lumped space has `C(n + K − 1, K)` states against the joint `n^K`
//! — 1 287 against 1 679 616 at `n = 6, K = 8` — and the joint
//! distribution is recovered exactly: symmetry makes `π` uniform on each
//! occupancy class, so `π_joint(x) = π_lumped(m(x)) / multiplicity(m(x))`.
//! The property tests pin that refinement against the matrix-free joint
//! solve at small `K`.

use std::collections::BTreeMap;

use dpm_ctmc::stationary::{Method, SolveStats, Solver};
use dpm_ctmc::SparseGenerator;
use dpm_linalg::DVector;

use crate::error::ClusterError;
use crate::model::ClusterModel;
use crate::multiset::MultisetIndex;

/// Builds the occupancy-space generator of the fleet.
///
/// # Errors
///
/// Propagates indexing and generator-validation failures.
pub fn lumped_generator(
    model: &ClusterModel,
) -> Result<(MultisetIndex, SparseGenerator), ClusterError> {
    let index = model.multiset_index()?;
    // BTreeMap keeps accumulation order deterministic across runs.
    let mut rates: BTreeMap<(usize, usize), f64> = BTreeMap::new();
    for from in 0..index.len() {
        let counts = index.unrank(from)?;
        // Local moves: one of the c_s servers in state s jumps s -> t.
        for (s, &c_s) in counts.iter().enumerate() {
            if c_s == 0 {
                continue;
            }
            for (t, q) in model.local().csr().row(s) {
                if t == s || q <= 0.0 {
                    continue;
                }
                let mut next = counts.clone();
                next[s] -= 1;
                next[t] += 1;
                let to = index.rank(&next)?;
                *rates.entry((from, to)).or_insert(0.0) += c_s as f64 * q;
            }
        }
        // Coupled moves: an ordered (donor, receiver) pair of distinct
        // servers fires one interaction term.
        for term in model.couplings() {
            for (a, a2, dv) in term.donor().iter() {
                for (b, b2, rv) in term.receiver().iter() {
                    let pairs = if a == b {
                        counts[a] * counts[a].saturating_sub(1)
                    } else {
                        counts[a] * counts[b]
                    };
                    if pairs == 0 {
                        continue;
                    }
                    let mut next = counts.clone();
                    next[a] -= 1;
                    next[b] -= 1;
                    next[a2] += 1;
                    next[b2] += 1;
                    if next == counts {
                        // The joint chain moves but the occupancy does
                        // not (e.g. two servers swap states); in the
                        // lumped chain this is a self-loop with no effect
                        // on the stationary law.
                        continue;
                    }
                    let to = index.rank(&next)?;
                    *rates.entry((from, to)).or_insert(0.0) += term.rate() * dv * rv * pairs as f64;
                }
            }
        }
    }
    let transitions: Vec<(usize, usize, f64)> = rates
        .into_iter()
        .map(|((from, to), rate)| (from, to, rate))
        .collect();
    let generator = SparseGenerator::from_transitions(index.len(), &transitions)?;
    Ok((index, generator))
}

/// A solved occupancy-space chain.
#[derive(Debug, Clone)]
pub struct LumpedSolution {
    index: MultisetIndex,
    pi: DVector,
    stats: SolveStats,
    generator_bytes: usize,
}

impl LumpedSolution {
    /// The occupancy index mapping ranks to count vectors.
    #[must_use]
    pub fn index(&self) -> &MultisetIndex {
        &self.index
    }

    /// Stationary distribution over occupancy ranks.
    #[must_use]
    pub fn pi(&self) -> &DVector {
        &self.pi
    }

    /// Stationary-solver statistics (method, iterations, escalations).
    #[must_use]
    pub fn stats(&self) -> &SolveStats {
        &self.stats
    }

    /// Bytes of the lumped generator's CSR storage — the only matrix the
    /// lumped pipeline ever materializes.
    #[must_use]
    pub fn generator_bytes(&self) -> usize {
        self.generator_bytes
    }

    /// Exact joint probability of one `n^K` tuple: the occupancy class
    /// mass split uniformly over its `multiplicity` members.
    ///
    /// # Errors
    ///
    /// Propagates index-decoding failures for an out-of-range tuple.
    pub fn joint_probability(&self, joint: usize) -> Result<f64, ClusterError> {
        let counts = self.index.counts_of_joint(joint)?;
        let rank = self.index.rank(&counts)?;
        Ok(self.pi[rank] / self.index.multiplicity(&counts)?)
    }

    /// Materializes the full refined joint distribution. Only sensible at
    /// small `K` — the vector has `n^K` entries.
    ///
    /// # Errors
    ///
    /// [`ClusterError::StateSpace`] when `n^K` overflows `usize`.
    pub fn refine_joint(&self) -> Result<DVector, ClusterError> {
        let exp = u32::try_from(self.index.k()).map_err(|_| ClusterError::StateSpace {
            reason: format!("fleet size {} exceeds u32", self.index.k()),
        })?;
        let dim =
            self.index
                .n_local()
                .checked_pow(exp)
                .ok_or_else(|| ClusterError::StateSpace {
                    reason: format!(
                        "joint space {}^{} overflows usize",
                        self.index.n_local(),
                        self.index.k()
                    ),
                })?;
        let mut pi = DVector::zeros(dim);
        for x in 0..dim {
            pi[x] = self.joint_probability(x)?;
        }
        Ok(pi)
    }

    /// Expected number of servers in each local state under stationarity.
    #[must_use]
    pub fn mean_occupancy(&self) -> Vec<f64> {
        let n = self.index.n_local();
        let mut mean = vec![0.0f64; n];
        for rank in 0..self.index.len() {
            // Ranks below len always unrank.
            if let Ok(counts) = self.index.unrank(rank) {
                for (s, &c) in counts.iter().enumerate() {
                    mean[s] += self.pi[rank] * c as f64;
                }
            }
        }
        mean
    }
}

/// Builds and solves the occupancy-space chain through the stock
/// [`Solver`] builder (Krylov first with the full fallback ladder; the
/// irreducibility guard reroutes reducible fleets to Gauss–Seidel).
///
/// # Errors
///
/// Propagates generator construction and solver failures.
pub fn solve_lumped(model: &ClusterModel) -> Result<LumpedSolution, ClusterError> {
    let (index, generator) = lumped_generator(model)?;
    let word = std::mem::size_of::<f64>();
    let generator_bytes = generator.nnz() * 2 * word + (generator.n_states() + 1) * word;
    let (pi, stats) = Solver::new(Method::BiCgStab)
        .with_default_fallback()
        .solve(&generator)?;
    Ok(LumpedSolution {
        index,
        pi,
        stats,
        generator_bytes,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use dpm_linalg::CsrMatrix;

    use crate::joint::{solve_joint_matrix_free, JointOptions};
    use crate::model::CouplingTerm;

    fn mm1k(n: usize, lambda: f64, mu: f64) -> SparseGenerator {
        let mut transitions = Vec::new();
        for i in 0..n - 1 {
            transitions.push((i, i + 1, lambda));
            transitions.push((i + 1, i, mu));
        }
        SparseGenerator::from_transitions(n, &transitions).unwrap()
    }

    fn coupled_fleet(k: usize) -> ClusterModel {
        let donor = CsrMatrix::from_triplets(3, 3, &[(2, 1, 1.0), (1, 0, 0.5)]).unwrap();
        let receiver = CsrMatrix::from_triplets(3, 3, &[(0, 1, 1.0), (1, 2, 0.5)]).unwrap();
        ClusterModel::new(mm1k(3, 1.0, 2.0), k)
            .unwrap()
            .with_coupling(CouplingTerm::new(0.4, donor, receiver).unwrap())
            .unwrap()
    }

    #[test]
    fn lumped_state_count_is_stars_and_bars() {
        let (index, generator) = lumped_generator(&coupled_fleet(4)).unwrap();
        assert_eq!(index.len(), 15); // C(6, 4)
        assert_eq!(generator.n_states(), 15);
    }

    #[test]
    fn refinement_matches_joint_solve_independent() {
        let model = ClusterModel::new(mm1k(3, 1.0, 2.0), 3).unwrap();
        let lumped = solve_lumped(&model).unwrap();
        let joint = solve_joint_matrix_free(&model, &JointOptions::default()).unwrap();
        let refined = lumped.refine_joint().unwrap();
        for x in 0..refined.len() {
            assert!(
                (refined[x] - joint.pi()[x]).abs() < 1e-9,
                "tuple {x}: {} vs {}",
                refined[x],
                joint.pi()[x]
            );
        }
    }

    #[test]
    fn refinement_matches_joint_solve_coupled() {
        let model = coupled_fleet(3);
        let lumped = solve_lumped(&model).unwrap();
        let joint = solve_joint_matrix_free(&model, &JointOptions::default()).unwrap();
        let refined = lumped.refine_joint().unwrap();
        for x in 0..refined.len() {
            assert!(
                (refined[x] - joint.pi()[x]).abs() < 1e-9,
                "tuple {x}: {} vs {}",
                refined[x],
                joint.pi()[x]
            );
        }
    }

    #[test]
    fn large_fleet_solves_in_lumped_space_only() {
        // 6 local states, 8 servers: joint space 1 679 616 > 10^6, lumped
        // space C(13, 8) = 1 287.
        let model = coupled_fleet_six(8);
        let lumped = solve_lumped(&model).unwrap();
        assert_eq!(lumped.index().len(), 1287);
        assert!(model.joint_states().unwrap() > 1_000_000);
        let mass: f64 = (0..lumped.pi().len()).map(|i| lumped.pi()[i]).sum();
        assert!((mass - 1.0).abs() < 1e-9);
        // Mean occupancies sum to the fleet size.
        let total: f64 = lumped.mean_occupancy().iter().sum();
        assert!((total - 8.0).abs() < 1e-6);
    }

    fn coupled_fleet_six(k: usize) -> ClusterModel {
        let donor = CsrMatrix::from_triplets(6, 6, &[(5, 4, 1.0), (4, 3, 0.5)]).unwrap();
        let receiver = CsrMatrix::from_triplets(6, 6, &[(0, 1, 1.0), (1, 2, 0.5)]).unwrap();
        ClusterModel::new(mm1k(6, 2.0, 3.0), k)
            .unwrap()
            .with_coupling(CouplingTerm::new(0.25, donor, receiver).unwrap())
            .unwrap()
    }
}
