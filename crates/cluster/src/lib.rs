//! Kronecker-factored cluster solver for K-server fleets.
//!
//! The single-machine layers of the workspace analyze one power-managed
//! server. This crate scales the analysis to a *fleet* of `K`
//! statistically identical servers without ever paying for the `n^K`
//! joint state space twice over:
//!
//! * [`ClusterModel`] — shared local generator plus pairwise
//!   [`CouplingTerm`] interactions, compiled to an implicit
//!   [`KroneckerOp`](dpm_linalg::KroneckerOp) whose storage is
//!   factor-sized;
//! * [`joint`] — matrix-free stationary analysis of the joint chain:
//!   the Krylov tier runs against the implicit operator with a
//!   trailing-axis block-Jacobi preconditioner, gated at small `K`
//!   against a materialized twin solve;
//! * [`MultisetIndex`] / [`lumped`] — exchangeability lumping onto
//!   occupancy vectors (`C(n+K−1, K)` states), solved through the stock
//!   stationary ladder and refined *exactly* back to the joint
//!   distribution;
//! * [`twolevel`] — a two-level controller: per-server CTMDP policies
//!   swept in parallel over `(load level, active count)`, coordinated by
//!   a cluster-level CTMDP that decides when to wake or park servers.
//!
//! # Example
//!
//! ```
//! use dpm_cluster::{solve_lumped, ClusterModel};
//! use dpm_ctmc::SparseGenerator;
//!
//! # fn main() -> Result<(), dpm_cluster::ClusterError> {
//! let local = SparseGenerator::from_transitions(2, &[(0, 1, 1.0), (1, 0, 2.0)])?;
//! let fleet = ClusterModel::new(local, 8)?;
//! let solution = solve_lumped(&fleet)?;
//! // 9 occupancy states stand in for 256 joint tuples.
//! assert_eq!(solution.index().len(), 9);
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod error;
pub mod joint;
pub mod lumped;
mod model;
mod multiset;
pub mod twolevel;

pub use error::ClusterError;
pub use joint::{
    solve_joint_materialized, solve_joint_matrix_free, JointMethod, JointOptions, JointSolution,
    MaterializedSolution,
};
pub use lumped::{lumped_generator, solve_lumped, LumpedSolution};
pub use model::{ClusterModel, CouplingTerm};
pub use multiset::MultisetIndex;
pub use twolevel::{solve_two_level, ClusterSpec, TwoLevelSolution};

/// Schema identifier of the cluster scaling-bench artifact
/// (`results/BENCH_cluster.json`).
pub const CLUSTER_BENCH_FORMAT: &str = "dpm-cluster-bench/v1";
