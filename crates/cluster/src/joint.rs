//! Matrix-free stationary analysis of the joint fleet chain.
//!
//! The joint generator of a K-server fleet lives on `n^K` states; even at
//! `n = 6, K = 8` its materialized CSR form holds tens of millions of
//! entries, while the [`KroneckerOp`] form holds a few hundred factor
//! entries. This module solves `πG = 0, Σπ = 1` against the implicit
//! operator: the normalization-row system of `dpm-ctmc`'s Krylov tier is
//! rebuilt matrix-free (transpose the operator, equilibrate rows by the
//! diagonal, overwrite the last row with the normalization constraint) and
//! handed to the matrix-free BiCGSTAB / GMRES entry points with a
//! block-Jacobi preconditioner assembled from the operator's trailing
//! tensor axis.
//!
//! [`solve_joint_materialized`] is the self-check twin: it materializes
//! the same operator into a [`SparseGenerator`] and routes it through the
//! stock [`Solver`] builder. The scaling bench gates the two paths against
//! each other at small `K` before trusting the matrix-free numbers at
//! fleet scale.

use dpm_ctmc::stationary::{Method, Solver};
use dpm_ctmc::SparseGenerator;
use dpm_linalg::krylov::{bicgstab_op, gmres_op, KrylovOptions};
use dpm_linalg::{BlockJacobi, DVector, KroneckerOp, LinearOperator, Precondition};

use crate::error::ClusterError;
use crate::model::ClusterModel;

/// Krylov refinement sweeps after the initial matrix-free solve, matching
/// the refinement depth of the CSR-backed Krylov tier.
const REFINEMENT_STEPS: usize = 2;

/// Magnitude below which a negative stationary entry is treated as
/// round-off and clamped to zero.
const NEGATIVE_MASS_TOL: f64 = 1e-9;

/// Which Krylov method drives the matrix-free solve.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum JointMethod {
    /// BiCGSTAB (default): short recurrences, constant memory.
    BiCgStab,
    /// Restarted GMRES(m): monotone residuals, `m` vectors of memory.
    Gmres,
}

/// Options for [`solve_joint_matrix_free`].
#[derive(Debug, Clone)]
pub struct JointOptions {
    /// Krylov method.
    pub method: JointMethod,
    /// Relative residual target.
    pub tolerance: f64,
    /// Iteration budget.
    pub max_iterations: usize,
    /// GMRES restart length.
    pub restart: usize,
    /// Assemble the trailing-axis block-Jacobi preconditioner. Costs
    /// `O(N/n · n²)` setup memory; disable for the very largest fleets.
    pub block_jacobi: bool,
}

impl Default for JointOptions {
    fn default() -> JointOptions {
        JointOptions {
            method: JointMethod::BiCgStab,
            tolerance: 1e-12,
            max_iterations: 20_000,
            restart: 60,
            block_jacobi: true,
        }
    }
}

/// Result of a matrix-free joint solve.
#[derive(Debug, Clone)]
pub struct JointSolution {
    pi: DVector,
    iterations: usize,
    residual: f64,
    operator_bytes: usize,
    preconditioned: bool,
    method: JointMethod,
    escalated: bool,
}

impl JointSolution {
    /// The joint stationary distribution over `n^K` tuples.
    #[must_use]
    pub fn pi(&self) -> &DVector {
        &self.pi
    }

    /// Krylov iterations spent (including refinement sweeps).
    #[must_use]
    pub fn iterations(&self) -> usize {
        self.iterations
    }

    /// Infinity norm of the balance residual `‖πG‖∞`.
    #[must_use]
    pub fn residual(&self) -> f64 {
        self.residual
    }

    /// Bytes of factor storage the implicit operator held — the
    /// matrix-free side of the bench's peak-matrix-bytes axis.
    #[must_use]
    pub fn operator_bytes(&self) -> usize {
        self.operator_bytes
    }

    /// Whether the block-Jacobi preconditioner was in effect (it is
    /// skipped when a block factorization is singular).
    #[must_use]
    pub fn preconditioned(&self) -> bool {
        self.preconditioned
    }

    /// The Krylov method that actually produced the solution (the
    /// alternate method when the configured one stalled).
    #[must_use]
    pub fn method(&self) -> JointMethod {
        self.method
    }

    /// Whether the configured method stalled and the alternate Krylov
    /// method was substituted.
    #[must_use]
    pub fn escalated(&self) -> bool {
        self.escalated
    }
}

/// The normalization-row system over an implicit transposed generator:
/// row `j < n−1` is row `j` of `Gᵀ` scaled by `1/max(|G[j,j]|, 1)`, row
/// `n−1` is the all-ones normalization row. The diagonal stands in for
/// the exact row maximum (unavailable without materializing); for a
/// generator the diagonal carries the full exit rate, so it bounds every
/// incoming rate of the matching column up to the fan-in factor.
struct NormalizedOp<'a> {
    transposed: &'a KroneckerOp,
    scale: Vec<f64>,
}

impl<'a> NormalizedOp<'a> {
    fn new(transposed: &'a KroneckerOp, diagonal: &DVector) -> NormalizedOp<'a> {
        let scale = (0..transposed.dim())
            .map(|j| {
                let d = diagonal[j].abs();
                if d > 1.0 {
                    1.0 / d
                } else {
                    1.0
                }
            })
            .collect();
        NormalizedOp { transposed, scale }
    }
}

impl LinearOperator for NormalizedOp<'_> {
    fn nrows(&self) -> usize {
        self.transposed.dim()
    }

    fn ncols(&self) -> usize {
        self.transposed.dim()
    }

    fn apply(&self, x: &DVector) -> DVector {
        let mut y = self.transposed.mul_vec(x);
        let n = y.len();
        for j in 0..n - 1 {
            y[j] *= self.scale[j];
        }
        y[n - 1] = x.iter().sum();
        y
    }
}

/// Builds the block-Jacobi preconditioner for the normalized system: the
/// trailing-axis diagonal blocks of `Gᵀ`, row-scaled like the system, with
/// the final block's last row overwritten by the normalization row's
/// restriction. Returns `None` when a block factorization is singular
/// (the unpreconditioned iteration still converges, just slower).
fn trailing_preconditioner(transposed: &KroneckerOp, scale: &[f64]) -> Option<BlockJacobi> {
    let mut blocks = transposed.trailing_blocks();
    let &n_last = transposed.dims().last()?;
    let n_blocks = blocks.len();
    for (p, block) in blocks.iter_mut().enumerate() {
        for r in 0..n_last {
            let global = p * n_last + r;
            let last_row_of_system = p == n_blocks - 1 && r == n_last - 1;
            for c in 0..n_last {
                if last_row_of_system {
                    block[(r, c)] = 1.0;
                } else {
                    block[(r, c)] *= scale[global];
                }
            }
        }
    }
    BlockJacobi::new(blocks).ok()
}

/// Normalizes a solution of the normalization-row system into a
/// probability distribution, clamping round-off negatives.
fn finish(mut x: DVector) -> Result<DVector, ClusterError> {
    for i in 0..x.len() {
        let v = x[i];
        if !v.is_finite() {
            return Err(ClusterError::Solve {
                reason: format!("stationary entry {i} is not finite"),
            });
        }
        if v < 0.0 {
            if v < -NEGATIVE_MASS_TOL {
                return Err(ClusterError::Solve {
                    reason: format!("stationary entry {i} = {v} is negative beyond round-off"),
                });
            }
            x[i] = 0.0;
        }
    }
    let sum = x.sum();
    if !sum.is_finite() || sum <= 0.0 {
        return Err(ClusterError::Solve {
            reason: format!("stationary solve produced probability mass {sum}"),
        });
    }
    x.scale_mut(1.0 / sum);
    Ok(x)
}

/// Solves `πG = 0, Σπ = 1` for the fleet's joint chain without ever
/// materializing `G`: the [`KroneckerOp`] built by
/// [`ClusterModel::joint_operator`] is the only representation touched.
///
/// # Errors
///
/// Propagates operator assembly failures; [`ClusterError::Solve`] when
/// the Krylov iteration breaks down or the solution is not a
/// distribution.
pub fn solve_joint_matrix_free(
    model: &ClusterModel,
    options: &JointOptions,
) -> Result<JointSolution, ClusterError> {
    let op = model.joint_operator()?;
    let n = op.dim();
    let operator_bytes = op.storage_bytes();
    if n == 1 {
        return Ok(JointSolution {
            pi: DVector::constant(1, 1.0),
            iterations: 0,
            residual: 0.0,
            operator_bytes,
            preconditioned: false,
            method: options.method,
            escalated: false,
        });
    }
    let transposed = op.transpose();
    let diagonal = op.diagonal();
    let system = NormalizedOp::new(&transposed, &diagonal);
    let precond = if options.block_jacobi {
        trailing_preconditioner(&transposed, &system.scale)
    } else {
        None
    };
    let preconditioned = precond.is_some();
    let krylov_options = KrylovOptions {
        tolerance: options.tolerance,
        max_iterations: options.max_iterations,
        restart: options.restart,
    };
    let mut b = DVector::zeros(n);
    b[n - 1] = 1.0;
    let m: Option<&dyn Precondition> = precond.as_ref().map(|p| p as &dyn Precondition);
    let solve = |method: JointMethod, rhs: &DVector| match method {
        JointMethod::Gmres => gmres_op(&system, rhs, m, &krylov_options),
        JointMethod::BiCgStab => bicgstab_op(&system, rhs, m, &krylov_options),
    };
    // BiCGSTAB's irregular recurrence can stall a hair above a tight
    // tolerance on stiff generators; GMRES's monotone residuals (and
    // vice versa) make the alternate method a cheap rescue before
    // failing the whole solve.
    let alternate = match options.method {
        JointMethod::BiCgStab => JointMethod::Gmres,
        JointMethod::Gmres => JointMethod::BiCgStab,
    };
    let (first, method, escalated) = match solve(options.method, &b) {
        Ok(result) => (result, options.method, false),
        Err(primary) => match solve(alternate, &b) {
            Ok(result) => (result, alternate, true),
            Err(_) => {
                return Err(ClusterError::Solve {
                    reason: format!("matrix-free krylov solve failed: {primary}"),
                })
            }
        },
    };
    let mut x = first.solution;
    let mut iterations = first.iterations;
    // Iterative refinement against the true residual, mirroring the
    // CSR-backed Krylov tier: the forward error of a stiff solve sits
    // κ(A) above the recursion residual, and one or two correction solves
    // recover it.
    for _ in 0..REFINEMENT_STEPS {
        let r = &b - &system.apply(&x);
        if r.norm() <= f64::EPSILON * (1.0 + x.norm()) {
            break;
        }
        match solve(method, &r) {
            Ok(correction) => {
                x.axpy(1.0, &correction.solution);
                iterations += correction.iterations;
            }
            // Best effort: the uncorrected solution already passed the
            // solver's convergence gate.
            Err(_) => break,
        }
    }
    let pi = finish(x)?;
    // True balance residual against the untransformed operator: `πG`
    // evaluated as `Gᵀ π`.
    let residual = transposed.mul_vec(&pi).norm_inf();
    Ok(JointSolution {
        pi,
        iterations,
        residual,
        operator_bytes,
        preconditioned,
        method,
        escalated,
    })
}

/// Result of the materialized twin solve.
#[derive(Debug, Clone)]
pub struct MaterializedSolution {
    pi: DVector,
    matrix_bytes: usize,
    method: Method,
}

impl MaterializedSolution {
    /// The joint stationary distribution.
    #[must_use]
    pub fn pi(&self) -> &DVector {
        &self.pi
    }

    /// Bytes of the materialized CSR joint matrix — the dense side of the
    /// bench's peak-matrix-bytes axis.
    #[must_use]
    pub fn matrix_bytes(&self) -> usize {
        self.matrix_bytes
    }

    /// The stationary-solver method that produced the distribution.
    #[must_use]
    pub fn method(&self) -> Method {
        self.method
    }
}

/// Materializes the joint generator and solves it through the stock
/// [`Solver`] builder — the reference path the scaling bench gates the
/// matrix-free solve against at small `K`.
///
/// # Errors
///
/// [`ClusterError::StateSpace`] when `n^K` is too large to materialize;
/// propagated solver failures otherwise.
pub fn solve_joint_materialized(
    model: &ClusterModel,
) -> Result<MaterializedSolution, ClusterError> {
    let op = model.joint_operator()?;
    let csr = op.materialize()?;
    let word = std::mem::size_of::<f64>();
    let matrix_bytes = csr.nnz() * 2 * word + (csr.nrows() + 1) * word;
    let mut transitions = Vec::new();
    for (i, j, v) in csr.iter() {
        if i != j && v > 0.0 {
            transitions.push((i, j, v));
        }
    }
    let generator = SparseGenerator::from_transitions(csr.nrows(), &transitions)?;
    let (pi, stats) = Solver::new(Method::BiCgStab)
        .with_default_fallback()
        .solve(&generator)?;
    Ok(MaterializedSolution {
        pi,
        matrix_bytes,
        method: stats.method(),
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use dpm_linalg::CsrMatrix;

    use crate::model::CouplingTerm;

    fn mm1k(n: usize, lambda: f64, mu: f64) -> SparseGenerator {
        let mut transitions = Vec::new();
        for i in 0..n - 1 {
            transitions.push((i, i + 1, lambda));
            transitions.push((i + 1, i, mu));
        }
        SparseGenerator::from_transitions(n, &transitions).unwrap()
    }

    fn coupled_fleet(k: usize) -> ClusterModel {
        let donor = CsrMatrix::from_triplets(3, 3, &[(2, 1, 1.0), (1, 0, 0.5)]).unwrap();
        let receiver = CsrMatrix::from_triplets(3, 3, &[(0, 1, 1.0), (1, 2, 0.5)]).unwrap();
        ClusterModel::new(mm1k(3, 1.0, 2.0), k)
            .unwrap()
            .with_coupling(CouplingTerm::new(0.4, donor, receiver).unwrap())
            .unwrap()
    }

    #[test]
    fn matrix_free_matches_materialized_independent_fleet() {
        let model = ClusterModel::new(mm1k(4, 1.0, 2.0), 2).unwrap();
        let free = solve_joint_matrix_free(&model, &JointOptions::default()).unwrap();
        let reference = solve_joint_materialized(&model).unwrap();
        for i in 0..free.pi().len() {
            assert!(
                (free.pi()[i] - reference.pi()[i]).abs() < 1e-10,
                "state {i}: {} vs {}",
                free.pi()[i],
                reference.pi()[i]
            );
        }
        assert!(free.residual() < 1e-8);
    }

    #[test]
    fn matrix_free_matches_materialized_coupled_fleet() {
        let model = coupled_fleet(3);
        let free = solve_joint_matrix_free(&model, &JointOptions::default()).unwrap();
        let reference = solve_joint_materialized(&model).unwrap();
        for i in 0..free.pi().len() {
            assert!(
                (free.pi()[i] - reference.pi()[i]).abs() < 1e-10,
                "state {i}: {} vs {}",
                free.pi()[i],
                reference.pi()[i]
            );
        }
    }

    #[test]
    fn gmres_path_agrees_with_bicgstab() {
        let model = coupled_fleet(2);
        let gmres = solve_joint_matrix_free(
            &model,
            &JointOptions {
                method: JointMethod::Gmres,
                ..JointOptions::default()
            },
        )
        .unwrap();
        let bicg = solve_joint_matrix_free(&model, &JointOptions::default()).unwrap();
        for i in 0..gmres.pi().len() {
            assert!((gmres.pi()[i] - bicg.pi()[i]).abs() < 1e-9, "state {i}");
        }
    }

    #[test]
    fn unpreconditioned_solve_still_converges() {
        let model = coupled_fleet(2);
        let plain = solve_joint_matrix_free(
            &model,
            &JointOptions {
                block_jacobi: false,
                ..JointOptions::default()
            },
        )
        .unwrap();
        assert!(!plain.preconditioned());
        let reference = solve_joint_materialized(&model).unwrap();
        for i in 0..plain.pi().len() {
            assert!(
                (plain.pi()[i] - reference.pi()[i]).abs() < 1e-9,
                "state {i}"
            );
        }
    }

    #[test]
    fn operator_storage_stays_factor_sized() {
        let model = coupled_fleet(6); // 729 joint states
        let free = solve_joint_matrix_free(&model, &JointOptions::default()).unwrap();
        let reference = solve_joint_materialized(&model).unwrap();
        assert!(
            free.operator_bytes() < reference.matrix_bytes(),
            "{} !< {}",
            free.operator_bytes(),
            reference.matrix_bytes()
        );
    }
}
