//! Error type for the cluster layer.

use std::error::Error;
use std::fmt;

use dpm_ctmc::CtmcError;
use dpm_linalg::LinalgError;
use dpm_mdp::MdpError;

/// Errors raised while building or solving cluster models.
#[derive(Debug)]
pub enum ClusterError {
    /// A model parameter failed validation.
    InvalidModel {
        /// What was violated.
        reason: String,
    },
    /// A state space would overflow `usize` or an index was out of range.
    StateSpace {
        /// What overflowed or which index was out of range.
        reason: String,
    },
    /// A solve step failed to converge or produced a non-distribution.
    Solve {
        /// Which step and why.
        reason: String,
    },
    /// A linear-algebra step failed.
    Linalg(LinalgError),
    /// A Markov-chain step failed.
    Ctmc(CtmcError),
    /// A decision-process step failed.
    Mdp(MdpError),
}

impl fmt::Display for ClusterError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ClusterError::InvalidModel { reason } => write!(f, "invalid cluster model: {reason}"),
            ClusterError::StateSpace { reason } => write!(f, "state-space error: {reason}"),
            ClusterError::Solve { reason } => write!(f, "cluster solve failed: {reason}"),
            ClusterError::Linalg(e) => write!(f, "linear algebra failure: {e}"),
            ClusterError::Ctmc(e) => write!(f, "markov chain failure: {e}"),
            ClusterError::Mdp(e) => write!(f, "decision process failure: {e}"),
        }
    }
}

impl Error for ClusterError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            ClusterError::Linalg(e) => Some(e),
            ClusterError::Ctmc(e) => Some(e),
            ClusterError::Mdp(e) => Some(e),
            _ => None,
        }
    }
}

impl From<LinalgError> for ClusterError {
    fn from(e: LinalgError) -> ClusterError {
        ClusterError::Linalg(e)
    }
}

impl From<CtmcError> for ClusterError {
    fn from(e: CtmcError) -> ClusterError {
        ClusterError::Ctmc(e)
    }
}

impl From<MdpError> for ClusterError {
    fn from(e: MdpError) -> ClusterError {
        ClusterError::Mdp(e)
    }
}
