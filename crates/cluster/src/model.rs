//! The exchangeable-fleet model: one local generator shared by every
//! server plus pairwise interaction terms.
//!
//! A cluster of `K` statistically identical servers is described by
//!
//! * a **local generator** `Q` — each server's own CTMC (service
//!   completions, mode switches, queue dynamics), and
//! * **coupling terms** — pairwise interactions in Kronecker form: at rate
//!   `γ`, a *donor* server makes a `D`-transition while a *receiver*
//!   server simultaneously makes an `R`-transition (work stealing, load
//!   migration, failover). Every ordered pair of distinct servers couples
//!   identically, which is exactly what makes the fleet exchangeable and
//!   the occupancy lumping of [`crate::lumped`] exact.
//!
//! The joint generator this induces on the `n^K` tuple space is
//!
//! ```text
//! G = ⊕ᵢ Q  +  Σ_terms γ Σ_{i≠j} [ D⁽ⁱ⁾ ⊗ R⁽ʲ⁾ − diag(D·1)⁽ⁱ⁾ ⊗ diag(R·1)⁽ʲ⁾ ]
//! ```
//!
//! where the second (diagonal) part compensates the added outflow so rows
//! still sum to zero. [`ClusterModel::joint_operator`] builds it as an
//! implicit [`KroneckerOp`] whose storage is factor-sized — the `n^K`
//! matrix itself is never formed.

use dpm_ctmc::SparseGenerator;
use dpm_linalg::{CsrMatrix, KroneckerOp};

use crate::error::ClusterError;
use crate::multiset::MultisetIndex;

/// One pairwise interaction: donor transition pattern `D`, receiver
/// pattern `R`, applied at rate `rate` to every ordered pair of distinct
/// servers.
#[derive(Debug, Clone)]
pub struct CouplingTerm {
    rate: f64,
    donor: CsrMatrix,
    receiver: CsrMatrix,
}

impl CouplingTerm {
    /// Builds a coupling term.
    ///
    /// `donor` and `receiver` must be square with zero diagonals and
    /// non-negative finite entries: entry `M[a, a']` is the propensity for
    /// that endpoint to jump `a → a'` when the interaction fires. The
    /// effective joint rate of `(a, b) → (a', b')` is
    /// `rate · D[a, a'] · R[b, b']`.
    ///
    /// # Errors
    ///
    /// [`ClusterError::InvalidModel`] for a non-positive or non-finite
    /// rate, rectangular patterns, mismatched sizes, negative or
    /// non-finite entries, or nonzero diagonal entries.
    pub fn new(
        rate: f64,
        donor: CsrMatrix,
        receiver: CsrMatrix,
    ) -> Result<CouplingTerm, ClusterError> {
        if !rate.is_finite() || rate <= 0.0 {
            return Err(ClusterError::InvalidModel {
                reason: format!("coupling rate {rate} must be finite and positive"),
            });
        }
        for (name, m) in [("donor", &donor), ("receiver", &receiver)] {
            if !m.is_square() {
                return Err(ClusterError::InvalidModel {
                    reason: format!("{name} pattern is not square: {:?}", m.shape()),
                });
            }
            for (i, j, v) in m.iter() {
                if !v.is_finite() || v < 0.0 {
                    return Err(ClusterError::InvalidModel {
                        reason: format!("{name} entry ({i}, {j}) = {v} must be finite and >= 0"),
                    });
                }
                if i == j {
                    return Err(ClusterError::InvalidModel {
                        reason: format!(
                            "{name} pattern has a diagonal entry at state {i}; \
                             interactions must move both endpoints"
                        ),
                    });
                }
            }
        }
        if donor.nrows() != receiver.nrows() {
            return Err(ClusterError::InvalidModel {
                reason: format!(
                    "donor covers {} states, receiver {}",
                    donor.nrows(),
                    receiver.nrows()
                ),
            });
        }
        Ok(CouplingTerm {
            rate,
            donor,
            receiver,
        })
    }

    /// The interaction rate `γ`.
    #[must_use]
    pub fn rate(&self) -> f64 {
        self.rate
    }

    /// The donor transition pattern `D`.
    #[must_use]
    pub fn donor(&self) -> &CsrMatrix {
        &self.donor
    }

    /// The receiver transition pattern `R`.
    #[must_use]
    pub fn receiver(&self) -> &CsrMatrix {
        &self.receiver
    }

    /// Diagonal compensation factors `diag(D·1)` and `diag(R·1)` as CSR
    /// matrices, used to zero the joint row sums.
    fn compensation(&self) -> Result<(CsrMatrix, CsrMatrix), ClusterError> {
        let n = self.donor.nrows();
        let row_sums = |m: &CsrMatrix| -> Result<CsrMatrix, ClusterError> {
            let mut sums = vec![0.0f64; n];
            for (i, _, v) in m.iter() {
                sums[i] += v;
            }
            let triplets: Vec<(usize, usize, f64)> =
                sums.iter().enumerate().map(|(i, &s)| (i, i, s)).collect();
            CsrMatrix::from_triplets(n, n, &triplets).map_err(ClusterError::Linalg)
        };
        Ok((row_sums(&self.donor)?, row_sums(&self.receiver)?))
    }
}

/// A fleet of `k` exchangeable servers: shared local generator plus
/// pairwise couplings.
///
/// # Examples
///
/// ```
/// use dpm_cluster::ClusterModel;
/// use dpm_ctmc::SparseGenerator;
///
/// # fn main() -> Result<(), dpm_cluster::ClusterError> {
/// let local = SparseGenerator::from_transitions(2, &[(0, 1, 1.0), (1, 0, 2.0)])?;
/// let fleet = ClusterModel::new(local, 3)?;
/// assert_eq!(fleet.joint_states(), Some(8));
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone)]
pub struct ClusterModel {
    local: SparseGenerator,
    couplings: Vec<CouplingTerm>,
    k: usize,
}

impl ClusterModel {
    /// Builds a fleet of `k` servers sharing `local` dynamics and no
    /// couplings; add interactions with [`ClusterModel::with_coupling`].
    ///
    /// # Errors
    ///
    /// [`ClusterError::InvalidModel`] if the local chain is empty or
    /// `k == 0`.
    pub fn new(local: SparseGenerator, k: usize) -> Result<ClusterModel, ClusterError> {
        if local.n_states() == 0 {
            return Err(ClusterError::InvalidModel {
                reason: "local generator has no states".to_owned(),
            });
        }
        if k == 0 {
            return Err(ClusterError::InvalidModel {
                reason: "cluster has zero servers".to_owned(),
            });
        }
        Ok(ClusterModel {
            local,
            couplings: Vec::new(),
            k,
        })
    }

    /// Adds a pairwise interaction term.
    ///
    /// # Errors
    ///
    /// [`ClusterError::InvalidModel`] if the term's local space does not
    /// match the model's.
    pub fn with_coupling(mut self, term: CouplingTerm) -> Result<ClusterModel, ClusterError> {
        if term.donor.nrows() != self.local.n_states() {
            return Err(ClusterError::InvalidModel {
                reason: format!(
                    "coupling covers {} states, local chain has {}",
                    term.donor.nrows(),
                    self.local.n_states()
                ),
            });
        }
        self.couplings.push(term);
        Ok(self)
    }

    /// The shared local generator.
    #[must_use]
    pub fn local(&self) -> &SparseGenerator {
        &self.local
    }

    /// The pairwise interaction terms.
    #[must_use]
    pub fn couplings(&self) -> &[CouplingTerm] {
        &self.couplings
    }

    /// Fleet size.
    #[must_use]
    pub fn k(&self) -> usize {
        self.k
    }

    /// Local state count per server.
    #[must_use]
    pub fn n_local(&self) -> usize {
        self.local.n_states()
    }

    /// Joint tuple-space size `n^K`, or `None` if it overflows `usize`.
    #[must_use]
    pub fn joint_states(&self) -> Option<usize> {
        let exp = u32::try_from(self.k).ok()?;
        self.local.n_states().checked_pow(exp)
    }

    /// The occupancy index for this fleet.
    ///
    /// # Errors
    ///
    /// Propagates [`MultisetIndex::new`] validation.
    pub fn multiset_index(&self) -> Result<MultisetIndex, ClusterError> {
        MultisetIndex::new(self.local.n_states(), self.k)
    }

    /// Assembles the joint generator as an implicit [`KroneckerOp`]:
    /// `K` tensor-sum terms for the independent local dynamics plus, per
    /// coupling and ordered server pair `(i, j)`, a transition term
    /// `γ D⁽ⁱ⁾ ⊗ R⁽ʲ⁾` and its diagonal compensation
    /// `−γ diag(D·1)⁽ⁱ⁾ ⊗ diag(R·1)⁽ʲ⁾`.
    ///
    /// Storage is factor-sized: `O(K · nnz(Q) + K² · nnz(D, R))` floats
    /// regardless of the `n^K` joint dimension.
    ///
    /// # Errors
    ///
    /// [`ClusterError::StateSpace`] if `n^K` overflows, plus propagated
    /// operator validation.
    pub fn joint_operator(&self) -> Result<KroneckerOp, ClusterError> {
        let factors: Vec<CsrMatrix> = (0..self.k).map(|_| self.local.csr().clone()).collect();
        let mut op = KroneckerOp::kron_sum_of(&factors).map_err(ClusterError::Linalg)?;
        for term in &self.couplings {
            let (comp_d, comp_r) = term.compensation()?;
            for i in 0..self.k {
                for j in 0..self.k {
                    if i == j {
                        continue;
                    }
                    let mut move_factors: Vec<Option<CsrMatrix>> = vec![None; self.k];
                    move_factors[i] = Some(term.donor.clone());
                    move_factors[j] = Some(term.receiver.clone());
                    op.add_product(term.rate, move_factors)
                        .map_err(ClusterError::Linalg)?;
                    let mut comp_factors: Vec<Option<CsrMatrix>> = vec![None; self.k];
                    comp_factors[i] = Some(comp_d.clone());
                    comp_factors[j] = Some(comp_r.clone());
                    op.add_product(-term.rate, comp_factors)
                        .map_err(ClusterError::Linalg)?;
                }
            }
        }
        Ok(op)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dpm_linalg::DVector;

    fn two_state_local() -> SparseGenerator {
        SparseGenerator::from_transitions(2, &[(0, 1, 1.0), (1, 0, 2.0)]).unwrap()
    }

    fn steal() -> CouplingTerm {
        // Donor drops 1 -> 0 while receiver climbs 0 -> 1.
        let donor = CsrMatrix::from_triplets(2, 2, &[(1, 0, 1.0)]).unwrap();
        let receiver = CsrMatrix::from_triplets(2, 2, &[(0, 1, 1.0)]).unwrap();
        CouplingTerm::new(0.5, donor, receiver).unwrap()
    }

    #[test]
    fn joint_operator_rows_sum_to_zero() {
        let fleet = ClusterModel::new(two_state_local(), 3)
            .unwrap()
            .with_coupling(steal())
            .unwrap();
        let op = fleet.joint_operator().unwrap();
        let ones = DVector::constant(op.dim(), 1.0);
        let row_sums = op.mul_vec(&ones);
        for i in 0..op.dim() {
            assert!(row_sums[i].abs() < 1e-12, "row {i} sums to {}", row_sums[i]);
        }
    }

    #[test]
    fn joint_operator_matches_materialized_on_coupled_pair() {
        let fleet = ClusterModel::new(two_state_local(), 2)
            .unwrap()
            .with_coupling(steal())
            .unwrap();
        let op = fleet.joint_operator().unwrap();
        let dense = op.materialize().unwrap().to_dense();
        // Joint (1, 0) -> (0, 1): donor at axis 0, receiver at axis 1,
        // plus the swap with roles exchanged is impossible (receiver can't
        // leave 0 as donor-pattern has only 1->0). Rate = 0.5.
        assert!((dense[(2, 1)] - 0.5).abs() < 1e-12);
        // Off-diagonal entries are non-negative.
        for r in 0..4 {
            for c in 0..4 {
                if r != c {
                    assert!(dense[(r, c)] >= -1e-15, "entry ({r}, {c})");
                }
            }
        }
    }

    #[test]
    fn coupling_validation_rejects_bad_terms() {
        let donor = CsrMatrix::from_triplets(2, 2, &[(1, 0, 1.0)]).unwrap();
        let receiver = CsrMatrix::from_triplets(2, 2, &[(0, 1, 1.0)]).unwrap();
        assert!(CouplingTerm::new(0.0, donor.clone(), receiver.clone()).is_err());
        assert!(CouplingTerm::new(f64::NAN, donor.clone(), receiver.clone()).is_err());
        let diagonal = CsrMatrix::from_triplets(2, 2, &[(0, 0, 1.0)]).unwrap();
        assert!(CouplingTerm::new(1.0, diagonal, receiver.clone()).is_err());
        let negative = CsrMatrix::from_triplets(2, 2, &[(1, 0, -1.0)]).unwrap();
        assert!(CouplingTerm::new(1.0, negative, receiver).is_err());
    }

    #[test]
    fn model_validation() {
        assert!(ClusterModel::new(two_state_local(), 0).is_err());
        let three =
            SparseGenerator::from_transitions(3, &[(0, 1, 1.0), (1, 2, 1.0), (2, 0, 1.0)]).unwrap();
        let mismatch = ClusterModel::new(three, 2).unwrap().with_coupling(steal());
        assert!(mismatch.is_err());
    }
}
