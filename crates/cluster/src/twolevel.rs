//! Two-level cluster control: per-server CTMDP policies coordinated by a
//! cluster-level CTMDP over aggregate load.
//!
//! The fleet controller decomposes the `(load level, active servers)`
//! decision problem:
//!
//! 1. **Per-server sweep** — for every pair `(ℓ, k)` of load level and
//!    active-server count, a local CTMDP (supplied by the caller; the
//!    bench uses the paper's power-managed SYS model with the load split
//!    `k` ways) is solved by multichain policy iteration. Its average
//!    cost rate `g_{ℓ,k}` is the per-server operating cost under the best
//!    local power policy. The sweep runs through the harness
//!    [`SolvePlan`] machinery, so points are solved in parallel with
//!    deterministic, schedule-independent seeds.
//! 2. **Cluster CTMDP** — a CTMDP over `(ℓ, k)` chooses when to wake or
//!    retire servers: load levels move as a birth–death chain, wake/sleep
//!    actions move `k` one server at a time at finite transition rates,
//!    and the cost rate charges `k · g_{ℓ,k}` for the active servers,
//!    sleep power for the parked ones, and a drop penalty for offered
//!    load arriving while the fleet is fully asleep.
//!
//! The optimal cluster policy is evaluated exactly: its induced chain
//! goes through the stock stationary [`Solver`] ladder (where the
//! irreducibility guard reroutes sleepy, reducible policies away from the
//! Krylov tier automatically).

use dpm_ctmc::stationary::{Method, SolveStats, Solver};
use dpm_harness::{run_solve_plan, PlanPoint, SolvePlan};
use dpm_mdp::average::{policy_iteration_multichain, Options};
use dpm_mdp::Ctmdp;

use dpm_linalg::DVector;

use crate::error::ClusterError;

/// Static description of the cluster-level decision problem.
#[derive(Debug, Clone)]
pub struct ClusterSpec {
    /// Fleet size `K`.
    pub k: usize,
    /// Birth rates between adjacent load levels: `level_up[ℓ]` is the
    /// rate of `ℓ → ℓ+1`. Length `L − 1`.
    pub level_up: Vec<f64>,
    /// Death rates between adjacent load levels: `level_down[ℓ]` is the
    /// rate of `ℓ+1 → ℓ`. Length `L − 1`.
    pub level_down: Vec<f64>,
    /// Offered load per level (requests per unit time), charged as drops
    /// when zero servers are active. Length `L`.
    pub offered: Vec<f64>,
    /// Rate at which a parked server wakes once the wake action is held.
    pub wake_rate: f64,
    /// Rate at which an active server parks once the sleep action is
    /// held.
    pub sleep_rate: f64,
    /// Power cost rate of one parked server.
    pub sleep_power: f64,
    /// Cost per dropped request.
    pub drop_penalty: f64,
    /// Root seed for the per-server sweep plan.
    pub root_seed: u64,
}

impl ClusterSpec {
    /// Number of load levels `L`.
    #[must_use]
    pub fn n_levels(&self) -> usize {
        self.offered.len()
    }

    /// Cluster state index of `(level, active)` — levels vary slowest.
    #[must_use]
    pub fn state_of(&self, level: usize, active: usize) -> usize {
        level * (self.k + 1) + active
    }

    fn validate(&self) -> Result<(), ClusterError> {
        if self.k == 0 {
            return Err(ClusterError::InvalidModel {
                reason: "cluster has zero servers".to_owned(),
            });
        }
        let levels = self.offered.len();
        if levels == 0 {
            return Err(ClusterError::InvalidModel {
                reason: "cluster needs at least one load level".to_owned(),
            });
        }
        if self.level_up.len() != levels - 1 || self.level_down.len() != levels - 1 {
            return Err(ClusterError::InvalidModel {
                reason: format!(
                    "level rates must have {} entries for {} levels (got {} up, {} down)",
                    levels - 1,
                    levels,
                    self.level_up.len(),
                    self.level_down.len()
                ),
            });
        }
        let finite_nonneg = |name: &str, v: f64| -> Result<(), ClusterError> {
            if !v.is_finite() || v < 0.0 {
                return Err(ClusterError::InvalidModel {
                    reason: format!("{name} = {v} must be finite and non-negative"),
                });
            }
            Ok(())
        };
        for (i, &r) in self.level_up.iter().enumerate() {
            finite_nonneg(&format!("level_up[{i}]"), r)?;
        }
        for (i, &r) in self.level_down.iter().enumerate() {
            finite_nonneg(&format!("level_down[{i}]"), r)?;
        }
        for (i, &r) in self.offered.iter().enumerate() {
            finite_nonneg(&format!("offered[{i}]"), r)?;
        }
        if !self.wake_rate.is_finite() || self.wake_rate <= 0.0 {
            return Err(ClusterError::InvalidModel {
                reason: format!("wake_rate {} must be finite and positive", self.wake_rate),
            });
        }
        if !self.sleep_rate.is_finite() || self.sleep_rate <= 0.0 {
            return Err(ClusterError::InvalidModel {
                reason: format!("sleep_rate {} must be finite and positive", self.sleep_rate),
            });
        }
        finite_nonneg("sleep_power", self.sleep_power)?;
        finite_nonneg("drop_penalty", self.drop_penalty)?;
        Ok(())
    }
}

/// Solution of the two-level decomposition.
#[derive(Debug, Clone)]
pub struct TwoLevelSolution {
    gains: Vec<Vec<f64>>,
    actions: Vec<String>,
    pi: DVector,
    average_cost: f64,
    mean_active: f64,
    stats: SolveStats,
    sweep_points: usize,
}

impl TwoLevelSolution {
    /// Per-server optimal average cost `g_{ℓ,k}`, indexed `[level][k]`
    /// with `k` from 1 (entry `[level][0]` corresponds to `k = 1`).
    #[must_use]
    pub fn gains(&self) -> &[Vec<f64>] {
        &self.gains
    }

    /// Chosen cluster action label per `(level, active)` state, indexed
    /// by [`ClusterSpec::state_of`].
    #[must_use]
    pub fn actions(&self) -> &[String] {
        &self.actions
    }

    /// Stationary distribution of the controlled cluster chain.
    #[must_use]
    pub fn pi(&self) -> &DVector {
        &self.pi
    }

    /// Long-run average cluster cost rate.
    #[must_use]
    pub fn average_cost(&self) -> f64 {
        self.average_cost
    }

    /// Long-run mean number of active servers.
    #[must_use]
    pub fn mean_active(&self) -> f64 {
        self.mean_active
    }

    /// Stationary-solver diagnostics for the induced-chain evaluation.
    #[must_use]
    pub fn stats(&self) -> &SolveStats {
        &self.stats
    }

    /// Number of `(level, k)` points the per-server sweep solved.
    #[must_use]
    pub fn sweep_points(&self) -> usize {
        self.sweep_points
    }
}

/// Runs the two-level solve.
///
/// `local_model(level, k)` supplies the per-server CTMDP for load level
/// `level` when `k` servers share the load; `workers` bounds the sweep's
/// parallelism.
///
/// # Errors
///
/// Propagates spec validation, sweep, policy-iteration, and
/// stationary-solve failures.
pub fn solve_two_level<F>(
    spec: &ClusterSpec,
    local_model: F,
    workers: usize,
) -> Result<TwoLevelSolution, ClusterError>
where
    F: Fn(usize, usize) -> Result<Ctmdp, ClusterError> + Sync,
{
    spec.validate()?;
    let levels = spec.n_levels();
    let k_max = spec.k;

    // Stage 1: per-server sweep over (level, k) through the harness plan
    // runner — deterministic order, parallel execution.
    let mut plan = SolvePlan::new("cluster-local-sweep", spec.root_seed);
    for level in 0..levels {
        for k in 1..=k_max {
            plan = plan.point(
                PlanPoint::new(format!("level{level}-k{k}"))
                    .with("level", level as i64)
                    .with("active", k as i64),
            );
        }
    }
    let records = run_solve_plan(&plan, workers, |ctx| {
        let level = ctx.index / k_max;
        let k = ctx.index % k_max + 1;
        let mdp = local_model(level, k).map_err(|e| e.to_string())?;
        let solution =
            policy_iteration_multichain(&mdp, mdp.min_cost_policy(), &Options::default())
                .map_err(|e| e.to_string())?;
        Ok(solution.gain_from(0))
    })
    .map_err(|e| ClusterError::Solve {
        reason: format!("per-server sweep failed: {e}"),
    })?;
    let mut gains = vec![vec![0.0f64; k_max]; levels];
    for record in &records {
        gains[record.index / k_max][record.index % k_max] = record.output;
    }

    // Stage 2: the cluster CTMDP over (level, active).
    let n = levels * (k_max + 1);
    let mut builder = Ctmdp::builder(n);
    for (level, level_gains) in gains.iter().enumerate() {
        for active in 0..=k_max {
            let state = spec.state_of(level, active);
            let mut base: Vec<(usize, f64)> = Vec::new();
            if level + 1 < levels && spec.level_up[level] > 0.0 {
                base.push((spec.state_of(level + 1, active), spec.level_up[level]));
            }
            if level > 0 && spec.level_down[level - 1] > 0.0 {
                base.push((spec.state_of(level - 1, active), spec.level_down[level - 1]));
            }
            let mut cost = (k_max - active) as f64 * spec.sleep_power;
            if active > 0 {
                cost += active as f64 * level_gains[active - 1];
            } else {
                cost += spec.drop_penalty * spec.offered[level];
            }
            builder.action(state, "hold", cost, &base)?;
            if active < k_max {
                let mut rates = base.clone();
                rates.push((spec.state_of(level, active + 1), spec.wake_rate));
                builder.action(state, "wake", cost, &rates)?;
            }
            if active > 0 {
                let mut rates = base.clone();
                rates.push((spec.state_of(level, active - 1), spec.sleep_rate));
                builder.action(state, "sleep", cost, &rates)?;
            }
        }
    }
    let mdp = builder.build()?;
    let solution = policy_iteration_multichain(&mdp, mdp.min_cost_policy(), &Options::default())?;
    let policy = solution.policy().clone();

    // Exact evaluation of the induced chain through the stock solver
    // ladder (the irreducibility guard reroutes reducible sleep policies
    // past the Krylov tier).
    let generator = mdp.sparse_generator_for(&policy)?;
    let (pi, stats) = Solver::new(Method::BiCgStab)
        .with_default_fallback()
        .solve(&generator)?;

    let mut average_cost = 0.0;
    let mut mean_active = 0.0;
    let mut actions = Vec::with_capacity(n);
    for state in 0..n {
        let a = policy.action(state);
        let spec_action = &mdp.actions(state)[a];
        average_cost += pi[state] * spec_action.cost_rate();
        mean_active += pi[state] * (state % (k_max + 1)) as f64;
        actions.push(spec_action.label().to_owned());
    }

    Ok(TwoLevelSolution {
        gains,
        actions,
        pi,
        average_cost,
        mean_active,
        stats,
        sweep_points: records.len(),
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A two-mode local server: busy (0) and idle-capable (1), with mode
    /// switching as the decision. Load scales down with the number of
    /// active servers sharing it.
    fn local_server(level: usize, k: usize) -> Result<Ctmdp, ClusterError> {
        let load = (level as f64 + 1.0) / k as f64;
        let mut b = Ctmdp::builder(2);
        // State 0: serving. Stay on (power 2.0) or allow drift to nap.
        b.action(0, "on", 2.0 + load, &[(1, 1.0 / (load + 1.0))])?;
        // State 1: napping. Wake on load, or stay napping cheaply.
        b.action(1, "nap", 0.3, &[(0, load)])?;
        b.action(1, "deep", 0.1, &[(0, load * 0.5)])?;
        Ok(b.build()?)
    }

    fn spec() -> ClusterSpec {
        ClusterSpec {
            k: 3,
            level_up: vec![0.8, 0.5],
            level_down: vec![1.0, 1.2],
            offered: vec![1.0, 2.0, 3.0],
            wake_rate: 5.0,
            sleep_rate: 4.0,
            sleep_power: 0.2,
            drop_penalty: 10.0,
            root_seed: 42,
        }
    }

    #[test]
    fn two_level_solve_produces_distribution_and_policy() {
        let solution = solve_two_level(&spec(), local_server, 2).unwrap();
        let s = spec();
        assert_eq!(solution.sweep_points(), 9);
        assert_eq!(solution.actions().len(), 3 * 4);
        let mass: f64 = (0..solution.pi().len()).map(|i| solution.pi()[i]).sum();
        assert!((mass - 1.0).abs() < 1e-8);
        assert!(solution.mean_active() >= 0.0 && solution.mean_active() <= s.k as f64);
        assert!(solution.average_cost().is_finite());
        // Every gain entry was filled by the sweep.
        for row in solution.gains() {
            for &g in row {
                assert!(g.is_finite());
            }
        }
    }

    #[test]
    fn deterministic_across_worker_counts() {
        let serial = solve_two_level(&spec(), local_server, 1).unwrap();
        let parallel = solve_two_level(&spec(), local_server, 4).unwrap();
        assert_eq!(serial.actions(), parallel.actions());
        assert!((serial.average_cost() - parallel.average_cost()).abs() < 1e-12);
    }

    #[test]
    fn spec_validation_rejects_malformed_inputs() {
        let mut bad = spec();
        bad.level_up = vec![0.8];
        assert!(solve_two_level(&bad, local_server, 1).is_err());
        let mut zero = spec();
        zero.k = 0;
        assert!(solve_two_level(&zero, local_server, 1).is_err());
        let mut neg = spec();
        neg.sleep_power = -1.0;
        assert!(solve_two_level(&neg, local_server, 1).is_err());
    }
}
