//! Property-based cross-validation of the MDP solver suite: policy
//! iteration, value iteration, LP, and brute-force enumeration must all
//! agree on the optimal average cost of random processes.

use dpm_linalg::DVector;
use dpm_mdp::{average, discounted, lp, value_iteration, Ctmdp, Dtmdp};
use proptest::prelude::*;

/// Random CTMDP in which every action keeps the chain irreducible: each
/// action's rate set contains a ring edge `i -> (i+1) % n` plus an optional
/// extra edge.
fn ring_ctmdp(n: usize) -> impl Strategy<Value = Ctmdp> {
    let per_state = prop::collection::vec(
        prop::collection::vec(
            (0.1f64..5.0, 0.0f64..20.0, 0..8usize, 0.0f64..3.0),
            1..3, // 1-2 actions per state
        ),
        n..=n,
    );
    per_state.prop_map(move |spec| {
        let mut b = Ctmdp::builder(n);
        for (i, actions) in spec.iter().enumerate() {
            for (k, &(ring_rate, cost, extra_to, extra_rate)) in actions.iter().enumerate() {
                let ring_target = (i + 1) % n;
                let mut rates = vec![(ring_target, ring_rate)];
                let extra_target = extra_to % n;
                if extra_target != i && extra_target != ring_target && extra_rate > 0.0 {
                    rates.push((extra_target, extra_rate));
                }
                b.action(i, format!("a{k}"), cost, &rates)
                    .expect("valid by construction");
            }
        }
        b.build().expect("every state has an action")
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn policy_iteration_matches_brute_force(mdp in (2usize..5).prop_flat_map(ring_ctmdp)) {
        let solution = average::policy_iteration(&mdp, &average::Options::default())
            .expect("unichain by construction");
        let brute = mdp
            .enumerate_policies()
            .into_iter()
            .map(|p| mdp.average_cost(&p).expect("irreducible by construction"))
            .fold(f64::INFINITY, f64::min);
        prop_assert!(
            (solution.gain() - brute).abs() < 1e-7 * (1.0 + brute.abs()),
            "PI {} vs brute {brute}",
            solution.gain()
        );
    }

    #[test]
    fn lp_matches_policy_iteration(mdp in (2usize..5).prop_flat_map(ring_ctmdp)) {
        let pi = average::policy_iteration(&mdp, &average::Options::default())
            .expect("unichain");
        let via_lp = lp::solve_average(&mdp).expect("feasible");
        prop_assert!(
            (via_lp.average_cost() - pi.gain()).abs() < 1e-6 * (1.0 + pi.gain().abs()),
            "LP {} vs PI {}",
            via_lp.average_cost(),
            pi.gain()
        );
    }

    #[test]
    fn value_iteration_matches_policy_iteration(
        mdp in (2usize..5).prop_flat_map(ring_ctmdp)
    ) {
        let pi = average::policy_iteration(&mdp, &average::Options::default())
            .expect("unichain");
        let options = value_iteration::Options {
            tolerance: 1e-8,
            ..value_iteration::Options::default()
        };
        let vi = value_iteration::solve(&mdp, &options).expect("aperiodic uniformized chain");
        prop_assert!(
            (vi.gain() - pi.gain()).abs() < 1e-5 * (1.0 + pi.gain().abs()),
            "VI {} vs PI {}",
            vi.gain(),
            pi.gain()
        );
    }

    #[test]
    fn uniformized_dtmdp_matches_ctmdp(mdp in (2usize..5).prop_flat_map(ring_ctmdp)) {
        let ct = average::policy_iteration(&mdp, &average::Options::default())
            .expect("unichain");
        let (dt, lambda) = Dtmdp::from_uniformized(&mdp, 1.05).expect("has transitions");
        let dt_sol = dt.policy_iteration(1_000).expect("unichain");
        prop_assert!(
            (dt_sol.gain() * lambda - ct.gain()).abs() < 1e-6 * (1.0 + ct.gain().abs())
        );
    }

    #[test]
    fn small_discount_rate_recovers_average_policy(
        mdp in (2usize..4).prop_flat_map(ring_ctmdp)
    ) {
        let avg = average::policy_iteration(&mdp, &average::Options::default())
            .expect("unichain");
        let dis = discounted::policy_iteration(&mdp, 1e-6, &discounted::Options::default())
            .expect("alpha > 0");
        // Vanishing discount: alpha * v -> optimal gain.
        prop_assert!(
            (dis.values()[0] * 1e-6 - avg.gain()).abs() < 1e-3 * (1.0 + avg.gain().abs())
        );
    }

    #[test]
    fn constrained_lp_interpolates_feasibly(
        mdp in (2usize..4).prop_flat_map(ring_ctmdp)
    ) {
        // Aux cost: indicator of state 0. The achievable range over
        // policies is found by optimizing the aux itself in both directions.
        let n = mdp.n_states();
        let aux: Vec<f64> = (0..n).map(|i| if i == 0 { 1.0 } else { 0.0 }).collect();
        let unconstrained = lp::solve_average(&mdp).expect("feasible");
        let at_optimum = unconstrained.average_of(&aux);
        // A bound at the unconstrained value must be feasible and no cheaper.
        let constrained = lp::solve_constrained_average(&mdp, &aux, at_optimum + 1e-9)
            .expect("bound attained by the unconstrained optimum");
        prop_assert!(constrained.average_cost() <= unconstrained.average_cost() + 1e-6);
        prop_assert!(constrained.average_of(&aux) <= at_optimum + 1e-6);
    }

    #[test]
    fn evaluation_gain_is_policy_average_cost(
        mdp in (2usize..5).prop_flat_map(ring_ctmdp)
    ) {
        for policy in mdp.enumerate_policies().into_iter().take(8) {
            let eval = average::evaluate(&mdp, &policy, 0).expect("unichain");
            let direct = mdp.average_cost(&policy).expect("irreducible");
            prop_assert!((eval.gain() - direct).abs() < 1e-7 * (1.0 + direct.abs()));
        }
    }
}

/// A random CTMDP paired with an arbitrary bias vector of matching length.
fn ctmdp_with_bias() -> impl Strategy<Value = (Ctmdp, Vec<f64>)> {
    (2usize..6).prop_flat_map(|n| (ring_ctmdp(n), prop::collection::vec(-10.0f64..10.0, n)))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// The CSR improvement kernel and the nested-list scan pick identical
    /// argmax actions — ties broken identically, incumbent preference
    /// included — for arbitrary incumbent policies, bias vectors, and
    /// improvement tolerances.
    #[test]
    fn csr_improvement_matches_reference_scan(
        (mdp, bias) in ctmdp_with_bias(),
        tolerance_choice in 0usize..4,
    ) {
        let tolerance = [0.0, 1e-9, 1e-3, 1.0][tolerance_choice];
        let kernel = mdp.sparse_actions();
        let bias = DVector::from_vec(bias);
        for incumbent in mdp.enumerate_policies().into_iter().take(8) {
            let reference = average::improve_step(&mdp, &incumbent, &bias, tolerance);
            let via_csr = average::improve_step_csr(&kernel, &incumbent, &bias, tolerance);
            prop_assert_eq!(
                reference.actions(),
                via_csr.actions(),
                "tolerance {}",
                tolerance
            );
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// The multichain evaluation's gain/bias pair satisfies the evaluation
    /// identity rowwise: `c_i − g_i + Σ_j G_ij v_j = 0` at every state, and
    /// the gains are harmonic (`Σ_j G_ij g_j = 0`).
    #[test]
    fn multichain_evaluation_satisfies_identities(
        mdp in (2usize..5).prop_flat_map(ring_ctmdp)
    ) {
        for policy in mdp.enumerate_policies().into_iter().take(6) {
            let eval = average::evaluate_multichain(&mdp, &policy).expect("evaluable");
            let generator = mdp.generator_for(&policy).expect("valid");
            let costs = mdp.cost_rates_for(&policy).expect("valid");
            let n = mdp.n_states();
            for i in 0..n {
                let gv: f64 = (0..n)
                    .map(|j| generator.rate(i, j) * eval.bias()[j])
                    .sum();
                let residual = costs[i] - eval.gains()[i] + gv;
                prop_assert!(
                    residual.abs() < 1e-7 * (1.0 + costs[i].abs()),
                    "state {i}: evaluation residual {residual}"
                );
                let gg: f64 = (0..n)
                    .map(|j| generator.rate(i, j) * eval.gains()[j])
                    .sum();
                prop_assert!(
                    gg.abs() < 1e-7 * (1.0 + eval.gains()[i].abs()),
                    "state {i}: gain drift {gg}"
                );
            }
        }
    }

    /// Multichain PI never loses to any enumerated policy from any start
    /// state.
    #[test]
    fn multichain_pi_dominates_enumeration(
        mdp in (2usize..4).prop_flat_map(ring_ctmdp)
    ) {
        let initial = dpm_mdp::Policy::uniform(mdp.n_states(), 0);
        let best = average::policy_iteration_multichain(
            &mdp,
            initial,
            &average::Options::default(),
        )
        .expect("solvable");
        for policy in mdp.enumerate_policies() {
            let eval = average::evaluate_multichain(&mdp, &policy).expect("evaluable");
            for i in 0..mdp.n_states() {
                prop_assert!(
                    best.gain_from(i) <= eval.gains()[i] + 1e-7 * (1.0 + eval.gains()[i].abs()),
                    "state {i}: PI {} beaten by enumerated {}",
                    best.gain_from(i),
                    eval.gains()[i]
                );
            }
        }
    }
}
