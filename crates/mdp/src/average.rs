//! Howard-style policy iteration for the limiting average cost criterion.
//!
//! This is the "policy iteration algorithm" of the paper's Figure 3 (the
//! paper defers the details to Howard 1960 / Miller 1968). For a stationary
//! policy `δ` of a unichain CTMDP, the *gain* `g` (average cost per unit
//! time) and *bias* (relative value) vector `v` solve the evaluation
//! equations
//!
//! ```text
//! c^δ − g·1 + G^δ v = 0,    v[reference] = 0.
//! ```
//!
//! The improvement step then picks, in each state, the action minimizing
//! the *test quantity* `c_i^a + Σ_j s_{i,j}^a v_j`; iteration terminates at
//! a policy that is its own improvement, which is average-cost optimal over
//! all stationary policies (and by Theorem 2.3 of the paper over all
//! piecewise-stationary ones).

use dpm_ctmc::stationary::{Method, Precond, SolverConfig};
use dpm_linalg::krylov::{self, Ilu0, KrylovOptions};
use dpm_linalg::{CsrMatrix, DMatrix, DVector, Lu, SparseLu};

use crate::{ActionCsr, Ctmdp, MdpError, Policy};

/// Margin applied to the uniformization constant by the sparse iterative
/// evaluation backend.
const UNIFORMIZATION_MARGIN: f64 = 1.05;

/// Default absolute tolerance on the gain estimate for
/// [`EvalBackend::SparseIterative`].
pub const ITERATIVE_GAIN_TOLERANCE: f64 = 1e-9;

/// Default sweep budget for [`EvalBackend::SparseIterative`].
pub const ITERATIVE_MAX_SWEEPS: usize = 1_000_000;

/// Linear-solver backend used by the policy-evaluation step.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub enum EvalBackend {
    /// Dense LU solve of the `n`-unknown evaluation system. Exact to
    /// rounding, `O(n³)` per evaluation; the default.
    #[default]
    Dense,
    /// Relative value iteration on the uniformized chain over the policy's
    /// sparse generator. `O(nnz)` per sweep with no dense matrix ever
    /// assembled, but the sweep count grows with the chain's stiffness:
    /// the uniformization constant is set by the fastest rate, so the
    /// sweeps needed scale as `O(instant_rate / slowest_rate)` and the
    /// default instant-rate surrogate (`χ(s,s) = 10⁶`) needs far more
    /// than the [`ITERATIVE_MAX_SWEEPS`] budget. Re-pose the model with a
    /// gentler instant rate (e.g. `PmSystemBuilder::instant_rate(1e2)`,
    /// which converges comfortably on the paper's models up to Q = 50)
    /// before selecting this backend — or use [`EvalBackend::SparseDirect`],
    /// whose factorization cost is independent of the rate spread.
    SparseIterative,
    /// Sparse direct LU solve of the evaluation system over the policy's
    /// CSR generator, with the dense gain column ordered last so fill-in
    /// stays `O(nnz)`. Exact to rounding like [`EvalBackend::Dense`] but
    /// near-linear in the state count for generator-shaped sparsity, and —
    /// unlike [`EvalBackend::SparseIterative`] — indifferent to stiffness:
    /// instant-rate surrogates cost nothing extra, retiring that backend's
    /// re-posing caveat.
    SparseDirect,
    /// Dense LU with factorization reuse across policy-iteration rounds:
    /// the evaluation system's row `i` depends only on state `i`'s chosen
    /// action, so after an improvement step that changes `m` actions the
    /// cached factors are corrected with a Sherman–Morrison–Woodbury
    /// row-update solve (`O((m+1)·n²)`) instead of refactorized
    /// (`O(n³)`). Falls back to a full refactorization when more than
    /// `n/4` rows changed or an `O(nnz)` residual check rejects the
    /// updated solve. Outside policy iteration this behaves exactly like
    /// [`EvalBackend::Dense`].
    CachedLu,
    /// Graceful degradation: the dense LU solve runs first, and a numerical
    /// failure — a `Singular`-induced [`MdpError::NotUnichain`], any
    /// [`MdpError::Numerical`], or a non-finite gain/bias — triggers one
    /// retry with the sparse iterative backend. Costs nothing on healthy
    /// models (the dense path wins immediately) and keeps policy iteration
    /// alive on generators conditioned badly enough that LU's relative
    /// pivot threshold misfires (e.g. uniformly fast rates dwarfing the
    /// unit gain column).
    Resilient,
    /// Preconditioned Krylov solve of the same sparse evaluation system
    /// [`EvalBackend::SparseDirect`] assembles — `O(nnz)` per iteration
    /// with no factorization fill-in at all, the tier for 10⁴–10⁶-state
    /// processes where even the sparse direct factor grows too large.
    ///
    /// The variant carries the *same* options struct as
    /// [`dpm_ctmc::stationary::Solver`] ([`SolverConfig`]), so harness
    /// CLI flags (`--method`, `--tol`, `--precond`, `--restart`) map 1:1
    /// onto policy-evaluation configuration instead of per-backend ad-hoc
    /// constants. A multichain (singular) policy surfaces as
    /// [`MdpError::NotConverged`] rather than the direct backends'
    /// [`MdpError::NotUnichain`] — the iteration cannot distinguish the
    /// two.
    SparseKrylov {
        /// Krylov method: [`Method::BiCgStab`] or [`Method::Gmres`]; any
        /// other method is rejected as an invalid parameter.
        method: Method,
        /// Shared solver options (tolerance, iteration budget, GMRES
        /// restart length, preconditioner).
        config: SolverConfig,
    },
}

impl EvalBackend {
    /// Canonical lowercase name, stable for CLI flags and artifacts.
    #[must_use]
    pub fn name(&self) -> &'static str {
        match self {
            EvalBackend::Dense => "dense",
            EvalBackend::SparseIterative => "sparse-iterative",
            EvalBackend::SparseDirect => "sparse-direct",
            EvalBackend::CachedLu => "cached-lu",
            EvalBackend::Resilient => "resilient",
            EvalBackend::SparseKrylov { method, .. } => method.name(),
        }
    }

    /// Parses the canonical name (as produced by [`EvalBackend::name`]);
    /// Krylov methods get [`SolverConfig::default`], refined afterwards
    /// with [`EvalBackend::with_config`]. The 1:1 mapping for `--method`.
    #[must_use]
    pub fn parse(name: &str) -> Option<EvalBackend> {
        match name {
            "dense" => Some(EvalBackend::Dense),
            "sparse-iterative" => Some(EvalBackend::SparseIterative),
            "sparse-direct" => Some(EvalBackend::SparseDirect),
            "cached-lu" => Some(EvalBackend::CachedLu),
            "resilient" => Some(EvalBackend::Resilient),
            "bicgstab" | "gmres" => Some(EvalBackend::SparseKrylov {
                method: Method::parse(name)?,
                config: SolverConfig::default(),
            }),
            _ => None,
        }
    }

    /// Replaces the solver options on configurable backends (currently
    /// [`EvalBackend::SparseKrylov`]); a no-op on the others, so CLI code
    /// can apply flag-derived configuration unconditionally.
    #[must_use]
    pub fn with_config(self, config: SolverConfig) -> EvalBackend {
        match self {
            EvalBackend::SparseKrylov { method, .. } => {
                EvalBackend::SparseKrylov { method, config }
            }
            other => other,
        }
    }
}

/// Options for [`policy_iteration`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Options {
    /// Hard cap on improvement rounds (each round solves one linear
    /// system). Policy iteration converges in finitely many steps, so this
    /// is a safety net only.
    pub max_iterations: usize,
    /// An action must beat the incumbent's test quantity by more than this
    /// to replace it — guards against cycling on ties.
    pub improvement_tolerance: f64,
    /// State whose bias is pinned to zero.
    pub reference_state: usize,
    /// Linear-solver backend for the evaluation step.
    pub backend: EvalBackend,
}

impl Default for Options {
    fn default() -> Self {
        Options {
            max_iterations: 1_000,
            improvement_tolerance: 1e-9,
            reference_state: 0,
            backend: EvalBackend::Dense,
        }
    }
}

/// Gain and bias of one policy.
#[derive(Debug, Clone, PartialEq)]
pub struct Evaluation {
    gain: f64,
    bias: DVector,
}

impl Evaluation {
    /// Average cost per unit time.
    #[must_use]
    pub fn gain(&self) -> f64 {
        self.gain
    }

    /// Relative values (bias), zero at the reference state.
    #[must_use]
    pub fn bias(&self) -> &DVector {
        &self.bias
    }
}

/// The result of policy iteration.
#[derive(Debug, Clone, PartialEq)]
pub struct Solution {
    policy: Policy,
    gain: f64,
    bias: DVector,
    iterations: usize,
    eval_residual: f64,
    eval_secs: Vec<f64>,
    gain_history: Vec<f64>,
    improvement_deltas: Vec<usize>,
}

impl Solution {
    /// The optimal stationary deterministic policy.
    #[must_use]
    pub fn policy(&self) -> &Policy {
        &self.policy
    }

    /// Optimal average cost per unit time.
    #[must_use]
    pub fn gain(&self) -> f64 {
        self.gain
    }

    /// Bias vector of the optimal policy.
    #[must_use]
    pub fn bias(&self) -> &DVector {
        &self.bias
    }

    /// Improvement rounds performed.
    #[must_use]
    pub fn iterations(&self) -> usize {
        self.iterations
    }

    /// `‖c − g·1 + G v‖_∞` of the final policy's evaluation equations — an
    /// a-posteriori convergence-quality certificate, computed over the
    /// policy's sparse generator (`O(nnz)`).
    #[must_use]
    pub fn eval_residual(&self) -> f64 {
        self.eval_residual
    }

    /// Wall-clock seconds of each policy-evaluation step, in round order.
    /// Run-volatile: telemetry records these as timers, never as
    /// deterministic outputs.
    #[must_use]
    pub fn eval_timings(&self) -> &[f64] {
        &self.eval_secs
    }

    /// Gain of the policy evaluated at each round (ends at
    /// [`Solution::gain`]); successive differences are the improvement
    /// steps' cost reductions.
    #[must_use]
    pub fn gain_history(&self) -> &[f64] {
        &self.gain_history
    }

    /// Number of states whose action changed in each improvement round
    /// (the final round is always 0 — that is the convergence test).
    #[must_use]
    pub fn improvement_deltas(&self) -> &[usize] {
        &self.improvement_deltas
    }
}

/// `‖c − g + G v‖_∞` over the policy's sparse generator, with per-state
/// gains `g` (constant for unichain solutions).
fn evaluation_residual(
    mdp: &Ctmdp,
    policy: &Policy,
    gain_of: impl Fn(usize) -> f64,
    bias: &DVector,
) -> Result<f64, MdpError> {
    let generator = mdp.sparse_generator_for(policy)?;
    let costs = mdp.cost_rates_for(policy)?;
    let gv = generator.csr().mul_vec(bias);
    let mut worst = 0.0f64;
    for i in 0..mdp.n_states() {
        worst = worst.max((costs[i] - gain_of(i) + gv[i]).abs());
    }
    Ok(worst)
}

/// Solves the evaluation equations for `policy`, returning its gain and
/// bias.
///
/// # Errors
///
/// Returns [`MdpError::InvalidPolicy`] / [`MdpError::InvalidParameter`] for
/// mismatched inputs and [`MdpError::NotUnichain`] if the equations are
/// singular (multichain policy).
pub fn evaluate(
    mdp: &Ctmdp,
    policy: &Policy,
    reference_state: usize,
) -> Result<Evaluation, MdpError> {
    mdp.check_policy(policy)?;
    let n = mdp.n_states();
    if reference_state >= n {
        return Err(MdpError::InvalidParameter {
            reason: format!("reference state {reference_state} out of range for {n} states"),
        });
    }
    let generator = mdp.generator_for(policy)?;
    let costs = mdp.cost_rates_for(policy)?;

    // Unknowns: x = (g, v_j for j != reference). Equation for each state i:
    //   -g + Σ_j G_ij v_j = -c_i       (with v_reference = 0)
    let col_of = |j: usize| -> Option<usize> {
        use std::cmp::Ordering;
        match j.cmp(&reference_state) {
            Ordering::Less => Some(1 + j),
            Ordering::Equal => None,
            Ordering::Greater => Some(j),
        }
    };
    let mut a = DMatrix::zeros(n, n);
    let mut b = DVector::zeros(n);
    for i in 0..n {
        a[(i, 0)] = -1.0;
        for j in 0..n {
            if let Some(c) = col_of(j) {
                a[(i, c)] = generator.rate(i, j);
            }
        }
        b[i] = -costs[i];
    }
    let solution = match a.lu() {
        Ok(lu) => lu.solve(&b).map_err(MdpError::Numerical)?,
        Err(dpm_linalg::LinalgError::Singular { .. }) => {
            return Err(MdpError::NotUnichain { iteration: 0 });
        }
        Err(e) => return Err(MdpError::Numerical(e)),
    };
    let gain = solution[0];
    let bias = DVector::from_fn(n, |j| match col_of(j) {
        Some(c) => solution[c],
        None => 0.0,
    });
    Ok(Evaluation { gain, bias })
}

/// Solves the evaluation equations iteratively over the policy's sparse
/// generator — relative value iteration `h ← c/Λ + Ph − (c/Λ + Ph)[ref]·1`
/// on the uniformized chain `P = I + G/Λ`, computed matrix-free in
/// `O(nnz)` per sweep.
///
/// At convergence `Λ·(c/Λ + Ph − h)` is the constant gain vector `g·1` and
/// `h` is the bias with `h[ref] = 0`, matching [`evaluate`] to the
/// tolerance. See [`EvalBackend::SparseIterative`] for when this pays off
/// and the stiffness caveat.
///
/// # Errors
///
/// As [`evaluate`], except a multichain policy surfaces as
/// [`MdpError::NotConverged`] (its per-class gains never equalize) rather
/// than [`MdpError::NotUnichain`].
pub fn evaluate_iterative(
    mdp: &Ctmdp,
    policy: &Policy,
    reference_state: usize,
) -> Result<Evaluation, MdpError> {
    mdp.check_policy(policy)?;
    let n = mdp.n_states();
    if reference_state >= n {
        return Err(MdpError::InvalidParameter {
            reason: format!("reference state {reference_state} out of range for {n} states"),
        });
    }
    let generator = mdp.sparse_generator_for(policy)?;
    let costs = mdp.cost_rates_for(policy)?;
    let lambda = UNIFORMIZATION_MARGIN * generator.max_exit_rate();
    if lambda <= 0.0 {
        // No transitions anywhere: unichain only in the single-state case.
        if n == 1 {
            return Ok(Evaluation {
                gain: costs[0],
                bias: DVector::zeros(1),
            });
        }
        return Err(MdpError::NotUnichain { iteration: 0 });
    }
    let mut scaled_costs = costs;
    scaled_costs.scale_mut(1.0 / lambda);

    let mut h = DVector::zeros(n);
    for _ in 0..ITERATIVE_MAX_SWEEPS {
        // w = c/Λ + P h = c/Λ + h + (G h)/Λ.
        let mut w = generator.csr().mul_vec(&h);
        w.scale_mut(1.0 / lambda);
        w.axpy(1.0, &h);
        w.axpy(1.0, &scaled_costs);

        let mut min_delta = f64::INFINITY;
        let mut max_delta = f64::NEG_INFINITY;
        for i in 0..n {
            let delta = w[i] - h[i];
            min_delta = min_delta.min(delta);
            max_delta = max_delta.max(delta);
        }
        let gain = lambda * 0.5 * (max_delta + min_delta);
        let shift = w[reference_state];
        h = w.map(|x| x - shift);
        if lambda * (max_delta - min_delta) <= ITERATIVE_GAIN_TOLERANCE {
            return Ok(Evaluation { gain, bias: h });
        }
    }
    Err(MdpError::NotConverged {
        iterations: ITERATIVE_MAX_SWEEPS,
    })
}

/// Rejects evaluations contaminated by NaN/Inf — a solver that "succeeds"
/// with non-finite output must not leak into the improvement step.
fn require_finite(eval: Evaluation) -> Result<Evaluation, MdpError> {
    if eval.gain.is_finite() && eval.bias.iter().all(f64::is_finite) {
        Ok(eval)
    } else {
        Err(MdpError::Numerical(dpm_linalg::LinalgError::InvalidInput {
            reason: "policy evaluation produced non-finite gain or bias".to_owned(),
        }))
    }
}

/// Policy evaluation with graceful degradation ([`EvalBackend::Resilient`]).
///
/// The dense solve runs first; on a numerical failure (including non-finite
/// output) the evaluation is retried with [`evaluate_iterative`]. Validation
/// errors ([`MdpError::InvalidPolicy`], [`MdpError::InvalidParameter`])
/// propagate untouched — retrying cannot fix a malformed input.
///
/// # Errors
///
/// If both backends fail, the dense error is returned: it names the root
/// cause (e.g. a singular evaluation system), of which the iterative
/// failure is usually a downstream symptom.
pub fn evaluate_resilient(
    mdp: &Ctmdp,
    policy: &Policy,
    reference_state: usize,
) -> Result<Evaluation, MdpError> {
    match evaluate(mdp, policy, reference_state).and_then(require_finite) {
        Ok(eval) => Ok(eval),
        Err(e @ (MdpError::InvalidPolicy { .. } | MdpError::InvalidParameter { .. })) => Err(e),
        Err(dense_error) => evaluate_iterative(mdp, policy, reference_state)
            .and_then(require_finite)
            .map_err(|_| dense_error),
    }
}

/// Solves the evaluation equations by sparse direct LU over the policy's
/// CSR generator ([`EvalBackend::SparseDirect`]).
///
/// Unknown ordering puts the bias components first and the gain *last*:
/// the gain column is the only dense column of the system, and eliminating
/// it last keeps the factorization's fill-in `O(nnz)`. Because the solve is
/// direct, stiff rate spectra (instant-event surrogate rates) cost nothing
/// beyond their entries — the caveat that forces
/// [`EvalBackend::SparseIterative`] onto re-posed models does not apply.
///
/// # Errors
///
/// As [`evaluate`]: validation errors for mismatched inputs,
/// [`MdpError::NotUnichain`] if the system is singular (multichain policy).
pub fn evaluate_sparse_direct(
    mdp: &Ctmdp,
    policy: &Policy,
    reference_state: usize,
) -> Result<Evaluation, MdpError> {
    mdp.check_policy(policy)?;
    let n = mdp.n_states();
    if reference_state >= n {
        return Err(MdpError::InvalidParameter {
            reason: format!("reference state {reference_state} out of range for {n} states"),
        });
    }
    let generator = mdp.sparse_generator_for(policy)?;
    let costs = mdp.cost_rates_for(policy)?;

    // Unknowns: x = (v_j for j != reference, then g). Equation for state i:
    //   Σ_j G_ij v_j − g = −c_i        (with v_reference = 0)
    let col_of = |j: usize| -> Option<usize> {
        use std::cmp::Ordering;
        match j.cmp(&reference_state) {
            Ordering::Less => Some(j),
            Ordering::Equal => None,
            Ordering::Greater => Some(j - 1),
        }
    };
    let mut triplets = Vec::with_capacity(generator.csr().nnz() + n);
    for (i, j, v) in generator.csr().iter() {
        if let Some(c) = col_of(j) {
            triplets.push((i, c, v));
        }
    }
    for i in 0..n {
        triplets.push((i, n - 1, -1.0));
    }
    let a = CsrMatrix::from_triplets(n, n, &triplets).map_err(MdpError::Numerical)?;
    let b = DVector::from_fn(n, |i| -costs[i]);
    let solution = match SparseLu::new(&a) {
        Ok(lu) => lu.solve(&b).map_err(MdpError::Numerical)?,
        Err(dpm_linalg::LinalgError::Singular { .. }) => {
            return Err(MdpError::NotUnichain { iteration: 0 });
        }
        Err(e) => return Err(MdpError::Numerical(e)),
    };
    let gain = solution[n - 1];
    let bias = DVector::from_fn(n, |j| match col_of(j) {
        Some(c) => solution[c],
        None => 0.0,
    });
    Ok(Evaluation { gain, bias })
}

/// Solves the evaluation equations with a preconditioned Krylov method
/// over the same sparse system [`evaluate_sparse_direct`] assembles
/// ([`EvalBackend::SparseKrylov`]).
///
/// `config` is the shared [`SolverConfig`] from the stationary solver, so
/// CLI-level tolerance / iteration-budget / restart / preconditioner flags
/// apply identically to both uses. A singular ILU(0) factorization
/// downgrades deterministically to the unpreconditioned iteration; a
/// non-convergent iteration surfaces as [`MdpError::NotConverged`] (a
/// multichain policy is indistinguishable from slow convergence here —
/// use a direct backend for the [`MdpError::NotUnichain`] diagnosis).
///
/// # Errors
///
/// Validation errors as [`evaluate`]; [`MdpError::InvalidParameter`] when
/// `method` is not [`Method::BiCgStab`] or [`Method::Gmres`];
/// [`MdpError::NotConverged`] when the iteration budget runs out.
pub fn evaluate_krylov(
    mdp: &Ctmdp,
    policy: &Policy,
    reference_state: usize,
    method: Method,
    config: &SolverConfig,
) -> Result<Evaluation, MdpError> {
    if !method.is_krylov() {
        return Err(MdpError::InvalidParameter {
            reason: format!("evaluation backend requires a Krylov method, got {method:?}"),
        });
    }
    mdp.check_policy(policy)?;
    let n = mdp.n_states();
    if reference_state >= n {
        return Err(MdpError::InvalidParameter {
            reason: format!("reference state {reference_state} out of range for {n} states"),
        });
    }
    let generator = mdp.sparse_generator_for(policy)?;
    let costs = mdp.cost_rates_for(policy)?;

    // Same unknown ordering as the sparse direct backend: bias components
    // for j != reference first, the gain last (its dense column is the
    // system's only dense column).
    let col_of = |j: usize| -> Option<usize> {
        use std::cmp::Ordering;
        match j.cmp(&reference_state) {
            Ordering::Less => Some(j),
            Ordering::Equal => None,
            Ordering::Greater => Some(j - 1),
        }
    };
    let mut triplets = Vec::with_capacity(generator.csr().nnz() + n);
    for (i, j, v) in generator.csr().iter() {
        if let Some(c) = col_of(j) {
            triplets.push((i, c, v));
        }
    }
    for i in 0..n {
        triplets.push((i, n - 1, -1.0));
    }
    let a = CsrMatrix::from_triplets(n, n, &triplets).map_err(MdpError::Numerical)?;
    let b = DVector::from_fn(n, |i| -costs[i]);
    let options = KrylovOptions {
        tolerance: config.tolerance,
        max_iterations: config.max_iterations,
        restart: config.restart,
    };
    let precond = match config.precond {
        Precond::Ilu0 => match Ilu0::new(&a) {
            Ok(m) => Some(m),
            // Deterministic downgrade, mirroring the stationary solver.
            Err(dpm_linalg::LinalgError::Singular { .. }) => None,
            Err(e) => return Err(MdpError::Numerical(e)),
        },
        Precond::None => None,
    };
    let result = match method {
        Method::Gmres => krylov::gmres(&a, &b, precond.as_ref(), &options),
        _ => krylov::bicgstab(&a, &b, precond.as_ref(), &options),
    };
    let solution = match result {
        Ok(r) => r.solution,
        Err(dpm_linalg::LinalgError::NotConverged { iterations, .. }) => {
            return Err(MdpError::NotConverged { iterations });
        }
        Err(e) => return Err(MdpError::Numerical(e)),
    };
    let gain = solution[n - 1];
    let bias = DVector::from_fn(n, |j| match col_of(j) {
        Some(c) => solution[c],
        None => 0.0,
    });
    require_finite(Evaluation { gain, bias })
}

/// Dispatches the evaluation step according to `backend`.
fn evaluate_with(
    mdp: &Ctmdp,
    policy: &Policy,
    reference_state: usize,
    backend: EvalBackend,
) -> Result<Evaluation, MdpError> {
    match backend {
        // A one-off evaluation has no factorization to reuse, so the cached
        // backend degenerates to the plain dense solve.
        EvalBackend::Dense | EvalBackend::CachedLu => evaluate(mdp, policy, reference_state),
        EvalBackend::SparseIterative => evaluate_iterative(mdp, policy, reference_state),
        EvalBackend::SparseDirect => evaluate_sparse_direct(mdp, policy, reference_state),
        EvalBackend::Resilient => evaluate_resilient(mdp, policy, reference_state),
        EvalBackend::SparseKrylov { method, config } => {
            evaluate_krylov(mdp, policy, reference_state, method, &config)
        }
    }
}

/// Cached dense factorization for [`EvalBackend::CachedLu`]: the LU factors
/// of the evaluation system assembled for `actions`, reusable while the
/// policy stays close to that base.
struct EvalCache {
    lu: Lu,
    /// Policy actions at factorization time, row by row.
    actions: Vec<usize>,
}

/// Maps evaluation-system singularities to the unichain diagnosis, like
/// [`evaluate`].
fn lu_or_not_unichain(a: DMatrix) -> Result<Lu, MdpError> {
    match a.lu() {
        Ok(lu) => Ok(lu),
        Err(dpm_linalg::LinalgError::Singular { .. }) => {
            Err(MdpError::NotUnichain { iteration: 0 })
        }
        Err(e) => Err(MdpError::Numerical(e)),
    }
}

/// Policy evaluation with dense-LU factorization reuse across rounds.
///
/// Assembles the full system and factorizes on the first call (or whenever
/// the policy drifted more than `n/4` rows from the cached base), and
/// otherwise corrects the cached solve with a Sherman–Morrison–Woodbury
/// row update covering exactly the states whose action differs from the
/// base policy. Every updated solve is certified against the evaluation
/// equations over the sparse generator; a residual above
/// `1e-8·(1 + |g| + ‖c‖_∞)` triggers a full refactorization, so results
/// stay within direct-solve accuracy unconditionally.
fn evaluate_cached(
    mdp: &Ctmdp,
    policy: &Policy,
    reference_state: usize,
    cache: &mut Option<EvalCache>,
) -> Result<Evaluation, MdpError> {
    mdp.check_policy(policy)?;
    let n = mdp.n_states();
    if reference_state >= n {
        return Err(MdpError::InvalidParameter {
            reason: format!("reference state {reference_state} out of range for {n} states"),
        });
    }
    let col_of = |j: usize| -> Option<usize> {
        use std::cmp::Ordering;
        match j.cmp(&reference_state) {
            Ordering::Less => Some(1 + j),
            Ordering::Equal => None,
            Ordering::Greater => Some(j),
        }
    };
    let costs = mdp.cost_rates_for(policy)?;
    let b = DVector::from_fn(n, |i| -costs[i]);

    let refresh_limit = (n / 4).max(1);
    let changed: Vec<usize> = match cache {
        Some(c) => (0..n)
            .filter(|&i| c.actions[i] != policy.action(i))
            .collect(),
        None => (0..n).collect(),
    };

    if let Some(c) = cache.as_ref() {
        if changed.len() <= refresh_limit {
            // Δrow_i = row_i(new action) − row_i(base action); only the
            // generator entries differ (the gain column is constant).
            let updates: Vec<(usize, DVector)> = changed
                .iter()
                .map(|&i| {
                    let mut delta = DVector::zeros(n);
                    let new = &mdp.actions(i)[policy.action(i)];
                    let old = &mdp.actions(i)[c.actions[i]];
                    for &(to, rate) in new.rates() {
                        if let Some(col) = col_of(to) {
                            delta[col] += rate;
                        }
                    }
                    for &(to, rate) in old.rates() {
                        if let Some(col) = col_of(to) {
                            delta[col] -= rate;
                        }
                    }
                    if let Some(col) = col_of(i) {
                        delta[col] -= new.exit_rate() - old.exit_rate();
                    }
                    (i, delta)
                })
                .collect();
            if let Ok(solution) = c.lu.solve_updated(&updates, &b) {
                let gain = solution[0];
                let bias = DVector::from_fn(n, |j| match col_of(j) {
                    Some(col) => solution[col],
                    None => 0.0,
                });
                let eval = Evaluation { gain, bias };
                if let (true, Ok(residual)) = (
                    eval.gain.is_finite() && eval.bias.iter().all(f64::is_finite),
                    evaluation_residual(mdp, policy, |_| eval.gain, &eval.bias),
                ) {
                    let scale = 1.0 + eval.gain.abs() + costs.norm_inf();
                    if residual <= 1e-8 * scale {
                        return Ok(eval);
                    }
                }
            }
            // A failed or uncertified update falls through to refactorize.
        }
    }

    // Full assembly + factorization; re-seat the cache on the new base.
    let generator = mdp.generator_for(policy)?;
    let mut a = DMatrix::zeros(n, n);
    for i in 0..n {
        a[(i, 0)] = -1.0;
        for j in 0..n {
            if let Some(c) = col_of(j) {
                a[(i, c)] = generator.rate(i, j);
            }
        }
    }
    let lu = lu_or_not_unichain(a)?;
    let solution = lu.solve(&b).map_err(MdpError::Numerical)?;
    *cache = Some(EvalCache {
        lu,
        actions: (0..n).map(|i| policy.action(i)).collect(),
    });
    let gain = solution[0];
    let bias = DVector::from_fn(n, |j| match col_of(j) {
        Some(c) => solution[c],
        None => 0.0,
    });
    Ok(Evaluation { gain, bias })
}

/// Test quantity `c_i^a + Σ_j s_{i,j}^a v_j` for action `a` in state `i`
/// given bias `v`.
fn test_quantity(mdp: &Ctmdp, state: usize, action: usize, bias: &DVector) -> f64 {
    let spec = &mdp.actions(state)[action];
    let mut q = spec.cost_rate();
    for &(to, rate) in spec.rates() {
        q += rate * (bias[to] - bias[state]);
    }
    q
}

/// One policy-improvement sweep by direct scan of the nested per-action
/// rate lists — the reference implementation the CSR kernel is checked
/// against. In every state the incumbent action wins unless a challenger
/// (scanned in action-index order) beats its test quantity by more than
/// `tolerance`.
///
/// # Panics
///
/// Panics if `policy` does not match `mdp` or `bias` is too short; callers
/// inside policy iteration have already validated both.
#[must_use]
pub fn improve_step(mdp: &Ctmdp, policy: &Policy, bias: &DVector, tolerance: f64) -> Policy {
    let mut next = policy.clone();
    for state in 0..mdp.n_states() {
        let incumbent = policy.action(state);
        let mut best_action = incumbent;
        let mut best_q = test_quantity(mdp, state, incumbent, bias);
        for action in 0..mdp.actions(state).len() {
            if action == incumbent {
                continue;
            }
            let q = test_quantity(mdp, state, action, bias);
            if q < best_q - tolerance {
                best_q = q;
                best_action = action;
            }
        }
        if best_action != incumbent {
            next = next.with_action(state, best_action);
        }
    }
    next
}

/// One policy-improvement sweep over a precomputed [`ActionCsr`] table —
/// `O(nnz)` contiguous traversal, bit-identical in argmax choice and
/// tie-breaking to [`improve_step`].
///
/// # Panics
///
/// As [`improve_step`], if the table/policy/bias dimensions disagree.
#[must_use]
pub fn improve_step_csr(
    kernel: &ActionCsr,
    policy: &Policy,
    bias: &DVector,
    tolerance: f64,
) -> Policy {
    let mut next = policy.clone();
    for state in 0..kernel.n_states() {
        let incumbent = policy.action(state);
        let mut best_action = incumbent;
        let mut best_q = kernel.test_quantity(state, incumbent, bias);
        for action in 0..kernel.n_actions(state) {
            if action == incumbent {
                continue;
            }
            let q = kernel.test_quantity(state, action, bias);
            if q < best_q - tolerance {
                best_q = q;
                best_action = action;
            }
        }
        if best_action != incumbent {
            next = next.with_action(state, best_action);
        }
    }
    next
}

/// Runs policy iteration to the average-cost optimal stationary policy.
///
/// The initial policy takes the minimum-cost-rate action in each state.
///
/// # Errors
///
/// Returns [`MdpError::NotUnichain`] if some intermediate policy induces a
/// multichain process (the power-management models in `dpm-core` preclude
/// this by construction), and [`MdpError::NotConverged`] if the iteration
/// cap is hit.
///
/// # Examples
///
/// ```
/// use dpm_mdp::{average, Ctmdp};
///
/// # fn main() -> Result<(), dpm_mdp::MdpError> {
/// let mut b = Ctmdp::builder(2);
/// b.action(0, "stay-cheap", 1.0, &[(1, 1.0)])?;
/// b.action(1, "slow", 5.0, &[(0, 1.0)])?;
/// b.action(1, "fast", 9.0, &[(0, 10.0)])?;
/// let mdp = b.build()?;
/// let best = average::policy_iteration(&mdp, &average::Options::default())?;
/// // Fast repair wins: less time spent in the expensive state.
/// assert_eq!(best.policy().action(1), 1);
/// # Ok(())
/// # }
/// ```
pub fn policy_iteration(mdp: &Ctmdp, options: &Options) -> Result<Solution, MdpError> {
    policy_iteration_from(mdp, mdp.min_cost_policy(), options)
}

/// Policy iteration from an explicit starting policy.
///
/// # Errors
///
/// As [`policy_iteration`], plus [`MdpError::InvalidPolicy`] for a
/// mismatched start.
pub fn policy_iteration_from(
    mdp: &Ctmdp,
    initial: Policy,
    options: &Options,
) -> Result<Solution, MdpError> {
    mdp.check_policy(&initial)?;
    let n = mdp.n_states();
    let kernel = mdp.sparse_actions();
    let mut cache = None;
    let mut policy = initial;
    let mut eval_secs = Vec::new();
    let mut gain_history = Vec::new();
    let mut improvement_deltas = Vec::new();
    for iteration in 1..=options.max_iterations {
        // dpm-lint: allow(nondeterminism, reason = "eval_secs is a wall-clock diagnostic in the iteration stats, not part of the solved policy or values")
        let eval_start = std::time::Instant::now();
        let eval = match options.backend {
            EvalBackend::CachedLu => {
                evaluate_cached(mdp, &policy, options.reference_state, &mut cache)
            }
            backend => evaluate_with(mdp, &policy, options.reference_state, backend),
        }
        .map_err(|e| match e {
            MdpError::NotUnichain { .. } => MdpError::NotUnichain { iteration },
            other => other,
        })?;
        eval_secs.push(eval_start.elapsed().as_secs_f64());
        gain_history.push(eval.gain);
        // Improvement step over the contiguous per-action CSR rows.
        let next = improve_step_csr(&kernel, &policy, eval.bias(), options.improvement_tolerance);
        let changed = (0..n)
            .filter(|&state| next.action(state) != policy.action(state))
            .count();
        let improved = changed > 0;
        improvement_deltas.push(changed);
        if !improved {
            let eval_residual = evaluation_residual(mdp, &policy, |_| eval.gain, &eval.bias)?;
            return Ok(Solution {
                policy,
                gain: eval.gain,
                bias: eval.bias,
                iterations: iteration,
                eval_residual,
                eval_secs,
                gain_history,
                improvement_deltas,
            });
        }
        policy = next;
    }
    Err(MdpError::NotConverged {
        iterations: options.max_iterations,
    })
}

/// Gains and bias of a possibly multichain policy.
#[derive(Debug, Clone, PartialEq)]
pub struct MultichainEvaluation {
    gains: DVector,
    bias: DVector,
}

impl MultichainEvaluation {
    /// Per-state long-run average cost. Constant within each recurrent
    /// class; absorption-weighted for transient states.
    #[must_use]
    pub fn gains(&self) -> &DVector {
        &self.gains
    }

    /// Bias (relative value) vector, pinned to zero at one state per
    /// closed class.
    #[must_use]
    pub fn bias(&self) -> &DVector {
        &self.bias
    }
}

/// Evaluates a policy without any unichain assumption: per-state gains via
/// the communicating-class decomposition, then a bias vector from the
/// modified evaluation equations (one bias pinned per closed class, that
/// class's redundant equation dropped).
///
/// # Errors
///
/// Propagates policy validation and linear-solver failures.
pub fn evaluate_multichain(mdp: &Ctmdp, policy: &Policy) -> Result<MultichainEvaluation, MdpError> {
    mdp.check_policy(policy)?;
    let n = mdp.n_states();
    let generator = mdp.generator_for(policy)?;
    let costs = mdp.cost_rates_for(policy)?;
    let gains = dpm_ctmc::stationary::gain_vector(&generator, &costs)?;

    // Identify closed classes and pin one representative per class.
    let classes = dpm_ctmc::graph::communicating_classes(&generator);
    let mut closed = vec![true; classes.len()];
    for (from, to, _) in generator.transitions() {
        if classes.class_of(from) != classes.class_of(to) {
            closed[classes.class_of(from)] = false;
        }
    }
    let mut pinned = vec![false; n];
    for c in 0..classes.len() {
        if closed[c] {
            pinned[classes.members(c)[0]] = true;
        }
    }
    // Unknowns: v_j for non-pinned j. Equations: every non-pinned state's
    //   c_i - g_i + Σ_j G_ij v_j = 0.
    let unknowns: Vec<usize> = (0..n).filter(|&j| !pinned[j]).collect();
    let col_of: Vec<Option<usize>> = {
        let mut map = vec![None; n];
        for (c, &j) in unknowns.iter().enumerate() {
            map[j] = Some(c);
        }
        map
    };
    let m = unknowns.len();
    let mut bias = DVector::zeros(n);
    if m > 0 {
        let mut a = DMatrix::zeros(m, m);
        let mut b = DVector::zeros(m);
        for (row, &i) in unknowns.iter().enumerate() {
            for (j, &col_slot) in col_of.iter().enumerate() {
                if let Some(col) = col_slot {
                    a[(row, col)] = generator.rate(i, j);
                }
            }
            b[row] = gains[i] - costs[i];
        }
        let v = a.lu()?.solve(&b)?;
        for (c, &j) in unknowns.iter().enumerate() {
            bias[j] = v[c];
        }
    }
    Ok(MultichainEvaluation { gains, bias })
}

/// Result of multichain policy iteration.
#[derive(Debug, Clone, PartialEq)]
pub struct MultichainSolution {
    policy: Policy,
    gains: DVector,
    bias: DVector,
    iterations: usize,
    eval_residual: f64,
    eval_secs: Vec<f64>,
    improvement_deltas: Vec<usize>,
}

impl MultichainSolution {
    /// The optimal stationary deterministic policy.
    #[must_use]
    pub fn policy(&self) -> &Policy {
        &self.policy
    }

    /// Per-state optimal gains.
    #[must_use]
    pub fn gains(&self) -> &DVector {
        &self.gains
    }

    /// Long-run average cost starting from `state`.
    ///
    /// # Panics
    ///
    /// Panics if `state` is out of range.
    #[must_use]
    pub fn gain_from(&self, state: usize) -> f64 {
        self.gains[state]
    }

    /// Bias vector of the optimal policy.
    #[must_use]
    pub fn bias(&self) -> &DVector {
        &self.bias
    }

    /// Improvement rounds performed.
    #[must_use]
    pub fn iterations(&self) -> usize {
        self.iterations
    }

    /// `‖c − g + G v‖_∞` of the final policy's modified evaluation
    /// equations (per-state gains) — the convergence-quality certificate.
    #[must_use]
    pub fn eval_residual(&self) -> f64 {
        self.eval_residual
    }

    /// Wall-clock seconds of each policy-evaluation step, in round order.
    #[must_use]
    pub fn eval_timings(&self) -> &[f64] {
        &self.eval_secs
    }

    /// Number of states whose action changed in each improvement round
    /// (the final round is always 0).
    #[must_use]
    pub fn improvement_deltas(&self) -> &[usize] {
        &self.improvement_deltas
    }
}

/// Policy iteration for general (multichain) average-cost CTMDPs: Howard's
/// two-stage improvement — first reduce the expected gain drift
/// `Σ_j s_{i,j}^a g_j`, then, among drift-minimal actions, reduce the bias
/// test quantity `c_i^a + Σ_j s_{i,j}^a v_j`.
///
/// Use this when policies may split the chain into several recurrent
/// classes (e.g. power-managed systems where "stay asleep forever" is a
/// legal command); for unichain processes [`policy_iteration`] is cheaper.
///
/// # Errors
///
/// Returns [`MdpError::NotConverged`] if the iteration cap is hit, and
/// propagates evaluation failures.
pub fn policy_iteration_multichain(
    mdp: &Ctmdp,
    initial: Policy,
    options: &Options,
) -> Result<MultichainSolution, MdpError> {
    mdp.check_policy(&initial)?;
    let n = mdp.n_states();
    let kernel = mdp.sparse_actions();
    let mut policy = initial;
    let mut eval_secs = Vec::new();
    let mut improvement_deltas = Vec::new();
    let mut drifts: Vec<f64> = Vec::new();
    for iteration in 1..=options.max_iterations {
        // dpm-lint: allow(nondeterminism, reason = "eval_secs is a wall-clock diagnostic in the iteration stats, not part of the solved policy or values")
        let eval_start = std::time::Instant::now();
        let eval = evaluate_multichain(mdp, &policy)?;
        eval_secs.push(eval_start.elapsed().as_secs_f64());
        let gains = eval.gains();
        let bias = eval.bias();
        let scale = 1.0 + gains.norm_inf();
        let tol = options.improvement_tolerance * scale;

        let mut improved = false;
        let mut changed = 0usize;
        let mut next = policy.clone();
        for state in 0..n {
            let current = policy.action(state);
            let n_actions = kernel.n_actions(state);
            // Each action's drift is needed up to three times below; one
            // contiguous kernel pass computes them all.
            drifts.clear();
            drifts.extend((0..n_actions).map(|action| kernel.drift(state, action, gains)));
            let current_drift = drifts[current];
            // Stage 1: gain improvement.
            let mut best_drift = current_drift;
            for &drift in &drifts {
                best_drift = best_drift.min(drift);
            }
            if best_drift < current_drift - tol {
                // Among (near-)minimal-drift actions, take the best bias.
                let mut best_action = current;
                let mut best_test = f64::INFINITY;
                for (action, &drift) in drifts.iter().enumerate() {
                    if drift <= best_drift + tol {
                        let t = kernel.bias_test(state, action, bias);
                        if t < best_test {
                            best_test = t;
                            best_action = action;
                        }
                    }
                }
                if best_action != current {
                    next = next.with_action(state, best_action);
                    improved = true;
                    changed += 1;
                }
                continue;
            }
            // Stage 2: bias improvement among drift-neutral actions.
            let current_test = kernel.bias_test(state, current, bias);
            let mut best_action = current;
            let mut best_test = current_test;
            for (action, &drift) in drifts.iter().enumerate() {
                if action == current {
                    continue;
                }
                if drift <= current_drift + tol {
                    let t = kernel.bias_test(state, action, bias);
                    if t < best_test - tol {
                        best_test = t;
                        best_action = action;
                    }
                }
            }
            if best_action != current {
                next = next.with_action(state, best_action);
                improved = true;
                changed += 1;
            }
        }
        improvement_deltas.push(changed);
        if !improved {
            let eval_residual = evaluation_residual(mdp, &policy, |i| eval.gains[i], &eval.bias)?;
            return Ok(MultichainSolution {
                policy,
                gains: eval.gains,
                bias: eval.bias,
                iterations: iteration,
                eval_residual,
                eval_secs,
                improvement_deltas,
            });
        }
        policy = next;
    }
    Err(MdpError::NotConverged {
        iterations: options.max_iterations,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Two-state machine: in state 1 (broken) choose slow cheap repair or
    /// fast expensive repair.
    fn repair_mdp(fast_cost: f64) -> Ctmdp {
        let mut b = Ctmdp::builder(2);
        b.action(0, "run", 1.0, &[(1, 1.0)]).unwrap();
        b.action(1, "slow", 5.0, &[(0, 1.0)]).unwrap();
        b.action(1, "fast", fast_cost, &[(0, 10.0)]).unwrap();
        b.build().unwrap()
    }

    #[test]
    fn evaluation_matches_stationary_average() {
        let mdp = repair_mdp(9.0);
        for policy in mdp.enumerate_policies() {
            let eval = evaluate(&mdp, &policy, 0).unwrap();
            let direct = mdp.average_cost(&policy).unwrap();
            assert!(
                (eval.gain() - direct).abs() < 1e-10,
                "policy {policy}: {} vs {direct}",
                eval.gain()
            );
            assert_eq!(eval.bias()[0], 0.0);
        }
    }

    #[test]
    fn evaluation_satisfies_bellman_identity() {
        let mdp = repair_mdp(9.0);
        let policy = Policy::new(vec![0, 1]);
        let eval = evaluate(&mdp, &policy, 0).unwrap();
        // c - g + G v = 0 at every state.
        let g = mdp.generator_for(&policy).unwrap();
        let c = mdp.cost_rates_for(&policy).unwrap();
        let gv = g.matrix().mul_vec(eval.bias());
        for i in 0..2 {
            assert!((c[i] - eval.gain() + gv[i]).abs() < 1e-10);
        }
    }

    #[test]
    fn policy_iteration_finds_brute_force_optimum() {
        for fast_cost in [2.0, 9.0, 30.0, 100.0] {
            let mdp = repair_mdp(fast_cost);
            let solution = policy_iteration(&mdp, &Options::default()).unwrap();
            let brute = mdp
                .enumerate_policies()
                .into_iter()
                .map(|p| mdp.average_cost(&p).unwrap())
                .fold(f64::INFINITY, f64::min);
            assert!(
                (solution.gain() - brute).abs() < 1e-9,
                "fast_cost {fast_cost}: PI {} vs brute {brute}",
                solution.gain()
            );
        }
    }

    #[test]
    fn expensive_fast_repair_is_rejected() {
        // At fast-cost 100 the fast action is never worth it.
        let mdp = repair_mdp(100.0);
        let solution = policy_iteration(&mdp, &Options::default()).unwrap();
        assert_eq!(solution.policy().action(1), 0);
    }

    #[test]
    fn cheap_fast_repair_is_chosen() {
        let mdp = repair_mdp(6.0);
        let solution = policy_iteration(&mdp, &Options::default()).unwrap();
        assert_eq!(solution.policy().action(1), 1);
    }

    #[test]
    fn reference_state_does_not_change_gain() {
        let mdp = repair_mdp(9.0);
        let policy = Policy::new(vec![0, 1]);
        let e0 = evaluate(&mdp, &policy, 0).unwrap();
        let e1 = evaluate(&mdp, &policy, 1).unwrap();
        assert!((e0.gain() - e1.gain()).abs() < 1e-12);
        // Biases differ by a constant shift.
        let shift = e0.bias()[1] - e1.bias()[1];
        assert!((e0.bias()[0] - (e1.bias()[0] + shift)).abs() < 1e-10);
    }

    #[test]
    fn iteration_count_is_reported() {
        let mdp = repair_mdp(6.0);
        let solution = policy_iteration(&mdp, &Options::default()).unwrap();
        assert!(solution.iterations() >= 1);
        assert!(solution.iterations() <= 4);
    }

    #[test]
    fn convergence_telemetry_is_reported() {
        let mdp = repair_mdp(6.0);
        let solution = policy_iteration(&mdp, &Options::default()).unwrap();
        // One evaluation timing and one improvement delta per iteration,
        // and the final improvement round changes nothing.
        assert_eq!(solution.eval_timings().len(), solution.iterations());
        assert_eq!(solution.improvement_deltas().len(), solution.iterations());
        assert_eq!(*solution.improvement_deltas().last().unwrap(), 0);
        assert!(solution.eval_timings().iter().all(|&t| t >= 0.0));
        // The converged policy satisfies the evaluation equations tightly.
        assert!(solution.eval_residual() < 1e-9);
        assert_eq!(solution.gain_history().len(), solution.iterations());
        assert!((solution.gain_history().last().unwrap() - solution.gain()).abs() < 1e-12);
    }

    #[test]
    fn multichain_convergence_telemetry_is_reported() {
        let mut b = Ctmdp::builder(3);
        b.action(0, "stay", 1.0, &[]).unwrap();
        b.action(0, "hop", 0.5, &[(1, 2.0)]).unwrap();
        b.action(1, "stay", 4.0, &[]).unwrap();
        b.action(1, "back", 2.0, &[(0, 1.0)]).unwrap();
        b.action(2, "stay", 0.1, &[]).unwrap();
        let mdp = b.build().unwrap();
        let sol =
            policy_iteration_multichain(&mdp, Policy::new(vec![0, 0, 0]), &Options::default())
                .unwrap();
        assert_eq!(sol.eval_timings().len(), sol.iterations());
        assert_eq!(sol.improvement_deltas().len(), sol.iterations());
        assert_eq!(*sol.improvement_deltas().last().unwrap(), 0);
        assert!(sol.eval_residual() < 1e-9);
    }

    #[test]
    fn three_state_ring_with_shortcuts() {
        // State 0 cheap, state 2 very expensive; action choice in state 1
        // routes either into 2 or back to 0.
        let mut b = Ctmdp::builder(3);
        b.action(0, "advance", 0.0, &[(1, 1.0)]).unwrap();
        b.action(1, "risky", 0.0, &[(2, 1.0)]).unwrap();
        b.action(1, "safe", 3.0, &[(0, 1.0)]).unwrap();
        b.action(2, "recover", 50.0, &[(0, 0.2)]).unwrap();
        let mdp = b.build().unwrap();
        let solution = policy_iteration(&mdp, &Options::default()).unwrap();
        // Expensive state must be avoided.
        assert_eq!(solution.policy().action(1), 1);
        // Brute force via gain/bias evaluation, which (unlike the stationary
        // solver) handles policies with transient states.
        let brute = mdp
            .enumerate_policies()
            .into_iter()
            .map(|p| evaluate(&mdp, &p, 0).unwrap().gain())
            .fold(f64::INFINITY, f64::min);
        assert!((solution.gain() - brute).abs() < 1e-9);
    }

    #[test]
    fn invalid_inputs_are_rejected() {
        let mdp = repair_mdp(9.0);
        assert!(evaluate(&mdp, &Policy::new(vec![0]), 0).is_err());
        assert!(evaluate(&mdp, &Policy::new(vec![0, 0]), 5).is_err());
        assert!(policy_iteration_from(&mdp, Policy::new(vec![9, 9]), &Options::default()).is_err());
    }

    #[test]
    fn single_state_process() {
        let mut b = Ctmdp::builder(1);
        b.action(0, "idle", 2.5, &[]).unwrap();
        b.action(0, "other", 4.0, &[]).unwrap();
        let mdp = b.build().unwrap();
        let solution = policy_iteration(&mdp, &Options::default()).unwrap();
        assert_eq!(solution.policy().action(0), 0);
        assert!((solution.gain() - 2.5).abs() < 1e-12);
    }
}

#[cfg(test)]
mod iterative_backend_tests {
    use super::*;

    fn repair_mdp(fast_cost: f64) -> Ctmdp {
        let mut b = Ctmdp::builder(2);
        b.action(0, "run", 1.0, &[(1, 1.0)]).unwrap();
        b.action(1, "slow", 5.0, &[(0, 1.0)]).unwrap();
        b.action(1, "fast", fast_cost, &[(0, 10.0)]).unwrap();
        b.build().unwrap()
    }

    #[test]
    fn iterative_evaluation_matches_dense() {
        let mdp = repair_mdp(9.0);
        for policy in mdp.enumerate_policies() {
            let dense = evaluate(&mdp, &policy, 0).unwrap();
            let sparse = evaluate_iterative(&mdp, &policy, 0).unwrap();
            assert!(
                (dense.gain() - sparse.gain()).abs() < 1e-7,
                "policy {policy}: {} vs {}",
                dense.gain(),
                sparse.gain()
            );
            let diff = (dense.bias() - sparse.bias()).norm_inf();
            assert!(diff < 1e-6, "policy {policy}: bias diff {diff}");
        }
    }

    #[test]
    fn iterative_evaluation_handles_transient_states() {
        // 0 -> 1 <-> 2 under the only policy; state 0 transient.
        let mut b = Ctmdp::builder(3);
        b.action(0, "go", 100.0, &[(1, 1.0)]).unwrap();
        b.action(1, "swap", 2.0, &[(2, 1.0)]).unwrap();
        b.action(2, "swap", 4.0, &[(1, 1.0)]).unwrap();
        let mdp = b.build().unwrap();
        let policy = Policy::new(vec![0, 0, 0]);
        let dense = evaluate(&mdp, &policy, 1).unwrap();
        let sparse = evaluate_iterative(&mdp, &policy, 1).unwrap();
        assert!((dense.gain() - sparse.gain()).abs() < 1e-7);
        assert!((sparse.gain() - 3.0).abs() < 1e-7);
    }

    #[test]
    fn policy_iteration_agrees_across_backends() {
        for fast_cost in [2.0, 9.0, 30.0, 100.0] {
            let mdp = repair_mdp(fast_cost);
            let dense = policy_iteration(&mdp, &Options::default()).unwrap();
            let sparse = policy_iteration(
                &mdp,
                &Options {
                    backend: EvalBackend::SparseIterative,
                    ..Options::default()
                },
            )
            .unwrap();
            assert_eq!(dense.policy(), sparse.policy(), "fast_cost {fast_cost}");
            assert!((dense.gain() - sparse.gain()).abs() < 1e-7);
        }
    }

    #[test]
    fn sparse_generator_matches_dense_generator() {
        let mdp = repair_mdp(9.0);
        for policy in mdp.enumerate_policies() {
            let dense = mdp.generator_for(&policy).unwrap();
            let sparse = mdp.sparse_generator_for(&policy).unwrap();
            for i in 0..2 {
                for j in 0..2 {
                    assert!((dense.rate(i, j) - sparse.rate(i, j)).abs() < 1e-15);
                }
            }
        }
    }

    #[test]
    fn single_state_iterative_evaluation() {
        let mut b = Ctmdp::builder(1);
        b.action(0, "idle", 2.5, &[]).unwrap();
        let mdp = b.build().unwrap();
        let eval = evaluate_iterative(&mdp, &Policy::new(vec![0]), 0).unwrap();
        assert!((eval.gain() - 2.5).abs() < 1e-12);
    }

    #[test]
    fn default_backend_is_dense() {
        assert_eq!(EvalBackend::default(), EvalBackend::Dense);
        assert_eq!(Options::default().backend, EvalBackend::Dense);
    }
}

#[cfg(test)]
mod krylov_backend_tests {
    use super::*;

    fn repair_mdp(fast_cost: f64) -> Ctmdp {
        let mut b = Ctmdp::builder(2);
        b.action(0, "run", 1.0, &[(1, 1.0)]).unwrap();
        b.action(1, "slow", 5.0, &[(0, 1.0)]).unwrap();
        b.action(1, "fast", fast_cost, &[(0, 10.0)]).unwrap();
        b.build().unwrap()
    }

    /// Birth–death service model with rates spanning six orders of
    /// magnitude — the stiff spectrum the SYS instant-rate surrogate
    /// produces.
    fn stiff_mdp() -> Ctmdp {
        let mut b = Ctmdp::builder(4);
        b.action(0, "arrive", 0.5, &[(1, 1e-3)]).unwrap();
        b.action(1, "serve", 2.0, &[(0, 1e3), (2, 1.0)]).unwrap();
        b.action(2, "serve", 4.0, &[(1, 1e3), (3, 1e-2)]).unwrap();
        b.action(3, "flush", 8.0, &[(0, 1e3)]).unwrap();
        b.build().unwrap()
    }

    #[test]
    fn krylov_evaluation_matches_dense() {
        let mdp = repair_mdp(9.0);
        for policy in mdp.enumerate_policies() {
            let dense = evaluate(&mdp, &policy, 0).unwrap();
            for method in [Method::BiCgStab, Method::Gmres] {
                for precond in [Precond::Ilu0, Precond::None] {
                    let config = SolverConfig {
                        precond,
                        ..SolverConfig::default()
                    };
                    let krylov = evaluate_krylov(&mdp, &policy, 0, method, &config).unwrap();
                    assert!(
                        (dense.gain() - krylov.gain()).abs() < 1e-8,
                        "policy {policy} {method:?}/{precond:?}: {} vs {}",
                        dense.gain(),
                        krylov.gain()
                    );
                    let diff = (dense.bias() - krylov.bias()).norm_inf();
                    assert!(
                        diff < 1e-8,
                        "policy {policy} {method:?}/{precond:?}: {diff}"
                    );
                }
            }
        }
    }

    #[test]
    fn krylov_evaluation_handles_stiff_rates() {
        let mdp = stiff_mdp();
        let policy = Policy::new(vec![0, 0, 0, 0]);
        let dense = evaluate(&mdp, &policy, 0).unwrap();
        for method in [Method::BiCgStab, Method::Gmres] {
            let eval = evaluate_krylov(&mdp, &policy, 0, method, &SolverConfig::default()).unwrap();
            assert!(
                (dense.gain() - eval.gain()).abs() < 1e-8 * (1.0 + dense.gain().abs()),
                "{method:?}: {} vs {}",
                dense.gain(),
                eval.gain()
            );
        }
    }

    #[test]
    fn policy_iteration_agrees_with_krylov_backend() {
        for fast_cost in [2.0, 9.0, 30.0, 100.0] {
            let mdp = repair_mdp(fast_cost);
            let dense = policy_iteration(&mdp, &Options::default()).unwrap();
            for method in [Method::BiCgStab, Method::Gmres] {
                let krylov = policy_iteration(
                    &mdp,
                    &Options {
                        backend: EvalBackend::SparseKrylov {
                            method,
                            config: SolverConfig::default(),
                        },
                        ..Options::default()
                    },
                )
                .unwrap();
                assert_eq!(dense.policy(), krylov.policy(), "fast_cost {fast_cost}");
                assert!((dense.gain() - krylov.gain()).abs() < 1e-7);
            }
        }
    }

    #[test]
    fn krylov_rejects_non_krylov_methods() {
        let mdp = repair_mdp(9.0);
        let policy = Policy::new(vec![0, 0]);
        for method in [Method::Lu, Method::Gth, Method::Power, Method::Iterative] {
            let err =
                evaluate_krylov(&mdp, &policy, 0, method, &SolverConfig::default()).unwrap_err();
            assert!(
                matches!(err, MdpError::InvalidParameter { .. }),
                "{method:?}: {err}"
            );
        }
    }

    #[test]
    fn backend_names_round_trip() {
        let backends = [
            EvalBackend::Dense,
            EvalBackend::SparseIterative,
            EvalBackend::SparseDirect,
            EvalBackend::CachedLu,
            EvalBackend::Resilient,
            EvalBackend::SparseKrylov {
                method: Method::BiCgStab,
                config: SolverConfig::default(),
            },
            EvalBackend::SparseKrylov {
                method: Method::Gmres,
                config: SolverConfig::default(),
            },
        ];
        for backend in backends {
            let parsed = EvalBackend::parse(backend.name()).unwrap();
            assert_eq!(parsed, backend, "{}", backend.name());
        }
        assert!(EvalBackend::parse("cholesky").is_none());
    }

    #[test]
    fn with_config_rewrites_krylov_options_only() {
        let tight = SolverConfig {
            tolerance: 1e-6,
            max_iterations: 123,
            restart: 7,
            precond: Precond::None,
        };
        let krylov = EvalBackend::parse("gmres").unwrap().with_config(tight);
        match krylov {
            EvalBackend::SparseKrylov { method, config } => {
                assert_eq!(method, Method::Gmres);
                assert_eq!(config.max_iterations, 123);
                assert_eq!(config.restart, 7);
                assert_eq!(config.precond, Precond::None);
            }
            other => panic!("unexpected backend {other:?}"),
        }
        assert_eq!(
            EvalBackend::Dense.with_config(tight),
            EvalBackend::Dense,
            "with_config must be a no-op off the Krylov backend"
        );
    }
}

#[cfg(test)]
mod resilient_backend_tests {
    use super::*;

    fn repair_mdp(fast_cost: f64) -> Ctmdp {
        let mut b = Ctmdp::builder(2);
        b.action(0, "run", 1.0, &[(1, 1.0)]).unwrap();
        b.action(1, "slow", 5.0, &[(0, 1.0)]).unwrap();
        b.action(1, "fast", fast_cost, &[(0, 10.0)]).unwrap();
        b.build().unwrap()
    }

    #[test]
    fn resilient_matches_dense_on_healthy_models() {
        let mdp = repair_mdp(9.0);
        for policy in mdp.enumerate_policies() {
            let dense = evaluate(&mdp, &policy, 0).unwrap();
            let resilient = evaluate_resilient(&mdp, &policy, 0).unwrap();
            assert_eq!(dense, resilient, "policy {policy}");
        }
    }

    #[test]
    fn resilient_survives_lu_pivot_misfire() {
        // Uniformly fast rates (1e14) push LU's relative pivot threshold
        // (1e-13 × max|A|) above the unit entries of the gain column, so the
        // dense backend misdiagnoses this healthy 2-cycle as multichain.
        // The uniformized chain, by contrast, is perfectly conditioned.
        let mut b = Ctmdp::builder(2);
        b.action(0, "fast", 1.0, &[(1, 1e14)]).unwrap();
        b.action(1, "fast", 3.0, &[(0, 1e14)]).unwrap();
        let mdp = b.build().unwrap();
        let policy = Policy::new(vec![0, 0]);
        assert!(matches!(
            evaluate(&mdp, &policy, 0),
            Err(MdpError::NotUnichain { .. })
        ));
        let eval = evaluate_resilient(&mdp, &policy, 0).unwrap();
        assert!((eval.gain() - 2.0).abs() < 1e-6, "gain {}", eval.gain());

        // End-to-end: policy iteration completes instead of aborting.
        let options = Options {
            backend: EvalBackend::Resilient,
            ..Options::default()
        };
        let solution = policy_iteration(&mdp, &options).unwrap();
        assert!((solution.gain() - 2.0).abs() < 1e-6);
    }

    #[test]
    fn resilient_propagates_validation_errors() {
        let mdp = repair_mdp(9.0);
        assert!(matches!(
            evaluate_resilient(&mdp, &Policy::new(vec![0]), 0),
            Err(MdpError::InvalidPolicy { .. })
        ));
        assert!(matches!(
            evaluate_resilient(&mdp, &Policy::new(vec![0, 0]), 5),
            Err(MdpError::InvalidParameter { .. })
        ));
    }

    #[test]
    fn resilient_reports_dense_error_when_both_backends_fail() {
        // Genuinely multichain: two absorbing states. Neither backend can
        // produce a unichain evaluation; the dense diagnosis wins.
        let mut b = Ctmdp::builder(2);
        b.action(0, "stay", 1.0, &[]).unwrap();
        b.action(1, "stay", 2.0, &[]).unwrap();
        let mdp = b.build().unwrap();
        assert!(matches!(
            evaluate_resilient(&mdp, &Policy::new(vec![0, 0]), 0),
            Err(MdpError::NotUnichain { .. })
        ));
    }
}

#[cfg(test)]
mod kernel_and_reuse_tests {
    use super::*;

    fn repair_mdp(fast_cost: f64) -> Ctmdp {
        let mut b = Ctmdp::builder(2);
        b.action(0, "run", 1.0, &[(1, 1.0)]).unwrap();
        b.action(1, "slow", 5.0, &[(0, 1.0)]).unwrap();
        b.action(1, "fast", fast_cost, &[(0, 10.0)]).unwrap();
        b.build().unwrap()
    }

    /// A larger unichain CTMDP (ring with shortcuts) where every policy is
    /// irreducible, so the cached-LU path exercises many improvement rounds.
    fn ring(n: usize) -> Ctmdp {
        let mut b = Ctmdp::builder(n);
        for i in 0..n {
            let next = (i + 1) % n;
            let cost = 1.0 + (i as f64) * 0.37;
            b.action(i, "step", cost, &[(next, 1.0 + (i as f64) * 0.01)])
                .unwrap();
            let shortcut = (i + 2) % n;
            if shortcut != i && shortcut != next {
                b.action(i, "skip", cost * 1.5, &[(next, 0.3), (shortcut, 0.9)])
                    .unwrap();
            }
        }
        b.build().unwrap()
    }

    #[test]
    fn csr_improvement_matches_reference_scan_exactly() {
        let mdp = ring(12);
        let kernel = mdp.sparse_actions();
        for policy in mdp.enumerate_policies().into_iter().take(32) {
            let eval = evaluate(&mdp, &policy, 0).unwrap();
            let tol = Options::default().improvement_tolerance;
            let dense = improve_step(&mdp, &policy, eval.bias(), tol);
            let csr = improve_step_csr(&kernel, &policy, eval.bias(), tol);
            assert_eq!(dense, csr, "policy {policy}");
        }
    }

    #[test]
    fn sparse_direct_matches_dense_evaluation() {
        let mdp = repair_mdp(9.0);
        for policy in mdp.enumerate_policies() {
            let dense = evaluate(&mdp, &policy, 0).unwrap();
            let sparse = evaluate_sparse_direct(&mdp, &policy, 0).unwrap();
            assert!(
                (dense.gain() - sparse.gain()).abs() < 1e-10,
                "policy {policy}: {} vs {}",
                dense.gain(),
                sparse.gain()
            );
            let diff = (dense.bias() - sparse.bias()).norm_inf();
            assert!(diff < 1e-9, "policy {policy}: bias diff {diff}");
        }
    }

    #[test]
    fn sparse_direct_handles_stiff_rates_directly() {
        // A 1e6 rate spread needs ~1e6 iterative sweeps but is a plain
        // direct solve; this is the SparseIterative caveat being retired.
        let mut b = Ctmdp::builder(3);
        b.action(0, "instant", 0.5, &[(1, 1e6)]).unwrap();
        b.action(1, "work", 2.0, &[(2, 1.0)]).unwrap();
        b.action(2, "rest", 1.0, &[(0, 0.5)]).unwrap();
        let mdp = b.build().unwrap();
        let policy = Policy::new(vec![0, 0, 0]);
        let dense = evaluate(&mdp, &policy, 0).unwrap();
        let sparse = evaluate_sparse_direct(&mdp, &policy, 0).unwrap();
        assert!((dense.gain() - sparse.gain()).abs() < 1e-9 * (1.0 + dense.gain().abs()));
    }

    #[test]
    fn sparse_direct_diagnoses_multichain_policies() {
        let mut b = Ctmdp::builder(2);
        b.action(0, "stay", 1.0, &[]).unwrap();
        b.action(1, "stay", 2.0, &[]).unwrap();
        let mdp = b.build().unwrap();
        assert!(matches!(
            evaluate_sparse_direct(&mdp, &Policy::new(vec![0, 0]), 0),
            Err(MdpError::NotUnichain { .. })
        ));
    }

    #[test]
    fn sparse_direct_backend_reaches_the_same_solution() {
        for fast_cost in [2.0, 9.0, 30.0, 100.0] {
            let mdp = repair_mdp(fast_cost);
            let dense = policy_iteration(&mdp, &Options::default()).unwrap();
            let sparse = policy_iteration(
                &mdp,
                &Options {
                    backend: EvalBackend::SparseDirect,
                    ..Options::default()
                },
            )
            .unwrap();
            assert_eq!(dense.policy(), sparse.policy(), "fast_cost {fast_cost}");
            assert!((dense.gain() - sparse.gain()).abs() < 1e-10);
        }
    }

    #[test]
    fn cached_lu_backend_matches_dense_end_to_end() {
        for mdp in [
            repair_mdp(2.0),
            repair_mdp(9.0),
            repair_mdp(100.0),
            ring(14),
        ] {
            let dense = policy_iteration(&mdp, &Options::default()).unwrap();
            let cached = policy_iteration(
                &mdp,
                &Options {
                    backend: EvalBackend::CachedLu,
                    ..Options::default()
                },
            )
            .unwrap();
            assert_eq!(dense.policy(), cached.policy());
            assert!(
                (dense.gain() - cached.gain()).abs() < 1e-10 * (1.0 + dense.gain().abs()),
                "{} vs {}",
                dense.gain(),
                cached.gain()
            );
            let diff = (dense.bias() - cached.bias()).norm_inf();
            assert!(diff < 1e-8, "bias diff {diff}");
        }
    }

    #[test]
    fn cached_lu_row_update_path_is_exercised() {
        // Start from "skip everywhere" so improvement rounds walk the
        // policy back state by state, reusing the cached factorization.
        let mdp = ring(16);
        let worst = Policy::uniform(mdp.n_states(), 1);
        let cached = policy_iteration_from(
            &mdp,
            worst.clone(),
            &Options {
                backend: EvalBackend::CachedLu,
                ..Options::default()
            },
        )
        .unwrap();
        let dense = policy_iteration_from(&mdp, worst, &Options::default()).unwrap();
        assert_eq!(dense.policy(), cached.policy());
        assert_eq!(dense.iterations(), cached.iterations());
        assert!(cached.eval_residual() < 1e-9);
    }

    #[test]
    fn cached_lu_standalone_evaluation_equals_dense() {
        let mdp = repair_mdp(9.0);
        let policy = Policy::new(vec![0, 1]);
        let via_backend = evaluate_with(&mdp, &policy, 0, EvalBackend::CachedLu).unwrap();
        let dense = evaluate(&mdp, &policy, 0).unwrap();
        assert_eq!(via_backend, dense);
    }

    #[test]
    fn cached_evaluation_survives_cache_reseeding() {
        let mdp = ring(10);
        let policies: Vec<Policy> = mdp.enumerate_policies().into_iter().take(6).collect();
        let mut cache = None;
        for policy in &policies {
            let cached = evaluate_cached(&mdp, policy, 0, &mut cache).unwrap();
            let dense = evaluate(&mdp, policy, 0).unwrap();
            assert!(
                (cached.gain() - dense.gain()).abs() < 1e-9 * (1.0 + dense.gain().abs()),
                "{} vs {}",
                cached.gain(),
                dense.gain()
            );
            assert!((cached.bias() - dense.bias()).norm_inf() < 1e-8);
        }
    }
}

#[cfg(test)]
mod multichain_tests {
    use super::*;

    /// MDP where "stay put" is legal everywhere, so policies can shatter
    /// the chain into several recurrent classes.
    fn shatterable() -> Ctmdp {
        let mut b = Ctmdp::builder(3);
        // State 0: cheap-ish, can stay (absorbing) or move on.
        b.action(0, "stay", 3.0, &[]).unwrap();
        b.action(0, "go", 3.0, &[(1, 1.0)]).unwrap();
        // State 1: expensive, can stay or move.
        b.action(1, "stay", 10.0, &[]).unwrap();
        b.action(1, "go", 10.0, &[(2, 1.0)]).unwrap();
        // State 2: cheapest.
        b.action(2, "stay", 1.0, &[]).unwrap();
        b.action(2, "back", 5.0, &[(0, 1.0)]).unwrap();
        b.build().unwrap()
    }

    #[test]
    fn evaluate_multichain_handles_all_stay() {
        let mdp = shatterable();
        let policy = Policy::new(vec![0, 0, 0]);
        let eval = evaluate_multichain(&mdp, &policy).unwrap();
        assert_eq!(eval.gains().as_slice(), &[3.0, 10.0, 1.0]);
    }

    #[test]
    fn evaluate_multichain_matches_unichain_evaluation() {
        let mdp = shatterable();
        // go, go, stay: unichain (absorbs in state 2).
        let policy = Policy::new(vec![1, 1, 0]);
        let multi = evaluate_multichain(&mdp, &policy).unwrap();
        let uni = evaluate(&mdp, &policy, 2).unwrap();
        for i in 0..3 {
            assert!((multi.gains()[i] - uni.gain()).abs() < 1e-10);
        }
    }

    #[test]
    fn multichain_pi_routes_everything_to_the_cheap_state() {
        let mdp = shatterable();
        // Worst start: everything stays put.
        let sol =
            policy_iteration_multichain(&mdp, Policy::new(vec![0, 0, 0]), &Options::default())
                .unwrap();
        // Optimal: from 0 go to 1, from 1 go to 2, stay at 2 (gain 1
        // everywhere).
        for i in 0..3 {
            assert!(
                (sol.gain_from(i) - 1.0).abs() < 1e-9,
                "state {i}: {}",
                sol.gain_from(i)
            );
        }
        assert_eq!(sol.policy().actions(), &[1, 1, 0]);
        assert!(sol.iterations() >= 2);
    }

    #[test]
    fn multichain_pi_agrees_with_unichain_pi_on_unichain_mdp() {
        let mut b = Ctmdp::builder(2);
        b.action(0, "run", 1.0, &[(1, 1.0)]).unwrap();
        b.action(1, "slow", 5.0, &[(0, 1.0)]).unwrap();
        b.action(1, "fast", 9.0, &[(0, 10.0)]).unwrap();
        let mdp = b.build().unwrap();
        let uni = policy_iteration(&mdp, &Options::default()).unwrap();
        let multi = policy_iteration_multichain(&mdp, Policy::new(vec![0, 0]), &Options::default())
            .unwrap();
        assert_eq!(uni.policy(), multi.policy());
        assert!((multi.gain_from(0) - uni.gain()).abs() < 1e-9);
    }

    #[test]
    fn multichain_pi_keeps_isolated_cheap_class() {
        // If staying where you are is cheapest, PI should not move.
        let mut b = Ctmdp::builder(2);
        b.action(0, "stay", 1.0, &[]).unwrap();
        b.action(0, "go", 1.0, &[(1, 1.0)]).unwrap();
        b.action(1, "stay", 2.0, &[]).unwrap();
        b.action(1, "go", 2.0, &[(0, 1.0)]).unwrap();
        let mdp = b.build().unwrap();
        let sol = policy_iteration_multichain(&mdp, Policy::new(vec![0, 0]), &Options::default())
            .unwrap();
        // From state 0, staying (gain 1) is optimal; from state 1, moving
        // to 0 (gain 1) beats staying (gain 2).
        assert!((sol.gain_from(0) - 1.0).abs() < 1e-9);
        assert!((sol.gain_from(1) - 1.0).abs() < 1e-9);
        assert_eq!(sol.policy().action(0), 0);
        assert_eq!(sol.policy().action(1), 1);
    }
}
