use std::error::Error;
use std::fmt;

use dpm_ctmc::CtmcError;
use dpm_linalg::LinalgError;
use dpm_lp::LpError;

/// Error type for MDP construction and solving.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum MdpError {
    /// A state index was out of range.
    StateOutOfRange {
        /// Offending index.
        state: usize,
        /// Number of states in the process.
        n_states: usize,
    },
    /// A state has no actions, so no policy can be formed.
    NoActions {
        /// The action-less state.
        state: usize,
    },
    /// An action specification was rejected.
    InvalidAction {
        /// The state the action was attached to.
        state: usize,
        /// Explanation.
        reason: String,
    },
    /// A policy does not match the process (wrong length, bad action index).
    InvalidPolicy {
        /// Explanation.
        reason: String,
    },
    /// A solver parameter was invalid.
    InvalidParameter {
        /// Explanation.
        reason: String,
    },
    /// The policy-evaluation equations were singular — typically the policy
    /// induces a multichain process, outside the unichain assumption.
    NotUnichain {
        /// The policy-iteration step at which evaluation failed.
        iteration: usize,
    },
    /// An iterative solver failed to converge.
    NotConverged {
        /// Iterations performed.
        iterations: usize,
    },
    /// The LP formulation reported infeasibility (e.g. an unattainable
    /// performance constraint).
    Infeasible,
    /// A chain-level analysis failed.
    Chain(CtmcError),
    /// A numerical step failed.
    Numerical(LinalgError),
    /// The LP substrate failed.
    Lp(LpError),
}

impl fmt::Display for MdpError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            MdpError::StateOutOfRange { state, n_states } => {
                write!(
                    f,
                    "state {state} out of range for process with {n_states} states"
                )
            }
            MdpError::NoActions { state } => write!(f, "state {state} has no actions"),
            MdpError::InvalidAction { state, reason } => {
                write!(f, "invalid action at state {state}: {reason}")
            }
            MdpError::InvalidPolicy { reason } => write!(f, "invalid policy: {reason}"),
            MdpError::InvalidParameter { reason } => write!(f, "invalid parameter: {reason}"),
            MdpError::NotUnichain { iteration } => write!(
                f,
                "policy evaluation singular at iteration {iteration}; policy is not unichain"
            ),
            MdpError::NotConverged { iterations } => {
                write!(f, "solver did not converge within {iterations} iterations")
            }
            MdpError::Infeasible => write!(f, "policy optimization problem is infeasible"),
            MdpError::Chain(e) => write!(f, "chain analysis failed: {e}"),
            MdpError::Numerical(e) => write!(f, "numerical failure: {e}"),
            MdpError::Lp(e) => write!(f, "LP solver failure: {e}"),
        }
    }
}

impl Error for MdpError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            MdpError::Chain(e) => Some(e),
            MdpError::Numerical(e) => Some(e),
            MdpError::Lp(e) => Some(e),
            _ => None,
        }
    }
}

impl From<CtmcError> for MdpError {
    fn from(e: CtmcError) -> Self {
        MdpError::Chain(e)
    }
}

impl From<LinalgError> for MdpError {
    fn from(e: LinalgError) -> Self {
        MdpError::Numerical(e)
    }
}

impl From<LpError> for MdpError {
    fn from(e: LpError) -> Self {
        MdpError::Lp(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn displays_are_informative() {
        assert!(MdpError::NoActions { state: 2 }.to_string().contains('2'));
        assert!(MdpError::Infeasible.to_string().contains("infeasible"));
    }

    #[test]
    fn sources_chain_through() {
        let e = MdpError::from(LinalgError::Singular { pivot: 1 });
        assert!(Error::source(&e).is_some());
        let e = MdpError::from(LpError::EmptyProblem);
        assert!(Error::source(&e).is_some());
    }

    #[test]
    fn error_is_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<MdpError>();
    }
}
