//! Linear-programming solution of average-cost CTMDPs via occupation
//! measures.
//!
//! This is the solution technique of Paleologo et al. (DAC 1998) that the
//! paper's policy-iteration algorithm is compared against, and it is also
//! the *exact* way to solve the performance-constrained formulation of
//! Section IV:
//!
//! ```text
//! min  Σ_{i,a} x_{i,a} c_i^a
//! s.t. Σ_{i,a} x_{i,a} s_{i,j}^a = 0            for every state j
//!      Σ_{i,a} x_{i,a} = 1
//!      Σ_{i,a} x_{i,a} d_i ≤ D_M                (optional constraint)
//!      x ≥ 0
//! ```
//!
//! The variable `x_{i,a}` is the long-run fraction of time spent in state
//! `i` while taking action `a`. Without the performance constraint a basic
//! optimal solution is deterministic; with it, the optimal policy may
//! randomize in one state — exactly the structure the paper's Figure 4
//! frontier exhibits between adjacent deterministic policies.

use dpm_lp::{Outcome, Problem, Relation};

use crate::{Ctmdp, MdpError, RandomizedPolicy};

/// Mass below which a state-action frequency is treated as zero when
/// extracting a policy.
const MASS_EPS: f64 = 1e-9;

/// Result of an occupation-measure LP solve.
#[derive(Debug, Clone, PartialEq)]
pub struct LpSolution {
    policy: RandomizedPolicy,
    average_cost: f64,
    occupation: Vec<Vec<f64>>,
    pivots: usize,
}

impl LpSolution {
    /// The optimal (possibly randomized) stationary policy.
    #[must_use]
    pub fn policy(&self) -> &RandomizedPolicy {
        &self.policy
    }

    /// Optimal average cost per unit time.
    #[must_use]
    pub fn average_cost(&self) -> f64 {
        self.average_cost
    }

    /// Raw state-action occupation frequencies `x_{i,a}`.
    #[must_use]
    pub fn occupation(&self) -> &[Vec<f64>] {
        &self.occupation
    }

    /// Long-run average of a per-state quantity `d` under the optimal
    /// occupation measure.
    ///
    /// # Panics
    ///
    /// Panics if `d.len()` differs from the state count.
    #[must_use]
    pub fn average_of(&self, d: &[f64]) -> f64 {
        assert_eq!(d.len(), self.occupation.len(), "length mismatch");
        self.occupation
            .iter()
            .zip(d)
            .map(|(acts, &di)| di * acts.iter().sum::<f64>())
            .sum()
    }

    /// Simplex pivots used.
    #[must_use]
    pub fn pivots(&self) -> usize {
        self.pivots
    }
}

fn build_problem(mdp: &Ctmdp) -> (Problem, Vec<(usize, usize)>) {
    let n = mdp.n_states();
    // Flatten state-action pairs.
    let mut index: Vec<(usize, usize)> = Vec::with_capacity(mdp.n_state_actions());
    for i in 0..n {
        for a in 0..mdp.actions(i).len() {
            index.push((i, a));
        }
    }
    let costs: Vec<f64> = index
        .iter()
        .map(|&(i, a)| mdp.actions(i)[a].cost_rate())
        .collect();
    // dpm-lint: allow(no_panic, reason = "the MDP was validated non-empty before the LP is assembled")
    let mut problem = Problem::minimize(costs).expect("at least one state-action pair");

    // Balance: Σ_{i,a} x_{i,a} G^a(i, j) = 0 for every j.
    for j in 0..n {
        let coeffs: Vec<f64> = index
            .iter()
            .map(|&(i, a)| {
                let spec = &mdp.actions(i)[a];
                if i == j {
                    -spec.exit_rate()
                } else {
                    spec.rate_to(j)
                }
            })
            .collect();
        problem
            .add_constraint(coeffs, Relation::Eq, 0.0)
            // dpm-lint: allow(no_panic, reason = "the row is built with exactly one coefficient per LP variable just above")
            .expect("arity matches");
    }
    // Normalization.
    problem
        .add_constraint(vec![1.0; index.len()], Relation::Eq, 1.0)
        // dpm-lint: allow(no_panic, reason = "the row is built with exactly one coefficient per LP variable just above")
        .expect("arity matches");
    (problem, index)
}

fn extract(mdp: &Ctmdp, index: &[(usize, usize)], solution: &dpm_lp::Solution) -> LpSolution {
    let n = mdp.n_states();
    let mut occupation: Vec<Vec<f64>> = (0..n).map(|i| vec![0.0; mdp.actions(i).len()]).collect();
    for (k, &(i, a)) in index.iter().enumerate() {
        occupation[i][a] = solution.variables()[k].max(0.0);
    }
    let weights: Vec<Vec<f64>> = occupation
        .iter()
        .map(|acts| {
            let total: f64 = acts.iter().sum();
            if total > MASS_EPS {
                acts.clone()
            } else {
                // State unvisited under the optimal measure: the action is
                // irrelevant for the average cost; default to action 0.
                let mut w = vec![0.0; acts.len()];
                w[0] = 1.0;
                w
            }
        })
        .collect();
    LpSolution {
        policy: RandomizedPolicy::new(weights),
        average_cost: solution.objective(),
        occupation,
        pivots: solution.pivots(),
    }
}

/// Solves the unconstrained average-cost problem by LP.
///
/// # Errors
///
/// Returns [`MdpError::Infeasible`] if the balance system is infeasible
/// (cannot happen for a well-formed CTMDP with at least one recurrent
/// policy) and propagates LP failures.
///
/// # Examples
///
/// ```
/// use dpm_mdp::{average, lp, Ctmdp};
///
/// # fn main() -> Result<(), dpm_mdp::MdpError> {
/// let mut b = Ctmdp::builder(2);
/// b.action(0, "run", 1.0, &[(1, 1.0)])?;
/// b.action(1, "slow", 5.0, &[(0, 1.0)])?;
/// b.action(1, "fast", 9.0, &[(0, 10.0)])?;
/// let mdp = b.build()?;
/// let via_lp = lp::solve_average(&mdp)?;
/// let via_pi = average::policy_iteration(&mdp, &average::Options::default())?;
/// assert!((via_lp.average_cost() - via_pi.gain()).abs() < 1e-7);
/// # Ok(())
/// # }
/// ```
pub fn solve_average(mdp: &Ctmdp) -> Result<LpSolution, MdpError> {
    let (problem, index) = build_problem(mdp);
    match dpm_lp::solve(&problem)? {
        Outcome::Optimal(solution) => Ok(extract(mdp, &index, &solution)),
        Outcome::Infeasible => Err(MdpError::Infeasible),
        Outcome::Unbounded => Err(MdpError::InvalidParameter {
            reason: "occupation-measure LP unbounded; process is malformed".to_owned(),
        }),
    }
}

/// Solves the performance-constrained problem
/// `min average cost s.t. average of aux_costs ≤ bound` — the paper's
/// Section IV formulation with `C_pow` as the objective and `C_sq ≤ D_M`
/// as the constraint.
///
/// The optimal policy may be randomized (in at most one state for a single
/// constraint).
///
/// # Errors
///
/// Returns [`MdpError::Infeasible`] if no stationary policy satisfies the
/// bound, [`MdpError::InvalidParameter`] for a wrong-length `aux_costs`,
/// and propagates LP failures.
pub fn solve_constrained_average(
    mdp: &Ctmdp,
    aux_costs: &[f64],
    bound: f64,
) -> Result<LpSolution, MdpError> {
    let n = mdp.n_states();
    if aux_costs.len() != n {
        return Err(MdpError::InvalidParameter {
            reason: format!("aux cost length {} != {n}", aux_costs.len()),
        });
    }
    if !bound.is_finite() {
        return Err(MdpError::InvalidParameter {
            reason: format!("bound {bound} must be finite"),
        });
    }
    let (mut problem, index) = build_problem(mdp);
    let coeffs: Vec<f64> = index.iter().map(|&(i, _)| aux_costs[i]).collect();
    problem
        .add_constraint(coeffs, Relation::Le, bound)
        // dpm-lint: allow(no_panic, reason = "the row is built with exactly one coefficient per LP variable just above")
        .expect("arity matches");
    match dpm_lp::solve(&problem)? {
        Outcome::Optimal(solution) => Ok(extract(mdp, &index, &solution)),
        Outcome::Infeasible => Err(MdpError::Infeasible),
        Outcome::Unbounded => Err(MdpError::InvalidParameter {
            reason: "constrained occupation-measure LP unbounded".to_owned(),
        }),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::average;

    fn repair_mdp() -> Ctmdp {
        let mut b = Ctmdp::builder(2);
        b.action(0, "run", 1.0, &[(1, 1.0)]).unwrap();
        b.action(1, "slow", 5.0, &[(0, 1.0)]).unwrap();
        b.action(1, "fast", 9.0, &[(0, 10.0)]).unwrap();
        b.build().unwrap()
    }

    #[test]
    fn lp_matches_policy_iteration() {
        let mdp = repair_mdp();
        let lp = solve_average(&mdp).unwrap();
        let pi = average::policy_iteration(&mdp, &average::Options::default()).unwrap();
        assert!((lp.average_cost() - pi.gain()).abs() < 1e-8);
        assert_eq!(&lp.policy().to_deterministic(), pi.policy());
    }

    #[test]
    fn occupation_sums_to_one() {
        let lp = solve_average(&repair_mdp()).unwrap();
        let total: f64 = lp.occupation().iter().flatten().sum();
        assert!((total - 1.0).abs() < 1e-9);
    }

    #[test]
    fn unconstrained_solution_is_deterministic() {
        let lp = solve_average(&repair_mdp()).unwrap();
        assert!(lp.policy().randomizing_states(1e-7).is_empty());
    }

    #[test]
    fn constrained_matches_unconstrained_when_slack() {
        let mdp = repair_mdp();
        let unconstrained = solve_average(&mdp).unwrap();
        // A bound far above the unconstrained aux value changes nothing.
        let aux = vec![0.0, 1.0]; // fraction of time broken
        let constrained = solve_constrained_average(&mdp, &aux, 10.0).unwrap();
        assert!((constrained.average_cost() - unconstrained.average_cost()).abs() < 1e-8);
    }

    #[test]
    fn tight_constraint_increases_cost_and_randomizes() {
        // Make "fast" repair pricey so the unconstrained optimum is the
        // slow action (half the time broken); a tight bound on time-broken
        // then forces mixing toward the fast repair.
        let mut b = Ctmdp::builder(2);
        b.action(0, "run", 1.0, &[(1, 1.0)]).unwrap();
        b.action(1, "slow", 5.0, &[(0, 1.0)]).unwrap();
        b.action(1, "fast", 30.0, &[(0, 10.0)]).unwrap();
        let mdp = b.build().unwrap();
        let aux = vec![0.0, 1.0];
        let loose = solve_average(&mdp).unwrap();
        // Unconstrained optimum: slow repair, broken half the time.
        assert!((loose.average_of(&aux) - 0.5).abs() < 1e-7);
        // Fast repair attains 1/11 broken, so 0.3 is feasible but tight.
        let bound = 0.3;
        let tight = solve_constrained_average(&mdp, &aux, bound).unwrap();
        assert!(tight.average_cost() > loose.average_cost() + 1e-6);
        assert!(tight.average_of(&aux) <= bound + 1e-7);
        // An active single constraint randomizes in at most one state.
        assert!(tight.policy().randomizing_states(1e-6).len() <= 1);
    }

    #[test]
    fn infeasible_bound_is_detected() {
        let mdp = repair_mdp();
        // Time broken cannot be negative.
        let aux = vec![0.0, 1.0];
        assert!(matches!(
            solve_constrained_average(&mdp, &aux, -0.5),
            Err(MdpError::Infeasible)
        ));
    }

    #[test]
    fn validates_aux_length_and_bound() {
        let mdp = repair_mdp();
        assert!(solve_constrained_average(&mdp, &[0.0], 1.0).is_err());
        assert!(solve_constrained_average(&mdp, &[0.0, 1.0], f64::NAN).is_err());
    }

    #[test]
    fn average_of_recovers_constraint_value() {
        let mdp = repair_mdp();
        let lp = solve_average(&mdp).unwrap();
        let aux = vec![1.0, 0.0];
        let frac_state0 = lp.average_of(&aux);
        assert!(frac_state0 > 0.0 && frac_state0 < 1.0);
    }
}
