//! Markov decision processes in continuous and discrete time.
//!
//! This crate implements the decision-theoretic layer of the workspace:
//!
//! * [`Ctmdp`] — a continuous-time Markov decision process: per-state action
//!   sets, action-dependent transition rates `s_{i,j}^{a}` and cost rates
//!   `c_i^{a}` (Section II of Qiu & Pedram, DAC 1999, following Howard and
//!   Miller);
//! * [`average`] — Howard-style **policy iteration** for the limiting
//!   average cost criterion, the algorithm the paper uses to solve the
//!   power-management policy-optimization problem;
//! * [`discounted`] — policy iteration for the discounted criterion
//!   (discount rate `α`, Theorem 2.2);
//! * [`value_iteration`] — relative value iteration on the uniformized
//!   chain, with span-based gain bounds;
//! * [`lp`] — the occupation-measure linear program, both unconstrained
//!   (the DAC'98 solution technique the paper compares against) and with an
//!   auxiliary performance constraint, which yields possibly *randomized*
//!   optimal policies;
//! * [`Dtmdp`] — a discrete-time MDP with the same solver suite, serving as
//!   the faithful substrate for the Paleologo et al. (DAC 1998)
//!   discrete-time baseline.
//!
//! All solvers use the *cost* convention (minimize); rewards are negated
//! costs as the paper notes at the end of Section II.
//!
//! # Examples
//!
//! A machine that can run fast (cheap to be in, expensive transitions) or
//! slow; policy iteration finds the cost-optimal stationary policy:
//!
//! ```
//! use dpm_mdp::{average, Ctmdp};
//!
//! # fn main() -> Result<(), dpm_mdp::MdpError> {
//! let mut b = Ctmdp::builder(2);
//! // state 0: choose to degrade fast or slowly
//! b.action(0, "degrade-fast", 1.0, &[(1, 2.0)])?;
//! b.action(0, "degrade-slow", 3.0, &[(1, 0.5)])?;
//! // state 1: repair
//! b.action(1, "repair", 10.0, &[(0, 1.0)])?;
//! let mdp = b.build()?;
//! let solution = average::policy_iteration(&mdp, &average::Options::default())?;
//! assert!(solution.gain() > 0.0);
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod average;
mod ctmdp;
pub mod discounted;
mod dtmdp;
mod error;
mod kernel;
pub mod lp;
mod policy;
pub mod value_iteration;

pub use ctmdp::{ActionSpec, Ctmdp, CtmdpBuilder};
pub use dtmdp::{Dtmdp, DtmdpBuilder};
pub use error::MdpError;
pub use kernel::ActionCsr;
pub use policy::{Policy, RandomizedPolicy};
