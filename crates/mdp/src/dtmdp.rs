//! Discrete-time Markov decision processes.
//!
//! This module serves two roles:
//!
//! 1. It is the faithful substrate for the **DAC'98 baseline** (Paleologo et
//!    al., "Policy Optimization for Dynamic Power Management"): time sliced
//!    into intervals of length `L`, per-slice transition probabilities, a
//!    policy computed by LP or policy iteration — the formulation whose
//!    shortcomings (synchronous decisions, lumped busy/idle state) motivate
//!    the paper.
//! 2. [`Dtmdp::from_uniformized`] converts any [`Ctmdp`] into an equivalent
//!    discrete-time process, connecting the two solver families.

use std::fmt;

use dpm_ctmc::Dtmc;
use dpm_linalg::{DMatrix, DVector};

use crate::{Ctmdp, MdpError, Policy};

/// Probability-sum validation slack.
const PROB_TOL: f64 = 1e-9;

/// One action of a [`Dtmdp`]: label, per-step cost, and a full transition
/// distribution (self-transitions allowed, unlike the continuous-time
/// builder).
#[derive(Debug, Clone, PartialEq)]
struct DtAction {
    label: String,
    cost: f64,
    /// Dense transition probabilities (length = number of states).
    probabilities: Vec<f64>,
}

/// A discrete-time MDP with per-state finite action sets.
///
/// # Examples
///
/// ```
/// use dpm_mdp::Dtmdp;
///
/// # fn main() -> Result<(), dpm_mdp::MdpError> {
/// let mut b = Dtmdp::builder(2);
/// b.action(0, "stay", 1.0, &[0.9, 0.1])?;
/// b.action(0, "push", 2.0, &[0.5, 0.5])?;
/// b.action(1, "return", 0.0, &[1.0, 0.0])?;
/// let mdp = b.build()?;
/// assert_eq!(mdp.n_states(), 2);
/// assert_eq!(mdp.n_actions(0), 2);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct Dtmdp {
    actions: Vec<Vec<DtAction>>,
}

/// Builder for [`Dtmdp`] processes.
#[derive(Debug, Clone)]
pub struct DtmdpBuilder {
    actions: Vec<Vec<DtAction>>,
}

impl DtmdpBuilder {
    /// Creates a builder for `n_states` states.
    #[must_use]
    pub fn new(n_states: usize) -> Self {
        DtmdpBuilder {
            actions: vec![Vec::new(); n_states],
        }
    }

    /// Adds an action with a full per-state transition distribution.
    ///
    /// # Errors
    ///
    /// Returns [`MdpError::StateOutOfRange`] or [`MdpError::InvalidAction`]
    /// for bad distributions (wrong length, negative entries, not summing
    /// to one) or non-finite costs.
    pub fn action(
        &mut self,
        state: usize,
        label: impl Into<String>,
        cost: f64,
        probabilities: &[f64],
    ) -> Result<&mut Self, MdpError> {
        let n = self.actions.len();
        if state >= n {
            return Err(MdpError::StateOutOfRange { state, n_states: n });
        }
        if !cost.is_finite() {
            return Err(MdpError::InvalidAction {
                state,
                reason: format!("cost {cost} is not finite"),
            });
        }
        if probabilities.len() != n {
            return Err(MdpError::InvalidAction {
                state,
                reason: format!("distribution length {} != {n}", probabilities.len()),
            });
        }
        let sum: f64 = probabilities.iter().sum();
        if probabilities
            .iter()
            .any(|&p| !(0.0..=1.0 + PROB_TOL).contains(&p))
            || (sum - 1.0).abs() > PROB_TOL
        {
            return Err(MdpError::InvalidAction {
                state,
                reason: format!("invalid distribution (sum {sum})"),
            });
        }
        self.actions[state].push(DtAction {
            label: label.into(),
            cost,
            probabilities: probabilities.to_vec(),
        });
        Ok(self)
    }

    /// Finalizes the process.
    ///
    /// # Errors
    ///
    /// Returns [`MdpError::NoActions`] if any state lacks actions.
    pub fn build(self) -> Result<Dtmdp, MdpError> {
        if self.actions.is_empty() {
            return Err(MdpError::NoActions { state: 0 });
        }
        for (state, acts) in self.actions.iter().enumerate() {
            if acts.is_empty() {
                return Err(MdpError::NoActions { state });
            }
        }
        Ok(Dtmdp {
            actions: self.actions,
        })
    }
}

/// Result of average-cost policy iteration on a [`Dtmdp`].
#[derive(Debug, Clone, PartialEq)]
pub struct DtSolution {
    policy: Policy,
    gain: f64,
    bias: DVector,
    iterations: usize,
}

impl DtSolution {
    /// The optimal stationary deterministic policy.
    #[must_use]
    pub fn policy(&self) -> &Policy {
        &self.policy
    }

    /// Optimal average cost per step.
    #[must_use]
    pub fn gain(&self) -> f64 {
        self.gain
    }

    /// Bias vector (zero at state 0).
    #[must_use]
    pub fn bias(&self) -> &DVector {
        &self.bias
    }

    /// Improvement rounds performed.
    #[must_use]
    pub fn iterations(&self) -> usize {
        self.iterations
    }
}

impl Dtmdp {
    /// Starts building a process with `n_states` states.
    #[must_use]
    pub fn builder(n_states: usize) -> DtmdpBuilder {
        DtmdpBuilder::new(n_states)
    }

    /// Number of states.
    #[must_use]
    pub fn n_states(&self) -> usize {
        self.actions.len()
    }

    /// Number of actions in `state`.
    ///
    /// # Panics
    ///
    /// Panics if `state` is out of range.
    #[must_use]
    pub fn n_actions(&self, state: usize) -> usize {
        self.actions[state].len()
    }

    /// Label of `action` in `state`.
    ///
    /// # Panics
    ///
    /// Panics if either index is out of range.
    #[must_use]
    pub fn action_label(&self, state: usize, action: usize) -> &str {
        &self.actions[state][action].label
    }

    /// Per-step cost of `action` in `state`.
    ///
    /// # Panics
    ///
    /// Panics if either index is out of range.
    #[must_use]
    pub fn cost(&self, state: usize, action: usize) -> f64 {
        self.actions[state][action].cost
    }

    /// Transition distribution of `action` in `state`.
    ///
    /// # Panics
    ///
    /// Panics if either index is out of range.
    #[must_use]
    pub fn probabilities(&self, state: usize, action: usize) -> &[f64] {
        &self.actions[state][action].probabilities
    }

    /// Uniformizes a continuous-time process into an equivalent
    /// discrete-time one, returning the process and the uniformization
    /// constant `Λ` (so continuous gain = `Λ ×` discrete gain; per-step
    /// costs are pre-divided by `Λ`).
    ///
    /// # Errors
    ///
    /// Returns [`MdpError::InvalidParameter`] for `margin ≤ 1` or a process
    /// with no transitions.
    pub fn from_uniformized(ctmdp: &Ctmdp, margin: f64) -> Result<(Self, f64), MdpError> {
        if margin <= 1.0 {
            return Err(MdpError::InvalidParameter {
                reason: format!("uniformization margin {margin} must exceed 1"),
            });
        }
        let n = ctmdp.n_states();
        let lambda = (0..n)
            .flat_map(|i| ctmdp.actions(i).iter().map(crate::ActionSpec::exit_rate))
            .fold(0.0f64, f64::max)
            * margin;
        if lambda <= 0.0 {
            return Err(MdpError::InvalidParameter {
                reason: "process has no transitions under any action".to_owned(),
            });
        }
        let mut b = DtmdpBuilder::new(n);
        for i in 0..n {
            for spec in ctmdp.actions(i) {
                let mut p = vec![0.0; n];
                p[i] = 1.0 - spec.exit_rate() / lambda;
                for &(to, rate) in spec.rates() {
                    p[to] += rate / lambda;
                }
                b.action(i, spec.label(), spec.cost_rate() / lambda, &p)?;
            }
        }
        Ok((b.build()?, lambda))
    }

    /// Validates a policy against this process.
    ///
    /// # Errors
    ///
    /// Returns [`MdpError::InvalidPolicy`] on mismatch.
    pub fn check_policy(&self, policy: &Policy) -> Result<(), MdpError> {
        if policy.len() != self.n_states() {
            return Err(MdpError::InvalidPolicy {
                reason: format!(
                    "policy has {} entries for {} states",
                    policy.len(),
                    self.n_states()
                ),
            });
        }
        for (state, &a) in policy.actions().iter().enumerate() {
            if a >= self.actions[state].len() {
                return Err(MdpError::InvalidPolicy {
                    reason: format!("action {a} out of range at state {state}"),
                });
            }
        }
        Ok(())
    }

    /// Transition matrix of the chain induced by `policy`.
    ///
    /// # Errors
    ///
    /// Returns [`MdpError::InvalidPolicy`] on mismatch and propagates
    /// stochastic-matrix validation.
    pub fn chain_for(&self, policy: &Policy) -> Result<Dtmc, MdpError> {
        self.check_policy(policy)?;
        let n = self.n_states();
        let m = DMatrix::from_fn(n, n, |i, j| {
            self.actions[i][policy.action(i)].probabilities[j]
        });
        Dtmc::from_matrix(m).map_err(MdpError::Chain)
    }

    /// Per-state costs under `policy`.
    ///
    /// # Errors
    ///
    /// Returns [`MdpError::InvalidPolicy`] on mismatch.
    pub fn costs_for(&self, policy: &Policy) -> Result<DVector, MdpError> {
        self.check_policy(policy)?;
        Ok(DVector::from_fn(self.n_states(), |i| {
            self.actions[i][policy.action(i)].cost
        }))
    }

    /// Long-run average cost per step of `policy`.
    ///
    /// # Errors
    ///
    /// Propagates chain construction and stationary-solver failures.
    pub fn average_cost(&self, policy: &Policy) -> Result<f64, MdpError> {
        let chain = self.chain_for(policy)?;
        let pi = chain.stationary_gth().map_err(MdpError::Chain)?;
        Ok(pi.dot(&self.costs_for(policy)?))
    }

    /// Gain/bias evaluation of `policy`: solves `g + v = c + P v`,
    /// `v[0] = 0`.
    ///
    /// # Errors
    ///
    /// Returns [`MdpError::NotUnichain`] on singular evaluation equations
    /// and propagates solver failures.
    pub fn evaluate(&self, policy: &Policy) -> Result<(f64, DVector), MdpError> {
        self.check_policy(policy)?;
        let n = self.n_states();
        // Unknowns x = (g, v_1, ..., v_{n-1}), v_0 = 0.
        // Equation i: g + v_i - Σ_j P_ij v_j = c_i.
        let mut a = DMatrix::zeros(n, n);
        let mut b = DVector::zeros(n);
        for i in 0..n {
            a[(i, 0)] = 1.0;
            let probabilities = &self.actions[i][policy.action(i)].probabilities;
            for j in 1..n {
                let mut coeff = -probabilities[j];
                if i == j {
                    coeff += 1.0;
                }
                a[(i, j)] = coeff;
            }
            b[i] = self.actions[i][policy.action(i)].cost;
        }
        let x = match a.lu() {
            Ok(lu) => lu.solve(&b).map_err(MdpError::Numerical)?,
            Err(dpm_linalg::LinalgError::Singular { .. }) => {
                return Err(MdpError::NotUnichain { iteration: 0 })
            }
            Err(e) => return Err(MdpError::Numerical(e)),
        };
        let gain = x[0];
        let bias = DVector::from_fn(n, |j| if j == 0 { 0.0 } else { x[j] });
        Ok((gain, bias))
    }

    /// Average-cost policy iteration (Howard) for unichain discrete-time
    /// processes, starting from the minimum-cost policy.
    ///
    /// # Errors
    ///
    /// Returns [`MdpError::NotUnichain`] or [`MdpError::NotConverged`] as
    /// appropriate.
    pub fn policy_iteration(&self, max_iterations: usize) -> Result<DtSolution, MdpError> {
        let n = self.n_states();
        let initial = Policy::new(
            (0..n)
                .map(|i| {
                    (0..self.actions[i].len())
                        .min_by(|&x, &y| {
                            self.actions[i][x]
                                .cost
                                .partial_cmp(&self.actions[i][y].cost)
                                // dpm-lint: allow(no_panic, reason = "costs are validated finite when the DTMDP is constructed")
                                .expect("finite costs")
                        })
                        // dpm-lint: allow(no_panic, reason = "DTMDP validation guarantees a non-empty action set per state")
                        .expect("non-empty actions")
                })
                .collect(),
        );
        self.policy_iteration_from(initial, max_iterations)
    }

    /// Average-cost policy iteration from an explicit starting policy —
    /// use a policy whose chain is unichain when the min-cost default
    /// would decompose the chain.
    ///
    /// # Errors
    ///
    /// As [`Dtmdp::policy_iteration`], plus [`MdpError::InvalidPolicy`] for
    /// a mismatched start.
    pub fn policy_iteration_from(
        &self,
        initial: Policy,
        max_iterations: usize,
    ) -> Result<DtSolution, MdpError> {
        self.check_policy(&initial)?;
        let n = self.n_states();
        let mut policy = initial;
        for iteration in 1..=max_iterations {
            let (gain, bias) = self.evaluate(&policy).map_err(|e| match e {
                MdpError::NotUnichain { .. } => MdpError::NotUnichain { iteration },
                other => other,
            })?;
            let mut improved = false;
            let mut next = policy.clone();
            for state in 0..n {
                let q_of = |action: usize| -> f64 {
                    let act = &self.actions[state][action];
                    act.cost
                        + act
                            .probabilities
                            .iter()
                            .zip(bias.as_slice())
                            .map(|(p, v)| p * v)
                            .sum::<f64>()
                };
                let incumbent = q_of(policy.action(state));
                let mut best_action = policy.action(state);
                let mut best_q = incumbent;
                for action in 0..self.actions[state].len() {
                    if action == policy.action(state) {
                        continue;
                    }
                    let q = q_of(action);
                    if q < best_q - 1e-10 {
                        best_q = q;
                        best_action = action;
                    }
                }
                if best_action != policy.action(state) {
                    improved = true;
                    next = next.with_action(state, best_action);
                }
            }
            if !improved {
                return Ok(DtSolution {
                    policy,
                    gain,
                    bias,
                    iterations: iteration,
                });
            }
            policy = next;
        }
        Err(MdpError::NotConverged {
            iterations: max_iterations,
        })
    }
}

impl Dtmdp {
    /// Relative value iteration for the average cost criterion: Bellman
    /// backups with span-based gain bounds, stopping when the bounds pinch
    /// within `tolerance`.
    ///
    /// Requires the optimal chain to be aperiodic (uniformized processes
    /// always are); periodic structures may oscillate.
    ///
    /// # Errors
    ///
    /// Returns [`MdpError::NotConverged`] when the iteration cap is hit.
    pub fn value_iteration(
        &self,
        tolerance: f64,
        max_iterations: usize,
    ) -> Result<DtSolution, MdpError> {
        if tolerance <= 0.0 || tolerance.is_nan() {
            return Err(MdpError::InvalidParameter {
                reason: format!("tolerance {tolerance} must be positive"),
            });
        }
        let n = self.n_states();
        let mut values = DVector::zeros(n);
        for iteration in 1..=max_iterations {
            let mut next = DVector::zeros(n);
            let mut greedy = vec![0usize; n];
            for i in 0..n {
                let mut best = f64::INFINITY;
                for (a, act) in self.actions[i].iter().enumerate() {
                    let q: f64 = act.cost
                        + act
                            .probabilities
                            .iter()
                            .zip(values.as_slice())
                            .map(|(p, v)| p * v)
                            .sum::<f64>();
                    if q < best {
                        best = q;
                        greedy[i] = a;
                    }
                }
                next[i] = best;
            }
            let delta = &next - &values;
            let (mut lo, mut hi) = (f64::INFINITY, f64::NEG_INFINITY);
            for d in delta.iter() {
                lo = lo.min(d);
                hi = hi.max(d);
            }
            if hi - lo <= tolerance {
                let policy = Policy::new(greedy);
                let gain = 0.5 * (lo + hi);
                // Bias relative to state 0.
                let shift = next[0];
                let bias = next.map(|v| v - shift);
                return Ok(DtSolution {
                    policy,
                    gain,
                    bias,
                    iterations: iteration,
                });
            }
            let shift = next[0];
            values = next.map(|v| v - shift);
        }
        Err(MdpError::NotConverged {
            iterations: max_iterations,
        })
    }

    /// Solves the average-cost problem via the occupation-measure LP
    /// (the solution technique of the DAC'98 baseline): variables
    /// `x_{i,a}` with `Σ_a x_{j,a} = Σ_{i,a} x_{i,a} P^a(i,j)` and
    /// `Σ x = 1`.
    ///
    /// # Errors
    ///
    /// Returns [`MdpError::Infeasible`] for a malformed process and
    /// propagates LP failures.
    pub fn lp_average(&self) -> Result<(crate::RandomizedPolicy, f64), MdpError> {
        let n = self.n_states();
        let mut index: Vec<(usize, usize)> = Vec::new();
        for i in 0..n {
            for a in 0..self.actions[i].len() {
                index.push((i, a));
            }
        }
        let costs: Vec<f64> = index
            .iter()
            .map(|&(i, a)| self.actions[i][a].cost)
            .collect();
        // dpm-lint: allow(no_panic, reason = "the MDP was validated non-empty before the LP is assembled")
        let mut problem = dpm_lp::Problem::minimize(costs).expect("at least one state-action pair");
        for j in 0..n {
            let coeffs: Vec<f64> = index
                .iter()
                .map(|&(i, a)| {
                    let inflow = self.actions[i][a].probabilities[j];
                    let outflow = if i == j { 1.0 } else { 0.0 };
                    inflow - outflow
                })
                .collect();
            problem
                .add_constraint(coeffs, dpm_lp::Relation::Eq, 0.0)
                // dpm-lint: allow(no_panic, reason = "the row is built with exactly one coefficient per LP variable just above")
                .expect("arity matches");
        }
        problem
            .add_constraint(vec![1.0; index.len()], dpm_lp::Relation::Eq, 1.0)
            // dpm-lint: allow(no_panic, reason = "the row is built with exactly one coefficient per LP variable just above")
            .expect("arity matches");
        match dpm_lp::solve(&problem).map_err(MdpError::Lp)? {
            dpm_lp::Outcome::Optimal(solution) => {
                let mut weights: Vec<Vec<f64>> =
                    (0..n).map(|i| vec![0.0; self.actions[i].len()]).collect();
                for (k, &(i, a)) in index.iter().enumerate() {
                    weights[i][a] = solution.variables()[k].max(0.0);
                }
                for w in &mut weights {
                    let total: f64 = w.iter().sum();
                    if total <= 1e-9 {
                        w[0] = 1.0;
                    }
                }
                Ok((crate::RandomizedPolicy::new(weights), solution.objective()))
            }
            dpm_lp::Outcome::Infeasible => Err(MdpError::Infeasible),
            dpm_lp::Outcome::Unbounded => Err(MdpError::InvalidParameter {
                reason: "DTMDP occupation LP unbounded; process is malformed".to_owned(),
            }),
        }
    }
}

impl fmt::Display for Dtmdp {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "Dtmdp: {} states, {} state-action pairs",
            self.n_states(),
            self.actions.iter().map(Vec::len).sum::<usize>()
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::average;

    fn toy() -> Dtmdp {
        let mut b = Dtmdp::builder(2);
        b.action(0, "stay", 1.0, &[0.9, 0.1]).unwrap();
        b.action(0, "push", 2.0, &[0.5, 0.5]).unwrap();
        b.action(1, "return", 0.0, &[1.0, 0.0]).unwrap();
        b.build().unwrap()
    }

    #[test]
    fn builder_validates() {
        let mut b = Dtmdp::builder(2);
        assert!(b.action(5, "x", 0.0, &[1.0, 0.0]).is_err());
        assert!(b.action(0, "x", f64::NAN, &[1.0, 0.0]).is_err());
        assert!(b.action(0, "x", 0.0, &[0.5]).is_err());
        assert!(b.action(0, "x", 0.0, &[0.5, 0.4]).is_err());
        assert!(b.action(0, "x", 0.0, &[-0.1, 1.1]).is_err());
        assert!(Dtmdp::builder(1).build().is_err());
    }

    #[test]
    fn accessors() {
        let m = toy();
        assert_eq!(m.n_actions(0), 2);
        assert_eq!(m.action_label(0, 1), "push");
        assert_eq!(m.cost(0, 1), 2.0);
        assert_eq!(m.probabilities(1, 0), &[1.0, 0.0]);
        assert!(m.to_string().contains("2 states"));
    }

    #[test]
    fn evaluation_matches_stationary_average() {
        let m = toy();
        let p = Policy::new(vec![0, 0]);
        let (gain, _) = m.evaluate(&p).unwrap();
        let direct = m.average_cost(&p).unwrap();
        assert!((gain - direct).abs() < 1e-10);
    }

    #[test]
    fn policy_iteration_finds_optimum() {
        let m = toy();
        let sol = m.policy_iteration(100).unwrap();
        let mut best = f64::INFINITY;
        for a0 in 0..2 {
            let p = Policy::new(vec![a0, 0]);
            best = best.min(m.average_cost(&p).unwrap());
        }
        assert!((sol.gain() - best).abs() < 1e-10);
        assert!(sol.iterations() >= 1);
        assert_eq!(sol.bias()[0], 0.0);
    }

    #[test]
    fn uniformization_preserves_optimal_gain() {
        // Continuous process solved directly vs via uniformized DTMDP.
        let mut b = Ctmdp::builder(2);
        b.action(0, "run", 1.0, &[(1, 1.0)]).unwrap();
        b.action(1, "slow", 5.0, &[(0, 1.0)]).unwrap();
        b.action(1, "fast", 9.0, &[(0, 10.0)]).unwrap();
        let ctmdp = b.build().unwrap();
        let ct = average::policy_iteration(&ctmdp, &average::Options::default()).unwrap();
        let (dt, lambda) = Dtmdp::from_uniformized(&ctmdp, 1.05).unwrap();
        let dt_sol = dt.policy_iteration(100).unwrap();
        assert!((dt_sol.gain() * lambda - ct.gain()).abs() < 1e-8);
        assert_eq!(dt_sol.policy(), ct.policy());
    }

    #[test]
    fn uniformization_rejects_bad_margin() {
        let mut b = Ctmdp::builder(1);
        b.action(0, "idle", 1.0, &[]).unwrap();
        let ctmdp = b.build().unwrap();
        assert!(Dtmdp::from_uniformized(&ctmdp, 1.0).is_err());
        // No transitions at all -> cannot uniformize.
        assert!(Dtmdp::from_uniformized(&ctmdp, 1.1).is_err());
    }

    #[test]
    fn chain_for_produces_valid_dtmc() {
        let m = toy();
        let chain = m.chain_for(&Policy::new(vec![1, 0])).unwrap();
        assert_eq!(chain.probability(0, 1), 0.5);
    }

    #[test]
    fn policy_validation() {
        let m = toy();
        assert!(m.check_policy(&Policy::new(vec![0])).is_err());
        assert!(m.check_policy(&Policy::new(vec![0, 3])).is_err());
    }
}

#[cfg(test)]
mod solver_suite_tests {
    use super::*;

    fn toy() -> Dtmdp {
        let mut b = Dtmdp::builder(2);
        b.action(0, "stay", 1.0, &[0.9, 0.1]).unwrap();
        b.action(0, "push", 2.0, &[0.5, 0.5]).unwrap();
        b.action(1, "return", 0.0, &[1.0, 0.0]).unwrap();
        b.build().unwrap()
    }

    #[test]
    fn value_iteration_matches_policy_iteration() {
        let m = toy();
        let pi = m.policy_iteration(100).unwrap();
        let vi = m.value_iteration(1e-10, 1_000_000).unwrap();
        assert!((vi.gain() - pi.gain()).abs() < 1e-8);
        assert_eq!(vi.policy(), pi.policy());
    }

    #[test]
    fn lp_matches_policy_iteration() {
        let m = toy();
        let pi = m.policy_iteration(100).unwrap();
        let (policy, cost) = m.lp_average().unwrap();
        assert!((cost - pi.gain()).abs() < 1e-7);
        assert_eq!(&policy.to_deterministic(), pi.policy());
    }

    #[test]
    fn policy_iteration_from_respects_start() {
        let m = toy();
        let from_push = m
            .policy_iteration_from(Policy::new(vec![1, 0]), 100)
            .unwrap();
        let default = m.policy_iteration(100).unwrap();
        assert!((from_push.gain() - default.gain()).abs() < 1e-10);
        assert!(m
            .policy_iteration_from(Policy::new(vec![5, 0]), 100)
            .is_err());
    }

    #[test]
    fn value_iteration_validates_tolerance() {
        assert!(toy().value_iteration(0.0, 10).is_err());
    }

    #[test]
    fn uniformized_suite_agrees_with_continuous_time() {
        let mut b = Ctmdp::builder(2);
        b.action(0, "run", 1.0, &[(1, 1.0)]).unwrap();
        b.action(1, "slow", 5.0, &[(0, 1.0)]).unwrap();
        b.action(1, "fast", 9.0, &[(0, 10.0)]).unwrap();
        let ctmdp = b.build().unwrap();
        let ct =
            crate::average::policy_iteration(&ctmdp, &crate::average::Options::default()).unwrap();
        let (dt, lambda) = Dtmdp::from_uniformized(&ctmdp, 1.05).unwrap();
        let vi = dt.value_iteration(1e-12, 10_000_000).unwrap();
        let (_, lp_cost) = dt.lp_average().unwrap();
        assert!((vi.gain() * lambda - ct.gain()).abs() < 1e-6);
        assert!((lp_cost * lambda - ct.gain()).abs() < 1e-6);
    }
}
