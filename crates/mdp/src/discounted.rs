//! Policy iteration for the discounted-cost criterion.
//!
//! The paper's Section II presents two infinite-horizon objectives; this
//! module implements the second, `v_{i,dis}(α) = E ∫ e^{-αt} c dt`. For a
//! stationary policy the value vector solves `(αI − G^δ) v = c^δ`; the
//! optimal stationary policy exists for every `α > 0` (Theorem 2.2, Miller
//! 1968) and is found by policy iteration. As `α → 0`, `α·v` approaches the
//! average cost (`discounted ≈ average` for patient decision makers), which
//! the ablation bench exercises.

use dpm_linalg::{DMatrix, DVector};

use crate::{Ctmdp, MdpError, Policy};

/// Options for [`policy_iteration`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Options {
    /// Hard cap on improvement rounds.
    pub max_iterations: usize,
    /// Strict-improvement threshold for replacing an incumbent action.
    pub improvement_tolerance: f64,
}

impl Default for Options {
    fn default() -> Self {
        Options {
            max_iterations: 1_000,
            improvement_tolerance: 1e-10,
        }
    }
}

/// Result of discounted policy iteration.
#[derive(Debug, Clone, PartialEq)]
pub struct Solution {
    policy: Policy,
    values: DVector,
    iterations: usize,
}

impl Solution {
    /// The α-optimal stationary policy.
    #[must_use]
    pub fn policy(&self) -> &Policy {
        &self.policy
    }

    /// Expected discounted cost from each start state.
    #[must_use]
    pub fn values(&self) -> &DVector {
        &self.values
    }

    /// Improvement rounds performed.
    #[must_use]
    pub fn iterations(&self) -> usize {
        self.iterations
    }
}

/// Expected discounted cost of `policy` from every start state:
/// the solution of `(αI − G^δ) v = c^δ`.
///
/// # Errors
///
/// Returns [`MdpError::InvalidParameter`] for `α ≤ 0` and propagates policy
/// and solver failures. The system matrix is strictly diagonally dominant
/// for `α > 0`, so singularity cannot occur.
pub fn evaluate(mdp: &Ctmdp, policy: &Policy, alpha: f64) -> Result<DVector, MdpError> {
    if !(alpha > 0.0 && alpha.is_finite()) {
        return Err(MdpError::InvalidParameter {
            reason: format!("discount rate {alpha} must be positive and finite"),
        });
    }
    mdp.check_policy(policy)?;
    let n = mdp.n_states();
    let generator = mdp.generator_for(policy)?;
    let costs = mdp.cost_rates_for(policy)?;
    let a = &DMatrix::identity(n).scaled(alpha) - generator.matrix();
    let v = a.lu()?.solve(&costs)?;
    Ok(v)
}

fn test_quantity(mdp: &Ctmdp, state: usize, action: usize, values: &DVector) -> f64 {
    let spec = &mdp.actions(state)[action];
    let mut q = spec.cost_rate();
    for &(to, rate) in spec.rates() {
        q += rate * (values[to] - values[state]);
    }
    q
}

/// Policy iteration for discount rate `alpha`, starting from the
/// minimum-cost-rate policy.
///
/// # Errors
///
/// As [`evaluate`], plus [`MdpError::NotConverged`] if the improvement cap
/// is hit.
///
/// # Examples
///
/// ```
/// use dpm_mdp::{discounted, Ctmdp};
///
/// # fn main() -> Result<(), dpm_mdp::MdpError> {
/// let mut b = Ctmdp::builder(2);
/// b.action(0, "run", 1.0, &[(1, 1.0)])?;
/// b.action(1, "slow", 5.0, &[(0, 1.0)])?;
/// b.action(1, "fast", 9.0, &[(0, 10.0)])?;
/// let mdp = b.build()?;
/// let sol = discounted::policy_iteration(&mdp, 0.1, &discounted::Options::default())?;
/// assert_eq!(sol.policy().len(), 2);
/// # Ok(())
/// # }
/// ```
pub fn policy_iteration(mdp: &Ctmdp, alpha: f64, options: &Options) -> Result<Solution, MdpError> {
    let mut policy = mdp.min_cost_policy();
    for iteration in 1..=options.max_iterations {
        let values = evaluate(mdp, &policy, alpha)?;
        let mut improved = false;
        let mut next = policy.clone();
        for state in 0..mdp.n_states() {
            let incumbent = test_quantity(mdp, state, policy.action(state), &values);
            let mut best_action = policy.action(state);
            let mut best_q = incumbent;
            for action in 0..mdp.actions(state).len() {
                if action == policy.action(state) {
                    continue;
                }
                let q = test_quantity(mdp, state, action, &values);
                if q < best_q - options.improvement_tolerance {
                    best_q = q;
                    best_action = action;
                }
            }
            if best_action != policy.action(state) {
                improved = true;
                next = next.with_action(state, best_action);
            }
        }
        if !improved {
            return Ok(Solution {
                policy,
                values,
                iterations: iteration,
            });
        }
        policy = next;
    }
    Err(MdpError::NotConverged {
        iterations: options.max_iterations,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::average;

    fn repair_mdp() -> Ctmdp {
        let mut b = Ctmdp::builder(2);
        b.action(0, "run", 1.0, &[(1, 1.0)]).unwrap();
        b.action(1, "slow", 5.0, &[(0, 1.0)]).unwrap();
        b.action(1, "fast", 9.0, &[(0, 10.0)]).unwrap();
        b.build().unwrap()
    }

    #[test]
    fn evaluation_satisfies_bellman_fixed_point() {
        let mdp = repair_mdp();
        let policy = Policy::new(vec![0, 1]);
        let alpha = 0.3;
        let v = evaluate(&mdp, &policy, alpha).unwrap();
        // alpha v = c + G v
        let g = mdp.generator_for(&policy).unwrap();
        let c = mdp.cost_rates_for(&policy).unwrap();
        let mut rhs = g.matrix().mul_vec(&v);
        rhs += &c;
        let lhs = v.scaled(alpha);
        assert!((&lhs - &rhs).norm_inf() < 1e-10);
    }

    #[test]
    fn optimal_policy_beats_alternatives() {
        let mdp = repair_mdp();
        let alpha = 0.2;
        let sol = policy_iteration(&mdp, alpha, &Options::default()).unwrap();
        for other in mdp.enumerate_policies() {
            let v = evaluate(&mdp, &other, alpha).unwrap();
            for i in 0..2 {
                assert!(sol.values()[i] <= v[i] + 1e-9);
            }
        }
    }

    #[test]
    fn small_alpha_approaches_average_cost() {
        let mdp = repair_mdp();
        let alpha = 1e-5;
        let dis = policy_iteration(&mdp, alpha, &Options::default()).unwrap();
        let avg = average::policy_iteration(&mdp, &average::Options::default()).unwrap();
        // alpha * v_dis -> average gain (Section II: the discounted reward
        // approaches the total expected reward as a -> 0).
        assert!((dis.values()[0] * alpha - avg.gain()).abs() < 1e-3);
        assert_eq!(dis.policy(), avg.policy());
    }

    #[test]
    fn large_alpha_is_myopic() {
        // Heavy discounting ignores the future: the fast repair's higher
        // immediate cost rate is no longer worth its future savings.
        let mdp = repair_mdp();
        let sol = policy_iteration(&mdp, 1e4, &Options::default()).unwrap();
        assert_eq!(sol.policy().action(1), 0);
    }

    #[test]
    fn rejects_bad_alpha() {
        let mdp = repair_mdp();
        let p = Policy::new(vec![0, 0]);
        assert!(evaluate(&mdp, &p, 0.0).is_err());
        assert!(evaluate(&mdp, &p, -1.0).is_err());
        assert!(evaluate(&mdp, &p, f64::INFINITY).is_err());
    }

    #[test]
    fn values_decrease_with_stronger_discounting() {
        let mdp = repair_mdp();
        let p = Policy::new(vec![0, 0]);
        let v_small = evaluate(&mdp, &p, 0.1).unwrap();
        let v_large = evaluate(&mdp, &p, 1.0).unwrap();
        for i in 0..2 {
            assert!(v_large[i] < v_small[i]);
        }
    }
}
