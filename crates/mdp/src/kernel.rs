//! Flattened per-action CSR kernel for policy improvement.
//!
//! The improvement step of policy iteration evaluates the test quantity
//! `c_i^a + Σ_j s_{i,j}^a v_j` for *every* state–action pair each round.
//! Walking the builder's nested `Vec<Vec<ActionSpec>>` for that means two
//! pointer indirections and a heap hop per action; a dense per-action scan
//! would be `O(|S|·|A|·|S|)`. [`ActionCsr`] flattens all state–action rows
//! into one contiguous CSR layout — one slice of `(column, rate)` pairs and
//! one cost per row, with two index arrays mapping states to their row
//! ranges — so a full improvement sweep is a single linear pass over
//! `O(nnz)` memory.
//!
//! The kernel reproduces the reference scan's arithmetic exactly: rates are
//! stored in the builder's order and accumulated in the same association,
//! so test quantities (and therefore argmax choices and tie-breaks) are
//! bit-identical to [`crate::average`]'s dense-list reference scan.

use dpm_linalg::DVector;

use crate::Ctmdp;

/// Precomputed per-action CSR rows of a [`Ctmdp`].
///
/// Built once per solve via [`Ctmdp::sparse_actions`] and reused across all
/// improvement rounds; the construction is `O(nnz)`.
#[derive(Debug, Clone, PartialEq)]
pub struct ActionCsr {
    n_states: usize,
    /// `sa_ptr[s]..sa_ptr[s + 1]` is state `s`'s range of state–action
    /// rows; length `n_states + 1`.
    sa_ptr: Vec<usize>,
    /// Cost rate `c_i^a` per state–action row.
    cost: Vec<f64>,
    /// `row_ptr[r]..row_ptr[r + 1]` is row `r`'s slice of `col_idx` /
    /// `rates`; length `sa_ptr[n_states] + 1`.
    row_ptr: Vec<usize>,
    /// Target states, in the action's declared (merged, ascending) order.
    col_idx: Vec<usize>,
    /// Transition rates `s_{i,j}^a`, aligned with `col_idx`.
    rates: Vec<f64>,
}

impl ActionCsr {
    pub(crate) fn from_ctmdp(mdp: &Ctmdp) -> ActionCsr {
        let n_states = mdp.n_states();
        let mut sa_ptr = Vec::with_capacity(n_states + 1);
        let mut cost = Vec::with_capacity(mdp.n_state_actions());
        let mut row_ptr = Vec::with_capacity(mdp.n_state_actions() + 1);
        let mut col_idx = Vec::new();
        let mut rates = Vec::new();
        sa_ptr.push(0);
        row_ptr.push(0);
        for state in 0..n_states {
            for spec in mdp.actions(state) {
                cost.push(spec.cost_rate());
                for &(to, rate) in spec.rates() {
                    col_idx.push(to);
                    rates.push(rate);
                }
                row_ptr.push(col_idx.len());
            }
            sa_ptr.push(cost.len());
        }
        ActionCsr {
            n_states,
            sa_ptr,
            cost,
            row_ptr,
            col_idx,
            rates,
        }
    }

    /// Number of states.
    #[must_use]
    pub fn n_states(&self) -> usize {
        self.n_states
    }

    /// Number of actions available in `state`.
    ///
    /// # Panics
    ///
    /// Panics if `state` is out of range.
    #[must_use]
    pub fn n_actions(&self, state: usize) -> usize {
        self.sa_ptr[state + 1] - self.sa_ptr[state]
    }

    /// Total number of stored transition entries.
    #[must_use]
    pub fn nnz(&self) -> usize {
        self.rates.len()
    }

    /// Cost rate `c_i^a`.
    ///
    /// # Panics
    ///
    /// Panics if `state` or `action` is out of range.
    #[must_use]
    pub fn cost_rate(&self, state: usize, action: usize) -> f64 {
        self.cost[self.sa_ptr[state] + action]
    }

    /// The `(target, rate)` transitions of one state–action row.
    ///
    /// # Panics
    ///
    /// Panics if `state` or `action` is out of range.
    pub fn transitions(
        &self,
        state: usize,
        action: usize,
    ) -> impl Iterator<Item = (usize, f64)> + '_ {
        let row = self.sa_ptr[state] + action;
        let range = self.row_ptr[row]..self.row_ptr[row + 1];
        self.col_idx[range.clone()]
            .iter()
            .zip(&self.rates[range])
            .map(|(&c, &r)| (c, r))
    }

    /// Test quantity `c_i^a + Σ_j s_{i,j}^a (v_j − v_i)`, accumulated in the
    /// same order and association as the reference scan (cost first, then
    /// one fused term per transition) so results are bit-identical.
    ///
    /// # Panics
    ///
    /// Panics if `state`/`action` is out of range or `bias` is too short.
    #[must_use]
    pub fn test_quantity(&self, state: usize, action: usize, bias: &DVector) -> f64 {
        let row = self.sa_ptr[state] + action;
        let mut q = self.cost[row];
        let here = bias[state];
        for k in self.row_ptr[row]..self.row_ptr[row + 1] {
            q += self.rates[k] * (bias[self.col_idx[k]] - here);
        }
        q
    }

    /// Gain drift `Σ_j s_{i,j}^a (g_j − g_i)` of the multichain improvement
    /// stage, accumulated from zero like the reference closure.
    ///
    /// # Panics
    ///
    /// Panics if `state`/`action` is out of range or `gains` is too short.
    #[must_use]
    pub fn drift(&self, state: usize, action: usize, gains: &DVector) -> f64 {
        let row = self.sa_ptr[state] + action;
        let here = gains[state];
        let mut d = 0.0;
        for k in self.row_ptr[row]..self.row_ptr[row + 1] {
            d += self.rates[k] * (gains[self.col_idx[k]] - here);
        }
        d
    }

    /// Bias test quantity in the multichain association `c + (Σ …)`: the sum
    /// is accumulated from zero first and added to the cost at the end,
    /// matching the multichain reference closure bit for bit.
    ///
    /// # Panics
    ///
    /// Panics if `state`/`action` is out of range or `bias` is too short.
    #[must_use]
    pub fn bias_test(&self, state: usize, action: usize, bias: &DVector) -> f64 {
        let row = self.sa_ptr[state] + action;
        let here = bias[state];
        let mut sum = 0.0;
        for k in self.row_ptr[row]..self.row_ptr[row + 1] {
            sum += self.rates[k] * (bias[self.col_idx[k]] - here);
        }
        self.cost[row] + sum
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Ctmdp {
        let mut b = Ctmdp::builder(3);
        b.action(0, "a", 1.0, &[(1, 2.0), (2, 0.5)]).unwrap();
        b.action(0, "b", 3.0, &[(2, 1.5)]).unwrap();
        b.action(1, "a", 0.0, &[(0, 1.0)]).unwrap();
        b.action(2, "a", 7.0, &[(0, 0.25), (1, 4.0)]).unwrap();
        b.build().unwrap()
    }

    #[test]
    fn layout_round_trips_the_builder() {
        let mdp = sample();
        let csr = mdp.sparse_actions();
        assert_eq!(csr.n_states(), 3);
        assert_eq!(csr.n_actions(0), 2);
        assert_eq!(csr.n_actions(1), 1);
        assert_eq!(csr.nnz(), 6);
        assert_eq!(csr.cost_rate(0, 1), 3.0);
        assert_eq!(csr.cost_rate(2, 0), 7.0);
        let row: Vec<(usize, f64)> = csr.transitions(2, 0).collect();
        assert_eq!(row, vec![(0, 0.25), (1, 4.0)]);
    }

    #[test]
    fn test_quantity_matches_manual_computation() {
        let mdp = sample();
        let csr = mdp.sparse_actions();
        let bias = DVector::from_vec(vec![0.0, 2.0, -1.0]);
        // State 0, action "a": 1.0 + 2.0·(2−0) + 0.5·(−1−0) = 4.5.
        assert_eq!(csr.test_quantity(0, 0, &bias), 4.5);
        // drift with these as gains: 2.0·2 + 0.5·(−1) = 3.5.
        assert_eq!(csr.drift(0, 0, &bias), 3.5);
        assert_eq!(csr.bias_test(0, 0, &bias), 1.0 + 3.5);
    }

    #[test]
    fn empty_rate_rows_are_representable() {
        let mut b = Ctmdp::builder(1);
        b.action(0, "idle", 2.5, &[]).unwrap();
        let csr = b.build().unwrap().sparse_actions();
        assert_eq!(csr.n_actions(0), 1);
        assert_eq!(csr.nnz(), 0);
        assert_eq!(csr.test_quantity(0, 0, &DVector::zeros(1)), 2.5);
    }
}
