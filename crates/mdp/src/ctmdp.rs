use std::fmt;

use dpm_ctmc::Generator;
use dpm_linalg::DVector;

use crate::{MdpError, Policy};

/// One action available in a state of a [`Ctmdp`]: a label, the cost rate
/// `c_i^a` earned per unit time while the action is in force, and the
/// off-diagonal transition rates `s_{i,j}^a` it induces.
#[derive(Debug, Clone, PartialEq)]
pub struct ActionSpec {
    label: String,
    cost_rate: f64,
    rates: Vec<(usize, f64)>,
}

impl ActionSpec {
    /// Human-readable action label (e.g. `"sleep"`).
    #[must_use]
    pub fn label(&self) -> &str {
        &self.label
    }

    /// Cost rate `c_i^a` while this state-action pair is active.
    #[must_use]
    pub fn cost_rate(&self) -> f64 {
        self.cost_rate
    }

    /// Sparse off-diagonal transition rates as `(target, rate)` pairs.
    #[must_use]
    pub fn rates(&self) -> &[(usize, f64)] {
        &self.rates
    }

    /// Total exit rate under this action.
    #[must_use]
    pub fn exit_rate(&self) -> f64 {
        self.rates.iter().map(|&(_, r)| r).sum()
    }

    /// Transition rate to `target` (0 if absent).
    #[must_use]
    pub fn rate_to(&self, target: usize) -> f64 {
        self.rates
            .iter()
            .find(|&&(t, _)| t == target)
            .map_or(0.0, |&(_, r)| r)
    }
}

/// A continuous-time Markov decision process with finitely many states and
/// per-state finite action sets (paper Section II; Howard 1960, Miller
/// 1968).
///
/// Choosing one action per state — a stationary deterministic [`Policy`] —
/// induces an ordinary CTMC whose generator is available through
/// [`Ctmdp::generator_for`]. Theorems 2.2–2.3 of the paper justify
/// restricting attention to stationary policies.
///
/// # Examples
///
/// ```
/// use dpm_mdp::Ctmdp;
///
/// # fn main() -> Result<(), dpm_mdp::MdpError> {
/// let mut b = Ctmdp::builder(2);
/// b.action(0, "go", 1.0, &[(1, 2.0)])?;
/// b.action(1, "back", 0.0, &[(0, 4.0)])?;
/// let mdp = b.build()?;
/// assert_eq!(mdp.n_states(), 2);
/// assert_eq!(mdp.actions(0)[0].label(), "go");
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct Ctmdp {
    actions: Vec<Vec<ActionSpec>>,
}

impl Ctmdp {
    /// Starts building a process with `n_states` states.
    #[must_use]
    pub fn builder(n_states: usize) -> CtmdpBuilder {
        CtmdpBuilder::new(n_states)
    }

    /// Number of states.
    #[must_use]
    pub fn n_states(&self) -> usize {
        self.actions.len()
    }

    /// Actions available in `state`.
    ///
    /// # Panics
    ///
    /// Panics if `state` is out of range.
    #[must_use]
    pub fn actions(&self, state: usize) -> &[ActionSpec] {
        &self.actions[state]
    }

    /// Total number of state-action pairs.
    #[must_use]
    pub fn n_state_actions(&self) -> usize {
        self.actions.iter().map(Vec::len).sum()
    }

    /// Precomputes every state–action transition row into one contiguous
    /// CSR table ([`crate::ActionCsr`]), the `O(nnz)` policy-improvement
    /// kernel. Build it once per solve and reuse it across improvement
    /// rounds; results are bit-identical to scanning [`Ctmdp::actions`]
    /// directly.
    #[must_use]
    pub fn sparse_actions(&self) -> crate::ActionCsr {
        crate::ActionCsr::from_ctmdp(self)
    }

    /// Validates that `policy` matches this process.
    ///
    /// # Errors
    ///
    /// Returns [`MdpError::InvalidPolicy`] on length or action-index
    /// mismatch.
    pub fn check_policy(&self, policy: &Policy) -> Result<(), MdpError> {
        if policy.len() != self.n_states() {
            return Err(MdpError::InvalidPolicy {
                reason: format!(
                    "policy has {} entries for {} states",
                    policy.len(),
                    self.n_states()
                ),
            });
        }
        for (state, &a) in policy.actions().iter().enumerate() {
            if a >= self.actions[state].len() {
                return Err(MdpError::InvalidPolicy {
                    reason: format!(
                        "action index {a} out of range ({} actions) at state {state}",
                        self.actions[state].len()
                    ),
                });
            }
        }
        Ok(())
    }

    /// Generator matrix `G^δ` of the CTMC induced by `policy`.
    ///
    /// # Errors
    ///
    /// Returns [`MdpError::InvalidPolicy`] if the policy does not match, or
    /// propagates generator validation failures.
    pub fn generator_for(&self, policy: &Policy) -> Result<Generator, MdpError> {
        self.check_policy(policy)?;
        let n = self.n_states();
        let mut b = Generator::builder(n);
        for (state, &a) in policy.actions().iter().enumerate() {
            for &(to, rate) in self.actions[state][a].rates() {
                if rate > 0.0 {
                    b.add_rate(state, to, rate);
                }
            }
        }
        b.build().map_err(MdpError::Chain)
    }

    /// The generator induced by `policy` in compressed sparse row storage,
    /// assembled directly from the per-action transition lists without
    /// materializing a dense matrix.
    ///
    /// # Errors
    ///
    /// Returns [`MdpError::InvalidPolicy`] if the policy does not match.
    pub fn sparse_generator_for(
        &self,
        policy: &Policy,
    ) -> Result<dpm_ctmc::SparseGenerator, MdpError> {
        self.check_policy(policy)?;
        let mut transitions = Vec::new();
        for (state, &a) in policy.actions().iter().enumerate() {
            for &(to, rate) in self.actions[state][a].rates() {
                if rate > 0.0 {
                    transitions.push((state, to, rate));
                }
            }
        }
        dpm_ctmc::SparseGenerator::from_transitions(self.n_states(), &transitions)
            .map_err(MdpError::Chain)
    }

    /// Cost-rate vector `c^δ` under `policy`.
    ///
    /// # Errors
    ///
    /// Returns [`MdpError::InvalidPolicy`] if the policy does not match.
    pub fn cost_rates_for(&self, policy: &Policy) -> Result<DVector, MdpError> {
        self.check_policy(policy)?;
        Ok(DVector::from_fn(self.n_states(), |i| {
            self.actions[i][policy.action(i)].cost_rate()
        }))
    }

    /// The "greedy" starting policy: in each state, the action with the
    /// smallest cost rate (ties to the first).
    #[must_use]
    pub fn min_cost_policy(&self) -> Policy {
        Policy::new(
            self.actions
                .iter()
                .map(|acts| {
                    acts.iter()
                        .enumerate()
                        .min_by(|(_, x), (_, y)| {
                            x.cost_rate()
                                .partial_cmp(&y.cost_rate())
                                // dpm-lint: allow(no_panic, reason = "cost rates are validated finite when the CTMDP is constructed")
                                .expect("cost rates are finite")
                        })
                        .map(|(i, _)| i)
                        // dpm-lint: allow(no_panic, reason = "CTMDP validation guarantees a non-empty action set per state")
                        .expect("every state has at least one action")
                })
                .collect(),
        )
    }

    /// Long-run average cost of `policy`: `π^δ · c^δ` with `π^δ` the
    /// stationary distribution of the induced chain.
    ///
    /// # Errors
    ///
    /// Propagates policy validation and stationary-solver failures (e.g.
    /// [`dpm_ctmc::CtmcError::Reducible`] for policies inducing reducible
    /// chains).
    pub fn average_cost(&self, policy: &Policy) -> Result<f64, MdpError> {
        let g = self.generator_for(policy)?;
        let (pi, _) = dpm_ctmc::stationary::Solver::new(dpm_ctmc::stationary::Method::Gth)
            .check_irreducible()
            .solve(&g)?;
        Ok(pi.dot(&self.cost_rates_for(policy)?))
    }

    /// Enumerates every deterministic stationary policy (cartesian product
    /// of action sets). Intended for small processes in tests and as a
    /// brute-force optimality oracle.
    ///
    /// # Panics
    ///
    /// Panics if the policy count exceeds `10^7` (guard against accidental
    /// combinatorial explosion).
    #[must_use]
    pub fn enumerate_policies(&self) -> Vec<Policy> {
        let counts: Vec<usize> = self.actions.iter().map(Vec::len).collect();
        let total: usize = counts.iter().product();
        assert!(
            total <= 10_000_000,
            "refusing to enumerate {total} policies"
        );
        let mut out = Vec::with_capacity(total);
        let mut current = vec![0usize; counts.len()];
        loop {
            out.push(Policy::new(current.clone()));
            // Odometer increment.
            let mut pos = 0;
            loop {
                if pos == counts.len() {
                    return out;
                }
                current[pos] += 1;
                if current[pos] < counts[pos] {
                    break;
                }
                current[pos] = 0;
                pos += 1;
            }
        }
    }
}

impl fmt::Display for Ctmdp {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "Ctmdp: {} states, {} state-action pairs",
            self.n_states(),
            self.n_state_actions()
        )?;
        for (i, acts) in self.actions.iter().enumerate() {
            for a in acts {
                writeln!(
                    f,
                    "  state {i}: '{}' cost {} rates {:?}",
                    a.label(),
                    a.cost_rate(),
                    a.rates()
                )?;
            }
        }
        Ok(())
    }
}

/// Builder for [`Ctmdp`] processes.
#[derive(Debug, Clone)]
pub struct CtmdpBuilder {
    actions: Vec<Vec<ActionSpec>>,
}

impl CtmdpBuilder {
    /// Creates a builder for `n_states` states, each initially action-less.
    #[must_use]
    pub fn new(n_states: usize) -> Self {
        CtmdpBuilder {
            actions: vec![Vec::new(); n_states],
        }
    }

    /// Adds an action to `state` with the given label, cost rate, and
    /// off-diagonal transition rates.
    ///
    /// # Errors
    ///
    /// Returns [`MdpError::StateOutOfRange`] or [`MdpError::InvalidAction`]
    /// for self-loop targets, negative/non-finite rates, or non-finite
    /// costs.
    pub fn action(
        &mut self,
        state: usize,
        label: impl Into<String>,
        cost_rate: f64,
        rates: &[(usize, f64)],
    ) -> Result<&mut Self, MdpError> {
        let n = self.actions.len();
        if state >= n {
            return Err(MdpError::StateOutOfRange { state, n_states: n });
        }
        if !cost_rate.is_finite() {
            return Err(MdpError::InvalidAction {
                state,
                reason: format!("cost rate {cost_rate} is not finite"),
            });
        }
        let mut merged: Vec<(usize, f64)> = Vec::with_capacity(rates.len());
        for &(to, rate) in rates {
            if to >= n {
                return Err(MdpError::StateOutOfRange {
                    state: to,
                    n_states: n,
                });
            }
            if to == state {
                return Err(MdpError::InvalidAction {
                    state,
                    reason: "self-loop rates are not allowed (diagonals are derived)".to_owned(),
                });
            }
            if !(rate.is_finite() && rate >= 0.0) {
                return Err(MdpError::InvalidAction {
                    state,
                    reason: format!("rate {rate} to state {to} must be finite and >= 0"),
                });
            }
            match merged.iter_mut().find(|(t, _)| *t == to) {
                Some((_, r)) => *r += rate,
                None => merged.push((to, rate)),
            }
        }
        self.actions[state].push(ActionSpec {
            label: label.into(),
            cost_rate,
            rates: merged,
        });
        Ok(self)
    }

    /// Finalizes the process.
    ///
    /// # Errors
    ///
    /// Returns [`MdpError::NoActions`] if some state has no actions (or the
    /// process has no states at all).
    pub fn build(self) -> Result<Ctmdp, MdpError> {
        if self.actions.is_empty() {
            return Err(MdpError::NoActions { state: 0 });
        }
        for (state, acts) in self.actions.iter().enumerate() {
            if acts.is_empty() {
                return Err(MdpError::NoActions { state });
            }
        }
        Ok(Ctmdp {
            actions: self.actions,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn toy() -> Ctmdp {
        let mut b = Ctmdp::builder(2);
        b.action(0, "fast", 1.0, &[(1, 2.0)]).unwrap();
        b.action(0, "slow", 3.0, &[(1, 0.5)]).unwrap();
        b.action(1, "repair", 10.0, &[(0, 1.0)]).unwrap();
        b.build().unwrap()
    }

    #[test]
    fn builder_collects_actions() {
        let m = toy();
        assert_eq!(m.n_states(), 2);
        assert_eq!(m.actions(0).len(), 2);
        assert_eq!(m.actions(1).len(), 1);
        assert_eq!(m.n_state_actions(), 3);
        assert_eq!(m.actions(0)[1].label(), "slow");
        assert_eq!(m.actions(0)[1].exit_rate(), 0.5);
        assert_eq!(m.actions(0)[0].rate_to(1), 2.0);
        assert_eq!(m.actions(0)[0].rate_to(0), 0.0);
    }

    #[test]
    fn builder_merges_duplicate_targets() {
        let mut b = Ctmdp::builder(3);
        b.action(0, "a", 0.0, &[(1, 1.0), (1, 2.0), (2, 0.5)])
            .unwrap();
        b.action(1, "b", 0.0, &[(0, 1.0)]).unwrap();
        b.action(2, "c", 0.0, &[(0, 1.0)]).unwrap();
        let m = b.build().unwrap();
        assert_eq!(m.actions(0)[0].rate_to(1), 3.0);
        assert_eq!(m.actions(0)[0].rates().len(), 2);
    }

    #[test]
    fn builder_rejections() {
        let mut b = Ctmdp::builder(2);
        assert!(b.action(5, "x", 0.0, &[]).is_err());
        assert!(b.action(0, "x", f64::NAN, &[]).is_err());
        assert!(b.action(0, "x", 0.0, &[(0, 1.0)]).is_err());
        assert!(b.action(0, "x", 0.0, &[(1, -1.0)]).is_err());
        assert!(b.action(0, "x", 0.0, &[(7, 1.0)]).is_err());
    }

    #[test]
    fn build_requires_actions_everywhere() {
        let mut b = Ctmdp::builder(2);
        b.action(0, "only", 0.0, &[(1, 1.0)]).unwrap();
        assert!(matches!(b.build(), Err(MdpError::NoActions { state: 1 })));
        assert!(matches!(
            Ctmdp::builder(0).build(),
            Err(MdpError::NoActions { .. })
        ));
    }

    #[test]
    fn generator_and_costs_follow_policy() {
        let m = toy();
        let fast = Policy::new(vec![0, 0]);
        let slow = Policy::new(vec![1, 0]);
        let g_fast = m.generator_for(&fast).unwrap();
        let g_slow = m.generator_for(&slow).unwrap();
        assert_eq!(g_fast.rate(0, 1), 2.0);
        assert_eq!(g_slow.rate(0, 1), 0.5);
        assert_eq!(m.cost_rates_for(&fast).unwrap().as_slice(), &[1.0, 10.0]);
        assert_eq!(m.cost_rates_for(&slow).unwrap().as_slice(), &[3.0, 10.0]);
    }

    #[test]
    fn policy_validation() {
        let m = toy();
        assert!(m.check_policy(&Policy::new(vec![0])).is_err());
        assert!(m.check_policy(&Policy::new(vec![2, 0])).is_err());
        assert!(m.check_policy(&Policy::new(vec![1, 0])).is_ok());
    }

    #[test]
    fn average_cost_of_known_chain() {
        let m = toy();
        // fast: rates 2 and 1 → pi = (1/3, 2/3); cost = 1/3*1 + 2/3*10 = 7.
        let cost = m.average_cost(&Policy::new(vec![0, 0])).unwrap();
        assert!((cost - 7.0).abs() < 1e-10);
    }

    #[test]
    fn min_cost_policy_picks_cheapest() {
        let m = toy();
        assert_eq!(m.min_cost_policy().actions(), &[0, 0]);
    }

    #[test]
    fn enumerate_policies_covers_product() {
        let m = toy();
        let all = m.enumerate_policies();
        assert_eq!(all.len(), 2);
        assert!(all.contains(&Policy::new(vec![0, 0])));
        assert!(all.contains(&Policy::new(vec![1, 0])));
    }

    #[test]
    fn display_lists_actions() {
        let text = toy().to_string();
        assert!(text.contains("fast"));
        assert!(text.contains("repair"));
    }
}
