//! Relative value iteration for average-cost CTMDPs via uniformization.
//!
//! A CTMDP with bounded exit rates is converted into an equivalent
//! discrete-time MDP by *uniformization*: with `Λ ≥ max exit rate`,
//!
//! ```text
//! p̃(j | i, a) = δ_{ij} + s_{i,j}^a / Λ,      c̃(i, a) = c_i^a / Λ,
//! ```
//!
//! and the continuous-time average cost is `Λ` times the discrete-time
//! average cost per step. Relative value iteration on the uniformized MDP
//! then provides span-based upper and lower bounds on the optimal gain —
//! an anytime alternative to policy iteration used by the solver ablation
//! (DESIGN.md, A1).

use dpm_linalg::DVector;

use crate::{Ctmdp, MdpError, Policy};

/// Options for [`solve`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Options {
    /// Iteration cap.
    pub max_iterations: usize,
    /// Stop when the span of the value update is below this (in
    /// continuous-time cost units).
    pub tolerance: f64,
    /// Extra margin on the uniformization constant (must be > 1 so the
    /// uniformized chain is aperiodic).
    pub uniformization_margin: f64,
}

impl Default for Options {
    fn default() -> Self {
        Options {
            max_iterations: 1_000_000,
            tolerance: 1e-9,
            uniformization_margin: 1.05,
        }
    }
}

/// Result of relative value iteration.
#[derive(Debug, Clone, PartialEq)]
pub struct Solution {
    policy: Policy,
    gain_lower: f64,
    gain_upper: f64,
    iterations: usize,
}

impl Solution {
    /// The greedy policy at termination (average-cost optimal once the
    /// bounds pinch).
    #[must_use]
    pub fn policy(&self) -> &Policy {
        &self.policy
    }

    /// Lower bound on the optimal average cost.
    #[must_use]
    pub fn gain_lower(&self) -> f64 {
        self.gain_lower
    }

    /// Upper bound on the optimal average cost.
    #[must_use]
    pub fn gain_upper(&self) -> f64 {
        self.gain_upper
    }

    /// Midpoint gain estimate.
    #[must_use]
    pub fn gain(&self) -> f64 {
        0.5 * (self.gain_lower + self.gain_upper)
    }

    /// Iterations performed.
    #[must_use]
    pub fn iterations(&self) -> usize {
        self.iterations
    }
}

/// Runs relative value iteration until the span of the gain bounds drops
/// below `options.tolerance`.
///
/// # Errors
///
/// Returns [`MdpError::InvalidParameter`] for a margin ≤ 1 or a process
/// with zero maximum exit rate, and [`MdpError::NotConverged`] when the
/// iteration cap is reached (periodic structures can stall relative VI;
/// the margin > 1 rules that out for the uniformized chain itself).
///
/// # Examples
///
/// ```
/// use dpm_mdp::{average, value_iteration, Ctmdp};
///
/// # fn main() -> Result<(), dpm_mdp::MdpError> {
/// let mut b = Ctmdp::builder(2);
/// b.action(0, "run", 1.0, &[(1, 1.0)])?;
/// b.action(1, "slow", 5.0, &[(0, 1.0)])?;
/// b.action(1, "fast", 9.0, &[(0, 10.0)])?;
/// let mdp = b.build()?;
/// let vi = value_iteration::solve(&mdp, &value_iteration::Options::default())?;
/// let pi = average::policy_iteration(&mdp, &average::Options::default())?;
/// assert!((vi.gain() - pi.gain()).abs() < 1e-6);
/// # Ok(())
/// # }
/// ```
pub fn solve(mdp: &Ctmdp, options: &Options) -> Result<Solution, MdpError> {
    if options.uniformization_margin <= 1.0 {
        return Err(MdpError::InvalidParameter {
            reason: format!(
                "uniformization margin {} must exceed 1",
                options.uniformization_margin
            ),
        });
    }
    let n = mdp.n_states();
    let lambda = (0..n)
        .flat_map(|i| mdp.actions(i).iter().map(crate::ActionSpec::exit_rate))
        .fold(0.0f64, f64::max)
        * options.uniformization_margin;
    if lambda <= 0.0 {
        return Err(MdpError::InvalidParameter {
            reason: "process has no transitions under any action".to_owned(),
        });
    }

    // One Bellman backup of the uniformized MDP.
    let backup = |values: &DVector| -> (DVector, Policy) {
        let mut next = DVector::zeros(n);
        let mut greedy = vec![0usize; n];
        for i in 0..n {
            let mut best = f64::INFINITY;
            for (a, spec) in mdp.actions(i).iter().enumerate() {
                // c̃ + Σ_j p̃(j|i,a) v_j
                //   = c/Λ + v_i + Σ_(to,r) (r/Λ)(v_to − v_i)
                let mut q = spec.cost_rate() / lambda + values[i];
                for &(to, rate) in spec.rates() {
                    q += rate / lambda * (values[to] - values[i]);
                }
                if q < best {
                    best = q;
                    greedy[i] = a;
                }
            }
            next[i] = best;
        }
        (next, Policy::new(greedy))
    };

    let mut values = DVector::zeros(n);
    for iteration in 1..=options.max_iterations {
        let (mut next, greedy) = backup(&values);
        // Gain bounds from the update span (per uniformized step).
        let delta = &next - &values;
        let (mut lo, mut hi) = (f64::INFINITY, f64::NEG_INFINITY);
        for d in delta.iter() {
            lo = lo.min(d);
            hi = hi.max(d);
        }
        let gain_lower = lambda * lo;
        let gain_upper = lambda * hi;
        if gain_upper - gain_lower <= options.tolerance {
            return Ok(Solution {
                policy: greedy,
                gain_lower,
                gain_upper,
                iterations: iteration,
            });
        }
        // Relative normalization keeps the values bounded.
        let shift = next[0];
        for v in next.as_mut_slice() {
            *v -= shift;
        }
        values = next;
    }
    Err(MdpError::NotConverged {
        iterations: options.max_iterations,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::average;

    fn repair_mdp() -> Ctmdp {
        let mut b = Ctmdp::builder(2);
        b.action(0, "run", 1.0, &[(1, 1.0)]).unwrap();
        b.action(1, "slow", 5.0, &[(0, 1.0)]).unwrap();
        b.action(1, "fast", 9.0, &[(0, 10.0)]).unwrap();
        b.build().unwrap()
    }

    #[test]
    fn bounds_pinch_on_the_optimal_gain() {
        let mdp = repair_mdp();
        let vi = solve(&mdp, &Options::default()).unwrap();
        let pi = average::policy_iteration(&mdp, &average::Options::default()).unwrap();
        assert!(vi.gain_lower() <= pi.gain() + 1e-8);
        assert!(vi.gain_upper() >= pi.gain() - 1e-8);
        assert!((vi.gain() - pi.gain()).abs() < 1e-7);
        assert_eq!(vi.policy(), pi.policy());
    }

    #[test]
    fn works_on_three_state_process() {
        let mut b = Ctmdp::builder(3);
        b.action(0, "a", 0.0, &[(1, 2.0)]).unwrap();
        b.action(1, "risky", 0.0, &[(2, 1.0)]).unwrap();
        b.action(1, "safe", 3.0, &[(0, 1.0)]).unwrap();
        b.action(2, "recover", 50.0, &[(0, 0.2)]).unwrap();
        let mdp = b.build().unwrap();
        let vi = solve(&mdp, &Options::default()).unwrap();
        let pi = average::policy_iteration(&mdp, &average::Options::default()).unwrap();
        assert!((vi.gain() - pi.gain()).abs() < 1e-6);
    }

    #[test]
    fn rejects_bad_margin() {
        let mdp = repair_mdp();
        let options = Options {
            uniformization_margin: 1.0,
            ..Options::default()
        };
        assert!(solve(&mdp, &options).is_err());
    }

    #[test]
    fn tiny_budget_reports_not_converged() {
        let mdp = repair_mdp();
        let options = Options {
            max_iterations: 2,
            tolerance: 1e-14,
            ..Options::default()
        };
        assert!(matches!(
            solve(&mdp, &options),
            Err(MdpError::NotConverged { iterations: 2 })
        ));
    }

    #[test]
    fn iteration_count_reported() {
        let mdp = repair_mdp();
        let vi = solve(&mdp, &Options::default()).unwrap();
        assert!(vi.iterations() > 1);
    }
}
