use std::fmt;

/// A stationary deterministic policy: one action index per state
/// (Definition 2.8 — the paper restricts the search to stationary policies
/// by Theorems 2.2–2.3).
///
/// # Examples
///
/// ```
/// use dpm_mdp::Policy;
///
/// let p = Policy::new(vec![0, 2, 1]);
/// assert_eq!(p.action(1), 2);
/// assert_eq!(p.len(), 3);
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct Policy {
    actions: Vec<usize>,
}

impl Policy {
    /// Creates a policy from per-state action indices.
    #[must_use]
    pub fn new(actions: Vec<usize>) -> Self {
        Policy { actions }
    }

    /// Uniform policy choosing action `action` in all `n_states` states.
    #[must_use]
    pub fn uniform(n_states: usize, action: usize) -> Self {
        Policy {
            actions: vec![action; n_states],
        }
    }

    /// Action chosen in `state`.
    ///
    /// # Panics
    ///
    /// Panics if `state` is out of range.
    #[must_use]
    pub fn action(&self, state: usize) -> usize {
        self.actions[state]
    }

    /// All per-state action indices.
    #[must_use]
    pub fn actions(&self) -> &[usize] {
        &self.actions
    }

    /// Number of states covered.
    #[must_use]
    pub fn len(&self) -> usize {
        self.actions.len()
    }

    /// Returns `true` for the empty policy.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.actions.is_empty()
    }

    /// Replaces the action in one state, returning the modified policy.
    ///
    /// # Panics
    ///
    /// Panics if `state` is out of range.
    #[must_use]
    pub fn with_action(mut self, state: usize, action: usize) -> Self {
        self.actions[state] = action;
        self
    }
}

impl fmt::Display for Policy {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Policy{:?}", self.actions)
    }
}

impl From<Vec<usize>> for Policy {
    fn from(actions: Vec<usize>) -> Self {
        Policy { actions }
    }
}

/// A stationary randomized policy: a probability distribution over actions
/// in every state.
///
/// Produced by the constrained occupation-measure LP
/// ([`crate::lp::solve_constrained_average`]) — with an active performance
/// constraint the optimal policy may need to randomize in (at most) one
/// state.
#[derive(Debug, Clone, PartialEq)]
pub struct RandomizedPolicy {
    weights: Vec<Vec<f64>>,
}

impl RandomizedPolicy {
    /// Creates a randomized policy from per-state action weight vectors.
    /// Weights are normalized to sum to one per state.
    ///
    /// # Panics
    ///
    /// Panics if any state's weights are empty, negative, or all zero.
    #[must_use]
    pub fn new(weights: Vec<Vec<f64>>) -> Self {
        let weights = weights
            .into_iter()
            .enumerate()
            .map(|(state, mut w)| {
                assert!(!w.is_empty(), "state {state} has no action weights");
                assert!(
                    w.iter().all(|&x| x >= 0.0),
                    "state {state} has negative weights"
                );
                let total: f64 = w.iter().sum();
                assert!(total > 0.0, "state {state} has all-zero weights");
                for x in &mut w {
                    *x /= total;
                }
                w
            })
            .collect();
        RandomizedPolicy { weights }
    }

    /// Lifts a deterministic policy (point mass per state). `n_actions[i]`
    /// gives the action count of state `i`.
    ///
    /// # Panics
    ///
    /// Panics if lengths mismatch or an action index is out of range.
    #[must_use]
    pub fn from_deterministic(policy: &Policy, n_actions: &[usize]) -> Self {
        assert_eq!(policy.len(), n_actions.len(), "length mismatch");
        let weights = policy
            .actions()
            .iter()
            .zip(n_actions)
            .map(|(&a, &count)| {
                assert!(a < count, "action {a} out of range {count}");
                let mut w = vec![0.0; count];
                w[a] = 1.0;
                w
            })
            .collect();
        RandomizedPolicy { weights }
    }

    /// Probability of choosing `action` in `state`.
    ///
    /// # Panics
    ///
    /// Panics if either index is out of range.
    #[must_use]
    pub fn probability(&self, state: usize, action: usize) -> f64 {
        self.weights[state][action]
    }

    /// Action weights in `state`.
    ///
    /// # Panics
    ///
    /// Panics if `state` is out of range.
    #[must_use]
    pub fn weights(&self, state: usize) -> &[f64] {
        &self.weights[state]
    }

    /// Number of states covered.
    #[must_use]
    pub fn len(&self) -> usize {
        self.weights.len()
    }

    /// Returns `true` for the empty policy.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.weights.is_empty()
    }

    /// States in which the policy genuinely randomizes (more than one
    /// action with probability above `tol`).
    #[must_use]
    pub fn randomizing_states(&self, tol: f64) -> Vec<usize> {
        self.weights
            .iter()
            .enumerate()
            .filter(|(_, w)| w.iter().filter(|&&x| x > tol).count() > 1)
            .map(|(i, _)| i)
            .collect()
    }

    /// Rounds to the deterministic policy taking each state's most probable
    /// action.
    #[must_use]
    pub fn to_deterministic(&self) -> Policy {
        Policy::new(
            self.weights
                .iter()
                .map(|w| {
                    w.iter()
                        .enumerate()
                        // dpm-lint: allow(no_panic, reason = "action weights are finite: validated costs plus finite value estimates")
                        .max_by(|(_, x), (_, y)| x.partial_cmp(y).expect("weights are finite"))
                        .map(|(i, _)| i)
                        // dpm-lint: allow(no_panic, reason = "the action set is non-empty by MDP validation")
                        .expect("non-empty weights")
                })
                .collect(),
        )
    }
}

impl fmt::Display for RandomizedPolicy {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "RandomizedPolicy[")?;
        for (i, w) in self.weights.iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "{w:.3?}")?;
        }
        write!(f, "]")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_policy_basics() {
        let p = Policy::uniform(3, 1);
        assert_eq!(p.actions(), &[1, 1, 1]);
        let p = p.with_action(0, 2);
        assert_eq!(p.action(0), 2);
        assert!(!p.is_empty());
        assert_eq!(Policy::from(vec![0, 1]).len(), 2);
        assert!(Policy::new(vec![]).is_empty());
    }

    #[test]
    fn randomized_normalizes() {
        let r = RandomizedPolicy::new(vec![vec![1.0, 3.0], vec![2.0]]);
        assert!((r.probability(0, 0) - 0.25).abs() < 1e-12);
        assert!((r.probability(0, 1) - 0.75).abs() < 1e-12);
        assert_eq!(r.probability(1, 0), 1.0);
        assert_eq!(r.len(), 2);
    }

    #[test]
    fn randomizing_states_detects_mixtures() {
        let r = RandomizedPolicy::new(vec![vec![0.5, 0.5], vec![1.0, 0.0]]);
        assert_eq!(r.randomizing_states(1e-9), vec![0]);
    }

    #[test]
    fn to_deterministic_takes_mode() {
        let r = RandomizedPolicy::new(vec![vec![0.2, 0.8], vec![1.0, 0.0]]);
        assert_eq!(r.to_deterministic(), Policy::new(vec![1, 0]));
    }

    #[test]
    fn from_deterministic_round_trips() {
        let p = Policy::new(vec![1, 0]);
        let r = RandomizedPolicy::from_deterministic(&p, &[2, 3]);
        assert_eq!(r.probability(0, 1), 1.0);
        assert_eq!(r.probability(1, 0), 1.0);
        assert_eq!(r.weights(1), &[1.0, 0.0, 0.0]);
        assert_eq!(r.to_deterministic(), p);
        assert!(r.randomizing_states(1e-9).is_empty());
    }

    #[test]
    #[should_panic(expected = "all-zero")]
    fn randomized_rejects_zero_weights() {
        let _ = RandomizedPolicy::new(vec![vec![0.0, 0.0]]);
    }

    #[test]
    fn displays() {
        assert_eq!(Policy::new(vec![0, 1]).to_string(), "Policy[0, 1]");
        let r = RandomizedPolicy::new(vec![vec![1.0]]);
        assert!(r.to_string().contains("RandomizedPolicy"));
    }
}
