//! Ablation A1: the paper's efficiency claim — "the policy iteration
//! algorithm ... tends to be more efficient than the linear programming
//! method".
//!
//! Solves the policy-optimization problem with policy iteration, the
//! occupation-measure LP, and relative value iteration while the state
//! space grows (queue capacity sweep), reporting wall-clock time and
//! agreement of the optimal average cost.
//!
//! Run with `cargo run --release -p dpm-bench --bin ablate_solvers`.

// dpm-lint: allow-file(nondeterminism, reason = "this binary ablates wall-clock solver latency; timings go to the stdout table, never into canonical artifacts")
use std::time::Instant;

use dpm_bench::{row, rule};
use dpm_core::{PmSystem, SpModel, SrModel};
use dpm_mdp::{average, lp, value_iteration};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let widths = [10usize, 8, 12, 12, 12, 12, 12];
    println!("Ablation A1 — solver efficiency as the state space grows (w = 1)");
    row(
        &[
            "capacity".into(),
            "states".into(),
            "PI (ms)".into(),
            "LP (ms)".into(),
            "VI (ms)".into(),
            "PI gain".into(),
            "LP gain".into(),
        ],
        &widths,
    );
    rule(&widths);

    for capacity in [3usize, 5, 10, 20, 40] {
        // Value iteration needs a mild surrogate rate to stay usable (its
        // step count scales with the uniformization constant); PI and LP
        // see the same model, so the gains remain comparable.
        let system = PmSystem::builder()
            .provider(SpModel::dac99_server()?)
            .requestor(SrModel::poisson(1.0 / 6.0)?)
            .capacity(capacity)
            .instant_rate(100.0)
            .build()?;
        let mdp = system.ctmdp(1.0)?;
        let initial = dpm_core::PmPolicy::always_on(&system, 0)?.to_mdp_policy(&system)?;

        let start = Instant::now();
        let pi = average::policy_iteration_multichain(&mdp, initial, &average::Options::default())?;
        let pi_ms = start.elapsed().as_secs_f64() * 1e3;

        let start = Instant::now();
        let lp_solution = lp::solve_average(&mdp)?;
        let lp_ms = start.elapsed().as_secs_f64() * 1e3;

        let start = Instant::now();
        let vi = value_iteration::solve(
            &mdp,
            &value_iteration::Options {
                tolerance: 1e-6,
                ..value_iteration::Options::default()
            },
        );
        let vi_ms = start.elapsed().as_secs_f64() * 1e3;
        let vi_text = match &vi {
            Ok(_) => format!("{vi_ms:.2}"),
            Err(_) => "n/a".to_owned(),
        };

        let pi_gain = pi.gain_from(system.initial_state_index());
        row(
            &[
                format!("{capacity}"),
                format!("{}", system.n_states()),
                format!("{pi_ms:.2}"),
                format!("{lp_ms:.2}"),
                vi_text,
                format!("{pi_gain:.5}"),
                format!("{:.5}", lp_solution.average_cost()),
            ],
            &widths,
        );
    }
    println!(
        "\nshape check: PI and LP agree on the optimal gain; PI scales better with\n\
         the state count (the paper's efficiency claim)."
    );
    Ok(())
}
