//! Canonical solve-phase benchmark: kernel-level and end-to-end timings
//! into `BENCH_solve.json`.
//!
//! Three measurement groups, each with a correctness check riding along:
//!
//! 1. **Improvement kernels** at queue capacity `--capacity` (default
//!    100): a materialized dense per-action row scan (the
//!    `O(|S|·|A|·|S|)` baseline), the nested-list reference
//!    [`average::improve_step`], and the CSR kernel
//!    [`average::improve_step_csr`] — all three must pick identical
//!    policies.
//! 2. **Evaluation backends** on a synthetic unichain ring: policy
//!    iteration under `Dense`, `CachedLu` (LU factorization reuse) and
//!    `SparseDirect` must converge to the same policy and gain
//!    (≤ 1e-10), with per-backend wall time recorded. A fourth,
//!    flag-configured backend rides along: `--method` / `--tol` /
//!    `--precond` / `--restart` map 1:1 onto
//!    [`dpm_ctmc::stationary::SolverConfig`] via
//!    [`average::EvalBackend::parse`] + `with_config`, and must agree
//!    with the dense reference to the Krylov bound (≤ 1e-8).
//! 3. **Solve-phase pipeline**: a weight sweep as a
//!    [`dpm_harness::solve::SolvePlan`] at 1 worker versus
//!    `--solve-workers`, checked bit-identical.
//! 4. **Stationary solver tiers**: sparse direct (`SparseLu`) versus the
//!    preconditioned Krylov methods (BiCGSTAB / GMRES + ILU(0)) on
//!    synthetic sparse birth–death chains up to `--tier-states` (default
//!    100 000) states, recording the direct↔Krylov crossover. The direct
//!    solve is skipped beyond `--tier-direct-limit` (default 10 000),
//!    where the dense normalization row makes its elimination
//!    superlinear. All tiers must agree pairwise to ≤ 1e-8.
//!
//! Deterministic fields (`params`, `checks`) are canonical; wall-clock
//! numbers live under the `timers` key, which the artifact diff strips.
//! On a single-core CI host the speedups are *recorded*, not asserted —
//! the kernel-level gains are algorithmic, the pipeline gain is not.
//!
//! ```text
//! cargo run --release -p dpm-bench --bin bench_solve -- \
//!     [--capacity Q] [--rounds R] [--solve-workers N] \
//!     [--method NAME] [--tol T] [--precond NAME] [--restart M] \
//!     [--tier-states N] [--tier-direct-limit N] [--seed S] \
//!     [--out results/BENCH_solve.json]
//! ```

use dpm_bench::{row, rule, time_sweeps, timed};
use dpm_core::{optimize, PmSystem, SpModel, SrModel};
use dpm_ctmc::{
    stationary::{self, Method},
    SparseGenerator,
};
use dpm_harness::{
    artifact,
    cli::{self, Args},
    solve, Json, PlanPoint, SolvePlan,
};
use dpm_mdp::{average, Ctmdp, Policy};

/// The paper's server model at an enlarged queue capacity.
fn paper_mdp(capacity: usize, weight: f64) -> Result<Ctmdp, Box<dyn std::error::Error>> {
    let system = PmSystem::builder()
        .provider(SpModel::dac99_server()?)
        .requestor(SrModel::poisson(1.0 / 6.0)?)
        .capacity(capacity)
        .build()?;
    Ok(system.ctmdp(weight)?)
}

/// A synthetic irreducible unichain ring (every policy unichain), the
/// substrate for the evaluation-backend comparison.
fn ring(n: usize) -> Ctmdp {
    let mut b = Ctmdp::builder(n);
    for i in 0..n {
        let next = (i + 1) % n;
        let shortcut = (i + 2) % n;
        #[allow(clippy::cast_precision_loss)]
        let cost = 1.0 + i as f64 * 0.37;
        #[allow(clippy::cast_precision_loss)]
        let rate = 1.0 + i as f64 * 0.01;
        b.action(i, "step", cost, &[(next, rate)]).expect("valid");
        b.action(i, "skip", cost * 1.5, &[(next, 0.3), (shortcut, 0.9)])
            .expect("valid");
    }
    b.build().expect("valid ring")
}

/// Per-action rows of a CTMDP materialized as full dense vectors — the
/// `O(|S|·|A|·|S|)` improvement baseline the CSR kernel is measured
/// against. Materialization happens outside the timed region.
struct DenseActions {
    n_states: usize,
    sa_ptr: Vec<usize>,
    cost: Vec<f64>,
    /// Flattened rows, `n_states` entries per state–action pair.
    rows: Vec<f64>,
}

impl DenseActions {
    fn from_ctmdp(mdp: &Ctmdp) -> DenseActions {
        let n = mdp.n_states();
        let mut sa_ptr = vec![0usize];
        let mut cost = Vec::new();
        let mut rows = Vec::new();
        for state in 0..n {
            for spec in mdp.actions(state) {
                cost.push(spec.cost_rate());
                let mut dense = vec![0.0; n];
                for &(to, rate) in spec.rates() {
                    dense[to] = rate;
                }
                rows.extend_from_slice(&dense);
            }
            sa_ptr.push(cost.len());
        }
        DenseActions {
            n_states: n,
            sa_ptr,
            cost,
            rows,
        }
    }

    fn test_quantity(&self, state: usize, action: usize, bias: &[f64]) -> f64 {
        let sa = self.sa_ptr[state] + action;
        let row = &self.rows[sa * self.n_states..(sa + 1) * self.n_states];
        let here = bias[state];
        let mut q = self.cost[sa];
        for (j, &rate) in row.iter().enumerate() {
            q += rate * (bias[j] - here);
        }
        q
    }

    /// The reference improvement sweep over dense-materialized rows —
    /// identical decision rule, `O(|S|·|A|·|S|)` arithmetic.
    fn improve_step(&self, policy: &Policy, bias: &[f64], tolerance: f64) -> Policy {
        let mut next = policy.clone();
        for state in 0..self.n_states {
            let incumbent = policy.action(state);
            let mut best_action = incumbent;
            let mut best_q = self.test_quantity(state, incumbent, bias);
            for action in 0..self.sa_ptr[state + 1] - self.sa_ptr[state] {
                if action == incumbent {
                    continue;
                }
                let q = self.test_quantity(state, action, bias);
                if q < best_q - tolerance {
                    best_q = q;
                    best_action = action;
                }
            }
            if best_action != incumbent {
                next = next.with_action(state, best_action);
            }
        }
        next
    }
}

/// A sparse birth–death chain with smoothly varying rates: stiff enough
/// to exercise the ILU(0) preconditioner, smooth enough (no bottleneck
/// level) that every solver tier can reach the 1e-8 agreement bound. The
/// substrate for the solver-tier crossover measurement.
fn birth_death_sparse(n: usize) -> Result<SparseGenerator, Box<dyn std::error::Error>> {
    let mut transitions = Vec::with_capacity(2 * (n - 1));
    for i in 0..n - 1 {
        #[allow(clippy::cast_precision_loss)]
        let phase = i as f64 * 0.01;
        transitions.push((i, i + 1, 0.8 + 0.15 * phase.sin()));
        transitions.push((i + 1, i, 1.0 + 0.15 * phase.cos()));
    }
    Ok(SparseGenerator::from_transitions(n, &transitions)?)
}

#[allow(clippy::too_many_lines)]
fn main() -> Result<(), Box<dyn std::error::Error>> {
    let args = Args::from_env(&cli::with_resilience_flags(&[
        "capacity",
        "rounds",
        "solve-workers",
        "method",
        "tol",
        "precond",
        "restart",
        "tier-states",
        "tier-direct-limit",
        "seed",
        "out",
    ]))?;
    let capacity = args.get_usize("capacity", 100)?;
    let rounds = args.get_usize("rounds", 20)?.max(1);
    let solve_workers = args.get_usize("solve-workers", 2)?.max(2);
    let root_seed = args.get_u64("seed", 1300)?;
    let out = args.get_str("out", "results/BENCH_solve.json");

    // Solver-configuration flags: one SolverConfig drives both the
    // flag-selected evaluation backend and the Krylov stationary tiers.
    let method_flag = args.get_str("method", "bicgstab");
    let precond_flag = args.get_str("precond", "ilu0");
    let solver_config = stationary::SolverConfig {
        tolerance: args.get_f64("tol", stationary::DEFAULT_TOLERANCE)?,
        restart: args.get_usize("restart", stationary::DEFAULT_RESTART)?,
        precond: stationary::Precond::parse(&precond_flag)
            .ok_or_else(|| format!("--precond {precond_flag}: expected `ilu0` or `none`"))?,
        ..stationary::SolverConfig::default()
    };
    let cli_backend = average::EvalBackend::parse(&method_flag)
        .ok_or_else(|| format!("--method {method_flag}: not an evaluation backend name"))?
        .with_config(solver_config);

    // ------------------------------------------------------------------
    // 1. Improvement kernels at Q = capacity.
    // ------------------------------------------------------------------
    let mdp = paper_mdp(capacity, 1.0)?;
    let n = mdp.n_states();
    let kernel = mdp.sparse_actions();
    let dense = DenseActions::from_ctmdp(&mdp);
    // A real bias vector: converge policy iteration once and reuse its
    // bias and policy for every timed sweep.
    let initial = mdp.min_cost_policy();
    let solved = average::policy_iteration_multichain(&mdp, initial, &average::Options::default())?;
    let bias = solved.bias().clone();
    let policy = solved.policy().clone();
    let tol = average::Options::default().improvement_tolerance;

    let (from_dense, dense_secs) =
        time_sweeps(rounds, || dense.improve_step(&policy, bias.as_slice(), tol));
    let (from_reference, reference_secs) =
        time_sweeps(rounds, || average::improve_step(&mdp, &policy, &bias, tol));
    let (from_csr, csr_secs) = time_sweeps(rounds, || {
        average::improve_step_csr(&kernel, &policy, &bias, tol)
    });
    let improvement_agrees = from_dense == from_reference && from_reference == from_csr;
    // At a converged policy the improvement sweep must be a fixpoint.
    let improvement_fixpoint = from_csr == policy;

    // ------------------------------------------------------------------
    // 2. Evaluation backends on the unichain ring.
    // ------------------------------------------------------------------
    let ring_mdp = ring(2 * capacity.max(8));
    let ring_start = Policy::uniform(ring_mdp.n_states(), 1);
    let mut backend_results = Vec::new();
    for (name, backend) in [
        ("dense", average::EvalBackend::Dense),
        ("cached_lu", average::EvalBackend::CachedLu),
        ("sparse_direct", average::EvalBackend::SparseDirect),
    ] {
        let options = average::Options {
            backend,
            ..average::Options::default()
        };
        let (solution, secs) =
            timed(|| average::policy_iteration_from(&ring_mdp, ring_start.clone(), &options));
        backend_results.push((name, solution?, secs));
    }
    let (_, reference_solution, dense_eval_secs) = &backend_results[0];
    let mut max_gain_diff = 0.0f64;
    let mut backends_agree = true;
    for (_, solution, _) in &backend_results {
        max_gain_diff = max_gain_diff.max((solution.gain() - reference_solution.gain()).abs());
        backends_agree &= solution.policy() == reference_solution.policy();
    }
    // The flag-configured backend is compared at the Krylov agreement
    // bound (1e-8, matching the stationary proptests) rather than the
    // exact-backend bound above.
    let cli_backend_name = cli_backend.name();
    let cli_options = average::Options {
        backend: cli_backend,
        ..average::Options::default()
    };
    let (cli_solution, cli_eval_secs) =
        timed(|| average::policy_iteration_from(&ring_mdp, ring_start.clone(), &cli_options));
    let cli_solution = cli_solution?;
    let cli_gain_diff = (cli_solution.gain() - reference_solution.gain()).abs();
    let cli_backend_agrees =
        cli_solution.policy() == reference_solution.policy() && cli_gain_diff <= 1e-8;

    // ------------------------------------------------------------------
    // 3. Solve-phase pipeline, serial vs parallel.
    // ------------------------------------------------------------------
    let mut sweep_plan = SolvePlan::new("bench-solve-sweep", root_seed);
    let mut weight = 0.05;
    let mut n_sweep = 0usize;
    while weight < 50.0 {
        sweep_plan =
            sweep_plan.point(PlanPoint::new(format!("w={weight:.3}")).with("weight", weight));
        weight *= 2.5;
        n_sweep += 1;
    }
    let sweep_system = PmSystem::builder()
        .provider(SpModel::dac99_server()?)
        .requestor(SrModel::poisson(1.0 / 6.0)?)
        .capacity(5)
        .build()?;
    let run_sweep = |workers: usize| {
        solve::run_solve_plan(&sweep_plan, workers, |ctx| {
            let w = ctx.point.param("weight").unwrap().as_f64().unwrap();
            optimize::optimal_policy(&sweep_system, w).map_err(|e| e.to_string())
        })
    };
    let (serial, serial_secs) = timed(|| run_sweep(1));
    let serial = serial?;
    let (parallel, parallel_secs) = timed(|| run_sweep(solve_workers));
    let parallel = parallel?;
    let fingerprint = |records: &[solve::SolveRecord<optimize::OptimalSolution>]| {
        records
            .iter()
            .map(|r| {
                (
                    r.index,
                    r.output.policy().clone(),
                    r.output.metrics().power().to_bits(),
                    r.output.metrics().queue_length().to_bits(),
                    r.output.iterations(),
                )
            })
            .collect::<Vec<_>>()
    };
    let pipeline_identical = fingerprint(&serial) == fingerprint(&parallel);

    // ------------------------------------------------------------------
    // 4. Stationary solver tiers: sparse direct vs preconditioned Krylov.
    // ------------------------------------------------------------------
    let tier_states = args.get_usize("tier-states", 100_000)?;
    // The normalization row is dense, so sparse LU elimination goes
    // superlinear on these chains; beyond this size only the Krylov
    // tiers run (the crossover is long decided by then anyway).
    let tier_direct_limit = args.get_usize("tier-direct-limit", 10_000)?;
    let tier_sizes: Vec<usize> = [1_000usize, 10_000, 100_000]
        .into_iter()
        .filter(|&s| s <= tier_states.max(1_000))
        .collect();
    // (size, method name, secs, sweeps, norm_inf diff vs sparse direct)
    let mut tier_rows: Vec<(usize, String, f64, usize, f64)> = Vec::new();
    let mut tiers_agree = true;
    let mut tier_max_diff = 0.0f64;
    let tier_label = |method: Method| {
        if method.is_krylov() {
            format!("{}_{}", method.name(), solver_config.precond.name())
        } else {
            "sparse_lu".to_owned()
        }
    };
    for &size in &tier_sizes {
        let chain = birth_death_sparse(size)?;
        let mut reference = None;
        for method in [Method::Lu, Method::BiCgStab, Method::Gmres] {
            if method == Method::Lu && size > tier_direct_limit {
                continue;
            }
            let (solved, secs) = timed(|| {
                stationary::Solver::new(method)
                    .tolerance(solver_config.tolerance)
                    .restart(solver_config.restart)
                    .precond(solver_config.precond)
                    .solve(&chain)
            });
            let (pi, stats) = solved?;
            let diff = match &reference {
                None => {
                    reference = Some(pi);
                    0.0
                }
                Some(reference) => (&pi - reference).norm_inf(),
            };
            tier_max_diff = tier_max_diff.max(diff);
            tiers_agree &= diff <= 1e-8;
            tier_rows.push((size, tier_label(method), secs, stats.sweeps(), diff));
        }
    }

    // ------------------------------------------------------------------
    // Report + artifact.
    // ------------------------------------------------------------------
    let widths = [26usize, 14, 14];
    println!("Solve-phase benchmark (Q = {capacity}, {n} states, {rounds} sweeps)");
    row(
        &["kernel".into(), "secs/sweep".into(), "speedup".into()],
        &widths,
    );
    rule(&widths);
    for (name, secs) in [
        ("improve: dense scan", dense_secs),
        ("improve: nested lists", reference_secs),
        ("improve: CSR kernel", csr_secs),
    ] {
        row(
            &[
                name.into(),
                format!("{secs:.3e}"),
                format!("{:.1}x", dense_secs / secs),
            ],
            &widths,
        );
    }
    rule(&widths);
    for (name, _, secs) in &backend_results {
        row(
            &[
                format!("eval backend: {name}"),
                format!("{secs:.3e}"),
                format!("{:.1}x", dense_eval_secs / secs),
            ],
            &widths,
        );
    }
    row(
        &[
            format!("eval --method {cli_backend_name}"),
            format!("{cli_eval_secs:.3e}"),
            format!("{:.1}x", dense_eval_secs / cli_eval_secs),
        ],
        &widths,
    );
    rule(&widths);
    for (name, secs) in [
        ("solve pipeline: 1 worker", serial_secs),
        ("solve pipeline: parallel", parallel_secs),
    ] {
        row(
            &[
                name.into(),
                format!("{secs:.3e}"),
                format!("{:.1}x", serial_secs / secs),
            ],
            &widths,
        );
    }

    let tier_widths = [10usize, 16, 12, 8, 12];
    println!("\nStationary solver tiers (birth–death chains, diff vs sparse LU)");
    row(
        &[
            "states".into(),
            "method".into(),
            "secs".into(),
            "sweeps".into(),
            "max |diff|".into(),
        ],
        &tier_widths,
    );
    rule(&tier_widths);
    for (size, name, secs, sweeps, diff) in &tier_rows {
        row(
            &[
                format!("{size}"),
                name.clone(),
                format!("{secs:.3e}"),
                format!("{sweeps}"),
                format!("{diff:.2e}"),
            ],
            &tier_widths,
        );
    }
    println!(
        "\nchecks: improvement kernels agree = {improvement_agrees}, fixpoint = \
         {improvement_fixpoint},\n        eval backends agree = {backends_agree} \
         (max gain diff {max_gain_diff:.2e}), pipeline identical = {pipeline_identical},\n        \
         --method {cli_backend_name} agrees = {cli_backend_agrees} \
         (gain diff {cli_gain_diff:.2e}),\n        \
         solver tiers agree = {tiers_agree} (max diff {tier_max_diff:.2e})"
    );

    let mut doc = Json::object();
    doc.set("schema_version", 1u64);
    doc.set("experiment", "bench_solve");
    let mut params = Json::object();
    params.set("capacity", capacity);
    params.set("rounds", rounds);
    params.set("n_states", n);
    params.set("nnz", kernel.nnz());
    params.set("sweep_points", n_sweep);
    params.set("root_seed", root_seed);
    params.set("tier_states", tier_states);
    params.set("tier_direct_limit", tier_direct_limit);
    params.set("method", cli_backend_name);
    params.set("precond", solver_config.precond.name());
    params.set("tol", Json::num(solver_config.tolerance));
    params.set("restart", solver_config.restart);
    doc.set("params", params);
    let mut checks = Json::object();
    checks.set("improvement_policies_agree", improvement_agrees);
    checks.set("improvement_is_fixpoint", improvement_fixpoint);
    checks.set("eval_backends_agree", backends_agree);
    checks.set("eval_backends_max_gain_diff", Json::num(max_gain_diff));
    checks.set("cli_backend_agrees", cli_backend_agrees);
    checks.set("cli_backend_gain_diff", Json::num(cli_gain_diff));
    checks.set("solve_parallel_identical", pipeline_identical);
    checks.set("stationary_tiers_agree", tiers_agree);
    checks.set("stationary_tiers_max_diff", Json::num(tier_max_diff));
    doc.set("checks", checks);
    let mut timers = Json::object();
    timers.set("improve_dense_scan_secs", Json::num(dense_secs));
    timers.set("improve_reference_secs", Json::num(reference_secs));
    timers.set("improve_csr_secs", Json::num(csr_secs));
    timers.set(
        "improve_csr_speedup_vs_dense_scan",
        Json::num(dense_secs / csr_secs),
    );
    for (name, _, secs) in &backend_results {
        timers.set(&format!("eval_{name}_secs"), Json::num(*secs));
    }
    timers.set("eval_cli_backend_secs", Json::num(cli_eval_secs));
    timers.set("pipeline_serial_secs", Json::num(serial_secs));
    timers.set("pipeline_parallel_secs", Json::num(parallel_secs));
    timers.set("solve_workers", solve_workers);
    for (size, name, secs, sweeps, _) in &tier_rows {
        timers.set(&format!("tier_{name}_secs_n{size}"), Json::num(*secs));
        timers.set(&format!("tier_{name}_sweeps_n{size}"), *sweeps);
    }
    for &size in &tier_sizes {
        let fastest = tier_rows
            .iter()
            .filter(|r| r.0 == size)
            .min_by(|a, b| a.2.total_cmp(&b.2))
            .map_or("none", |r| r.1.as_str());
        timers.set(&format!("tier_fastest_n{size}"), fastest);
    }
    doc.set("timers", timers);

    if !(improvement_agrees
        && improvement_fixpoint
        && backends_agree
        && cli_backend_agrees
        && pipeline_identical
        && tiers_agree)
    {
        artifact::write(&out, &doc)?;
        return Err("solve-phase correctness checks failed (see artifact)".into());
    }
    if max_gain_diff > 1e-10 {
        artifact::write(&out, &doc)?;
        return Err(format!("eval backends disagree on gain by {max_gain_diff:.2e}").into());
    }
    artifact::write(&out, &doc)?;
    println!("artifact: {out}");
    Ok(())
}
