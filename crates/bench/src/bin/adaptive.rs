//! Ablation A5: online rate estimation and adaptive re-optimization.
//!
//! Part 1 checks the paper's Section III claim: "the average inter-arrival
//! time of a given Poisson process can be estimated within 5% error after
//! observing 50 events" — measured here over many independent windows.
//!
//! Part 2 runs the adaptive controller (estimate λ, re-solve) against a
//! static policy under a drifting piecewise-Poisson workload.
//!
//! Run with `cargo run --release -p dpm-bench --bin adaptive`.

use dpm_bench::{row, rule};
use dpm_core::{optimize, PmSystem, SpModel, SrModel};
use dpm_sim::controller::{AdaptiveController, TableController};
use dpm_sim::workload::PiecewiseWorkload;
use dpm_sim::{exponential, SimConfig, Simulator};
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // Part 1: estimation accuracy after k events.
    println!("Part 1 — rate-estimation error vs window size (Poisson, lambda = 1/6)");
    let widths = [10usize, 16, 16];
    row(
        &[
            "window".into(),
            "mean |err| (%)".into(),
            "90th pct (%)".into(),
        ],
        &widths,
    );
    rule(&widths);
    let lambda = 1.0 / 6.0;
    let mut rng = ChaCha8Rng::seed_from_u64(12345);
    for window in [10usize, 25, 50, 100, 200] {
        let trials = 2_000;
        let mut errors: Vec<f64> = (0..trials)
            .map(|_| {
                let total: f64 = (0..window).map(|_| exponential(&mut rng, lambda)).sum();
                let estimate = window as f64 / total;
                100.0 * (estimate - lambda).abs() / lambda
            })
            .collect();
        errors.sort_by(|a, b| a.partial_cmp(b).expect("finite"));
        let mean = errors.iter().sum::<f64>() / trials as f64;
        let p90 = errors[(0.9 * trials as f64) as usize];
        row(
            &[
                format!("{window}"),
                format!("{mean:.2}"),
                format!("{p90:.2}"),
            ],
            &widths,
        );
    }
    println!("(the paper's claim: ~5% after 50 events — check the 50-row)\n");

    // Part 2: adaptive vs static under drift.
    println!("Part 2 — adaptive vs static policy under drifting load (w = 1)");
    let sp = SpModel::dac99_server()?;
    let capacity = 5;
    let weight = 1.0;
    let initial_lambda = 1.0 / 8.0;
    let drift = || {
        PiecewiseWorkload::new(vec![
            (60_000.0, 1.0 / 8.0),
            (60_000.0, 1.0 / 3.0),
            (60_000.0, 1.0 / 6.0),
        ])
    };

    let static_system = PmSystem::builder()
        .provider(sp.clone())
        .requestor(SrModel::poisson(initial_lambda)?)
        .capacity(capacity)
        .build()?;
    let static_policy = optimize::optimal_policy(&static_system, weight)?;
    let static_report = Simulator::new(
        sp.clone(),
        capacity,
        drift()?,
        TableController::new(&static_system, static_policy.policy())?.named("static"),
        SimConfig::new(99).max_requests(30_000),
    )
    .run()?;
    let adaptive_report = Simulator::new(
        sp.clone(),
        capacity,
        drift()?,
        AdaptiveController::new(sp, capacity, weight, initial_lambda, 50, 50)?,
        SimConfig::new(99).max_requests(30_000),
    )
    .run()?;

    println!("  {static_report}");
    println!("  {adaptive_report}");
    let cost = |r: &dpm_sim::SimReport| r.average_power() + weight * r.average_queue_length();
    println!(
        "  weighted cost: static {:.3} vs adaptive {:.3}",
        cost(&static_report),
        cost(&adaptive_report)
    );
    Ok(())
}
