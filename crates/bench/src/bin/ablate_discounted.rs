//! Ablation A6: discounted vs limiting-average objectives (the two reward
//! models of the paper's Section II).
//!
//! Sweeps the discount rate α: as α → 0 the discounted-optimal policy must
//! converge to the average-optimal one (Theorem 2.3's limit-point
//! argument); large α is myopic and picks cheaper immediate actions.
//!
//! Run with `cargo run --release -p dpm-bench --bin ablate_discounted`.

use dpm_bench::{paper_system, row, rule};
use dpm_core::{optimize, PmPolicy};
use dpm_mdp::discounted;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let system = paper_system(1.0 / 6.0)?;
    let weight = 1.0;
    let average = optimize::optimal_policy(&system, weight)?;
    let mdp = system.ctmdp(weight)?;

    let widths = [12usize, 16, 16, 16];
    println!("Ablation A6 — discounted vs average objectives (w = {weight})");
    row(
        &[
            "alpha".into(),
            "alpha*v[start]".into(),
            "avg cost of pol".into(),
            "same policy?".into(),
        ],
        &widths,
    );
    rule(&widths);

    let start = system.initial_state_index();
    for alpha in [10.0, 1.0, 0.1, 0.01, 1e-3, 1e-5] {
        let solution = discounted::policy_iteration(&mdp, alpha, &discounted::Options::default())?;
        let policy = PmPolicy::from_mdp_policy(&system, solution.policy())?;
        let metrics = system.evaluate(&policy)?;
        let avg_cost = metrics.power() + weight * metrics.queue_length();
        let same = policy == *average.policy();
        row(
            &[
                format!("{alpha}"),
                format!("{:.4}", alpha * solution.values()[start]),
                format!("{avg_cost:.4}"),
                format!("{same}"),
            ],
            &widths,
        );
    }
    let avg_cost = average.metrics().power() + weight * average.metrics().queue_length();
    println!("\naverage-optimal weighted cost: {avg_cost:.4}");
    println!(
        "shape check: alpha*v approaches the average-optimal cost as alpha -> 0, and\n\
         the small-alpha policies attain (essentially) the average-optimal cost."
    );
    Ok(())
}
