//! Scaling study: sparse CSR assembly + matrix-free stationary solve vs
//! dense assembly + LU as the SYS state space grows.
//!
//! The SYS chain has O(1) transitions per state, so the sparse generator
//! holds O(n) entries where the dense one holds n². This binary sweeps the
//! queue capacity for the paper's 3-mode server and a 5-mode DVS-style
//! device, timing both pipelines end to end (assembly + solve) and
//! reporting their agreement where both run. The dense pipeline is skipped
//! at the largest capacity, where materializing and factoring the n × n
//! matrix is the point being avoided.
//!
//! Run with `cargo run --release -p dpm-bench --bin scaling`.

use std::time::Instant;

use dpm_bench::{row, rule};
use dpm_core::{DpmError, PmPolicy, PmSystem, SpModel, SrModel};
use dpm_ctmc::stationary::{self, Method};

/// Largest capacity in the sweep; dense LU is skipped there.
const DENSE_SKIP_CAPACITY: usize = 500;

/// A five-mode device: two active speeds plus three sleep depths, fully
/// connected, in the style of the paper's general model.
fn five_mode_server() -> Result<SpModel, DpmError> {
    let mut b = SpModel::builder();
    b.mode("fast", 1.0, 50.0);
    b.mode("slow", 0.4, 18.0);
    b.mode("idle", 0.0, 5.0);
    b.mode("standby", 0.0, 1.0);
    b.mode("sleep", 0.0, 0.2);
    let times = [
        // from -> to, mean switch time, energy
        (0, 1, 0.05, 0.1),
        (1, 0, 0.05, 0.2),
        (0, 2, 0.1, 0.2),
        (2, 0, 0.2, 1.0),
        (0, 3, 0.2, 0.4),
        (3, 0, 0.6, 4.0),
        (0, 4, 0.3, 0.6),
        (4, 0, 1.1, 11.0),
        (1, 2, 0.1, 0.15),
        (2, 1, 0.18, 0.8),
        (1, 3, 0.2, 0.3),
        (3, 1, 0.55, 3.2),
        (1, 4, 0.3, 0.5),
        (4, 1, 1.0, 9.0),
        (2, 3, 0.15, 0.1),
        (3, 2, 0.2, 0.5),
        (2, 4, 0.25, 0.2),
        (4, 2, 0.9, 7.0),
        (3, 4, 0.2, 0.1),
        (4, 3, 0.7, 5.0),
    ];
    for (from, to, time, energy) in times {
        b.switch_time(from, to, time)?.energy(from, to, energy)?;
    }
    b.build()
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let widths = [8usize, 8, 8, 12, 12, 10, 12];
    println!("Scaling — sparse (CSR + Gauss-Seidel) vs dense (LU) stationary pipeline");
    println!("Policy: greedy; times include generator assembly.\n");

    let providers: [(&str, SpModel); 2] = [
        ("3-mode", SpModel::dac99_server()?),
        ("5-mode", five_mode_server()?),
    ];

    for (name, sp) in providers {
        println!("{name} provider");
        row(
            &[
                "Q".into(),
                "states".into(),
                "nnz".into(),
                "dense (ms)".into(),
                "sparse (ms)".into(),
                "speedup".into(),
                "max |diff|".into(),
            ],
            &widths,
        );
        rule(&widths);

        for capacity in [5usize, 50, 200, 500] {
            let system = PmSystem::builder()
                .provider(sp.clone())
                .requestor(SrModel::poisson(1.0 / 6.0)?)
                .capacity(capacity)
                .build()?;
            let policy = PmPolicy::greedy(&system)?;

            let start = Instant::now();
            let sparse = system.sparse_generator_for(&policy)?;
            let pi_sparse = stationary::solve_sparse(&sparse, Method::Iterative)?;
            let sparse_ms = start.elapsed().as_secs_f64() * 1e3;

            let (dense_text, speedup_text, diff_text) = if capacity >= DENSE_SKIP_CAPACITY {
                ("skipped".into(), "-".into(), "-".into())
            } else {
                let start = Instant::now();
                let dense = system.generator_for(&policy)?;
                let pi_dense = stationary::solve(&dense, Method::Lu)?;
                let dense_ms = start.elapsed().as_secs_f64() * 1e3;
                let diff = (&pi_sparse - &pi_dense).norm_inf();
                (
                    format!("{dense_ms:.2}"),
                    format!("{:.1}x", dense_ms / sparse_ms),
                    format!("{diff:.2e}"),
                )
            };

            row(
                &[
                    format!("{capacity}"),
                    format!("{}", system.n_states()),
                    format!("{}", sparse.nnz()),
                    dense_text,
                    format!("{sparse_ms:.2}"),
                    speedup_text,
                    diff_text,
                ],
                &widths,
            );
        }
        println!();
    }
    Ok(())
}
