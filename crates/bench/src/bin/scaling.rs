//! Scaling study: sparse CSR assembly + Gauss–Seidel stationary solve vs
//! dense assembly + LU as the SYS state space grows into the 10⁴–10⁵
//! range.
//!
//! The SYS chain has O(1) transitions per state, so the sparse generator
//! holds O(n) entries where the dense one holds n². This binary sweeps the
//! queue capacity and provider mode count, timing both pipelines end to
//! end (assembly + solve) and reporting their agreement where both run.
//! The dense pipeline is skipped beyond `--dense-limit`, where
//! materializing and factoring the n × n matrix is the point being
//! avoided.
//!
//! The sparse solver here stays [`Method::Iterative`] on purpose: under a
//! greedy policy the SYS chain is *reducible* (thousands of transient
//! states), where Gauss–Seidel sweeps converge in O(n) per sweep while
//! the ILU(0)-Krylov tier — built for large irreducible generators — is
//! unreliable (BiCGSTAB diverges, GMRES crawls). The SparseLu↔Krylov
//! crossover on irreducible chains is measured in `bench_solve` instead.
//!
//! Runs on the `dpm-harness` plan runner: each (modes, capacity) cell is
//! a plan point, solver sweep counts and residuals land in task
//! telemetry, and the run writes a versioned JSON artifact.
//!
//! ```text
//! cargo run --release -p dpm-bench --bin scaling -- \
//!     [--capacities 5,50,200,500] [--modes 3,5] [--dense-limit 500] \
//!     [--workers N] [--seed S] [--reps R] [--out results/scaling.json]
//! ```

use dpm_bench::{counter_value, row, rule, timer_mean_secs};
use dpm_core::{DpmError, PmPolicy, PmSystem, SpModel, SrModel};
use dpm_ctmc::stationary::{self, Method};
use dpm_harness::{
    artifact,
    cli::{self, Args},
    plan::Plan,
    runner, Json, ParamValue,
};

/// A five-mode device: two active speeds plus three sleep depths, fully
/// connected, in the style of the paper's general model.
fn five_mode_server() -> Result<SpModel, DpmError> {
    let mut b = SpModel::builder();
    b.mode("fast", 1.0, 50.0);
    b.mode("slow", 0.4, 18.0);
    b.mode("idle", 0.0, 5.0);
    b.mode("standby", 0.0, 1.0);
    b.mode("sleep", 0.0, 0.2);
    let times = [
        // from -> to, mean switch time, energy
        (0, 1, 0.05, 0.1),
        (1, 0, 0.05, 0.2),
        (0, 2, 0.1, 0.2),
        (2, 0, 0.2, 1.0),
        (0, 3, 0.2, 0.4),
        (3, 0, 0.6, 4.0),
        (0, 4, 0.3, 0.6),
        (4, 0, 1.1, 11.0),
        (1, 2, 0.1, 0.15),
        (2, 1, 0.18, 0.8),
        (1, 3, 0.2, 0.3),
        (3, 1, 0.55, 3.2),
        (1, 4, 0.3, 0.5),
        (4, 1, 1.0, 9.0),
        (2, 3, 0.15, 0.1),
        (3, 2, 0.2, 0.5),
        (2, 4, 0.25, 0.2),
        (4, 2, 0.9, 7.0),
        (3, 4, 0.2, 0.1),
        (4, 3, 0.7, 5.0),
    ];
    for (from, to, time, energy) in times {
        b.switch_time(from, to, time)?.energy(from, to, energy)?;
    }
    b.build()
}

/// A synthetic device with one active mode and `modes - 1` progressively
/// deeper sleep modes, each reachable from active (and back). Parameters
/// are deterministic functions of the depth so any mode count sweeps the
/// same family.
fn synthetic_server(modes: usize) -> Result<SpModel, DpmError> {
    let mut b = SpModel::builder();
    b.mode("active", 1.0, 50.0);
    for depth in 1..modes {
        let k = depth as f64;
        b.mode(format!("sleep{depth}"), 0.0, 50.0 / (2.0 * k + 1.0));
    }
    // Fully connected: going deeper is fast and cheap, waking is slower
    // and costs energy, both scaling with the depth distance.
    for from in 0..modes {
        for to in 0..modes {
            if from == to {
                continue;
            }
            let gap = from.abs_diff(to) as f64;
            if to > from {
                b.switch_time(from, to, 0.05 * gap)?
                    .energy(from, to, 0.1 * gap)?;
            } else {
                b.switch_time(from, to, 0.2 * gap)?.energy(from, to, gap)?;
            }
        }
    }
    b.build()
}

/// The provider for a requested mode count: the paper's 3-mode server and
/// the DVS-style 5-mode device keep their historical definitions; other
/// counts use the synthetic family.
fn provider_for(modes: usize) -> Result<SpModel, DpmError> {
    match modes {
        3 => SpModel::dac99_server(),
        5 => five_mode_server(),
        _ => synthetic_server(modes),
    }
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let args = Args::from_env(&cli::with_resilience_flags(&[
        "capacities",
        "modes",
        "dense-limit",
        "workers",
        "seed",
        "reps",
        "out",
    ]))?;
    let capacities = args.get_usize_list("capacities", &[5, 50, 200, 500, 2_500, 20_000])?;
    let modes = args.get_usize_list("modes", &[3, 5])?;
    let dense_limit = args.get_usize("dense-limit", 500)?;
    let workers = args.workers()?;
    let root_seed = args.get_u64("seed", 1)?;
    let reps = args.get_u64("reps", 1)?;
    let out = args.get_str("out", "results/scaling.json");

    for &m in &modes {
        if m < 2 {
            return Err("--modes entries must be at least 2".into());
        }
    }

    let plan = Plan::new("scaling", root_seed).replications(reps).grid(&[
        (
            "modes",
            modes.iter().map(|&m| ParamValue::from(m)).collect(),
        ),
        (
            "capacity",
            capacities.iter().map(|&c| ParamValue::from(c)).collect(),
        ),
    ])?;

    let run_config = args.run_config()?;
    let report = runner::run_plan_resilient(&plan, &run_config, |ctx| {
        let task = || -> Result<Json, DpmError> {
            let m = ctx.point.param("modes").unwrap().as_i64().unwrap() as usize;
            let capacity = ctx.point.param("capacity").unwrap().as_i64().unwrap() as usize;
            let system = PmSystem::builder()
                .provider(provider_for(m)?)
                .requestor(SrModel::poisson(1.0 / 6.0)?)
                .capacity(capacity)
                .build()?;
            let policy = PmPolicy::greedy(&system)?;

            let (sparse, pi_sparse, stats) = ctx.telemetry.time("sparse", || {
                let sparse = system.sparse_generator_for(&policy)?;
                let (pi, stats) = stationary::Solver::new(Method::Iterative).solve(&sparse)?;
                Ok::<_, DpmError>((sparse, pi, stats))
            })?;
            ctx.telemetry
                .incr("stationary.sweeps", stats.sweeps() as u64);
            ctx.telemetry.gauge("stationary.residual", stats.residual());

            let mut out = Json::object();
            out.set("states", system.n_states());
            out.set("nnz", sparse.nnz());
            out.set("sweeps", stats.sweeps());
            out.set("residual", Json::num(stats.residual()));
            if capacity < dense_limit {
                let pi_dense = ctx.telemetry.time("dense", || {
                    let dense = system.generator_for(&policy)?;
                    stationary::Solver::new(Method::Lu)
                        .solve(&dense)
                        .map(|(pi, _)| pi)
                        .map_err(DpmError::from)
                })?;
                out.set("max_diff", Json::num((&pi_sparse - &pi_dense).norm_inf()));
            }
            Ok(out)
        };
        task().map_err(|e| e.to_string())
    })?;
    for outcome in &report.outcomes {
        if let runner::TaskOutcome::Failed(f) = outcome {
            eprintln!(
                "warning: task {} ({}) failed after {} attempts: {}",
                f.index,
                plan.points()[f.point_index].label(),
                f.attempts,
                f.error
            );
        }
    }
    let records: Vec<_> = report.records().into_iter().cloned().collect();

    let widths = [8usize, 8, 8, 8, 12, 12, 10, 12];
    println!("Scaling — sparse (CSR + Gauss-Seidel) vs dense (LU) stationary pipeline");
    println!("Policy: greedy; times include generator assembly.\n");
    for (mi, &m) in modes.iter().enumerate() {
        println!("{m}-mode provider");
        row(
            &[
                "Q".into(),
                "states".into(),
                "nnz".into(),
                "sweeps".into(),
                "dense (ms)".into(),
                "sparse (ms)".into(),
                "speedup".into(),
                "max |diff|".into(),
            ],
            &widths,
        );
        rule(&widths);
        for (ci, &capacity) in capacities.iter().enumerate() {
            let point = mi * capacities.len() + ci;
            let record = runner::records_for_point(&records, point)[0];
            let sparse_ms = timer_mean_secs(record, "sparse").unwrap_or(0.0) * 1e3;
            let (dense_text, speedup_text, diff_text) = match timer_mean_secs(record, "dense") {
                None => ("skipped".into(), "-".into(), "-".into()),
                Some(dense_secs) => {
                    let dense_ms = dense_secs * 1e3;
                    let diff = record.result.get("max_diff").unwrap().as_f64().unwrap();
                    (
                        format!("{dense_ms:.2}"),
                        format!("{:.1}x", dense_ms / sparse_ms),
                        format!("{diff:.2e}"),
                    )
                }
            };
            row(
                &[
                    format!("{capacity}"),
                    format!("{}", record.result.get("states").unwrap().as_f64().unwrap()),
                    format!("{}", record.result.get("nnz").unwrap().as_f64().unwrap()),
                    format!(
                        "{}",
                        counter_value(record, "stationary.sweeps").unwrap_or(0)
                    ),
                    dense_text,
                    format!("{sparse_ms:.2}"),
                    speedup_text,
                    diff_text,
                ],
                &widths,
            );
        }
        println!();
    }

    let doc = artifact::build_run(&plan, workers, &report);
    artifact::write(&out, &doc)?;
    println!("artifact: {out}");
    Ok(())
}
