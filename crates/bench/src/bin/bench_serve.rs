//! Canonical serving-throughput benchmark: the `dpm-serve` runtime into
//! `BENCH_serve.json`, sibling to `BENCH_solve.json`.
//!
//! Three measurement groups, each with a correctness check riding along:
//!
//! 1. **Sharded serving throughput**: an optimal policy for the paper's
//!    server is compiled and a fleet of `--systems` independent systems
//!    is served at every shard count in `--shards` (default `1,2,8`),
//!    recording events/sec and policy-lookups/sec. Every shard count
//!    must produce a **bit-identical** outcome (equal fleet
//!    fingerprints, equal canonical artifacts at tolerance 0) — the
//!    speedups are *recorded*, not asserted, since the CI container may
//!    be single-core.
//! 2. **Compiled-vs-table lookup microbench**: every state of a
//!    large-capacity system (`--lookup-capacity`, default 200) is looked
//!    up through the compiled tables and through the source
//!    `PmPolicy::command` path; the compiled path must answer
//!    identically on every state *and* measurably faster.
//! 3. **Artifact**: deterministic fields (`params`, `checks`, `serve`)
//!    are canonical; wall-clock rates live under the `timers` key, which
//!    the artifact diff strips. `--outcome-out` additionally writes the
//!    serve outcome alone (atomically: `artifact::write` stages a temp
//!    file and renames), which `scripts/ci.sh` diffs across shard counts
//!    at tolerance 0 on multi-core hosts.
//!
//! Passing any resilience flag (`--checkpoint`, `--resume`,
//! `--inject-panic`, `--inject-error`, `--max-attempts`) switches the
//! binary into **supervised chaos mode**: one supervised serve at the
//! first `--shards` count, with faults given as `SYS@EVENTS[:ATTEMPTS]`
//! (comma-separated; `max` = every attempt) and progress journaled for
//! kill-and-resume. The mode self-gates: every served system that never
//! left its original seed stream must report **field-for-field** what a
//! fault-free fleet reports, and the binary exits nonzero otherwise. The
//! sweep and microbench are skipped in this mode.
//!
//! ```text
//! cargo run --release -p dpm-bench --bin bench_serve -- \
//!     [--systems N] [--requests R] [--shards LIST] [--rounds K] \
//!     [--lookup-capacity Q] [--weight W] [--seed S] \
//!     [--out results/BENCH_serve.json] [--outcome-out PATH] \
//!     [--checkpoint J] [--resume J] [--max-attempts A] \
//!     [--inject-panic SYS@EVENTS[:ATTEMPTS],...] \
//!     [--inject-error SYS@EVENTS[:ATTEMPTS],...]
//! ```

use std::hint::black_box;

use dpm_bench::{paper_system, row, rule, time_sweeps, timed};
use dpm_core::{optimize, PmPolicy, PmSystem, SpModel, SrModel};
use dpm_harness::{
    artifact,
    cli::{self, Args},
    Json,
};
use dpm_serve::{serve, CompiledPolicy, RetryPolicy, ServeConfig, ServeFaultPlan, ServeOutcome};

/// One serving measurement: shard count, outcome, wall seconds.
struct ServeRow {
    shards: usize,
    outcome: ServeOutcome,
    secs: f64,
}

impl ServeRow {
    fn events_per_sec(&self) -> f64 {
        self.outcome.merged().events() as f64 / self.secs.max(f64::MIN_POSITIVE)
    }

    fn lookups_per_sec(&self) -> f64 {
        self.outcome.merged().consultations() as f64 / self.secs.max(f64::MIN_POSITIVE)
    }
}

/// One parsed fault site: `(system, events, attempts)`.
type FaultSite = (usize, u64, u32);

/// Parses a serve fault spec: comma-separated `SYS@EVENTS` or
/// `SYS@EVENTS:ATTEMPTS` entries (`max` arms every attempt).
fn parse_serve_faults(
    spec: Option<&str>,
    flag: &str,
) -> Result<Vec<FaultSite>, Box<dyn std::error::Error>> {
    let Some(spec) = spec else {
        return Ok(Vec::new());
    };
    let mut out = Vec::new();
    for entry in spec.split(',') {
        let entry = entry.trim();
        let bad = || format!("--{flag} expects SYS@EVENTS[:ATTEMPTS], got `{entry}`").into();
        let Some((system, rest)) = entry.split_once('@') else {
            return Err(bad());
        };
        let (events, attempts) = match rest.split_once(':') {
            Some((events, attempts)) => (events, attempts),
            None => (rest, "1"),
        };
        let system: usize = system.parse().map_err(|_| bad())?;
        let events: u64 = events.parse().map_err(|_| bad())?;
        let attempts: u32 = if attempts == "max" {
            u32::MAX
        } else {
            attempts.parse().map_err(|_| bad())?
        };
        out.push((system, events, attempts));
    }
    Ok(out)
}

/// Supervised chaos mode: one supervised serve (faults, retry budgets,
/// journal), self-gated against a fault-free fleet.
#[allow(clippy::too_many_arguments)]
fn run_supervised(
    system: &PmSystem,
    compiled: &CompiledPolicy,
    args: &Args,
    root_seed: u64,
    systems: usize,
    requests: u64,
    shards: usize,
    outcome_out: &str,
) -> Result<(), Box<dyn std::error::Error>> {
    let mut faults = ServeFaultPlan::new();
    for (sys, events, attempts) in parse_serve_faults(args.get("inject-panic"), "inject-panic")? {
        faults = faults.panic_at(sys, events, attempts);
    }
    for (sys, events, attempts) in parse_serve_faults(args.get("inject-error"), "inject-error")? {
        faults = faults.error_at(sys, events, attempts);
    }
    let mut retry = RetryPolicy::new();
    let max_attempts = args.get_u64("max-attempts", 0)?;
    if max_attempts > 0 {
        let attempts = u32::try_from(max_attempts).unwrap_or(u32::MAX);
        retry = retry.panic_attempts(attempts).engine_attempts(attempts);
    }
    let mut config = ServeConfig::new(root_seed)
        .systems(systems)
        .requests_per_system(requests)
        .shards(shards)
        .faults(faults)
        .retry(retry);
    if let Some(path) = args.get("checkpoint") {
        config = config.checkpoint(path);
    }
    if let Some(path) = args.get("resume") {
        config = config.resume(path);
    }

    let (outcome, secs) = timed(|| serve(system, compiled, &config));
    let outcome = outcome?;

    // Self-gate: panic recoveries replay their original seed, so every
    // served system still on seed stream 0 must report exactly what a
    // never-faulted fleet reports for it. (Engine-class retries reseed
    // and quarantined systems have no report; both are out of scope.)
    let reference = serve(
        system,
        compiled,
        &ServeConfig::new(root_seed)
            .systems(systems)
            .requests_per_system(requests)
            .shards(shards),
    )?;
    let mut gated = 0usize;
    let mut survivors_match = true;
    for (record, clean) in outcome.records().iter().zip(reference.records()) {
        if record.is_served() && record.seed_attempt() == 0 {
            gated += 1;
            survivors_match &= record.report() == clean.report();
        }
    }
    let retried = outcome
        .records()
        .iter()
        .filter(|r| r.attempts() > 1)
        .count();
    println!(
        "supervised serve ({systems} systems x {requests} requests, {shards} shards): \
         {} served, {} quarantined, {retried} retried in {secs:.3}s",
        outcome.served(),
        outcome.quarantined(),
    );
    println!(
        "checks: surviving original-seed systems identical to fault-free fleet = \
         {survivors_match} ({gated} gated)"
    );
    if !outcome_out.is_empty() {
        artifact::write(outcome_out, &outcome.to_json())?;
        println!("outcome artifact: {outcome_out}");
    }
    if !survivors_match {
        return Err("supervised serve diverged from the fault-free fleet".into());
    }
    Ok(())
}

#[allow(clippy::too_many_lines)]
fn main() -> Result<(), Box<dyn std::error::Error>> {
    let args = Args::from_env(&cli::with_resilience_flags(&[
        "systems",
        "requests",
        "shards",
        "rounds",
        "lookup-capacity",
        "weight",
        "seed",
        "out",
        "outcome-out",
    ]))?;
    let systems = args.get_usize("systems", 256)?.max(1);
    let requests = args.get_u64("requests", 2_000)?.max(1);
    let shard_counts = args.get_usize_list("shards", &[1, 2, 8])?;
    let rounds = args.get_usize("rounds", 200)?.max(1);
    let lookup_capacity = args.get_usize("lookup-capacity", 200)?.max(2);
    let weight = args.get_f64("weight", 1.0)?;
    let root_seed = args.get_u64("seed", 4200)?;
    let out = args.get_str("out", "results/BENCH_serve.json");
    let outcome_out = args.get_str("outcome-out", "");

    // ------------------------------------------------------------------
    // 1. Compile the optimal policy for the paper's server.
    // ------------------------------------------------------------------
    let system = paper_system(1.0 / 6.0)?;
    let solution = optimize::optimal_policy(&system, weight)?;
    let policy = solution.policy();
    let compiled = CompiledPolicy::compile(&system, policy)?;
    let mut serve_matches_table = true;
    for i in 0..system.n_states() {
        serve_matches_table &= compiled.action(system.state(i)) == Some(policy.destination(i));
    }

    // Any resilience flag switches to supervised chaos mode: one
    // supervised fleet, self-gated, no sweep or microbench.
    let supervised = [
        "checkpoint",
        "resume",
        "inject-panic",
        "inject-error",
        "max-attempts",
    ]
    .iter()
    .any(|flag| args.get(flag).is_some());
    if supervised {
        if !serve_matches_table {
            return Err("compiled policy disagrees with its source table".into());
        }
        let shards = shard_counts.first().copied().unwrap_or(1).max(1);
        return run_supervised(
            &system,
            &compiled,
            &args,
            root_seed,
            systems,
            requests,
            shards,
            &outcome_out,
        );
    }

    // ------------------------------------------------------------------
    // 2. Sharded serving throughput at each shard count.
    // ------------------------------------------------------------------
    let mut serve_rows: Vec<ServeRow> = Vec::with_capacity(shard_counts.len());
    for &shards in &shard_counts {
        let config = ServeConfig::new(root_seed)
            .systems(systems)
            .requests_per_system(requests)
            .shards(shards.max(1));
        let (outcome, secs) = timed(|| serve(&system, &compiled, &config));
        serve_rows.push(ServeRow {
            shards: shards.max(1),
            outcome: outcome?,
            secs,
        });
    }
    let Some(first) = serve_rows.first() else {
        return Err("no shard counts measured".into());
    };
    // Speedups are quoted against the 1-shard row when one was measured
    // (so `--shards 4,1` still records a real multi-worker speedup), and
    // against the first row otherwise.
    let baseline = serve_rows.iter().find(|r| r.shards == 1).unwrap_or(first);
    let baseline_secs = baseline.secs;
    let mut shards_bit_identical = true;
    for row_ in &serve_rows {
        shards_bit_identical &= row_.outcome.fingerprint() == first.outcome.fingerprint()
            && artifact::diff(&row_.outcome.to_json(), &first.outcome.to_json(), 0.0).is_empty();
    }

    // ------------------------------------------------------------------
    // 3. Compiled-vs-table lookup microbench on a big state space.
    // ------------------------------------------------------------------
    let big = PmSystem::builder()
        .provider(SpModel::dac99_server()?)
        .requestor(SrModel::poisson(1.0 / 6.0)?)
        .capacity(lookup_capacity)
        .build()?;
    let big_policy = PmPolicy::greedy(&big)?;
    let big_compiled = CompiledPolicy::compile(&big, &big_policy)?;
    let n_lookup_states = big.n_states();
    let mut lookup_agrees = true;
    for i in 0..n_lookup_states {
        lookup_agrees &=
            big_compiled.action(big.state(i)) == big_policy.command(&big, big.state(i)).ok();
    }
    let (table_sum, table_secs) = time_sweeps(rounds, || {
        let mut acc = 0usize;
        for i in 0..n_lookup_states {
            acc += big_policy
                .command(&big, black_box(big.state(i)))
                .unwrap_or(0);
        }
        black_box(acc)
    });
    let (compiled_sum, compiled_secs) = time_sweeps(rounds, || {
        let mut acc = 0usize;
        for i in 0..n_lookup_states {
            acc += big_compiled.action(black_box(big.state(i))).unwrap_or(0);
        }
        black_box(acc)
    });
    lookup_agrees &= table_sum == compiled_sum;
    let lookup_speedup = table_secs / compiled_secs.max(f64::MIN_POSITIVE);
    let compiled_faster = compiled_secs < table_secs;
    let per_lookup_ns = |secs: f64| secs * 1e9 / n_lookup_states.max(1) as f64;

    // ------------------------------------------------------------------
    // Report + artifact.
    // ------------------------------------------------------------------
    let widths = [8usize, 12, 16, 16, 10];
    println!(
        "Serving throughput ({systems} systems x {requests} requests, optimal policy w={weight})"
    );
    row(
        &[
            "shards".into(),
            "secs".into(),
            "events/sec".into(),
            "lookups/sec".into(),
            "speedup".into(),
        ],
        &widths,
    );
    rule(&widths);
    for r in &serve_rows {
        row(
            &[
                format!("{}", r.shards),
                format!("{:.3}", r.secs),
                format!("{:.3e}", r.events_per_sec()),
                format!("{:.3e}", r.lookups_per_sec()),
                format!("{:.2}x", baseline_secs / r.secs.max(f64::MIN_POSITIVE)),
            ],
            &widths,
        );
    }
    println!(
        "\nLookup microbench ({n_lookup_states} states, capacity {lookup_capacity}, {rounds} \
         rounds): table {:.1} ns, compiled {:.1} ns, {lookup_speedup:.1}x",
        per_lookup_ns(table_secs),
        per_lookup_ns(compiled_secs),
    );
    println!(
        "checks: compiled matches table = {serve_matches_table}, shards bit-identical = \
         {shards_bit_identical}, lookup agrees = {lookup_agrees}, compiled faster = \
         {compiled_faster}"
    );

    let mut doc = Json::object();
    doc.set("schema_version", 1u64);
    doc.set("experiment", "bench_serve");
    let mut params = Json::object();
    params.set("systems", systems);
    params.set("requests_per_system", requests);
    params.set(
        "shard_counts",
        Json::Array(shard_counts.iter().map(|&s| Json::Int(s as i128)).collect()),
    );
    params.set("rounds", rounds);
    params.set("lookup_capacity", lookup_capacity);
    params.set("lookup_states", n_lookup_states);
    params.set("weight", Json::num(weight));
    params.set("root_seed", root_seed);
    doc.set("params", params);
    // The deterministic serve outcome (identical at every shard count).
    doc.set("serve", first.outcome.to_json());
    let mut checks = Json::object();
    checks.set("compiled_matches_table", serve_matches_table);
    checks.set("shard_counts_bit_identical", shards_bit_identical);
    checks.set("lookup_paths_agree", lookup_agrees);
    checks.set("compiled_lookup_faster", compiled_faster);
    doc.set("checks", checks);
    let mut timers = Json::object();
    for r in &serve_rows {
        timers.set(
            &format!("serve_{}_shards_secs", r.shards),
            Json::num(r.secs),
        );
        timers.set(
            &format!("serve_{}_shards_events_per_sec", r.shards),
            Json::num(r.events_per_sec()),
        );
        timers.set(
            &format!("serve_{}_shards_lookups_per_sec", r.shards),
            Json::num(r.lookups_per_sec()),
        );
        timers.set(
            &format!("serve_{}_shards_speedup_vs_1", r.shards),
            Json::num(baseline_secs / r.secs.max(f64::MIN_POSITIVE)),
        );
    }
    timers.set("lookup_table_ns", Json::num(per_lookup_ns(table_secs)));
    timers.set(
        "lookup_compiled_ns",
        Json::num(per_lookup_ns(compiled_secs)),
    );
    timers.set("lookup_compiled_speedup", Json::num(lookup_speedup));
    doc.set("timers", timers);

    if !outcome_out.is_empty() {
        artifact::write(&outcome_out, &first.outcome.to_json())?;
    }
    artifact::write(&out, &doc)?;
    if !(serve_matches_table && shards_bit_identical && lookup_agrees && compiled_faster) {
        return Err("serving correctness/performance checks failed (see artifact)".into());
    }
    println!("artifact: {out}");
    Ok(())
}
