//! Model validation (Section V, first experiment): "we also calculated the
//! functional value of the queue length and energy cost (by using the
//! state probability and the state cost) and found that the functional
//! value and the simulated value are almost the same."
//!
//! For a spread of policies this prints functional (analytic) vs simulated
//! power and queue length, with relative deviations.
//!
//! Run with `cargo run --release -p dpm-bench --bin validate_model`.

use dpm_bench::{paper_system, row, rule, simulate_policy, PAPER_REQUESTS};
use dpm_core::{optimize, PmPolicy};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let system = paper_system(1.0 / 6.0)?;
    let widths = [16usize, 12, 12, 10, 12, 12, 10];
    println!("Model validation — functional vs simulated values (lambda = 1/6)");
    row(
        &[
            "policy".into(),
            "pow fn(W)".into(),
            "pow sim(W)".into(),
            "dev (%)".into(),
            "queue fn".into(),
            "queue sim".into(),
            "dev (%)".into(),
        ],
        &widths,
    );
    rule(&widths);

    let mut policies: Vec<(String, PmPolicy)> = vec![
        ("always-on".into(), PmPolicy::always_on(&system, 0)?),
        ("greedy".into(), PmPolicy::greedy(&system)?),
    ];
    for n in [2, 4] {
        policies.push((format!("n-policy({n})"), PmPolicy::n_policy(&system, n, 2)?));
    }
    for weight in [0.5, 1.0, 5.0] {
        let solution = optimize::optimal_policy(&system, weight)?;
        policies.push((format!("optimal(w={weight})"), solution.policy().clone()));
    }

    let mut worst: f64 = 0.0;
    for (seed, (name, policy)) in policies.iter().enumerate() {
        let functional = system.evaluate(policy)?;
        let report = simulate_policy(&system, policy, name, 800 + seed as u64, PAPER_REQUESTS)?;
        let pow_dev = 100.0 * (report.average_power() - functional.power()) / functional.power();
        let queue_dev = 100.0 * (report.average_queue_length() - functional.queue_length())
            / functional.queue_length().max(1e-9);
        worst = worst.max(pow_dev.abs()).max(queue_dev.abs());
        row(
            &[
                name.clone(),
                format!("{:.4}", functional.power()),
                format!("{:.4}", report.average_power()),
                format!("{pow_dev:+.2}"),
                format!("{:.4}", functional.queue_length()),
                format!("{:.4}", report.average_queue_length()),
                format!("{queue_dev:+.2}"),
            ],
            &widths,
        );
    }
    println!("\nworst absolute deviation: {worst:.2}% (paper: \"almost the same\")");
    Ok(())
}
