//! Ablation A2: what the transfer states buy (the paper's criticism of the
//! DAC'98 formulation, which lumps busy/idle and assumes queue/provider
//! independence).
//!
//! For each weight, a policy optimized on the *lumped* model (no transfer
//! states, unconstrained commands) is mapped onto the accurate model and
//! evaluated there, next to the policy optimized on the accurate model
//! directly, and both are confirmed by simulation.
//!
//! Run with `cargo run --release -p dpm-bench --bin ablate_transfer_states`.

use dpm_bench::{paper_system, row, rule, simulate_policy, PAPER_REQUESTS};
use dpm_core::{lumped, optimize};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let system = paper_system(1.0 / 6.0)?;
    let lumped_model = lumped::LumpedSystem::from_system(&system);
    let widths = [8usize, 10, 14, 14, 14, 12];
    println!("Ablation A2 — accurate (transfer-state) vs lumped optimization");
    row(
        &[
            "weight".into(),
            "model".into(),
            "power (W)".into(),
            "queue".into(),
            "weighted".into(),
            "sim power".into(),
        ],
        &widths,
    );
    rule(&widths);

    let mut total_regret = 0.0;
    for (i, &weight) in [0.5, 1.0, 2.0, 5.0].iter().enumerate() {
        let accurate = optimize::optimal_policy(&system, weight)?;
        let accurate_cost = accurate.metrics().power() + weight * accurate.metrics().queue_length();
        let accurate_sim = simulate_policy(
            &system,
            accurate.policy(),
            "accurate",
            900 + 2 * i as u64,
            PAPER_REQUESTS,
        )?;

        let mapped = lumped::to_full_policy(&system, &lumped_model.optimal_destinations(weight)?)?;
        let mapped_metrics = system.evaluate(&mapped)?;
        let mapped_cost = mapped_metrics.power() + weight * mapped_metrics.queue_length();
        let mapped_sim = simulate_policy(
            &system,
            &mapped,
            "lumped",
            901 + 2 * i as u64,
            PAPER_REQUESTS,
        )?;
        total_regret += mapped_cost - accurate_cost;

        row(
            &[
                format!("{weight}"),
                "accurate".into(),
                format!("{:.4}", accurate.metrics().power()),
                format!("{:.4}", accurate.metrics().queue_length()),
                format!("{accurate_cost:.4}"),
                format!("{:.4}", accurate_sim.average_power()),
            ],
            &widths,
        );
        row(
            &[
                String::new(),
                "lumped".into(),
                format!("{:.4}", mapped_metrics.power()),
                format!("{:.4}", mapped_metrics.queue_length()),
                format!("{mapped_cost:.4}"),
                format!("{:.4}", mapped_sim.average_power()),
            ],
            &widths,
        );
    }
    println!(
        "\ncumulative weighted-cost regret of the lumped formulation: {total_regret:.4}\n\
         (>= 0 by construction; positive values quantify the paper's modeling advance)"
    );
    Ok(())
}
