//! Figure 4: power/performance comparison of the CTMDP-optimal policies
//! (weight sweep) against the N-policies, N = 1..5 — simulated values, as
//! in the paper, with the functional (analytic) values alongside.
//!
//! Run with `cargo run --release -p dpm-bench --bin fig4`.

use dpm_bench::{paper_system, row, rule, simulate_policy, PAPER_REQUESTS};
use dpm_core::{optimize, PmPolicy};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let system = paper_system(1.0 / 6.0)?;
    let widths = [10usize, 12, 12, 12, 12, 12];
    println!("Figure 4 — optimal policies vs N-policies (lambda = 1/6, Q = 5)");
    row(
        &[
            "policy".into(),
            "weight/N".into(),
            "power(fn)".into(),
            "queue(fn)".into(),
            "power(sim)".into(),
            "queue(sim)".into(),
        ],
        &widths,
    );
    rule(&widths);

    // Weight sweep (geometric), deduplicating repeated frontier points.
    let mut weight = 0.05;
    let mut frontier: Vec<(f64, f64)> = Vec::new();
    let mut seed = 400;
    while weight < 300.0 {
        let solution = optimize::optimal_policy(&system, weight)?;
        let point = (
            solution.metrics().power(),
            solution.metrics().queue_length(),
        );
        let duplicate = frontier
            .iter()
            .any(|&(p, q)| (p - point.0).abs() < 1e-9 && (q - point.1).abs() < 1e-9);
        if !duplicate {
            frontier.push(point);
            seed += 1;
            let report =
                simulate_policy(&system, solution.policy(), "optimal", seed, PAPER_REQUESTS)?;
            row(
                &[
                    "optimal".into(),
                    format!("{weight:.3}"),
                    format!("{:.4}", point.0),
                    format!("{:.4}", point.1),
                    format!("{:.4}", report.average_power()),
                    format!("{:.4}", report.average_queue_length()),
                ],
                &widths,
            );
        }
        weight *= 1.25;
    }
    rule(&widths);

    for n in 1..=5 {
        let policy = PmPolicy::n_policy(&system, n, 2)?;
        let metrics = system.evaluate(&policy)?;
        let report = simulate_policy(&system, &policy, "n-policy", 500 + n as u64, PAPER_REQUESTS)?;
        row(
            &[
                "n-policy".into(),
                format!("{n}"),
                format!("{:.4}", metrics.power()),
                format!("{:.4}", metrics.queue_length()),
                format!("{:.4}", report.average_power()),
                format!("{:.4}", report.average_queue_length()),
            ],
            &widths,
        );
    }

    println!(
        "\nshape check: at every weight the optimal frontier's weighted cost is <= every\n\
         N-policy's (the N-policy points sit on or above the optimal trade-off curve)."
    );
    Ok(())
}
