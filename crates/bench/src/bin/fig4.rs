//! Figure 4: power/performance comparison of the CTMDP-optimal policies
//! (weight sweep) against the N-policies, N = 1..5 — simulated values, as
//! in the paper, with the functional (analytic) values alongside.
//!
//! Runs on the `dpm-harness` plan runner: the weight sweep runs as a
//! [`dpm_harness::solve::SolvePlan`] on the work-stealing pool — one
//! policy-iteration task per weight, bit-identical to the old serial loop
//! at any `--solve-workers` count because records come back in plan order
//! and the order-dependent frontier dedup stays serial. Every
//! (policy, replication) simulation is then an independent plan task. A
//! versioned JSON artifact lands in `--out`.
//!
//! ```text
//! cargo run --release -p dpm-bench --bin fig4 -- \
//!     [--workers N] [--solve-workers N] [--seed S] [--requests R] \
//!     [--reps K] [--out results/fig4.json]
//! ```

use dpm_bench::{
    paper_system, point_mean, record_sim_telemetry, report_to_json, row, rule, simulate_policy,
    PAPER_REQUESTS,
};
use dpm_core::{optimize, PmPolicy};
use dpm_harness::{
    artifact,
    cli::{self, Args},
    plan::Plan,
    runner, solve, Json, PlanPoint, SolvePlan,
};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let args = Args::from_env(&cli::with_resilience_flags(&[
        "workers",
        "solve-workers",
        "seed",
        "requests",
        "reps",
        "out",
    ]))?;
    let workers = args.workers()?;
    let solve_workers = args.get_usize("solve-workers", workers)?;
    let root_seed = args.get_u64("seed", 400)?;
    let requests = args.get_u64("requests", PAPER_REQUESTS)?;
    let reps = args.get_u64("reps", 1)?;
    let out = args.get_str("out", "results/fig4.json");

    let system = paper_system(1.0 / 6.0)?;

    // Parallel solve phase: the geometric weight ladder becomes a solve
    // plan, one policy-iteration task per weight, run on the same
    // work-stealing pool the simulations use.
    let mut weights = Vec::new();
    let mut weight = 0.05;
    while weight < 300.0 {
        weights.push(weight);
        weight *= 1.25;
    }
    let mut solve_plan = SolvePlan::new("fig4-solve", root_seed);
    for &w in &weights {
        solve_plan = solve_plan.point(PlanPoint::new(format!("w={w:.3}")).with("weight", w));
    }
    let solved = solve::run_solve_plan(&solve_plan, solve_workers, |ctx| {
        let w = ctx.point.param("weight").unwrap().as_f64().unwrap();
        optimize::optimal_policy(&system, w).map_err(|e| e.to_string())
    })?;

    // Serial post-pass in plan order: the frontier dedup is
    // order-dependent, so running it over the ordered records reproduces
    // the serial sweep exactly. Then the N-policies, N = 1..5, evaluated
    // analytically.
    let mut policies: Vec<PmPolicy> = Vec::new();
    let mut plan = Plan::new("fig4", root_seed).replications(reps);
    let mut total_pi_rounds = 0usize;
    let mut worst_residual = 0.0f64;
    let mut solve_task_secs = 0.0f64;
    let mut frontier: Vec<(f64, f64)> = Vec::new();
    for record in &solved {
        let solution = &record.output;
        let weight = weights[record.index];
        solve_task_secs += record.wall_secs;
        total_pi_rounds += solution.iterations();
        worst_residual = worst_residual.max(solution.eval_residual());
        let point = (
            solution.metrics().power(),
            solution.metrics().queue_length(),
        );
        let duplicate = frontier
            .iter()
            .any(|&(p, q)| (p - point.0).abs() < 1e-9 && (q - point.1).abs() < 1e-9);
        if !duplicate {
            frontier.push(point);
            plan = plan.point(
                PlanPoint::new(format!("optimal w={weight:.3}"))
                    .with("kind", "optimal")
                    .with("index", policies.len())
                    .with("weight", weight)
                    .with("power_fn", point.0)
                    .with("queue_fn", point.1),
            );
            policies.push(solution.policy().clone());
        }
    }
    let n_frontier = policies.len();
    for n in 1..=5usize {
        let policy = PmPolicy::n_policy(&system, n, 2)?;
        let metrics = system.evaluate(&policy)?;
        plan = plan.point(
            PlanPoint::new(format!("n-policy N={n}"))
                .with("kind", "n-policy")
                .with("index", policies.len())
                .with("n", n)
                .with("power_fn", metrics.power())
                .with("queue_fn", metrics.queue_length()),
        );
        policies.push(policy);
    }

    // Parallel simulation phase: one task per (policy, replication).
    let run_config = args.run_config()?;
    let report = runner::run_plan_resilient(&plan, &run_config, |ctx| {
        let index = ctx.point.param("index").unwrap().as_i64().unwrap() as usize;
        let kind = ctx.point.param("kind").unwrap().as_text().unwrap();
        let report = simulate_policy(&system, &policies[index], kind, ctx.seed, requests)
            .map_err(|e| e.to_string())?;
        record_sim_telemetry(ctx.telemetry, &report);
        Ok(report_to_json(&report))
    })?;
    for outcome in &report.outcomes {
        if let runner::TaskOutcome::Failed(f) = outcome {
            eprintln!(
                "warning: task {} ({}) failed after {} attempts: {}",
                f.index,
                plan.points()[f.point_index].label(),
                f.attempts,
                f.error
            );
        }
    }
    let records: Vec<_> = report.records().into_iter().cloned().collect();

    let widths = [10usize, 12, 12, 12, 12, 12];
    println!("Figure 4 — optimal policies vs N-policies (lambda = 1/6, Q = 5, reps = {reps})");
    row(
        &[
            "policy".into(),
            "weight/N".into(),
            "power(fn)".into(),
            "queue(fn)".into(),
            "power(sim)".into(),
            "queue(sim)".into(),
        ],
        &widths,
    );
    rule(&widths);
    for (point_index, point) in plan.points().iter().enumerate() {
        if point_index == n_frontier {
            rule(&widths);
        }
        let kind = point.param("kind").unwrap().as_text().unwrap();
        let knob = match kind {
            "optimal" => format!("{:.3}", point.param("weight").unwrap().as_f64().unwrap()),
            _ => format!("{}", point.param("n").unwrap().as_i64().unwrap()),
        };
        row(
            &[
                kind.to_owned(),
                knob,
                format!("{:.4}", point.param("power_fn").unwrap().as_f64().unwrap()),
                format!("{:.4}", point.param("queue_fn").unwrap().as_f64().unwrap()),
                format!("{:.4}", point_mean(&records, point_index, "power")),
                format!("{:.4}", point_mean(&records, point_index, "queue")),
            ],
            &widths,
        );
    }
    println!(
        "\nsolver: {total_pi_rounds} policy-iteration rounds over the sweep, worst\n\
         evaluation residual {worst_residual:.2e}"
    );
    println!(
        "\nshape check: at every weight the optimal frontier's weighted cost is <= every\n\
         N-policy's (the N-policy points sit on or above the optimal trade-off curve)."
    );

    let mut doc = artifact::build_run(&plan, workers, &report);
    let mut solve_section = Json::object();
    solve_section.set("pi_rounds", total_pi_rounds);
    solve_section.set("worst_eval_residual", Json::num(worst_residual));
    solve_section.set("frontier_points", n_frontier);
    // Wall-clock diagnostics live under `timers` so the artifact diff
    // strips them alongside every other volatile subtree.
    let mut timers = Json::object();
    timers.set("solve_task_secs_total", Json::num(solve_task_secs));
    timers.set("solve_workers", solve_workers);
    solve_section.set("timers", timers);
    doc.set("solve", solve_section);
    artifact::write(&out, &doc)?;
    println!("artifact: {out}");
    Ok(())
}
