//! Ablation A7: asynchronous vs synchronous power management.
//!
//! The paper's introduction criticizes the discrete-time formulation
//! because "the power management program needs to send control signals to
//! the components in every time-slice, which results in heavy signal
//! traffic and heavy load on the system resources (therefore more power
//! dissipation)", and touts that "the resulting power management policy is
//! asynchronous".
//!
//! This ablation measures it: the asynchronous CTMDP-optimal policy versus
//! the lumped-model optimum deployed through a synchronous per-time-slice
//! PM at several slice lengths Δ, with the power-manager invocation rate
//! (signal traffic) reported alongside power and delay.
//!
//! Run with `cargo run --release -p dpm-bench --bin ablate_synchronous`.

use dpm_bench::{paper_system, row, rule, simulate_controller, PAPER_REQUESTS};
use dpm_core::{lumped, optimize};
use dpm_sim::controller::{LumpedTableController, PollingController, TableController};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let system = paper_system(1.0 / 6.0)?;
    let weight = 1.0;
    let widths = [26usize, 12, 10, 12, 14];
    println!("Ablation A7 — asynchronous vs synchronous (time-sliced) PM, w = {weight}");
    row(
        &[
            "power manager".into(),
            "power (W)".into(),
            "wait (s)".into(),
            "switches/s".into(),
            "PM calls/s".into(),
        ],
        &widths,
    );
    rule(&widths);

    // Asynchronous CTMDP-optimal.
    let optimal = optimize::optimal_policy(&system, weight)?;
    let async_report = simulate_controller(
        &system,
        TableController::new(&system, optimal.policy())?.named("async optimal"),
        1_000,
        PAPER_REQUESTS,
    )?;
    row(
        &[
            "async CTMDP-optimal".into(),
            format!("{:.4}", async_report.average_power()),
            format!("{:.3}", async_report.average_waiting_time()),
            format!(
                "{:.4}",
                async_report.switches() as f64 / async_report.duration()
            ),
            format!("{:.3}", async_report.consultation_rate()),
        ],
        &widths,
    );

    // Synchronous lumped-model optimum at several slice lengths. The
    // lumped model is optimized the way DAC'98 actually posed it — minimum
    // power under a queue-length constraint (matched to the asynchronous
    // optimum's achieved queue) — because its unconstrained small-weight
    // optimum degenerates to "never serve".
    let lumped_model = lumped::LumpedSystem::from_system(&system);
    let bound = optimal.metrics().queue_length().max(0.2);
    let table = lumped_model.optimal_destinations_constrained(bound)?;
    for (i, delta) in [0.5, 2.0, 10.0].into_iter().enumerate() {
        let controller = PollingController::new(
            LumpedTableController::new(system.provider(), system.capacity(), table.clone())?,
            delta,
        )?;
        let report = simulate_controller(&system, controller, 1_001 + i as u64, PAPER_REQUESTS)?;
        row(
            &[
                format!("sync lumped, slice {delta}s"),
                format!("{:.4}", report.average_power()),
                format!("{:.3}", report.average_waiting_time()),
                format!("{:.4}", report.switches() as f64 / report.duration()),
                format!("{:.3}", report.consultation_rate()),
            ],
            &widths,
        );
    }
    println!(
        "\nshape check: shrinking the slice improves the synchronous policy's\n\
         power/delay but inflates PM invocations toward 1/slice + event rate;\n\
         the asynchronous optimum needs only the state-change rate."
    );
    Ok(())
}
