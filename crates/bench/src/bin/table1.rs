//! Table 1: accuracy of the Little's-law approximation
//! `#waiting ≈ λ · W̄` used to convert the waiting-time performance
//! constraint into a queue-length constraint.
//!
//! For each input rate 1/8 .. 1/3 the optimal policy under the paper's
//! second-experiment constraint (throughput = input rate, i.e. average
//! waiting time ≤ mean inter-arrival time) is simulated; the table reports
//! the simulated average waiting time, the approximated number of waiting
//! requests (input rate × waiting time), the actual simulated number, and
//! the approximation error.
//!
//! Run with `cargo run --release -p dpm-bench --bin table1`.

use dpm_bench::{paper_system, row, rule, simulate_policy, PAPER_REQUESTS};
use dpm_core::optimize;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let widths = [14usize, 16, 16, 16, 14];
    println!("Table 1 — real vs approximated average queue length");
    row(
        &[
            "input rate".into(),
            "avg wait (s)".into(),
            "approx #wait".into(),
            "actual #wait".into(),
            "error (%)".into(),
        ],
        &widths,
    );
    rule(&widths);

    for denominator in [8, 7, 6, 5, 4, 3] {
        let lambda = 1.0 / f64::from(denominator);
        let system = paper_system(lambda)?;
        // Constraint: W̄ <= 1/λ  ⇒  #waiting <= λ_eff/λ ≈ 1.
        let solution = optimize::constrained_policy(&system, 1.0)?;
        let report = simulate_policy(
            &system,
            solution.policy(),
            "optimal",
            600 + denominator as u64,
            PAPER_REQUESTS,
        )?;
        let wait = report.average_waiting_time();
        // The paper's approximation multiplies the *nominal* input rate by
        // the waiting time (exact Little's law would use the effective,
        // loss-corrected rate — the gap is the error being measured).
        let approx = lambda * wait;
        let actual = report.average_queue_length();
        let error = 100.0 * (approx - actual) / actual;
        row(
            &[
                format!("1/{denominator}"),
                format!("{wait:.3}"),
                format!("{approx:.3}"),
                format!("{actual:.3}"),
                format!("{error:+.1}"),
            ],
            &widths,
        );
    }
    println!(
        "\nshape check: the paper reports approximation errors within about 5%;\n\
         the same bound should hold above."
    );
    Ok(())
}
