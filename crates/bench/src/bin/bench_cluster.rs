//! Cluster scaling benchmark: the `dpm-cluster` fleet solver into
//! `BENCH_cluster.json`, sibling to `BENCH_solve.json` and
//! `BENCH_serve.json`.
//!
//! Three measurement groups, each with a correctness gate riding along:
//!
//! 1. **Joint gate (small `K`)**: fleets of the paper's 23-state SYS
//!    chain (greedy policy, λ = 1/6) with a work-migration coupling are
//!    solved two ways at every `K` in `1..=--gate-k` (default 3, joint
//!    space 23³ = 12 167): matrix-free against the implicit
//!    [`KroneckerOp`](dpm_linalg::KroneckerOp) and materialized through the stock stationary
//!    ladder. The two distributions must agree to ≤ 1e-10 entrywise, and
//!    the exchangeability-lumped refinement must match the joint solve —
//!    otherwise the binary exits nonzero.
//! 2. **Fleet scaling (lumped, large `K`)**: a 6-state M/M/1/5 local
//!    chain with the same coupling shape is scaled across `--fleet-k`
//!    (default `2,4,6,8`). Only the occupancy-space chain (`C(n+K−1,
//!    K)` states) is ever materialized; the joint space is reported but
//!    never built. At `K = 8` the joint space holds 6⁸ = 1 679 616 >
//!    10⁶ states while the lumped solve runs on 1 287. Peak matrix
//!    bytes are recorded for both representations (implicit operator
//!    factors vs. what a materialized CSR joint matrix would hold is
//!    reported as the lumped generator's actual CSR bytes vs. the
//!    factor-sized operator bytes).
//! 3. **Two-level control**: the per-server/cluster-level CTMDP
//!    decomposition runs on a 3-level load model (per-server models are
//!    the paper's SYS CTMDP with the load split across active servers),
//!    swept in parallel through the harness plan runner.
//!
//! Deterministic fields (`params`, `gate`, `fleet`, `two_level`,
//! `checks`) are canonical; wall-clock numbers live under the `timers`
//! key, which the artifact diff strips.
//!
//! ```text
//! cargo run --release -p dpm-bench --bin bench_cluster -- \
//!     [--gate-k K] [--fleet-k LIST] [--workers W] [--weight W] \
//!     [--seed S] [--out results/BENCH_cluster.json]
//! ```

use dpm_bench::{paper_system, row, rule, timed};
use dpm_cluster::{
    solve_joint_materialized, solve_joint_matrix_free, solve_lumped, solve_two_level, ClusterError,
    ClusterModel, ClusterSpec, CouplingTerm, JointOptions, CLUSTER_BENCH_FORMAT,
};
use dpm_core::{PmPolicy, PmSystem, SpModel, SrModel};
use dpm_ctmc::SparseGenerator;
use dpm_harness::{artifact, cli::Args, Json};
use dpm_linalg::CsrMatrix;

/// Tolerance of the matrix-free vs. materialized gate.
const GATE_TOL: f64 = 1e-10;

/// Tolerance of the lumped-refinement vs. joint gate (two independent
/// Krylov solves, so round-off compounds slightly past the direct gate).
const REFINE_TOL: f64 = 1e-8;

/// A work-migration coupling on an `n`-state birth-death-shaped chain:
/// the donor sheds one unit of backlog (state `n-1 -> n-2`) while the
/// receiver absorbs one (state `0 -> 1`).
fn migration_coupling(n: usize, rate: f64) -> Result<CouplingTerm, ClusterError> {
    let donor = CsrMatrix::from_triplets(n, n, &[(n - 1, n - 2, 1.0)])?;
    let receiver = CsrMatrix::from_triplets(n, n, &[(0, 1, 1.0)])?;
    CouplingTerm::new(rate, donor, receiver)
}

/// The paper's SYS chain under the greedy policy as a fleet's local
/// generator.
fn paper_local_chain() -> Result<SparseGenerator, Box<dyn std::error::Error>> {
    let system = paper_system(1.0 / 6.0)?;
    let policy = PmPolicy::greedy(&system)?;
    Ok(system.sparse_generator_for(&policy)?)
}

/// A 6-state M/M/1/5 local chain for the large-fleet scaling axis.
fn mm1k_local_chain(lambda: f64, mu: f64) -> Result<SparseGenerator, Box<dyn std::error::Error>> {
    let mut transitions = Vec::new();
    for i in 0..5 {
        transitions.push((i, i + 1, lambda));
        transitions.push((i + 1, i, mu));
    }
    Ok(SparseGenerator::from_transitions(6, &transitions)?)
}

/// One joint-gate measurement.
struct GateRow {
    k: usize,
    joint_states: usize,
    lumped_states: usize,
    matrix_free_bytes: usize,
    materialized_bytes: usize,
    max_abs_diff: f64,
    refine_max_abs_diff: f64,
    iterations: usize,
    free_secs: f64,
    materialized_secs: f64,
}

/// One fleet-scaling measurement.
struct FleetRow {
    k: usize,
    joint_states: u128,
    lumped_states: usize,
    operator_bytes: usize,
    lumped_bytes: usize,
    method: String,
    residual: f64,
    mass_error: f64,
    secs: f64,
}

#[allow(clippy::too_many_lines)]
fn main() -> Result<(), Box<dyn std::error::Error>> {
    let args = Args::from_env(&["gate-k", "fleet-k", "workers", "weight", "seed", "out"])?;
    let gate_k = args.get_usize("gate-k", 3)?.clamp(1, 4);
    let fleet_ks = args.get_usize_list("fleet-k", &[2, 4, 6, 8])?;
    let workers = args.get_usize("workers", 2)?.max(1);
    let weight = args.get_f64("weight", 1.0)?;
    let root_seed = args.get_u64("seed", 4200)?;
    let out = args.get_str("out", "results/BENCH_cluster.json");

    // ------------------------------------------------------------------
    // 1. Joint gate: matrix-free == materialized == lumped-refined at
    //    small K on the paper's SYS chain.
    // ------------------------------------------------------------------
    let paper_chain = paper_local_chain()?;
    let n_paper = paper_chain.n_states();
    let mut gate_rows: Vec<GateRow> = Vec::with_capacity(gate_k);
    for k in 1..=gate_k {
        let mut model = ClusterModel::new(paper_chain.clone(), k)?;
        if k >= 2 {
            model = model.with_coupling(migration_coupling(n_paper, 0.05)?)?;
        }
        let (free, free_secs) = timed(|| solve_joint_matrix_free(&model, &JointOptions::default()));
        let free = free?;
        let (reference, materialized_secs) = timed(|| solve_joint_materialized(&model));
        let reference = reference?;
        let mut max_abs_diff = 0.0f64;
        for i in 0..free.pi().len() {
            max_abs_diff = max_abs_diff.max((free.pi()[i] - reference.pi()[i]).abs());
        }
        let lumped = solve_lumped(&model)?;
        let refined = lumped.refine_joint()?;
        let mut refine_max_abs_diff = 0.0f64;
        for i in 0..refined.len() {
            refine_max_abs_diff = refine_max_abs_diff.max((refined[i] - free.pi()[i]).abs());
        }
        gate_rows.push(GateRow {
            k,
            joint_states: free.pi().len(),
            lumped_states: lumped.index().len(),
            matrix_free_bytes: free.operator_bytes(),
            materialized_bytes: reference.matrix_bytes(),
            max_abs_diff,
            refine_max_abs_diff,
            iterations: free.iterations(),
            free_secs,
            materialized_secs,
        });
    }
    let gate_passes = gate_rows.iter().all(|r| r.max_abs_diff <= GATE_TOL);
    let refine_passes = gate_rows
        .iter()
        .all(|r| r.refine_max_abs_diff <= REFINE_TOL);

    // ------------------------------------------------------------------
    // 2. Fleet scaling: lumped-only solves with the joint space reported
    //    but never materialized.
    // ------------------------------------------------------------------
    let fleet_chain = mm1k_local_chain(2.0, 3.0)?;
    let mut fleet_rows: Vec<FleetRow> = Vec::with_capacity(fleet_ks.len());
    for &k in &fleet_ks {
        let k = k.max(1);
        let model = ClusterModel::new(fleet_chain.clone(), k)?
            .with_coupling(migration_coupling(6, 0.25)?)?;
        // The implicit operator is assembled (factor-sized storage, no
        // joint matvec run) purely to report the matrix-free footprint.
        let operator_bytes = model.joint_operator()?.storage_bytes();
        let (lumped, secs) = timed(|| solve_lumped(&model));
        let lumped = lumped?;
        let mass: f64 = (0..lumped.pi().len()).map(|i| lumped.pi()[i]).sum();
        fleet_rows.push(FleetRow {
            k,
            joint_states: (6u128).pow(u32::try_from(k).unwrap_or(u32::MAX)),
            lumped_states: lumped.index().len(),
            operator_bytes,
            lumped_bytes: lumped.generator_bytes(),
            method: lumped.stats().method().name().to_owned(),
            residual: lumped.stats().residual(),
            mass_error: (mass - 1.0).abs(),
            secs,
        });
    }
    let largest = fleet_rows.iter().max_by_key(|r| r.k);
    let large_fleet_exceeds_million = largest.is_some_and(|r| r.joint_states > 1_000_000);
    let fleet_masses_normalized = fleet_rows.iter().all(|r| r.mass_error < 1e-9);

    // ------------------------------------------------------------------
    // 3. Two-level control: per-server sweep + cluster CTMDP.
    // ------------------------------------------------------------------
    let base_lambda = 1.0 / 6.0;
    let local_model = |level: usize, k: usize| -> Result<dpm_mdp::Ctmdp, ClusterError> {
        let lambda = base_lambda * (level as f64 + 1.0) / k as f64;
        let system = PmSystem::builder()
            .provider(SpModel::dac99_server().map_err(to_cluster_error)?)
            .requestor(SrModel::poisson(lambda).map_err(to_cluster_error)?)
            .capacity(3)
            .build()
            .map_err(to_cluster_error)?;
        system.ctmdp(weight).map_err(to_cluster_error)
    };
    let spec = ClusterSpec {
        k: 4,
        level_up: vec![0.5, 0.3],
        level_down: vec![0.8, 1.0],
        offered: vec![base_lambda, 2.0 * base_lambda, 3.0 * base_lambda],
        wake_rate: 2.0,
        sleep_rate: 2.0,
        sleep_power: 0.1,
        drop_penalty: 50.0,
        root_seed,
    };
    let (two_level, two_level_secs) = timed(|| solve_two_level(&spec, local_model, workers));
    let two_level = two_level?;
    let two_level_mass: f64 = (0..two_level.pi().len()).map(|i| two_level.pi()[i]).sum();
    let two_level_normalized = (two_level_mass - 1.0).abs() < 1e-8;

    // ------------------------------------------------------------------
    // Report + artifact.
    // ------------------------------------------------------------------
    let widths = [4usize, 12, 12, 14, 14, 12, 12];
    println!("Joint gate (paper SYS chain, {n_paper} local states, coupling 0.05)");
    row(
        &[
            "K".into(),
            "joint".into(),
            "lumped".into(),
            "free-bytes".into(),
            "mat-bytes".into(),
            "free-vs-mat".into(),
            "lump-vs-free".into(),
        ],
        &widths,
    );
    rule(&widths);
    for r in &gate_rows {
        row(
            &[
                format!("{}", r.k),
                format!("{}", r.joint_states),
                format!("{}", r.lumped_states),
                format!("{}", r.matrix_free_bytes),
                format!("{}", r.materialized_bytes),
                format!("{:.2e}", r.max_abs_diff),
                format!("{:.2e}", r.refine_max_abs_diff),
            ],
            &widths,
        );
    }
    println!("\nFleet scaling (6-state M/M/1/5 local chain, coupling 0.25, lumped-only)");
    let fw = [4usize, 14, 10, 14, 14, 10, 10];
    row(
        &[
            "K".into(),
            "joint".into(),
            "lumped".into(),
            "op-bytes".into(),
            "lump-bytes".into(),
            "method".into(),
            "secs".into(),
        ],
        &fw,
    );
    rule(&fw);
    for r in &fleet_rows {
        row(
            &[
                format!("{}", r.k),
                format!("{}", r.joint_states),
                format!("{}", r.lumped_states),
                format!("{}", r.operator_bytes),
                format!("{}", r.lumped_bytes),
                r.method.clone(),
                format!("{:.3}", r.secs),
            ],
            &fw,
        );
    }
    println!(
        "\nTwo-level control (K={}, {} levels, {} sweep points): average cost {:.4}, \
         mean active {:.3}",
        spec.k,
        spec.n_levels(),
        two_level.sweep_points(),
        two_level.average_cost(),
        two_level.mean_active(),
    );
    println!(
        "checks: matrix-free == materialized (<= {GATE_TOL:.0e}) = {gate_passes}, \
         lumping refines to joint (<= {REFINE_TOL:.0e}) = {refine_passes}, \
         largest fleet joint space > 1e6 = {large_fleet_exceeds_million}, \
         fleet masses normalized = {fleet_masses_normalized}, \
         two-level mass normalized = {two_level_normalized}"
    );

    let mut doc = Json::object();
    doc.set("schema_version", 1u64);
    doc.set("format", CLUSTER_BENCH_FORMAT);
    doc.set("experiment", "bench_cluster");
    let mut params = Json::object();
    params.set("gate_k", gate_k);
    params.set(
        "fleet_k",
        Json::Array(fleet_ks.iter().map(|&k| Json::Int(k as i128)).collect()),
    );
    params.set("paper_local_states", n_paper);
    params.set("fleet_local_states", 6u64);
    params.set("workers", workers);
    params.set("weight", Json::num(weight));
    params.set("root_seed", root_seed);
    doc.set("params", params);
    let mut gate = Vec::with_capacity(gate_rows.len());
    for r in &gate_rows {
        let mut g = Json::object();
        g.set("k", r.k);
        g.set("joint_states", r.joint_states);
        g.set("lumped_states", r.lumped_states);
        g.set("matrix_free_peak_bytes", r.matrix_free_bytes);
        g.set("materialized_peak_bytes", r.materialized_bytes);
        g.set("max_abs_diff", Json::num(r.max_abs_diff));
        g.set("refine_max_abs_diff", Json::num(r.refine_max_abs_diff));
        g.set("krylov_iterations", r.iterations);
        gate.push(g);
    }
    doc.set("gate", Json::Array(gate));
    let mut fleet = Vec::with_capacity(fleet_rows.len());
    for r in &fleet_rows {
        let mut f = Json::object();
        f.set("k", r.k);
        f.set("joint_states", Json::Int(i128::try_from(r.joint_states)?));
        f.set("lumped_states", r.lumped_states);
        f.set("matrix_free_peak_bytes", r.operator_bytes);
        f.set("lumped_generator_bytes", r.lumped_bytes);
        f.set("method", r.method.clone());
        f.set("residual", Json::num(r.residual));
        f.set("mass_error", Json::num(r.mass_error));
        fleet.push(f);
    }
    doc.set("fleet", Json::Array(fleet));
    let mut two = Json::object();
    two.set("fleet_size", spec.k);
    two.set("levels", spec.n_levels());
    two.set("sweep_points", two_level.sweep_points());
    two.set("average_cost", Json::num(two_level.average_cost()));
    two.set("mean_active", Json::num(two_level.mean_active()));
    two.set(
        "actions",
        Json::Array(
            two_level
                .actions()
                .iter()
                .map(|a| Json::Str(a.clone()))
                .collect(),
        ),
    );
    doc.set("two_level", two);
    let mut checks = Json::object();
    checks.set("matrix_free_matches_materialized", gate_passes);
    checks.set("lumping_refines_to_joint", refine_passes);
    checks.set(
        "large_fleet_exceeds_million_states",
        large_fleet_exceeds_million,
    );
    checks.set("fleet_masses_normalized", fleet_masses_normalized);
    checks.set("two_level_mass_normalized", two_level_normalized);
    doc.set("checks", checks);
    let mut timers = Json::object();
    for r in &gate_rows {
        timers.set(
            &format!("gate_k{}_matrix_free_secs", r.k),
            Json::num(r.free_secs),
        );
        timers.set(
            &format!("gate_k{}_materialized_secs", r.k),
            Json::num(r.materialized_secs),
        );
    }
    for r in &fleet_rows {
        timers.set(&format!("fleet_k{}_lumped_secs", r.k), Json::num(r.secs));
    }
    timers.set("two_level_secs", Json::num(two_level_secs));
    doc.set("timers", timers);

    artifact::write(&out, &doc)?;
    if !(gate_passes
        && refine_passes
        && large_fleet_exceeds_million
        && fleet_masses_normalized
        && two_level_normalized)
    {
        return Err("cluster scaling checks failed (see artifact)".into());
    }
    println!("artifact: {out}");
    Ok(())
}

/// Adapts `DpmError` into the cluster error space for the local-model
/// factory closure.
fn to_cluster_error(e: dpm_core::DpmError) -> ClusterError {
    ClusterError::Solve {
        reason: format!("local model construction failed: {e}"),
    }
}
