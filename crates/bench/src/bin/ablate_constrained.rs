//! Ablation A4: deterministic weight-search vs the exact (randomized)
//! constrained LP on the power/delay frontier.
//!
//! The weighted sweep can only reach deterministic corner policies; with
//! an active performance constraint the true optimum may randomize between
//! two commands in one state. This prints both answers across a range of
//! queue-length bounds, plus a simulation of the randomized policy.
//!
//! Run with `cargo run --release -p dpm-bench --bin ablate_constrained`.

use dpm_bench::{paper_system, row, rule, simulate_controller, PAPER_REQUESTS};
use dpm_core::optimize;
use dpm_sim::controller::RandomizedController;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let system = paper_system(1.0 / 6.0)?;
    let widths = [8usize, 14, 14, 14, 14, 12];
    println!("Ablation A4 — deterministic bisection vs exact constrained LP");
    row(
        &[
            "bound".into(),
            "det power".into(),
            "det queue".into(),
            "LP power".into(),
            "LP queue".into(),
            "LP sim pow".into(),
        ],
        &widths,
    );
    rule(&widths);

    for (i, bound) in [0.6, 0.8, 1.0, 1.5, 2.0, 3.0].into_iter().enumerate() {
        let deterministic = optimize::constrained_policy(&system, bound)?;
        let exact = optimize::constrained_lp(&system, bound)?;
        let report = simulate_controller(
            &system,
            RandomizedController::new(&system, exact.policy())?,
            950 + i as u64,
            PAPER_REQUESTS,
        )?;
        row(
            &[
                format!("{bound}"),
                format!("{:.4}", deterministic.metrics().power()),
                format!("{:.4}", deterministic.metrics().queue_length()),
                format!("{:.4}", exact.power()),
                format!("{:.4}", exact.queue_length()),
                format!("{:.4}", report.average_power()),
            ],
            &widths,
        );
    }
    println!(
        "\nshape check: LP power <= deterministic power at every bound, with the LP\n\
         meeting the bound exactly (it randomizes in at most one state)."
    );
    Ok(())
}
