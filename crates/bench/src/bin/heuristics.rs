//! Grand heuristic shoot-out: every policy family the paper discusses —
//! the CTMDP optimum, N-policies, time-outs, greedy, predictive shutdown
//! (\[16\]/\[17\]-style), always-on, and the randomized constrained-LP policy —
//! simulated head-to-head on the paper's workload.
//!
//! Run with `cargo run --release -p dpm-bench --bin heuristics`.

use dpm_bench::{paper_system, row, rule, simulate_controller, PAPER_REQUESTS};
use dpm_core::{optimize, PmPolicy};
use dpm_sim::controller::{
    AlwaysOnController, GreedyController, NPolicyController, PredictiveController,
    RandomizedController, TableController, TimeoutController,
};
use dpm_sim::SimReport;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let system = paper_system(1.0 / 6.0)?;
    let weight = 1.0;
    let widths = [22usize, 11, 10, 10, 11, 12];
    println!("Heuristic shoot-out (lambda = 1/6, Q = 5, w = {weight})");
    row(
        &[
            "policy".into(),
            "power (W)".into(),
            "queue".into(),
            "wait (s)".into(),
            "switches/s".into(),
            "weighted".into(),
        ],
        &widths,
    );
    rule(&widths);

    let mut reports: Vec<SimReport> = Vec::new();
    let mut seed = 2_000u64;
    let mut run = |r: SimReport| {
        reports.push(r);
    };

    let optimal = optimize::optimal_policy(&system, weight)?;
    seed += 1;
    run(simulate_controller(
        &system,
        TableController::new(&system, optimal.policy())?.named("ctmdp-optimal"),
        seed,
        PAPER_REQUESTS,
    )?);

    let exact = optimize::constrained_lp(&system, optimal.metrics().queue_length())?;
    seed += 1;
    run(simulate_controller(
        &system,
        RandomizedController::new(&system, exact.policy())?,
        seed,
        PAPER_REQUESTS,
    )?);

    for n in [1usize, 2, 3] {
        seed += 1;
        run(simulate_controller(
            &system,
            NPolicyController::new(system.provider(), n, 2)?,
            seed,
            PAPER_REQUESTS,
        )?);
    }

    seed += 1;
    run(simulate_controller(
        &system,
        GreedyController::new(system.provider())?,
        seed,
        PAPER_REQUESTS,
    )?);

    for timeout in [1.0, 3.0, 6.0] {
        seed += 1;
        run(simulate_controller(
            &system,
            TimeoutController::new(system.provider(), timeout, 2)?,
            seed,
            PAPER_REQUESTS,
        )?);
    }

    seed += 1;
    run(simulate_controller(
        &system,
        PredictiveController::new(system.provider(), 2, 0.25)?,
        seed,
        PAPER_REQUESTS,
    )?);

    seed += 1;
    run(simulate_controller(
        &system,
        AlwaysOnController::new(system.provider()),
        seed,
        PAPER_REQUESTS,
    )?);

    // Keep the analytic optimum's weighted cost as the reference line.
    let reference = optimal.metrics().power() + weight * optimal.metrics().queue_length();
    for report in &reports {
        let weighted = report.average_power() + weight * report.average_queue_length();
        row(
            &[
                report.policy().to_owned(),
                format!("{:.4}", report.average_power()),
                format!("{:.4}", report.average_queue_length()),
                format!("{:.3}", report.average_waiting_time()),
                format!("{:.4}", report.switches() as f64 / report.duration()),
                format!("{weighted:.4}"),
            ],
            &widths,
        );
    }
    rule(&widths);
    println!("analytic optimum weighted cost: {reference:.4}");
    println!(
        "\nshape check: no simulated policy beats the CTMDP optimum's weighted cost\n\
         beyond simulation noise. Under a memoryless (Poisson) workload the\n\
         predictive policy cannot beat greedy — as the paper notes, prediction\n\
         helps only when requests are highly correlated [16, 17]."
    );

    // Part 2: a *correlated* workload — bursts of closely spaced requests
    // separated by long quiet gaps — where prediction earns its keep.
    println!("\ncorrelated (bursty) workload: 5-request bursts, 1.6 s spacing, 60 s gaps");
    let burst_gaps: Vec<f64> = {
        let mut gaps = Vec::with_capacity(2_000 * 5);
        for _ in 0..2_000 {
            gaps.push(60.0);
            gaps.extend(std::iter::repeat_n(1.6, 4));
        }
        gaps
    };
    let widths2 = [22usize, 11, 10, 12];
    row(
        &[
            "policy".into(),
            "power (W)".into(),
            "wait (s)".into(),
            "switches/s".into(),
        ],
        &widths2,
    );
    rule(&widths2);
    let bursty = |name: &str, r: dpm_sim::SimReport| {
        row(
            &[
                name.to_owned(),
                format!("{:.4}", r.average_power()),
                format!("{:.3}", r.average_waiting_time()),
                format!("{:.4}", r.switches() as f64 / r.duration()),
            ],
            &widths2,
        );
    };
    use dpm_sim::workload::TraceWorkload;
    use dpm_sim::{SimConfig, Simulator};
    let greedy_bursty = Simulator::new(
        system.provider().clone(),
        system.capacity(),
        TraceWorkload::new(burst_gaps.clone())?,
        GreedyController::new(system.provider())?,
        SimConfig::new(3_001),
    )
    .run()?;
    bursty("greedy", greedy_bursty);
    let predictive_bursty = Simulator::new(
        system.provider().clone(),
        system.capacity(),
        TraceWorkload::new(burst_gaps.clone())?,
        PredictiveController::new(system.provider(), 2, 0.25)?,
        SimConfig::new(3_001),
    )
    .run()?;
    bursty("predictive", predictive_bursty);
    let timeout_bursty = Simulator::new(
        system.provider().clone(),
        system.capacity(),
        TraceWorkload::new(burst_gaps)?,
        TimeoutController::new(system.provider(), 1.0, 2)?,
        SimConfig::new(3_001),
    )
    .run()?;
    bursty("timeout(1s)", timeout_bursty);
    println!(
        "\nshape check: on the correlated trace prediction edges out greedy (it skips\n\
         some unprofitable sleeps inside bursts) — the paper's [16, 17] setting; the\n\
         margin is modest because exponential service times blur the gap structure."
    );

    // Also verify the N-policy table encoding and behavioral controllers
    // agree (same seeds would give identical paths; different seeds give
    // statistical agreement) — a consistency line for the curious.
    let np2_table = PmPolicy::n_policy(&system, 2, 2)?;
    let a = simulate_controller(
        &system,
        TableController::new(&system, &np2_table)?.named("np2-table"),
        9_999,
        PAPER_REQUESTS,
    )?;
    let b = simulate_controller(
        &system,
        NPolicyController::new(system.provider(), 2, 2)?,
        9_999,
        PAPER_REQUESTS,
    )?;
    println!(
        "\nconsistency: N=2 table vs behavioral (same seed): {:.6} vs {:.6} W",
        a.average_power(),
        b.average_power()
    );
    Ok(())
}
