//! Grand heuristic shoot-out: every policy family the paper discusses —
//! the CTMDP optimum, N-policies, time-outs, greedy, predictive shutdown
//! (\[16\]/\[17\]-style), always-on, and the randomized constrained-LP policy —
//! simulated head-to-head on the paper's workload.
//!
//! Runs on the `dpm-harness` plan runner: the analytic solves happen once
//! up front (serial), then every (policy, replication) simulation is an
//! independent plan task, so `--workers N` parallelizes the shoot-out
//! without changing a single output bit (seeds derive from grid position,
//! not schedule). A versioned JSON artifact lands in `--out`.
//!
//! ```text
//! cargo run --release -p dpm-bench --bin heuristics -- \
//!     [--workers N] [--seed S] [--requests R] [--reps K] \
//!     [--out results/heuristics.json]
//! ```

use dpm_bench::{
    paper_system, point_mean, record_sim_telemetry, report_to_json, row, rule, simulate_controller,
    PAPER_REQUESTS,
};
use dpm_core::{optimize, PmPolicy};
use dpm_harness::{
    artifact,
    cli::{self, Args},
    plan::Plan,
    runner, Json, PlanPoint,
};
use dpm_sim::controller::{
    AlwaysOnController, GreedyController, NPolicyController, PredictiveController,
    RandomizedController, TableController, TimeoutController,
};
use dpm_sim::workload::TraceWorkload;
use dpm_sim::{SimConfig, SimReport, Simulator};

/// The correlated workload of part 2: bursts of closely spaced requests
/// separated by long quiet gaps — the regime where prediction earns its
/// keep.
fn burst_gaps() -> Vec<f64> {
    let mut gaps = Vec::with_capacity(2_000 * 5);
    for _ in 0..2_000 {
        gaps.push(60.0);
        gaps.extend(std::iter::repeat_n(1.6, 4));
    }
    gaps
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let args = Args::from_env(&cli::with_resilience_flags(&[
        "workers", "seed", "requests", "reps", "out",
    ]))?;
    let workers = args.workers()?;
    let root_seed = args.get_u64("seed", 2_000)?;
    let requests = args.get_u64("requests", PAPER_REQUESTS)?;
    let reps = args.get_u64("reps", 1)?;
    let out = args.get_str("out", "results/heuristics.json");

    let system = paper_system(1.0 / 6.0)?;
    let weight = 1.0;

    // Serial solve phase: the CTMDP optimum and the constrained-LP
    // randomized policy are shared by every simulation task.
    let optimal = optimize::optimal_policy(&system, weight)?;
    let exact = optimize::constrained_lp(&system, optimal.metrics().queue_length())?;

    // Poisson-workload shoot-out points, then the bursty-trace points.
    let mut plan = Plan::new("heuristics", root_seed).replications(reps);
    for kind in [
        "ctmdp-optimal",
        "lp-randomized",
        "n-policy-1",
        "n-policy-2",
        "n-policy-3",
        "greedy",
        "timeout-1",
        "timeout-3",
        "timeout-6",
        "predictive",
        "always-on",
    ] {
        plan = plan.point(
            PlanPoint::new(kind)
                .with("kind", kind)
                .with("workload", "poisson"),
        );
    }
    for kind in ["greedy", "predictive", "timeout-1"] {
        plan = plan.point(
            PlanPoint::new(format!("{kind} (bursty)"))
                .with("kind", kind)
                .with("workload", "bursty"),
        );
    }
    let n_poisson_points = 11;

    let gaps = burst_gaps();
    let run_config = args.run_config()?;
    let report = runner::run_plan_resilient(&plan, &run_config, |ctx| {
        let kind = ctx.point.param("kind").unwrap().as_text().unwrap();
        let workload = ctx.point.param("workload").unwrap().as_text().unwrap();
        let task = || -> Result<SimReport, Box<dyn std::error::Error>> {
            let sp = system.provider();
            if workload == "bursty" {
                macro_rules! run_trace {
                    ($controller:expr) => {
                        Simulator::new(
                            sp.clone(),
                            system.capacity(),
                            TraceWorkload::new(gaps.clone())?,
                            $controller,
                            SimConfig::new(ctx.seed),
                        )
                        .run()?
                    };
                }
                return Ok(match kind {
                    "greedy" => run_trace!(GreedyController::new(sp)?),
                    "predictive" => run_trace!(PredictiveController::new(sp, 2, 0.25)?),
                    "timeout-1" => run_trace!(TimeoutController::new(sp, 1.0, 2)?),
                    other => return Err(format!("unknown bursty kind `{other}`").into()),
                });
            }
            let report = match kind {
                "ctmdp-optimal" => simulate_controller(
                    &system,
                    TableController::new(&system, optimal.policy())?.named("ctmdp-optimal"),
                    ctx.seed,
                    requests,
                )?,
                "lp-randomized" => simulate_controller(
                    &system,
                    RandomizedController::new(&system, exact.policy())?,
                    ctx.seed,
                    requests,
                )?,
                "n-policy-1" | "n-policy-2" | "n-policy-3" => {
                    let n = kind.rsplit('-').next().unwrap().parse::<usize>().unwrap();
                    simulate_controller(
                        &system,
                        NPolicyController::new(sp, n, 2)?,
                        ctx.seed,
                        requests,
                    )?
                }
                "greedy" => {
                    simulate_controller(&system, GreedyController::new(sp)?, ctx.seed, requests)?
                }
                "timeout-1" | "timeout-3" | "timeout-6" => {
                    let t = kind.rsplit('-').next().unwrap().parse::<f64>().unwrap();
                    simulate_controller(
                        &system,
                        TimeoutController::new(sp, t, 2)?,
                        ctx.seed,
                        requests,
                    )?
                }
                "predictive" => simulate_controller(
                    &system,
                    PredictiveController::new(sp, 2, 0.25)?,
                    ctx.seed,
                    requests,
                )?,
                "always-on" => {
                    simulate_controller(&system, AlwaysOnController::new(sp), ctx.seed, requests)?
                }
                other => return Err(format!("unknown kind `{other}`").into()),
            };
            Ok(report)
        };
        let report = task().map_err(|e| e.to_string())?;
        record_sim_telemetry(ctx.telemetry, &report);
        let mut result = report_to_json(&report);
        let weighted = report.average_power() + weight * report.average_queue_length();
        result.set("weighted", Json::num(weighted));
        result.set("policy", report.policy());
        Ok(result)
    })?;
    for outcome in &report.outcomes {
        if let runner::TaskOutcome::Failed(f) = outcome {
            eprintln!(
                "warning: task {} ({}) failed after {} attempts: {}",
                f.index,
                plan.points()[f.point_index].label(),
                f.attempts,
                f.error
            );
        }
    }
    let records: Vec<_> = report.records().into_iter().cloned().collect();

    // Part 1: the Poisson shoot-out table (means over replications).
    let widths = [22usize, 11, 10, 10, 11, 12];
    println!("Heuristic shoot-out (lambda = 1/6, Q = 5, w = {weight}, reps = {reps})");
    row(
        &[
            "policy".into(),
            "power (W)".into(),
            "queue".into(),
            "wait (s)".into(),
            "switches/s".into(),
            "weighted".into(),
        ],
        &widths,
    );
    rule(&widths);
    for point in 0..n_poisson_points {
        let name = runner::records_for_point(&records, point)
            .first()
            .and_then(|r| r.result.get("policy"))
            .and_then(Json::as_str)
            .unwrap_or("?")
            .to_owned();
        row(
            &[
                name,
                format!("{:.4}", point_mean(&records, point, "power")),
                format!("{:.4}", point_mean(&records, point, "queue")),
                format!("{:.3}", point_mean(&records, point, "wait")),
                format!("{:.4}", point_mean(&records, point, "switches_per_s")),
                format!("{:.4}", point_mean(&records, point, "weighted")),
            ],
            &widths,
        );
    }
    rule(&widths);
    let reference = optimal.metrics().power() + weight * optimal.metrics().queue_length();
    println!("analytic optimum weighted cost: {reference:.4}");
    println!(
        "solver: {} policy-iteration rounds, evaluation residual {:.2e}",
        optimal.iterations(),
        optimal.eval_residual()
    );
    println!(
        "\nshape check: no simulated policy beats the CTMDP optimum's weighted cost\n\
         beyond simulation noise. Under a memoryless (Poisson) workload the\n\
         predictive policy cannot beat greedy — as the paper notes, prediction\n\
         helps only when requests are highly correlated [16, 17]."
    );

    // Part 2: the correlated (bursty) trace.
    println!("\ncorrelated (bursty) workload: 5-request bursts, 1.6 s spacing, 60 s gaps");
    let widths2 = [22usize, 11, 10, 12];
    row(
        &[
            "policy".into(),
            "power (W)".into(),
            "wait (s)".into(),
            "switches/s".into(),
        ],
        &widths2,
    );
    rule(&widths2);
    for point in n_poisson_points..plan.points().len() {
        row(
            &[
                plan.points()[point].label().to_owned(),
                format!("{:.4}", point_mean(&records, point, "power")),
                format!("{:.3}", point_mean(&records, point, "wait")),
                format!("{:.4}", point_mean(&records, point, "switches_per_s")),
            ],
            &widths2,
        );
    }
    println!(
        "\nshape check: on the correlated trace prediction edges out greedy (it skips\n\
         some unprofitable sleeps inside bursts) — the paper's [16, 17] setting; the\n\
         margin is modest because exponential service times blur the gap structure."
    );

    // Part 3: verify the N-policy table encoding and behavioral
    // controllers agree — same seed must give identical sample paths.
    let np2_table = PmPolicy::n_policy(&system, 2, 2)?;
    let a = simulate_controller(
        &system,
        TableController::new(&system, &np2_table)?.named("np2-table"),
        root_seed,
        requests,
    )?;
    let b = simulate_controller(
        &system,
        NPolicyController::new(system.provider(), 2, 2)?,
        root_seed,
        requests,
    )?;
    println!(
        "\nconsistency: N=2 table vs behavioral (same seed): {:.6} vs {:.6} W",
        a.average_power(),
        b.average_power()
    );

    let mut doc = artifact::build_run(&plan, workers, &report);
    let mut solve = Json::object();
    solve.set("iterations", optimal.iterations());
    solve.set("eval_residual", Json::num(optimal.eval_residual()));
    solve.set("weighted_optimum", Json::num(reference));
    doc.set("solve", solve);
    artifact::write(&out, &doc)?;
    println!("artifact: {out}");
    Ok(())
}
