//! Figure 5: power and average waiting time of the CTMDP-optimal policy
//! versus four heuristics — greedy, and three time-out policies (fixed
//! 1 s, the mean inter-arrival time, half the mean inter-arrival time) —
//! across input rates 1/8 .. 1/3.
//!
//! The optimal policy at each rate is solved under the paper's performance
//! constraint (average waiting time ≤ mean inter-arrival time).
//!
//! Run with `cargo run --release -p dpm-bench --bin fig5`.

use dpm_bench::{paper_system, row, rule, simulate_controller, simulate_policy, PAPER_REQUESTS};
use dpm_core::optimize;
use dpm_sim::controller::{GreedyController, TimeoutController};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let widths = [12usize, 22, 12, 12];
    println!("Figure 5 — optimal vs heuristic policies across input rates");
    row(
        &[
            "input rate".into(),
            "policy".into(),
            "power (W)".into(),
            "wait (s)".into(),
        ],
        &widths,
    );
    rule(&widths);

    for denominator in [8, 7, 6, 5, 4, 3] {
        let lambda = 1.0 / f64::from(denominator);
        let mean_gap = f64::from(denominator);
        let system = paper_system(lambda)?;
        let seed_base = 700 + 10 * denominator as u64;

        // CTMDP-optimal under the waiting-time constraint.
        let solution = optimize::constrained_policy(&system, 1.0)?;
        let optimal = simulate_policy(
            &system,
            solution.policy(),
            "optimal",
            seed_base,
            PAPER_REQUESTS,
        )?;

        // Greedy.
        let greedy = simulate_controller(
            &system,
            GreedyController::new(system.provider())?,
            seed_base + 1,
            PAPER_REQUESTS,
        )?;

        // Time-outs: 1 s fixed, mean inter-arrival, half of it.
        let timeouts = [
            ("timeout 1s", 1.0),
            ("timeout 1/lambda", mean_gap),
            ("timeout 0.5/lambda", 0.5 * mean_gap),
        ];
        let mut reports = vec![("optimal (constrained)", optimal), ("greedy", greedy)];
        for (i, (name, t)) in timeouts.iter().enumerate() {
            let report = simulate_controller(
                &system,
                TimeoutController::new(system.provider(), *t, 2)?,
                seed_base + 2 + i as u64,
                PAPER_REQUESTS,
            )?;
            reports.push((name, report));
        }

        for (name, report) in &reports {
            row(
                &[
                    format!("1/{denominator}"),
                    (*name).to_owned(),
                    format!("{:.4}", report.average_power()),
                    format!("{:.4}", report.average_waiting_time()),
                ],
                &widths,
            );
        }
        rule(&widths);
    }
    println!(
        "shape check: the optimal policy gives the lowest power of all policies that\n\
         keep the average waiting time within the mean inter-arrival time."
    );
    Ok(())
}
