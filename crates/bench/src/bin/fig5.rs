//! Figure 5: power and average waiting time of the CTMDP-optimal policy
//! versus four heuristics — greedy, and three time-out policies (fixed
//! 1 s, the mean inter-arrival time, half the mean inter-arrival time) —
//! across input rates 1/8 .. 1/3.
//!
//! The optimal policy at each rate is solved under the paper's performance
//! constraint (average waiting time ≤ mean inter-arrival time).
//!
//! Runs on the `dpm-harness` plan runner: the constrained solves run as a
//! [`dpm_harness::solve::SolvePlan`] on the work-stealing pool — one
//! feasibility-search + bisection task per input rate, bit-identical to
//! serial at any `--solve-workers` count — then every (rate, policy,
//! replication) simulation is an independent plan task. A versioned JSON
//! artifact lands in `--out`.
//!
//! ```text
//! cargo run --release -p dpm-bench --bin fig5 -- \
//!     [--workers N] [--solve-workers N] [--seed S] [--requests R] \
//!     [--reps K] [--out results/fig5.json]
//! ```

use std::collections::BTreeMap;

use dpm_bench::{
    paper_system, point_mean, record_sim_telemetry, report_to_json, row, rule, simulate_controller,
    simulate_policy, PAPER_REQUESTS,
};
use dpm_core::optimize;
use dpm_harness::{
    artifact,
    cli::{self, Args},
    plan::Plan,
    runner, solve, ParamValue, PlanPoint, SolvePlan,
};
use dpm_sim::controller::{GreedyController, TimeoutController};

const DENOMINATORS: [i64; 6] = [8, 7, 6, 5, 4, 3];
const POLICIES: [&str; 5] = [
    "optimal (constrained)",
    "greedy",
    "timeout 1s",
    "timeout 1/lambda",
    "timeout 0.5/lambda",
];

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let args = Args::from_env(&cli::with_resilience_flags(&[
        "workers",
        "solve-workers",
        "seed",
        "requests",
        "reps",
        "out",
    ]))?;
    let workers = args.workers()?;
    let solve_workers = args.get_usize("solve-workers", workers)?;
    let root_seed = args.get_u64("seed", 700)?;
    let requests = args.get_u64("requests", PAPER_REQUESTS)?;
    let reps = args.get_u64("reps", 1)?;
    let out = args.get_str("out", "results/fig5.json");

    // Parallel solve phase: at each input rate, the system model and the
    // constrained CTMDP-optimal policy — one bisection per pool task,
    // independent across rates, so plan-order records are bit-identical
    // to the old serial loop.
    let mut solve_plan = SolvePlan::new("fig5-solve", root_seed);
    for denominator in DENOMINATORS {
        solve_plan = solve_plan
            .point(PlanPoint::new(format!("1/{denominator}")).with("denominator", denominator));
    }
    let solve_records = solve::run_solve_plan(&solve_plan, solve_workers, |ctx| {
        let denominator = ctx.point.param("denominator").unwrap().as_i64().unwrap();
        let system = paper_system(1.0 / denominator as f64).map_err(|e| e.to_string())?;
        let solution = optimize::constrained_policy(&system, 1.0).map_err(|e| e.to_string())?;
        Ok((denominator, system, solution))
    })?;
    let mut solved = BTreeMap::new();
    for record in solve_records {
        let (denominator, system, solution) = record.output;
        solved.insert(denominator, (system, solution));
    }

    let plan = Plan::new("fig5", root_seed).replications(reps).grid(&[
        (
            "denominator",
            DENOMINATORS.iter().map(|&d| ParamValue::from(d)).collect(),
        ),
        (
            "policy",
            POLICIES.iter().map(|&p| ParamValue::from(p)).collect(),
        ),
    ])?;

    // Parallel simulation phase.
    let run_config = args.run_config()?;
    let report = runner::run_plan_resilient(&plan, &run_config, |ctx| {
        let denominator = ctx.point.param("denominator").unwrap().as_i64().unwrap();
        let policy = ctx.point.param("policy").unwrap().as_text().unwrap();
        let (system, solution) = &solved[&denominator];
        let mean_gap = denominator as f64;
        let task = || -> Result<_, Box<dyn std::error::Error>> {
            Ok(match policy {
                "optimal (constrained)" => {
                    simulate_policy(system, solution.policy(), "optimal", ctx.seed, requests)?
                }
                "greedy" => simulate_controller(
                    system,
                    GreedyController::new(system.provider())?,
                    ctx.seed,
                    requests,
                )?,
                "timeout 1s" => simulate_controller(
                    system,
                    TimeoutController::new(system.provider(), 1.0, 2)?,
                    ctx.seed,
                    requests,
                )?,
                "timeout 1/lambda" => simulate_controller(
                    system,
                    TimeoutController::new(system.provider(), mean_gap, 2)?,
                    ctx.seed,
                    requests,
                )?,
                "timeout 0.5/lambda" => simulate_controller(
                    system,
                    TimeoutController::new(system.provider(), 0.5 * mean_gap, 2)?,
                    ctx.seed,
                    requests,
                )?,
                other => return Err(format!("unknown policy `{other}`").into()),
            })
        };
        let report = task().map_err(|e| e.to_string())?;
        record_sim_telemetry(ctx.telemetry, &report);
        Ok(report_to_json(&report))
    })?;
    for outcome in &report.outcomes {
        if let runner::TaskOutcome::Failed(f) = outcome {
            eprintln!(
                "warning: task {} ({}) failed after {} attempts: {}",
                f.index,
                plan.points()[f.point_index].label(),
                f.attempts,
                f.error
            );
        }
    }
    let records: Vec<_> = report.records().into_iter().cloned().collect();

    let widths = [12usize, 22, 12, 12];
    println!("Figure 5 — optimal vs heuristic policies across input rates (reps = {reps})");
    row(
        &[
            "input rate".into(),
            "policy".into(),
            "power (W)".into(),
            "wait (s)".into(),
        ],
        &widths,
    );
    rule(&widths);
    for (di, denominator) in DENOMINATORS.iter().enumerate() {
        for (pi, policy) in POLICIES.iter().enumerate() {
            let point = di * POLICIES.len() + pi;
            row(
                &[
                    format!("1/{denominator}"),
                    (*policy).to_owned(),
                    format!("{:.4}", point_mean(&records, point, "power")),
                    format!("{:.4}", point_mean(&records, point, "wait")),
                ],
                &widths,
            );
        }
        rule(&widths);
    }
    println!(
        "shape check: the optimal policy gives the lowest power of all policies that\n\
         keep the average waiting time within the mean inter-arrival time."
    );

    let doc = artifact::build_run(&plan, workers, &report);
    artifact::write(&out, &doc)?;
    println!("artifact: {out}");
    Ok(())
}
