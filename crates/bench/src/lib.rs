//! Shared experiment plumbing for the paper-reproduction binaries and the
//! Criterion benchmarks.
//!
//! Every binary in `src/bin/` regenerates one table or figure of
//! Qiu & Pedram (DAC 1999); see `DESIGN.md` for the experiment index and
//! `EXPERIMENTS.md` for recorded paper-vs-measured outcomes.

use dpm_core::{DpmError, PmPolicy, PmSystem, SpModel, SrModel};
use dpm_sim::controller::{Controller, TableController};
use dpm_sim::workload::PoissonWorkload;
use dpm_sim::{SimConfig, SimError, SimReport, Simulator};

/// The paper's Section V experimental setup for a given arrival rate:
/// three-mode server, queue capacity 5.
///
/// # Errors
///
/// Propagates model validation failures (none for the paper's parameters).
pub fn paper_system(lambda: f64) -> Result<PmSystem, DpmError> {
    PmSystem::builder()
        .provider(SpModel::dac99_server()?)
        .requestor(SrModel::poisson(lambda)?)
        .capacity(5)
        .build()
}

/// The paper's workload size.
pub const PAPER_REQUESTS: u64 = 50_000;

/// Simulates a stationary policy on the paper's setup.
///
/// # Errors
///
/// Propagates simulator failures.
pub fn simulate_policy(
    system: &PmSystem,
    policy: &PmPolicy,
    name: &str,
    seed: u64,
    requests: u64,
) -> Result<SimReport, SimError> {
    let controller = TableController::new(system, policy)?.named(name);
    simulate_controller(system, controller, seed, requests)
}

/// Simulates an arbitrary controller on the paper's setup.
///
/// # Errors
///
/// Propagates simulator failures.
pub fn simulate_controller<C: Controller>(
    system: &PmSystem,
    controller: C,
    seed: u64,
    requests: u64,
) -> Result<SimReport, SimError> {
    Simulator::new(
        system.provider().clone(),
        system.capacity(),
        PoissonWorkload::new(system.requestor().rate())?,
        controller,
        SimConfig::new(seed).max_requests(requests),
    )
    .run()
}

/// Prints a fixed-width table row.
pub fn row(cells: &[String], widths: &[usize]) {
    let line: Vec<String> = cells
        .iter()
        .zip(widths)
        .map(|(c, w)| format!("{c:>w$}", w = *w))
        .collect();
    println!("{}", line.join("  "));
}

/// Prints a rule matching [`row`] widths.
pub fn rule(widths: &[usize]) {
    let total: usize = widths.iter().sum::<usize>() + 2 * (widths.len() - 1);
    println!("{}", "-".repeat(total));
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_system_builds() {
        let sys = paper_system(1.0 / 6.0).unwrap();
        assert_eq!(sys.n_states(), 23);
    }

    #[test]
    fn simulate_policy_runs() {
        let sys = paper_system(1.0 / 6.0).unwrap();
        let policy = PmPolicy::greedy(&sys).unwrap();
        let report = simulate_policy(&sys, &policy, "greedy", 1, 2_000).unwrap();
        assert_eq!(report.arrivals(), 2_000);
        assert_eq!(report.policy(), "greedy");
    }
}
