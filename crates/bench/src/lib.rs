//! Shared experiment plumbing for the paper-reproduction binaries and the
//! Criterion benchmarks.
//!
//! Every binary in `src/bin/` regenerates one table or figure of
//! Qiu & Pedram (DAC 1999); see `DESIGN.md` for the experiment index and
//! `EXPERIMENTS.md` for recorded paper-vs-measured outcomes.

#![forbid(unsafe_code)]

use dpm_core::{DpmError, PmPolicy, PmSystem, SpModel, SrModel};
use dpm_harness::{Json, Registry, TaskRecord};
use dpm_sim::controller::{Controller, TableController};
use dpm_sim::workload::PoissonWorkload;
use dpm_sim::{SimConfig, SimError, SimReport, Simulator};

/// The paper's Section V experimental setup for a given arrival rate:
/// three-mode server, queue capacity 5.
///
/// # Errors
///
/// Propagates model validation failures (none for the paper's parameters).
pub fn paper_system(lambda: f64) -> Result<PmSystem, DpmError> {
    PmSystem::builder()
        .provider(SpModel::dac99_server()?)
        .requestor(SrModel::poisson(lambda)?)
        .capacity(5)
        .build()
}

/// The paper's workload size.
pub const PAPER_REQUESTS: u64 = 50_000;

/// Simulates a stationary policy on the paper's setup.
///
/// # Errors
///
/// Propagates simulator failures.
pub fn simulate_policy(
    system: &PmSystem,
    policy: &PmPolicy,
    name: &str,
    seed: u64,
    requests: u64,
) -> Result<SimReport, SimError> {
    let controller = TableController::new(system, policy)?.named(name);
    simulate_controller(system, controller, seed, requests)
}

/// Simulates an arbitrary controller on the paper's setup.
///
/// # Errors
///
/// Propagates simulator failures.
pub fn simulate_controller<C: Controller>(
    system: &PmSystem,
    controller: C,
    seed: u64,
    requests: u64,
) -> Result<SimReport, SimError> {
    Simulator::new(
        system.provider().clone(),
        system.capacity(),
        PoissonWorkload::new(system.requestor().rate())?,
        controller,
        SimConfig::new(seed).max_requests(requests),
    )
    .run()
}

/// Serializes a [`SimReport`]'s deterministic metrics for a harness task
/// record. Every field is a pure function of the model and the seed, so
/// artifacts from different worker counts compare byte-identical.
#[must_use]
pub fn report_to_json(report: &SimReport) -> Json {
    let mut out = Json::object();
    out.set("power", Json::num(report.average_power()));
    out.set("queue", Json::num(report.average_queue_length()));
    out.set("wait", Json::num(report.average_waiting_time()));
    out.set(
        "switches_per_s",
        Json::num(report.switches() as f64 / report.duration()),
    );
    out.set("consultation_rate", Json::num(report.consultation_rate()));
    out.set("loss", Json::num(report.loss_fraction()));
    out.set("duration", Json::num(report.duration()));
    out
}

/// Records a [`SimReport`]'s engine counters into task telemetry.
pub fn record_sim_telemetry(registry: &Registry, report: &SimReport) {
    registry.incr("sim.events", report.events());
    registry.incr("sim.arrivals", report.arrivals());
    registry.incr("sim.completed", report.completed());
    registry.incr("sim.lost", report.lost());
    registry.incr("sim.switches", report.switches());
    registry.incr("sim.consultations", report.consultations());
}

/// Mean of a per-point numeric `result` field, for table rendering.
///
/// Returns NaN when the point has no records or lacks the field — e.g.
/// when every replication of the point failed in a resilient run — so a
/// partial table still renders instead of tearing the binary down.
#[must_use]
pub fn point_mean(records: &[TaskRecord], point: usize, field: &str) -> f64 {
    dpm_harness::runner::mean_of(records, point, field).unwrap_or(f64::NAN)
}

/// A timer mean (seconds) from a record's telemetry snapshot, when
/// present. Timers are wall-clock and excluded from artifact comparisons.
#[must_use]
pub fn timer_mean_secs(record: &TaskRecord, name: &str) -> Option<f64> {
    let timer = record.telemetry.get("timers")?.get(name)?;
    let sum = timer.get("sum")?.as_f64()?;
    let count = timer.get("count")?.as_f64()?;
    // dpm-lint: allow(float_eq, reason = "count is an integer-valued accumulator; exactly 0.0 means no samples")
    if count == 0.0 {
        None
    } else {
        Some(sum / count)
    }
}

/// A counter value from a record's telemetry snapshot, when present.
#[must_use]
pub fn counter_value(record: &TaskRecord, name: &str) -> Option<i128> {
    match record.telemetry.get("counters")?.get(name)? {
        Json::Int(v) => Some(*v),
        _ => None,
    }
}

/// Wall-clock timing for the benchmark binaries.
///
/// The single sanctioned home for wall-clock reads in the workspace: the
/// benchmark binaries measure here, and everything measured lands under
/// an artifact's volatile `timers`/`provenance` keys, which
/// `dpm_harness::artifact::diff` strips before comparing.
pub mod timing {
    use std::time::Instant; // dpm-lint: allow(nondeterminism, reason = "the shared benchmark timer; measurements land under volatile artifact keys only")

    /// Runs `body` once, returning its output and the elapsed seconds.
    pub fn timed<T>(body: impl FnOnce() -> T) -> (T, f64) {
        let start = Instant::now(); // dpm-lint: allow(nondeterminism, reason = "the shared benchmark timer; measurements land under volatile artifact keys only")
        let out = body();
        (out, start.elapsed().as_secs_f64())
    }

    /// Runs `body` once untimed (warm-up), then `rounds` timed repetitions;
    /// returns the last output and the mean seconds per round.
    pub fn time_sweeps<T>(rounds: usize, mut body: impl FnMut() -> T) -> (T, f64) {
        let mut out = body();
        let ((), total) = timed(|| {
            for _ in 0..rounds {
                out = body();
            }
        });
        #[allow(clippy::cast_precision_loss)]
        (out, total / rounds.max(1) as f64)
    }
}

pub use timing::{time_sweeps, timed};

/// Prints a fixed-width table row.
pub fn row(cells: &[String], widths: &[usize]) {
    let line: Vec<String> = cells
        .iter()
        .zip(widths)
        .map(|(c, w)| format!("{c:>w$}", w = *w))
        .collect();
    println!("{}", line.join("  "));
}

/// Prints a rule matching [`row`] widths.
pub fn rule(widths: &[usize]) {
    let total: usize = widths.iter().sum::<usize>() + 2 * (widths.len() - 1);
    println!("{}", "-".repeat(total));
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_system_builds() {
        let sys = paper_system(1.0 / 6.0).unwrap();
        assert_eq!(sys.n_states(), 23);
    }

    #[test]
    fn simulate_policy_runs() {
        let sys = paper_system(1.0 / 6.0).unwrap();
        let policy = PmPolicy::greedy(&sys).unwrap();
        let report = simulate_policy(&sys, &policy, "greedy", 1, 2_000).unwrap();
        assert_eq!(report.arrivals(), 2_000);
        assert_eq!(report.policy(), "greedy");
    }
}
