//! Criterion benchmark: policy-optimization solvers (A1 companion).
//!
//! Measures policy iteration, the occupation-measure LP, and relative
//! value iteration on the paper's model at several queue capacities.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use dpm_core::{PmPolicy, PmSystem, SpModel, SrModel};
use dpm_mdp::{average, lp, value_iteration};

fn system(capacity: usize) -> PmSystem {
    PmSystem::builder()
        .provider(SpModel::dac99_server().expect("paper parameters"))
        .requestor(SrModel::poisson(1.0 / 6.0).expect("positive rate"))
        .capacity(capacity)
        .instant_rate(100.0)
        .build()
        .expect("valid system")
}

fn bench_solvers(c: &mut Criterion) {
    let mut group = c.benchmark_group("policy_optimization");
    for capacity in [5usize, 10, 20] {
        let sys = system(capacity);
        let mdp = sys.ctmdp(1.0).expect("valid weight");
        let initial = PmPolicy::always_on(&sys, 0)
            .expect("valid policy")
            .to_mdp_policy(&sys)
            .expect("matches system");

        group.bench_with_input(
            BenchmarkId::new("policy_iteration", capacity),
            &capacity,
            |b, _| {
                b.iter(|| {
                    average::policy_iteration_multichain(
                        &mdp,
                        initial.clone(),
                        &average::Options::default(),
                    )
                    .expect("solvable")
                });
            },
        );
        group.bench_with_input(BenchmarkId::new("lp", capacity), &capacity, |b, _| {
            b.iter(|| lp::solve_average(&mdp).expect("feasible"));
        });
        group.bench_with_input(
            BenchmarkId::new("value_iteration", capacity),
            &capacity,
            |b, _| {
                b.iter(|| {
                    value_iteration::solve(
                        &mdp,
                        &value_iteration::Options {
                            tolerance: 1e-4,
                            ..value_iteration::Options::default()
                        },
                    )
                    .expect("converges")
                });
            },
        );
    }
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench_solvers
}
criterion_main!(benches);
