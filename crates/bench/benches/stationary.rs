//! Criterion benchmark: stationary-distribution solvers (A3).
//!
//! GTH vs direct LU vs power iteration on birth–death chains of growing
//! size and on the (stiff) power-managed system chain.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use dpm_core::{PmPolicy, PmSystem, SpModel, SrModel};
use dpm_ctmc::stationary::{self, Method, Solver};

fn bench_birth_death(c: &mut Criterion) {
    let mut group = c.benchmark_group("stationary_birth_death");
    for size in [10usize, 50, 200] {
        let g = stationary::mm1k_generator(0.4, 1.0, size).expect("valid rates");
        group.bench_with_input(BenchmarkId::new("gth", size), &size, |b, _| {
            b.iter(|| Solver::new(Method::Gth).solve(&g).expect("irreducible"));
        });
        group.bench_with_input(BenchmarkId::new("lu", size), &size, |b, _| {
            b.iter(|| Solver::new(Method::Lu).solve(&g).expect("irreducible"));
        });
        group.bench_with_input(BenchmarkId::new("power", size), &size, |b, _| {
            b.iter(|| {
                Solver::new(Method::Power)
                    .tolerance(1e-10)
                    .max_iters(10_000_000)
                    .solve(&g)
                    .expect("converges")
            });
        });
    }
    group.finish();
}

fn bench_dpm_chain(c: &mut Criterion) {
    // The greedy policy's chain on the paper system: stiff (instant-rate
    // transfer surrogates), the workload GTH was chosen for. GTH needs an
    // irreducible chain, so the benchmark runs on the recurrent class
    // (policies leave parts of the full state space unreachable).
    let system = PmSystem::builder()
        .provider(SpModel::dac99_server().expect("paper parameters"))
        .requestor(SrModel::poisson(1.0 / 6.0).expect("positive rate"))
        .capacity(5)
        .build()
        .expect("valid system");
    let full = system
        .generator_for(&PmPolicy::greedy(&system).expect("valid policy"))
        .expect("valid chain");
    let g = recurrent_class_chain(&full);
    let mut group = c.benchmark_group("stationary_dpm_chain");
    group.bench_function("gth", |b| {
        b.iter(|| Solver::new(Method::Gth).solve(&g).expect("irreducible"));
    });
    group.bench_function("lu", |b| {
        b.iter(|| Solver::new(Method::Lu).solve(&g).expect("irreducible"));
    });
    group.finish();
}

/// Restricts a chain to its (unique, reachable) closed communicating class.
fn recurrent_class_chain(full: &dpm_ctmc::Generator) -> dpm_ctmc::Generator {
    let recurrent = dpm_ctmc::graph::recurrent_states(full);
    let members: Vec<usize> = (0..full.n_states()).filter(|&i| recurrent[i]).collect();
    let index_of: std::collections::HashMap<usize, usize> = members
        .iter()
        .enumerate()
        .map(|(local, &global)| (global, local))
        .collect();
    let mut b = dpm_ctmc::Generator::builder(members.len());
    for (from, to, rate) in full.transitions() {
        if let (Some(&lf), Some(&lt)) = (index_of.get(&from), index_of.get(&to)) {
            b.add_rate(lf, lt, rate);
        }
    }
    b.build().expect("closed class is a valid chain")
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(20);
    targets = bench_birth_death, bench_dpm_chain
}
criterion_main!(benches);
