//! Criterion benchmark: event-driven simulator throughput.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use dpm_bench::paper_system;
use dpm_core::{optimize, PmPolicy};
use dpm_sim::controller::{GreedyController, TableController, TimeoutController};
use dpm_sim::workload::PoissonWorkload;
use dpm_sim::{SimConfig, Simulator};

fn bench_simulator(c: &mut Criterion) {
    let system = paper_system(1.0 / 6.0).expect("paper parameters");
    let optimal = optimize::optimal_policy(&system, 1.0).expect("solvable");
    let greedy = PmPolicy::greedy(&system).expect("valid");
    let requests = 10_000u64;

    let mut group = c.benchmark_group("simulator_10k_requests");
    group.bench_with_input(
        BenchmarkId::new("table_optimal", requests),
        &requests,
        |b, &n| {
            b.iter(|| {
                Simulator::new(
                    system.provider().clone(),
                    system.capacity(),
                    PoissonWorkload::new(1.0 / 6.0).expect("rate"),
                    TableController::new(&system, optimal.policy()).expect("valid"),
                    SimConfig::new(1).max_requests(n),
                )
                .run()
                .expect("completes")
            });
        },
    );
    group.bench_with_input(
        BenchmarkId::new("table_greedy", requests),
        &requests,
        |b, &n| {
            b.iter(|| {
                Simulator::new(
                    system.provider().clone(),
                    system.capacity(),
                    PoissonWorkload::new(1.0 / 6.0).expect("rate"),
                    TableController::new(&system, &greedy).expect("valid"),
                    SimConfig::new(1).max_requests(n),
                )
                .run()
                .expect("completes")
            });
        },
    );
    group.bench_with_input(
        BenchmarkId::new("behavioral_greedy", requests),
        &requests,
        |b, &n| {
            b.iter(|| {
                Simulator::new(
                    system.provider().clone(),
                    system.capacity(),
                    PoissonWorkload::new(1.0 / 6.0).expect("rate"),
                    GreedyController::new(system.provider()).expect("valid"),
                    SimConfig::new(1).max_requests(n),
                )
                .run()
                .expect("completes")
            });
        },
    );
    group.bench_with_input(BenchmarkId::new("timeout", requests), &requests, |b, &n| {
        b.iter(|| {
            Simulator::new(
                system.provider().clone(),
                system.capacity(),
                PoissonWorkload::new(1.0 / 6.0).expect("rate"),
                TimeoutController::new(system.provider(), 3.0, 2).expect("valid"),
                SimConfig::new(1).max_requests(n),
            )
            .run()
            .expect("completes")
        });
    });
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench_simulator
}
criterion_main!(benches);
