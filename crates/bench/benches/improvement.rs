//! Criterion benchmark: solve-phase kernels (PR 5 companion).
//!
//! Measures a single policy-improvement sweep — the nested-list reference
//! against the flattened [`dpm_mdp::ActionCsr`] kernel — and a full policy
//! iteration under each evaluation backend, on the paper's model at
//! several queue capacities.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use dpm_core::{PmSystem, SpModel, SrModel};
use dpm_mdp::{average, Policy};

fn system(capacity: usize) -> PmSystem {
    PmSystem::builder()
        .provider(SpModel::dac99_server().expect("paper parameters"))
        .requestor(SrModel::poisson(1.0 / 6.0).expect("positive rate"))
        .capacity(capacity)
        .instant_rate(100.0)
        .build()
        .expect("valid system")
}

fn bench_improvement(c: &mut Criterion) {
    let mut group = c.benchmark_group("policy_improvement");
    for capacity in [20usize, 50, 100] {
        let sys = system(capacity);
        let mdp = sys.ctmdp(1.0).expect("valid weight");
        let kernel = mdp.sparse_actions();
        let initial = mdp.min_cost_policy();
        // A converged bias gives the sweep realistic inputs.
        let solution = average::policy_iteration_multichain(
            &mdp,
            initial.clone(),
            &average::Options::default(),
        )
        .expect("solvable");
        let policy = solution.policy().clone();
        let bias = solution.bias().clone();
        let tolerance = average::Options::default().improvement_tolerance;

        group.bench_with_input(
            BenchmarkId::new("nested_lists", capacity),
            &capacity,
            |b, _| {
                b.iter(|| average::improve_step(&mdp, &policy, &bias, tolerance));
            },
        );
        group.bench_with_input(BenchmarkId::new("csr", capacity), &capacity, |b, _| {
            b.iter(|| average::improve_step_csr(&kernel, &policy, &bias, tolerance));
        });
    }
    group.finish();
}

fn bench_eval_backends(c: &mut Criterion) {
    let mut group = c.benchmark_group("eval_backend");
    for capacity in [20usize, 50] {
        let sys = system(capacity);
        let mdp = sys.ctmdp(1.0).expect("valid weight");
        let start = Policy::uniform(mdp.n_states(), 0);
        for (name, backend) in [
            ("dense", average::EvalBackend::Dense),
            ("cached_lu", average::EvalBackend::CachedLu),
            ("sparse_direct", average::EvalBackend::SparseDirect),
        ] {
            let options = average::Options {
                backend,
                ..average::Options::default()
            };
            group.bench_with_input(BenchmarkId::new(name, capacity), &capacity, |b, _| {
                b.iter(|| {
                    average::policy_iteration_multichain(&mdp, start.clone(), &options)
                        .expect("solvable")
                });
            });
        }
    }
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench_improvement, bench_eval_backends
}
criterion_main!(benches);
