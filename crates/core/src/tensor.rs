//! Compositional (tensor-algebra) construction of the SYS generator.
//!
//! The paper expresses the composed generator as a block matrix over the
//! stable and transfer partitions (Section III, using Definition 4.4's
//! tensor product `⊗` and tensor sum `⊕`):
//!
//! ```text
//!            ⎡ G_SP(a) ⊕ G_SQ^SS      M(a)                    ⎤
//! G_SYS(a) = ⎢                                                ⎥
//!            ⎣ G_SP^A(a) ⊗ N          I_{S_active} ⊗ G_SQ^TT  ⎦
//! ```
//!
//! This module rebuilds the generator from exactly those pieces for a
//! *uniform command* `a` (the same destination mode issued in every state
//! where it is valid). It is deliberately an independent implementation
//! from [`crate::PmSystem::generator_for`]'s direct state-by-state
//! assembly; tests assert the two agree entry-for-entry, validating both
//! the paper's formula and the direct code.
//!
//! One caveat the paper glosses over: the paper's constraint (2) makes the
//! SP's *masked* switch matrix depend on the queue level (only at `q_Q`,
//! only for inactive → inactive commands), which breaks the pure tensor
//! structure. [`compose_uniform`] therefore rejects commands whose masking
//! is queue-dependent; every other command composes exactly.

use dpm_linalg::{kron, kron_sum, DMatrix};

#[cfg(test)]
use crate::SysState;
use crate::{DpmError, PmPolicy, PmSystem};

/// Builds the uniform policy "command `dest` wherever valid, otherwise
/// stay".
///
/// # Errors
///
/// Returns [`DpmError::InvalidPolicy`] if `dest` is out of range.
pub fn uniform_policy(system: &PmSystem, dest: usize) -> Result<PmPolicy, DpmError> {
    if dest >= system.provider().n_modes() {
        return Err(DpmError::InvalidPolicy {
            reason: format!("destination mode {dest} out of range"),
        });
    }
    let destinations = system
        .states()
        .iter()
        .enumerate()
        .map(|(i, &state)| {
            let valid = system.action_destinations(i);
            if valid.contains(&dest) {
                dest
            } else if valid.contains(&state.mode()) {
                state.mode()
            } else {
                // Forced-wakeup states (inactive mode at q_Q) where the
                // command is also invalid: take the first legal command.
                valid[0]
            }
        })
        .collect();
    PmPolicy::new(system, destinations)
}

/// Composes the SYS generator for the uniform command `dest` from the SP
/// and SQ component matrices per the paper's block formula.
///
/// # Errors
///
/// Returns [`DpmError::InvalidPolicy`] if `dest` is out of range, or
/// [`DpmError::InvalidModel`] if constraint (2) would make the SP masking
/// queue-dependent for this command (`dest` inactive and some inactive
/// mode allowed to switch to it below `q_Q` but not at `q_Q`) — the one
/// case the paper's pure tensor structure cannot express.
pub fn compose_uniform(system: &PmSystem, dest: usize) -> Result<DMatrix, DpmError> {
    let sp = system.provider();
    let s = sp.n_modes();
    if dest >= s {
        return Err(DpmError::InvalidPolicy {
            reason: format!("destination mode {dest} out of range"),
        });
    }
    let q = system.capacity();
    let lambda = system.requestor().rate();
    let active = sp.active_modes();
    let n_active = active.len();
    let n_stable = s * (q + 1);
    let n = n_stable + n_active * q;

    // Queue-dependence check: the pure tensor form needs the effective
    // stable-state command of every mode to be identical at q < Q and at
    // q_Q. Constraint (2) (strengthened: inactive modes may not idle at
    // q_Q) is the only queue-dependent masking, so for every *inactive*
    // mode the command must be executable everywhere: a possible switch to
    // an active mode, or to an inactive mode with strictly shorter wakeup.
    for mode in 0..s {
        if sp.is_active(mode) {
            continue;
        }
        let command_executable = mode != dest && sp.switch_rate(mode, dest) > 0.0;
        let valid_at_full = command_executable
            && (sp.is_active(dest) || sp.wakeup_time(dest) < sp.wakeup_time(mode));
        if !valid_at_full {
            return Err(DpmError::InvalidModel {
                reason: format!(
                    "command {dest} has queue-dependent masking for inactive mode {mode}; \
                     the pure tensor form cannot express it"
                ),
            });
        }
    }

    // --- Component matrices ---
    // Masked SP switch generator under the uniform command (stable states).
    let mut g_sp = DMatrix::zeros(s, s);
    for mode in 0..s {
        // Constraint (1): active modes may not be commanded inactive.
        let blocked_by_constraint_1 = sp.is_active(mode) && !sp.is_active(dest);
        if dest != mode && sp.switch_rate(mode, dest) > 0.0 && !blocked_by_constraint_1 {
            g_sp[(mode, dest)] = sp.switch_rate(mode, dest);
            g_sp[(mode, mode)] = -sp.switch_rate(mode, dest);
        }
    }
    // Arrival-only SQ generator on stable states (the SS block).
    let mut g_sq_ss = DMatrix::zeros(q + 1, q + 1);
    for jobs in 0..q {
        g_sq_ss[(jobs, jobs + 1)] = lambda;
        g_sq_ss[(jobs, jobs)] = -lambda;
    }
    // Arrival-only SQ generator on transfer states (the TT block), without
    // the departure exits (those live in the transfer -> stable block).
    let mut g_sq_tt = DMatrix::zeros(q, q);
    for i in 0..q - 1 {
        g_sq_tt[(i, i + 1)] = lambda;
        g_sq_tt[(i, i)] = -lambda;
    }

    // --- Assemble the blocks ---
    let mut g = DMatrix::zeros(n, n);

    // Stable-stable: G_SP ⊕ G_SQ^SS, corrected on the diagonal by the
    // service exits into the transfer partition.
    let ss = kron_sum(&g_sp, &g_sq_ss);
    g.set_block(0, 0, &ss);
    for mode in 0..s {
        let mu = sp.service_rate(mode);
        if mu > 0.0 {
            for jobs in 1..=q {
                let i = mode * (q + 1) + jobs;
                g[(i, i)] -= mu;
            }
        }
    }

    // Stable-transfer: M = I_{S_active} ⊗ G_SQ^ST restricted to the active
    // rows; G_SQ^ST is the (q+1) x q matrix with mu at (jobs, jobs-1).
    for (a_pos, &mode) in active.iter().enumerate() {
        let mu = sp.service_rate(mode);
        let mut g_sq_st = DMatrix::zeros(q + 1, q);
        for jobs in 1..=q {
            g_sq_st[(jobs, jobs - 1)] = mu;
        }
        g.set_block(mode * (q + 1), n_stable + a_pos * q, &g_sq_st);
    }

    // Transfer-stable: G_SP^A(a) ⊗ N. Row per active mode; the SP row under
    // the command (self entry uses the instantaneous surrogate), times the
    // positional matrix N = [I_Q | 0] mapping transfer i to stable i-1.
    let mut n_map = DMatrix::zeros(q, q + 1);
    for i in 0..q {
        n_map[(i, i)] = 1.0;
    }
    for (a_pos, &mode) in active.iter().enumerate() {
        // SP behavior at a transfer state of `mode` under the command:
        // switch to dest at chi (or the instant surrogate for dest == mode),
        // masked by constraint (3) — vacuous unless dest is a slower active
        // mode, in which case the command reverts to stay.
        let (target, rate) = if dest == mode || sp.switch_rate(mode, dest) <= 0.0 {
            (mode, system.instant_rate())
        } else if sp.is_active(dest) && sp.service_rate(dest) < sp.service_rate(mode) {
            // Constraint (3) masks the command at i = Q only; like
            // constraint (2) this is queue-dependent.
            return Err(DpmError::InvalidModel {
                reason: format!(
                    "command {dest} is masked only at q_Q->Q-1 for mode {mode}; \
                     the pure tensor form cannot express it"
                ),
            });
        } else {
            (dest, sp.switch_rate(mode, dest))
        };
        // (mode, i) -> (target, i-1) at `rate`: a 1 x S one-hot SP row
        // tensored with N.
        let mut sp_row = DMatrix::zeros(1, s);
        sp_row[(0, target)] = rate;
        let block = kron(&sp_row, &n_map); // q x s(q+1)
        g.set_block(n_stable + a_pos * q, 0, &block);
        // Its exit rate on the transfer diagonal.
        for i in 0..q {
            let r = n_stable + a_pos * q + i;
            g[(r, r)] -= rate;
        }
    }

    // Transfer-transfer: I_{S_active} ⊗ G_SQ^TT.
    let tt = kron(&DMatrix::identity(n_active), &g_sq_tt);
    for r in 0..n_active * q {
        for c in 0..n_active * q {
            g[(n_stable + r, n_stable + c)] += tt[(r, c)];
        }
    }

    Ok(g)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{SpModel, SrModel};

    fn paper_system() -> PmSystem {
        PmSystem::builder()
            .provider(SpModel::dac99_server().unwrap())
            .requestor(SrModel::poisson(1.0 / 6.0).unwrap())
            .capacity(5)
            .build()
            .unwrap()
    }

    #[test]
    fn tensor_form_matches_direct_assembly_for_wakeup_command() {
        let sys = paper_system();
        let composed = compose_uniform(&sys, 0).unwrap();
        let policy = uniform_policy(&sys, 0).unwrap();
        let direct = sys.generator_for(&policy).unwrap();
        let diff = &composed - direct.matrix();
        assert!(diff.max_abs() < 1e-9, "max deviation {}", diff.max_abs());
    }

    #[test]
    fn queue_dependent_masking_is_rejected() {
        // Command "waiting" leaves the waiting mode itself idle, which is
        // illegal at q_Q; command "sleeping" is masked at q_Q for the
        // waiting mode (longer wakeup). Both are queue-dependent.
        let sys = paper_system();
        for dest in [1, 2] {
            assert!(
                matches!(
                    compose_uniform(&sys, dest),
                    Err(DpmError::InvalidModel { .. })
                ),
                "dest {dest}"
            );
        }
    }

    #[test]
    fn composed_matrix_is_a_generator() {
        let sys = paper_system();
        let composed = compose_uniform(&sys, 0).unwrap();
        let g = dpm_ctmc::Generator::from_matrix(composed);
        assert!(g.is_ok());
    }

    #[test]
    fn two_mode_system_composes_for_every_command() {
        let mut b = SpModel::builder();
        b.mode("on", 1.0, 10.0);
        b.mode("off", 0.0, 0.5);
        b.switch_time(0, 1, 0.2).unwrap().energy(0, 1, 0.3).unwrap();
        b.switch_time(1, 0, 0.4).unwrap().energy(1, 0, 0.6).unwrap();
        let sys = PmSystem::builder()
            .provider(b.build().unwrap())
            .requestor(SrModel::poisson(0.5).unwrap())
            .capacity(3)
            .build()
            .unwrap();
        // Only the wake-up command is queue-independent for every mode.
        let composed = compose_uniform(&sys, 0).unwrap();
        let direct = sys
            .generator_for(&uniform_policy(&sys, 0).unwrap())
            .unwrap();
        let diff = &composed - direct.matrix();
        assert!(diff.max_abs() < 1e-9);
        assert!(compose_uniform(&sys, 1).is_err());
    }

    #[test]
    fn uniform_policy_falls_back_to_stay() {
        let sys = paper_system();
        let p = uniform_policy(&sys, 2).unwrap();
        // Active mode in a stable state cannot sleep: falls back to stay.
        assert_eq!(
            p.command(&sys, SysState::Stable { mode: 0, jobs: 2 })
                .unwrap(),
            0
        );
        // Inactive mode heads to sleep.
        assert_eq!(
            p.command(&sys, SysState::Stable { mode: 1, jobs: 2 })
                .unwrap(),
            2
        );
        assert!(uniform_policy(&sys, 9).is_err());
    }
}
