//! Power-management policies over the composed system.

use std::fmt;

use dpm_mdp::Policy;

use crate::{DpmError, PmSystem, SysState};

/// A stationary deterministic power-management policy: for every system
/// state, the SP mode the power manager commands.
///
/// Unlike the raw [`dpm_mdp::Policy`] (which stores per-state *action
/// indices* into state-dependent action lists), a `PmPolicy` stores the
/// commanded *destination mode* directly, which is what the event-driven
/// simulator and a real power manager consume.
///
/// # Examples
///
/// ```
/// use dpm_core::{PmPolicy, PmSystem, SpModel, SrModel};
///
/// # fn main() -> Result<(), dpm_core::DpmError> {
/// let system = PmSystem::builder()
///     .provider(SpModel::dac99_server()?)
///     .requestor(SrModel::poisson(1.0 / 6.0)?)
///     .capacity(5)
///     .build()?;
/// let greedy = PmPolicy::greedy(&system)?;
/// // Sleeping with one request queued: the greedy policy wakes up.
/// let state = dpm_core::SysState::Stable { mode: 2, jobs: 1 };
/// assert_eq!(greedy.command(&system, state)?, 0);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct PmPolicy {
    /// Destination mode per system-state index.
    destinations: Vec<usize>,
}

impl PmPolicy {
    /// Creates a policy from per-state destination modes, validating each
    /// against the system's action sets.
    ///
    /// # Errors
    ///
    /// Returns [`DpmError::InvalidPolicy`] on length mismatch or a
    /// destination that violates the action-validity constraints.
    pub fn new(system: &PmSystem, destinations: Vec<usize>) -> Result<Self, DpmError> {
        if destinations.len() != system.n_states() {
            return Err(DpmError::InvalidPolicy {
                reason: format!(
                    "policy covers {} states, system has {}",
                    destinations.len(),
                    system.n_states()
                ),
            });
        }
        for (i, &dest) in destinations.iter().enumerate() {
            if !system.action_destinations(i).contains(&dest) {
                return Err(DpmError::InvalidPolicy {
                    reason: format!(
                        "destination mode {dest} invalid in state {} (valid: {:?})",
                        system.state(i),
                        system.action_destinations(i)
                    ),
                });
            }
        }
        Ok(PmPolicy { destinations })
    }

    /// The "always on" policy: stay in `active_mode` everywhere (requests
    /// are always served at full speed; maximal power).
    ///
    /// # Errors
    ///
    /// Returns [`DpmError::InvalidPolicy`] if `active_mode` is not an
    /// active mode of the provider.
    pub fn always_on(system: &PmSystem, active_mode: usize) -> Result<Self, DpmError> {
        let sp = system.provider();
        if active_mode >= sp.n_modes() || !sp.is_active(active_mode) {
            return Err(DpmError::InvalidPolicy {
                reason: format!("mode {active_mode} is not an active mode"),
            });
        }
        let destinations = system
            .states()
            .iter()
            .enumerate()
            .map(|(i, &state)| {
                let stay = state.mode();
                // Inactive modes command a wake-up; active modes stay put.
                if sp.is_active(stay) {
                    stay
                } else if system.action_destinations(i).contains(&active_mode) {
                    active_mode
                } else {
                    stay
                }
            })
            .collect();
        PmPolicy::new(system, destinations)
    }

    /// The *N-policy* (Section V): deactivate the server into `sleep_mode`
    /// when the system empties; reactivate into the fastest active mode
    /// when `n` requests are waiting.
    ///
    /// # Errors
    ///
    /// Returns [`DpmError::InvalidPolicy`] if `n` is outside `1..=Q`,
    /// `sleep_mode` is active, or the required switches do not exist.
    pub fn n_policy(system: &PmSystem, n: usize, sleep_mode: usize) -> Result<Self, DpmError> {
        let sp = system.provider();
        let q = system.capacity();
        if !(1..=q).contains(&n) {
            return Err(DpmError::InvalidPolicy {
                reason: format!("N = {n} must be within 1..={q}"),
            });
        }
        if sleep_mode >= sp.n_modes() || sp.is_active(sleep_mode) {
            return Err(DpmError::InvalidPolicy {
                reason: format!("sleep mode {sleep_mode} must be an inactive mode"),
            });
        }
        // Wake into the fastest active mode.
        let wake_mode = sp
            .active_modes()
            .into_iter()
            .max_by(|&a, &b| {
                sp.service_rate(a)
                    .partial_cmp(&sp.service_rate(b))
                    // dpm-lint: allow(no_panic, reason = "rates are validated finite when the model is constructed")
                    .expect("finite rates")
            })
            // dpm-lint: allow(no_panic, reason = "SpModel validation guarantees an active mode")
            .expect("provider has an active mode");
        let destinations = system
            .states()
            .iter()
            .map(|&state| match state {
                SysState::Stable { mode, jobs } => {
                    if sp.is_active(mode) {
                        mode // constraint (1): keep serving
                    } else if jobs >= n {
                        wake_mode
                    } else if mode == sleep_mode {
                        mode
                    } else {
                        // Some other inactive mode: head for the sleep mode.
                        sleep_mode
                    }
                }
                SysState::Transfer { mode, departing } => {
                    if departing - 1 == 0 {
                        sleep_mode
                    } else {
                        mode
                    }
                }
            })
            .collect();
        PmPolicy::new(system, destinations)
    }

    /// The *greedy* policy of Section V: deactivate as soon as the queue is
    /// empty, reactivate as soon as it is not — i.e. the N-policy with
    /// `N = 1`, sleeping in the deepest (lowest-power) inactive mode.
    ///
    /// # Errors
    ///
    /// As [`PmPolicy::n_policy`].
    pub fn greedy(system: &PmSystem) -> Result<Self, DpmError> {
        let sp = system.provider();
        let sleep_mode = sp
            .inactive_modes()
            .into_iter()
            .min_by(|&a, &b| {
                sp.power(a)
                    .partial_cmp(&sp.power(b))
                    // dpm-lint: allow(no_panic, reason = "power draws are validated finite when the model is constructed")
                    .expect("finite powers")
            })
            .ok_or_else(|| DpmError::InvalidPolicy {
                reason: "greedy policy needs an inactive mode".to_owned(),
            })?;
        PmPolicy::n_policy(system, 1, sleep_mode)
    }

    /// The commanded destination mode in `state`.
    ///
    /// # Errors
    ///
    /// Returns [`DpmError::InvalidPolicy`] if `state` is not part of the
    /// system.
    pub fn command(&self, system: &PmSystem, state: SysState) -> Result<usize, DpmError> {
        let index = system
            .index_of(state)
            .ok_or_else(|| DpmError::InvalidPolicy {
                reason: format!("state {state} is not part of the system"),
            })?;
        Ok(self.destinations[index])
    }

    /// Destination mode for the state at `index`.
    ///
    /// # Panics
    ///
    /// Panics if `index` is out of range.
    #[must_use]
    pub fn destination(&self, index: usize) -> usize {
        self.destinations[index]
    }

    /// All destinations, indexed by system state.
    #[must_use]
    pub fn destinations(&self) -> &[usize] {
        &self.destinations
    }

    /// Converts to a [`dpm_mdp::Policy`] of per-state action indices.
    ///
    /// # Errors
    ///
    /// Returns [`DpmError::InvalidPolicy`] if a destination is not in the
    /// state's action set (cannot happen for a validated policy of the same
    /// system).
    pub fn to_mdp_policy(&self, system: &PmSystem) -> Result<Policy, DpmError> {
        let mut actions = Vec::with_capacity(self.destinations.len());
        for (i, &dest) in self.destinations.iter().enumerate() {
            let position = system
                .action_destinations(i)
                .iter()
                .position(|&d| d == dest)
                .ok_or_else(|| DpmError::InvalidPolicy {
                    reason: format!("destination {dest} invalid at state index {i}"),
                })?;
            actions.push(position);
        }
        Ok(Policy::new(actions))
    }

    /// Builds a `PmPolicy` from a solver-produced action-index policy.
    ///
    /// # Errors
    ///
    /// Returns [`DpmError::InvalidPolicy`] on length or index mismatch.
    pub fn from_mdp_policy(system: &PmSystem, policy: &Policy) -> Result<Self, DpmError> {
        if policy.len() != system.n_states() {
            return Err(DpmError::InvalidPolicy {
                reason: format!(
                    "policy covers {} states, system has {}",
                    policy.len(),
                    system.n_states()
                ),
            });
        }
        let mut destinations = Vec::with_capacity(policy.len());
        for i in 0..policy.len() {
            let dests = system.action_destinations(i);
            let a = policy.action(i);
            if a >= dests.len() {
                return Err(DpmError::InvalidPolicy {
                    reason: format!("action index {a} out of range at state index {i}"),
                });
            }
            destinations.push(dests[a]);
        }
        Ok(PmPolicy { destinations })
    }
}

impl PmPolicy {
    /// Renders the policy as a human-readable decision table, one line per
    /// system state:
    ///
    /// ```text
    /// (sleeping, q2)  -> active
    /// ```
    ///
    /// # Errors
    ///
    /// Returns [`DpmError::InvalidPolicy`] if the policy does not match
    /// `system`.
    pub fn describe(&self, system: &PmSystem) -> Result<String, DpmError> {
        if self.destinations.len() != system.n_states() {
            return Err(DpmError::InvalidPolicy {
                reason: format!(
                    "policy covers {} states, system has {}",
                    self.destinations.len(),
                    system.n_states()
                ),
            });
        }
        let sp = system.provider();
        let mut out = String::new();
        for (i, &state) in system.states().iter().enumerate() {
            use std::fmt::Write as _;
            let name = match state {
                SysState::Stable { mode, jobs } => {
                    format!("({}, q{jobs})", sp.label(mode))
                }
                SysState::Transfer { mode, departing } => {
                    format!("({}, q{departing}->{})", sp.label(mode), departing - 1)
                }
            };
            let dest = self.destinations[i];
            let action = if dest == state.mode() {
                "stay".to_owned()
            } else {
                format!("-> {}", sp.label(dest))
            };
            let _ = writeln!(out, "{name:<24} {action}");
        }
        Ok(out)
    }
}

impl fmt::Display for PmPolicy {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "PmPolicy{:?}", self.destinations)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{SpModel, SrModel};

    fn paper_system() -> PmSystem {
        PmSystem::builder()
            .provider(SpModel::dac99_server().unwrap())
            .requestor(SrModel::poisson(1.0 / 6.0).unwrap())
            .capacity(5)
            .build()
            .unwrap()
    }

    #[test]
    fn n_policy_wakes_at_threshold() {
        let sys = paper_system();
        let p = PmPolicy::n_policy(&sys, 3, 2).unwrap();
        assert_eq!(
            p.command(&sys, SysState::Stable { mode: 2, jobs: 2 })
                .unwrap(),
            2,
            "below threshold: stay asleep"
        );
        assert_eq!(
            p.command(&sys, SysState::Stable { mode: 2, jobs: 3 })
                .unwrap(),
            0,
            "at threshold: wake"
        );
        assert_eq!(
            p.command(
                &sys,
                SysState::Transfer {
                    mode: 0,
                    departing: 1
                }
            )
            .unwrap(),
            2,
            "queue empties: sleep"
        );
        assert_eq!(
            p.command(
                &sys,
                SysState::Transfer {
                    mode: 0,
                    departing: 4
                }
            )
            .unwrap(),
            0,
            "work remains: keep serving"
        );
    }

    #[test]
    fn n_policy_routes_waiting_to_sleep() {
        let sys = paper_system();
        let p = PmPolicy::n_policy(&sys, 2, 2).unwrap();
        // The waiting mode is not the sleep mode: head to sleep below N.
        assert_eq!(
            p.command(&sys, SysState::Stable { mode: 1, jobs: 0 })
                .unwrap(),
            2
        );
        // At/above N: wake.
        assert_eq!(
            p.command(&sys, SysState::Stable { mode: 1, jobs: 2 })
                .unwrap(),
            0
        );
    }

    #[test]
    fn greedy_is_n1_into_deepest_mode() {
        let sys = paper_system();
        let greedy = PmPolicy::greedy(&sys).unwrap();
        let n1 = PmPolicy::n_policy(&sys, 1, 2).unwrap();
        assert_eq!(greedy, n1);
    }

    #[test]
    fn always_on_wakes_inactive_modes() {
        let sys = paper_system();
        let p = PmPolicy::always_on(&sys, 0).unwrap();
        assert_eq!(
            p.command(&sys, SysState::Stable { mode: 2, jobs: 0 })
                .unwrap(),
            0
        );
        assert_eq!(
            p.command(
                &sys,
                SysState::Transfer {
                    mode: 0,
                    departing: 1
                }
            )
            .unwrap(),
            0
        );
        assert!(PmPolicy::always_on(&sys, 2).is_err());
    }

    #[test]
    fn n_policy_validation() {
        let sys = paper_system();
        assert!(PmPolicy::n_policy(&sys, 0, 2).is_err());
        assert!(PmPolicy::n_policy(&sys, 6, 2).is_err());
        assert!(PmPolicy::n_policy(&sys, 2, 0).is_err()); // active sleep mode
        assert!(PmPolicy::n_policy(&sys, 2, 9).is_err());
    }

    #[test]
    fn mdp_policy_round_trip() {
        let sys = paper_system();
        let p = PmPolicy::n_policy(&sys, 2, 2).unwrap();
        let mdp = p.to_mdp_policy(&sys).unwrap();
        let back = PmPolicy::from_mdp_policy(&sys, &mdp).unwrap();
        assert_eq!(p, back);
    }

    #[test]
    fn new_rejects_invalid_destinations() {
        let sys = paper_system();
        // Active mode commanded to sleep in a stable state: constraint (1).
        let mut dests: Vec<usize> = sys.states().iter().map(SysState::mode).collect();
        let i = sys.index_of(SysState::Stable { mode: 0, jobs: 2 }).unwrap();
        dests[i] = 2;
        assert!(PmPolicy::new(&sys, dests).is_err());
        assert!(PmPolicy::new(&sys, vec![0; 3]).is_err());
    }

    #[test]
    fn command_rejects_foreign_state() {
        let sys = paper_system();
        let p = PmPolicy::greedy(&sys).unwrap();
        assert!(p
            .command(
                &sys,
                SysState::Transfer {
                    mode: 2,
                    departing: 1
                }
            )
            .is_err());
    }

    #[test]
    fn display_shows_destinations() {
        let sys = paper_system();
        let p = PmPolicy::greedy(&sys).unwrap();
        assert!(p.to_string().starts_with("PmPolicy["));
    }
}

#[cfg(test)]
mod describe_tests {
    use super::*;
    use crate::{SpModel, SrModel};

    #[test]
    fn describe_renders_every_state() {
        let sys = PmSystem::builder()
            .provider(SpModel::dac99_server().unwrap())
            .requestor(SrModel::poisson(0.2).unwrap())
            .capacity(2)
            .build()
            .unwrap();
        let text = PmPolicy::greedy(&sys).unwrap().describe(&sys).unwrap();
        assert_eq!(text.lines().count(), sys.n_states());
        assert!(text.contains("(sleeping, q1)"));
        assert!(text.contains("-> active"));
        assert!(text.contains("stay"));
        assert!(text.contains("q1->0"));
    }

    #[test]
    fn describe_validates_length() {
        let sys = PmSystem::builder()
            .provider(SpModel::dac99_server().unwrap())
            .requestor(SrModel::poisson(0.2).unwrap())
            .capacity(2)
            .build()
            .unwrap();
        let other = PmSystem::builder()
            .provider(SpModel::dac99_server().unwrap())
            .requestor(SrModel::poisson(0.2).unwrap())
            .capacity(3)
            .build()
            .unwrap();
        let policy = PmPolicy::greedy(&other).unwrap();
        assert!(policy.describe(&sys).is_err());
    }
}

impl PmPolicy {
    /// Serializes the policy as a portable text table, one `state;command`
    /// line per system state, with a header recording the system shape for
    /// validation on load:
    ///
    /// ```text
    /// dpm-policy v1 modes=3 capacity=5
    /// stable;0;0;active
    /// ...
    /// transfer;0;1;sleeping
    /// ```
    ///
    /// The format is what a deployed power manager consumes — mode labels
    /// are included for human review but only the indices are authoritative.
    ///
    /// # Errors
    ///
    /// Returns [`DpmError::InvalidPolicy`] if the policy does not match
    /// `system`.
    pub fn to_table(&self, system: &PmSystem) -> Result<String, DpmError> {
        if self.destinations.len() != system.n_states() {
            return Err(DpmError::InvalidPolicy {
                reason: format!(
                    "policy covers {} states, system has {}",
                    self.destinations.len(),
                    system.n_states()
                ),
            });
        }
        use std::fmt::Write as _;
        let sp = system.provider();
        let mut out = format!(
            "dpm-policy v1 modes={} capacity={}\n",
            sp.n_modes(),
            system.capacity()
        );
        for (i, &state) in system.states().iter().enumerate() {
            let dest = self.destinations[i];
            match state {
                SysState::Stable { mode, jobs } => {
                    let _ = writeln!(out, "stable;{mode};{jobs};{}", sp.label(dest));
                }
                SysState::Transfer { mode, departing } => {
                    let _ = writeln!(out, "transfer;{mode};{departing};{}", sp.label(dest));
                }
            }
        }
        Ok(out)
    }

    /// Parses a policy previously written by [`PmPolicy::to_table`],
    /// validating it against `system` (shape header, state coverage, mode
    /// labels and the action-validity constraints).
    ///
    /// # Errors
    ///
    /// Returns [`DpmError::InvalidPolicy`] on any malformed line, shape
    /// mismatch, unknown label, missing state or constraint violation.
    pub fn from_table(system: &PmSystem, text: &str) -> Result<Self, DpmError> {
        let sp = system.provider();
        let mut lines = text.lines();
        let header = lines.next().ok_or_else(|| DpmError::InvalidPolicy {
            reason: "empty policy table".to_owned(),
        })?;
        let expected_header = format!(
            "dpm-policy v1 modes={} capacity={}",
            sp.n_modes(),
            system.capacity()
        );
        if header.trim() != expected_header {
            return Err(DpmError::InvalidPolicy {
                reason: format!("header mismatch: got '{header}', expected '{expected_header}'"),
            });
        }
        let label_index = |label: &str| -> Result<usize, DpmError> {
            (0..sp.n_modes())
                .find(|&m| sp.label(m) == label)
                .ok_or_else(|| DpmError::InvalidPolicy {
                    reason: format!("unknown mode label '{label}'"),
                })
        };
        let mut destinations: Vec<Option<usize>> = vec![None; system.n_states()];
        for (line_no, line) in lines.enumerate() {
            let line = line.trim();
            if line.is_empty() {
                continue;
            }
            let parts: Vec<&str> = line.split(';').collect();
            if parts.len() != 4 {
                return Err(DpmError::InvalidPolicy {
                    reason: format!("line {}: expected 4 fields", line_no + 2),
                });
            }
            let parse = |field: &str| -> Result<usize, DpmError> {
                field.parse().map_err(|_| DpmError::InvalidPolicy {
                    reason: format!("line {}: bad number '{field}'", line_no + 2),
                })
            };
            let state = match parts[0] {
                "stable" => SysState::Stable {
                    mode: parse(parts[1])?,
                    jobs: parse(parts[2])?,
                },
                "transfer" => SysState::Transfer {
                    mode: parse(parts[1])?,
                    departing: parse(parts[2])?,
                },
                other => {
                    return Err(DpmError::InvalidPolicy {
                        reason: format!("line {}: unknown state kind '{other}'", line_no + 2),
                    })
                }
            };
            let index = system
                .index_of(state)
                .ok_or_else(|| DpmError::InvalidPolicy {
                    reason: format!("line {}: state {state} not in the system", line_no + 2),
                })?;
            if destinations[index].is_some() {
                return Err(DpmError::InvalidPolicy {
                    reason: format!("line {}: duplicate entry for {state}", line_no + 2),
                });
            }
            destinations[index] = Some(label_index(parts[3])?);
        }
        let complete: Option<Vec<usize>> = destinations.into_iter().collect();
        let Some(destinations) = complete else {
            return Err(DpmError::InvalidPolicy {
                reason: "policy table does not cover every system state".to_owned(),
            });
        };
        PmPolicy::new(system, destinations)
    }
}

#[cfg(test)]
mod table_io_tests {
    use super::*;
    use crate::{SpModel, SrModel};

    fn paper_system() -> PmSystem {
        PmSystem::builder()
            .provider(SpModel::dac99_server().unwrap())
            .requestor(SrModel::poisson(1.0 / 6.0).unwrap())
            .capacity(5)
            .build()
            .unwrap()
    }

    #[test]
    fn round_trips_every_named_policy() {
        let sys = paper_system();
        for policy in [
            PmPolicy::greedy(&sys).unwrap(),
            PmPolicy::always_on(&sys, 0).unwrap(),
            PmPolicy::n_policy(&sys, 3, 2).unwrap(),
        ] {
            let text = policy.to_table(&sys).unwrap();
            let back = PmPolicy::from_table(&sys, &text).unwrap();
            assert_eq!(policy, back);
        }
    }

    #[test]
    fn header_shape_is_validated() {
        let sys = paper_system();
        let other = PmSystem::builder()
            .provider(SpModel::dac99_server().unwrap())
            .requestor(SrModel::poisson(1.0 / 6.0).unwrap())
            .capacity(4)
            .build()
            .unwrap();
        let text = PmPolicy::greedy(&other).unwrap().to_table(&other).unwrap();
        assert!(PmPolicy::from_table(&sys, &text).is_err());
    }

    #[test]
    fn malformed_tables_are_rejected() {
        let sys = paper_system();
        let good = PmPolicy::greedy(&sys).unwrap().to_table(&sys).unwrap();
        assert!(PmPolicy::from_table(&sys, "").is_err());
        // Drop one body line: incomplete coverage.
        let missing: Vec<&str> = good.lines().take(sys.n_states()).collect();
        assert!(PmPolicy::from_table(&sys, &missing.join("\n")).is_err());
        // Duplicate a body line.
        let mut dup: Vec<&str> = good.lines().collect();
        dup.push(dup[1]);
        assert!(PmPolicy::from_table(&sys, &dup.join("\n")).is_err());
        // Corrupt a label.
        let corrupt = good.replace("sleeping", "hibernate");
        assert!(PmPolicy::from_table(&sys, &corrupt).is_err());
        // Corrupt a field count.
        let corrupt = good.replacen("stable;0;0;", "stable;0;0;x;", 1);
        assert!(PmPolicy::from_table(&sys, &corrupt).is_err());
    }

    #[test]
    fn loaded_policy_respects_constraints() {
        // Hand-craft a table commanding an illegal switch: active -> sleep
        // in a stable state. from_table must reject it even though the
        // syntax is fine.
        let sys = paper_system();
        let good = PmPolicy::greedy(&sys).unwrap().to_table(&sys).unwrap();
        let bad = good.replacen("stable;0;0;active", "stable;0;0;sleeping", 1);
        assert!(PmPolicy::from_table(&sys, &bad).is_err());
    }
}
