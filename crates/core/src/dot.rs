//! Graphviz (DOT) export of the models — reproducing the paper's Figure 1
//! (SP Markov process) and Figure 2 (SQ/SYS Markov process) as render-ready
//! graphs.

use std::fmt::Write as _;

use crate::{DpmError, PmPolicy, PmSystem, SpModel, SysState};

/// Renders the service-provider model under a fixed command per mode (the
/// paper's Figure 1 shows the policy `{<A, wait>, <W, sleep>, <S, wakeup>}`).
///
/// `commands[mode]` is the destination mode commanded while in `mode`;
/// self-commands draw no edge (self-loops are omitted, as in the paper).
///
/// # Errors
///
/// Returns [`DpmError::InvalidPolicy`] if `commands` has the wrong length
/// or names an impossible switch.
pub fn sp_to_dot(sp: &SpModel, commands: &[usize]) -> Result<String, DpmError> {
    if commands.len() != sp.n_modes() {
        return Err(DpmError::InvalidPolicy {
            reason: format!("{} commands for {} modes", commands.len(), sp.n_modes()),
        });
    }
    let mut out = String::new();
    out.push_str("digraph sp {\n  rankdir=LR;\n");
    for m in 0..sp.n_modes() {
        let shape = if sp.is_active(m) {
            "doublecircle"
        } else {
            "circle"
        };
        let _ = writeln!(
            out,
            "  m{m} [label=\"{}\\npow={}W\" shape={shape}];",
            sp.label(m),
            sp.power(m)
        );
    }
    for (m, &dest) in commands.iter().enumerate() {
        if dest == m {
            continue;
        }
        if dest >= sp.n_modes() || !sp.can_switch(m, dest) {
            return Err(DpmError::InvalidPolicy {
                reason: format!("impossible switch {m} -> {dest}"),
            });
        }
        let _ = writeln!(
            out,
            "  m{m} -> m{dest} [label=\"chi={:.3}\"];",
            sp.switch_rate(m, dest)
        );
    }
    out.push_str("}\n");
    Ok(out)
}

/// Renders the composed system under `policy`: stable states as circles,
/// transfer states as boxes, transition rates as edge labels (Figure 2
/// generalized to the full SYS process). Self-loops are omitted.
///
/// # Errors
///
/// Propagates policy validation failures.
pub fn system_to_dot(system: &PmSystem, policy: &PmPolicy) -> Result<String, DpmError> {
    let mdp_policy = policy.to_mdp_policy(system)?;
    let mut out = String::new();
    out.push_str("digraph sys {\n  rankdir=LR;\n");
    for (i, &state) in system.states().iter().enumerate() {
        let label = describe(system, state);
        let shape = if state.is_transfer() { "box" } else { "circle" };
        let _ = writeln!(out, "  x{i} [label=\"{label}\" shape={shape}];");
    }
    for i in 0..system.n_states() {
        for (to, rate) in system.transitions(i, mdp_policy.action(i)) {
            let _ = writeln!(out, "  x{i} -> x{to} [label=\"{rate:.3}\"];");
        }
    }
    out.push_str("}\n");
    Ok(out)
}

fn describe(system: &PmSystem, state: SysState) -> String {
    let sp = system.provider();
    match state {
        SysState::Stable { mode, jobs } => format!("{}, q{jobs}", sp.label(mode)),
        SysState::Transfer { mode, departing } => {
            format!("{}, q{departing}->{}", sp.label(mode), departing - 1)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{SpModel, SrModel};

    #[test]
    fn sp_dot_reproduces_figure_1_policy() {
        let sp = SpModel::dac99_server().unwrap();
        // Figure 1: active -> waiting, waiting -> sleeping, sleeping -> active.
        let dot = sp_to_dot(&sp, &[1, 2, 0]).unwrap();
        assert!(dot.contains("digraph sp"));
        assert!(dot.contains("m0 -> m1"));
        assert!(dot.contains("m1 -> m2"));
        assert!(dot.contains("m2 -> m0"));
        assert!(dot.contains("active"));
    }

    #[test]
    fn sp_dot_validates_commands() {
        let sp = SpModel::dac99_server().unwrap();
        assert!(sp_to_dot(&sp, &[0, 0]).is_err());
        assert!(sp_to_dot(&sp, &[5, 0, 0]).is_err());
    }

    #[test]
    fn system_dot_contains_transfer_boxes() {
        let sys = PmSystem::builder()
            .provider(SpModel::dac99_server().unwrap())
            .requestor(SrModel::poisson(0.2).unwrap())
            .capacity(2)
            .build()
            .unwrap();
        let dot = system_to_dot(&sys, &PmPolicy::greedy(&sys).unwrap()).unwrap();
        assert!(dot.contains("shape=box"));
        assert!(dot.contains("shape=circle"));
        assert!(dot.contains("->"));
    }
}
