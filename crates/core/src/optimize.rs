//! Policy optimization (paper Section IV).
//!
//! Three entry points:
//!
//! * [`optimal_policy`] — minimize `C_pow + w · C_sq` for one weight `w`
//!   by policy iteration (the paper's Figure 3 workflow);
//! * [`sweep`] — trace the power/performance frontier by sweeping `w`
//!   (how the paper generates its Figure 4 curve);
//! * [`constrained_policy`] / [`constrained_lp`] — minimize power subject
//!   to `E[C_sq] ≤ D_M`: the former searches the weight by bisection over
//!   deterministic policies, the latter solves the occupation-measure LP
//!   exactly (possibly randomized).

use dpm_mdp::average;

use crate::{DpmError, PmPolicy, PmSystem, PolicyMetrics};

/// A solved policy-optimization instance.
#[derive(Debug, Clone, PartialEq)]
pub struct OptimalSolution {
    policy: PmPolicy,
    metrics: PolicyMetrics,
    weight: f64,
    iterations: usize,
    eval_residual: f64,
    eval_secs: Vec<f64>,
}

impl OptimalSolution {
    /// The optimal policy.
    #[must_use]
    pub fn policy(&self) -> &PmPolicy {
        &self.policy
    }

    /// Long-run metrics of the optimal policy.
    #[must_use]
    pub fn metrics(&self) -> &PolicyMetrics {
        &self.metrics
    }

    /// The performance weight the policy was optimized for.
    #[must_use]
    pub fn weight(&self) -> f64 {
        self.weight
    }

    /// Policy-iteration rounds used.
    #[must_use]
    pub fn iterations(&self) -> usize {
        self.iterations
    }

    /// Worst-case residual of the gain/bias evaluation equations at the
    /// converged policy (a solver-quality diagnostic).
    #[must_use]
    pub fn eval_residual(&self) -> f64 {
        self.eval_residual
    }

    /// Wall-clock seconds spent in each policy-evaluation round.
    #[must_use]
    pub fn eval_timings(&self) -> &[f64] {
        &self.eval_secs
    }
}

/// Finds the policy minimizing `C_pow + weight · C_sq` by policy iteration.
///
/// # Errors
///
/// Returns [`DpmError::InvalidModel`] for a bad weight and propagates
/// solver failures.
///
/// # Examples
///
/// ```
/// use dpm_core::{optimize, PmSystem, SpModel, SrModel};
///
/// # fn main() -> Result<(), dpm_core::DpmError> {
/// let system = PmSystem::builder()
///     .provider(SpModel::dac99_server()?)
///     .requestor(SrModel::poisson(1.0 / 6.0)?)
///     .capacity(5)
///     .build()?;
/// // Heavier weight on delay -> shorter queue, more power.
/// let patient = optimize::optimal_policy(&system, 0.1)?;
/// let eager = optimize::optimal_policy(&system, 50.0)?;
/// assert!(eager.metrics().queue_length() <= patient.metrics().queue_length());
/// assert!(eager.metrics().power() >= patient.metrics().power());
/// # Ok(())
/// # }
/// ```
pub fn optimal_policy(system: &PmSystem, weight: f64) -> Result<OptimalSolution, DpmError> {
    let mdp = system.ctmdp(weight)?;
    let options = average::Options::default();
    // Start from a policy that commands a wake-up everywhere it is legal:
    // its chain funnels every state into the active service loop, so it is
    // unichain — the safe starting point for Howard's algorithm. (The
    // min-cost default start is "stay everywhere", whose chain decomposes
    // into one class per mode.)
    let initial =
        PmPolicy::always_on(system, fastest_active_mode(system))?.to_mdp_policy(system)?;
    let solution =
        average::policy_iteration_multichain(&mdp, initial, &options).map_err(DpmError::Mdp)?;
    let policy = PmPolicy::from_mdp_policy(system, solution.policy())?;
    let metrics = system.evaluate(&policy)?;
    Ok(OptimalSolution {
        policy,
        metrics,
        weight,
        iterations: solution.iterations(),
        eval_residual: solution.eval_residual(),
        eval_secs: solution.eval_timings().to_vec(),
    })
}

fn fastest_active_mode(system: &PmSystem) -> usize {
    let sp = system.provider();
    sp.active_modes()
        .into_iter()
        .max_by(|&a, &b| {
            sp.service_rate(a)
                .partial_cmp(&sp.service_rate(b))
                // dpm-lint: allow(no_panic, reason = "rates are validated finite when the model is constructed")
                .expect("finite rates")
        })
        // dpm-lint: allow(no_panic, reason = "SpModel validation guarantees an active mode")
        .expect("provider has an active mode")
}

/// Solves for every weight in `weights`, returning the frontier in input
/// order.
///
/// # Errors
///
/// Propagates the first per-weight failure.
pub fn sweep(system: &PmSystem, weights: &[f64]) -> Result<Vec<OptimalSolution>, DpmError> {
    weights.iter().map(|&w| optimal_policy(system, w)).collect()
}

/// Minimizes average power subject to `E[#requests] ≤ max_queue_length`,
/// searching the performance weight by bisection over deterministic
/// policy-iteration solutions.
///
/// The returned solution is the cheapest deterministic policy found that
/// satisfies the constraint. Because deterministic frontiers are step
/// functions, the exact constrained optimum may need randomization — see
/// [`constrained_lp`] for the exact (possibly randomized) answer.
///
/// # Errors
///
/// Returns [`DpmError::ConstraintUnsatisfiable`] if even an arbitrarily
/// delay-averse weight cannot meet the bound.
pub fn constrained_policy(
    system: &PmSystem,
    max_queue_length: f64,
) -> Result<OptimalSolution, DpmError> {
    if !(max_queue_length > 0.0 && max_queue_length.is_finite()) {
        return Err(DpmError::InvalidModel {
            reason: format!("queue-length bound {max_queue_length} must be positive"),
        });
    }
    // Establish a feasible upper weight.
    let mut w_hi = 1.0;
    let mut best: Option<OptimalSolution> = None;
    for _ in 0..40 {
        let candidate = optimal_policy(system, w_hi)?;
        if candidate.metrics().queue_length() <= max_queue_length {
            best = Some(candidate);
            break;
        }
        w_hi *= 4.0;
    }
    let Some(mut best) = best else {
        return Err(DpmError::ConstraintUnsatisfiable {
            bound: max_queue_length,
        });
    };
    // If the unconstrained (w = 0) solution already satisfies the bound it
    // is optimal for power.
    let unconstrained = optimal_policy(system, 0.0)?;
    if unconstrained.metrics().queue_length() <= max_queue_length {
        return Ok(unconstrained);
    }
    // Bisect for the smallest satisfying weight (smaller weight = lower
    // power among satisfying policies).
    let mut lo = 0.0;
    let mut hi = best.weight();
    for _ in 0..60 {
        let mid = 0.5 * (lo + hi);
        let candidate = optimal_policy(system, mid)?;
        if candidate.metrics().queue_length() <= max_queue_length {
            if candidate.metrics().power() <= best.metrics().power() {
                best = candidate;
            }
            hi = mid;
        } else {
            lo = mid;
        }
        if hi - lo < 1e-9 * (1.0 + hi) {
            break;
        }
    }
    Ok(best)
}

/// Result of the exact constrained LP solve.
#[derive(Debug, Clone, PartialEq)]
pub struct ConstrainedLpSolution {
    policy: dpm_mdp::RandomizedPolicy,
    power: f64,
    queue_length: f64,
}

impl ConstrainedLpSolution {
    /// The optimal stationary policy (randomized in at most one state).
    #[must_use]
    pub fn policy(&self) -> &dpm_mdp::RandomizedPolicy {
        &self.policy
    }

    /// Optimal average power.
    #[must_use]
    pub fn power(&self) -> f64 {
        self.power
    }

    /// Average queue length attained (≤ the bound).
    #[must_use]
    pub fn queue_length(&self) -> f64 {
        self.queue_length
    }
}

/// Minimizes average power subject to `E[#requests] ≤ max_queue_length`
/// exactly, via the occupation-measure LP (paper Section IV, first
/// formulation). The optimum may randomize between two mode commands in
/// one state.
///
/// # Errors
///
/// Returns [`DpmError::ConstraintUnsatisfiable`] for an unattainable bound
/// and propagates LP failures.
pub fn constrained_lp(
    system: &PmSystem,
    max_queue_length: f64,
) -> Result<ConstrainedLpSolution, DpmError> {
    if !(max_queue_length > 0.0 && max_queue_length.is_finite()) {
        return Err(DpmError::InvalidModel {
            reason: format!("queue-length bound {max_queue_length} must be positive"),
        });
    }
    // The occupation-measure LP mixes every rate in one constraint matrix,
    // so the default 1e6 instantaneous-switch surrogate would dominate its
    // conditioning. Re-posing the model with a gentler surrogate costs the
    // same O(μ/rate) modeling error the surrogate always has, while keeping
    // the simplex accurate.
    let lp_system = system
        .to_builder()
        .instant_rate(1_000.0 * system.provider().max_rate())
        .build()?;
    let mdp = lp_system.ctmdp(0.0)?; // cost = power only
    let delay = lp_system.delay_costs();
    match dpm_mdp::lp::solve_constrained_average(&mdp, &delay, max_queue_length) {
        Ok(solution) => {
            let queue_length = solution.average_of(&delay);
            Ok(ConstrainedLpSolution {
                power: solution.average_cost(),
                queue_length,
                policy: solution.policy().clone(),
            })
        }
        Err(dpm_mdp::MdpError::Infeasible) => Err(DpmError::ConstraintUnsatisfiable {
            bound: max_queue_length,
        }),
        Err(e) => Err(DpmError::Mdp(e)),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{SpModel, SrModel};

    fn paper_system() -> PmSystem {
        PmSystem::builder()
            .provider(SpModel::dac99_server().unwrap())
            .requestor(SrModel::poisson(1.0 / 6.0).unwrap())
            .capacity(5)
            .build()
            .unwrap()
    }

    #[test]
    fn optimal_frontier_lies_below_every_n_policy() {
        // The paper's headline claim (Figure 4): the optimal power-delay
        // curve lies on or below the N-policy points. In weighted-cost
        // terms: at EVERY weight, the weighted optimum is at least as cheap
        // as every N-policy — i.e. no N-policy point lies below the lower
        // convex hull of the optimal frontier.
        let sys = paper_system();
        let weights = [0.02, 0.05, 0.1, 0.5, 1.0, 1.5, 2.0, 5.0, 20.0, 60.0, 100.0];
        let frontier = sweep(&sys, &weights).unwrap();
        for n in 1..=5 {
            let np = sys
                .evaluate(&PmPolicy::n_policy(&sys, n, 2).unwrap())
                .unwrap();
            for opt in &frontier {
                let w = opt.weight();
                let opt_cost = opt.metrics().power() + w * opt.metrics().queue_length();
                let np_cost = np.power() + w * np.queue_length();
                assert!(
                    opt_cost <= np_cost + 1e-6,
                    "N = {n}, w = {w}: optimal {opt_cost} vs N-policy {np_cost}"
                );
            }
        }
        // Concrete domination spot check: the greedy N = 1 policy wakes the
        // moment anything arrives, which the weighted optimum at w ~ 60
        // strictly beats (same latency at lower power).
        let np1 = sys
            .evaluate(&PmPolicy::n_policy(&sys, 1, 2).unwrap())
            .unwrap();
        let dominated = frontier.iter().any(|opt| {
            opt.metrics().power() <= np1.power()
                && opt.metrics().queue_length() <= np1.queue_length() + 1e-6
        });
        assert!(
            dominated,
            "N = 1 (power {:.3}, queue {:.3}) not dominated",
            np1.power(),
            np1.queue_length()
        );
    }

    #[test]
    fn frontier_is_monotone_in_weight() {
        let sys = paper_system();
        let frontier = sweep(&sys, &[0.05, 0.5, 5.0, 50.0]).unwrap();
        for pair in frontier.windows(2) {
            assert!(pair[1].metrics().queue_length() <= pair[0].metrics().queue_length() + 1e-9);
            assert!(pair[1].metrics().power() >= pair[0].metrics().power() - 1e-9);
        }
    }

    #[test]
    fn optimal_policy_beats_heuristics_on_weighted_cost() {
        let sys = paper_system();
        let w = 1.0;
        let opt = optimal_policy(&sys, w).unwrap();
        let opt_cost = opt.metrics().power() + w * opt.metrics().queue_length();
        for heuristic in [
            PmPolicy::greedy(&sys).unwrap(),
            PmPolicy::always_on(&sys, 0).unwrap(),
            PmPolicy::n_policy(&sys, 3, 2).unwrap(),
        ] {
            let m = sys.evaluate(&heuristic).unwrap();
            let cost = m.power() + w * m.queue_length();
            assert!(
                opt_cost <= cost + 1e-7,
                "optimal {opt_cost} worse than heuristic {cost}"
            );
        }
    }

    #[test]
    fn constrained_policy_meets_bound() {
        let sys = paper_system();
        let bound = 1.0;
        let sol = constrained_policy(&sys, bound).unwrap();
        assert!(sol.metrics().queue_length() <= bound + 1e-9);
        // And saves power versus always-on.
        let on = sys
            .evaluate(&PmPolicy::always_on(&sys, 0).unwrap())
            .unwrap();
        assert!(sol.metrics().power() < on.power());
    }

    #[test]
    fn constrained_lp_is_at_least_as_good_as_bisection() {
        let sys = paper_system();
        let bound = 1.0;
        let deterministic = constrained_policy(&sys, bound).unwrap();
        let exact = constrained_lp(&sys, bound).unwrap();
        assert!(exact.queue_length() <= bound + 1e-6);
        assert!(exact.power() <= deterministic.metrics().power() + 1e-6);
    }

    #[test]
    fn unattainable_bound_is_reported() {
        let sys = paper_system();
        assert!(matches!(
            constrained_lp(&sys, 1e-6),
            Err(DpmError::ConstraintUnsatisfiable { .. })
        ));
        assert!(constrained_policy(&sys, -1.0).is_err());
        assert!(constrained_lp(&sys, f64::NAN).is_err());
    }

    #[test]
    fn zero_weight_minimizes_power_only() {
        let sys = paper_system();
        let sol = optimal_policy(&sys, 0.0).unwrap();
        // Pure power minimization sleeps as much as the forced-wakeup rule
        // allows: far below always-on, and no frontier point is cheaper.
        assert!(sol.metrics().power() < 10.0);
        for w in [0.5, 2.0, 20.0] {
            let other = optimal_policy(&sys, w).unwrap();
            assert!(other.metrics().power() >= sol.metrics().power() - 1e-9);
        }
    }

    #[test]
    fn iterations_are_reported() {
        let sys = paper_system();
        let sol = optimal_policy(&sys, 0.5).unwrap();
        assert!(sol.iterations() >= 1);
        assert_eq!(sol.weight(), 0.5);
        // Convergence diagnostics ride along with the solution.
        assert!(sol.eval_residual() < 1e-8);
        assert_eq!(sol.eval_timings().len(), sol.iterations());
    }
}
