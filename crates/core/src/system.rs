//! Composition of the power-managed system (SYS) from SP, SR and SQ.

use std::fmt;

use dpm_mdp::Ctmdp;

use crate::{DpmError, SpModel, SrModel};

/// Default surrogate rate standing in for the conceptually instantaneous
/// self-switch `χ(s, s) = ∞` in transfer states. See
/// [`PmSystemBuilder::instant_rate`].
pub const DEFAULT_INSTANT_RATE: f64 = 1.0e6;

/// One state of the composed system.
///
/// The state space is `S × Q_stable ∪ S_active × Q_transfer` (paper
/// Section III):
///
/// * `Stable { mode, jobs }` — the SQ holds `jobs` requests (including the
///   one in service, if any) and the SP sits in `mode`;
/// * `Transfer { mode, departing }` — the SQ transfer state `q_{i→i-1}`
///   with `i = departing`: a request's service just completed while `i`
///   requests were in the system, the SP (which was serving in the active
///   `mode`) is switching to the mode the power manager commanded, and
///   `i − 1` requests remain physically present.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum SysState {
    /// A stable queue state `q_jobs` with the SP in `mode`.
    Stable {
        /// Current SP mode.
        mode: usize,
        /// Requests in the system, `0..=Q`.
        jobs: usize,
    },
    /// A transfer state `q_{departing → departing-1}` entered at a
    /// service-completion epoch.
    Transfer {
        /// The active mode the SP occupied when service completed.
        mode: usize,
        /// The transfer label `i` (requests in system at completion),
        /// `1..=Q`.
        departing: usize,
    },
}

impl SysState {
    /// The SP mode associated with this state.
    #[must_use]
    pub fn mode(&self) -> usize {
        match *self {
            SysState::Stable { mode, .. } | SysState::Transfer { mode, .. } => mode,
        }
    }

    /// Number of requests physically present (the paper's delay cost
    /// `C_sq`): `jobs` for a stable state, `departing − 1` for a transfer
    /// state.
    #[must_use]
    pub fn requests_present(&self) -> usize {
        match *self {
            SysState::Stable { jobs, .. } => jobs,
            SysState::Transfer { departing, .. } => departing - 1,
        }
    }

    /// Returns `true` for transfer states.
    #[must_use]
    pub fn is_transfer(&self) -> bool {
        matches!(self, SysState::Transfer { .. })
    }
}

impl fmt::Display for SysState {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match *self {
            SysState::Stable { mode, jobs } => write!(f, "(m{mode}, q{jobs})"),
            SysState::Transfer { mode, departing } => {
                write!(f, "(m{mode}, q{departing}->{})", departing - 1)
            }
        }
    }
}

/// The composed power-managed system: a controllable Markov process over
/// [`SysState`]s whose actions are target SP modes, with the paper's
/// action-validity constraints applied and the cost structure of
/// Eqn. (3.1) attached.
///
/// # Examples
///
/// ```
/// use dpm_core::{PmSystem, SpModel, SrModel};
///
/// # fn main() -> Result<(), dpm_core::DpmError> {
/// let system = PmSystem::builder()
///     .provider(SpModel::dac99_server()?)
///     .requestor(SrModel::poisson(1.0 / 6.0)?)
///     .capacity(5)
///     .build()?;
/// // 3 modes x 6 stable queue states + 1 active mode x 5 transfer states.
/// assert_eq!(system.n_states(), 3 * 6 + 1 * 5);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct PmSystem {
    sp: SpModel,
    sr: SrModel,
    capacity: usize,
    instant_rate: f64,
    states: Vec<SysState>,
    /// Valid destination modes per state (the action sets `A_x`).
    action_dests: Vec<Vec<usize>>,
    /// Power cost rate per state per action (parallel to `action_dests`).
    power_cost: Vec<Vec<f64>>,
    /// Delay cost per state (requests present).
    delay_cost: Vec<f64>,
}

impl PmSystem {
    /// Starts building a system.
    #[must_use]
    pub fn builder() -> PmSystemBuilder {
        PmSystemBuilder::default()
    }

    /// The provider model.
    #[must_use]
    pub fn provider(&self) -> &SpModel {
        &self.sp
    }

    /// The requestor model.
    #[must_use]
    pub fn requestor(&self) -> &SrModel {
        &self.sr
    }

    /// Queue capacity `Q`.
    #[must_use]
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// The surrogate rate used for instantaneous self-switches.
    #[must_use]
    pub fn instant_rate(&self) -> f64 {
        self.instant_rate
    }

    /// Number of composed states.
    #[must_use]
    pub fn n_states(&self) -> usize {
        self.states.len()
    }

    /// The state with the given index.
    ///
    /// # Panics
    ///
    /// Panics if `index` is out of range.
    #[must_use]
    pub fn state(&self, index: usize) -> SysState {
        self.states[index]
    }

    /// All states in index order.
    #[must_use]
    pub fn states(&self) -> &[SysState] {
        &self.states
    }

    /// Index of a state, or `None` if it is not part of the state space
    /// (e.g. a transfer state for an inactive mode).
    #[must_use]
    pub fn index_of(&self, state: SysState) -> Option<usize> {
        let s = self.sp.n_modes();
        let q = self.capacity;
        match state {
            SysState::Stable { mode, jobs } if mode < s && jobs <= q => Some(mode * (q + 1) + jobs),
            SysState::Transfer { mode, departing }
                if mode < s && self.sp.is_active(mode) && (1..=q).contains(&departing) =>
            {
                let active_pos = self
                    .sp
                    .active_modes()
                    .iter()
                    .position(|&a| a == mode)
                    // dpm-lint: allow(no_panic, reason = "the mode was checked active immediately above")
                    .expect("mode checked active");
                Some(s * (q + 1) + active_pos * q + (departing - 1))
            }
            _ => None,
        }
    }

    /// Valid destination modes (the action set `A_x`) for the state at
    /// `index`.
    ///
    /// # Panics
    ///
    /// Panics if `index` is out of range.
    #[must_use]
    pub fn action_destinations(&self, index: usize) -> &[usize] {
        &self.action_dests[index]
    }

    /// Power cost rate `C_pow(x, a)` for the state at `index` under the
    /// `action`-th valid destination.
    ///
    /// # Panics
    ///
    /// Panics if either index is out of range.
    #[must_use]
    pub fn power_cost(&self, index: usize, action: usize) -> f64 {
        self.power_cost[index][action]
    }

    /// Delay cost `C_sq(x)` (requests present) for the state at `index`.
    ///
    /// # Panics
    ///
    /// Panics if `index` is out of range.
    #[must_use]
    pub fn delay_cost(&self, index: usize) -> f64 {
        self.delay_cost[index]
    }

    /// Per-state delay costs as a plain vector (for constrained LP solves).
    #[must_use]
    pub fn delay_costs(&self) -> Vec<f64> {
        self.delay_cost.clone()
    }

    /// Off-diagonal transition rates out of state `index` under the
    /// `action`-th valid destination, as `(target_index, rate)` pairs.
    ///
    /// # Panics
    ///
    /// Panics if either index is out of range.
    #[must_use]
    pub fn transitions(&self, index: usize, action: usize) -> Vec<(usize, f64)> {
        let dest = self.action_dests[index][action];
        let lambda = self.sr.rate();
        let q = self.capacity;
        let mut out = Vec::new();
        match self.states[index] {
            SysState::Stable { mode, jobs } => {
                if jobs < q {
                    let to = self
                        .index_of(SysState::Stable {
                            mode,
                            jobs: jobs + 1,
                        })
                        // dpm-lint: allow(no_panic, reason = "the target state was inserted during the state-space enumeration above")
                        .expect("arrival target exists");
                    out.push((to, lambda));
                }
                let mu = self.sp.service_rate(mode);
                if mu > 0.0 && jobs >= 1 {
                    let to = self
                        .index_of(SysState::Transfer {
                            mode,
                            departing: jobs,
                        })
                        // dpm-lint: allow(no_panic, reason = "the target state was inserted during the state-space enumeration above")
                        .expect("transfer target exists");
                    out.push((to, mu));
                }
                if dest != mode {
                    let to = self
                        .index_of(SysState::Stable { mode: dest, jobs })
                        // dpm-lint: allow(no_panic, reason = "the target state was inserted during the state-space enumeration above")
                        .expect("switch target exists");
                    out.push((to, self.sp.switch_rate(mode, dest)));
                }
            }
            SysState::Transfer { mode, departing } => {
                if departing < q {
                    let to = self
                        .index_of(SysState::Transfer {
                            mode,
                            departing: departing + 1,
                        })
                        // dpm-lint: allow(no_panic, reason = "the target state was inserted during the state-space enumeration above")
                        .expect("transfer arrival target exists");
                    out.push((to, lambda));
                }
                let rate = if dest == mode {
                    self.instant_rate
                } else {
                    self.sp.switch_rate(mode, dest)
                };
                let to = self
                    .index_of(SysState::Stable {
                        mode: dest,
                        jobs: departing - 1,
                    })
                    // dpm-lint: allow(no_panic, reason = "the target state was inserted during the state-space enumeration above")
                    .expect("completion target exists");
                out.push((to, rate));
            }
        }
        out
    }

    /// Builds the CTMDP with total cost rate
    /// `Cost(x, a) = C_pow(x, a) + weight · C_sq(x)` (Eqn. 3.1).
    ///
    /// # Errors
    ///
    /// Returns [`DpmError::InvalidModel`] for a negative or non-finite
    /// weight, and propagates CTMDP construction failures.
    pub fn ctmdp(&self, weight: f64) -> Result<Ctmdp, DpmError> {
        if !(weight >= 0.0 && weight.is_finite()) {
            return Err(DpmError::InvalidModel {
                reason: format!("performance weight {weight} must be finite and >= 0"),
            });
        }
        let mut b = Ctmdp::builder(self.n_states());
        for index in 0..self.n_states() {
            for (action, &dest) in self.action_dests[index].iter().enumerate() {
                let cost = self.power_cost[index][action] + weight * self.delay_cost[index];
                let rates = self.transitions(index, action);
                let label = format!("->{}", self.sp.label(dest));
                b.action(index, label, cost, &rates)
                    .map_err(DpmError::Mdp)?;
            }
        }
        b.build().map_err(DpmError::Mdp)
    }

    /// Returns a builder pre-populated with this system's components —
    /// the supported way to re-pose a system with different parameters
    /// (most commonly [`PmSystemBuilder::instant_rate`]).
    ///
    /// # Examples
    ///
    /// ```
    /// use dpm_core::{PmSystem, SpModel, SrModel};
    ///
    /// # fn main() -> Result<(), dpm_core::DpmError> {
    /// let system = PmSystem::builder()
    ///     .provider(SpModel::dac99_server()?)
    ///     .requestor(SrModel::poisson(1.0 / 6.0)?)
    ///     .capacity(5)
    ///     .build()?;
    /// let gentler = system.to_builder().instant_rate(1e3).build()?;
    /// assert_eq!(gentler.n_states(), system.n_states());
    /// assert_eq!(gentler.instant_rate(), 1e3);
    /// # Ok(())
    /// # }
    /// ```
    #[must_use]
    pub fn to_builder(&self) -> PmSystemBuilder {
        PmSystemBuilder {
            sp: Some(self.sp.clone()),
            sr: Some(self.sr),
            capacity: Some(self.capacity),
            instant_rate: Some(self.instant_rate),
        }
    }

    /// Index of the canonical initial state: empty queue with the SP in its
    /// fastest active mode. Long-run metrics of multichain policies are
    /// reported from here.
    #[must_use]
    pub fn initial_state_index(&self) -> usize {
        let sp = &self.sp;
        let mode = sp
            .active_modes()
            .into_iter()
            .max_by(|&a, &b| {
                sp.service_rate(a)
                    .partial_cmp(&sp.service_rate(b))
                    // dpm-lint: allow(no_panic, reason = "rates are validated finite when the model is constructed")
                    .expect("finite rates")
            })
            // dpm-lint: allow(no_panic, reason = "SpModel validation guarantees an active mode")
            .expect("provider has an active mode");
        self.index_of(SysState::Stable { mode, jobs: 0 })
            // dpm-lint: allow(no_panic, reason = "the initial state was inserted during the state-space enumeration above")
            .expect("initial state exists")
    }

    /// Per-state indicator of "arrivals are lost here" (queue full),
    /// scaled by `λ` — its long-run average is the request loss rate.
    #[must_use]
    pub fn loss_rate_costs(&self) -> Vec<f64> {
        self.states
            .iter()
            .map(|s| match *s {
                SysState::Stable { jobs, .. } if jobs == self.capacity => self.sr.rate(),
                SysState::Transfer { departing, .. } if departing == self.capacity => {
                    self.sr.rate()
                }
                _ => 0.0,
            })
            .collect()
    }
}

impl fmt::Display for PmSystem {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "PmSystem: {} modes x capacity {} -> {} states (lambda = {})",
            self.sp.n_modes(),
            self.capacity,
            self.n_states(),
            self.sr.rate()
        )
    }
}

/// Builder for [`PmSystem`].
#[derive(Debug, Clone, Default)]
pub struct PmSystemBuilder {
    sp: Option<SpModel>,
    sr: Option<SrModel>,
    capacity: Option<usize>,
    instant_rate: Option<f64>,
}

impl PmSystemBuilder {
    /// Sets the service-provider model.
    #[must_use]
    pub fn provider(mut self, sp: SpModel) -> Self {
        self.sp = Some(sp);
        self
    }

    /// Sets the service-requestor model.
    #[must_use]
    pub fn requestor(mut self, sr: SrModel) -> Self {
        self.sr = Some(sr);
        self
    }

    /// Sets the queue capacity `Q` (≥ 1). Requests arriving at a full
    /// queue are lost.
    #[must_use]
    pub fn capacity(mut self, q: usize) -> Self {
        self.capacity = Some(q);
        self
    }

    /// Overrides the surrogate rate used for the conceptually instantaneous
    /// self-switch in transfer states (`χ(s, s) = ∞` in the paper).
    ///
    /// The default [`DEFAULT_INSTANT_RATE`] puts about `μ / rate` of
    /// stationary probability mass in such states (≈10⁻⁶ for the paper's
    /// parameters), far below both simulation noise and the paper's
    /// reported model-vs-simulation agreement.
    ///
    /// # When solvers re-pose the surrogate
    ///
    /// The surrogate is a stiffness knob: the model error of lowering it is
    /// always `O(μ / rate)`, but some solvers cannot tolerate a 1e6-rate
    /// outlier among O(1) rates. Two situations re-pose the model through
    /// [`PmSystem::to_builder`] with a gentler rate:
    ///
    /// * [`crate::optimize::constrained_lp`] does so internally (to
    ///   `1000 × max_rate`), because the occupation-measure LP mixes every
    ///   rate into one constraint matrix and the default surrogate would
    ///   dominate its conditioning;
    /// * callers selecting an iterative evaluation backend
    ///   (`dpm_mdp::average::EvalBackend::SparseIterative`, or
    ///   `dpm_ctmc::stationary::Method::Power`) should lower it themselves
    ///   (e.g. to `1e2`), because uniformization-based sweeps take
    ///   `O(instant_rate / slowest_rate)` iterations to mix. The
    ///   Gauss–Seidel balance-equation solver behind
    ///   `dpm_ctmc::stationary::Method::Iterative` relaxes each state
    ///   against its own exit rate and needs no re-posing.
    #[must_use]
    pub fn instant_rate(mut self, rate: f64) -> Self {
        self.instant_rate = Some(rate);
        self
    }

    /// Composes and validates the system.
    ///
    /// # Errors
    ///
    /// Returns [`DpmError::InvalidModel`] if a component is missing, the
    /// capacity is zero, the instant rate is not positive, or some state
    /// would end up with an empty action set.
    pub fn build(self) -> Result<PmSystem, DpmError> {
        let sp = self.sp.ok_or_else(|| DpmError::InvalidModel {
            reason: "provider model is required".to_owned(),
        })?;
        let sr = self.sr.ok_or_else(|| DpmError::InvalidModel {
            reason: "requestor model is required".to_owned(),
        })?;
        let capacity = self.capacity.ok_or_else(|| DpmError::InvalidModel {
            reason: "queue capacity is required".to_owned(),
        })?;
        if capacity == 0 {
            return Err(DpmError::InvalidModel {
                reason: "queue capacity must be at least 1".to_owned(),
            });
        }
        let instant_rate = self.instant_rate.unwrap_or(DEFAULT_INSTANT_RATE);
        if !(instant_rate > 0.0 && instant_rate.is_finite()) {
            return Err(DpmError::InvalidModel {
                reason: format!("instant rate {instant_rate} must be positive and finite"),
            });
        }
        if instant_rate <= sp.max_rate() {
            return Err(DpmError::InvalidModel {
                reason: format!(
                    "instant rate {instant_rate} must exceed every model rate ({})",
                    sp.max_rate()
                ),
            });
        }

        // Enumerate states: all (mode, jobs) stable, then transfer states
        // for active modes.
        let s = sp.n_modes();
        let mut states = Vec::with_capacity(s * (capacity + 1));
        for mode in 0..s {
            for jobs in 0..=capacity {
                states.push(SysState::Stable { mode, jobs });
            }
        }
        for &mode in &sp.active_modes() {
            for departing in 1..=capacity {
                states.push(SysState::Transfer { mode, departing });
            }
        }

        // Action sets under the paper's validity constraints.
        let mut action_dests = Vec::with_capacity(states.len());
        let mut power_cost = Vec::with_capacity(states.len());
        let mut delay_cost = Vec::with_capacity(states.len());
        for &state in &states {
            let mut dests = Vec::new();
            match state {
                SysState::Stable { mode, jobs } => {
                    // Constraint (2), strengthened as the paper's rationale
                    // demands ("the service speed cannot follow the
                    // generation speed... we need to increase the service
                    // speed", and the claim that the constraints make every
                    // policy's chain connected): at q_Q an inactive provider
                    // may not idle — it must switch to an active mode or to
                    // an inactive mode with strictly shorter wakeup time.
                    let forced_wakeup = jobs == capacity && !sp.is_active(mode);
                    for dest in 0..s {
                        if dest == mode {
                            if !forced_wakeup {
                                dests.push(dest);
                            }
                            continue;
                        }
                        if sp.switch_rate(mode, dest) <= 0.0 {
                            continue;
                        }
                        // Constraint (1): no active -> inactive switches in
                        // stable states.
                        if sp.is_active(mode) && !sp.is_active(dest) {
                            continue;
                        }
                        // Constraint (2): at q_Q, no inactive -> inactive
                        // switch to a (weakly) longer-wakeup mode.
                        if forced_wakeup
                            && !sp.is_active(dest)
                            && sp.wakeup_time(dest) >= sp.wakeup_time(mode)
                        {
                            continue;
                        }
                        dests.push(dest);
                    }
                }
                SysState::Transfer { mode, departing } => {
                    for dest in 0..s {
                        if dest == mode {
                            dests.push(dest);
                            continue;
                        }
                        if sp.switch_rate(mode, dest) <= 0.0 {
                            continue;
                        }
                        // Constraint (3): at q_{Q -> Q-1}, no switch to a
                        // slower active mode.
                        if departing == capacity
                            && sp.is_active(dest)
                            && sp.service_rate(dest) < sp.service_rate(mode)
                        {
                            continue;
                        }
                        dests.push(dest);
                    }
                }
            }
            if dests.is_empty() {
                return Err(DpmError::InvalidModel {
                    reason: format!("state {state} has an empty action set"),
                });
            }
            let costs: Vec<f64> = dests
                .iter()
                .map(|&dest| {
                    let mode = state.mode();
                    let mut c = sp.power(mode);
                    if dest != mode {
                        c += sp.switch_rate(mode, dest) * sp.switch_energy(mode, dest);
                    }
                    c
                })
                .collect();
            power_cost.push(costs);
            delay_cost.push(state.requests_present() as f64);
            action_dests.push(dests);
        }

        Ok(PmSystem {
            sp,
            sr,
            capacity,
            instant_rate,
            states,
            action_dests,
            power_cost,
            delay_cost,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn paper_system() -> PmSystem {
        PmSystem::builder()
            .provider(SpModel::dac99_server().unwrap())
            .requestor(SrModel::poisson(1.0 / 6.0).unwrap())
            .capacity(5)
            .build()
            .unwrap()
    }

    #[test]
    fn state_space_matches_paper_structure() {
        let sys = paper_system();
        // S * (Q+1) stable + |S_active| * Q transfer = 18 + 5.
        assert_eq!(sys.n_states(), 23);
        assert_eq!(sys.capacity(), 5);
        let full = SysState::Stable { mode: 2, jobs: 5 };
        assert_eq!(sys.state(sys.index_of(full).unwrap()), full);
        // No transfer states for inactive modes.
        assert_eq!(
            sys.index_of(SysState::Transfer {
                mode: 2,
                departing: 1
            }),
            None
        );
        assert_eq!(
            sys.index_of(SysState::Transfer {
                mode: 0,
                departing: 6
            }),
            None
        );
    }

    #[test]
    fn index_round_trips() {
        let sys = paper_system();
        for i in 0..sys.n_states() {
            assert_eq!(sys.index_of(sys.state(i)), Some(i), "state {i}");
        }
    }

    #[test]
    fn requests_present_counts() {
        assert_eq!(SysState::Stable { mode: 0, jobs: 3 }.requests_present(), 3);
        assert_eq!(
            SysState::Transfer {
                mode: 0,
                departing: 3
            }
            .requests_present(),
            2
        );
    }

    #[test]
    fn constraint_1_blocks_active_to_inactive_in_stable_states() {
        let sys = paper_system();
        for jobs in 0..=5 {
            let i = sys.index_of(SysState::Stable { mode: 0, jobs }).unwrap();
            let dests = sys.action_destinations(i);
            assert!(dests.contains(&0), "self always valid");
            assert!(!dests.contains(&1), "active->waiting forbidden at q{jobs}");
            assert!(!dests.contains(&2), "active->sleeping forbidden at q{jobs}");
        }
    }

    #[test]
    fn constraint_2_blocks_deeper_sleep_when_full() {
        let sys = paper_system();
        // waiting (wakeup 0.5) at q_Q: cannot go to sleeping (wakeup 1.1),
        // and cannot idle — it must wake.
        let i = sys.index_of(SysState::Stable { mode: 1, jobs: 5 }).unwrap();
        assert!(!sys.action_destinations(i).contains(&2));
        assert!(!sys.action_destinations(i).contains(&1));
        assert_eq!(sys.action_destinations(i), &[0]);
        // but at q < Q it can.
        let i = sys.index_of(SysState::Stable { mode: 1, jobs: 4 }).unwrap();
        assert!(sys.action_destinations(i).contains(&2));
        // sleeping at q_Q may move to waiting (shorter wakeup).
        let i = sys.index_of(SysState::Stable { mode: 2, jobs: 5 }).unwrap();
        assert!(sys.action_destinations(i).contains(&1));
        // and wakeup is always allowed.
        assert!(sys.action_destinations(i).contains(&0));
    }

    #[test]
    fn transfer_states_allow_sleep_commands() {
        let sys = paper_system();
        let i = sys
            .index_of(SysState::Transfer {
                mode: 0,
                departing: 1,
            })
            .unwrap();
        let dests = sys.action_destinations(i);
        assert!(dests.contains(&0));
        assert!(dests.contains(&1));
        assert!(dests.contains(&2));
    }

    #[test]
    fn constraint_3_single_active_mode_is_vacuous() {
        // With one active mode there is no slower active mode to forbid.
        let sys = paper_system();
        let i = sys
            .index_of(SysState::Transfer {
                mode: 0,
                departing: 5,
            })
            .unwrap();
        assert_eq!(sys.action_destinations(i).len(), 3);
    }

    #[test]
    fn stable_transitions_race_arrival_service_switch() {
        let sys = paper_system();
        // waiting with 2 jobs, action -> active.
        let i = sys.index_of(SysState::Stable { mode: 1, jobs: 2 }).unwrap();
        let action = sys
            .action_destinations(i)
            .iter()
            .position(|&d| d == 0)
            .unwrap();
        let ts = sys.transitions(i, action);
        // arrival + switch (no service in an inactive mode).
        assert_eq!(ts.len(), 2);
        let arrival = sys.index_of(SysState::Stable { mode: 1, jobs: 3 }).unwrap();
        let switched = sys.index_of(SysState::Stable { mode: 0, jobs: 2 }).unwrap();
        let rate_of = |target: usize| {
            ts.iter()
                .find(|&&(t, _)| t == target)
                .map(|&(_, r)| r)
                .unwrap()
        };
        assert!((rate_of(arrival) - 1.0 / 6.0).abs() < 1e-12);
        assert!((rate_of(switched) - 1.0 / 0.5).abs() < 1e-12);
    }

    #[test]
    fn active_stable_service_enters_transfer() {
        let sys = paper_system();
        let i = sys.index_of(SysState::Stable { mode: 0, jobs: 3 }).unwrap();
        let ts = sys.transitions(i, 0); // only action: stay active
        let transfer = sys
            .index_of(SysState::Transfer {
                mode: 0,
                departing: 3,
            })
            .unwrap();
        let service = ts.iter().find(|&&(t, _)| t == transfer).unwrap();
        assert!((service.1 - 1.0 / 1.5).abs() < 1e-12);
    }

    #[test]
    fn transfer_self_action_uses_instant_rate() {
        let sys = paper_system();
        let i = sys
            .index_of(SysState::Transfer {
                mode: 0,
                departing: 2,
            })
            .unwrap();
        let stay = sys
            .action_destinations(i)
            .iter()
            .position(|&d| d == 0)
            .unwrap();
        let ts = sys.transitions(i, stay);
        let continuation = sys.index_of(SysState::Stable { mode: 0, jobs: 1 }).unwrap();
        let jump = ts.iter().find(|&&(t, _)| t == continuation).unwrap();
        assert_eq!(jump.1, DEFAULT_INSTANT_RATE);
    }

    #[test]
    fn arrivals_are_lost_when_full() {
        let sys = paper_system();
        // Full stable state: no arrival transition; the (forced) wake-up
        // switch is the only way out.
        let i = sys.index_of(SysState::Stable { mode: 2, jobs: 5 }).unwrap();
        let wake = sys
            .action_destinations(i)
            .iter()
            .position(|&d| d == 0)
            .unwrap();
        let ts = sys.transitions(i, wake);
        assert_eq!(ts.len(), 1, "only the mode switch leaves a full queue");
        // Full transfer state: only the completion edge.
        let i = sys
            .index_of(SysState::Transfer {
                mode: 0,
                departing: 5,
            })
            .unwrap();
        let stay = sys
            .action_destinations(i)
            .iter()
            .position(|&d| d == 0)
            .unwrap();
        assert_eq!(sys.transitions(i, stay).len(), 1);
    }

    #[test]
    fn power_costs_include_switching_energy() {
        let sys = paper_system();
        let i = sys.index_of(SysState::Stable { mode: 2, jobs: 1 }).unwrap();
        let dests = sys.action_destinations(i);
        let stay = dests.iter().position(|&d| d == 2).unwrap();
        let wake = dests.iter().position(|&d| d == 0).unwrap();
        assert!((sys.power_cost(i, stay) - 0.1).abs() < 1e-12);
        // pow + chi * ene = 0.1 + (1/1.1) * 11.
        assert!((sys.power_cost(i, wake) - (0.1 + 11.0 / 1.1)).abs() < 1e-12);
    }

    #[test]
    fn delay_costs_follow_requests_present() {
        let sys = paper_system();
        let stable = sys.index_of(SysState::Stable { mode: 0, jobs: 4 }).unwrap();
        assert_eq!(sys.delay_cost(stable), 4.0);
        let transfer = sys
            .index_of(SysState::Transfer {
                mode: 0,
                departing: 4,
            })
            .unwrap();
        assert_eq!(sys.delay_cost(transfer), 3.0);
    }

    #[test]
    fn loss_costs_mark_full_states() {
        let sys = paper_system();
        let costs = sys.loss_rate_costs();
        let full = sys.index_of(SysState::Stable { mode: 0, jobs: 5 }).unwrap();
        let almost = sys.index_of(SysState::Stable { mode: 0, jobs: 4 }).unwrap();
        assert!((costs[full] - 1.0 / 6.0).abs() < 1e-12);
        assert_eq!(costs[almost], 0.0);
        let t_full = sys
            .index_of(SysState::Transfer {
                mode: 0,
                departing: 5,
            })
            .unwrap();
        assert!((costs[t_full] - 1.0 / 6.0).abs() < 1e-12);
    }

    #[test]
    fn ctmdp_weight_shifts_costs() {
        let sys = paper_system();
        let m0 = sys.ctmdp(0.0).unwrap();
        let m1 = sys.ctmdp(2.0).unwrap();
        let i = sys.index_of(SysState::Stable { mode: 0, jobs: 3 }).unwrap();
        let c0 = m0.actions(i)[0].cost_rate();
        let c1 = m1.actions(i)[0].cost_rate();
        assert!((c1 - c0 - 6.0).abs() < 1e-12);
        assert!(sys.ctmdp(-1.0).is_err());
        assert!(sys.ctmdp(f64::NAN).is_err());
    }

    #[test]
    fn builder_validations() {
        let sp = SpModel::dac99_server().unwrap();
        let sr = SrModel::poisson(0.2).unwrap();
        assert!(PmSystem::builder()
            .requestor(sr)
            .capacity(2)
            .build()
            .is_err());
        assert!(PmSystem::builder()
            .provider(sp.clone())
            .capacity(2)
            .build()
            .is_err());
        assert!(PmSystem::builder()
            .provider(sp.clone())
            .requestor(sr)
            .build()
            .is_err());
        assert!(PmSystem::builder()
            .provider(sp.clone())
            .requestor(sr)
            .capacity(0)
            .build()
            .is_err());
        assert!(PmSystem::builder()
            .provider(sp.clone())
            .requestor(sr)
            .capacity(2)
            .instant_rate(0.5) // below model rates
            .build()
            .is_err());
        assert!(PmSystem::builder()
            .provider(sp)
            .requestor(sr)
            .capacity(2)
            .instant_rate(f64::INFINITY)
            .build()
            .is_err());
    }

    #[test]
    fn display_summarizes() {
        let text = paper_system().to_string();
        assert!(text.contains("23 states"));
    }
}
