//! The service-provider (SP) model: a multi-mode power-managed device.

use std::fmt;

use dpm_linalg::DMatrix;

use crate::DpmError;

/// One power mode of the service provider.
#[derive(Debug, Clone, PartialEq)]
struct Mode {
    label: String,
    /// Service rate `μ(s)`; zero in inactive modes.
    service_rate: f64,
    /// Power draw `pow(s)` while occupying the mode (watts).
    power: f64,
}

/// The service provider: the paper's quadruple `(χ, μ(s), pow(s),
/// ene(s_i, s_j))` over a finite mode set.
///
/// Modes with `μ(s) > 0` are *active* (they can serve requests); modes with
/// `μ(s) = 0` are *inactive*. `χ[(i, j)]` is the switching *speed* from
/// mode `i` to mode `j` (the reciprocal of the average switching time);
/// a zero entry means the direct switch is impossible. Self-switches are
/// conceptually instantaneous (`χ[(s, s)] = ∞`) and are therefore not
/// stored.
///
/// # Examples
///
/// ```
/// use dpm_core::SpModel;
///
/// # fn main() -> Result<(), dpm_core::DpmError> {
/// let sp = SpModel::dac99_server()?;
/// assert_eq!(sp.n_modes(), 3);
/// assert_eq!(sp.label(0), "active");
/// assert!(sp.is_active(0));
/// assert!(!sp.is_active(2));
/// // Paper Eqn. (4.1)(a): switching active -> sleeping takes 0.2 s.
/// assert!((1.0 / sp.switch_rate(0, 2) - 0.2).abs() < 1e-12);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct SpModel {
    modes: Vec<Mode>,
    /// Switching rates `χ`; diagonal entries are zero placeholders.
    switch_rate: DMatrix,
    /// Switching energies `ene`; diagonal entries are zero.
    switch_energy: DMatrix,
}

impl SpModel {
    /// Starts building a provider model.
    #[must_use]
    pub fn builder() -> SpModelBuilder {
        SpModelBuilder::new()
    }

    /// The three-mode server of the paper's Section V: modes
    /// *active* (μ = 1/1.5, 40 W), *waiting* (15 W) and *sleeping*
    /// (0.1 W), with the switching-time matrix of Eqn. (4.1)(a) and the
    /// switching-energy matrix of Eqn. (4.1)(b).
    ///
    /// # Errors
    ///
    /// Never fails in practice; the signature is fallible because it runs
    /// the ordinary builder validation.
    pub fn dac99_server() -> Result<Self, DpmError> {
        let mut b = SpModel::builder();
        b.mode("active", 1.0 / 1.5, 40.0);
        b.mode("waiting", 0.0, 15.0);
        b.mode("sleeping", 0.0, 0.1);
        // Eqn. (4.1)(a): average switching times (seconds).
        b.switch_time(0, 1, 0.1)?.energy(0, 1, 0.2)?;
        b.switch_time(0, 2, 0.2)?.energy(0, 2, 0.5)?;
        b.switch_time(1, 0, 0.5)?.energy(1, 0, 1.0)?;
        b.switch_time(1, 2, 0.1)?.energy(1, 2, 0.1)?;
        b.switch_time(2, 0, 1.1)?.energy(2, 0, 11.0)?;
        b.switch_time(2, 1, 0.5)?.energy(2, 1, 25.0)?;
        b.build()
    }

    /// A dynamic-voltage-scaling-style server with **two active modes**
    /// (the paper's general model: "the SP has more than one working mode,
    /// therefore it can service the requests with more than one service
    /// speed"): *fast* (μ = 1, 50 W), *slow* (μ = 0.4, 18 W) and *sleep*
    /// (0.2 W).
    ///
    /// With two active speeds the action constraint (3) — no switch to a
    /// slower active mode at a full-queue transfer — becomes non-vacuous,
    /// and the optimizer trades speeds by load.
    ///
    /// # Errors
    ///
    /// Never fails in practice (builder validation only).
    pub fn dvs_server() -> Result<Self, DpmError> {
        let mut b = SpModel::builder();
        b.mode("fast", 1.0, 50.0);
        b.mode("slow", 0.4, 18.0);
        b.mode("sleep", 0.0, 0.2);
        b.switch_time(0, 1, 0.05)?.energy(0, 1, 0.1)?;
        b.switch_time(0, 2, 0.2)?.energy(0, 2, 0.6)?;
        b.switch_time(1, 0, 0.05)?.energy(1, 0, 0.2)?;
        b.switch_time(1, 2, 0.15)?.energy(1, 2, 0.3)?;
        b.switch_time(2, 0, 1.0)?.energy(2, 0, 9.0)?;
        b.switch_time(2, 1, 0.8)?.energy(2, 1, 6.0)?;
        b.build()
    }

    /// A four-mode disk-drive-style device (active / idle / standby /
    /// sleep) with one active mode, used by the `disk_drive` example.
    ///
    /// Parameters are in the style of published disk power specifications:
    /// deeper modes save more power but wake more slowly and at higher
    /// energy.
    ///
    /// # Errors
    ///
    /// Never fails in practice (builder validation only).
    pub fn disk_drive() -> Result<Self, DpmError> {
        let mut b = SpModel::builder();
        b.mode("active", 1.0 / 0.008, 2.3); // ~8 ms per request, 2.3 W
        b.mode("idle", 0.0, 0.9);
        b.mode("standby", 0.0, 0.35);
        b.mode("sleep", 0.0, 0.13);
        b.switch_time(0, 1, 0.001)?.energy(0, 1, 0.001)?;
        b.switch_time(0, 2, 0.3)?.energy(0, 2, 0.2)?;
        b.switch_time(0, 3, 0.8)?.energy(0, 3, 0.5)?;
        b.switch_time(1, 0, 0.004)?.energy(1, 0, 0.004)?;
        b.switch_time(1, 2, 0.25)?.energy(1, 2, 0.15)?;
        b.switch_time(1, 3, 0.7)?.energy(1, 3, 0.45)?;
        b.switch_time(2, 0, 1.2)?.energy(2, 0, 3.0)?;
        b.switch_time(2, 1, 1.0)?.energy(2, 1, 2.5)?;
        b.switch_time(2, 3, 0.3)?.energy(2, 3, 0.1)?;
        b.switch_time(3, 0, 2.8)?.energy(3, 0, 7.0)?;
        b.switch_time(3, 1, 2.5)?.energy(3, 1, 6.0)?;
        b.switch_time(3, 2, 1.5)?.energy(3, 2, 3.5)?;
        b.build()
    }

    /// Number of power modes `S`.
    #[must_use]
    pub fn n_modes(&self) -> usize {
        self.modes.len()
    }

    /// Label of mode `s`.
    ///
    /// # Panics
    ///
    /// Panics if `s` is out of range.
    #[must_use]
    pub fn label(&self, s: usize) -> &str {
        &self.modes[s].label
    }

    /// Service rate `μ(s)`.
    ///
    /// # Panics
    ///
    /// Panics if `s` is out of range.
    #[must_use]
    pub fn service_rate(&self, s: usize) -> f64 {
        self.modes[s].service_rate
    }

    /// Power draw `pow(s)` in watts.
    ///
    /// # Panics
    ///
    /// Panics if `s` is out of range.
    #[must_use]
    pub fn power(&self, s: usize) -> f64 {
        self.modes[s].power
    }

    /// Returns `true` if mode `s` can serve requests (`μ(s) > 0`).
    ///
    /// # Panics
    ///
    /// Panics if `s` is out of range.
    #[must_use]
    pub fn is_active(&self, s: usize) -> bool {
        self.modes[s].service_rate > 0.0
    }

    /// Indices of the active modes, ascending.
    #[must_use]
    pub fn active_modes(&self) -> Vec<usize> {
        (0..self.n_modes()).filter(|&s| self.is_active(s)).collect()
    }

    /// Indices of the inactive modes, ascending.
    #[must_use]
    pub fn inactive_modes(&self) -> Vec<usize> {
        (0..self.n_modes())
            .filter(|&s| !self.is_active(s))
            .collect()
    }

    /// Switching rate `χ(from, to)`; zero when the direct switch is
    /// impossible, and zero (by convention — conceptually infinite) on the
    /// diagonal.
    ///
    /// # Panics
    ///
    /// Panics if either index is out of range.
    #[must_use]
    pub fn switch_rate(&self, from: usize, to: usize) -> f64 {
        self.switch_rate[(from, to)]
    }

    /// Switching energy `ene(from, to)` in joules.
    ///
    /// # Panics
    ///
    /// Panics if either index is out of range.
    #[must_use]
    pub fn switch_energy(&self, from: usize, to: usize) -> f64 {
        self.switch_energy[(from, to)]
    }

    /// Returns `true` if the direct switch `from → to` exists (`χ > 0` or
    /// `from == to`).
    ///
    /// # Panics
    ///
    /// Panics if either index is out of range.
    #[must_use]
    pub fn can_switch(&self, from: usize, to: usize) -> bool {
        from == to || self.switch_rate[(from, to)] > 0.0
    }

    /// Wake-up time of mode `s`: the smallest average switching time from
    /// `s` into any *active* mode (`0` if `s` is itself active, infinite if
    /// no active mode is reachable directly). Used by the paper's action
    /// constraint (2).
    ///
    /// # Panics
    ///
    /// Panics if `s` is out of range.
    #[must_use]
    pub fn wakeup_time(&self, s: usize) -> f64 {
        if self.is_active(s) {
            return 0.0;
        }
        self.active_modes()
            .iter()
            .filter(|&&a| self.switch_rate[(s, a)] > 0.0)
            .map(|&a| 1.0 / self.switch_rate[(s, a)])
            .fold(f64::INFINITY, f64::min)
    }

    /// The fastest exit rate anywhere in the model (used to scale the
    /// instantaneous-self-switch surrogate rate).
    #[must_use]
    pub fn max_rate(&self) -> f64 {
        let switching = self.switch_rate.max_abs();
        let serving = self
            .modes
            .iter()
            .map(|m| m.service_rate)
            .fold(0.0, f64::max);
        switching.max(serving)
    }
}

impl fmt::Display for SpModel {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "SpModel ({} modes)", self.n_modes())?;
        for (i, m) in self.modes.iter().enumerate() {
            writeln!(
                f,
                "  {i}: {} (mu = {}, pow = {} W)",
                m.label, m.service_rate, m.power
            )?;
        }
        Ok(())
    }
}

/// Builder for [`SpModel`].
#[derive(Debug, Clone, Default)]
pub struct SpModelBuilder {
    modes: Vec<Mode>,
    switches: Vec<(usize, usize, f64)>,
    energies: Vec<(usize, usize, f64)>,
    last_pair: Option<(usize, usize)>,
}

impl SpModelBuilder {
    /// Creates an empty builder.
    #[must_use]
    pub fn new() -> Self {
        SpModelBuilder::default()
    }

    /// Adds a power mode with service rate `mu` and power draw `power`.
    /// Returns the new mode's index.
    pub fn mode(&mut self, label: impl Into<String>, mu: f64, power: f64) -> usize {
        self.modes.push(Mode {
            label: label.into(),
            service_rate: mu,
            power,
        });
        self.modes.len() - 1
    }

    /// Declares the switch `from → to` with the given average switching
    /// *time* (seconds); the stored rate is its reciprocal.
    ///
    /// # Errors
    ///
    /// Returns [`DpmError::InvalidModel`] for out-of-range modes,
    /// self-switches, or a non-positive time.
    pub fn switch_time(
        &mut self,
        from: usize,
        to: usize,
        time: f64,
    ) -> Result<&mut Self, DpmError> {
        if !(time > 0.0 && time.is_finite()) {
            return Err(DpmError::InvalidModel {
                reason: format!("switching time {time} from {from} to {to} must be positive"),
            });
        }
        self.switch_rate(from, to, 1.0 / time)
    }

    /// Declares the switch `from → to` with the given switching *rate*.
    ///
    /// # Errors
    ///
    /// As [`SpModelBuilder::switch_time`].
    pub fn switch_rate(
        &mut self,
        from: usize,
        to: usize,
        rate: f64,
    ) -> Result<&mut Self, DpmError> {
        if from >= self.modes.len() || to >= self.modes.len() {
            return Err(DpmError::InvalidModel {
                reason: format!(
                    "switch ({from}, {to}) out of range for {} declared modes",
                    self.modes.len()
                ),
            });
        }
        if from == to {
            return Err(DpmError::InvalidModel {
                reason: format!("self-switch at mode {from}: self-switches are instantaneous"),
            });
        }
        if !(rate > 0.0 && rate.is_finite()) {
            return Err(DpmError::InvalidModel {
                reason: format!("switching rate {rate} from {from} to {to} must be positive"),
            });
        }
        self.switches.push((from, to, rate));
        self.last_pair = Some((from, to));
        Ok(self)
    }

    /// Attaches the switching energy (joules) to the most recently declared
    /// switch when called as `b.switch_time(i, j, t)?.energy(i, j, e)?`, or
    /// to any explicit pair.
    ///
    /// # Errors
    ///
    /// Returns [`DpmError::InvalidModel`] for a negative or non-finite
    /// energy or a self pair.
    pub fn energy(&mut self, from: usize, to: usize, energy: f64) -> Result<&mut Self, DpmError> {
        if from == to {
            return Err(DpmError::InvalidModel {
                reason: format!("self-switch energy at mode {from}"),
            });
        }
        if !(energy >= 0.0 && energy.is_finite()) {
            return Err(DpmError::InvalidModel {
                reason: format!("switching energy {energy} must be finite and >= 0"),
            });
        }
        self.energies.push((from, to, energy));
        Ok(self)
    }

    /// Finalizes the model.
    ///
    /// # Errors
    ///
    /// Returns [`DpmError::InvalidModel`] if there is no active mode, a
    /// mode index is out of range, a rate/power is invalid, or an energy
    /// refers to an undeclared switch.
    pub fn build(self) -> Result<SpModel, DpmError> {
        let n = self.modes.len();
        if n == 0 {
            return Err(DpmError::InvalidModel {
                reason: "provider has no modes".to_owned(),
            });
        }
        for (i, m) in self.modes.iter().enumerate() {
            if !(m.service_rate >= 0.0 && m.service_rate.is_finite()) {
                return Err(DpmError::InvalidModel {
                    reason: format!("mode {i} has invalid service rate {}", m.service_rate),
                });
            }
            if !(m.power >= 0.0 && m.power.is_finite()) {
                return Err(DpmError::InvalidModel {
                    reason: format!("mode {i} has invalid power {}", m.power),
                });
            }
        }
        if !self.modes.iter().any(|m| m.service_rate > 0.0) {
            return Err(DpmError::InvalidModel {
                reason: "provider needs at least one active mode".to_owned(),
            });
        }
        let mut switch_rate = DMatrix::zeros(n, n);
        for (from, to, rate) in self.switches {
            if from >= n || to >= n {
                return Err(DpmError::InvalidModel {
                    reason: format!("switch ({from}, {to}) out of range for {n} modes"),
                });
            }
            switch_rate[(from, to)] = rate;
        }
        let mut switch_energy = DMatrix::zeros(n, n);
        for (from, to, energy) in self.energies {
            if from >= n || to >= n {
                return Err(DpmError::InvalidModel {
                    reason: format!("energy ({from}, {to}) out of range for {n} modes"),
                });
            }
            // dpm-lint: allow(float_eq, reason = "exact structural-zero test: a 0.0 switch rate means the transition is absent from the model")
            if switch_rate[(from, to)] == 0.0 {
                return Err(DpmError::InvalidModel {
                    reason: format!("energy declared for undeclared switch ({from}, {to})"),
                });
            }
            switch_energy[(from, to)] = energy;
        }
        Ok(SpModel {
            modes: self.modes,
            switch_rate,
            switch_energy,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dac99_matches_paper_parameters() {
        let sp = SpModel::dac99_server().unwrap();
        assert_eq!(sp.n_modes(), 3);
        assert!((sp.service_rate(0) - 1.0 / 1.5).abs() < 1e-12);
        assert_eq!(sp.power(0), 40.0);
        assert_eq!(sp.power(1), 15.0);
        assert_eq!(sp.power(2), 0.1);
        assert!((1.0 / sp.switch_rate(2, 0) - 1.1).abs() < 1e-12);
        assert_eq!(sp.switch_energy(2, 0), 11.0);
        assert_eq!(sp.switch_energy(2, 1), 25.0);
        assert_eq!(sp.active_modes(), vec![0]);
        assert_eq!(sp.inactive_modes(), vec![1, 2]);
    }

    #[test]
    fn wakeup_times_follow_switch_rates() {
        let sp = SpModel::dac99_server().unwrap();
        assert_eq!(sp.wakeup_time(0), 0.0);
        assert!((sp.wakeup_time(1) - 0.5).abs() < 1e-12);
        assert!((sp.wakeup_time(2) - 1.1).abs() < 1e-12);
    }

    #[test]
    fn can_switch_includes_self() {
        let sp = SpModel::dac99_server().unwrap();
        assert!(sp.can_switch(0, 0));
        assert!(sp.can_switch(0, 2));
    }

    #[test]
    fn missing_switch_is_impossible() {
        let mut b = SpModel::builder();
        b.mode("on", 1.0, 5.0);
        b.mode("off", 0.0, 0.0);
        b.switch_time(0, 1, 0.1).unwrap();
        // No way back on declared.
        let sp = b.build().unwrap();
        assert!(!sp.can_switch(1, 0));
        assert!(sp.wakeup_time(1).is_infinite());
    }

    #[test]
    fn builder_rejections() {
        let mut b = SpModel::builder();
        b.mode("on", 1.0, 5.0);
        assert!(b.switch_time(0, 0, 0.1).is_err());
        assert!(b.switch_time(0, 1, 0.1).is_err()); // out of range
        assert!(b.switch_time(0, 0, -1.0).is_err());
        assert!(b.energy(0, 0, 1.0).is_err());

        let mut b = SpModel::builder();
        b.mode("off", 0.0, 0.0);
        assert!(b.build().is_err()); // no active mode

        assert!(SpModel::builder().build().is_err()); // no modes

        let mut b = SpModel::builder();
        b.mode("on", 1.0, 5.0);
        b.mode("off", 0.0, 0.0);
        b.energy(0, 1, 1.0).unwrap();
        assert!(b.build().is_err()); // energy without declared switch
    }

    #[test]
    fn builder_rejects_bad_mode_parameters() {
        let mut b = SpModel::builder();
        b.mode("bad", -1.0, 5.0);
        assert!(b.build().is_err());
        let mut b = SpModel::builder();
        b.mode("bad", 1.0, f64::NAN);
        assert!(b.build().is_err());
    }

    #[test]
    fn disk_drive_preset_is_valid() {
        let sp = SpModel::disk_drive().unwrap();
        assert_eq!(sp.n_modes(), 4);
        assert_eq!(sp.active_modes(), vec![0]);
        // Deeper modes draw less power...
        assert!(sp.power(1) > sp.power(2));
        assert!(sp.power(2) > sp.power(3));
        // ...but wake more slowly.
        assert!(sp.wakeup_time(1) < sp.wakeup_time(2));
        assert!(sp.wakeup_time(2) < sp.wakeup_time(3));
    }

    #[test]
    fn max_rate_covers_service_and_switching() {
        let sp = SpModel::disk_drive().unwrap();
        assert!((sp.max_rate() - 1.0 / 0.001).abs() < 1e-9);
    }

    #[test]
    fn display_lists_modes() {
        let text = SpModel::dac99_server().unwrap().to_string();
        assert!(text.contains("active"));
        assert!(text.contains("sleeping"));
    }
}
