//! The "lumped" baseline model in the style of Paleologo et al. (DAC 1998).
//!
//! The paper criticizes the earlier discrete-time formulation for (a) not
//! distinguishing the busy and idle conditions of the provider and (b)
//! assuming the queue and provider evolve independently. This module
//! implements that weaker model *in continuous time* so the ablation (A2 in
//! DESIGN.md) isolates exactly those structural differences:
//!
//! * no transfer states — a service completion moves the queue directly
//!   from `q` to `q − 1`;
//! * the power manager may command any reachable mode in any state (no
//!   validity constraints), so a switch can interrupt an in-progress
//!   service;
//! * costs have the same `C_pow + w · C_sq` structure.
//!
//! A policy optimized on the lumped model can be mapped onto the full
//! transfer-state system with [`to_full_policy`] and then evaluated on the
//! accurate model or the simulator, quantifying the cost of the missing
//! structure.

use dpm_mdp::{average, Ctmdp, Policy};

use crate::{DpmError, PmPolicy, PmSystem, SysState};

/// The lumped controllable process: states are `(mode, jobs)` pairs indexed
/// `mode * (Q + 1) + jobs`.
#[derive(Debug, Clone, PartialEq)]
pub struct LumpedSystem {
    n_modes: usize,
    capacity: usize,
    sp_labels: Vec<String>,
    /// Fastest active mode — the unichain-safe initial command.
    wake_mode: usize,
    mdp_cache: LumpedPieces,
}

/// One lumped action: (destination mode, off-diagonal transitions, power).
type LumpedAction = (usize, Vec<(usize, f64)>, f64);

#[derive(Debug, Clone, PartialEq)]
struct LumpedPieces {
    /// Per state, per action.
    actions: Vec<Vec<LumpedAction>>,
    delay: Vec<f64>,
}

impl LumpedSystem {
    /// Derives the lumped model from a full system (same SP, SR and
    /// capacity).
    #[must_use]
    pub fn from_system(system: &PmSystem) -> Self {
        let sp = system.provider();
        let lambda = system.requestor().rate();
        let s = sp.n_modes();
        let q = system.capacity();
        let n = s * (q + 1);
        let index = |mode: usize, jobs: usize| mode * (q + 1) + jobs;

        let mut actions = Vec::with_capacity(n);
        let mut delay = Vec::with_capacity(n);
        for mode in 0..s {
            for jobs in 0..=q {
                let mut acts = Vec::new();
                // The lumped model drops the transfer states and the
                // "don't interrupt service" rule (its defining
                // deficiencies), but keeps the ergodicity rule at q_Q: an
                // inactive provider facing a full queue may not idle.
                // Without it, "asleep at a full queue" is absorbing and the
                // occupation-measure LP parks probability mass there as a
                // free low-power sink — a mixture over recurrent classes,
                // not an implementable policy.
                let forced_wakeup = jobs == q && !sp.is_active(mode);
                for dest in 0..s {
                    if dest != mode && sp.switch_rate(mode, dest) <= 0.0 {
                        continue;
                    }
                    if forced_wakeup
                        && (dest == mode
                            || (!sp.is_active(dest)
                                && sp.wakeup_time(dest) >= sp.wakeup_time(mode)))
                    {
                        continue;
                    }
                    let mut rates = Vec::new();
                    if jobs < q {
                        rates.push((index(mode, jobs + 1), lambda));
                    }
                    let mu = sp.service_rate(mode);
                    if mu > 0.0 && jobs >= 1 {
                        rates.push((index(mode, jobs - 1), mu));
                    }
                    let mut power = sp.power(mode);
                    if dest != mode {
                        let chi = sp.switch_rate(mode, dest);
                        rates.push((index(dest, jobs), chi));
                        power += chi * sp.switch_energy(mode, dest);
                    }
                    acts.push((dest, rates, power));
                }
                actions.push(acts);
                delay.push(jobs as f64);
            }
        }

        let wake_mode = sp
            .active_modes()
            .into_iter()
            .max_by(|&a, &b| {
                sp.service_rate(a)
                    .partial_cmp(&sp.service_rate(b))
                    // dpm-lint: allow(no_panic, reason = "rates are validated finite when the model is constructed")
                    .expect("finite rates")
            })
            // dpm-lint: allow(no_panic, reason = "SpModel validation guarantees an active mode")
            .expect("provider has an active mode");
        LumpedSystem {
            n_modes: s,
            capacity: q,
            sp_labels: (0..s).map(|m| sp.label(m).to_owned()).collect(),
            wake_mode,
            mdp_cache: LumpedPieces { actions, delay },
        }
    }

    /// Number of lumped states.
    #[must_use]
    pub fn n_states(&self) -> usize {
        self.n_modes * (self.capacity + 1)
    }

    /// Builds the lumped CTMDP for a performance weight.
    ///
    /// # Errors
    ///
    /// Returns [`DpmError::InvalidModel`] for a bad weight, and propagates
    /// construction failures.
    pub fn ctmdp(&self, weight: f64) -> Result<Ctmdp, DpmError> {
        if !(weight >= 0.0 && weight.is_finite()) {
            return Err(DpmError::InvalidModel {
                reason: format!("performance weight {weight} must be finite and >= 0"),
            });
        }
        let mut b = Ctmdp::builder(self.n_states());
        for (i, acts) in self.mdp_cache.actions.iter().enumerate() {
            for (dest, rates, power) in acts {
                b.action(
                    i,
                    format!("->{}", self.sp_labels[*dest]),
                    power + weight * self.mdp_cache.delay[i],
                    rates,
                )
                .map_err(DpmError::Mdp)?;
            }
        }
        b.build().map_err(DpmError::Mdp)
    }

    /// Optimizes the lumped model for `weight`, returning the per-state
    /// destination modes.
    ///
    /// # Errors
    ///
    /// Propagates CTMDP and solver failures.
    pub fn optimal_destinations(&self, weight: f64) -> Result<Vec<usize>, DpmError> {
        let mdp = self.ctmdp(weight)?;
        // Start from "command the wake mode everywhere possible": unichain,
        // unlike the min-cost "stay everywhere" default.
        let initial = Policy::new(
            self.mdp_cache
                .actions
                .iter()
                .map(|acts| {
                    acts.iter()
                        .position(|(dest, _, _)| *dest == self.wake_mode)
                        .unwrap_or(0)
                })
                .collect(),
        );
        let solution =
            average::policy_iteration_multichain(&mdp, initial, &average::Options::default())
                .map_err(DpmError::Mdp)?;
        Ok(self.destinations_of(solution.policy()))
    }

    /// Optimizes the lumped model as the DAC'98 formulation actually did:
    /// minimize power subject to an average-queue-length constraint, via
    /// the occupation-measure LP, rounding the (possibly randomized)
    /// optimum to its most probable deterministic policy.
    ///
    /// Without a performance constraint the lumped model's unconstrained
    /// optimum degenerates to "never serve" for small weights (nothing
    /// forces a wake-up in that formulation), so this is the meaningful
    /// baseline for comparisons.
    ///
    /// # Errors
    ///
    /// Returns [`DpmError::ConstraintUnsatisfiable`] for an unattainable
    /// bound and propagates LP failures.
    pub fn optimal_destinations_constrained(
        &self,
        max_queue_length: f64,
    ) -> Result<Vec<usize>, DpmError> {
        if !(max_queue_length > 0.0 && max_queue_length.is_finite()) {
            return Err(DpmError::InvalidModel {
                reason: format!("queue bound {max_queue_length} must be positive"),
            });
        }
        let mdp = self.ctmdp(0.0)?;
        match dpm_mdp::lp::solve_constrained_average(&mdp, &self.mdp_cache.delay, max_queue_length)
        {
            Ok(solution) => {
                let deterministic = solution.policy().to_deterministic();
                let mut destinations = self.destinations_of(&deterministic);
                // States the optimal occupation never visits got arbitrary
                // actions from the rounding. Repair them with a safe
                // default — wake when work is queued — so the deployed
                // policy has no absorbing "asleep with a full queue"
                // corners the LP never had to care about.
                for (i, acts) in self.mdp_cache.actions.iter().enumerate() {
                    let mass: f64 = solution.occupation()[i].iter().sum();
                    if mass > 1e-9 {
                        continue;
                    }
                    let jobs = i % (self.capacity + 1);
                    if jobs > 0 && acts.iter().any(|(d, _, _)| *d == self.wake_mode) {
                        destinations[i] = self.wake_mode;
                    }
                }
                Ok(destinations)
            }
            Err(dpm_mdp::MdpError::Infeasible) => Err(DpmError::ConstraintUnsatisfiable {
                bound: max_queue_length,
            }),
            Err(e) => Err(DpmError::Mdp(e)),
        }
    }

    fn destinations_of(&self, policy: &Policy) -> Vec<usize> {
        self.mdp_cache
            .actions
            .iter()
            .enumerate()
            .map(|(i, acts)| acts[policy.action(i)].0)
            .collect()
    }
}

/// Maps a lumped policy (per `(mode, jobs)` destination) onto the full
/// transfer-state system.
///
/// Stable states take the lumped command directly; a transfer state
/// `q_{i→i-1}` takes the lumped command of the post-departure state
/// `(mode, i−1)`. Commands that violate the full model's validity
/// constraints (e.g. putting an active server to sleep mid-queue) revert to
/// "stay" — precisely the implementability gap of the lumped formulation.
///
/// # Errors
///
/// Returns [`DpmError::InvalidPolicy`] if `destinations` has the wrong
/// length.
pub fn to_full_policy(system: &PmSystem, destinations: &[usize]) -> Result<PmPolicy, DpmError> {
    let q = system.capacity();
    let s = system.provider().n_modes();
    if destinations.len() != s * (q + 1) {
        return Err(DpmError::InvalidPolicy {
            reason: format!(
                "lumped policy covers {} states, expected {}",
                destinations.len(),
                s * (q + 1)
            ),
        });
    }
    let lumped_index = |mode: usize, jobs: usize| mode * (q + 1) + jobs;
    let full: Vec<usize> = system
        .states()
        .iter()
        .enumerate()
        .map(|(i, &state)| {
            let wanted = match state {
                SysState::Stable { mode, jobs } => destinations[lumped_index(mode, jobs)],
                SysState::Transfer { mode, departing } => {
                    destinations[lumped_index(mode, departing - 1)]
                }
            };
            let valid = system.action_destinations(i);
            if valid.contains(&wanted) {
                wanted
            } else if valid.contains(&state.mode()) {
                state.mode()
            } else {
                // Forced-wakeup state where the lumped command is invalid:
                // take the first legal command.
                valid[0]
            }
        })
        .collect();
    PmPolicy::new(system, full)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{optimize, SpModel, SrModel};

    fn paper_system() -> PmSystem {
        PmSystem::builder()
            .provider(SpModel::dac99_server().unwrap())
            .requestor(SrModel::poisson(1.0 / 6.0).unwrap())
            .capacity(5)
            .build()
            .unwrap()
    }

    #[test]
    fn lumped_state_space_has_no_transfer_states() {
        let sys = paper_system();
        let lumped = LumpedSystem::from_system(&sys);
        assert_eq!(lumped.n_states(), 18);
    }

    #[test]
    fn lumped_model_allows_unconstrained_commands() {
        let sys = paper_system();
        let lumped = LumpedSystem::from_system(&sys);
        let mdp = lumped.ctmdp(1.0).unwrap();
        // Active mode with jobs queued may still be commanded to sleep in
        // the lumped model (3 actions from the active mode).
        assert_eq!(mdp.actions(2).len(), 3); // (mode 0, jobs 2)
    }

    #[test]
    fn lumped_optimum_maps_onto_full_system() {
        let sys = paper_system();
        let lumped = LumpedSystem::from_system(&sys);
        let dests = lumped.optimal_destinations(0.5).unwrap();
        let mapped = to_full_policy(&sys, &dests).unwrap();
        let metrics = sys.evaluate(&mapped).unwrap();
        assert!(metrics.power() > 0.0);
    }

    #[test]
    fn accurate_model_never_loses_to_lumped_on_true_cost() {
        // Ablation A2: at the same weight, the policy optimized on the
        // accurate model must score at least as well on the accurate model
        // as the lumped policy mapped over.
        let sys = paper_system();
        let lumped = LumpedSystem::from_system(&sys);
        for w in [0.1, 0.5, 2.0] {
            let accurate = optimize::optimal_policy(&sys, w).unwrap();
            let accurate_cost = accurate.metrics().power() + w * accurate.metrics().queue_length();
            let mapped = to_full_policy(&sys, &lumped.optimal_destinations(w).unwrap()).unwrap();
            let m = sys.evaluate(&mapped).unwrap();
            let lumped_cost = m.power() + w * m.queue_length();
            assert!(
                accurate_cost <= lumped_cost + 1e-7,
                "w = {w}: accurate {accurate_cost} vs lumped {lumped_cost}"
            );
        }
    }

    #[test]
    fn to_full_policy_validates_length() {
        let sys = paper_system();
        assert!(to_full_policy(&sys, &[0; 3]).is_err());
    }

    #[test]
    fn lumped_rejects_bad_weight() {
        let sys = paper_system();
        let lumped = LumpedSystem::from_system(&sys);
        assert!(lumped.ctmdp(-1.0).is_err());
    }
}
