//! Analytic ("functional value") evaluation of power-management policies.
//!
//! Section V of the paper validates its stochastic model by comparing the
//! *functional values* of power and queue length — computed from the state
//! probabilities and state costs — against simulation. This module computes
//! those functional values: given a policy, the induced CTMC's long-run
//! averages of power, queue occupancy, request loss and mode-switch
//! frequency.

use std::fmt;

use dpm_ctmc::{stationary, Generator};
use dpm_linalg::DVector;

use crate::{DpmError, PmPolicy, PmSystem};

/// Long-run performance metrics of a policy.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PolicyMetrics {
    power: f64,
    queue_length: f64,
    loss_rate: f64,
    switch_frequency: f64,
    lambda: f64,
}

impl PolicyMetrics {
    /// Average power dissipation in watts, including switching energy
    /// (`C_pow` averaged over the stationary behavior).
    #[must_use]
    pub fn power(&self) -> f64 {
        self.power
    }

    /// Average number of requests present (`C_sq` averaged) — the paper's
    /// performance metric.
    #[must_use]
    pub fn queue_length(&self) -> f64 {
        self.queue_length
    }

    /// Average rate at which requests are lost to a full queue (per unit
    /// time).
    #[must_use]
    pub fn loss_rate(&self) -> f64 {
        self.loss_rate
    }

    /// Average rate of real (non-self) mode switches per unit time — a
    /// proxy for power-manager signal traffic, which the paper argues the
    /// asynchronous policy minimizes.
    #[must_use]
    pub fn switch_frequency(&self) -> f64 {
        self.switch_frequency
    }

    /// Offered request rate `λ`.
    #[must_use]
    pub fn lambda(&self) -> f64 {
        self.lambda
    }

    /// Accepted request throughput `λ − loss_rate`.
    #[must_use]
    pub fn effective_arrival_rate(&self) -> f64 {
        self.lambda - self.loss_rate
    }

    /// Average time an accepted request spends in the system, from
    /// Little's law `W = L / λ_eff` (the approximation Table 1 validates).
    #[must_use]
    pub fn waiting_time(&self) -> f64 {
        self.queue_length / self.effective_arrival_rate()
    }
}

impl fmt::Display for PolicyMetrics {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "power {:.3} W, queue {:.3}, wait {:.3} s, loss {:.4}/s, switches {:.4}/s",
            self.power,
            self.queue_length,
            self.waiting_time(),
            self.loss_rate,
            self.switch_frequency
        )
    }
}

impl PmSystem {
    /// Builds the generator matrix of the CTMC induced by `policy`.
    ///
    /// # Errors
    ///
    /// Returns [`DpmError::InvalidPolicy`] on mismatch and propagates
    /// generator validation.
    pub fn generator_for(&self, policy: &PmPolicy) -> Result<Generator, DpmError> {
        let mdp_policy = policy.to_mdp_policy(self)?;
        let mut b = Generator::builder(self.n_states());
        for i in 0..self.n_states() {
            for (to, rate) in self.transitions(i, mdp_policy.action(i)) {
                if rate > 0.0 {
                    b.add_rate(i, to, rate);
                }
            }
        }
        b.build().map_err(DpmError::Chain)
    }

    /// Builds the generator of the CTMC induced by `policy` directly in
    /// sparse (CSR) form, without materializing an `n × n` dense matrix.
    ///
    /// The SYS chain has at most three transitions per state (arrival,
    /// service completion, mode switch), so the sparse generator holds
    /// `O(n)` entries where the dense one holds `n²`. Feed the result to
    /// [`dpm_ctmc::stationary::Solver`] to compute stationary
    /// distributions of large-capacity systems entirely matrix-free.
    ///
    /// # Errors
    ///
    /// Returns [`DpmError::InvalidPolicy`] on mismatch and propagates
    /// generator validation.
    ///
    /// # Examples
    ///
    /// ```
    /// use dpm_core::{PmPolicy, PmSystem, SpModel, SrModel};
    /// use dpm_ctmc::stationary::{Method, Solver};
    ///
    /// # fn main() -> Result<(), Box<dyn std::error::Error>> {
    /// let system = PmSystem::builder()
    ///     .provider(SpModel::dac99_server()?)
    ///     .requestor(SrModel::poisson(1.0 / 6.0)?)
    ///     .capacity(5)
    ///     .build()?;
    /// let sparse = system.sparse_generator_for(&PmPolicy::greedy(&system)?)?;
    /// let (pi, _) = Solver::new(Method::Iterative).solve(&sparse)?;
    /// assert!((pi.sum() - 1.0).abs() < 1e-10);
    /// # Ok(())
    /// # }
    /// ```
    pub fn sparse_generator_for(
        &self,
        policy: &PmPolicy,
    ) -> Result<dpm_ctmc::SparseGenerator, DpmError> {
        let mdp_policy = policy.to_mdp_policy(self)?;
        // ~3 transitions per state: arrival, completion, commanded switch.
        let mut transitions = Vec::with_capacity(3 * self.n_states());
        for i in 0..self.n_states() {
            for (to, rate) in self.transitions(i, mdp_policy.action(i)) {
                if rate > 0.0 {
                    transitions.push((i, to, rate));
                }
            }
        }
        dpm_ctmc::SparseGenerator::from_transitions(self.n_states(), &transitions)
            .map_err(DpmError::Chain)
    }

    /// Computes the long-run metrics of `policy` analytically.
    ///
    /// Works for any policy whose induced chain is unichain (one recurrent
    /// class; transient states allowed), which covers every policy
    /// expressible in this model.
    ///
    /// # Errors
    ///
    /// Returns [`DpmError::InvalidPolicy`] on mismatch and propagates
    /// evaluation failures.
    ///
    /// # Examples
    ///
    /// ```
    /// use dpm_core::{PmPolicy, PmSystem, SpModel, SrModel};
    ///
    /// # fn main() -> Result<(), dpm_core::DpmError> {
    /// let system = PmSystem::builder()
    ///     .provider(SpModel::dac99_server()?)
    ///     .requestor(SrModel::poisson(1.0 / 6.0)?)
    ///     .capacity(5)
    ///     .build()?;
    /// let always_on = PmPolicy::always_on(&system, 0)?;
    /// let m = system.evaluate(&always_on)?;
    /// // Full power, M/M/1-like queue for rho = 0.25.
    /// assert!((m.power() - 40.0).abs() < 0.01);
    /// assert!(m.queue_length() < 1.0);
    /// # Ok(())
    /// # }
    /// ```
    pub fn evaluate(&self, policy: &PmPolicy) -> Result<PolicyMetrics, DpmError> {
        self.evaluate_from(policy, self.initial_state_index())
    }

    /// As [`PmSystem::evaluate`], but reporting long-run averages starting
    /// from an explicit state — the distinction matters for policies whose
    /// chain has several recurrent classes (e.g. "stay asleep forever at a
    /// full queue"), where the long-run behavior depends on where the
    /// system starts.
    ///
    /// # Errors
    ///
    /// Returns [`DpmError::InvalidPolicy`] for a bad start index or policy
    /// mismatch and propagates evaluation failures.
    pub fn evaluate_from(
        &self,
        policy: &PmPolicy,
        start: usize,
    ) -> Result<PolicyMetrics, DpmError> {
        if start >= self.n_states() {
            return Err(DpmError::InvalidPolicy {
                reason: format!("start index {start} out of range"),
            });
        }
        let generator = self.generator_for(policy)?;
        let mdp_policy = policy.to_mdp_policy(self)?;

        let power_costs = DVector::from_fn(self.n_states(), |i| {
            self.power_cost(i, mdp_policy.action(i))
        });
        let delay_costs = DVector::from_fn(self.n_states(), |i| self.delay_cost(i));
        let loss_costs = DVector::from_vec(self.loss_rate_costs());
        let switch_costs = DVector::from_fn(self.n_states(), |i| {
            let dest = policy.destination(i);
            let mode = self.state(i).mode();
            if dest == mode {
                // Transfer states with a self command complete instantly and
                // do not count as a switch; stable self commands are no-ops.
                0.0
            } else {
                self.provider().switch_rate(mode, dest)
            }
        });

        let power = stationary::gain_vector(&generator, &power_costs)?[start];
        let queue_length = stationary::gain_vector(&generator, &delay_costs)?[start];
        let loss_rate = stationary::gain_vector(&generator, &loss_costs)?[start];
        let switch_frequency = stationary::gain_vector(&generator, &switch_costs)?[start];

        Ok(PolicyMetrics {
            power,
            queue_length,
            loss_rate,
            switch_frequency,
            lambda: self.requestor().rate(),
        })
    }
}

impl PmSystem {
    /// Expected wake-up latency of `policy`: starting from the arrival
    /// that finds the system in inactive mode `from_mode` with an empty
    /// queue, the expected time until the provider occupies an active mode
    /// (a first-passage quantity on the induced chain).
    ///
    /// # Errors
    ///
    /// Returns [`DpmError::InvalidPolicy`] if `from_mode` is not an
    /// inactive mode, and propagates chain analysis failures. Returns
    /// infinity if the policy never wakes from that situation.
    pub fn wakeup_latency(&self, policy: &PmPolicy, from_mode: usize) -> Result<f64, DpmError> {
        let sp = self.provider();
        if from_mode >= sp.n_modes() || sp.is_active(from_mode) {
            return Err(DpmError::InvalidPolicy {
                reason: format!("mode {from_mode} is not an inactive mode"),
            });
        }
        let generator = self.generator_for(policy)?;
        let targets: Vec<usize> = (0..self.n_states())
            .filter(|&i| sp.is_active(self.state(i).mode()))
            .collect();
        let h = dpm_ctmc::hitting::expected_hitting_times(&generator, &targets)
            .map_err(DpmError::Chain)?;
        let start = self
            .index_of(crate::SysState::Stable {
                mode: from_mode,
                jobs: 1,
            })
            // dpm-lint: allow(no_panic, reason = "the state was enumerated by the same PmSystem that is being analyzed")
            .expect("stable state exists");
        Ok(h[start])
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{SpModel, SrModel};
    use dpm_ctmc::birth_death::Mm1k;

    fn paper_system() -> PmSystem {
        PmSystem::builder()
            .provider(SpModel::dac99_server().unwrap())
            .requestor(SrModel::poisson(1.0 / 6.0).unwrap())
            .capacity(5)
            .build()
            .unwrap()
    }

    #[test]
    fn always_on_matches_mm1k_closed_form() {
        let sys = paper_system();
        let policy = PmPolicy::always_on(&sys, 0).unwrap();
        let metrics = sys.evaluate(&policy).unwrap();
        let mm1k = Mm1k::new(1.0 / 6.0, 1.0 / 1.5, 5).unwrap();
        // Transfer states carry ~1e-6 extra mass; tolerate 1e-4.
        assert!(
            (metrics.queue_length() - mm1k.mean_customers()).abs() < 1e-4,
            "queue {} vs M/M/1/K {}",
            metrics.queue_length(),
            mm1k.mean_customers()
        );
        assert!((metrics.power() - 40.0).abs() < 1e-3);
        assert!((metrics.loss_rate() - mm1k.lambda() * mm1k.blocking_probability()).abs() < 1e-6);
        assert!(metrics.switch_frequency().abs() < 1e-3);
    }

    #[test]
    fn greedy_saves_power_but_waits_longer() {
        let sys = paper_system();
        let on = sys
            .evaluate(&PmPolicy::always_on(&sys, 0).unwrap())
            .unwrap();
        let greedy = sys.evaluate(&PmPolicy::greedy(&sys).unwrap()).unwrap();
        assert!(greedy.power() < on.power());
        assert!(greedy.queue_length() > on.queue_length());
        assert!(greedy.switch_frequency() > 0.0);
    }

    #[test]
    fn deeper_n_policies_trade_delay_for_power() {
        let sys = paper_system();
        let mut previous_queue = -1.0;
        for n in 1..=5 {
            let p = PmPolicy::n_policy(&sys, n, 2).unwrap();
            let m = sys.evaluate(&p).unwrap();
            assert!(
                m.queue_length() > previous_queue,
                "N = {n} should queue more than N = {}",
                n - 1
            );
            previous_queue = m.queue_length();
        }
        let n1 = sys
            .evaluate(&PmPolicy::n_policy(&sys, 1, 2).unwrap())
            .unwrap();
        let n5 = sys
            .evaluate(&PmPolicy::n_policy(&sys, 5, 2).unwrap())
            .unwrap();
        assert!(n5.power() < n1.power(), "waking later saves power");
    }

    #[test]
    fn littles_law_consistency() {
        let sys = paper_system();
        let m = sys.evaluate(&PmPolicy::greedy(&sys).unwrap()).unwrap();
        let recomputed = m.queue_length() / (m.lambda() - m.loss_rate());
        assert!((m.waiting_time() - recomputed).abs() < 1e-12);
        assert!(m.effective_arrival_rate() <= m.lambda());
    }

    #[test]
    fn generator_for_produces_valid_chain() {
        let sys = paper_system();
        let g = sys.generator_for(&PmPolicy::greedy(&sys).unwrap()).unwrap();
        assert_eq!(g.n_states(), sys.n_states());
        // The greedy chain visits every queue level and both end modes.
        assert!(dpm_ctmc::graph::is_connected(&g));
    }

    #[test]
    fn sparse_generator_matches_dense_entry_for_entry() {
        let sys = paper_system();
        for policy in [
            PmPolicy::always_on(&sys, 0).unwrap(),
            PmPolicy::greedy(&sys).unwrap(),
            PmPolicy::n_policy(&sys, 3, 2).unwrap(),
        ] {
            let dense = sys.generator_for(&policy).unwrap();
            let sparse = sys.sparse_generator_for(&policy).unwrap();
            assert_eq!(sparse.n_states(), dense.n_states());
            for i in 0..dense.n_states() {
                for j in 0..dense.n_states() {
                    assert_eq!(sparse.rate(i, j), dense.rate(i, j), "entry ({i}, {j})");
                }
            }
            // Far fewer stored entries than the dense n^2.
            assert!(sparse.nnz() < dense.n_states() * 4);
        }
    }

    #[test]
    fn sparse_stationary_matches_dense_stationary() {
        use dpm_ctmc::stationary::{Method, Solver};
        let sys = paper_system();
        let policy = PmPolicy::greedy(&sys).unwrap();
        let dense = sys.generator_for(&policy).unwrap();
        let sparse = sys.sparse_generator_for(&policy).unwrap();
        // The greedy chain is unichain with transient states, so use the LU
        // solver (GTH requires irreducibility).
        let reference = Solver::new(Method::Lu).solve(&dense).unwrap().0;
        let pi = Solver::new(Method::Iterative).solve(&sparse).unwrap().0;
        assert!(
            (&pi - &reference).norm_inf() < 1e-8,
            "sparse iterative diverges from dense LU by {}",
            (&pi - &reference).norm_inf()
        );
    }

    #[test]
    fn metrics_display_is_readable() {
        let sys = paper_system();
        let m = sys.evaluate(&PmPolicy::greedy(&sys).unwrap()).unwrap();
        let text = m.to_string();
        assert!(text.contains("power"));
        assert!(text.contains('W'));
    }
}

#[cfg(test)]
mod wakeup_tests {
    use crate::{PmPolicy, PmSystem, SpModel, SrModel};

    fn paper_system() -> PmSystem {
        PmSystem::builder()
            .provider(SpModel::dac99_server().unwrap())
            .requestor(SrModel::poisson(1.0 / 6.0).unwrap())
            .capacity(5)
            .build()
            .unwrap()
    }

    #[test]
    fn greedy_wakeup_latency_matches_switching_time() {
        // Greedy wakes immediately: latency from sleeping = mean switch
        // time sleeping -> active = 1.1 s.
        let sys = paper_system();
        let greedy = PmPolicy::greedy(&sys).unwrap();
        let latency = sys.wakeup_latency(&greedy, 2).unwrap();
        assert!(
            (latency - 1.1).abs() < 1e-9,
            "latency {latency} vs switch time 1.1"
        );
    }

    #[test]
    fn deeper_n_policies_wake_later() {
        let sys = paper_system();
        let n1 = sys
            .wakeup_latency(&PmPolicy::n_policy(&sys, 1, 2).unwrap(), 2)
            .unwrap();
        let n3 = sys
            .wakeup_latency(&PmPolicy::n_policy(&sys, 3, 2).unwrap(), 2)
            .unwrap();
        // N = 3 waits for two more arrivals (mean 6 s each) before waking.
        assert!(n3 > n1 + 6.0, "n1 {n1}, n3 {n3}");
    }

    #[test]
    fn wakeup_latency_validates_mode() {
        let sys = paper_system();
        let greedy = PmPolicy::greedy(&sys).unwrap();
        assert!(sys.wakeup_latency(&greedy, 0).is_err());
        assert!(sys.wakeup_latency(&greedy, 9).is_err());
    }
}
