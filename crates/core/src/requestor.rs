//! The service-requestor (SR) model: a Poisson request source.

use std::fmt;

use crate::DpmError;

/// A single-mode service requestor generating requests as a Poisson process
/// with rate `λ` (exponential inter-arrival times with mean `1/λ`).
///
/// The paper argues (Section III) that a single-mode SR suffices in
/// practice because `λ` can be estimated online within ~5% after observing
/// about 50 events, and the power manager can then re-solve for a new
/// policy; `dpm-sim`'s adaptive controller implements exactly that loop.
///
/// # Examples
///
/// ```
/// use dpm_core::SrModel;
///
/// # fn main() -> Result<(), dpm_core::DpmError> {
/// let sr = SrModel::poisson(1.0 / 6.0)?;
/// assert!((sr.mean_interarrival() - 6.0).abs() < 1e-12);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SrModel {
    rate: f64,
}

impl SrModel {
    /// Creates a Poisson requestor with arrival rate `λ`.
    ///
    /// # Errors
    ///
    /// Returns [`DpmError::InvalidModel`] unless `λ` is positive and
    /// finite.
    pub fn poisson(lambda: f64) -> Result<Self, DpmError> {
        if !(lambda > 0.0 && lambda.is_finite()) {
            return Err(DpmError::InvalidModel {
                reason: format!("arrival rate {lambda} must be positive and finite"),
            });
        }
        Ok(SrModel { rate: lambda })
    }

    /// Creates a requestor from the mean inter-arrival time `1/λ`.
    ///
    /// # Errors
    ///
    /// Returns [`DpmError::InvalidModel`] unless the mean is positive and
    /// finite.
    pub fn from_mean_interarrival(mean: f64) -> Result<Self, DpmError> {
        if !(mean > 0.0 && mean.is_finite()) {
            return Err(DpmError::InvalidModel {
                reason: format!("mean inter-arrival time {mean} must be positive and finite"),
            });
        }
        SrModel::poisson(1.0 / mean)
    }

    /// Arrival rate `λ`.
    #[must_use]
    pub fn rate(&self) -> f64 {
        self.rate
    }

    /// Mean inter-arrival time `1/λ`.
    #[must_use]
    pub fn mean_interarrival(&self) -> f64 {
        1.0 / self.rate
    }
}

impl fmt::Display for SrModel {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "SrModel (Poisson, lambda = {})", self.rate)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trips_between_rate_and_mean() {
        let sr = SrModel::poisson(0.25).unwrap();
        assert_eq!(sr.rate(), 0.25);
        assert_eq!(sr.mean_interarrival(), 4.0);
        let sr2 = SrModel::from_mean_interarrival(4.0).unwrap();
        assert_eq!(sr, sr2);
    }

    #[test]
    fn rejects_bad_rates() {
        assert!(SrModel::poisson(0.0).is_err());
        assert!(SrModel::poisson(-1.0).is_err());
        assert!(SrModel::poisson(f64::INFINITY).is_err());
        assert!(SrModel::from_mean_interarrival(0.0).is_err());
        assert!(SrModel::from_mean_interarrival(f64::NAN).is_err());
    }

    #[test]
    fn display_mentions_rate() {
        assert!(SrModel::poisson(0.5).unwrap().to_string().contains("0.5"));
    }
}
