//! Dynamic power management by continuous-time Markov decision processes.
//!
//! This crate is a from-scratch implementation of the system model and
//! policy-optimization method of **Qiu & Pedram, "Dynamic Power Management
//! Based on Continuous-Time Markov Decision Processes" (DAC 1999)**.
//!
//! # The model
//!
//! A power-managed system consists of:
//!
//! * a **service provider** ([`SpModel`]) — a device with several power
//!   modes (e.g. *active*, *waiting*, *sleeping*), each with a service rate
//!   `μ(s)`, a power draw `pow(s)`, pairwise switching speeds `χ` and
//!   switching energies `ene`;
//! * a **service requestor** ([`SrModel`]) — a Poisson request source with
//!   rate `λ`;
//! * a **service queue** — a FIFO buffer of capacity `Q` that extends the
//!   M/M/1/Q chain with *transfer states* `q_{i→i-1}`, occupied while the
//!   provider switches modes at a service-completion epoch;
//! * a **power manager** — the controller being synthesized: it observes
//!   the joint state and issues a target power mode.
//!
//! [`PmSystem`] composes these into a single controllable Markov process
//! over the state space `S × Q_stable ∪ S_active × Q_transfer`, applies the
//! paper's action-validity constraints (1)–(3), attaches the cost structure
//! `Cost = C_pow + w · C_sq` (Eqn. 3.1), and hands the result to the
//! `dpm-mdp` solvers. [`optimize`] finds optimal policies: per weight, as a
//! frontier sweep (Figure 4), or under an explicit performance constraint
//! (Section IV / Figure 5).
//!
//! # Quickstart
//!
//! ```
//! use dpm_core::{optimize, PmSystem, SpModel, SrModel};
//!
//! # fn main() -> Result<(), dpm_core::DpmError> {
//! let system = PmSystem::builder()
//!     .provider(SpModel::dac99_server()?)
//!     .requestor(SrModel::poisson(1.0 / 6.0)?)
//!     .capacity(5)
//!     .build()?;
//! let optimal = optimize::optimal_policy(&system, 0.5)?;
//! let metrics = system.evaluate(optimal.policy())?;
//! assert!(metrics.power() < 40.0); // beats always-on
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod analysis;
pub mod dot;
mod error;
pub mod lumped;
pub mod optimize;
mod policy;
mod provider;
mod requestor;
mod system;
pub mod tensor;

pub use analysis::PolicyMetrics;
pub use error::DpmError;
pub use policy::PmPolicy;
pub use provider::{SpModel, SpModelBuilder};
pub use requestor::SrModel;
pub use system::{PmSystem, PmSystemBuilder, SysState, DEFAULT_INSTANT_RATE};
