use std::error::Error;
use std::fmt;

use dpm_ctmc::CtmcError;
use dpm_mdp::MdpError;

/// Error type for power-management model construction and optimization.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum DpmError {
    /// A model parameter was rejected.
    InvalidModel {
        /// What was wrong.
        reason: String,
    },
    /// A policy refers to a mode or state that does not exist, or violates
    /// the action-validity constraints.
    InvalidPolicy {
        /// What was wrong.
        reason: String,
    },
    /// No policy satisfies the requested performance constraint.
    ConstraintUnsatisfiable {
        /// The requested bound on the average number of waiting requests.
        bound: f64,
    },
    /// The decision-process layer failed.
    Mdp(MdpError),
    /// The chain-analysis layer failed.
    Chain(CtmcError),
}

impl fmt::Display for DpmError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DpmError::InvalidModel { reason } => write!(f, "invalid model: {reason}"),
            DpmError::InvalidPolicy { reason } => write!(f, "invalid policy: {reason}"),
            DpmError::ConstraintUnsatisfiable { bound } => {
                write!(f, "no policy attains average queue length <= {bound}")
            }
            DpmError::Mdp(e) => write!(f, "decision-process failure: {e}"),
            DpmError::Chain(e) => write!(f, "chain-analysis failure: {e}"),
        }
    }
}

impl Error for DpmError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            DpmError::Mdp(e) => Some(e),
            DpmError::Chain(e) => Some(e),
            _ => None,
        }
    }
}

impl From<MdpError> for DpmError {
    fn from(e: MdpError) -> Self {
        DpmError::Mdp(e)
    }
}

impl From<CtmcError> for DpmError {
    fn from(e: CtmcError) -> Self {
        DpmError::Chain(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn displays_are_informative() {
        let e = DpmError::ConstraintUnsatisfiable { bound: 0.5 };
        assert!(e.to_string().contains("0.5"));
    }

    #[test]
    fn sources_chain() {
        let e = DpmError::from(MdpError::Infeasible);
        assert!(Error::source(&e).is_some());
    }

    #[test]
    fn error_is_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<DpmError>();
    }
}
