//! Policy compilation: lowering a table policy to a dense lookup artifact.
//!
//! A [`dpm_core::PmPolicy`] answers "which mode?" by validating the state
//! against the system and indexing a destination table — fine for a
//! solver, too much machinery for a serving hot path. [`CompiledPolicy`]
//! precomputes everything the lookup needs:
//!
//! * a **mixed-radix stable index** — `mode * (Q+1) + jobs` over the
//!   SP×SQ product, matching `PmSystem`'s enumeration;
//! * a **minimal-perfect transfer lookup** — transfer states exist only
//!   for active modes, so a per-mode slot table (`active_slot`) maps the
//!   sparse mode axis onto a dense `slot * Q + (departing-1)` array with
//!   zero wasted entries and no hashing;
//! * **one-byte actions** — destination modes stored as `u8` (the paper's
//!   systems have a handful of modes; anything ≤ 256 compiles), keeping
//!   the whole artifact a few cache lines.
//!
//! The artifact is versioned and serialized through the harness's
//! canonical JSON, so compiled policies are diffable, reproducible
//! by-byte, and loadable without the source system.

use std::sync::Arc;

use dpm_core::{PmPolicy, PmSystem, SysState};
use dpm_harness::Json;
use dpm_sim::controller::{Command, Controller, Observation, SimEvent};
use rand_chacha::ChaCha8Rng;

use crate::ServeError;

/// Format tag of the serialized artifact.
pub const COMPILED_POLICY_FORMAT: &str = "dpm-compiled-policy/v1";

/// Sentinel slot for modes with no transfer states (inactive modes).
const NO_SLOT: u32 = u32::MAX;

/// A stationary policy lowered to dense constant-time lookup tables.
///
/// Obtained from [`CompiledPolicy::compile`]; consulted with
/// [`CompiledPolicy::action`]. Serialize with [`CompiledPolicy::to_json`]
/// and reload with [`CompiledPolicy::from_json`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CompiledPolicy {
    n_modes: usize,
    capacity: usize,
    labels: Vec<String>,
    /// Per mode: index into the transfer block, or [`NO_SLOT`].
    active_slot: Vec<u32>,
    /// Modes with transfer states, in slot order.
    active_modes: Vec<usize>,
    /// Destination mode per stable state, indexed `mode*(Q+1)+jobs`.
    stable_actions: Vec<u8>,
    /// Destination mode per transfer state, indexed `slot*Q+(departing-1)`.
    transfer_actions: Vec<u8>,
}

impl CompiledPolicy {
    /// Lowers `policy` over `system` into lookup tables.
    ///
    /// # Errors
    ///
    /// Returns [`ServeError::TooManyModes`] if destinations do not fit one
    /// byte, and [`ServeError::PolicyMismatch`] if the policy's table does
    /// not cover the system's state space or commands an invalid action.
    pub fn compile(system: &PmSystem, policy: &PmPolicy) -> Result<Self, ServeError> {
        let sp = system.provider();
        let n_modes = sp.n_modes();
        if n_modes > 256 {
            return Err(ServeError::TooManyModes { n_modes });
        }
        let capacity = system.capacity();
        if policy.destinations().len() != system.n_states() {
            return Err(ServeError::PolicyMismatch {
                reason: format!(
                    "policy covers {} states, system has {}",
                    policy.destinations().len(),
                    system.n_states()
                ),
            });
        }

        let active_modes = sp.active_modes();
        let mut active_slot = vec![NO_SLOT; n_modes];
        for (slot, &mode) in active_modes.iter().enumerate() {
            if let Some(entry) = active_slot.get_mut(mode) {
                *entry = slot as u32;
            }
        }
        let mut stable_actions = vec![0u8; n_modes * (capacity + 1)];
        let mut transfer_actions = vec![0u8; active_modes.len() * capacity];

        for (index, &state) in system.states().iter().enumerate() {
            let dest = policy.destination(index);
            if dest >= n_modes || !system.action_destinations(index).contains(&dest) {
                return Err(ServeError::PolicyMismatch {
                    reason: format!("state {index} commands invalid destination {dest}"),
                });
            }
            let dest = dest as u8;
            match state {
                SysState::Stable { mode, jobs } => {
                    if let Some(slot) = stable_actions.get_mut(mode * (capacity + 1) + jobs) {
                        *slot = dest;
                    }
                }
                SysState::Transfer { mode, departing } => {
                    let block = active_slot.get(mode).copied().unwrap_or(NO_SLOT);
                    if block == NO_SLOT || departing == 0 {
                        return Err(ServeError::PolicyMismatch {
                            reason: format!(
                                "state {index} is a transfer state of an inactive mode"
                            ),
                        });
                    }
                    if let Some(slot) =
                        transfer_actions.get_mut(block as usize * capacity + departing - 1)
                    {
                        *slot = dest;
                    }
                }
            }
        }

        Ok(CompiledPolicy {
            n_modes,
            capacity,
            labels: (0..n_modes).map(|m| sp.label(m).to_owned()).collect(),
            active_slot,
            active_modes,
            stable_actions,
            transfer_actions,
        })
    }

    /// Destination mode for `state`: a bounds-checked constant-time table
    /// lookup. `None` for states outside the compiled state space (mode or
    /// queue index out of range, or a transfer state of an inactive mode).
    #[inline]
    #[must_use]
    pub fn action(&self, state: SysState) -> Option<usize> {
        match state {
            SysState::Stable { mode, jobs } if jobs <= self.capacity => self
                .stable_actions
                .get(mode * (self.capacity + 1) + jobs)
                .map(|&a| a as usize),
            SysState::Transfer { mode, departing } if (1..=self.capacity).contains(&departing) => {
                let block = self.active_slot.get(mode).copied()?;
                if block == NO_SLOT {
                    return None;
                }
                self.transfer_actions
                    .get(block as usize * self.capacity + departing - 1)
                    .map(|&a| a as usize)
            }
            _ => None,
        }
    }

    /// Number of SP modes the artifact was compiled for.
    #[must_use]
    pub fn n_modes(&self) -> usize {
        self.n_modes
    }

    /// Queue capacity the artifact was compiled for.
    #[must_use]
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Number of states the artifact covers (stable plus transfer).
    #[must_use]
    pub fn n_states(&self) -> usize {
        self.stable_actions.len() + self.transfer_actions.len()
    }

    /// Label of mode `m`, if in range.
    #[must_use]
    pub fn label(&self, m: usize) -> Option<&str> {
        self.labels.get(m).map(String::as_str)
    }

    /// Serializes the artifact as versioned canonical JSON.
    #[must_use]
    pub fn to_json(&self) -> Json {
        let ints = |v: &[u8]| Json::Array(v.iter().map(|&a| Json::Int(i128::from(a))).collect());
        let mut doc = Json::object();
        doc.set("format", COMPILED_POLICY_FORMAT);
        doc.set("n_modes", self.n_modes);
        doc.set("capacity", self.capacity);
        doc.set(
            "labels",
            Json::Array(self.labels.iter().map(|l| Json::Str(l.clone())).collect()),
        );
        doc.set(
            "active_modes",
            Json::Array(
                self.active_modes
                    .iter()
                    .map(|&m| Json::Int(m as i128))
                    .collect(),
            ),
        );
        doc.set("stable_actions", ints(&self.stable_actions));
        doc.set("transfer_actions", ints(&self.transfer_actions));
        doc
    }

    /// Decodes an artifact produced by [`CompiledPolicy::to_json`].
    ///
    /// # Errors
    ///
    /// Returns [`ServeError::Format`] on a wrong format tag or any
    /// inconsistency between the declared shape and the tables.
    pub fn from_json(doc: &Json) -> Result<Self, ServeError> {
        let format = doc.get("format").and_then(Json::as_str).unwrap_or("");
        if format != COMPILED_POLICY_FORMAT {
            return Err(ServeError::Format {
                reason: format!("expected {COMPILED_POLICY_FORMAT}, got {format:?}"),
            });
        }
        let n_modes = get_usize(doc, "n_modes")?;
        let capacity = get_usize(doc, "capacity")?;
        if n_modes == 0 || n_modes > 256 || capacity == 0 {
            return Err(ServeError::Format {
                reason: format!("implausible shape: {n_modes} modes, capacity {capacity}"),
            });
        }
        let labels = get_strings(doc, "labels")?;
        if labels.len() != n_modes {
            return Err(ServeError::Format {
                reason: format!("{} labels for {n_modes} modes", labels.len()),
            });
        }
        let active_modes = get_indices(doc, "active_modes")?;
        let mut active_slot = vec![NO_SLOT; n_modes];
        for (slot, &mode) in active_modes.iter().enumerate() {
            let Some(entry) = active_slot.get_mut(mode) else {
                return Err(ServeError::Format {
                    reason: format!("active mode {mode} out of range"),
                });
            };
            if *entry != NO_SLOT {
                return Err(ServeError::Format {
                    reason: format!("active mode {mode} listed twice"),
                });
            }
            *entry = slot as u32;
        }
        let stable_actions = get_actions(doc, "stable_actions", n_modes)?;
        if stable_actions.len() != n_modes * (capacity + 1) {
            return Err(ServeError::Format {
                reason: format!(
                    "{} stable actions for {n_modes} modes x capacity {capacity}",
                    stable_actions.len()
                ),
            });
        }
        let transfer_actions = get_actions(doc, "transfer_actions", n_modes)?;
        if transfer_actions.len() != active_modes.len() * capacity {
            return Err(ServeError::Format {
                reason: format!(
                    "{} transfer actions for {} active modes x capacity {capacity}",
                    transfer_actions.len(),
                    active_modes.len()
                ),
            });
        }
        Ok(CompiledPolicy {
            n_modes,
            capacity,
            labels,
            active_slot,
            active_modes,
            stable_actions,
            transfer_actions,
        })
    }
}

fn get_usize(doc: &Json, key: &str) -> Result<usize, ServeError> {
    match doc.get(key) {
        Some(&Json::Int(v)) if v >= 0 && v <= usize::MAX as i128 => Ok(v as usize),
        other => Err(ServeError::Format {
            reason: format!("{key}: expected a non-negative integer, got {other:?}"),
        }),
    }
}

fn get_strings(doc: &Json, key: &str) -> Result<Vec<String>, ServeError> {
    let Some(Json::Array(items)) = doc.get(key) else {
        return Err(ServeError::Format {
            reason: format!("{key}: expected an array"),
        });
    };
    items
        .iter()
        .map(|item| match item {
            Json::Str(s) => Ok(s.clone()),
            other => Err(ServeError::Format {
                reason: format!("{key}: expected a string, got {other:?}"),
            }),
        })
        .collect()
}

fn get_indices(doc: &Json, key: &str) -> Result<Vec<usize>, ServeError> {
    let Some(Json::Array(items)) = doc.get(key) else {
        return Err(ServeError::Format {
            reason: format!("{key}: expected an array"),
        });
    };
    items
        .iter()
        .map(|item| match item {
            &Json::Int(v) if v >= 0 && v <= usize::MAX as i128 => Ok(v as usize),
            other => Err(ServeError::Format {
                reason: format!("{key}: expected a non-negative integer, got {other:?}"),
            }),
        })
        .collect()
}

fn get_actions(doc: &Json, key: &str, n_modes: usize) -> Result<Vec<u8>, ServeError> {
    let Some(Json::Array(items)) = doc.get(key) else {
        return Err(ServeError::Format {
            reason: format!("{key}: expected an array"),
        });
    };
    items
        .iter()
        .map(|item| match item {
            &Json::Int(v) if v >= 0 && (v as usize) < n_modes => Ok(v as u8),
            other => Err(ServeError::Format {
                reason: format!("{key}: action out of range for {n_modes} modes: {other:?}"),
            }),
        })
        .collect()
}

/// A [`Controller`] backed by a shared [`CompiledPolicy`]: the serving
/// hot path. Many systems across many shards consult one artifact through
/// an [`Arc`]; each controller counts its own lookups.
#[derive(Debug, Clone)]
pub struct CompiledController {
    policy: Arc<CompiledPolicy>,
    lookups: u64,
}

impl CompiledController {
    /// Wraps a shared compiled policy.
    #[must_use]
    pub fn new(policy: Arc<CompiledPolicy>) -> Self {
        CompiledController { policy, lookups: 0 }
    }

    /// Policy lookups performed so far (one per consultation).
    #[must_use]
    pub fn lookups(&self) -> u64 {
        self.lookups
    }

    /// Atomically replaces the policy consulted from the next lookup on —
    /// the hot-swap hook the serving runtime drives at its event-count
    /// barriers. The lookup counter carries across the swap.
    pub fn swap_policy(&mut self, policy: Arc<CompiledPolicy>) {
        self.policy = policy;
    }
}

impl Controller for CompiledController {
    fn command(
        &mut self,
        observation: &Observation,
        _event: SimEvent,
        _rng: &mut ChaCha8Rng,
    ) -> Command {
        self.lookups += 1;
        let target = self
            .policy
            .action(observation.state)
            .unwrap_or_else(|| observation.state.mode());
        Command::go(target)
    }

    fn name(&self) -> String {
        "compiled".to_owned()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dpm_core::{SpModel, SrModel};

    fn system() -> PmSystem {
        PmSystem::builder()
            .provider(SpModel::dac99_server().unwrap())
            .requestor(SrModel::poisson(1.0 / 6.0).unwrap())
            .capacity(5)
            .build()
            .unwrap()
    }

    #[test]
    fn compiled_matches_table_on_every_state() {
        let system = system();
        for policy in [
            PmPolicy::greedy(&system).unwrap(),
            PmPolicy::always_on(&system, 0).unwrap(),
            PmPolicy::n_policy(&system, 2, 1).unwrap(),
        ] {
            let compiled = CompiledPolicy::compile(&system, &policy).unwrap();
            assert_eq!(compiled.n_states(), system.n_states());
            for i in 0..system.n_states() {
                let state = system.state(i);
                assert_eq!(
                    compiled.action(state),
                    Some(policy.destination(i)),
                    "state {i}: {state:?}"
                );
                assert_eq!(
                    compiled.action(state),
                    policy.command(&system, state).ok(),
                    "state {i}: {state:?}"
                );
            }
        }
    }

    #[test]
    fn out_of_space_states_are_rejected() {
        let system = system();
        let compiled =
            CompiledPolicy::compile(&system, &PmPolicy::greedy(&system).unwrap()).unwrap();
        let inactive = system.provider().inactive_modes()[0];
        assert_eq!(
            compiled.action(SysState::Transfer {
                mode: inactive,
                departing: 1
            }),
            None,
            "transfer states exist only for active modes"
        );
        assert_eq!(
            compiled.action(SysState::Stable { mode: 99, jobs: 0 }),
            None
        );
        assert_eq!(
            compiled.action(SysState::Stable { mode: 0, jobs: 99 }),
            None
        );
        assert_eq!(
            compiled.action(SysState::Transfer {
                mode: 0,
                departing: 0
            }),
            None
        );
        assert_eq!(
            compiled.action(SysState::Transfer {
                mode: 0,
                departing: 6
            }),
            None
        );
    }

    #[test]
    fn artifact_round_trips_through_canonical_json() {
        let system = system();
        let compiled =
            CompiledPolicy::compile(&system, &PmPolicy::n_policy(&system, 3, 1).unwrap()).unwrap();
        let doc = compiled.to_json();
        let reloaded = CompiledPolicy::from_json(&doc).unwrap();
        assert_eq!(reloaded, compiled);
        // Canonical render is stable through a parse cycle too.
        let reparsed = Json::parse(&doc.render()).unwrap();
        assert_eq!(CompiledPolicy::from_json(&reparsed).unwrap(), compiled);
        assert_eq!(reparsed.render(), doc.render());
    }

    #[test]
    fn mismatched_policy_is_rejected() {
        let system = system();
        let small = PmSystem::builder()
            .provider(SpModel::dac99_server().unwrap())
            .requestor(SrModel::poisson(1.0 / 6.0).unwrap())
            .capacity(2)
            .build()
            .unwrap();
        let policy = PmPolicy::greedy(&small).unwrap();
        let err = CompiledPolicy::compile(&system, &policy).unwrap_err();
        assert!(matches!(err, ServeError::PolicyMismatch { .. }), "{err}");
    }

    #[test]
    fn malformed_artifacts_are_rejected() {
        let system = system();
        let compiled =
            CompiledPolicy::compile(&system, &PmPolicy::greedy(&system).unwrap()).unwrap();
        let mut wrong_tag = compiled.to_json();
        wrong_tag.set("format", "dpm-compiled-policy/v0");
        assert!(CompiledPolicy::from_json(&wrong_tag).is_err());
        let mut wrong_len = compiled.to_json();
        wrong_len.set("stable_actions", Json::Array(vec![Json::Int(0)]));
        assert!(CompiledPolicy::from_json(&wrong_len).is_err());
        let mut bad_action = compiled.to_json();
        bad_action.set(
            "transfer_actions",
            Json::Array(vec![Json::Int(200); compiled.capacity()]),
        );
        assert!(CompiledPolicy::from_json(&bad_action).is_err());
    }

    #[test]
    fn controller_counts_lookups_and_falls_back_to_stay() {
        use rand::SeedableRng;
        let system = system();
        let compiled = Arc::new(
            CompiledPolicy::compile(&system, &PmPolicy::greedy(&system).unwrap()).unwrap(),
        );
        let mut ctl = CompiledController::new(Arc::clone(&compiled));
        let mut rng = ChaCha8Rng::seed_from_u64(0);
        let obs = Observation {
            time: 0.0,
            state: SysState::Stable { mode: 0, jobs: 2 },
        };
        let cmd = ctl.command(&obs, SimEvent::Arrival, &mut rng);
        assert_eq!(Some(cmd.target), compiled.action(obs.state));
        // A state outside the space commands "stay".
        let odd = Observation {
            time: 0.0,
            state: SysState::Stable { mode: 77, jobs: 0 },
        };
        assert_eq!(ctl.command(&odd, SimEvent::Arrival, &mut rng).target, 77);
        assert_eq!(ctl.lookups(), 2);
    }

    #[test]
    fn swapping_the_policy_changes_answers_but_keeps_the_counter() {
        use rand::SeedableRng;
        let system = system();
        let greedy = Arc::new(
            CompiledPolicy::compile(&system, &PmPolicy::greedy(&system).unwrap()).unwrap(),
        );
        let on = Arc::new(
            CompiledPolicy::compile(&system, &PmPolicy::always_on(&system, 0).unwrap()).unwrap(),
        );
        let mut ctl = CompiledController::new(Arc::clone(&greedy));
        let mut rng = ChaCha8Rng::seed_from_u64(0);
        let obs = Observation {
            time: 0.0,
            state: SysState::Stable { mode: 0, jobs: 0 },
        };
        let before = ctl.command(&obs, SimEvent::Arrival, &mut rng).target;
        assert_eq!(Some(before), greedy.action(obs.state));
        ctl.swap_policy(Arc::clone(&on));
        let after = ctl.command(&obs, SimEvent::Arrival, &mut rng).target;
        assert_eq!(Some(after), on.action(obs.state));
        assert_eq!(ctl.lookups(), 2, "the counter survives the swap");
    }
}
