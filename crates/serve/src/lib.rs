//! Policy serving: compiled artifacts and a supervised sharded runtime.
//!
//! The solver stack (`dpm-mdp`, `dpm-lp`) produces an optimal
//! power-management policy; this crate is what runs it at scale. It has
//! three layers:
//!
//! * [`CompiledPolicy`] — a table policy lowered to dense constant-time
//!   lookup arrays (mixed-radix stable index, minimal-perfect transfer
//!   lookup, one-byte actions), versioned and serialized through the
//!   harness's canonical JSON;
//! * [`serve`] — a sharded event runtime: a fleet of independent
//!   simulated systems partitioned across threads, each batching events
//!   against the shared artifact, with per-system seeds from
//!   `dpm_harness::seed::derive_serve_attempt_seed` and
//!   exactly-associative report merging so N-shard output is
//!   **bit-identical** to 1-shard;
//! * supervision — a typed error taxonomy ([`ErrorClass`], [`ServeError`])
//!   with per-class retry budgets and logical backoff ([`RetryPolicy`]),
//!   per-system panic isolation, a JSONL fleet checkpoint journal
//!   (`ServeConfig::checkpoint` / `ServeConfig::resume`) whose replay-based
//!   restore makes kill-at-any-point + resume bit-identical, hot policy
//!   swaps at deterministic event barriers ([`SwapPlan`]), and graceful
//!   degradation: budget-exhausted systems are quarantined while the rest
//!   of the fleet's results stay untouched ([`SystemRecord`]).
//!
//! # Examples
//!
//! Compile the greedy policy for the paper's server and serve a small
//! fleet on two shards, checkpointing progress and hot-swapping to the
//! always-on policy once each system has processed 400 events:
//!
//! ```
//! use dpm_core::{PmPolicy, PmSystem, SpModel, SrModel};
//! use dpm_serve::{serve, CompiledPolicy, ServeConfig, SwapPlan};
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let system = PmSystem::builder()
//!     .provider(SpModel::dac99_server()?)
//!     .requestor(SrModel::poisson(1.0 / 6.0)?)
//!     .capacity(5)
//!     .build()?;
//! let policy = CompiledPolicy::compile(&system, &PmPolicy::greedy(&system)?)?;
//! let replacement = CompiledPolicy::compile(&system, &PmPolicy::always_on(&system, 0)?)?;
//! let journal = std::env::temp_dir().join(format!("dpm-serve-doc-{}.jsonl", std::process::id()));
//! let config = ServeConfig::new(42)
//!     .systems(8)
//!     .requests_per_system(500)
//!     .shards(2)
//!     .swaps(SwapPlan::new().swap_at(400, replacement))
//!     .checkpoint(&journal);
//! let outcome = serve(&system, &policy, &config)?;
//! assert_eq!(outcome.merged().runs(), 8);
//! assert!(outcome.swap_outcomes()[0].accepted());
//! // The journal restores the finished fleet verbatim, and shard count
//! // never changes the numbers, only the wall clock:
//! let resumed = serve(
//!     &system,
//!     &policy,
//!     &config.clone().shards(1).resume(&journal),
//! )?;
//! assert_eq!(outcome.fingerprint(), resumed.fingerprint());
//! # std::fs::remove_file(&journal).ok();
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod compiled;
mod engine;
mod error;
mod journal;
mod supervise;

pub use compiled::{CompiledController, CompiledPolicy, COMPILED_POLICY_FORMAT};
pub use engine::{serve, ServeConfig, ServeOutcome, SERVE_OUTCOME_FORMAT};
pub use error::{ConfigError, ErrorClass, ServeError};
pub use supervise::{
    RetryPolicy, ServeFaultPlan, SwapOutcome, SwapPlan, SystemRecord, SystemStatus,
};
