//! Policy serving: compiled artifacts and a sharded multi-core runtime.
//!
//! The solver stack (`dpm-mdp`, `dpm-lp`) produces an optimal
//! power-management policy; this crate is what runs it at scale. It has
//! two halves:
//!
//! * [`CompiledPolicy`] — a table policy lowered to dense constant-time
//!   lookup arrays (mixed-radix stable index, minimal-perfect transfer
//!   lookup, one-byte actions), versioned and serialized through the
//!   harness's canonical JSON;
//! * [`serve`] — a sharded event runtime: a fleet of independent
//!   simulated systems partitioned across threads, each batching events
//!   against the shared artifact, with per-system seeds from
//!   `dpm_harness::seed::derive_serve_seed` and exactly-associative
//!   report merging so N-shard output is **bit-identical** to 1-shard.
//!
//! # Examples
//!
//! Compile the greedy policy for the paper's server and serve a small
//! fleet on two shards:
//!
//! ```
//! use dpm_core::{PmPolicy, PmSystem, SpModel, SrModel};
//! use dpm_serve::{serve, CompiledPolicy, ServeConfig};
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let system = PmSystem::builder()
//!     .provider(SpModel::dac99_server()?)
//!     .requestor(SrModel::poisson(1.0 / 6.0)?)
//!     .capacity(5)
//!     .build()?;
//! let policy = CompiledPolicy::compile(&system, &PmPolicy::greedy(&system)?)?;
//! let outcome = serve(
//!     &system,
//!     &policy,
//!     &ServeConfig::new(42).systems(8).requests_per_system(500).shards(2),
//! )?;
//! assert_eq!(outcome.merged().runs(), 8);
//! // Shard count never changes the numbers, only the wall clock:
//! let serial = serve(
//!     &system,
//!     &policy,
//!     &ServeConfig::new(42).systems(8).requests_per_system(500).shards(1),
//! )?;
//! assert_eq!(outcome.fingerprint(), serial.fingerprint());
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod compiled;
mod engine;
mod error;

pub use compiled::{CompiledController, CompiledPolicy, COMPILED_POLICY_FORMAT};
pub use engine::{serve, ServeConfig, ServeOutcome, SERVE_OUTCOME_FORMAT};
pub use error::ServeError;
