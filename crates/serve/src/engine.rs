//! The sharded serving runtime: many simulated systems, few threads, one
//! shared compiled policy, bit-identical output at any shard count.
//!
//! # Determinism argument
//!
//! Three properties compose into the shard-count invariance guarantee:
//!
//! 1. **Per-system seeding.** System `i` draws its randomness from
//!    `dpm_harness::seed::derive_serve_seed(root, i)` — a pure function of
//!    the fleet index, never of the shard or the interleaving.
//! 2. **Closed per-system state.** Each [`dpm_sim::SimRun`] owns its RNG
//!    and queue; stepping runs in any order cannot perturb one another, so
//!    a shard batching 256 events of system A between batches of system B
//!    produces exactly the serial event sequences.
//! 3. **Associative merging.** Reports are stitched in fleet-index order
//!    and folded through [`dpm_sim::MergedReport`], whose accumulators
//!    ([`dpm_sim::ExactSum`]) are exactly associative — the per-shard
//!    partial grouping cannot leak into the totals.
//!
//! The [`ServeOutcome`] additionally carries a fingerprint over every
//! per-system report, so "N shards ≡ 1 shard" is checkable from the
//! artifact alone.

use std::sync::Arc;
use std::thread;

use dpm_core::PmSystem;
use dpm_harness::{seed::derive_serve_seed, Json};
use dpm_sim::workload::PoissonWorkload;
use dpm_sim::{MergedReport, SimConfig, SimReport, SimRun, Simulator};

use crate::{CompiledController, CompiledPolicy, ServeError};

/// Format tag of the serialized serve outcome.
pub const SERVE_OUTCOME_FORMAT: &str = "dpm-serve-outcome/v1";

/// Configuration of a serving run: fleet size, shard count, per-system
/// workload volume, and the batching grain.
#[derive(Debug, Clone)]
pub struct ServeConfig {
    root_seed: u64,
    systems: usize,
    shards: usize,
    requests_per_system: u64,
    batch_events: usize,
}

impl ServeConfig {
    /// A default fleet: 64 systems, 1 shard, 1000 requests each, events
    /// batched 256 at a time.
    #[must_use]
    pub fn new(root_seed: u64) -> Self {
        ServeConfig {
            root_seed,
            systems: 64,
            shards: 1,
            requests_per_system: 1_000,
            batch_events: 256,
        }
    }

    /// Sets the number of independent simulated systems.
    #[must_use]
    pub fn systems(mut self, n: usize) -> Self {
        self.systems = n;
        self
    }

    /// Sets the number of worker threads (shards).
    #[must_use]
    pub fn shards(mut self, n: usize) -> Self {
        self.shards = n;
        self
    }

    /// Sets the workload volume per system.
    #[must_use]
    pub fn requests_per_system(mut self, n: u64) -> Self {
        self.requests_per_system = n;
        self
    }

    /// Sets how many events a shard processes per system before moving to
    /// the next (cache-friendliness knob; no effect on results).
    #[must_use]
    pub fn batch_events(mut self, n: usize) -> Self {
        self.batch_events = n;
        self
    }
}

/// Merged result of a serving run.
#[derive(Debug, Clone, PartialEq)]
pub struct ServeOutcome {
    root_seed: u64,
    systems: usize,
    shards: usize,
    requests_per_system: u64,
    merged: MergedReport,
    fingerprint: u64,
}

impl ServeOutcome {
    /// Deterministic aggregate over the whole fleet.
    #[must_use]
    pub fn merged(&self) -> &MergedReport {
        &self.merged
    }

    /// FNV-1a digest over every per-system report in fleet order — equal
    /// fingerprints mean bit-identical per-system results, not just equal
    /// totals.
    #[must_use]
    pub fn fingerprint(&self) -> u64 {
        self.fingerprint
    }

    /// Number of systems served.
    #[must_use]
    pub fn systems(&self) -> usize {
        self.systems
    }

    /// Number of shards the run used (does not affect results).
    #[must_use]
    pub fn shards(&self) -> usize {
        self.shards
    }

    /// Serializes the outcome as versioned canonical JSON.
    ///
    /// The shard count lands under the volatile `provenance` key, so
    /// artifacts from runs at different shard counts diff clean at
    /// tolerance 0 (`dpm_harness::artifact::diff`) exactly when the
    /// results are bit-identical.
    #[must_use]
    pub fn to_json(&self) -> Json {
        let m = &self.merged;
        let mut totals = Json::object();
        totals.set("events", m.events());
        totals.set("policy_lookups", m.consultations());
        totals.set("arrivals", m.arrivals());
        totals.set("completed", m.completed());
        totals.set("lost", m.lost());
        totals.set("switches", m.switches());
        totals.set("sim_seconds", Json::num(m.duration()));
        totals.set("energy_joules", Json::num(m.total_energy()));
        totals.set("switch_energy_joules", Json::num(m.switch_energy()));
        let mut averages = Json::object();
        averages.set("power_watts", Json::num(m.average_power()));
        averages.set("queue_length", Json::num(m.average_queue_length()));
        averages.set("waiting_seconds", Json::num(m.average_waiting_time()));
        averages.set("loss_fraction", Json::num(m.loss_fraction()));
        let mut provenance = Json::object();
        provenance.set("shards", self.shards);
        let mut doc = Json::object();
        doc.set("format", SERVE_OUTCOME_FORMAT);
        doc.set("root_seed", self.root_seed);
        doc.set("systems", self.systems);
        doc.set("requests_per_system", self.requests_per_system);
        doc.set("fingerprint", format!("{:016x}", self.fingerprint));
        doc.set("totals", totals);
        doc.set("averages", averages);
        doc.set("provenance", provenance);
        doc
    }
}

/// Drives a fleet of independent simulated systems against one compiled
/// policy, partitioned across `config.shards` threads.
///
/// Results are bit-identical for any shard count (see the module docs for
/// the argument); the shard count only changes wall-clock time.
///
/// # Errors
///
/// Returns [`ServeError::InvalidConfig`] for an empty fleet or zero
/// shards/batch, [`ServeError::Sim`] if any system's run fails (lowest
/// fleet index wins when several fail), and [`ServeError::ShardPanic`] if
/// a worker thread dies.
pub fn serve(
    system: &PmSystem,
    policy: &CompiledPolicy,
    config: &ServeConfig,
) -> Result<ServeOutcome, ServeError> {
    if config.systems == 0 || config.shards == 0 || config.batch_events == 0 {
        return Err(ServeError::InvalidConfig {
            reason: format!(
                "systems ({}), shards ({}) and batch_events ({}) must all be positive",
                config.systems, config.shards, config.batch_events
            ),
        });
    }
    let shared = Arc::new(policy.clone());
    let shards = config.shards.min(config.systems);
    let chunk = config.systems.div_ceil(shards);

    let mut shard_results: Vec<Result<Vec<SimReport>, ServeError>> = Vec::with_capacity(shards);
    thread::scope(|scope| {
        let mut handles = Vec::with_capacity(shards);
        for shard in 0..shards {
            let start = shard * chunk;
            let end = ((shard + 1) * chunk).min(config.systems);
            let shared = Arc::clone(&shared);
            handles.push(scope.spawn(move || run_shard(system, &shared, config, start..end)));
        }
        for (shard, handle) in handles.into_iter().enumerate() {
            shard_results.push(
                handle
                    .join()
                    .unwrap_or(Err(ServeError::ShardPanic { shard })),
            );
        }
    });

    let mut merged = MergedReport::new();
    let mut fingerprint: u64 = 0xcbf2_9ce4_8422_2325; // FNV-1a offset basis
    for result in shard_results {
        for report in result? {
            absorb_fingerprint(&mut fingerprint, &report);
            merged.absorb(&report);
        }
    }
    Ok(ServeOutcome {
        root_seed: config.root_seed,
        systems: config.systems,
        shards,
        requests_per_system: config.requests_per_system,
        merged,
        fingerprint,
    })
}

/// Runs one shard's contiguous block of systems with batched event
/// processing, returning reports in fleet-index order.
fn run_shard(
    system: &PmSystem,
    policy: &Arc<CompiledPolicy>,
    config: &ServeConfig,
    range: std::ops::Range<usize>,
) -> Result<Vec<SimReport>, ServeError> {
    let lambda = system.requestor().rate();
    let mut runs: Vec<(usize, SimRun<PoissonWorkload, CompiledController>)> =
        Vec::with_capacity(range.len());
    for i in range {
        let seed = derive_serve_seed(config.root_seed, i as u64);
        let workload =
            PoissonWorkload::new(lambda).map_err(|source| ServeError::Sim { system: i, source })?;
        let run = Simulator::new(
            system.provider().clone(),
            system.capacity(),
            workload,
            CompiledController::new(Arc::clone(policy)),
            SimConfig::new(seed).max_requests(config.requests_per_system),
        )
        .start()
        .map_err(|source| ServeError::Sim { system: i, source })?;
        runs.push((i, run));
    }

    // Round-robin over the block, `batch_events` events per system per
    // visit: the shared policy tables stay hot while each system's state
    // stays compact. Purely a scheduling choice — per-run results are
    // interleaving-invariant.
    let mut live = runs.len();
    while live > 0 {
        live = 0;
        for (i, run) in &mut runs {
            if run.is_finished() {
                continue;
            }
            for _ in 0..config.batch_events {
                match run.step() {
                    Ok(true) => {}
                    Ok(false) => break,
                    Err(source) => return Err(ServeError::Sim { system: *i, source }),
                }
            }
            if !run.is_finished() {
                live += 1;
            }
        }
    }
    Ok(runs.into_iter().map(|(_, run)| run.into_report()).collect())
}

/// Folds one report into the running FNV-1a fleet fingerprint: every
/// statistic a report exposes, bit-exact (floats by their IEEE bits).
fn absorb_fingerprint(hash: &mut u64, report: &SimReport) {
    let mut eat = |word: u64| {
        for byte in word.to_le_bytes() {
            *hash ^= u64::from(byte);
            *hash = hash.wrapping_mul(0x0000_0100_0000_01b3);
        }
    };
    eat(report.seed());
    eat(report.duration().to_bits());
    eat(report.total_energy().to_bits());
    eat(report.switch_energy().to_bits());
    eat(report.average_queue_length().to_bits());
    eat(report.average_waiting_time().to_bits());
    eat(report.arrivals());
    eat(report.completed());
    eat(report.lost());
    eat(report.switches());
    eat(report.consultations());
    eat(report.events());
}

#[cfg(test)]
mod tests {
    use super::*;
    use dpm_core::{PmPolicy, SpModel, SrModel};
    use dpm_harness::artifact;

    fn system() -> PmSystem {
        PmSystem::builder()
            .provider(SpModel::dac99_server().unwrap())
            .requestor(SrModel::poisson(1.0 / 6.0).unwrap())
            .capacity(5)
            .build()
            .unwrap()
    }

    fn compiled(system: &PmSystem) -> CompiledPolicy {
        CompiledPolicy::compile(system, &PmPolicy::greedy(system).unwrap()).unwrap()
    }

    #[test]
    fn shard_count_is_bit_invariant() {
        let system = system();
        let policy = compiled(&system);
        let outcome = |shards| {
            serve(
                &system,
                &policy,
                &ServeConfig::new(7)
                    .systems(12)
                    .requests_per_system(400)
                    .shards(shards),
            )
            .unwrap()
        };
        let serial = outcome(1);
        assert_eq!(serial.merged().runs(), 12);
        assert!(serial.merged().events() > 0);
        for shards in [2, 3, 5, 12, 64] {
            let sharded = outcome(shards);
            assert_eq!(
                sharded.fingerprint(),
                serial.fingerprint(),
                "{shards} shards"
            );
            assert_eq!(sharded.merged(), serial.merged(), "{shards} shards");
            // The canonical artifacts diff clean at tolerance 0 once the
            // volatile provenance (which records the shard count) is out.
            assert_eq!(
                artifact::diff(&sharded.to_json(), &serial.to_json(), 0.0),
                Vec::<String>::new()
            );
        }
    }

    #[test]
    fn batch_grain_does_not_change_results() {
        let system = system();
        let policy = compiled(&system);
        let outcome = |batch| {
            serve(
                &system,
                &policy,
                &ServeConfig::new(3)
                    .systems(6)
                    .requests_per_system(300)
                    .shards(2)
                    .batch_events(batch),
            )
            .unwrap()
        };
        let base = outcome(256);
        for batch in [1, 7, 1024] {
            assert_eq!(outcome(batch), base, "batch {batch}");
        }
    }

    #[test]
    fn policy_lookups_count_every_consultation() {
        let system = system();
        let policy = compiled(&system);
        let outcome = serve(
            &system,
            &policy,
            &ServeConfig::new(11).systems(4).requests_per_system(200),
        )
        .unwrap();
        // The compiled controller is consulted exactly once per engine
        // consultation; the merged lookup count rides on that statistic.
        assert!(outcome.merged().consultations() >= outcome.merged().events());
    }

    #[test]
    fn degenerate_configs_are_rejected() {
        let system = system();
        let policy = compiled(&system);
        for bad in [
            ServeConfig::new(1).systems(0),
            ServeConfig::new(1).shards(0),
            ServeConfig::new(1).batch_events(0),
        ] {
            assert!(matches!(
                serve(&system, &policy, &bad),
                Err(ServeError::InvalidConfig { .. })
            ));
        }
    }

    #[test]
    fn outcome_artifact_has_the_documented_shape() {
        let system = system();
        let policy = compiled(&system);
        let outcome = serve(
            &system,
            &policy,
            &ServeConfig::new(5).systems(3).requests_per_system(100),
        )
        .unwrap();
        let doc = outcome.to_json();
        assert_eq!(
            doc.get("format").and_then(Json::as_str),
            Some(SERVE_OUTCOME_FORMAT)
        );
        for key in ["root_seed", "systems", "requests_per_system", "fingerprint"] {
            assert!(doc.get(key).is_some(), "missing {key}");
        }
        let totals = doc.get("totals").unwrap();
        for key in ["events", "policy_lookups", "sim_seconds", "energy_joules"] {
            assert!(totals.get(key).is_some(), "missing totals.{key}");
        }
        // Round-trips through the canonical renderer.
        assert_eq!(Json::parse(&doc.render()).unwrap(), doc);
    }
}
